// Command zoomgen generates the synthetic workloads of the paper's
// evaluation: workflow specifications drawn from the Table I classes and
// runs (with their event logs) drawn from the Table II kinds. Files are
// written as spec JSON and JSON-lines logs, ready for "zoom load".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/zoom"
)

func main() {
	var (
		class     = flag.Int("class", 2, "workflow class 1-4 (Table I)")
		kind      = flag.String("kind", "small", "run kind: small | medium | large (Table II)")
		workflows = flag.Int("workflows", 1, "number of workflows to generate")
		runs      = flag.Int("runs", 1, "number of runs per workflow")
		seed      = flag.Int64("seed", 1, "generator seed")
		outDir    = flag.String("out", ".", "output directory")
	)
	flag.Parse()
	if err := generate(*class, *kind, *workflows, *runs, *seed, *outDir); err != nil {
		fmt.Fprintln(os.Stderr, "zoomgen:", err)
		os.Exit(1)
	}
}

func generate(class int, kind string, workflows, runs int, seed int64, outDir string) error {
	if class < 1 || class > 4 {
		return fmt.Errorf("class must be 1-4, got %d", class)
	}
	wc := zoom.WorkflowClasses()[class-1]
	var rc zoom.RunClass
	found := false
	for _, c := range zoom.RunClasses() {
		if c.Name == kind {
			rc = c
			found = true
		}
	}
	if !found {
		return fmt.Errorf("unknown run kind %q", kind)
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	g := zoom.NewGenerator(seed)
	for wi := 0; wi < workflows; wi++ {
		name := fmt.Sprintf("%s-s%d-w%d", wc.Name, seed, wi)
		s := g.Workflow(wc, name)
		data, err := zoom.EncodeSpec(s)
		if err != nil {
			return err
		}
		specPath := filepath.Join(outDir, name+".spec.json")
		if err := os.WriteFile(specPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d modules, %d edges, scientific %v)\n",
			specPath, s.NumModules(), s.NumEdges(), s.ScientificModules())
		for ri := 0; ri < runs; ri++ {
			runID := fmt.Sprintf("%s-%s-r%d", name, kind, ri)
			r, events, err := g.Run(s, rc, runID)
			if err != nil {
				return err
			}
			logPath := filepath.Join(outDir, runID+".log.jsonl")
			f, err := os.Create(logPath)
			if err != nil {
				return err
			}
			if err := zoom.WriteLog(f, events); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%d steps, %d data objects, %d events)\n",
				logPath, r.NumSteps(), r.NumData(), len(events))
		}
	}
	return nil
}
