package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/zoom"
)

func TestGenerateEndToEnd(t *testing.T) {
	dir := t.TempDir()
	// Silence the progress prints.
	old := os.Stdout
	null, _ := os.Open(os.DevNull)
	os.Stdout = null
	err := generate(4, "small", 2, 2, 7, dir)
	os.Stdout = old
	null.Close()
	if err != nil {
		t.Fatal(err)
	}

	specs, _ := filepath.Glob(filepath.Join(dir, "*.spec.json"))
	logs, _ := filepath.Glob(filepath.Join(dir, "*.log.jsonl"))
	if len(specs) != 2 || len(logs) != 4 {
		t.Fatalf("files: %d specs, %d logs", len(specs), len(logs))
	}

	// Every generated artifact must load back and answer a query.
	for _, sp := range specs {
		data, err := os.ReadFile(sp)
		if err != nil {
			t.Fatal(err)
		}
		s, err := zoom.DecodeSpec(data)
		if err != nil {
			t.Fatalf("%s: %v", sp, err)
		}
		sys := zoom.NewSystem()
		if err := sys.RegisterSpec(s); err != nil {
			t.Fatal(err)
		}
		base := strings.TrimSuffix(filepath.Base(sp), ".spec.json")
		for _, lg := range logs {
			if !strings.HasPrefix(filepath.Base(lg), base) {
				continue
			}
			f, err := os.Open(lg)
			if err != nil {
				t.Fatal(err)
			}
			events, err := zoom.ReadLog(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			runID := strings.TrimSuffix(filepath.Base(lg), ".log.jsonl")
			if err := sys.LoadLog(runID, s.Name(), events); err != nil {
				t.Fatal(err)
			}
			r, _ := sys.Run(runID)
			v, err := zoom.BuildUserView(s, zoom.UBioRelevant(s))
			if err != nil {
				t.Fatal(err)
			}
			res, err := sys.DeepProvenance(runID, v, r.FinalOutputs()[0])
			if err != nil || res.NumData() == 0 {
				t.Fatalf("query over generated artifacts failed: %v", err)
			}
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	dir := t.TempDir()
	if err := generate(0, "small", 1, 1, 1, dir); err == nil {
		t.Fatal("class 0 accepted")
	}
	if err := generate(2, "gigantic", 1, 1, 1, dir); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
