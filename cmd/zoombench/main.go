// Command zoombench runs the evaluation harness: every table and figure of
// the paper's Section V, printed as aligned text tables. The default scale
// finishes in seconds; -full reproduces the paper's workload volumes
// (10 workflows per class, 30 runs per kind — 3,600 runs — and 1,000
// randomized specifications for the scalability sweep).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/zoom"
)

func main() {
	var (
		full    = flag.Bool("full", false, "paper-scale workload volumes")
		seed    = flag.Int64("seed", 1, "experiment seed")
		out     = flag.String("out", "", "also write the reports to this file")
		csvDir  = flag.String("csv", "", "also write each report as CSV into this directory")
		jsonOut = flag.String("json", "", "also write the selected reports as a JSON array to this file")
		only    = flag.String("only", "", "run a single experiment id (T1,T2,E1,E2,F10,E3,E4,F11,E5,A1/A2,C1,P1,P2,L1,L2,S1)")
	)
	flag.Parse()

	o := zoom.DefaultBench()
	if *full {
		o = zoom.FullBench()
	}
	o.Seed = *seed

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "zoombench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	start := time.Now()
	fmt.Fprintf(w, "ZOOM*UserViews evaluation (seed %d, full=%v)\n\n", *seed, *full)
	var selected []*zoom.Report
	for _, exp := range zoom.BenchExperiments() {
		// Filter before running: -only pays for one experiment, not all.
		if *only != "" && exp.ID != *only {
			continue
		}
		rep := exp.Run(o)
		selected = append(selected, rep)
		fmt.Fprintln(w, rep.String())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "zoombench:", err)
				os.Exit(1)
			}
			name := strings.ReplaceAll(rep.ID, "/", "-") + ".csv"
			if err := os.WriteFile(filepath.Join(*csvDir, name), []byte(rep.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "zoombench:", err)
				os.Exit(1)
			}
		}
	}
	if *only != "" && len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "zoombench: unknown experiment id %q\n", *only)
		os.Exit(1)
	}
	if *jsonOut != "" {
		blob, err := json.MarshalIndent(selected, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "zoombench:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(w, "total wall time: %s\n", time.Since(start).Round(time.Millisecond))
}
