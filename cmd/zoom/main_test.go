package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"repro/internal/warehouse"
	"repro/zoom"
)

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := io.Copy(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

// captureBoth runs fn with stdout and stderr redirected, returning both
// streams separately — for commands whose contract is exactly "answer on
// stdout, diagnostics on stderr" (like query -trace).
func captureBoth(t *testing.T, fn func() error) (stdout, stderr string, err error) {
	t.Helper()
	oldOut, oldErr := os.Stdout, os.Stderr
	ro, wo, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	re, we, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout, os.Stderr = wo, we
	runErr := fn()
	wo.Close()
	we.Close()
	os.Stdout, os.Stderr = oldOut, oldErr
	var bufOut, bufErr bytes.Buffer
	if _, err := io.Copy(&bufOut, ro); err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(&bufErr, re); err != nil {
		t.Fatal(err)
	}
	return bufOut.String(), bufErr.String(), runErr
}

func writeSpecFile(t *testing.T, dir string) string {
	t.Helper()
	data, err := zoom.EncodeSpec(zoom.Phylogenomics())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "phylo.spec.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeLogFile(t *testing.T, dir string) string {
	t.Helper()
	events, err := zoom.PhylogenomicsRun().ToLog()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "fig2.log.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := zoom.WriteLog(f, events); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdExample(t *testing.T) {
	out, err := capture(t, func() error { return cmdExample(nil) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Joe finds [M2 M3 M7] relevant",
		"immediate provenance of d413",
		"{d308..d408}",
		"{d411}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("example output missing %q", want)
		}
	}
}

func TestCmdSpec(t *testing.T) {
	dir := t.TempDir()
	path := writeSpecFile(t, dir)
	out, err := capture(t, func() error { return cmdSpec([]string{"-file", path}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "8 modules") || !strings.Contains(out, "scientific modules: [M3 M7]") {
		t.Fatalf("spec summary wrong:\n%s", out)
	}
	dotOut, err := capture(t, func() error { return cmdSpec([]string{"-file", path, "-dot"}) })
	if err != nil || !strings.Contains(dotOut, "digraph") {
		t.Fatalf("spec -dot failed: %v\n%s", err, dotOut)
	}
	if _, err := capture(t, func() error { return cmdSpec(nil) }); err == nil {
		t.Fatal("missing -file accepted")
	}
	if _, err := capture(t, func() error { return cmdSpec([]string{"-file", filepath.Join(dir, "nope.json")}) }); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCmdView(t *testing.T) {
	dir := t.TempDir()
	path := writeSpecFile(t, dir)
	out, err := capture(t, func() error {
		return cmdView([]string{"-file", path, "-relevant", "M2,M3,M7"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "user view (size 4)") || !strings.Contains(out, "[M3 M4 M5]") {
		t.Fatalf("view output wrong:\n%s", out)
	}
	if _, err := capture(t, func() error {
		return cmdView([]string{"-file", path, "-relevant", "M99"})
	}); err == nil {
		t.Fatal("unknown relevant accepted")
	}
	if _, err := capture(t, func() error { return cmdView(nil) }); err == nil {
		t.Fatal("missing -file accepted")
	}
}

func TestCmdLoadQueryRuns(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSpecFile(t, dir)
	logPath := writeLogFile(t, dir)
	wh := filepath.Join(dir, "wh.json")

	if _, err := capture(t, func() error {
		return cmdLoad([]string{"-warehouse", wh, "-file", specPath, "-log", logPath, "-run", "fig2"})
	}); err != nil {
		t.Fatal(err)
	}

	out, err := capture(t, func() error { return cmdRuns([]string{"-warehouse", wh}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "spec phylogenomics") || !strings.Contains(out, `run "fig2"`) {
		t.Fatalf("runs output wrong:\n%s", out)
	}

	// Deep query through a built view.
	out, err = capture(t, func() error {
		return cmdQuery([]string{"-warehouse", wh, "-run", "fig2", "-data", "d447",
			"-relevant", "M2,M3,M7"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "deep provenance of d447") {
		t.Fatalf("query output wrong:\n%s", out)
	}

	// Immediate mode, Mary's view.
	out, err = capture(t, func() error {
		return cmdQuery([]string{"-warehouse", wh, "-run", "fig2", "-data", "d413",
			"-relevant", "M2,M3,M5,M7", "-mode", "immediate"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "{d411}") {
		t.Fatalf("immediate output wrong:\n%s", out)
	}

	// Derived mode under UAdmin (no -relevant).
	out, err = capture(t, func() error {
		return cmdQuery([]string{"-warehouse", wh, "-run", "fig2", "-data", "d410", "-mode", "derived"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "derived from d410") {
		t.Fatalf("derived output wrong:\n%s", out)
	}

	// External input metadata answer.
	out, err = capture(t, func() error {
		return cmdQuery([]string{"-warehouse", wh, "-run", "fig2", "-data", "d1", "-mode", "immediate"})
	})
	if err != nil || !strings.Contains(out, "user/workflow input") {
		t.Fatalf("external immediate wrong: %v\n%s", err, out)
	}

	// DOT output mode.
	out, err = capture(t, func() error {
		return cmdQuery([]string{"-warehouse", wh, "-run", "fig2", "-data", "d447", "-dot"})
	})
	if err != nil || !strings.Contains(out, "digraph") {
		t.Fatalf("query -dot wrong: %v", err)
	}

	// Batch deep query with a worker pool (-parallel).
	out, err = capture(t, func() error {
		return cmdQuery([]string{"-warehouse", wh, "-run", "fig2", "-data", "d447,d413,d410",
			"-relevant", "M2,M3,M7", "-parallel", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"deep provenance of d447",
		"deep provenance of d413",
		"deep provenance of d410",
		"batch of 3 answered with 3 workers", // pool clamped to the batch size
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("batch output missing %q:\n%s", want, out)
		}
	}

	// Error paths.
	for _, args := range [][]string{
		{"-warehouse", wh, "-run", "ghost", "-data", "d1"},
		{"-warehouse", wh, "-run", "fig2", "-data", "nope"},
		{"-warehouse", wh, "-run", "fig2", "-data", "d1", "-mode", "bogus"},
		{"-warehouse", wh, "-run", "fig2", "-data", "d447,d413", "-mode", "derived"},
		{"-warehouse", wh, "-run", "fig2", "-data", "d447,d413", "-dot"},
		{"-warehouse", wh, "-run", "fig2", "-data", "d447,nope"},
		{"-run", "fig2", "-data", "d1"},
	} {
		if _, err := capture(t, func() error { return cmdQuery(args) }); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
	if _, err := capture(t, func() error { return cmdRuns(nil) }); err == nil {
		t.Fatal("runs without -warehouse accepted")
	}
	if _, err := capture(t, func() error {
		return cmdLoad([]string{"-warehouse", wh, "-log", logPath})
	}); err == nil {
		t.Fatal("load -log without -run/-spec accepted")
	}
}

func TestSplitList(t *testing.T) {
	if got := splitList(""); got != nil {
		t.Fatalf("splitList(\"\") = %v", got)
	}
	got := splitList(" M1, M2 ,,M3 ")
	if !reflect.DeepEqual(got, []string{"M1", "M2", "M3"}) {
		t.Fatalf("splitList = %v", got)
	}
}

func TestCmdSpecGraphMLAndQueryProv(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSpecFile(t, dir)
	logPath := writeLogFile(t, dir)
	wh := filepath.Join(dir, "wh.json")

	out, err := capture(t, func() error { return cmdSpec([]string{"-file", specPath, "-graphml"}) })
	if err != nil || !strings.Contains(out, "<graphml") {
		t.Fatalf("spec -graphml failed: %v", err)
	}

	if _, err := capture(t, func() error {
		return cmdLoad([]string{"-warehouse", wh, "-file", specPath, "-log", logPath, "-run", "fig2"})
	}); err != nil {
		t.Fatal(err)
	}
	out, err = capture(t, func() error {
		return cmdQuery([]string{"-warehouse", wh, "-run", "fig2", "-data", "d447",
			"-relevant", "M2,M3,M7", "-prov"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"prov": "http://www.w3.org/ns/prov#"`) {
		t.Fatalf("PROV export missing namespace:\n%s", out[:200])
	}
	// Stats line appears in the runs listing.
	out, err = capture(t, func() error { return cmdRuns([]string{"-warehouse", wh}) })
	if err != nil || !strings.Contains(out, "specs=1") {
		t.Fatalf("runs stats missing: %v\n%s", err, out)
	}
}

func TestCmdAsk(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSpecFile(t, dir)
	logPath := writeLogFile(t, dir)
	wh := filepath.Join(dir, "wh.json")
	if _, err := capture(t, func() error {
		return cmdLoad([]string{"-warehouse", wh, "-file", specPath, "-log", logPath, "-run", "fig2"})
	}); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error {
		return cmdAsk([]string{"-warehouse", wh, "-run", "fig2",
			"-relevant", "M2,M3,M5,M7", "-q", "immediate(d413)"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "from {d411}") {
		t.Fatalf("ask output wrong:\n%s", out)
	}
	out, err = capture(t, func() error {
		return cmdAsk([]string{"-warehouse", wh, "-run", "fig2", "-q", "in(d308, d447)"})
	})
	if err != nil || !strings.Contains(out, "true") {
		t.Fatalf("ask in() wrong: %v\n%s", err, out)
	}
	if _, err := capture(t, func() error {
		return cmdAsk([]string{"-warehouse", wh, "-run", "fig2", "-q", "frobnicate(x)"})
	}); err == nil {
		t.Fatal("bad form accepted")
	}
	if _, err := capture(t, func() error { return cmdAsk(nil) }); err == nil {
		t.Fatal("missing flags accepted")
	}
}

func TestCmdCompare(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSpecFile(t, dir)
	wh := filepath.Join(dir, "wh.json")
	if _, err := capture(t, func() error {
		return cmdLoad([]string{"-warehouse", wh, "-file", specPath})
	}); err != nil {
		t.Fatal(err)
	}
	// Load two runs with different iteration counts via logs.
	for i, iters := range []int{2, 5} {
		r, events, err := zoom.Execute(zoom.Phylogenomics(), zoom.ExecConfig{
			RunID: "r", Seed: 3, LoopIter: [2]int{iters, iters}})
		if err != nil {
			t.Fatal(err)
		}
		_ = r
		logPath := filepath.Join(dir, "run.log")
		f, err := os.Create(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := zoom.WriteLog(f, events); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if _, err := capture(t, func() error {
			return cmdLoad([]string{"-warehouse", wh, "-spec", "phylogenomics",
				"-log", logPath, "-run", []string{"runA", "runB"}[i]})
		}); err != nil {
			t.Fatal(err)
		}
	}
	out, err := capture(t, func() error {
		return cmdCompare([]string{"-warehouse", wh, "-a", "runA", "-b", "runB"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "compare runA vs runB") || !strings.Contains(out, "executed") {
		t.Fatalf("compare output wrong:\n%s", out)
	}
	if _, err := capture(t, func() error { return cmdCompare(nil) }); err == nil {
		t.Fatal("missing flags accepted")
	}
	if _, err := capture(t, func() error {
		return cmdCompare([]string{"-warehouse", wh, "-a", "ghost", "-b", "runB"})
	}); err == nil {
		t.Fatal("unknown run accepted")
	}
}

// TestCmdQueryTrace: -trace runs the deep query cold then warm and prints a
// per-stage breakdown for each, demonstrating the paper's view-switch
// speedup (the warm query is a closure-cache hit).
func TestCmdQueryTrace(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSpecFile(t, dir)
	logPath := writeLogFile(t, dir)
	wh := filepath.Join(dir, "wh.json")
	if _, err := capture(t, func() error {
		return cmdLoad([]string{"-warehouse", wh, "-file", specPath, "-log", logPath, "-run", "fig2"})
	}); err != nil {
		t.Fatal(err)
	}

	out, errOut, err := captureBoth(t, func() error {
		return cmdQuery([]string{"-warehouse", wh, "-run", "fig2", "-data", "d447",
			"-relevant", "M2,M3,M7", "-trace"})
	})
	if err != nil {
		t.Fatal(err)
	}
	// The timing breakdown goes to stderr so stdout stays exactly the
	// query answer; strip the (nondeterministic) durations and compare the
	// shape.
	norm := regexp.MustCompile(`[0-9]+(\.[0-9]+)?(ns|µs|ms|s)`).ReplaceAllString(errOut, "<dur>")
	for _, want := range []string{
		"cold trace: run=fig2 data=d447 outcome=miss",
		"(compute <dur>)",
		"warm trace: run=fig2 data=d447 outcome=hit",
		"closure lookup",
		"view projection",
		"result: 4 steps, 240 data objects, 6 edges", // projected through Joe's view
	} {
		if !strings.Contains(norm, want) {
			t.Fatalf("trace output (stderr) missing %q:\n%s", want, norm)
		}
	}
	// The normal answer still prints — on stdout, trace-free.
	if !strings.Contains(out, "deep provenance of d447") {
		t.Fatalf("stdout lost the query answer:\n%s", out)
	}
	if strings.Contains(out, "cold trace") || strings.Contains(out, "warm trace") {
		t.Fatalf("trace breakdown leaked onto stdout:\n%s", out)
	}
	// The warm trace must not report compute time.
	warm := norm[strings.Index(norm, "warm trace"):]
	if strings.Contains(strings.Split(warm, "view projection")[0], "compute") {
		t.Fatalf("warm trace reports a compute stage:\n%s", warm)
	}

	// -trace is single-query only.
	if _, err := capture(t, func() error {
		return cmdQuery([]string{"-warehouse", wh, "-run", "fig2", "-data", "d447,d413", "-trace"})
	}); err == nil {
		t.Fatal("-trace with multiple data ids accepted")
	}
}

// TestCmdStats: the stats subcommand prints warehouse and cache state, and
// -json emits a machine-readable Stats including the Metrics section
// populated by the load itself.
func TestCmdStats(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSpecFile(t, dir)
	logPath := writeLogFile(t, dir)
	wh := filepath.Join(dir, "wh.json")
	if _, err := capture(t, func() error {
		return cmdLoad([]string{"-warehouse", wh, "-file", specPath, "-log", logPath, "-run", "fig2"})
	}); err != nil {
		t.Fatal(err)
	}

	out, err := capture(t, func() error { return cmdStats([]string{"-warehouse", wh}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"runs=1", "cache:", "stores=0", "drops=0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}

	out, err = capture(t, func() error { return cmdStats([]string{"-warehouse", wh, "-json"}) })
	if err != nil {
		t.Fatal(err)
	}
	var stats warehouse.Stats
	if err := json.Unmarshal([]byte(out), &stats); err != nil {
		t.Fatalf("stats -json is not JSON: %v\n%s", err, out)
	}
	if stats.Runs != 1 {
		t.Fatalf("stats.Runs = %d, want 1", stats.Runs)
	}
	if stats.Metrics == nil {
		t.Fatal("stats -json missing Metrics section")
	}
	if stats.Metrics.Counters["ingest.runs_loaded"] != 1 {
		t.Fatalf("ingest metrics not recorded: %+v", stats.Metrics.Counters)
	}
	if stats.Metrics.Histograms["ingest.snapshot_load_ns"].Count != 1 {
		t.Fatalf("snapshot load not timed: %+v", stats.Metrics.Histograms)
	}

	if _, err := capture(t, func() error { return cmdStats(nil) }); err == nil {
		t.Fatal("stats without -warehouse accepted")
	}
}

// TestCmdQueryTraceProvJSON pins the stdout contract: with -trace AND
// -prov, stdout must still be exactly one valid PROV-JSON document — the
// breakdown lives on stderr, so piping `zoom query -prov -trace` into a
// JSON consumer keeps working.
func TestCmdQueryTraceProvJSON(t *testing.T) {
	dir := t.TempDir()
	wh := filepath.Join(dir, "wh.json")
	if _, err := capture(t, func() error {
		return cmdExample([]string{"-warehouse", wh})
	}); err != nil {
		t.Fatal(err)
	}

	out, errOut, err := captureBoth(t, func() error {
		return cmdQuery([]string{"-warehouse", wh, "-run", "fig2", "-data", "d447",
			"-relevant", "M2,M3,M7", "-trace", "-prov"})
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("stdout is not valid JSON under -trace -prov: %v\n%s", err, out)
	}
	if _, ok := doc["entity"]; !ok {
		t.Fatalf("PROV-JSON document has no entities: %s", out)
	}
	if !strings.Contains(errOut, "cold trace") || !strings.Contains(errOut, "warm trace") {
		t.Fatalf("trace breakdown missing from stderr:\n%s", errOut)
	}
}

// TestCmdExampleWarehouse: `zoom example -warehouse` saves a queryable
// snapshot with the joe and mary views registered by name.
func TestCmdExampleWarehouse(t *testing.T) {
	dir := t.TempDir()
	wh := filepath.Join(dir, "wh.json")
	out, err := capture(t, func() error { return cmdExample([]string{"-warehouse", wh}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "saved warehouse snapshot") {
		t.Fatalf("no save confirmation:\n%s", out)
	}
	sys, err := loadSystem(wh)
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.ViewNames("phylogenomics"); len(got) != 2 {
		t.Fatalf("saved views: %v, want joe and mary", got)
	}
	v, err := sys.View("phylogenomics", "joe")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.DeepProvenance("fig2", v, "d447")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSteps() != 4 {
		t.Fatalf("deep provenance through saved joe view: %d steps, want 4", res.NumSteps())
	}
}

// TestCmdServeValidation covers the fast failures: a missing -warehouse
// flag and a nonexistent snapshot file must error before binding a port.
func TestCmdServeValidation(t *testing.T) {
	if err := cmdServe(nil); err == nil {
		t.Fatal("serve without -warehouse accepted")
	}
	err := cmdServe([]string{"-warehouse", filepath.Join(t.TempDir(), "absent.json")})
	if err == nil || !strings.Contains(err.Error(), "snapshot") {
		t.Fatalf("serve with absent warehouse: %v", err)
	}
}

// TestSaveSystemAtomic: saves are temp-file + rename, so a failed save —
// here, a closed system — leaves the existing snapshot byte-identical and
// no temp file behind.
func TestSaveSystemAtomic(t *testing.T) {
	dir := t.TempDir()
	wh := filepath.Join(dir, "wh.json")
	if _, err := capture(t, func() error { return cmdExample([]string{"-warehouse", wh}) }); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(wh)
	if err != nil {
		t.Fatal(err)
	}

	sys, err := loadSystem(wh)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"json", "binary", "v3"} {
		if err := saveSystemFormat(sys, wh, format); err == nil {
			t.Fatalf("save format %s on a closed system succeeded", format)
		}
	}

	after, err := os.ReadFile(wh)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed save altered the existing snapshot")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "wh.json" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("failed save left files behind: %v", names)
	}

	// A successful save into a missing directory still fails cleanly.
	if err := saveSystemFormat(sys, filepath.Join(dir, "no", "such", "dir", "x.json"), "json"); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
}

// TestCmdSaveAndSnapshotConvert: `zoom snapshot convert` and `zoom save`
// rewrite a warehouse into the v3 layout, format sniffing recognizes it,
// `-format keep` preserves it, and queries over the converted snapshot
// answer identically.
func TestCmdSaveAndSnapshotConvert(t *testing.T) {
	dir := t.TempDir()
	wh := filepath.Join(dir, "wh.json")
	whV3 := filepath.Join(dir, "wh.v3")
	if _, err := capture(t, func() error { return cmdExample([]string{"-warehouse", wh}) }); err != nil {
		t.Fatal(err)
	}

	out, err := capture(t, func() error {
		return cmdSnapshot([]string{"convert", "-in", wh, "-out", whV3, "-format", "v3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "converted") || !strings.Contains(out, "v3") {
		t.Fatalf("convert output wrong:\n%s", out)
	}
	if got := snapshotFormat(whV3); got != "v3" {
		t.Fatalf("snapshotFormat(converted) = %q, want v3", got)
	}
	if got := snapshotFormat(wh); got != "json" {
		t.Fatalf("snapshotFormat(original) = %q, want json", got)
	}

	// The converted snapshot answers like the original (generic load path).
	queryOut, err := capture(t, func() error {
		return cmdQuery([]string{"-warehouse", whV3, "-run", "fig2", "-data", "d447",
			"-relevant", "M2,M3,M7"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(queryOut, "deep provenance of d447") {
		t.Fatalf("query over v3 snapshot wrong:\n%s", queryOut)
	}

	// And the mmap open path agrees too.
	sys, err := zoom.OpenSnapshot(whV3, zoom.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if snap := sys.Stats().Snapshot; snap.Version != 3 || snap.RunsTotal != 1 {
		t.Fatalf("OpenSnapshot stats: %+v", snap)
	}
	v, err := sys.View("phylogenomics", "joe")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.DeepProvenance("fig2", v, "d447")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSteps() != 4 {
		t.Fatalf("deep provenance over mmap snapshot: %d steps, want 4", res.NumSteps())
	}

	// `zoom load -format keep` re-saves in v3 without being told.
	logPath := writeLogFile(t, dir)
	if _, err := capture(t, func() error {
		return cmdLoad([]string{"-warehouse", whV3, "-spec", "phylogenomics",
			"-log", logPath, "-run", "fig2b"})
	}); err != nil {
		t.Fatal(err)
	}
	if got := snapshotFormat(whV3); got != "v3" {
		t.Fatalf("load -format keep rewrote v3 as %q", got)
	}

	// `zoom save` upgrades in place.
	if _, err := capture(t, func() error {
		return cmdSave([]string{"-warehouse", wh, "-format", "v3"})
	}); err != nil {
		t.Fatal(err)
	}
	if got := snapshotFormat(wh); got != "v3" {
		t.Fatalf("zoom save -format v3: format %q", got)
	}

	// Bad inputs fail loudly.
	if _, err := capture(t, func() error { return cmdSnapshot(nil) }); err == nil {
		t.Fatal("snapshot without a verb accepted")
	}
	if _, err := capture(t, func() error {
		return cmdSnapshot([]string{"convert", "-in", wh, "-out", whV3, "-format", "bogus"})
	}); err == nil {
		t.Fatal("bad convert format accepted")
	}
	if _, err := capture(t, func() error {
		return cmdSave([]string{"-warehouse", filepath.Join(dir, "ghost.json")})
	}); err == nil {
		t.Fatal("save of a missing warehouse accepted")
	}
}
