// Command zoom is the command-line face of the ZOOM*UserViews reproduction:
// it validates and renders workflow specifications, builds user views with
// RelevUserViewBuilder, loads runs (or raw workflow logs) into a provenance
// warehouse snapshot, and answers provenance queries through a chosen view.
//
// Subcommands:
//
//	zoom example [-warehouse wh.json]     walk through the paper's Figures 1-3
//	zoom serve   -warehouse wh.json [-addr :8080] [-mmap] [-labels] [-slow 10ms] [-slowlog 128] [-drain 5s] [-expvar zoom]
//	zoom spec    -file spec.json [-dot]   validate / render a specification
//	zoom view    -file spec.json -relevant M2,M3,M7 [-dot]
//	zoom load    -warehouse wh.json -file spec.json [-log run.jsonl -run id] [-parallel N] [-format json|binary|v3|keep]
//	zoom save    -warehouse wh.json [-out wh.v3] [-format v3]   re-save in an explicit format
//	zoom snapshot convert -in old.snap -out new.snap [-format v3]
//	zoom snapshot shard -in wh.v3 -n 4 [-out prefix] [-replicas 128] [-format keep]
//	zoom router  -workers http://h1:8081,http://h2:8082 [-addr :8090] [-replicas 128] [-slow 10ms] [-slowlog 128] [-drain 5s]
//	zoom query   -warehouse wh.json -run id -data d447[,d448,...] [-parallel N] [-relevant ...] [-mode deep|immediate|derived] [-labels] [-dot] [-trace]
//	zoom runs    -warehouse wh.json       list warehouse contents
//	zoom stats   -warehouse wh.json [-json]  warehouse statistics and metrics
//	zoom stats   -cluster http://router:8090 [-json]  aggregated cluster statistics via a router
//	zoom ask     -warehouse wh.json -run id -q "deep(d447)" [-relevant ...]
//	zoom compare -warehouse wh.json -a run1 -b run2
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/zoom"
	zoomclient "repro/zoom/client"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "example":
		err = cmdExample(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "router":
		err = cmdRouter(os.Args[2:])
	case "spec":
		err = cmdSpec(os.Args[2:])
	case "view":
		err = cmdView(os.Args[2:])
	case "load":
		err = cmdLoad(os.Args[2:])
	case "save":
		err = cmdSave(os.Args[2:])
	case "snapshot":
		err = cmdSnapshot(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "runs":
		err = cmdRuns(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "ask":
		err = cmdAsk(os.Args[2:])
	case "compare":
		err = cmdCompare(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "zoom: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zoom:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: zoom <example|spec|view|load|save|snapshot|query|ask|compare|runs|stats|serve|router> [flags]
run "zoom <subcommand> -h" for per-command flags
canned query forms for "ask": `+strings.Join(zoom.QueryForms(), ", "))
}

// cmdSave re-saves a warehouse snapshot in an explicit format — the way to
// upgrade an existing warehouse to the v3 mmap-servable layout in place.
func cmdSave(args []string) error {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	whPath := fs.String("warehouse", "", "warehouse snapshot file (required)")
	out := fs.String("out", "", "output file (default: overwrite -warehouse)")
	format := fs.String("format", "v3", "snapshot format to write: json, binary, or v3")
	parallel := fs.Int("parallel", 0, "workers for parallel snapshot loading (0 = GOMAXPROCS)")
	_ = fs.Parse(args)
	if *whPath == "" {
		return fmt.Errorf("save: -warehouse is required")
	}
	switch *format {
	case "json", "binary", "v3":
	default:
		return fmt.Errorf("save: unknown -format %q (want json, binary or v3)", *format)
	}
	if *out == "" {
		*out = *whPath
	}
	if _, err := os.Stat(*whPath); err != nil {
		return fmt.Errorf("save: warehouse snapshot: %w", err)
	}
	sys, err := loadSystemWith(*whPath, *parallel, nil)
	if err != nil {
		return err
	}
	if err := saveSystemFormat(sys, *out, *format); err != nil {
		return err
	}
	fmt.Printf("saved %s as %s (%s, %d runs)\n", *whPath, *out, *format, len(sys.RunIDs()))
	return nil
}

// cmdSnapshot manages snapshot files: convert rewrites a v1/v2/v3
// snapshot into another format; shard splits one into N shard snapshots
// by the cluster's consistent-hash ring.
func cmdSnapshot(args []string) error {
	if len(args) >= 1 && args[0] == "shard" {
		return cmdSnapshotShard(args[1:])
	}
	if len(args) < 1 || args[0] != "convert" {
		return fmt.Errorf(`snapshot: usage: zoom snapshot convert -in old.snap -out new.snap [-format v3]
       zoom snapshot shard -in wh.v3 -n 4 [-out prefix] [-replicas 128] [-format keep]`)
	}
	fs := flag.NewFlagSet("snapshot convert", flag.ExitOnError)
	in := fs.String("in", "", "snapshot file to read (any format, required)")
	out := fs.String("out", "", "snapshot file to write (required)")
	format := fs.String("format", "v3", "output format: json, binary, or v3")
	parallel := fs.Int("parallel", 0, "workers for parallel snapshot loading (0 = GOMAXPROCS)")
	_ = fs.Parse(args[1:])
	if *in == "" || *out == "" {
		return fmt.Errorf("snapshot convert: -in and -out are required")
	}
	switch *format {
	case "json", "binary", "v3":
	default:
		return fmt.Errorf("snapshot convert: unknown -format %q (want json, binary or v3)", *format)
	}
	if _, err := os.Stat(*in); err != nil {
		return fmt.Errorf("snapshot convert: %w", err)
	}
	sys, err := loadSystemWith(*in, *parallel, nil)
	if err != nil {
		return err
	}
	if err := saveSystemFormat(sys, *out, *format); err != nil {
		return err
	}
	fmt.Printf("converted %s (%s) to %s (%s, %d runs)\n",
		*in, snapshotFormat(*in), *out, *format, len(sys.RunIDs()))
	return nil
}

// cmdSnapshotShard splits one snapshot into N shard snapshots using the
// same consistent-hash ring the router routes by: shard k's file holds
// exactly the runs `zoom router` will send to worker k, plus the full
// spec and view catalog, so `router + N×(serve shard-k)` answers every
// query a single node over the original snapshot would.
func cmdSnapshotShard(args []string) error {
	fs := flag.NewFlagSet("snapshot shard", flag.ExitOnError)
	in := fs.String("in", "", "snapshot file to split (any format, required)")
	out := fs.String("out", "", "output prefix; shard k is written to <prefix>.shard<k> (default: -in)")
	n := fs.Int("n", 0, "number of shards (required)")
	replicas := fs.Int("replicas", 0, "virtual nodes per shard on the placement ring (0 = default; must match the router)")
	format := fs.String("format", "keep", "output format: json, binary, v3, or keep (preserve the input's format)")
	parallel := fs.Int("parallel", 0, "workers for parallel snapshot loading (0 = GOMAXPROCS)")
	_ = fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("snapshot shard: -in is required")
	}
	if *n < 1 {
		return fmt.Errorf("snapshot shard: -n must be at least 1")
	}
	switch *format {
	case "json", "binary", "v3":
	case "keep":
		*format = snapshotFormat(*in)
	default:
		return fmt.Errorf("snapshot shard: unknown -format %q (want json, binary, v3 or keep)", *format)
	}
	if *out == "" {
		*out = *in
	}
	if _, err := os.Stat(*in); err != nil {
		return fmt.Errorf("snapshot shard: %w", err)
	}
	ring, err := zoom.NewRing(*n, *replicas)
	if err != nil {
		return err
	}
	sys, err := loadSystemWith(*in, *parallel, nil)
	if err != nil {
		return err
	}
	defer sys.Close()
	parts := ring.Partition(sys.RunIDs())
	for k, ids := range parts {
		keep := make(map[string]bool, len(ids))
		for _, id := range ids {
			keep[id] = true
		}
		sub, err := sys.Subset(func(id string) bool { return keep[id] })
		if err != nil {
			return fmt.Errorf("snapshot shard %d: %w", k, err)
		}
		path := fmt.Sprintf("%s.shard%d", *out, k)
		if err := saveSystemFormat(sub, path, *format); err != nil {
			return fmt.Errorf("snapshot shard %d: %w", k, err)
		}
		fmt.Printf("shard %d/%d: %s (%s, %d runs)\n", k, *n, path, *format, len(ids))
	}
	return nil
}

// cmdRouter runs the cluster front: a stateless consistent-hash router
// over N `zoom serve` workers. It holds no warehouse — run-addressed
// queries are forwarded to the owning shard, catalog endpoints are
// scatter-gathered — so it starts instantly and restarts freely.
// SIGINT/SIGTERM drain in-flight requests for up to -drain.
func cmdRouter(args []string) error {
	fs := flag.NewFlagSet("router", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "listen address")
	workers := fs.String("workers", "", "worker base URLs in shard order (required; order must match `zoom snapshot shard`). Semicolons separate shards, commas separate replicas within a shard: 'a,b;c,d' is two shards with two replicas each; without a semicolon commas separate single-replica shards")
	replicas := fs.Int("replicas", 0, "virtual nodes per shard on the placement ring (0 = default; must match the snapshot split)")
	forwardTimeout := fs.Duration("forward-timeout", 30*time.Second, "per-request forwarding timeout")
	gatherTimeout := fs.Duration("gather-timeout", 5*time.Second, "per-shard scatter-gather and health-poll timeout")
	fanout := fs.Int("fanout", 8, "max shards hit concurrently by a scatter-gather")
	healthInterval := fs.Duration("health-interval", 2*time.Second, "worker /readyz polling period")
	breakerThreshold := fs.Int("breaker-threshold", 3, "consecutive forward failures that open a replica's circuit")
	breakerCooldown := fs.Duration("breaker-cooldown", 5*time.Second, "how long an open circuit fails fast before retrying")
	hedge := fs.Duration("hedge", 0, "hedge run-addressed requests on the next replica after this delay (0 = off; pick a p99-ish value)")
	cacheEntries := fs.Int("cache", 4096, "response cache entries (0 disables; invalidated when a shard's worker generation changes)")
	cacheBytes := fs.Int64("cache-bytes", 0, "response cache total byte bound (0 = 64MiB default)")
	slow := fs.Duration("slow", 10*time.Millisecond, "router slowlog threshold at /debug/slowlog (negative logs every request)")
	slowlogSize := fs.Int("slowlog", 128, "router slowlog ring size")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	_ = fs.Parse(args)
	groups := zoom.ParseWorkers(*workers)
	if len(groups) == 0 {
		return fmt.Errorf("router: -workers is required ('a,b;c,d': semicolons separate shards, commas separate replicas)")
	}
	rt, err := zoom.NewRouter(zoom.NewMetrics(), zoom.RouterConfig{
		Shards:           groups,
		Replicas:         *replicas,
		ForwardTimeout:   *forwardTimeout,
		GatherTimeout:    *gatherTimeout,
		Fanout:           *fanout,
		HealthInterval:   *healthInterval,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		HedgeDelay:       *hedge,
		CacheEntries:     *cacheEntries,
		CacheBytes:       *cacheBytes,
		SlowThreshold:    *slow,
		SlowLogSize:      *slowlogSize,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "zoom router: listening on http://%s, %d shards:\n", ln.Addr(), len(groups))
	for i, g := range groups {
		fmt.Fprintf(os.Stderr, "zoom router:   shard %d -> %s\n", i, strings.Join(g, ", "))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err = rt.Serve(ctx, ln, *drain)
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return err
}

// cmdCompare diffs two runs structurally (reproducibility check).
func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	whPath := fs.String("warehouse", "", "warehouse snapshot file (required)")
	aID := fs.String("a", "", "first run id (required)")
	bID := fs.String("b", "", "second run id (required)")
	_ = fs.Parse(args)
	if *whPath == "" || *aID == "" || *bID == "" {
		return fmt.Errorf("compare: -warehouse, -a and -b are required")
	}
	sys, err := loadSystem(*whPath)
	if err != nil {
		return err
	}
	a, err := sys.Run(*aID)
	if err != nil {
		return err
	}
	b, err := sys.Run(*bID)
	if err != nil {
		return err
	}
	fmt.Println(zoom.CompareRuns(a, b))
	return nil
}

// cmdAsk evaluates one of the prototype's canned query forms.
func cmdAsk(args []string) error {
	fs := flag.NewFlagSet("ask", flag.ExitOnError)
	whPath := fs.String("warehouse", "", "warehouse snapshot file (required)")
	runID := fs.String("run", "", "run id (required)")
	q := fs.String("q", "", `canned query, e.g. "deep(d447)" (required)`)
	relevant := fs.String("relevant", "", "relevant modules for the view (empty = UAdmin)")
	_ = fs.Parse(args)
	if *whPath == "" || *runID == "" || *q == "" {
		return fmt.Errorf("ask: -warehouse, -run and -q are required")
	}
	sys, err := loadSystem(*whPath)
	if err != nil {
		return err
	}
	r, err := sys.Run(*runID)
	if err != nil {
		return err
	}
	s, err := sys.Spec(r.SpecName())
	if err != nil {
		return err
	}
	var v *zoom.UserView
	if *relevant == "" {
		v = zoom.UAdmin(s)
	} else if v, err = zoom.BuildUserView(s, splitList(*relevant)); err != nil {
		return err
	}
	ans, err := sys.Ask(*runID, v, *q)
	if err != nil {
		return err
	}
	fmt.Print(zoom.RenderAnswer(ans))
	return nil
}

// cmdExample walks through the paper's running example end to end. With
// -warehouse it also saves the example system as a snapshot (the Joe and
// Mary views registered by name) — the one-command way to get a warehouse
// that `zoom query` and `zoom serve` can use.
func cmdExample(args []string) error {
	fs := flag.NewFlagSet("example", flag.ExitOnError)
	whPath := fs.String("warehouse", "", "save the example system as a warehouse snapshot")
	_ = fs.Parse(args)
	s := zoom.Phylogenomics()
	r := zoom.PhylogenomicsRun()
	fmt.Printf("specification: %s\n", s)
	fmt.Printf("run:           %s\n\n", r)

	sys := zoom.NewSystem()
	if err := sys.RegisterSpec(s); err != nil {
		return err
	}
	if err := sys.LoadRun(r); err != nil {
		return err
	}
	for _, user := range []struct {
		name     string
		relevant []string
	}{
		{"Joe", zoom.JoeRelevant()},
		{"Mary", zoom.MaryRelevant()},
	} {
		v, err := zoom.BuildUserView(s, user.relevant)
		if err != nil {
			return err
		}
		if err := sys.RegisterView(strings.ToLower(user.name), v); err != nil {
			return err
		}
		fmt.Printf("%s finds %v relevant; RelevUserViewBuilder gives %v (size %d)\n",
			user.name, user.relevant, v, v.Size())
		ex, err := sys.ImmediateProvenance(r.ID(), v, "d413")
		if err != nil {
			return err
		}
		fmt.Printf("  immediate provenance of d413: execution %s of %s, input %s\n",
			ex.ID, ex.Composite, zoom.FormatDataSet(ex.Inputs))
		res, err := sys.DeepProvenance(r.ID(), v, "d447")
		if err != nil {
			return err
		}
		fmt.Printf("  deep provenance of d447: %d executions, %d data objects\n\n",
			res.NumSteps(), res.NumData())
	}
	if *whPath != "" {
		if err := saveSystem(sys, *whPath); err != nil {
			return err
		}
		fmt.Printf("saved warehouse snapshot to %s (views: joe, mary)\n", *whPath)
	}
	return nil
}

// cmdServe runs the HTTP provenance service. The listener comes up first,
// the warehouse loads in the background, and the server answers 503 on
// /readyz and the query API until the load finishes — so orchestrators
// see the process alive immediately and route traffic only once ready.
// SIGINT/SIGTERM drain in-flight requests for up to -drain.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	whPath := fs.String("warehouse", "", "warehouse snapshot file (required)")
	parallel := fs.Int("parallel", 0, "workers for parallel snapshot loading (0 = GOMAXPROCS)")
	slow := fs.Duration("slow", 10*time.Millisecond, "slow-query log threshold (negative logs every request)")
	slowlogSize := fs.Int("slowlog", 128, "slow-query log ring size")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	expvarName := fs.String("expvar", "zoom", `expvar name for the live metrics snapshot ("" skips /debug/vars publishing)`)
	workers := fs.Int("workers", 0, "default worker pool per batch request (0 = GOMAXPROCS)")
	labels := fs.Bool("labels", false, "build reachability label indexes at load time (deep queries become interval scans; per-request \"labels\" overrides still apply)")
	mmap := fs.Bool("mmap", false, "serve a v3 snapshot straight from a memory map: no load phase, runs materialize lazily on first query")
	_ = fs.Parse(args)
	if *whPath == "" {
		return fmt.Errorf("serve: -warehouse is required")
	}
	if _, err := os.Stat(*whPath); err != nil {
		return fmt.Errorf("serve: warehouse snapshot: %w", err)
	}
	reg := zoom.NewMetrics()
	// NewServer fails fast on an already-published expvar name — better a
	// startup error than a server whose /debug/vars silently shows some
	// other registry.
	srv, err := zoom.NewServer(reg, zoom.ServerConfig{
		SlowThreshold: *slow,
		SlowLogSize:   *slowlogSize,
		ExpvarName:    *expvarName,
		Workers:       *workers,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "zoom serve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Load progress feeds /readyz (JSON run counts) and the serve log — one
	// line per quartile so a long cold start is visibly advancing.
	var pmu sync.Mutex
	loggedQuartile := 0
	progress := func(loaded, total int) {
		srv.SetLoadProgress(loaded, total)
		if total == 0 || loaded >= total {
			return
		}
		q := loaded * 4 / total
		pmu.Lock()
		defer pmu.Unlock()
		if q > loggedQuartile {
			loggedQuartile = q
			fmt.Fprintf(os.Stderr, "zoom serve: loading %s: %d/%d runs (%d%%)\n",
				*whPath, loaded, total, q*25)
		}
	}

	loadErr := make(chan error, 1)
	sysc := make(chan *zoom.System, 1)
	go func() {
		opts := zoom.LoadOptions{Workers: *parallel, Metrics: reg, Labels: *labels, Progress: progress}
		var (
			sys *zoom.System
			err error
		)
		if *mmap {
			sys, err = zoom.OpenSnapshot(*whPath, opts)
		} else {
			sys, err = loadSystemOpts(*whPath, opts)
		}
		if err != nil {
			loadErr <- err
			stop() // shut the server down; the error is reported below
			return
		}
		sysc <- sys
		sys.ConnectServer(srv)
		extra := ""
		if *labels {
			lc := sys.LabelCounters()
			extra = fmt.Sprintf(", %d label indexes", lc.Builds)
		}
		if snap := sys.Stats().Snapshot; snap.Mapped {
			fmt.Fprintf(os.Stderr, "zoom serve: warehouse %s mapped (v%d snapshot, %d runs, %d bytes%s), ready\n",
				*whPath, snap.Version, snap.RunsTotal, snap.MappedBytes, extra)
			return
		}
		fmt.Fprintf(os.Stderr, "zoom serve: warehouse %s loaded (%d runs%s), ready\n",
			*whPath, len(sys.RunIDs()), extra)
	}()
	err = srv.Serve(ctx, ln, *drain)
	select {
	case sys := <-sysc:
		// Requests have drained; release the snapshot mapping.
		if cerr := sys.Close(); cerr != nil && err == nil {
			err = cerr
		}
	default:
	}
	select {
	case lerr := <-loadErr:
		return fmt.Errorf("serve: loading %s: %w", *whPath, lerr)
	default:
	}
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	return err
}

func readSpec(path string) (*zoom.Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return zoom.DecodeSpec(data)
}

func cmdSpec(args []string) error {
	fs := flag.NewFlagSet("spec", flag.ExitOnError)
	file := fs.String("file", "", "specification JSON file (required)")
	asDot := fs.Bool("dot", false, "emit Graphviz DOT instead of a summary")
	asGraphML := fs.Bool("graphml", false, "emit GraphML instead of a summary")
	_ = fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("spec: -file is required")
	}
	s, err := readSpec(*file)
	if err != nil {
		return err
	}
	if *asDot {
		fmt.Print(zoom.SpecDOT(s))
		return nil
	}
	if *asGraphML {
		fmt.Print(zoom.SpecGraphML(s))
		return nil
	}
	fmt.Printf("%s\nscientific modules: %v\nloops: %v\n",
		s, s.ScientificModules(), !s.IsAcyclic())
	return nil
}

func cmdView(args []string) error {
	fs := flag.NewFlagSet("view", flag.ExitOnError)
	file := fs.String("file", "", "specification JSON file (required)")
	relevant := fs.String("relevant", "", "comma-separated relevant modules")
	asDot := fs.Bool("dot", false, "emit Graphviz DOT of the induced view")
	_ = fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("view: -file is required")
	}
	s, err := readSpec(*file)
	if err != nil {
		return err
	}
	rel := splitList(*relevant)
	v, err := zoom.BuildUserView(s, rel)
	if err != nil {
		return err
	}
	if err := zoom.CheckView(v, rel); err != nil {
		return fmt.Errorf("internal: builder output fails properties: %w", err)
	}
	if *asDot {
		fmt.Print(zoom.ViewDOT("view", v))
		return nil
	}
	fmt.Printf("user view (size %d):\n", v.Size())
	for _, c := range v.Composites() {
		fmt.Printf("  %-10s = %v\n", c, v.Members(c))
	}
	return nil
}

func loadSystem(path string) (*zoom.System, error) {
	return loadSystemWith(path, 0, nil)
}

// loadSystemWith opens a warehouse snapshot (either format, auto-detected)
// with an explicit worker count for the parallel run reconstruction and an
// optional metrics registry to attach (the snapshot load is then recorded
// there too).
func loadSystemWith(path string, workers int, reg *zoom.Metrics) (*zoom.System, error) {
	return loadSystemOpts(path, zoom.LoadOptions{Workers: workers, Metrics: reg})
}

// loadSystemOpts is loadSystemWith with the full load options (label
// indexing in particular). A missing snapshot file yields an empty system
// with the options still applied.
func loadSystemOpts(path string, opts zoom.LoadOptions) (*zoom.System, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			sys := zoom.NewSystem()
			if opts.Metrics != nil {
				sys.AttachMetrics(opts.Metrics)
			}
			if opts.Labels {
				sys.SetLabelIndex(true)
			}
			return sys, nil
		}
		return nil, err
	}
	defer f.Close()
	return zoom.LoadSystemWith(f, opts)
}

// snapshotFormat sniffs an existing snapshot file's format ("json",
// "binary" for v2, "v3") so re-saving can keep the format it found. A
// missing or unreadable file defaults to "json".
func snapshotFormat(path string) string {
	f, err := os.Open(path)
	if err != nil {
		return "json"
	}
	defer f.Close()
	var head [5]byte
	if _, err := io.ReadFull(f, head[:]); err != nil || head[0] != 'Z' {
		return "json"
	}
	if head[4] == 3 {
		return "v3"
	}
	return "binary"
}

func saveSystem(sys *zoom.System, path string) error {
	return saveSystemFormat(sys, path, "json")
}

// saveSystemFormat writes a snapshot atomically: the bytes go to a
// temporary file in the destination directory, which is fsynced and then
// renamed over the target. A failed save — encoding error, full disk,
// closed system — leaves an existing snapshot untouched and no temp file
// behind.
func saveSystemFormat(sys *zoom.System, path, format string) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	switch format {
	case "binary":
		err = sys.SaveBinary(f)
	case "v3":
		err = sys.SaveV3(f)
	default:
		err = sys.Save(f)
	}
	if err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	whPath := fs.String("warehouse", "", "warehouse snapshot file (created if absent)")
	file := fs.String("file", "", "specification JSON to register")
	logPath := fs.String("log", "", "workflow log (JSON lines) to ingest")
	runID := fs.String("run", "", "run id for the ingested log")
	specName := fs.String("spec", "", "spec name the log executes (default: the -file spec)")
	parallel := fs.Int("parallel", 0, "workers for parallel snapshot loading (0 = GOMAXPROCS)")
	format := fs.String("format", "keep", "snapshot format to write: json, binary, or keep (preserve the existing file's format)")
	_ = fs.Parse(args)
	if *whPath == "" {
		return fmt.Errorf("load: -warehouse is required")
	}
	switch *format {
	case "json", "binary", "v3":
	case "keep":
		*format = snapshotFormat(*whPath)
	default:
		return fmt.Errorf("load: unknown -format %q (want json, binary, v3 or keep)", *format)
	}
	sys, err := loadSystemWith(*whPath, *parallel, nil)
	if err != nil {
		return err
	}
	if *file != "" {
		s, err := readSpec(*file)
		if err != nil {
			return err
		}
		if err := sys.RegisterSpec(s); err != nil {
			return err
		}
		if *specName == "" {
			*specName = s.Name()
		}
		fmt.Printf("registered %s\n", s)
	}
	if *logPath != "" {
		if *runID == "" || *specName == "" {
			return fmt.Errorf("load: -run and -spec are required with -log")
		}
		f, err := os.Open(*logPath)
		if err != nil {
			return err
		}
		n, err := sys.LoadLogReader(*runID, *specName, f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("ingested %d events as run %q\n", n, *runID)
	}
	return saveSystemFormat(sys, *whPath, *format)
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	whPath := fs.String("warehouse", "", "warehouse snapshot file (required)")
	runID := fs.String("run", "", "run id (required)")
	data := fs.String("data", "", "data object id, or a comma-separated list for a batch (required)")
	relevant := fs.String("relevant", "", "relevant modules for the view (empty = UAdmin)")
	mode := fs.String("mode", "deep", "deep | immediate | derived")
	parallel := fs.Int("parallel", 1, "worker goroutines for a multi-data deep batch (0 = GOMAXPROCS)")
	asDot := fs.Bool("dot", false, "emit Graphviz DOT of the provenance graph")
	asProv := fs.Bool("prov", false, "emit W3C PROV-JSON (deep mode only)")
	stats := fs.Bool("stats", false, "print warehouse statistics (catalog, cache, compact index, labels) after answering")
	trace := fs.Bool("trace", false, "print a per-stage timing breakdown (cold query, then warm re-query; deep mode, single -data)")
	labels := fs.Bool("labels", false, "build reachability label indexes at load time and answer via interval scans")
	_ = fs.Parse(args)
	if *whPath == "" || *runID == "" || *data == "" {
		return fmt.Errorf("query: -warehouse, -run and -data are required")
	}
	var reg *zoom.Metrics
	if *trace {
		reg = zoom.NewMetrics()
	}
	sys, err := loadSystemOpts(*whPath, zoom.LoadOptions{Metrics: reg, Labels: *labels})
	if err != nil {
		return err
	}
	r, err := sys.Run(*runID)
	if err != nil {
		return err
	}
	s, err := sys.Spec(r.SpecName())
	if err != nil {
		return err
	}
	var v *zoom.UserView
	if *relevant == "" {
		v = zoom.UAdmin(s)
	} else if v, err = zoom.BuildUserView(s, splitList(*relevant)); err != nil {
		return err
	}
	if ids := splitList(*data); len(ids) > 1 {
		if *mode != "deep" {
			return fmt.Errorf("query: multiple -data ids require -mode deep")
		}
		if *asDot || *asProv || *trace {
			return fmt.Errorf("query: -dot/-prov/-trace need a single -data id")
		}
		results, err := sys.DeepProvenanceBatch(context.Background(), *runID, v, ids, *parallel)
		if err != nil {
			return err
		}
		for i, res := range results {
			fmt.Printf("deep provenance of %s: %d executions, %d data objects\n",
				ids[i], res.NumSteps(), res.NumData())
		}
		// Report the pool size actually used, mirroring ServeConcurrently's
		// clamping of -parallel <= 0 (GOMAXPROCS) and oversized pools.
		workers := *parallel
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(ids) {
			workers = len(ids)
		}
		cs := sys.CacheCounters()
		fmt.Printf("batch of %d answered with %d workers: closure cache %d hits / %d misses / %d shared\n",
			len(ids), workers, cs.Hits, cs.Misses, cs.SharedWaits)
		if *stats {
			printStats(sys)
		}
		return nil
	}
	switch *mode {
	case "deep":
		if *trace {
			// Cold then warm: the first query computes the UAdmin closure
			// (or finds it cached from an earlier process — the snapshot
			// cache does not persist, so here it is the cold path), the
			// second re-serves it from the closure cache. The warm line is
			// the paper's view-switch cost. The breakdown goes to stderr so
			// stdout stays exactly the query answer (-prov output remains
			// valid JSON, -dot valid DOT) under -trace.
			_, cold, err := sys.DeepProvenanceTraced(*runID, v, *data)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "cold %s\n", cold)
			_, warm, err := sys.DeepProvenanceTraced(*runID, v, *data)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "warm %s\n", warm)
		}
		res, err := sys.DeepProvenance(*runID, v, *data)
		if err != nil {
			return err
		}
		switch {
		case *asProv:
			out, err := zoom.PROVJSON(res)
			if err != nil {
				return err
			}
			fmt.Println(string(out))
		case *asDot:
			fmt.Print(zoom.ProvenanceDOT(res))
		default:
			fmt.Print(zoom.ProvenanceText(res))
		}
	case "immediate":
		ex, err := sys.ImmediateProvenance(*runID, v, *data)
		if err != nil {
			return err
		}
		if ex == nil {
			fmt.Printf("%s is user/workflow input; provenance is the recorded metadata\n", *data)
			return nil
		}
		fmt.Printf("produced by execution %s of %s (steps %v) from %s\n",
			ex.ID, ex.Composite, ex.Steps, zoom.FormatDataSet(ex.Inputs))
	case "derived":
		res, err := sys.DeepDerivation(*runID, v, *data)
		if err != nil {
			return err
		}
		fmt.Printf("derived from %s: %d executions, data %s\n",
			*data, res.NumSteps(), zoom.FormatDataSet(res.Data))
	default:
		return fmt.Errorf("query: unknown -mode %q", *mode)
	}
	if *stats {
		printStats(sys)
	}
	return nil
}

// printStats renders the warehouse statistics — catalog row counts, the
// closure-cache counters, and the compact-index footprint (interned ids,
// CSR bytes, closure bitset words).
func printStats(sys *zoom.System) {
	st := sys.Stats()
	fmt.Println(st)
	cc := sys.CacheCounters()
	fmt.Printf("cache: hits=%d misses=%d shared=%d computes=%d stores=%d evictions=%d invalidations=%d drops=%d\n",
		cc.Hits, cc.Misses, cc.SharedWaits, cc.Computes, cc.Stores, cc.Evictions, cc.Invalidations, cc.Drops)
	fmt.Printf("index: runs=%d interned-steps=%d interned-data=%d csr=%dB closure-words=%d\n",
		st.Index.IndexedRuns, st.Index.InternedSteps, st.Index.InternedData,
		st.Index.CSRBytes, st.Index.ClosureWords)
	if st.Labels.Enabled || st.Labels.LabeledRuns > 0 || st.Labels.Fallbacks > 0 {
		fmt.Printf("labels: runs=%d chains=%d bytes=%d builds=%d hits=%d fallbacks=%d\n",
			st.Labels.LabeledRuns, st.Labels.Chains, st.Labels.LabelBytes,
			st.Labels.Builds, st.Labels.Hits, st.Labels.Fallbacks)
	}
}

// cmdStats prints warehouse statistics on their own; -json emits the whole
// Stats structure — catalog, cache counters, index footprint, and the
// metrics snapshot — as one JSON document. A metrics registry is attached
// before loading, so the ingest section reflects the load just performed
// (snapshot load time, runs loaded). With -cluster it talks to a running
// router instead of a local snapshot: GET /v1/cluster/stats returns the
// router's own metrics plus every worker's registry merged into one
// cluster-wide snapshot.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	whPath := fs.String("warehouse", "", "warehouse snapshot file (or use -cluster)")
	clusterURL := fs.String("cluster", "", "router base URL; fetch aggregated cluster statistics instead of reading a snapshot")
	asJSON := fs.Bool("json", false, "emit the full statistics, including the metrics snapshot, as JSON")
	parallel := fs.Int("parallel", 0, "workers for parallel snapshot loading (0 = GOMAXPROCS)")
	_ = fs.Parse(args)
	if *clusterURL != "" {
		return clusterStats(*clusterURL, *asJSON)
	}
	if *whPath == "" {
		return fmt.Errorf("stats: -warehouse or -cluster is required")
	}
	reg := zoom.NewMetrics()
	sys, err := loadSystemWith(*whPath, *parallel, reg)
	if err != nil {
		return err
	}
	if *asJSON {
		out, err := json.MarshalIndent(sys.Stats(), "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	printStats(sys)
	return nil
}

// clusterStats implements `zoom stats -cluster URL`: one request to the
// router answers for the whole cluster.
func clusterStats(base string, asJSON bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	cl := zoomclient.New(base, zoomclient.Options{})
	cs, err := cl.ClusterStats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	if asJSON {
		out, err := json.MarshalIndent(cs, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(out))
		return nil
	}
	fmt.Printf("cluster: %d/%d shards reporting (trace %s)\n", cs.ShardsOK, cs.ShardsTotal, cs.TraceID)
	if cs.Partial {
		fmt.Println("  PARTIAL: some shards failed to answer")
	}
	for _, sh := range cs.Shards {
		fmt.Printf("  shard %d: %s\n", sh.Shard, sh.Addr)
	}
	// The merged snapshot's headline counters; the full document is -json.
	var agg struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal(cs.Cluster, &agg); err == nil && len(agg.Counters) > 0 {
		for _, k := range []string{"http.requests", "http.errors", "http.slow_requests", "query.cache_hits", "query.cache_misses"} {
			if v, ok := agg.Counters[k]; ok {
				fmt.Printf("  %-22s %d\n", k, v)
			}
		}
	}
	return nil
}

func cmdRuns(args []string) error {
	fs := flag.NewFlagSet("runs", flag.ExitOnError)
	whPath := fs.String("warehouse", "", "warehouse snapshot file (required)")
	_ = fs.Parse(args)
	if *whPath == "" {
		return fmt.Errorf("runs: -warehouse is required")
	}
	sys, err := loadSystem(*whPath)
	if err != nil {
		return err
	}
	fmt.Println(sys.Stats())
	for _, name := range sys.SpecNames() {
		fmt.Printf("spec %s (views: %v)\n", name, sys.ViewNames(name))
	}
	for _, id := range sys.RunIDs() {
		r, err := sys.Run(id)
		if err != nil {
			return err
		}
		fmt.Printf("  %s\n", r)
	}
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}
