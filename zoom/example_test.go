package zoom_test

import (
	"fmt"

	"repro/zoom"
)

// Example reproduces the paper's Section II contrast between Joe's and
// Mary's answers to the same provenance query.
func Example() {
	s := zoom.Phylogenomics()
	sys := zoom.NewSystem()
	if err := sys.RegisterSpec(s); err != nil {
		panic(err)
	}
	if err := sys.LoadRun(zoom.PhylogenomicsRun()); err != nil {
		panic(err)
	}

	joe, _ := zoom.BuildUserView(s, zoom.JoeRelevant())
	mary, _ := zoom.BuildUserView(s, zoom.MaryRelevant())

	exJoe, _ := sys.ImmediateProvenance("fig2", joe, "d413")
	exMary, _ := sys.ImmediateProvenance("fig2", mary, "d413")
	fmt.Println("Joe: ", zoom.FormatDataSet(exJoe.Inputs))
	fmt.Println("Mary:", zoom.FormatDataSet(exMary.Inputs))
	// Output:
	// Joe:  {d308..d408}
	// Mary: {d411}
}

// ExampleBuildUserView shows RelevUserViewBuilder reconstructing Joe's view
// from his three relevant modules.
func ExampleBuildUserView() {
	s := zoom.Phylogenomics()
	v, err := zoom.BuildUserView(s, []string{"M2", "M3", "M7"})
	if err != nil {
		panic(err)
	}
	fmt.Println("size:", v.Size())
	fmt.Println("alignment composite:", v.Members("M3"))
	fmt.Println("tree composite:", v.Members("M7"))
	// Output:
	// size: 4
	// alignment composite: [M3 M4 M5]
	// tree composite: [M6 M7 M8]
}

// ExampleSystem_DeepProvenance queries the final tree of the Figure 2 run.
func ExampleSystem_DeepProvenance() {
	sys := zoom.NewSystem()
	s := zoom.Phylogenomics()
	_ = sys.RegisterSpec(s)
	_ = sys.LoadRun(zoom.PhylogenomicsRun())
	joe, _ := zoom.BuildUserView(s, zoom.JoeRelevant())

	res, err := sys.DeepProvenance("fig2", joe, "d447")
	if err != nil {
		panic(err)
	}
	fmt.Println("executions:", res.NumSteps())
	fmt.Println("loop data hidden from Joe:", !contains(res.Data, "d411"))
	// Output:
	// executions: 4
	// loop data hidden from Joe: true
}

// ExampleExecute simulates a run of a user-defined workflow and replays
// its event log.
func ExampleExecute() {
	s := zoom.NewSpec("demo")
	_ = s.AddModule(zoom.Module{Name: "A"})
	_ = s.AddModule(zoom.Module{Name: "B"})
	_ = s.AddEdge(zoom.Input, "A")
	_ = s.AddEdge("A", "B")
	_ = s.AddEdge("B", zoom.Output)

	r, events, err := zoom.Execute(s, zoom.ExecConfig{RunID: "demo-1", Seed: 1})
	if err != nil {
		panic(err)
	}
	back, _ := zoom.RunFromLog("demo-1", "demo", events)
	fmt.Println("steps:", r.NumSteps(), "replayed:", back.NumSteps())
	// Output:
	// steps: 2 replayed: 2
}

// ExampleRefineComposite drills into one composite of Joe's view.
func ExampleRefineComposite() {
	s := zoom.Phylogenomics()
	joe, _ := zoom.BuildUserView(s, zoom.JoeRelevant())
	refined, err := zoom.RefineComposite(joe, "M7", []string{"M7", "M8"})
	if err != nil {
		panic(err)
	}
	fmt.Println("before:", joe.Size(), "after:", refined.Size())
	fmt.Println("refines:", zoom.Refines(refined, joe))
	// Output:
	// before: 4 after: 5
	// refines: true
}

func contains(xs []string, v string) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
