// Package zoom is the public API of the ZOOM*UserViews reproduction — a
// system for querying and managing workflow provenance through user views
// (Biton, Cohen-Boulakia, Davidson, Hara: "Querying and Managing Provenance
// through User Views in Scientific Workflows", ICDE 2008).
//
// The typical flow mirrors the paper's architecture (Figure 8):
//
//	sys := zoom.NewSystem()
//	sys.RegisterSpec(spec)                   // workflow definition
//	sys.LoadLog(runID, spec.Name(), events)  // extracted from the workflow log
//	view, _ := zoom.BuildUserView(spec, []string{"M2", "M3", "M7"})
//	res, _ := sys.DeepProvenance(runID, view, "d447")
//
// Everything below is a thin veneer over the internal packages; the
// exported names are stable.
package zoom

import (
	"context"
	"io"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/dot"
	"repro/internal/export"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/query"
	"repro/internal/run"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/warehouse"
	"repro/internal/wflog"
)

// Re-exported model types.
type (
	// Spec is a workflow specification (Section II).
	Spec = spec.Spec
	// Module is a uniquely named workflow task.
	Module = spec.Module
	// Kind classifies a module (scientific / formatting / interaction).
	Kind = spec.Kind
	// UserView is a partition of a specification's modules.
	UserView = core.UserView
	// Run is a workflow execution.
	Run = run.Run
	// Step is one execution of a module within a run.
	Step = run.Step
	// ExecConfig controls the built-in workflow executor.
	ExecConfig = run.Config
	// Event is a workflow-log record.
	Event = wflog.Event
	// Execution is a (possibly virtual) composite execution.
	Execution = composite.Execution
	// Result is a provenance query answer under a view.
	Result = provenance.Result
	// Query is one (run, view, data) deep-provenance request for the
	// concurrent serving API.
	Query = provenance.Query
	// QueryResult pairs a Query with its outcome.
	QueryResult = provenance.QueryResult
	// CacheCounters are the closure cache's hit/miss/singleflight/eviction
	// counters.
	CacheCounters = warehouse.CacheCounters
	// LabelCounters are the reachability-label lifecycle counters (builds,
	// hits, counted fallbacks).
	LabelCounters = warehouse.LabelCounters
	// LabelsStats summarizes the label indexes (labeled runs, chains, label
	// bytes) plus the lifecycle counters — the Labels section of Stats.
	LabelsStats = warehouse.LabelsStats
	// ClosureStrategy selects how a deep-provenance closure is computed
	// (StrategyAuto / StrategyLabels / StrategyBFS).
	ClosureStrategy = warehouse.ClosureStrategy
	// Metrics is the observability registry (counters, gauges, latency
	// histograms) a System can be attached to.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time export of a Metrics registry.
	MetricsSnapshot = obs.Snapshot
	// QueryTrace is the per-stage timing breakdown of one traced query.
	QueryTrace = provenance.QueryTrace
	// Trace is a request-scoped span tree; SpanNode one snapshotted span.
	Trace = obs.Trace
	// Span is one running stage of a Trace.
	Span = obs.Span
	// SpanNode is one span of a finished (or snapshotted) trace tree.
	SpanNode = obs.SpanNode
	// Server is the HTTP provenance service behind `zoom serve`.
	Server = server.Server
	// ServerConfig tunes a Server (slow-query threshold and log size,
	// expvar name, batch worker bound).
	ServerConfig = server.Config
	// SlowEntry is one slow-query log record.
	SlowEntry = server.SlowEntry
	// Generator produces synthetic workloads (Section V.A).
	Generator = gen.Generator
	// WorkflowClass is a Table I workflow profile.
	WorkflowClass = gen.WorkflowClass
	// RunClass is a Table II run profile.
	RunClass = gen.RunClass
	// Report is an experiment result table.
	Report = bench.Report
	// BenchOptions scales the experiment harness.
	BenchOptions = bench.Options
	// BenchExperiment is one selectable experiment of the harness.
	BenchExperiment = bench.Experiment
)

// Reserved node identifiers and module kinds.
const (
	Input           = spec.Input
	Output          = spec.Output
	KindScientific  = spec.KindScientific
	KindFormatting  = spec.KindFormatting
	KindInteraction = spec.KindInteraction
)

// Closure strategies for per-query label selection.
const (
	// StrategyAuto follows the system's SetLabelIndex toggle.
	StrategyAuto = warehouse.StrategyAuto
	// StrategyLabels prefers the reachability-label path (counted fallback
	// when a run has no labels).
	StrategyLabels = warehouse.StrategyLabels
	// StrategyBFS forces the bitset-BFS traversal.
	StrategyBFS = warehouse.StrategyBFS
)

// NewSpec returns an empty specification.
func NewSpec(name string) *Spec { return spec.New(name) }

// DecodeSpec parses and validates a JSON specification.
func DecodeSpec(data []byte) (*Spec, error) { return spec.Decode(data) }

// EncodeSpec serializes a specification to JSON.
func EncodeSpec(s *Spec) ([]byte, error) { return spec.Encode(s) }

// Phylogenomics returns the paper's running example (Figure 1).
func Phylogenomics() *Spec { return spec.Phylogenomics() }

// PhylogenomicsRun returns the paper's example run (Figure 2).
func PhylogenomicsRun() *Run { return run.Figure2() }

// JoeRelevant and MaryRelevant return the Section I relevant-module sets.
func JoeRelevant() []string  { return spec.PhyloRelevantJoe() }
func MaryRelevant() []string { return spec.PhyloRelevantMary() }

// BuildUserView runs RelevUserViewBuilder: it constructs a user view that
// has one composite per relevant module, preserves and is complete w.r.t.
// dataflow (Properties 1-3), and is minimal (Theorem 1).
func BuildUserView(s *Spec, relevant []string) (*UserView, error) {
	return core.BuildRelevant(s, relevant)
}

// NewUserView builds a view from an explicit partition.
func NewUserView(s *Spec, blocks map[string][]string) (*UserView, error) {
	return core.NewUserView(s, blocks)
}

// UAdmin returns the finest view (every module visible).
func UAdmin(s *Spec) *UserView { return core.UAdmin(s) }

// UBlackBox returns the coarsest view (the whole workflow opaque).
func UBlackBox(s *Spec) (*UserView, error) { return core.UBlackBox(s) }

// CheckView verifies Properties 1-3 for a view and relevant set.
func CheckView(v *UserView, relevant []string) error { return core.CheckAll(v, relevant) }

// Violation is one diagnostic finding of DiagnoseView.
type Violation = core.Violation

// DiagnoseView returns every Property 1-3 violation of a view (empty for a
// good view) — the complete list an interactive view editor shows, where
// CheckView stops at the first.
func DiagnoseView(v *UserView, relevant []string) []Violation {
	return core.Diagnose(v, relevant)
}

// MinimalView reports whether no pairwise composite merge of v preserves
// Properties 1-3, returning a witness pair otherwise.
func MinimalView(v *UserView, relevant []string) (bool, *core.MergeWitness) {
	return core.Minimal(v, relevant)
}

// MinimumView searches exhaustively for a smallest view satisfying
// Properties 1-3 (feasible for small specifications; the general
// complexity is the paper's open problem).
func MinimumView(s *Spec, relevant []string) (*UserView, error) {
	return core.MinimumView(s, relevant)
}

// AddRelevant / RemoveRelevant rebuild a view after flagging or unflagging
// one module — the prototype's interactive UserViewBuilder loop. Both
// return the updated relevant set alongside the new view.
func AddRelevant(s *Spec, relevant []string, module string) (*UserView, []string, error) {
	return core.AddRelevant(s, relevant, module)
}

func RemoveRelevant(s *Spec, relevant []string, module string) (*UserView, []string, error) {
	return core.RemoveRelevant(s, relevant, module)
}

// SubSpec extracts one composite of a view as a standalone workflow
// specification; RefineComposite splits the composite in place by running
// the builder inside it (hierarchical views, Section VII).
func SubSpec(v *UserView, composite string) (*Spec, error) {
	return core.SubSpec(v, composite)
}

func RefineComposite(v *UserView, composite string, relevantInside []string) (*UserView, error) {
	return core.RefineComposite(v, composite, relevantInside)
}

// Refines reports whether view a is a finer partition than view b.
func Refines(a, b *UserView) bool { return core.Refines(a, b) }

// Execute simulates a run of a specification, returning the run and the
// event log a workflow system would have emitted.
func Execute(s *Spec, cfg ExecConfig) (*Run, []Event, error) { return run.Execute(s, cfg) }

// RunFromLog reconstructs a run from an event log.
func RunFromLog(runID, specName string, events []Event) (*Run, error) {
	return run.FromLog(runID, specName, events)
}

// ReadLog and WriteLog (de)serialize JSON-lines event logs.
func ReadLog(r io.Reader) ([]Event, error)       { return wflog.Read(r) }
func WriteLog(w io.Writer, events []Event) error { return wflog.Write(w, events) }
func ValidateLog(events []Event) error           { return wflog.ValidateSequence(events) }

// NewGenerator returns a seeded workload generator.
func NewGenerator(seed int64) *Generator { return gen.NewGenerator(seed) }

// WorkflowClasses returns the Table I profiles; RunClasses the Table II
// profiles.
func WorkflowClasses() []WorkflowClass { return gen.Classes() }
func RunClasses() []RunClass           { return gen.RunClasses() }

// UBioRelevant returns the scientific modules of a generated workflow —
// the stand-in for the paper's biologist-picked relevant sets.
func UBioRelevant(s *Spec) []string { return gen.UBioRelevant(s) }

// System bundles a provenance warehouse with its query engine.
type System struct {
	w *warehouse.Warehouse
	e *provenance.Engine
}

// NewSystem returns a system with an empty warehouse.
func NewSystem() *System {
	w := warehouse.New(0)
	return &System{w: w, e: provenance.NewEngine(w)}
}

// RegisterSpec stores a workflow specification.
func (s *System) RegisterSpec(sp *Spec) error { return s.w.RegisterSpec(sp) }

// RegisterView stores a named user view.
func (s *System) RegisterView(name string, v *UserView) error { return s.w.RegisterView(name, v) }

// View retrieves a registered view.
func (s *System) View(specName, viewName string) (*UserView, error) {
	return s.w.View(specName, viewName)
}

// Spec retrieves a registered specification.
func (s *System) Spec(name string) (*Spec, error) { return s.w.Spec(name) }

// SpecNames, ViewNames, RunIDs list the warehouse contents.
func (s *System) SpecNames() []string                { return s.w.SpecNames() }
func (s *System) ViewNames(specName string) []string { return s.w.ViewNames(specName) }
func (s *System) RunIDs() []string                   { return s.w.RunIDs() }

// LoadRun stores a validated, conformant run.
func (s *System) LoadRun(r *Run) error { return s.w.LoadRun(r) }

// LoadLog ingests an event log as a run.
func (s *System) LoadLog(runID, specName string, events []Event) error {
	return s.w.LoadLog(runID, specName, events)
}

// Run retrieves a loaded run.
func (s *System) Run(id string) (*Run, error) { return s.w.Run(id) }

// DeepProvenance answers "what data objects and steps were used to produce
// d?" with respect to a user view, using the compute-UAdmin-then-project
// strategy with closure caching.
func (s *System) DeepProvenance(runID string, v *UserView, d string) (*Result, error) {
	return s.e.DeepProvenance(runID, v, d)
}

// DeepProvenanceTraced is DeepProvenance plus a per-stage timing breakdown
// (closure-cache lookup, closure compute, view projection) — the legible
// analogue of the paper's strategy-timing table, printed by
// `zoom query -trace`.
func (s *System) DeepProvenanceTraced(runID string, v *UserView, d string) (*Result, *QueryTrace, error) {
	return s.e.DeepProvenanceTraced(runID, v, d)
}

// DeepProvenanceCtx is DeepProvenance with a context: cancellation is
// honored at stage boundaries, and when the context carries a trace
// (NewTrace / StartSpan) the engine records its stages as spans.
func (s *System) DeepProvenanceCtx(ctx context.Context, runID string, v *UserView, d string) (*Result, error) {
	return s.e.DeepProvenanceCtx(ctx, runID, v, d)
}

// DeepProvenanceTracedCtx combines both tracing forms: the returned
// QueryTrace has the flat stage numbers, and a span-carrying context
// additionally gets the structured span tree.
func (s *System) DeepProvenanceTracedCtx(ctx context.Context, runID string, v *UserView, d string) (*Result, *QueryTrace, error) {
	return s.e.DeepProvenanceTracedCtx(ctx, runID, v, d)
}

// NewTrace starts a request-scoped span tree; derive a context with
// (*Trace).Context and pass it through Ctx-suffixed query methods.
func NewTrace(name string) *Trace { return obs.NewTrace(name) }

// StartSpan opens a child span on a traced context (no-op and free on an
// untraced one).
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return obs.StartSpan(ctx, name)
}

// NewServer returns an HTTP provenance server wired to the registry (one
// is created when nil). It fails when cfg.ExpvarName is already published.
// The server answers /healthz immediately and 503s API requests until
// ConnectServer installs a loaded system.
func NewServer(reg *Metrics, cfg ServerConfig) (*Server, error) {
	return server.New(reg, cfg)
}

// ConnectServer installs this system's query engine into the server,
// flipping it ready — typically called after a background warehouse load.
func (s *System) ConnectServer(srv *Server) { srv.SetEngine(s.e) }

// Cluster scale-out types: a consistent-hash ring placing run ids on
// shards, and a stateless router that forwards run-addressed queries to
// the owning worker and scatter-gathers the catalog endpoints.
type (
	// Ring places run ids on N abstract shard indexes by consistent
	// hashing; the router maps indexes onto worker addresses and
	// `zoom snapshot shard` maps them onto output files, so both agree on
	// placement by construction.
	Ring = cluster.Ring
	// Router is the scatter-gather HTTP front over N workers.
	Router = cluster.Router
	// RouterConfig tunes a Router (replica groups in shard order,
	// timeouts, fan-out bound, health polling, circuit breaking, request
	// hedging, response caching).
	RouterConfig = cluster.Config
)

// ParseWorkers parses a `-workers` style worker list into replica groups
// in shard order: semicolons separate shards and commas separate
// replicas within a shard ("a,b;c,d"); without any semicolon, commas
// separate single-replica shards (the legacy syntax).
func ParseWorkers(s string) [][]string { return cluster.ParseWorkers(s) }

// NewRing returns a consistent-hash ring over n shards (replicas <= 0
// selects the default virtual-node count; it must match across the
// router and the snapshot splitter).
func NewRing(n, replicas int) (*Ring, error) { return cluster.NewRing(n, replicas) }

// NewRouter returns a cluster router wired to the registry (one is
// created when nil). Serve runs it with health polling; Handler mounts
// it on an existing server.
func NewRouter(reg *Metrics, cfg RouterConfig) (*Router, error) { return cluster.New(reg, cfg) }

// Subset returns an independent system holding only the runs keep
// selects, with the full spec and view catalog — the resharding
// primitive behind `zoom snapshot shard`. The subset shares the parent's
// immutable run storage; for a system opened from a v3 snapshot
// (OpenSnapshot), save or finish using the subset before closing the
// parent.
func (s *System) Subset(keep func(runID string) bool) (*System, error) {
	w, err := s.w.Subset(keep)
	if err != nil {
		return nil, err
	}
	return &System{w: w, e: provenance.NewEngine(w)}, nil
}

// WriteMetricsPrometheus renders a metrics snapshot in the Prometheus text
// exposition format (what the server's /metrics serves).
func WriteMetricsPrometheus(w io.Writer, snap MetricsSnapshot, namespace string) {
	obs.WritePrometheus(w, snap, namespace)
}

// DeepProvenanceBatch answers the deep provenance of many data objects of
// one run under one view in parallel with a bounded worker pool
// (workers <= 0 selects GOMAXPROCS). Results come back in dataIDs order
// and are identical to sequential DeepProvenance calls; concurrent misses
// on the same cached closure are computed once (singleflight).
func (s *System) DeepProvenanceBatch(ctx context.Context, runID string, v *UserView, dataIDs []string, workers int) ([]*Result, error) {
	return s.e.DeepProvenanceBatch(ctx, runID, v, dataIDs, workers)
}

// ServeConcurrently answers an arbitrary mix of (run, view, data) queries
// with a bounded worker pool and context cancellation — the multi-user
// serving path.
func (s *System) ServeConcurrently(ctx context.Context, queries []Query, workers int) []QueryResult {
	return s.e.ServeConcurrently(ctx, queries, workers)
}

// ImmediateProvenance returns the composite execution that produced d
// under the view (nil for user/workflow input).
func (s *System) ImmediateProvenance(runID string, v *UserView, d string) (*Execution, error) {
	return s.e.ImmediateProvenance(runID, v, d)
}

// DeepDerivation answers the inverse canned query: everything derived
// from d, projected through the view.
func (s *System) DeepDerivation(runID string, v *UserView, d string) (*Result, error) {
	return s.e.DeepDerivation(runID, v, d)
}

// Executions lists the composite executions of a run under a view in
// topological order — the run display of the prototype.
func (s *System) Executions(runID string, v *UserView) ([]*Execution, error) {
	return s.e.Executions(runID, v)
}

// DataBetween returns the data passed between two composite executions —
// the prototype's click-on-an-edge interaction.
func (s *System) DataBetween(runID string, v *UserView, fromExec, toExec string) ([]string, error) {
	return s.e.DataBetween(runID, v, fromExec, toExec)
}

// InProvenance reports whether candidate lies in target's deep provenance.
func (s *System) InProvenance(runID, candidate, target string) (bool, error) {
	return s.e.InProvenance(runID, candidate, target)
}

// CommonProvenance returns the visible data shared by the deep provenance
// of two data objects.
func (s *System) CommonProvenance(runID string, v *UserView, d1, d2 string) ([]string, error) {
	return s.e.CommonProvenance(runID, v, d1, d2)
}

// ExecutionProvenance returns the deep provenance of a whole composite
// execution.
func (s *System) ExecutionProvenance(runID string, v *UserView, execID string) (*Result, error) {
	return s.e.ExecutionProvenance(runID, v, execID)
}

// Answer is a canned-query result.
type Answer = query.Answer

// Ask parses and evaluates one of the prototype's canned query forms —
// deep(d), immediate(d), derived(d), execution(e), between(e, e),
// common(d, d), in(d, d) — against a run and view.
func (s *System) Ask(runID string, v *UserView, q string) (*Answer, error) {
	return query.Run(s.e, runID, v, q)
}

// RenderAnswer formats a canned-query answer for terminals.
func RenderAnswer(a *Answer) string { return query.Render(a) }

// PathElement is one hop of a derivation path.
type PathElement = provenance.PathElement

// DerivationPath returns one shortest visible derivation chain from one
// data object to another under a view (nil when no influence exists or the
// target is hidden by the view).
func (s *System) DerivationPath(runID string, v *UserView, from, to string) ([]PathElement, error) {
	return s.e.DerivationPath(runID, v, from, to)
}

// FormatPath renders a derivation path as d1 -[S1]-> d2 -[M3@1]-> d3.
func FormatPath(path []PathElement) string { return provenance.FormatPath(path) }

// RunDiff is the structural comparison of two runs.
type RunDiff = run.Diff

// CompareRuns summarizes how two runs of the same specification differ —
// the per-module execution-count deltas loops produce, plus size and depth.
func CompareRuns(a, b *Run) RunDiff { return run.Compare(a, b) }

// QueryForms lists the canned query forms for help texts.
func QueryForms() []string { return query.Forms() }

// CacheStats exposes the closure-cache hit/miss counters.
func (s *System) CacheStats() (hits, misses int64) { return s.w.CacheStats() }

// CacheCounters snapshots all closure-cache counters, including the
// singleflight shared-wait and eviction counts.
func (s *System) CacheCounters() CacheCounters { return s.w.CacheCounters() }

// Invalidate evicts one cached (run, data) closure and fences out any
// in-flight computation for that run from re-populating the cache.
func (s *System) Invalidate(runID, d string) { s.w.Invalidate(runID, d) }

// SetLabelIndex enables or disables the reachability label index: with it
// on, every loaded run carries a chain-decomposition label set and deep
// closures become per-chain interval scans instead of BFS traversals,
// falling back (counted) to the BFS for runs past the label budget.
// Enabling backfills labels for already-loaded runs.
func (s *System) SetLabelIndex(enabled bool) { s.w.SetLabelIndex(enabled) }

// LabelIndexEnabled reports whether SetLabelIndex(true) is in effect.
func (s *System) LabelIndexEnabled() bool { return s.w.LabelIndexEnabled() }

// LabelCounters snapshots the label lifecycle counters.
func (s *System) LabelCounters() LabelCounters { return s.w.LabelCounters() }

// DeepProvenanceStrategy is DeepProvenance with an explicit closure
// strategy for the UAdmin phase — per-query label selection overriding the
// SetLabelIndex toggle. Results are identical across strategies; only the
// closure computation differs.
func (s *System) DeepProvenanceStrategy(runID string, v *UserView, d string, strat ClosureStrategy) (*Result, error) {
	return s.e.DeepProvenanceStrategy(runID, v, d, strat)
}

// Stats summarizes the warehouse contents (catalog row counts).
func (s *System) Stats() warehouse.Stats { return s.w.Stats() }

// NewMetrics returns an empty observability registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// AttachMetrics wires the system — warehouse, closure cache, and query
// engine — to one metrics registry; nil detaches. Detached instrumentation
// is a few nil checks per query (pinned by BenchmarkObsOverhead), so
// systems that never attach pay nothing measurable.
func (s *System) AttachMetrics(reg *Metrics) {
	s.w.AttachMetrics(reg)
	s.e.AttachMetrics(reg)
}

// Metrics returns the attached registry (nil when detached).
func (s *System) Metrics() *Metrics { return s.w.Metrics() }

// PublishMetrics registers the attached registry with the process-global
// expvar table under the given name, so an HTTP embedder serving
// /debug/vars exports a live snapshot. No-op when detached; an error when
// the name is already published.
func (s *System) PublishMetrics(name string) error {
	return s.w.Metrics().Publish(name)
}

// DropRun removes a run and its cached closures.
func (s *System) DropRun(id string) error { return s.w.DropRun(id) }

// IngestLogStream reads a JSON-lines workflow log and loads it as a run,
// returning the number of events ingested.
func (s *System) IngestLogStream(runID, specName string, r io.Reader) (int, error) {
	return s.w.IngestLogStream(runID, specName, r)
}

// LoadLogReader streams a JSON-lines workflow log straight into run
// construction — no event slice is materialized. It returns the number of
// events ingested.
func (s *System) LoadLogReader(runID, specName string, r io.Reader) (int, error) {
	return s.w.LoadLogReader(runID, specName, r)
}

// LoadOptions tune snapshot loading (worker count of the parallel run
// reconstruction).
type LoadOptions = warehouse.LoadOptions

// Save writes the warehouse as a v1 JSON snapshot; SaveBinary writes the v2
// binary snapshot (smaller, and loadable frame-parallel); SaveV3 writes the
// v3 page-aligned snapshot that OpenSnapshot can serve straight from an
// mmap without a load phase. LoadSystem restores any format, auto-detecting.
func (s *System) Save(out io.Writer) error       { return s.w.Save(out) }
func (s *System) SaveBinary(out io.Writer) error { return s.w.SaveBinary(out) }
func (s *System) SaveV3(out io.Writer) error     { return s.w.SaveV3(out) }

// SnapshotStats describes the snapshot a system is backed by (the Snapshot
// section of Stats): format version, whether the file is memory-mapped, and
// how many runs have been materialized from it so far.
type SnapshotStats = warehouse.SnapshotStats

// OpenSnapshot memory-maps a v3 snapshot file and returns a queryable
// system in O(catalog) time: the run payloads stay on disk and materialize
// lazily, per run, on first touch. The kernel pages data in on demand, so
// time-to-ready is independent of warehouse size. Close the system to
// unmap the file — data returned by earlier queries remains valid.
//
// On platforms without mmap support the file is read into memory instead;
// the lazy-materialization behavior is identical.
func OpenSnapshot(path string, opts LoadOptions) (*System, error) {
	w, err := warehouse.OpenV3(path, 0, opts)
	if err != nil {
		return nil, err
	}
	sys := &System{w: w, e: provenance.NewEngine(w)}
	if opts.Metrics != nil {
		sys.e.AttachMetrics(opts.Metrics)
	}
	return sys, nil
}

// Close releases the system's snapshot mapping (a no-op for systems that
// are not snapshot-backed). After Close every query returns an error;
// results obtained before Close stay valid. Callers must drain in-flight
// queries first.
func (s *System) Close() error { return s.w.Close() }

// LoadSystem restores a system from a Save or SaveBinary snapshot with
// default options.
func LoadSystem(in io.Reader) (*System, error) {
	return LoadSystemWith(in, LoadOptions{})
}

// LoadSystemWith is LoadSystem with explicit load options. When
// opts.Metrics is set, the snapshot load is recorded there and the whole
// system comes up attached.
func LoadSystemWith(in io.Reader, opts LoadOptions) (*System, error) {
	w, err := warehouse.LoadWith(in, 0, opts)
	if err != nil {
		return nil, err
	}
	sys := &System{w: w, e: provenance.NewEngine(w)}
	if opts.Metrics != nil {
		sys.e.AttachMetrics(opts.Metrics)
	}
	return sys, nil
}

// Rendering helpers (Graphviz DOT and plain text).
func SpecDOT(s *Spec) string                  { return dot.Spec(s) }
func ViewDOT(name string, v *UserView) string { return dot.View(name, v) }
func RunDOT(r *Run) string                    { return dot.Run(r) }
func ProvenanceDOT(res *Result) string        { return dot.Provenance(res) }
func ProvenanceText(res *Result) string       { return dot.ProvenanceText(res) }

// FormatDataSet renders a set of data ids compactly ({d308..d408}).
func FormatDataSet(ids []string) string { return run.FormatDataSet(ids) }

// PROVJSON exports a provenance result as a W3C PROV-JSON document —
// entities for the visible data, activities for the visible composite
// executions, used/wasGeneratedBy for the visible flows. Hidden steps and
// hidden data never appear in an export.
func PROVJSON(res *Result) ([]byte, error) { return export.PROVJSON(res) }

// SpecGraphML renders a specification as GraphML.
func SpecGraphML(s *Spec) string { return export.SpecGraphML(s) }

// Experiments: the evaluation harness regenerating the paper's tables and
// figures. DefaultBench is CI-sized; FullBench is paper-sized.
func DefaultBench() BenchOptions              { return bench.Default() }
func FullBench() BenchOptions                 { return bench.Full() }
func RunExperiments(o BenchOptions) []*Report { return bench.RunAll(o) }

// BenchExperiments returns the experiment registry so drivers can select
// by id before running anything.
func BenchExperiments() []BenchExperiment { return bench.Experiments() }
