package zoom_test

import (
	"testing"

	"repro/zoom"
)

// TestRefinementFlow exercises the hierarchical-view and view-evolution
// surface of the facade against the paper example.
func TestRefinementFlow(t *testing.T) {
	s := zoom.Phylogenomics()
	joe, err := zoom.BuildUserView(s, zoom.JoeRelevant())
	if err != nil {
		t.Fatal(err)
	}

	// Evolution: Joe flags M5 -> Mary's view; unflag -> back.
	v2, rel2, err := zoom.AddRelevant(s, zoom.JoeRelevant(), "M5")
	if err != nil {
		t.Fatal(err)
	}
	mary, _ := zoom.BuildUserView(s, zoom.MaryRelevant())
	if !v2.Equal(mary) || len(rel2) != 4 {
		t.Fatalf("AddRelevant wrong: %v", v2)
	}
	v3, _, err := zoom.RemoveRelevant(s, rel2, "M5")
	if err != nil || !v3.Equal(joe) {
		t.Fatalf("RemoveRelevant wrong: %v %v", v3, err)
	}

	// Hierarchy: drill into the tree-building composite.
	sub, err := zoom.SubSpec(joe, "M7")
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumModules() != 3 {
		t.Fatalf("sub-spec modules = %d", sub.NumModules())
	}
	refined, err := zoom.RefineComposite(joe, "M7", []string{"M7", "M8"})
	if err != nil {
		t.Fatal(err)
	}
	if !zoom.Refines(refined, joe) {
		t.Fatal("refinement relation broken")
	}
	if refined.Size() != joe.Size()+1 {
		t.Fatalf("refined size = %d, want %d", refined.Size(), joe.Size()+1)
	}
}

// TestCannedQueriesFacade exercises the prototype's interactive queries
// through the facade.
func TestCannedQueriesFacade(t *testing.T) {
	sys := zoom.NewSystem()
	s := zoom.Phylogenomics()
	r := zoom.PhylogenomicsRun()
	if err := r.AnnotateInput("d415", map[string]string{"who": "lab", "when": "2007-12-01"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadRun(r); err != nil {
		t.Fatal(err)
	}
	mary, _ := zoom.BuildUserView(s, zoom.MaryRelevant())

	execs, err := sys.Executions("fig2", mary)
	if err != nil {
		t.Fatal(err)
	}
	if len(execs) != 6 {
		t.Fatalf("Mary sees %d executions, want 6", len(execs))
	}

	data, err := sys.DataBetween("fig2", mary, "S4", "M3@2")
	if err != nil || len(data) != 1 || data[0] != "d411" {
		t.Fatalf("DataBetween = %v, %v", data, err)
	}

	ok, err := sys.InProvenance("fig2", "d410", "d447")
	if err != nil || !ok {
		t.Fatalf("InProvenance(d410, d447) = %v, %v", ok, err)
	}

	common, err := sys.CommonProvenance("fig2", mary, "d413", "d414")
	if err != nil || len(common) == 0 {
		t.Fatalf("CommonProvenance = %v, %v", common, err)
	}

	ep, err := sys.ExecutionProvenance("fig2", mary, "M3@2")
	if err != nil || ep.NumSteps() == 0 {
		t.Fatalf("ExecutionProvenance = %v, %v", ep, err)
	}

	// Metadata survives warehouse persistence and surfaces in queries.
	res, err := sys.DeepProvenance("fig2", mary, "d415")
	if err != nil {
		t.Fatal(err)
	}
	if res.Metadata["who"] != "lab" {
		t.Fatalf("metadata = %v", res.Metadata)
	}
}

func TestPathAndCompareFacade(t *testing.T) {
	sys := zoom.NewSystem()
	s := zoom.Phylogenomics()
	if err := sys.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadRun(zoom.PhylogenomicsRun()); err != nil {
		t.Fatal(err)
	}
	mary, _ := zoom.BuildUserView(s, zoom.MaryRelevant())
	path, err := sys.DerivationPath("fig2", mary, "d308", "d447")
	if err != nil || len(path) == 0 {
		t.Fatalf("DerivationPath: %v %v", path, err)
	}
	if out := zoom.FormatPath(path); out == "" || out == "(no derivation path)" {
		t.Fatalf("FormatPath = %q", out)
	}
	ans, err := sys.Ask("fig2", mary, "path(d308, d447)")
	if err != nil {
		t.Fatal(err)
	}
	if zoom.RenderAnswer(ans) == "" {
		t.Fatal("empty answer")
	}

	a, _, err := zoom.Execute(s, zoom.ExecConfig{RunID: "a", Seed: 1, LoopIter: [2]int{2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := zoom.Execute(s, zoom.ExecConfig{RunID: "b", Seed: 1, LoopIter: [2]int{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	d := zoom.CompareRuns(a, b)
	if d.SameShape() {
		t.Fatal("different iteration counts reported as same shape")
	}
}
