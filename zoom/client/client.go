// Package client is the typed HTTP client for the zoom provenance
// service — the one place the wire shapes of /v1/query, /v1/batch,
// /v1/runs and /v1/stats are spelled as Go structs outside the server.
// Both halves of the cluster use it: the router's scatter-gather and
// health checks speak through a Client per worker, and the S1 benchmark
// driver uses it as the load generator. It is deliberately dependency-
// free (net/http only) so external tooling can import it without pulling
// in the engine.
//
// Every request is bounded by the client timeout (or the caller's
// context, whichever ends first), reuses pooled keep-alive connections,
// and can carry an explicit trace id in X-Zoom-Trace-Id — the server
// adopts a valid inbound id, which is how one id follows a query through
// the router onto a worker.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// TraceIDHeader is the header carrying the request/response trace id.
const TraceIDHeader = "X-Zoom-Trace-Id"

// ParentSpanHeader carries the router-side parent span reference on a
// forwarded request: the router stamps each replica attempt's span
// reference here, and the worker tags its root span with the (sanitized)
// value, so a stitched trace shows exactly which router attempt a worker
// subtree answers. Workers accept at most 64 bytes of [A-Za-z0-9._-];
// anything else is dropped.
const ParentSpanHeader = "X-Zoom-Parent-Span"

// DefaultTimeout bounds a request when Options.Timeout is zero.
const DefaultTimeout = 30 * time.Second

// Options tune a Client.
type Options struct {
	// Timeout bounds each request end-to-end (connect, send, wait, read).
	// Zero selects DefaultTimeout; negative means no timeout (the
	// caller's context is then the only bound).
	Timeout time.Duration
	// MaxIdleConns bounds the keep-alive pool per host (default 32).
	MaxIdleConns int
	// Transport overrides the HTTP transport (tests, shared pools). When
	// set, MaxIdleConns is ignored.
	Transport http.RoundTripper
}

// Client talks to one zoom server (a worker or a router) at a base URL.
// It is safe for concurrent use.
type Client struct {
	base    string
	http    *http.Client
	timeout time.Duration
}

// New returns a client for the server at base (e.g. "http://127.0.0.1:8080").
func New(base string, opts Options) *Client {
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = DefaultTimeout
	}
	rt := opts.Transport
	if rt == nil {
		maxIdle := opts.MaxIdleConns
		if maxIdle <= 0 {
			maxIdle = 32
		}
		rt = &http.Transport{
			MaxIdleConns:        maxIdle,
			MaxIdleConnsPerHost: maxIdle,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	return &Client{
		base:    strings.TrimRight(base, "/"),
		http:    &http.Client{Transport: rt},
		timeout: timeout,
	}
}

// Base returns the client's base URL.
func (c *Client) Base() string { return c.base }

// Error is a non-2xx response decoded from the server's uniform JSON
// error shape, with the HTTP status attached.
type Error struct {
	Status  int    // HTTP status code
	Message string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("zoom: server status %d: %s", e.Status, e.Message)
}

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	Run      string   `json:"run"`
	Data     string   `json:"data"`
	Kind     string   `json:"kind,omitempty"` // deep (default), immediate, derived
	View     string   `json:"view,omitempty"`
	Relevant []string `json:"relevant,omitempty"`
	Labels   *bool    `json:"labels,omitempty"`
	// TraceID, when a valid 16-hex id, is sent in X-Zoom-Trace-Id and
	// adopted by the server. Not part of the JSON body.
	TraceID string `json:"-"`
	// Trace requests the span tree inline (?trace=1). Against a router
	// this returns the stitched tree: router spans with the worker's
	// subtree grafted under the winning replica attempt. Not part of the
	// JSON body.
	Trace bool `json:"-"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Run      string   `json:"run"`
	Data     []string `json:"data"`
	View     string   `json:"view,omitempty"`
	Relevant []string `json:"relevant,omitempty"`
	Workers  int      `json:"workers,omitempty"`
	TraceID  string   `json:"-"`
	Trace    bool     `json:"-"`
}

// Execution mirrors the server's execution DTO.
type Execution struct {
	ID        string   `json:"id"`
	Composite string   `json:"composite"`
	Steps     []string `json:"steps"`
	Inputs    []string `json:"inputs,omitempty"`
	Outputs   []string `json:"outputs,omitempty"`
}

// Edge mirrors the server's edge DTO.
type Edge struct {
	From string   `json:"from"`
	To   string   `json:"to"`
	Data []string `json:"data"`
}

// Result mirrors the server's provenance result DTO.
type Result struct {
	Root       string            `json:"root"`
	External   bool              `json:"external,omitempty"`
	Metadata   map[string]string `json:"metadata,omitempty"`
	Executions []Execution       `json:"executions"`
	Data       []string          `json:"data"`
	Edges      []Edge            `json:"edges"`
}

// Timing mirrors the server's per-stage timing DTO.
type Timing struct {
	LookupNs  int64 `json:"lookup_ns"`
	ComputeNs int64 `json:"compute_ns,omitempty"`
	ProjectNs int64 `json:"project_ns"`
	TotalNs   int64 `json:"total_ns"`
}

// QueryResponse is the body of a POST /v1/query answer.
type QueryResponse struct {
	TraceID   string          `json:"trace_id"`
	Run       string          `json:"run"`
	Data      string          `json:"data"`
	Kind      string          `json:"kind"`
	Outcome   string          `json:"outcome,omitempty"`
	Strategy  string          `json:"strategy,omitempty"`
	Timing    *Timing         `json:"timing,omitempty"`
	Result    *Result         `json:"result,omitempty"`
	Execution *Execution      `json:"execution,omitempty"`
	Trace     json.RawMessage `json:"trace,omitempty"`
}

// BatchResponse is the body of a POST /v1/batch answer.
type BatchResponse struct {
	TraceID string          `json:"trace_id"`
	Run     string          `json:"run"`
	Count   int             `json:"count"`
	Results []*Result       `json:"results"`
	Trace   json.RawMessage `json:"trace,omitempty"`
}

// RunInfo is one row of GET /v1/runs.
type RunInfo struct {
	ID    string `json:"id"`
	Spec  string `json:"spec"`
	Steps int    `json:"steps"`
	Edges int    `json:"edges"`
}

// RunsResponse is the body of GET /v1/runs — runs sorted by id, with an
// explicit count. Field order matches the server (and the router's merge)
// so re-encoding is byte-stable.
type RunsResponse struct {
	TraceID string    `json:"trace_id"`
	Count   int       `json:"count"`
	Runs    []RunInfo `json:"runs"`
}

// StatsResponse is the body of GET /v1/stats; the stats document is kept
// raw (its shape belongs to the warehouse and grows PR over PR).
type StatsResponse struct {
	TraceID string          `json:"trace_id"`
	Stats   json.RawMessage `json:"stats"`
}

// ClusterWorkerStats is one worker's raw stats document inside a
// ClusterStatsResponse, tagged with its shard index and address.
type ClusterWorkerStats struct {
	Shard int             `json:"shard"`
	Addr  string          `json:"addr"`
	Stats json.RawMessage `json:"stats"`
}

// ClusterStatsResponse is the body of GET /v1/cluster/stats on a router:
// the router's own registry snapshot, the merged worker registries
// (per-shard series under "shard.<k>." prefixes plus unprefixed
// fleet-wide totals), and each worker's raw stats document. The snapshot
// documents are kept raw so this package stays dependency-free; decode
// them into repro/internal/obs.Snapshot (or any structurally-matching
// type) as needed.
type ClusterStatsResponse struct {
	TraceID      string               `json:"trace_id"`
	ShardsTotal  int                  `json:"shards_total"`
	ShardsOK     int                  `json:"shards_ok"`
	Router       json.RawMessage      `json:"router"`
	Cluster      json.RawMessage      `json:"cluster"`
	Shards       []ClusterWorkerStats `json:"shards"`
	Partial      bool                 `json:"partial,omitempty"`
	FailedShards json.RawMessage      `json:"failed_shards,omitempty"`
}

// ClusterStats fetches a router's aggregated cluster statistics. Only
// routers serve /v1/cluster/stats; against a plain worker this returns a
// 404 *Error.
func (c *Client) ClusterStats(ctx context.Context) (*ClusterStatsResponse, error) {
	var out ClusterStatsResponse
	if err := c.getJSON(ctx, "/v1/cluster/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Readyz is the body of GET /readyz. Generation is an opaque warehouse
// generation: it changes whenever the worker (re)installs an engine or
// restarts, and a router invalidates cached responses for the worker's
// shard when it observes a change. Zero means a pre-generation worker.
type Readyz struct {
	Ready      bool  `json:"ready"`
	RunsLoaded int   `json:"runs_loaded"`
	RunsTotal  int   `json:"runs_total"`
	Generation int64 `json:"generation,omitempty"`
}

// Query answers one provenance query.
func (c *Client) Query(ctx context.Context, req QueryRequest) (*QueryResponse, error) {
	path := "/v1/query"
	if req.Trace {
		path += "?trace=1"
	}
	var out QueryResponse
	if err := c.postJSON(ctx, path, req.TraceID, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch answers many queries of one run/view in one request.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	path := "/v1/batch"
	if req.Trace {
		path += "?trace=1"
	}
	var out BatchResponse
	if err := c.postJSON(ctx, path, req.TraceID, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Runs lists the server's loaded runs, sorted by id.
func (c *Client) Runs(ctx context.Context) (*RunsResponse, error) {
	var out RunsResponse
	if err := c.getJSON(ctx, "/v1/runs", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the server's warehouse statistics.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.getJSON(ctx, "/v1/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready polls GET /readyz. It returns the decoded body with no error for
// both the ready (200) and still-loading (503) cases; other statuses and
// transport failures are errors.
func (c *Client) Ready(ctx context.Context) (*Readyz, error) {
	ctx, cancel := c.bound(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer drain(resp)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return nil, &Error{Status: resp.StatusCode, Message: "unexpected /readyz status"}
	}
	var out Readyz
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		return nil, fmt.Errorf("zoom: decode /readyz: %w", err)
	}
	return &out, nil
}

// bound derives the request context from the client timeout.
func (c *Client) bound(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, c.timeout)
}

// drain discards and closes a response body so the connection returns to
// the keep-alive pool.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

func (c *Client) postJSON(ctx context.Context, path, traceID string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	ctx, cancel := c.bound(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(TraceIDHeader, traceID)
	}
	return c.do(req, out)
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	ctx, cancel := c.bound(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

// do sends the request and decodes a 2xx JSON body into out, or a non-2xx
// body into an *Error.
func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("zoom: read response: %w", err)
	}
	if resp.StatusCode/100 != 2 {
		e := &Error{Status: resp.StatusCode}
		if jerr := json.Unmarshal(body, e); jerr != nil || e.Message == "" {
			e.Message = strings.TrimSpace(string(body))
		}
		return e
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("zoom: decode %s: %w", req.URL.Path, err)
	}
	return nil
}
