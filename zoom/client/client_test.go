package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/run"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

// newTestServer boots a real server over the paper's example warehouse.
func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	w := warehouse.New(0)
	sp := spec.Phylogenomics()
	if err := w.RegisterSpec(sp); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadRun(run.Figure2()); err != nil {
		t.Fatal(err)
	}
	joe, err := core.BuildRelevant(sp, spec.PhyloRelevantJoe())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RegisterView("joe", joe); err != nil {
		t.Fatal(err)
	}
	s, err := server.New(obs.NewRegistry(), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetEngine(provenance.NewEngine(w))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestClientQueryBatchRunsStats(t *testing.T) {
	ts := newTestServer(t)
	c := New(ts.URL, Options{})
	ctx := context.Background()

	q, err := c.Query(ctx, QueryRequest{Run: "fig2", Data: "d447", View: "joe"})
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != "deep" || q.Result == nil || len(q.Result.Executions) == 0 {
		t.Fatalf("deep query answer unexpected: %+v", q)
	}
	if q.Outcome != "miss" {
		t.Fatalf("first query outcome %q, want miss", q.Outcome)
	}

	im, err := c.Query(ctx, QueryRequest{Run: "fig2", Data: "d413", Kind: "immediate"})
	if err != nil {
		t.Fatal(err)
	}
	if im.Execution == nil {
		t.Fatal("immediate query returned no execution")
	}

	b, err := c.Batch(ctx, BatchRequest{Run: "fig2", Data: []string{"d447", "d413"}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Count != 2 || len(b.Results) != 2 {
		t.Fatalf("batch count %d / %d results, want 2", b.Count, len(b.Results))
	}

	runs, err := c.Runs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if runs.Count != 1 || len(runs.Runs) != 1 || runs.Runs[0].ID != "fig2" {
		t.Fatalf("runs listing unexpected: %+v", runs)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Stats) == 0 {
		t.Fatal("stats document empty")
	}

	r, err := c.Ready(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Ready {
		t.Fatal("server not ready")
	}
}

func TestClientTraceIDPropagation(t *testing.T) {
	ts := newTestServer(t)
	c := New(ts.URL, Options{})
	const id = "00000000cafef00d"
	q, err := c.Query(context.Background(), QueryRequest{Run: "fig2", Data: "d447", TraceID: id})
	if err != nil {
		t.Fatal(err)
	}
	if q.TraceID != id {
		t.Fatalf("trace id %q, want propagated %q", q.TraceID, id)
	}
}

func TestClientErrors(t *testing.T) {
	ts := newTestServer(t)
	c := New(ts.URL, Options{})
	_, err := c.Query(context.Background(), QueryRequest{Run: "nope", Data: "d1"})
	var e *Error
	if !errors.As(err, &e) {
		t.Fatalf("want *Error, got %v", err)
	}
	if e.Status != http.StatusNotFound || e.Message == "" || e.TraceID == "" {
		t.Fatalf("error not decoded from server shape: %+v", e)
	}
}

func TestClientTimeout(t *testing.T) {
	stall := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer stall.Close()
	c := New(stall.URL, Options{Timeout: 50 * time.Millisecond})
	start := time.Now()
	_, err := c.Runs(context.Background())
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", d)
	}
}
