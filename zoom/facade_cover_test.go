package zoom_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/zoom"
)

// TestFacadeAdminSurface touches the operational surface of the facade:
// diagnostics, stats, drop, streaming ingestion, exports and the harness
// entry points.
func TestFacadeAdminSurface(t *testing.T) {
	s := zoom.Phylogenomics()

	// Diagnostics on a deliberately bad view.
	bad, err := zoom.NewUserView(s, map[string][]string{
		"M12": {"M1", "M2"},
		"M10": {"M3", "M4", "M5"},
		"M9":  {"M6", "M7", "M8"},
	})
	if err != nil {
		t.Fatal(err)
	}
	finds := zoom.DiagnoseView(bad, zoom.JoeRelevant())
	if len(finds) == 0 {
		t.Fatal("known-bad grouping diagnosed as clean")
	}
	joe, _ := zoom.BuildUserView(s, zoom.JoeRelevant())
	if finds := zoom.DiagnoseView(joe, zoom.JoeRelevant()); len(finds) != 0 {
		t.Fatalf("clean view diagnosed: %v", finds)
	}

	// Stats / streaming ingestion / drop.
	sys := zoom.NewSystem()
	if err := sys.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	events, err := zoom.PhylogenomicsRun().ToLog()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := zoom.WriteLog(&buf, events); err != nil {
		t.Fatal(err)
	}
	n, err := sys.IngestLogStream("streamed", s.Name(), &buf)
	if err != nil || n != len(events) {
		t.Fatalf("IngestLogStream: %d, %v", n, err)
	}
	st := sys.Stats()
	if st.Runs != 1 || st.Steps != 10 {
		t.Fatalf("Stats = %+v", st)
	}
	if err := sys.DropRun("streamed"); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().Runs != 0 {
		t.Fatal("DropRun left the run behind")
	}

	// Exports.
	if err := sys.LoadRun(zoom.PhylogenomicsRun()); err != nil {
		t.Fatal(err)
	}
	res, err := sys.DeepProvenance("fig2", joe, "d447")
	if err != nil {
		t.Fatal(err)
	}
	prov, err := zoom.PROVJSON(res)
	if err != nil || !strings.Contains(string(prov), "wasGeneratedBy") {
		t.Fatalf("PROVJSON: %v", err)
	}
	if !strings.Contains(zoom.SpecGraphML(s), "<graphml") {
		t.Fatal("SpecGraphML malformed")
	}

	// Query forms listing.
	if forms := zoom.QueryForms(); len(forms) < 8 {
		t.Fatalf("QueryForms = %v", forms)
	}

	// Harness entry points (tiny scale).
	o := zoom.DefaultBench()
	if full := zoom.FullBench(); full.ScaleSpecs <= o.ScaleSpecs {
		t.Fatal("FullBench not larger than DefaultBench")
	}
	o.WorkflowsPerClass, o.RunsPerKind, o.Trials = 1, 1, 1
	o.ScaleSpecs, o.MaxSpecNodes, o.LargeRunCap = 2, 120, 300
	reports := zoom.RunExperiments(o)
	if want := len(zoom.BenchExperiments()); len(reports) != want {
		t.Fatalf("RunExperiments returned %d reports, want %d", len(reports), want)
	}

	// LoadSystem rejects garbage.
	if _, err := zoom.LoadSystem(strings.NewReader("{")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}
