package zoom_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/zoom"
)

// TestPublicAPIWalkthrough drives the whole paper scenario through the
// facade only: register Figure 1, load Figure 2, build Joe's and Mary's
// views, and check the documented answers.
func TestPublicAPIWalkthrough(t *testing.T) {
	sys := zoom.NewSystem()
	s := zoom.Phylogenomics()
	if err := sys.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadRun(zoom.PhylogenomicsRun()); err != nil {
		t.Fatal(err)
	}

	joe, err := zoom.BuildUserView(s, zoom.JoeRelevant())
	if err != nil {
		t.Fatal(err)
	}
	mary, err := zoom.BuildUserView(s, zoom.MaryRelevant())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterView("joe", joe); err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterView("mary", mary); err != nil {
		t.Fatal(err)
	}
	if got := sys.ViewNames("phylogenomics"); len(got) != 2 {
		t.Fatalf("ViewNames = %v", got)
	}

	exJoe, err := sys.ImmediateProvenance("fig2", joe, "d413")
	if err != nil {
		t.Fatal(err)
	}
	if zoom.FormatDataSet(exJoe.Inputs) != "{d308..d408}" {
		t.Fatalf("Joe's immediate provenance inputs = %s", zoom.FormatDataSet(exJoe.Inputs))
	}
	exMary, err := sys.ImmediateProvenance("fig2", mary, "d413")
	if err != nil {
		t.Fatal(err)
	}
	if zoom.FormatDataSet(exMary.Inputs) != "{d411}" {
		t.Fatalf("Mary's immediate provenance inputs = %s", zoom.FormatDataSet(exMary.Inputs))
	}

	res, err := sys.DeepProvenance("fig2", joe, "d447")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSteps() == 0 || res.NumData() == 0 {
		t.Fatal("empty provenance result")
	}
	if !strings.Contains(zoom.ProvenanceText(res), "deep provenance of d447") {
		t.Fatal("ProvenanceText malformed")
	}
	if !strings.Contains(zoom.ProvenanceDOT(res), "digraph") {
		t.Fatal("ProvenanceDOT malformed")
	}
}

func TestFacadeViewsAndChecks(t *testing.T) {
	s := zoom.Phylogenomics()
	admin := zoom.UAdmin(s)
	if admin.Size() != 8 {
		t.Fatalf("UAdmin size = %d", admin.Size())
	}
	bb, err := zoom.UBlackBox(s)
	if err != nil || bb.Size() != 1 {
		t.Fatalf("UBlackBox: %v %v", bb, err)
	}
	joe, _ := zoom.BuildUserView(s, zoom.JoeRelevant())
	if err := zoom.CheckView(joe, zoom.JoeRelevant()); err != nil {
		t.Fatal(err)
	}
	if ok, _ := zoom.MinimalView(joe, zoom.JoeRelevant()); !ok {
		t.Fatal("Joe's view should be minimal")
	}
	min, err := zoom.MinimumView(s, zoom.JoeRelevant())
	if err != nil {
		t.Fatal(err)
	}
	if min.Size() > joe.Size() {
		t.Fatal("minimum larger than builder view")
	}
	custom, err := zoom.NewUserView(s, map[string][]string{
		"all": {"M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8"},
	})
	if err != nil || custom.Size() != 1 {
		t.Fatalf("NewUserView: %v %v", custom, err)
	}
}

func TestFacadeExecuteAndLogs(t *testing.T) {
	s := zoom.Phylogenomics()
	r, events, err := zoom.Execute(s, zoom.ExecConfig{RunID: "x", Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := zoom.ValidateLog(events); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := zoom.WriteLog(&buf, events); err != nil {
		t.Fatal(err)
	}
	parsed, err := zoom.ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := zoom.RunFromLog("x", s.Name(), parsed)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSteps() != r.NumSteps() {
		t.Fatal("log round trip lost steps")
	}

	sys := zoom.NewSystem()
	if err := sys.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadLog("x", s.Name(), parsed); err != nil {
		t.Fatal(err)
	}
	if got := sys.RunIDs(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("RunIDs = %v", got)
	}
}

func TestFacadeSpecJSONAndDOT(t *testing.T) {
	s := zoom.Phylogenomics()
	data, err := zoom.EncodeSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := zoom.DecodeSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != s.Name() {
		t.Fatal("spec JSON round trip lost name")
	}
	if !strings.Contains(zoom.SpecDOT(s), "digraph") {
		t.Fatal("SpecDOT malformed")
	}
	joe, _ := zoom.BuildUserView(s, zoom.JoeRelevant())
	if !strings.Contains(zoom.ViewDOT("joe", joe), "M3, M4, M5") {
		t.Fatal("ViewDOT missing members")
	}
	if !strings.Contains(zoom.RunDOT(zoom.PhylogenomicsRun()), "S2:M3") {
		t.Fatal("RunDOT malformed")
	}
}

func TestFacadeSystemPersistence(t *testing.T) {
	sys := zoom.NewSystem()
	s := zoom.Phylogenomics()
	if err := sys.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadRun(zoom.PhylogenomicsRun()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := zoom.LoadSystem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.RunIDs()) != 1 || len(back.SpecNames()) != 1 {
		t.Fatal("persistence lost content")
	}
	joe, _ := zoom.BuildUserView(s, zoom.JoeRelevant())
	res, err := back.DeepProvenance("fig2", joe, "d447")
	if err != nil || res.NumData() == 0 {
		t.Fatalf("restored system cannot answer queries: %v", err)
	}
	h, m := back.CacheStats()
	if h != 0 || m != 1 {
		t.Fatalf("cache stats: %d/%d", h, m)
	}
}

func TestFacadeGeneratorAndDerivation(t *testing.T) {
	g := zoom.NewGenerator(2)
	classes := zoom.WorkflowClasses()
	if len(classes) != 4 || len(zoom.RunClasses()) != 3 {
		t.Fatal("workload profiles missing")
	}
	s := g.Workflow(classes[1], "w")
	rel := zoom.UBioRelevant(s)
	v, err := zoom.BuildUserView(s, rel)
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := g.Run(s, zoom.RunClasses()[0], "r")
	if err != nil {
		t.Fatal(err)
	}
	sys := zoom.NewSystem()
	if err := sys.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	if err := sys.LoadRun(r); err != nil {
		t.Fatal(err)
	}
	finals := r.FinalOutputs()
	res, err := sys.DeepProvenance("r", v, finals[0])
	if err != nil {
		t.Fatal(err)
	}
	ext := r.ExternalInputs()
	der, err := sys.DeepDerivation("r", v, ext[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.NumData() == 0 || der.NumData() == 0 {
		t.Fatal("empty results")
	}
	got, err := sys.Run("r")
	if err != nil || got.NumSteps() != r.NumSteps() {
		t.Fatal("Run accessor broken")
	}
	if sp, err := sys.Spec("w"); err != nil || sp.Name() != "w" {
		t.Fatal("Spec accessor broken")
	}
	if v2, err := sys.View("w", "nope"); err == nil {
		t.Fatalf("unknown view returned %v", v2)
	}
}
