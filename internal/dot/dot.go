// Package dot renders specifications, user views, runs and provenance
// results as Graphviz DOT and as plain-text adjacency listings. The paper's
// prototype displays provenance graphically (Figure 9); on the command line
// we emit DOT for external rendering and a deterministic textual form for
// terminals and golden tests.
package dot

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/provenance"
	"repro/internal/run"
	"repro/internal/spec"
)

// escape quotes a DOT identifier.
func escape(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

// Graph renders a bare graph.
func Graph(name string, g *graph.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=LR;\n", escape(name))
	for _, n := range g.SortedNodes() {
		shape := "box"
		if n == spec.Input || n == spec.Output {
			shape = "ellipse"
		}
		fmt.Fprintf(&b, "  %s [shape=%s];\n", escape(n), shape)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %s -> %s;\n", escape(e.From), escape(e.To))
	}
	b.WriteString("}\n")
	return b.String()
}

// Spec renders a workflow specification, coloring scientific modules.
func Spec(s *spec.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=LR;\n", escape(s.Name()))
	fmt.Fprintf(&b, "  %s [shape=ellipse];\n  %s [shape=ellipse];\n", escape(spec.Input), escape(spec.Output))
	for _, m := range s.Modules() {
		attrs := "shape=box"
		if m.Kind == spec.KindScientific {
			attrs += ", style=filled, fillcolor=lightgrey"
		}
		label := m.Name
		if m.Desc != "" {
			label += "\\n" + m.Desc
		}
		fmt.Fprintf(&b, "  %s [%s, label=%s];\n", escape(m.Name), attrs, escape(label))
	}
	for _, e := range s.Edges() {
		fmt.Fprintf(&b, "  %s -> %s;\n", escape(e.From), escape(e.To))
	}
	b.WriteString("}\n")
	return b.String()
}

// View renders a user view's induced specification, with composite members
// in the node labels (Figure 3 style).
func View(name string, v *core.UserView) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=LR;\n", escape(name))
	ind := v.Induced()
	for _, n := range ind.SortedNodes() {
		if n == spec.Input || n == spec.Output {
			fmt.Fprintf(&b, "  %s [shape=ellipse];\n", escape(n))
			continue
		}
		members := v.Members(n)
		label := n
		if len(members) > 1 || (len(members) == 1 && members[0] != n) {
			label += "\\n{" + strings.Join(members, ", ") + "}"
		}
		fmt.Fprintf(&b, "  %s [shape=box, label=%s];\n", escape(n), escape(label))
	}
	for _, e := range ind.Edges() {
		fmt.Fprintf(&b, "  %s -> %s;\n", escape(e.From), escape(e.To))
	}
	b.WriteString("}\n")
	return b.String()
}

// Run renders a workflow run with edge data labels (Figure 2 style).
func Run(r *run.Run) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=LR;\n", escape(r.ID()))
	fmt.Fprintf(&b, "  %s [shape=ellipse];\n  %s [shape=ellipse];\n", escape(spec.Input), escape(spec.Output))
	for _, st := range r.Steps() {
		fmt.Fprintf(&b, "  %s [shape=box, label=%s];\n", escape(st.ID), escape(st.ID+":"+st.Module))
	}
	for _, e := range r.Graph().Edges() {
		fmt.Fprintf(&b, "  %s -> %s [label=%s];\n",
			escape(e.From), escape(e.To), escape(run.FormatDataSet(r.DataOn(e.From, e.To))))
	}
	b.WriteString("}\n")
	return b.String()
}

// Mapping renders the composite executions of a run under a view.
func Mapping(m *composite.Mapping) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=LR;\n", escape(m.Run().ID()+"@view"))
	for _, ex := range m.Executions() {
		label := fmt.Sprintf("%s:%s\\n{%s}", ex.ID, ex.Composite, strings.Join(ex.Steps, ", "))
		fmt.Fprintf(&b, "  %s [shape=box, style=dashed, label=%s];\n", escape(ex.ID), escape(label))
	}
	for _, e := range m.Edges() {
		fmt.Fprintf(&b, "  %s -> %s [label=%s];\n",
			escape(e.From), escape(e.To), escape(run.FormatDataSet(e.Data)))
	}
	b.WriteString("}\n")
	return b.String()
}

// Provenance renders a provenance query result (Figure 9 style).
func Provenance(res *provenance.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n  rankdir=LR;\n", escape("prov_"+res.Root))
	fmt.Fprintf(&b, "  %s [shape=octagon, style=filled, fillcolor=gold];\n", escape(res.Root))
	for _, ex := range res.Executions {
		label := ex.ID + ":" + ex.Composite
		fmt.Fprintf(&b, "  %s [shape=box, label=%s];\n", escape(ex.ID), escape(label))
	}
	for _, e := range res.Edges {
		fmt.Fprintf(&b, "  %s -> %s [label=%s];\n",
			escape(e.From), escape(e.To), escape(run.FormatDataSet(e.Data)))
	}
	b.WriteString("}\n")
	return b.String()
}

// Text renders a deterministic plain-text adjacency listing of a graph,
// one "node -> succ, succ" line per node, suitable for terminals.
func Text(g *graph.Graph) string {
	var b strings.Builder
	for _, n := range g.SortedNodes() {
		succ := g.Successors(n)
		sort.Strings(succ)
		if len(succ) == 0 {
			fmt.Fprintf(&b, "%s\n", n)
			continue
		}
		fmt.Fprintf(&b, "%s -> %s\n", n, strings.Join(succ, ", "))
	}
	return b.String()
}

// ProvenanceText renders a provenance result as indented text: each visible
// execution with its inputs, followed by the visible data set.
func ProvenanceText(res *provenance.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "deep provenance of %s (run %s)\n", res.Root, res.RunID)
	if res.External {
		b.WriteString("  (external input: provenance is the recorded metadata)\n")
	}
	for _, ex := range res.Executions {
		fmt.Fprintf(&b, "  %s:%s steps=%s in=%s out=%s\n",
			ex.ID, ex.Composite, "{"+strings.Join(ex.Steps, ",")+"}",
			run.FormatDataSet(ex.Inputs), run.FormatDataSet(ex.Outputs))
	}
	fmt.Fprintf(&b, "  data: %s (%d objects, %d executions)\n",
		run.FormatDataSet(res.Data), res.NumData(), res.NumSteps())
	return b.String()
}
