package dot

import (
	"strings"
	"testing"

	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

func TestSpecDot(t *testing.T) {
	out := Spec(spec.Phylogenomics())
	for _, want := range []string{
		`digraph "phylogenomics"`,
		`"M3" [shape=box, style=filled, fillcolor=lightgrey`,
		`"M5" -> "M3";`,
		`"INPUT" [shape=ellipse];`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Spec output missing %q", want)
		}
	}
	if !strings.HasSuffix(out, "}\n") {
		t.Fatal("unterminated DOT")
	}
}

func TestViewDot(t *testing.T) {
	s := spec.Phylogenomics()
	joe, _ := core.BuildRelevant(s, spec.PhyloRelevantJoe())
	out := View("joe", joe)
	if !strings.Contains(out, `{M3, M4, M5}`) {
		t.Errorf("View output missing composite members:\n%s", out)
	}
	if !strings.Contains(out, `"M3" -> "M7";`) {
		t.Errorf("View output missing induced edge:\n%s", out)
	}
}

func TestRunDot(t *testing.T) {
	out := Run(run.Figure2())
	for _, want := range []string{
		`"S2" [shape=box, label="S2:M3"];`,
		`"S1" -> "S2" [label="{d308..d408}"];`,
		`"S10" -> "OUTPUT" [label="{d447}"];`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Run output missing %q:\n%s", want, out)
		}
	}
}

func TestMappingDot(t *testing.T) {
	s := spec.Phylogenomics()
	joe, _ := core.BuildRelevant(s, spec.PhyloRelevantJoe())
	m, err := composite.Build(run.Figure2(), joe)
	if err != nil {
		t.Fatal(err)
	}
	out := Mapping(m)
	if !strings.Contains(out, "S2, S3, S4, S5, S6") {
		t.Errorf("Mapping output missing S13 membership:\n%s", out)
	}
}

func TestProvenanceDotAndText(t *testing.T) {
	w := warehouse.New(0)
	s := spec.Phylogenomics()
	if err := w.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadRun(run.Figure2()); err != nil {
		t.Fatal(err)
	}
	joe, _ := core.BuildRelevant(s, spec.PhyloRelevantJoe())
	e := provenance.NewEngine(w)
	res, err := e.DeepProvenance("fig2", joe, "d447")
	if err != nil {
		t.Fatal(err)
	}
	d := Provenance(res)
	if !strings.Contains(d, `"d447" [shape=octagon`) {
		t.Errorf("Provenance output missing root node:\n%s", d)
	}
	txt := ProvenanceText(res)
	if !strings.Contains(txt, "deep provenance of d447") {
		t.Errorf("text header missing:\n%s", txt)
	}
	if !strings.Contains(txt, "objects") {
		t.Errorf("text summary missing:\n%s", txt)
	}

	ext, err := e.DeepProvenance("fig2", joe, "d1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ProvenanceText(ext), "external input") {
		t.Error("external marker missing")
	}
}

func TestTextListing(t *testing.T) {
	out := Text(spec.Phylogenomics().Graph())
	if !strings.Contains(out, "M4 -> M5, M7") {
		t.Errorf("Text output wrong:\n%s", out)
	}
	if !strings.Contains(out, "OUTPUT\n") {
		t.Errorf("sink line missing:\n%s", out)
	}
}

func TestGraphDotDeterministic(t *testing.T) {
	g := spec.Phylogenomics().Graph()
	if Graph("x", g) != Graph("x", g) {
		t.Fatal("Graph rendering not deterministic")
	}
}

func TestEscape(t *testing.T) {
	if got := escape(`a"b`); got != `"a\"b"` {
		t.Fatalf("escape = %s", got)
	}
}
