// Package query implements the prototype's query forms (Section IV:
// "providing users with forms to express various (canned) provenance
// queries") as a small textual language, so the CLI and tests can express
// every canned query uniformly:
//
//	deep(d447)            deep provenance of a data object
//	immediate(d413)       immediate provenance
//	derived(d410)         everything derived from a data object
//	execution(M3@2)       deep provenance of a composite execution
//	between(S4, M3@2)     data passed between two executions
//	common(d413, d414)    shared provenance of two data objects
//	in(d308, d447)        is the first object in the provenance of the second?
//	path(d308, d447)      one shortest visible derivation chain
//
// The grammar is name '(' arg (',' arg)* ')' with identifier arguments;
// whitespace is free. Parsing is independent of evaluation so malformed
// queries are rejected before touching the warehouse.
package query

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dot"
	"repro/internal/provenance"
	"repro/internal/run"
)

// ErrSyntax reports an unparsable query string.
var ErrSyntax = errors.New("query: syntax error")

// Kind enumerates the canned query forms.
type Kind string

// The supported forms.
const (
	KindDeep      Kind = "deep"
	KindImmediate Kind = "immediate"
	KindDerived   Kind = "derived"
	KindExecution Kind = "execution"
	KindBetween   Kind = "between"
	KindCommon    Kind = "common"
	KindIn        Kind = "in"
	KindPath      Kind = "path"
)

// arity maps each form to its argument count.
var arity = map[Kind]int{
	KindDeep:      1,
	KindImmediate: 1,
	KindDerived:   1,
	KindExecution: 1,
	KindBetween:   2,
	KindCommon:    2,
	KindIn:        2,
	KindPath:      2,
}

// Query is a parsed canned query.
type Query struct {
	Kind Kind
	Args []string
}

// Parse parses a query string.
func Parse(input string) (*Query, error) {
	s := strings.TrimSpace(input)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("%w: want form(args...), got %q", ErrSyntax, input)
	}
	name := Kind(strings.TrimSpace(s[:open]))
	want, known := arity[name]
	if !known {
		return nil, fmt.Errorf("%w: unknown form %q", ErrSyntax, string(name))
	}
	body := s[open+1 : len(s)-1]
	var args []string
	for _, part := range strings.Split(body, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("%w: empty argument in %q", ErrSyntax, input)
		}
		if strings.ContainsAny(part, "() \t") {
			return nil, fmt.Errorf("%w: bad argument %q", ErrSyntax, part)
		}
		args = append(args, part)
	}
	if len(args) != want {
		return nil, fmt.Errorf("%w: %s takes %d argument(s), got %d", ErrSyntax, name, want, len(args))
	}
	return &Query{Kind: name, Args: args}, nil
}

// String renders the query back to its canonical text.
func (q *Query) String() string {
	return string(q.Kind) + "(" + strings.Join(q.Args, ", ") + ")"
}

// Answer is the uniform result of evaluating a canned query: a short
// headline plus, where applicable, the underlying provenance result.
type Answer struct {
	Query    *Query
	Headline string
	Result   *provenance.Result // nil for scalar answers
}

// Eval evaluates a parsed query against a run and view.
func Eval(e *provenance.Engine, runID string, v *core.UserView, q *Query) (*Answer, error) {
	ans := &Answer{Query: q}
	switch q.Kind {
	case KindDeep:
		res, err := e.DeepProvenance(runID, v, q.Args[0])
		if err != nil {
			return nil, err
		}
		ans.Result = res
		ans.Headline = fmt.Sprintf("deep provenance of %s: %d executions, %d data objects",
			q.Args[0], res.NumSteps(), res.NumData())
	case KindImmediate:
		ex, err := e.ImmediateProvenance(runID, v, q.Args[0])
		if err != nil {
			return nil, err
		}
		if ex == nil {
			ans.Headline = fmt.Sprintf("%s is user/workflow input; provenance is the recorded metadata", q.Args[0])
			break
		}
		ans.Headline = fmt.Sprintf("%s was produced by execution %s of %s from %s",
			q.Args[0], ex.ID, ex.Composite, run.FormatDataSet(ex.Inputs))
	case KindDerived:
		res, err := e.DeepDerivation(runID, v, q.Args[0])
		if err != nil {
			return nil, err
		}
		ans.Result = res
		ans.Headline = fmt.Sprintf("derived from %s: %d executions, data %s",
			q.Args[0], res.NumSteps(), run.FormatDataSet(res.Data))
	case KindExecution:
		res, err := e.ExecutionProvenance(runID, v, q.Args[0])
		if err != nil {
			return nil, err
		}
		ans.Result = res
		ans.Headline = fmt.Sprintf("provenance of execution %s: %d executions, %d data objects",
			q.Args[0], res.NumSteps(), res.NumData())
	case KindBetween:
		data, err := e.DataBetween(runID, v, q.Args[0], q.Args[1])
		if err != nil {
			return nil, err
		}
		ans.Headline = fmt.Sprintf("data passed %s -> %s: %s",
			q.Args[0], q.Args[1], run.FormatDataSet(data))
	case KindCommon:
		data, err := e.CommonProvenance(runID, v, q.Args[0], q.Args[1])
		if err != nil {
			return nil, err
		}
		ans.Headline = fmt.Sprintf("common provenance of %s and %s: %s",
			q.Args[0], q.Args[1], run.FormatDataSet(data))
	case KindIn:
		ok, err := e.InProvenance(runID, q.Args[0], q.Args[1])
		if err != nil {
			return nil, err
		}
		ans.Headline = fmt.Sprintf("%s in provenance of %s: %v", q.Args[0], q.Args[1], ok)
	case KindPath:
		path, err := e.DerivationPath(runID, v, q.Args[0], q.Args[1])
		if err != nil {
			return nil, err
		}
		ans.Headline = provenance.FormatPath(path)
	default:
		return nil, fmt.Errorf("%w: unknown form %q", ErrSyntax, string(q.Kind))
	}
	return ans, nil
}

// Run parses and evaluates in one step.
func Run(e *provenance.Engine, runID string, v *core.UserView, input string) (*Answer, error) {
	q, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return Eval(e, runID, v, q)
}

// Render formats an answer for terminals: the headline plus the provenance
// text block when there is a graph-shaped result.
func Render(a *Answer) string {
	if a.Result == nil {
		return a.Headline + "\n"
	}
	return a.Headline + "\n" + dot.ProvenanceText(a.Result)
}

// Forms lists the supported forms with their arities, for help texts.
func Forms() []string {
	out := []string{
		"deep(data)", "immediate(data)", "derived(data)", "execution(exec)",
		"between(exec, exec)", "common(data, data)", "in(data, data)",
		"path(data, data)",
	}
	return out
}
