package query

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/provenance"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

func engineFixture(t testing.TB) (*provenance.Engine, *core.UserView) {
	t.Helper()
	w := warehouse.New(0)
	if err := w.RegisterSpec(spec.Phylogenomics()); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadRun(run.Figure2()); err != nil {
		t.Fatal(err)
	}
	mary, err := core.BuildRelevant(spec.Phylogenomics(), spec.PhyloRelevantMary())
	if err != nil {
		t.Fatal(err)
	}
	return provenance.NewEngine(w), mary
}

func TestParseValid(t *testing.T) {
	cases := []struct {
		in   string
		kind Kind
		args []string
	}{
		{"deep(d447)", KindDeep, []string{"d447"}},
		{"  immediate( d413 ) ", KindImmediate, []string{"d413"}},
		{"derived(d410)", KindDerived, []string{"d410"}},
		{"execution(M3@2)", KindExecution, []string{"M3@2"}},
		{"between(S4, M3@2)", KindBetween, []string{"S4", "M3@2"}},
		{"common(d413,d414)", KindCommon, []string{"d413", "d414"}},
		{"in(d308, d447)", KindIn, []string{"d308", "d447"}},
	}
	for _, tc := range cases {
		q, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if q.Kind != tc.kind || !reflect.DeepEqual(q.Args, tc.args) {
			t.Fatalf("Parse(%q) = %v", tc.in, q)
		}
	}
}

func TestParseCanonicalString(t *testing.T) {
	q, err := Parse("between( S4 ,M3@2 )")
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != "between(S4, M3@2)" {
		t.Fatalf("String = %q", q.String())
	}
}

func TestParseRejects(t *testing.T) {
	for _, bad := range []string{
		"", "deep", "deep(", "deep)", "deep()", "deep(a,b)", "between(a)",
		"frobnicate(x)", "deep(a b)", "deep((a))", "deep(,)", "in(a,b,c)",
	} {
		if _, err := Parse(bad); !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) = %v, want ErrSyntax", bad, err)
		}
	}
}

func TestEvalAllForms(t *testing.T) {
	e, mary := engineFixture(t)
	cases := []struct {
		q    string
		want string // substring of the headline
	}{
		{"deep(d447)", "deep provenance of d447: 6 executions"},
		{"immediate(d413)", "produced by execution M3@2 of M3 from {d411}"},
		{"immediate(d1)", "user/workflow input"},
		{"derived(d410)", "derived from d410"},
		{"execution(M3@2)", "provenance of execution M3@2"},
		{"between(S4, M3@2)", "data passed S4 -> M3@2: {d411}"},
		{"common(d413, d414)", "common provenance"},
		{"in(d308, d447)", "in provenance of d447: true"},
		{"in(d447, d308)", "in provenance of d308: false"},
	}
	for _, tc := range cases {
		ans, err := Run(e, "fig2", mary, tc.q)
		if err != nil {
			t.Fatalf("%s: %v", tc.q, err)
		}
		if !strings.Contains(ans.Headline, tc.want) {
			t.Errorf("%s: headline %q missing %q", tc.q, ans.Headline, tc.want)
		}
		out := Render(ans)
		if !strings.HasPrefix(out, ans.Headline) {
			t.Errorf("%s: render does not lead with headline", tc.q)
		}
		if ans.Result != nil && !strings.Contains(out, "deep provenance of") {
			t.Errorf("%s: graph-shaped answer missing body:\n%s", tc.q, out)
		}
	}
}

func TestEvalErrorsPropagate(t *testing.T) {
	e, mary := engineFixture(t)
	if _, err := Run(e, "fig2", mary, "deep(d9999)"); !errors.Is(err, warehouse.ErrUnknownData) {
		t.Fatalf("unknown data: %v", err)
	}
	if _, err := Run(e, "ghost", mary, "deep(d1)"); !errors.Is(err, warehouse.ErrUnknownRun) {
		t.Fatalf("unknown run: %v", err)
	}
	if _, err := Run(e, "fig2", mary, "bogus(d1)"); !errors.Is(err, ErrSyntax) {
		t.Fatalf("syntax error: %v", err)
	}
	if _, err := Run(e, "fig2", mary, "between(ghost, M3@2)"); err == nil {
		t.Fatal("unknown execution accepted")
	}
}

func TestForms(t *testing.T) {
	fs := Forms()
	if len(fs) != len(arity) {
		t.Fatalf("Forms lists %d entries, arity has %d", len(fs), len(arity))
	}
	for _, f := range fs {
		name := Kind(f[:strings.IndexByte(f, '(')])
		if _, ok := arity[name]; !ok {
			t.Errorf("Forms lists unknown %q", name)
		}
	}
}

func TestEvalPathForm(t *testing.T) {
	e, mary := engineFixture(t)
	ans, err := Run(e, "fig2", mary, "path(d308, d413)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.Headline, "d308 -[") || !strings.Contains(ans.Headline, "]-> d413") {
		t.Fatalf("path headline = %q", ans.Headline)
	}
	ans, err = Run(e, "fig2", mary, "path(d415, d413)")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Headline != "(no derivation path)" {
		t.Fatalf("absent path headline = %q", ans.Headline)
	}
}
