package graph

import "fmt"

// Quotient graphs implement the paper's induced workflow specification
// U(G_w): given a partition of the nodes into blocks, the quotient has one
// node per block and an edge A -> B (A != B) whenever some member of A has
// an edge to some member of B.

// Quotient returns the quotient of g under the partition described by
// blockOf, which maps every node of g to the name of its block. Nodes
// missing from blockOf keep their own identity (singleton blocks named after
// the node itself) — this is how the workflow's input and output nodes pass
// through a user view untouched.
//
// Self-loops in the quotient (edges inside one block, or an original
// self-loop) are emitted only when keepSelfLoops is true. The paper's
// induced specification collapses intra-composite edges, so user views call
// this with keepSelfLoops=false; loop-detection diagnostics use true.
func (g *Graph) Quotient(blockOf map[string]string, keepSelfLoops bool) *Graph {
	q := New()
	name := func(id string) string {
		if b, ok := blockOf[id]; ok {
			return b
		}
		return id
	}
	for _, id := range g.ids {
		q.AddNode(name(id))
	}
	g.EachEdge(func(from, to string) {
		a, b := name(from), name(to)
		if a == b && !keepSelfLoops {
			return
		}
		q.AddEdge(a, b)
	})
	return q
}

// ValidatePartition checks that blockOf assigns a block to every node listed
// in domain, assigns blocks only to nodes of g, and that no block name
// collides with a node id outside the partition domain (which would merge a
// block with a pass-through node by accident).
func (g *Graph) ValidatePartition(blockOf map[string]string, domain []string) error {
	inDomain := make(map[string]bool, len(domain))
	for _, id := range domain {
		if !g.HasNode(id) {
			return fmt.Errorf("graph: partition domain node %q is not in the graph: %w", id, ErrUnknownNode)
		}
		inDomain[id] = true
	}
	for _, id := range domain {
		if _, ok := blockOf[id]; !ok {
			return fmt.Errorf("graph: node %q has no block assignment: %w", id, ErrIncompletePartition)
		}
	}
	for id, block := range blockOf {
		if !inDomain[id] {
			return fmt.Errorf("graph: block assignment for %q is outside the partition domain: %w", id, ErrIncompletePartition)
		}
		if g.HasNode(block) && !inDomain[block] {
			return fmt.Errorf("graph: block name %q collides with pass-through node: %w", block, ErrBlockCollision)
		}
	}
	return nil
}

// InducedSubgraph returns the subgraph of g restricted to the given node
// set: all of keep's members that exist in g, plus every edge of g whose
// endpoints both survive.
func (g *Graph) InducedSubgraph(keep map[string]bool) *Graph {
	s := New()
	for _, id := range g.ids {
		if keep[id] {
			s.AddNode(id)
		}
	}
	g.EachEdge(func(from, to string) {
		if keep[from] && keep[to] {
			s.AddEdge(from, to)
		}
	})
	return s
}

// WeaklyConnectedComponents returns the weakly connected components of g
// (treating edges as undirected), each sorted, ordered by their smallest
// member. Composite executions (Section II) are exactly the weak components
// of a run restricted to the steps of one composite module.
func (g *Graph) WeaklyConnectedComponents() [][]string {
	n := len(g.ids)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for u, vs := range g.succ {
		for _, v := range vs {
			union(u, v)
		}
	}
	groups := make(map[int][]string)
	for u := range g.ids {
		r := find(u)
		groups[r] = append(groups[r], g.ids[u])
	}
	var out [][]string
	for _, members := range groups {
		sortStrings(members)
		out = append(out, members)
	}
	sortByFirst(out)
	return out
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func sortByFirst(xss [][]string) {
	for i := 1; i < len(xss); i++ {
		for j := i; j > 0 && xss[j][0] < xss[j-1][0]; j-- {
			xss[j], xss[j-1] = xss[j-1], xss[j]
		}
	}
}
