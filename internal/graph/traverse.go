package graph

// This file implements the traversal primitives: plain reachability and the
// "avoiding" reachability that underlies the paper's nr-paths. An nr-path is
// a path whose *intermediate* nodes are all non-relevant; the endpoints may
// be anything. ReachAvoiding therefore expands a frontier node only when the
// avoid predicate rejects it (or it is the source), while still *recording*
// every node it touches.

// Reach returns the set of nodes reachable from src by a path of length >= 1.
// src itself is included only if it lies on a cycle (including a self-loop).
// It returns an empty set for an unknown source.
func (g *Graph) Reach(src string) map[string]bool {
	return g.reach(src, false, nil)
}

// ReachBack returns the set of nodes that can reach src by a path of
// length >= 1 (reachability over reversed edges).
func (g *Graph) ReachBack(src string) map[string]bool {
	return g.reach(src, true, nil)
}

// ReachAvoiding returns every node t such that there is a path src -> t of
// length >= 1 whose intermediate nodes n (excluding src and t) all satisfy
// !avoid(n). Nodes satisfying avoid may appear in the result — they simply
// terminate expansion. A nil avoid behaves like Reach.
func (g *Graph) ReachAvoiding(src string, avoid func(string) bool) map[string]bool {
	return g.reach(src, false, avoid)
}

// ReachBackAvoiding is ReachAvoiding over reversed edges: every node t with
// a path t -> src whose intermediates all satisfy !avoid.
func (g *Graph) ReachBackAvoiding(src string, avoid func(string) bool) map[string]bool {
	return g.reach(src, true, avoid)
}

func (g *Graph) reach(src string, back bool, avoid func(string) bool) map[string]bool {
	out := make(map[string]bool)
	s := g.idx(src)
	if s < 0 {
		return out
	}
	adj := g.succ
	if back {
		adj = g.pred
	}
	seen := make([]bool, len(g.ids)) // enqueued-for-expansion marker
	var queue []int
	// Seed with the neighbors of src; src itself is expanded exactly once.
	for _, v := range adj[s] {
		if !out[g.ids[v]] {
			out[g.ids[v]] = true
			if !seen[v] && (avoid == nil || !avoid(g.ids[v])) {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !out[g.ids[v]] {
				out[g.ids[v]] = true
			}
			if !seen[v] && (avoid == nil || !avoid(g.ids[v])) {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return out
}

// HasPath reports whether there is a path of length >= 1 from src to dst.
func (g *Graph) HasPath(src, dst string) bool {
	return g.Reach(src)[dst]
}

// HasPathAvoiding reports whether there is a path of length >= 1 from src to
// dst whose intermediate nodes all satisfy !avoid. This is exactly the
// paper's "nr-path from src to dst" when avoid tests relevance.
func (g *Graph) HasPathAvoiding(src, dst string, avoid func(string) bool) bool {
	return g.ReachAvoiding(src, avoid)[dst]
}

// EdgeOnPathAvoiding reports whether the edge (u, v) lies on some path from
// src to dst whose intermediate nodes (every node strictly between src and
// dst) all satisfy !avoid. The edge's endpoints count as intermediates when
// they differ from src/dst, so u must be src or a non-avoided node reachable
// from src by an avoiding path, and symmetrically for v.
//
// This is the workhorse of the Property 2 / Property 3 checkers (Section III
// of the paper), where "edge e lies on an nr-path from r to r'" must be
// decided both in the specification and in the induced view.
func (g *Graph) EdgeOnPathAvoiding(u, v, src, dst string, avoid func(string) bool) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	okU := u == src || (!avoid(u) && g.ReachAvoiding(src, avoid)[u])
	if !okU {
		return false
	}
	okV := v == dst || (!avoid(v) && g.ReachBackAvoiding(dst, avoid)[v])
	return okV
}

// BFSOrder returns nodes in breadth-first order from src (src first).
// Unknown sources yield an empty slice.
func (g *Graph) BFSOrder(src string) []string {
	s := g.idx(src)
	if s < 0 {
		return nil
	}
	seen := make([]bool, len(g.ids))
	seen[s] = true
	order := []int{s}
	for i := 0; i < len(order); i++ {
		for _, v := range g.succ[order[i]] {
			if !seen[v] {
				seen[v] = true
				order = append(order, v)
			}
		}
	}
	return g.toIDs(order)
}

// ShortestPath returns one shortest path (by edge count) from src to dst,
// inclusive of both endpoints, or nil if none exists. A path of length zero
// (src == dst) is returned as the single-element slice.
func (g *Graph) ShortestPath(src, dst string) []string {
	s, d := g.idx(src), g.idx(dst)
	if s < 0 || d < 0 {
		return nil
	}
	if s == d {
		return []string{src}
	}
	prev := make([]int, len(g.ids))
	for i := range prev {
		prev[i] = -1
	}
	prev[s] = s
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.succ[u] {
			if prev[v] == -1 {
				prev[v] = u
				if v == d {
					var rev []int
					for x := d; x != s; x = prev[x] {
						rev = append(rev, x)
					}
					rev = append(rev, s)
					out := make([]string, len(rev))
					for i := range rev {
						out[i] = g.ids[rev[len(rev)-1-i]]
					}
					return out
				}
				queue = append(queue, v)
			}
		}
	}
	return nil
}
