package graph

import "math/bits"

// Transitive closure support. The closure is represented as one bitset row
// per node; row u has bit v set iff there is a path u -> v of length >= 1.
// Rows are computed in reverse topological order of the condensation so the
// cost is O(N*E/64) words, which keeps the 1000-node specifications of the
// scalability experiment (Section 5.B) well under a millisecond.

// Bitset is a fixed-capacity bit vector.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Get reports bit i.
func (b Bitset) Get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Or merges other into b (b |= other).
func (b Bitset) Or(other Bitset) {
	for i := range b {
		b[i] |= other[i]
	}
}

// Count returns the number of set bits.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns a copy of b.
func (b Bitset) Clone() Bitset {
	out := make(Bitset, len(b))
	copy(out, b)
	return out
}

// Closure is a precomputed transitive closure of a Graph snapshot.
type Closure struct {
	g    *Graph
	rows []Bitset
}

// TransitiveClosure computes the closure of g as of the call. Subsequent
// mutations of g are not reflected.
func (g *Graph) TransitiveClosure() *Closure {
	n := len(g.ids)
	rows := make([]Bitset, n)
	for i := range rows {
		rows[i] = NewBitset(n)
	}
	// SCC condensation: all members of one component share a row value.
	comps := g.SCC() // reverse topological order of condensation
	compOf := make([]int, n)
	for ci, comp := range comps {
		for _, id := range comp {
			compOf[g.index[id]] = ci
		}
	}
	// comps is in reverse topological order, so every successor component of
	// comps[ci] has index < ci and is already complete when ci is processed.
	for ci, comp := range comps {
		row := NewBitset(n)
		cyclic := len(comp) > 1
		for _, id := range comp {
			u := g.index[id]
			for _, v := range g.succ[u] {
				row.Set(v)
				if compOf[v] != ci {
					row.Or(rows[v])
				}
			}
			if g.HasEdge(id, id) {
				cyclic = true
			}
		}
		if cyclic {
			for _, id := range comp {
				row.Set(g.index[id])
			}
		}
		for _, id := range comp {
			rows[g.index[id]] = row
		}
	}
	return &Closure{g: g, rows: rows}
}

// Reachable reports whether there is a path of length >= 1 from src to dst.
func (c *Closure) Reachable(src, dst string) bool {
	u, v := c.g.idx(src), c.g.idx(dst)
	if u < 0 || v < 0 {
		return false
	}
	return c.rows[u].Get(v)
}

// ReachSet returns the ids reachable from src (path length >= 1).
func (c *Closure) ReachSet(src string) []string {
	u := c.g.idx(src)
	if u < 0 {
		return nil
	}
	var out []string
	for v := range c.g.ids {
		if c.rows[u].Get(v) {
			out = append(out, c.g.ids[v])
		}
	}
	return out
}

// CountReachable returns |ReachSet(src)| without materializing it.
func (c *Closure) CountReachable(src string) int {
	u := c.g.idx(src)
	if u < 0 {
		return 0
	}
	return c.rows[u].Count()
}
