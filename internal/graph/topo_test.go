package graph

import (
	"errors"
	"reflect"
	"testing"
)

func TestTopoSortDiamond(t *testing.T) {
	g := buildDiamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := make(map[string]int)
	for i, n := range order {
		pos[n] = i
	}
	g.EachEdge(func(from, to string) {
		if pos[from] >= pos[to] {
			t.Fatalf("edge %s->%s violates topo order %v", from, to, order)
		}
	})
}

func TestTopoSortCyclic(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "a")
	if _, err := g.TopoSort(); !errors.Is(err, ErrCyclic) {
		t.Fatalf("TopoSort on cycle: err = %v, want ErrCyclic", err)
	}
	if g.IsAcyclic() {
		t.Fatal("IsAcyclic true for 2-cycle")
	}
}

func TestTopoSortSelfLoop(t *testing.T) {
	g := New()
	g.AddEdge("a", "a")
	if _, err := g.TopoSort(); !errors.Is(err, ErrCyclic) {
		t.Fatal("self-loop must be cyclic")
	}
}

func TestTopoSortEmpty(t *testing.T) {
	order, err := New().TopoSort()
	if err != nil || len(order) != 0 {
		t.Fatalf("empty graph: order=%v err=%v", order, err)
	}
}

func TestSCCSimple(t *testing.T) {
	g := New()
	// Two 2-cycles joined by a bridge, plus a lone node.
	g.AddEdge("a", "b")
	g.AddEdge("b", "a")
	g.AddEdge("b", "c")
	g.AddEdge("c", "d")
	g.AddEdge("d", "c")
	g.AddNode("e")
	comps := g.SCC()
	byKey := make(map[string][]string)
	for _, c := range comps {
		byKey[c[0]] = c
	}
	if !reflect.DeepEqual(byKey["a"], []string{"a", "b"}) {
		t.Fatalf("SCC(a) = %v", byKey["a"])
	}
	if !reflect.DeepEqual(byKey["c"], []string{"c", "d"}) {
		t.Fatalf("SCC(c) = %v", byKey["c"])
	}
	if !reflect.DeepEqual(byKey["e"], []string{"e"}) {
		t.Fatalf("SCC(e) = %v", byKey["e"])
	}
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
}

func TestSCCReverseTopoOrder(t *testing.T) {
	// Tarjan emits components in reverse topological order: a component is
	// emitted only after all components it reaches.
	g := New()
	g.AddEdge("x", "y")
	g.AddEdge("y", "z")
	comps := g.SCC()
	pos := make(map[string]int)
	for i, c := range comps {
		for _, n := range c {
			pos[n] = i
		}
	}
	if !(pos["z"] < pos["y"] && pos["y"] < pos["x"]) {
		t.Fatalf("components not in reverse topological order: %v", comps)
	}
}

func TestSCCPartition(t *testing.T) {
	g := buildDiamond(t)
	g.AddEdge("d", "a") // make one big cycle
	comps := g.SCC()
	if len(comps) != 1 || len(comps[0]) != 4 {
		t.Fatalf("expected one 4-node SCC, got %v", comps)
	}
}

func TestCyclicNodes(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "a")
	g.AddEdge("b", "c")
	g.AddEdge("s", "s")
	got := g.CyclicNodes()
	want := map[string]bool{"a": true, "b": true, "s": true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CyclicNodes = %v, want %v", got, want)
	}
}

func TestBackEdgesMakeAcyclic(t *testing.T) {
	g := New()
	g.AddEdge("i", "a")
	g.AddEdge("a", "b")
	g.AddEdge("b", "a") // loop
	g.AddEdge("b", "o")
	g.AddEdge("o", "o") // self loop
	be := g.BackEdges()
	c := g.Clone()
	for _, e := range be {
		c.RemoveEdge(e.From, e.To)
	}
	if !c.IsAcyclic() {
		t.Fatalf("removing back edges %v did not break all cycles", be)
	}
	if len(be) != 2 {
		t.Fatalf("expected 2 back edges, got %v", be)
	}
}

func TestBackEdgesAcyclicGraph(t *testing.T) {
	g := buildDiamond(t)
	if be := g.BackEdges(); len(be) != 0 {
		t.Fatalf("DAG has back edges: %v", be)
	}
}
