package graph

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func TestQuotientBasic(t *testing.T) {
	// i -> m1 -> m2 -> o with m1, m2 grouped into block "C".
	g := New()
	g.AddEdge("i", "m1")
	g.AddEdge("m1", "m2")
	g.AddEdge("m2", "o")
	q := g.Quotient(map[string]string{"m1": "C", "m2": "C"}, false)
	if q.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d, want 3 (i, C, o)", q.NumNodes())
	}
	if !q.HasEdge("i", "C") || !q.HasEdge("C", "o") {
		t.Fatalf("missing quotient edges: %v", q.Edges())
	}
	if q.HasEdge("C", "C") {
		t.Fatal("intra-block edge leaked as self-loop with keepSelfLoops=false")
	}
}

func TestQuotientKeepSelfLoops(t *testing.T) {
	g := New()
	g.AddEdge("m1", "m2")
	g.AddEdge("m2", "m1")
	q := g.Quotient(map[string]string{"m1": "C", "m2": "C"}, true)
	if !q.HasEdge("C", "C") {
		t.Fatal("expected self-loop with keepSelfLoops=true")
	}
}

func TestQuotientPassThrough(t *testing.T) {
	g := New()
	g.AddEdge("i", "m")
	q := g.Quotient(map[string]string{"m": "C"}, false)
	if !q.HasNode("i") {
		t.Fatal("unpartitioned node must pass through unchanged")
	}
}

func TestQuotientCollapsesParallelEdges(t *testing.T) {
	g := New()
	g.AddEdge("a1", "b1")
	g.AddEdge("a2", "b2")
	q := g.Quotient(map[string]string{"a1": "A", "a2": "A", "b1": "B", "b2": "B"}, false)
	if q.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want single collapsed A->B", q.NumEdges())
	}
}

func TestValidatePartition(t *testing.T) {
	g := New()
	g.AddEdge("i", "m1")
	g.AddEdge("m1", "m2")
	g.AddEdge("m2", "o")
	domain := []string{"m1", "m2"}

	ok := map[string]string{"m1": "C", "m2": "C"}
	if err := g.ValidatePartition(ok, domain); err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}

	missing := map[string]string{"m1": "C"}
	if err := g.ValidatePartition(missing, domain); !errors.Is(err, ErrIncompletePartition) {
		t.Fatalf("missing assignment: err = %v", err)
	}

	extra := map[string]string{"m1": "C", "m2": "C", "o": "C"}
	if err := g.ValidatePartition(extra, domain); !errors.Is(err, ErrIncompletePartition) {
		t.Fatalf("out-of-domain assignment: err = %v", err)
	}

	collide := map[string]string{"m1": "i", "m2": "i"}
	if err := g.ValidatePartition(collide, domain); !errors.Is(err, ErrBlockCollision) {
		t.Fatalf("block/node collision: err = %v", err)
	}

	badDomain := []string{"m1", "ghost"}
	if err := g.ValidatePartition(ok, badDomain); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown domain node: err = %v", err)
	}

	// A block may reuse a name inside the domain (a block named after one of
	// its own members), which is how relevant composites are labelled.
	selfName := map[string]string{"m1": "m1", "m2": "m1"}
	if err := g.ValidatePartition(selfName, domain); err != nil {
		t.Fatalf("self-named block rejected: %v", err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildDiamond(t)
	s := g.InducedSubgraph(map[string]bool{"a": true, "b": true, "d": true})
	if s.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", s.NumNodes())
	}
	if !s.HasEdge("a", "b") || !s.HasEdge("b", "d") || s.HasEdge("a", "c") {
		t.Fatalf("wrong edges: %v", s.Edges())
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("c", "b") // weakly connects c with a,b
	g.AddEdge("x", "y")
	g.AddNode("lone")
	got := g.WeaklyConnectedComponents()
	want := [][]string{{"a", "b", "c"}, {"lone"}, {"x", "y"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("components = %v, want %v", got, want)
	}
}

// Property: the quotient under a random partition never has more nodes or
// more edges than the original, and every original cross-block edge is
// represented.
func TestQuotientSoundOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(15)
		g := randomGraph(rng, n, rng.Intn(3*n))
		blocks := rng.Intn(n) + 1
		blockOf := make(map[string]string)
		for _, id := range g.Nodes() {
			blockOf[id] = "B" + string(rune('0'+rng.Intn(blocks)))
		}
		q := g.Quotient(blockOf, false)
		if q.NumNodes() > g.NumNodes() || q.NumEdges() > g.NumEdges() {
			t.Fatalf("quotient grew: %v vs %v", q, g)
		}
		g.EachEdge(func(from, to string) {
			a, b := blockOf[from], blockOf[to]
			if a != b && !q.HasEdge(a, b) {
				t.Fatalf("cross edge %s->%s (%s->%s) missing in quotient", from, to, a, b)
			}
		})
	}
}
