// Package graph provides the directed-graph substrate used by every other
// layer of the ZOOM reproduction: workflow specifications, workflow runs,
// induced (quotient) views, and provenance graphs are all directed graphs.
//
// The implementation keeps a dense integer core (adjacency slices indexed by
// a compact node index) behind a string-keyed API, so that algorithmic code
// (reachability, SCC, transitive closure) runs on ints while callers deal in
// human-readable node identifiers such as "M7" or "S13".
//
// A Graph is not safe for concurrent mutation; concurrent readers are safe
// once mutation has stopped. The higher layers (e.g. the warehouse) wrap
// graphs in their own synchronization.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a mutable directed graph over string node identifiers.
// Parallel edges are collapsed (at most one edge u->v); self-loops are
// permitted, since workflow specifications may contain reflexive loops.
type Graph struct {
	index map[string]int // id -> dense index
	ids   []string       // dense index -> id
	succ  [][]int        // adjacency (out-edges), sorted ascending
	pred  [][]int        // reverse adjacency (in-edges), sorted ascending
	edges int            // number of distinct edges
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{index: make(map[string]int)}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		index: make(map[string]int, len(g.index)),
		ids:   append([]string(nil), g.ids...),
		succ:  make([][]int, len(g.succ)),
		pred:  make([][]int, len(g.pred)),
		edges: g.edges,
	}
	for k, v := range g.index {
		c.index[k] = v
	}
	for i := range g.succ {
		c.succ[i] = append([]int(nil), g.succ[i]...)
		c.pred[i] = append([]int(nil), g.pred[i]...)
	}
	return c
}

// AddNode inserts a node with the given id. Adding an existing node is a
// no-op, so AddNode is idempotent.
func (g *Graph) AddNode(id string) {
	if _, ok := g.index[id]; ok {
		return
	}
	g.index[id] = len(g.ids)
	g.ids = append(g.ids, id)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
}

// AddEdge inserts the directed edge from -> to, creating missing endpoints.
// Inserting an existing edge is a no-op. It reports whether a new edge was
// actually added.
func (g *Graph) AddEdge(from, to string) bool {
	g.AddNode(from)
	g.AddNode(to)
	u, v := g.index[from], g.index[to]
	if containsInt(g.succ[u], v) {
		return false
	}
	g.succ[u] = insertSorted(g.succ[u], v)
	g.pred[v] = insertSorted(g.pred[v], u)
	g.edges++
	return true
}

// RemoveEdge deletes the edge from -> to if present and reports whether it
// was removed. Endpoints are left in place.
func (g *Graph) RemoveEdge(from, to string) bool {
	u, okU := g.index[from]
	v, okV := g.index[to]
	if !okU || !okV || !containsInt(g.succ[u], v) {
		return false
	}
	g.succ[u] = removeSorted(g.succ[u], v)
	g.pred[v] = removeSorted(g.pred[v], u)
	g.edges--
	return true
}

// HasNode reports whether id is a node of g.
func (g *Graph) HasNode(id string) bool {
	_, ok := g.index[id]
	return ok
}

// HasEdge reports whether the edge from -> to exists.
func (g *Graph) HasEdge(from, to string) bool {
	u, okU := g.index[from]
	v, okV := g.index[to]
	return okU && okV && containsInt(g.succ[u], v)
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.ids) }

// NumEdges returns the number of distinct directed edges.
func (g *Graph) NumEdges() int { return g.edges }

// Nodes returns all node ids in insertion order. The slice is a copy.
func (g *Graph) Nodes() []string {
	return append([]string(nil), g.ids...)
}

// SortedNodes returns all node ids in lexicographic order.
func (g *Graph) SortedNodes() []string {
	out := g.Nodes()
	sort.Strings(out)
	return out
}

// Successors returns the out-neighbors of id in deterministic (insertion
// index) order. It returns nil for an unknown node.
func (g *Graph) Successors(id string) []string {
	u, ok := g.index[id]
	if !ok {
		return nil
	}
	return g.toIDs(g.succ[u])
}

// Predecessors returns the in-neighbors of id in deterministic order.
func (g *Graph) Predecessors(id string) []string {
	u, ok := g.index[id]
	if !ok {
		return nil
	}
	return g.toIDs(g.pred[u])
}

// OutDegree returns the number of out-edges of id (0 for unknown nodes).
func (g *Graph) OutDegree(id string) int {
	if u, ok := g.index[id]; ok {
		return len(g.succ[u])
	}
	return 0
}

// InDegree returns the number of in-edges of id (0 for unknown nodes).
func (g *Graph) InDegree(id string) int {
	if u, ok := g.index[id]; ok {
		return len(g.pred[u])
	}
	return 0
}

// Edge is a directed edge between two named nodes.
type Edge struct {
	From, To string
}

// Edges returns every edge of g, ordered by (From index, To index).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for u, vs := range g.succ {
		for _, v := range vs {
			out = append(out, Edge{From: g.ids[u], To: g.ids[v]})
		}
	}
	return out
}

// EachEdge calls fn for every edge; it avoids allocating the full edge list.
func (g *Graph) EachEdge(fn func(from, to string)) {
	for u, vs := range g.succ {
		for _, v := range vs {
			fn(g.ids[u], g.ids[v])
		}
	}
}

// String renders a compact textual description, useful in test failures.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{nodes=%d edges=%d}", g.NumNodes(), g.NumEdges())
}

// idx returns the dense index of id, or -1 if absent.
func (g *Graph) idx(id string) int {
	if u, ok := g.index[id]; ok {
		return u
	}
	return -1
}

func (g *Graph) toIDs(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = g.ids[x]
	}
	return out
}

func containsInt(xs []int, v int) bool {
	i := sort.SearchInts(xs, v)
	return i < len(xs) && xs[i] == v
}

func insertSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = v
	return xs
}

func removeSorted(xs []int, v int) []int {
	i := sort.SearchInts(xs, v)
	if i < len(xs) && xs[i] == v {
		return append(xs[:i], xs[i+1:]...)
	}
	return xs
}
