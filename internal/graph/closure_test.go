package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	for _, i := range []int{0, 63, 64, 129} {
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(128) {
		t.Fatal("unexpected bits set")
	}
	if got := b.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	c := b.Clone()
	c.Set(5)
	if b.Get(5) {
		t.Fatal("Clone aliases the original")
	}
	d := NewBitset(130)
	d.Set(7)
	d.Or(b)
	if !d.Get(7) || !d.Get(129) {
		t.Fatal("Or lost bits")
	}
}

func TestClosureDiamond(t *testing.T) {
	g := buildDiamond(t)
	c := g.TransitiveClosure()
	cases := []struct {
		from, to string
		want     bool
	}{
		{"a", "d", true}, {"a", "b", true}, {"b", "d", true},
		{"d", "a", false}, {"b", "c", false}, {"a", "a", false},
	}
	for _, tc := range cases {
		if got := c.Reachable(tc.from, tc.to); got != tc.want {
			t.Errorf("Reachable(%s,%s) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
	if got := c.ReachSet("a"); !reflect.DeepEqual(got, []string{"b", "c", "d"}) {
		t.Fatalf("ReachSet(a) = %v", got)
	}
	if got := c.CountReachable("a"); got != 3 {
		t.Fatalf("CountReachable(a) = %d", got)
	}
	if c.Reachable("ghost", "a") || c.CountReachable("ghost") != 0 || c.ReachSet("ghost") != nil {
		t.Fatal("unknown node should be unreachable everywhere")
	}
}

func TestClosureCycles(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("c", "a")
	g.AddEdge("c", "d")
	c := g.TransitiveClosure()
	for _, n := range []string{"a", "b", "c"} {
		if !c.Reachable(n, n) {
			t.Fatalf("%s on a cycle must reach itself", n)
		}
		if !c.Reachable(n, "d") {
			t.Fatalf("%s must reach d", n)
		}
	}
	if c.Reachable("d", "d") {
		t.Fatal("d is not on a cycle")
	}
}

func TestClosureSelfLoop(t *testing.T) {
	g := New()
	g.AddEdge("x", "x")
	g.AddEdge("x", "y")
	c := g.TransitiveClosure()
	if !c.Reachable("x", "x") {
		t.Fatal("self-loop must make x reach itself")
	}
	if c.Reachable("y", "y") {
		t.Fatal("y must not reach itself")
	}
}

// randomGraph builds a pseudo-random graph with n nodes and ~m edges.
func randomGraph(rng *rand.Rand, n, m int) *Graph {
	g := New()
	names := make([]string, n)
	for i := range names {
		names[i] = "n" + string(rune('A'+i%26)) + string(rune('0'+i/26))
		g.AddNode(names[i])
	}
	for i := 0; i < m; i++ {
		g.AddEdge(names[rng.Intn(n)], names[rng.Intn(n)])
	}
	return g
}

// TestClosureMatchesBFS cross-validates the bitset closure against plain
// BFS reachability on random graphs, including cyclic ones.
func TestClosureMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(20)
		g := randomGraph(rng, n, rng.Intn(3*n))
		c := g.TransitiveClosure()
		for _, src := range g.Nodes() {
			bfs := g.Reach(src)
			for _, dst := range g.Nodes() {
				if c.Reachable(src, dst) != bfs[dst] {
					t.Fatalf("trial %d: closure(%s,%s)=%v bfs=%v\n%v",
						trial, src, dst, c.Reachable(src, dst), bfs[dst], g.Edges())
				}
			}
		}
	}
}

// Property: Or is monotone — after b.Or(x), every bit of x is set in b.
func TestBitsetOrMonotoneQuick(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		n := 256
		a, b := NewBitset(n), NewBitset(n)
		for _, x := range xs {
			a.Set(int(x) % n)
		}
		for _, y := range ys {
			b.Set(int(y) % n)
		}
		a.Or(b)
		for _, y := range ys {
			if !a.Get(int(y) % n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
