package graph

import "sort"

// This file provides order-and-structure algorithms: topological sorting,
// acyclicity checks, and Tarjan's strongly connected components. Workflow
// specifications may be cyclic (loops), while workflow runs must be DAGs, so
// both the DAG-only and the cycle-tolerant entry points are exercised.

// TopoSort returns a topological order of the nodes, or ErrCyclic if the
// graph contains a cycle. Ties are broken by node insertion order, so the
// result is deterministic for a deterministically built graph.
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make([]int, len(g.ids))
	for _, vs := range g.succ {
		for _, v := range vs {
			indeg[v]++
		}
	}
	var queue []int
	for u := range g.ids {
		if indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	order := make([]int, 0, len(g.ids))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, v := range g.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(order) != len(g.ids) {
		return nil, ErrCyclic
	}
	return g.toIDs(order), nil
}

// IsAcyclic reports whether the graph has no directed cycle.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoSort()
	return err == nil
}

// SCC returns the strongly connected components in reverse topological order
// of the condensation (Tarjan's invariant). Every node appears in exactly
// one component; trivial components are single nodes without self-loops.
// Node order inside each component is sorted for determinism.
func (g *Graph) SCC() [][]string {
	n := len(g.ids)
	const unvisited = -1
	idx := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range idx {
		idx[i] = unvisited
	}
	var (
		counter int
		stack   []int
		comps   [][]string
	)
	// Iterative Tarjan to survive deep graphs (large unrolled runs).
	type frame struct {
		v  int
		ei int // index into succ[v] of the next edge to examine
	}
	for root := 0; root < n; root++ {
		if idx[root] != unvisited {
			continue
		}
		frames := []frame{{v: root}}
		idx[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.succ[f.v]) {
				w := g.succ[f.v][f.ei]
				f.ei++
				if idx[w] == unvisited {
					idx[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && idx[w] < low[f.v] {
					low[f.v] = idx[w]
				}
				continue
			}
			// All edges of f.v explored: maybe emit a component, then pop.
			if low[f.v] == idx[f.v] {
				var comp []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, g.ids[w])
					if w == f.v {
						break
					}
				}
				sort.Strings(comp)
				comps = append(comps, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.v] < low[p.v] {
					low[p.v] = low[f.v]
				}
			}
		}
	}
	return comps
}

// CyclicNodes returns the set of nodes that lie on at least one directed
// cycle (members of non-trivial SCCs, plus self-looped nodes).
func (g *Graph) CyclicNodes() map[string]bool {
	out := make(map[string]bool)
	for _, comp := range g.SCC() {
		if len(comp) > 1 {
			for _, n := range comp {
				out[n] = true
			}
		} else if g.HasEdge(comp[0], comp[0]) {
			out[comp[0]] = true
		}
	}
	return out
}

// BackEdges returns a set of edges whose removal makes the graph acyclic,
// computed by a deterministic DFS from every root. The returned edges are
// genuine retreating edges of the DFS forest, which for the simple-loop
// specifications produced by the workload generator correspond one-to-one
// with the loop back-edges.
func (g *Graph) BackEdges() []Edge {
	n := len(g.ids)
	color := make([]byte, n) // 0 white, 1 grey, 2 black
	var out []Edge
	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if color[root] != 0 {
			continue
		}
		frames := []frame{{v: root}}
		color[root] = 1
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(g.succ[f.v]) {
				w := g.succ[f.v][f.ei]
				f.ei++
				switch color[w] {
				case 0:
					color[w] = 1
					frames = append(frames, frame{v: w})
				case 1:
					out = append(out, Edge{From: g.ids[f.v], To: g.ids[w]})
				}
				continue
			}
			color[f.v] = 2
			frames = frames[:len(frames)-1]
		}
	}
	return out
}
