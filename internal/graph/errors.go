package graph

import "errors"

// Sentinel errors returned by graph algorithms. Callers test them with
// errors.Is so that the higher layers can wrap them with context.
var (
	// ErrCyclic is returned by DAG-only algorithms applied to a cyclic graph.
	ErrCyclic = errors.New("graph: cycle detected")
	// ErrUnknownNode is returned when an operation references a node that is
	// not part of the graph.
	ErrUnknownNode = errors.New("graph: unknown node")
	// ErrIncompletePartition is returned when a partition does not cover its
	// declared domain exactly.
	ErrIncompletePartition = errors.New("graph: incomplete partition")
	// ErrBlockCollision is returned when a partition block name collides
	// with a pass-through node id.
	ErrBlockCollision = errors.New("graph: block name collides with node")
)
