package graph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// edgeList is a quick-generatable compact description of a graph: each
// value encodes one edge over a bounded node universe.
type edgeList []uint16

// Generate implements quick.Generator.
func (edgeList) Generate(rand *rand.Rand, size int) reflect.Value {
	n := rand.Intn(40)
	out := make(edgeList, n)
	for i := range out {
		out[i] = uint16(rand.Intn(1 << 16))
	}
	return reflect.ValueOf(out)
}

func (e edgeList) build() *Graph {
	g := New()
	for _, v := range e {
		from := int(v>>8) % 12
		to := int(v&0xff) % 12
		g.AddEdge(nodeName(from), nodeName(to))
	}
	return g
}

func nodeName(i int) string { return string(rune('a' + i)) }

// Property: successor/predecessor duality — v ∈ succ(u) iff u ∈ pred(v),
// and the edge count equals the sum of successor-list lengths.
func TestQuickSuccPredDuality(t *testing.T) {
	f := func(e edgeList) bool {
		g := e.build()
		count := 0
		for _, u := range g.Nodes() {
			for _, v := range g.Successors(u) {
				count++
				found := false
				for _, back := range g.Predecessors(v) {
					if back == u {
						found = true
						break
					}
				}
				if !found || !g.HasEdge(u, v) {
					return false
				}
			}
		}
		return count == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: TopoSort succeeds iff IsAcyclic, and when it succeeds every
// edge points forward in the order.
func TestQuickTopoSortIffAcyclic(t *testing.T) {
	f := func(e edgeList) bool {
		g := e.build()
		order, err := g.TopoSort()
		if (err == nil) != g.IsAcyclic() {
			return false
		}
		if err != nil {
			return true
		}
		pos := make(map[string]int, len(order))
		for i, n := range order {
			pos[n] = i
		}
		ok := true
		g.EachEdge(func(from, to string) {
			if pos[from] >= pos[to] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the transitive closure agrees with BFS reachability, and SCC
// partitions the node set.
func TestQuickClosureAndSCC(t *testing.T) {
	f := func(e edgeList) bool {
		g := e.build()
		c := g.TransitiveClosure()
		for _, src := range g.Nodes() {
			bfs := g.Reach(src)
			for _, dst := range g.Nodes() {
				if c.Reachable(src, dst) != bfs[dst] {
					return false
				}
			}
		}
		seen := make(map[string]bool)
		for _, comp := range g.SCC() {
			for _, n := range comp {
				if seen[n] {
					return false
				}
				seen[n] = true
			}
		}
		return len(seen) == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: removing BackEdges always yields an acyclic graph, and no back
// edges are reported for acyclic graphs.
func TestQuickBackEdges(t *testing.T) {
	f := func(e edgeList) bool {
		g := e.build()
		be := g.BackEdges()
		if g.IsAcyclic() && len(be) > 0 {
			return false
		}
		c := g.Clone()
		for _, edge := range be {
			c.RemoveEdge(edge.From, edge.To)
		}
		return c.IsAcyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quotient never invents cross-block reachability — if block A
// reaches block B in the quotient, some member of A reaches some member of
// B in the original (path-wise this is the soundness half of induced
// workflow semantics).
func TestQuickQuotientReachabilitySound(t *testing.T) {
	f := func(e edgeList, assign []uint8) bool {
		g := e.build()
		if g.NumNodes() == 0 {
			return true
		}
		blockOf := make(map[string]string)
		nodes := g.Nodes()
		for i, n := range nodes {
			b := 0
			if len(assign) > 0 {
				b = int(assign[i%len(assign)]) % 4
			}
			blockOf[n] = "B" + string(rune('0'+b))
		}
		q := g.Quotient(blockOf, true)
		// Every quotient edge must be witnessed by an original edge.
		ok := true
		q.EachEdge(func(a, b string) {
			witnessed := false
			g.EachEdge(func(u, v string) {
				if blockOf[u] == a && blockOf[v] == b {
					witnessed = true
				}
			})
			if !witnessed {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ReachAvoiding is monotone in the avoid predicate — avoiding
// fewer nodes can only grow the reachable set.
func TestQuickReachAvoidingMonotone(t *testing.T) {
	f := func(e edgeList, blockedMask uint16) bool {
		g := e.build()
		blockedBig := func(n string) bool { return blockedMask&(1<<uint(n[0]-'a')) != 0 }
		// The smaller predicate blocks a subset (clear the low bits).
		smallMask := blockedMask &^ 0x0f
		blockedSmall := func(n string) bool { return smallMask&(1<<uint(n[0]-'a')) != 0 }
		for _, src := range g.Nodes() {
			big := g.ReachAvoiding(src, blockedSmall) // fewer blocked
			small := g.ReachAvoiding(src, blockedBig) // more blocked
			for n := range small {
				if !big[n] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
