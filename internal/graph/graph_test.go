package graph

import (
	"reflect"
	"testing"
)

func buildDiamond(t testing.TB) *Graph {
	t.Helper()
	g := New()
	for _, e := range [][2]string{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}} {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	g.AddNode("x")
	g.AddNode("x")
	if got := g.NumNodes(); got != 1 {
		t.Fatalf("NumNodes = %d, want 1", got)
	}
}

func TestAddEdgeCreatesEndpoints(t *testing.T) {
	g := New()
	if !g.AddEdge("a", "b") {
		t.Fatal("AddEdge returned false for a new edge")
	}
	if !g.HasNode("a") || !g.HasNode("b") {
		t.Fatal("endpoints were not created")
	}
	if g.AddEdge("a", "b") {
		t.Fatal("AddEdge returned true for a duplicate edge")
	}
	if got := g.NumEdges(); got != 1 {
		t.Fatalf("NumEdges = %d, want 1", got)
	}
}

func TestSelfLoopAllowed(t *testing.T) {
	g := New()
	if !g.AddEdge("m", "m") {
		t.Fatal("self-loop rejected")
	}
	if !g.HasEdge("m", "m") {
		t.Fatal("self-loop not stored")
	}
	if got := g.Successors("m"); !reflect.DeepEqual(got, []string{"m"}) {
		t.Fatalf("Successors = %v", got)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := buildDiamond(t)
	if !g.RemoveEdge("a", "b") {
		t.Fatal("RemoveEdge failed for existing edge")
	}
	if g.RemoveEdge("a", "b") {
		t.Fatal("RemoveEdge succeeded twice")
	}
	if g.HasEdge("a", "b") {
		t.Fatal("edge still present after removal")
	}
	if got := g.NumEdges(); got != 3 {
		t.Fatalf("NumEdges = %d, want 3", got)
	}
	if g.RemoveEdge("a", "zzz") {
		t.Fatal("RemoveEdge succeeded for unknown endpoint")
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	g := buildDiamond(t)
	if got := g.Successors("a"); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("Successors(a) = %v", got)
	}
	if got := g.Predecessors("d"); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("Predecessors(d) = %v", got)
	}
	if got := g.Successors("nope"); got != nil {
		t.Fatalf("Successors(unknown) = %v, want nil", got)
	}
	if g.OutDegree("a") != 2 || g.InDegree("d") != 2 || g.OutDegree("zz") != 0 {
		t.Fatal("degree bookkeeping wrong")
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := buildDiamond(t)
	want := []Edge{{"a", "b"}, {"a", "c"}, {"b", "d"}, {"c", "d"}}
	if got := g.Edges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Edges = %v, want %v", got, want)
	}
	var visited []Edge
	g.EachEdge(func(f, to string) { visited = append(visited, Edge{f, to}) })
	if !reflect.DeepEqual(visited, want) {
		t.Fatalf("EachEdge visited %v, want %v", visited, want)
	}
}

func TestCloneIsolation(t *testing.T) {
	g := buildDiamond(t)
	c := g.Clone()
	c.AddEdge("d", "e")
	if g.HasNode("e") {
		t.Fatal("mutation of clone leaked into original")
	}
	g.RemoveEdge("a", "b")
	if !c.HasEdge("a", "b") {
		t.Fatal("mutation of original leaked into clone")
	}
}

func TestNodesOrder(t *testing.T) {
	g := New()
	g.AddEdge("z", "a")
	g.AddNode("m")
	if got := g.Nodes(); !reflect.DeepEqual(got, []string{"z", "a", "m"}) {
		t.Fatalf("Nodes = %v (insertion order expected)", got)
	}
	if got := g.SortedNodes(); !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Fatalf("SortedNodes = %v", got)
	}
}

func TestReachBasic(t *testing.T) {
	g := buildDiamond(t)
	r := g.Reach("a")
	for _, want := range []string{"b", "c", "d"} {
		if !r[want] {
			t.Fatalf("Reach(a) missing %s: %v", want, r)
		}
	}
	if r["a"] {
		t.Fatal("Reach(a) contains a but a is not on a cycle")
	}
	if len(g.Reach("d")) != 0 {
		t.Fatal("sink should reach nothing")
	}
	if len(g.Reach("ghost")) != 0 {
		t.Fatal("unknown source should reach nothing")
	}
}

func TestReachSelfOnCycle(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "a")
	if !g.Reach("a")["a"] {
		t.Fatal("node on a 2-cycle must reach itself")
	}
	g2 := New()
	g2.AddEdge("x", "x")
	if !g2.Reach("x")["x"] {
		t.Fatal("self-loop node must reach itself")
	}
}

func TestReachBack(t *testing.T) {
	g := buildDiamond(t)
	r := g.ReachBack("d")
	for _, want := range []string{"a", "b", "c"} {
		if !r[want] {
			t.Fatalf("ReachBack(d) missing %s", want)
		}
	}
}

func TestReachAvoiding(t *testing.T) {
	// a -> b -> c and a -> c directly. Avoiding b: c stays reachable via the
	// direct edge; b itself is reachable (endpoints may be avoided nodes);
	// d is only downstream of c, and c is avoided, so d is blocked.
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("a", "c")
	g.AddEdge("c", "d")
	avoid := func(n string) bool { return n == "b" || n == "c" }
	r := g.ReachAvoiding("a", avoid)
	if !r["b"] || !r["c"] {
		t.Fatalf("b and c must be reachable as endpoints: %v", r)
	}
	if r["d"] {
		t.Fatalf("d must be blocked by avoided intermediate c: %v", r)
	}
}

func TestReachAvoidingBlocksIntermediates(t *testing.T) {
	// a -> b -> c, only path to c goes through b. Avoid b => c unreachable.
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	r := g.ReachAvoiding("a", func(n string) bool { return n == "b" })
	if !r["b"] {
		t.Fatal("endpoint b should be reported")
	}
	if r["c"] {
		t.Fatal("c should be blocked by avoided intermediate b")
	}
}

func TestReachAvoidingSourceMayBeAvoided(t *testing.T) {
	// nr-paths start at relevant nodes: the source being "avoided" must not
	// stop expansion of its own successors.
	g := New()
	g.AddEdge("r", "n")
	g.AddEdge("n", "s")
	r := g.ReachAvoiding("r", func(x string) bool { return x == "r" || x == "s" })
	if !r["n"] || !r["s"] {
		t.Fatalf("expected n and s reachable, got %v", r)
	}
}

func TestHasPathAvoiding(t *testing.T) {
	g := New()
	g.AddEdge("i", "m1")
	g.AddEdge("m1", "m2")
	g.AddEdge("m2", "m3")
	relevant := map[string]bool{"m2": true}
	avoid := func(n string) bool { return relevant[n] }
	if !g.HasPathAvoiding("i", "m2", avoid) {
		t.Fatal("i -> m1 -> m2 is an nr-path (m1 not relevant)")
	}
	if g.HasPathAvoiding("i", "m3", avoid) {
		t.Fatal("every i->m3 path passes through relevant m2")
	}
}

func TestEdgeOnPathAvoiding(t *testing.T) {
	g := New()
	g.AddEdge("r1", "n1")
	g.AddEdge("n1", "r2")
	g.AddEdge("r1", "r2")
	avoid := func(n string) bool { return n == "r1" || n == "r2" }
	if !g.EdgeOnPathAvoiding("r1", "n1", "r1", "r2", avoid) {
		t.Fatal("(r1,n1) lies on nr-path r1->n1->r2")
	}
	if !g.EdgeOnPathAvoiding("r1", "r2", "r1", "r2", avoid) {
		t.Fatal("(r1,r2) is itself an nr-path r1->r2")
	}
	if g.EdgeOnPathAvoiding("r1", "n1", "n1", "r2", avoid) {
		t.Fatal("edge into the source cannot be on a path from the source")
	}
	if g.EdgeOnPathAvoiding("a", "b", "r1", "r2", avoid) {
		t.Fatal("nonexistent edge reported on a path")
	}
}

func TestBFSOrder(t *testing.T) {
	g := buildDiamond(t)
	got := g.BFSOrder("a")
	if !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("BFSOrder = %v", got)
	}
	if g.BFSOrder("ghost") != nil {
		t.Fatal("BFSOrder of unknown node should be nil")
	}
}

func TestShortestPath(t *testing.T) {
	g := New()
	g.AddEdge("a", "b")
	g.AddEdge("b", "c")
	g.AddEdge("a", "c")
	got := g.ShortestPath("a", "c")
	if !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Fatalf("ShortestPath = %v, want direct hop", got)
	}
	if got := g.ShortestPath("c", "a"); got != nil {
		t.Fatalf("ShortestPath against edge direction = %v, want nil", got)
	}
	if got := g.ShortestPath("a", "a"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("ShortestPath(a,a) = %v", got)
	}
}
