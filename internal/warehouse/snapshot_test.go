package warehouse

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/run"
	"repro/internal/spec"
)

// snapshotWarehouse builds a warehouse with the phylogenomics example (plus
// a registered view and annotated input) and a spread of generated runs
// across the Table II classes — the fixture the snapshot tests serialize.
func snapshotWarehouse(t testing.TB, runsPerClass int) *Warehouse {
	t.Helper()
	w := New(0)
	ph := spec.Phylogenomics()
	mustT(t, w.RegisterSpec(ph))
	mustT(t, w.LoadRun(run.Figure2()))
	joe, err := core.BuildRelevant(ph, spec.PhyloRelevantJoe())
	mustT(t, err)
	mustT(t, w.RegisterView("joe", joe))
	r, _ := w.Run("fig2")
	mustT(t, r.AnnotateInput("d1", map[string]string{"who": "joe", "when": "2008-04-07"}))

	g := gen.NewGenerator(42)
	classes := gen.RunClasses()
	classes[2].MaxNodes = 600 // keep "large" test-sized
	for ci, rc := range classes {
		s := g.Workflow(gen.Class4(), fmt.Sprintf("snap-%s", rc.Name))
		mustT(t, w.RegisterSpec(s))
		for i := 0; i < runsPerClass; i++ {
			gr, _, err := g.Run(s, rc, fmt.Sprintf("snap-%s-r%d", rc.Name, i))
			mustT(t, err)
			mustT(t, w.LoadRun(gr))
		}
		_ = ci
	}
	return w
}

// deepAnswers queries the UAdmin deep provenance of every run's last final
// output, returning a comparable map.
func deepAnswers(t testing.TB, w *Warehouse) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	for _, id := range w.RunIDs() {
		r, err := w.Run(id)
		mustT(t, err)
		finals := r.FinalOutputs()
		if len(finals) == 0 {
			continue
		}
		cl, err := w.DeepProvenance(id, finals[len(finals)-1])
		mustT(t, err)
		var ds []string
		for d := range cl.DataSet() {
			ds = append(ds, d)
		}
		sort.Strings(ds)
		out[id] = ds
	}
	return out
}

// catalog compares the non-cache portion of Stats.
func catalog(s Stats) Stats {
	s.Cache = CacheCounters{}
	s.CacheHits, s.CacheMisses = 0, 0
	return s
}

// TestSaveBinaryRoundTrip: SaveBinary → Load restores an equivalent
// warehouse, and a second SaveBinary is byte-identical (the v2 format is
// canonical: content-derived interning and sorted frames).
func TestSaveBinaryRoundTrip(t *testing.T) {
	w := snapshotWarehouse(t, 2)
	var buf1 bytes.Buffer
	mustT(t, w.SaveBinary(&buf1))

	back, err := Load(bytes.NewReader(buf1.Bytes()), 0)
	mustT(t, err)

	if !reflect.DeepEqual(back.SpecNames(), w.SpecNames()) {
		t.Fatal("specs differ after binary round trip")
	}
	if !reflect.DeepEqual(back.RunIDs(), w.RunIDs()) {
		t.Fatal("runs differ after binary round trip")
	}
	if got, want := catalog(back.Stats()), catalog(w.Stats()); !reflect.DeepEqual(got, want) {
		t.Fatalf("stats differ after binary round trip:\n got %+v\nwant %+v", got, want)
	}
	v, err := back.View("phylogenomics", "joe")
	mustT(t, err)
	orig, err := w.View("phylogenomics", "joe")
	mustT(t, err)
	if !v.Equal(orig) {
		t.Fatal("view differs after binary round trip")
	}
	r, err := back.Run("fig2")
	mustT(t, err)
	if got := r.InputMeta("d1"); got["who"] != "joe" || got["when"] != "2008-04-07" {
		t.Fatalf("metadata lost: %v", got)
	}
	if !reflect.DeepEqual(deepAnswers(t, back), deepAnswers(t, w)) {
		t.Fatal("provenance answers differ after binary round trip")
	}

	var buf2 bytes.Buffer
	mustT(t, back.SaveBinary(&buf2))
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("v2 snapshot not byte-stable: %d vs %d bytes", buf1.Len(), buf2.Len())
	}
}

// normalizeSnapshot sorts the order-insensitive parts of a decoded v1
// snapshot (flow rows follow graph insertion order, which reconstruction
// does not preserve).
func normalizeSnapshot(s *snapshot) {
	for i := range s.Runs {
		fl := s.Runs[i].Flows
		sort.Slice(fl, func(a, b int) bool {
			if fl[a].From != fl[b].From {
				return fl[a].From < fl[b].From
			}
			return fl[a].To < fl[b].To
		})
	}
}

// TestSaveV1RoundTripElementIdentical: Save → Load → Save yields an
// element-identical v1 document (same specs, views, runs, flows and meta,
// flow order normalized).
func TestSaveV1RoundTripElementIdentical(t *testing.T) {
	w := snapshotWarehouse(t, 2)
	var buf1 bytes.Buffer
	mustT(t, w.Save(&buf1))
	back, err := Load(bytes.NewReader(buf1.Bytes()), 0)
	mustT(t, err)
	var buf2 bytes.Buffer
	mustT(t, back.Save(&buf2))

	var s1, s2 snapshot
	mustT(t, json.Unmarshal(buf1.Bytes(), &s1))
	mustT(t, json.Unmarshal(buf2.Bytes(), &s2))
	normalizeSnapshot(&s1)
	normalizeSnapshot(&s2)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("v1 snapshot not element-identical after round trip")
	}
}

// TestLoadAutoDetect: the same warehouse saved in both formats loads to the
// same contents through the one Load entry point.
func TestLoadAutoDetect(t *testing.T) {
	w := snapshotWarehouse(t, 1)
	var v1, v2 bytes.Buffer
	mustT(t, w.Save(&v1))
	mustT(t, w.SaveBinary(&v2))
	if v1.Bytes()[0] == snapMagic[0] {
		t.Fatal("v1 snapshot collides with the v2 magic byte")
	}

	from1, err := Load(bytes.NewReader(v1.Bytes()), 0)
	mustT(t, err)
	from2, err := Load(bytes.NewReader(v2.Bytes()), 0)
	mustT(t, err)
	if !reflect.DeepEqual(from1.RunIDs(), from2.RunIDs()) {
		t.Fatal("formats disagree on runs")
	}
	if got, want := catalog(from1.Stats()), catalog(from2.Stats()); !reflect.DeepEqual(got, want) {
		t.Fatalf("formats disagree on stats:\n v1 %+v\n v2 %+v", got, want)
	}
	if !reflect.DeepEqual(deepAnswers(t, from1), deepAnswers(t, from2)) {
		t.Fatal("formats disagree on provenance answers")
	}
}

// TestLoadBinaryRejectsCorrupt covers the v2 error paths: bad magic, bad
// version, truncations, and a frame with out-of-range ids.
func TestLoadBinaryRejectsCorrupt(t *testing.T) {
	w := snapshotWarehouse(t, 1)
	var buf bytes.Buffer
	mustT(t, w.SaveBinary(&buf))
	good := buf.Bytes()

	if _, err := Load(bytes.NewReader([]byte("ZXXX")), 0); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad := append([]byte(nil), good...)
	bad[4] = 9
	if _, err := Load(bytes.NewReader(bad), 0); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version accepted: %v", err)
	}
	for _, cut := range []int{1, 4, 5, 6, len(good) / 2, len(good) - 1} {
		if _, err := Load(bytes.NewReader(good[:cut]), 0); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Flip bytes in the tail (the run frames); Load must error or produce a
	// valid warehouse, never panic. A sparse stride keeps the test quick —
	// FuzzSnapshotLoad explores mutations exhaustively.
	stride := 53
	if testing.Short() {
		stride = 211
	}
	for i := len(good) / 2; i < len(good); i += stride {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xff
		if back, err := Load(bytes.NewReader(mut), 0); err == nil {
			for _, id := range back.RunIDs() {
				r, err := back.Run(id)
				mustT(t, err)
				mustT(t, r.Validate())
			}
		}
	}
}

// TestLoadParallelDeterministicError: when several runs are corrupt, every
// worker count reports the error of the lowest-indexed bad run.
func TestLoadParallelDeterministicError(t *testing.T) {
	w := snapshotWarehouse(t, 4)
	var buf bytes.Buffer
	mustT(t, w.Save(&buf))
	var snap snapshot
	mustT(t, json.Unmarshal(buf.Bytes(), &snap))
	if len(snap.Runs) < 4 {
		t.Fatalf("fixture too small: %d runs", len(snap.Runs))
	}
	// Corrupt runs 1 and 3 differently: run 1 gets a self flow, run 3 an
	// unknown step.
	snap.Runs[1].Flows = append(snap.Runs[1].Flows, flowSnap{From: snap.Runs[1].Steps[0].ID, To: snap.Runs[1].Steps[0].ID, Data: []string{"zz1"}})
	snap.Runs[3].Flows = append(snap.Runs[3].Flows, flowSnap{From: "ghost-step", To: snap.Runs[3].Steps[0].ID, Data: []string{"zz2"}})
	blob, err := json.Marshal(&snap)
	mustT(t, err)

	_, wantErr := LoadWith(bytes.NewReader(blob), 0, LoadOptions{Workers: 1})
	if wantErr == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if !strings.Contains(wantErr.Error(), snap.Runs[1].ID) {
		t.Fatalf("serial load did not fail on the first bad run: %v", wantErr)
	}
	for trial := 0; trial < 8; trial++ {
		_, err := LoadWith(bytes.NewReader(blob), 0, LoadOptions{Workers: 8})
		if err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("trial %d: parallel error %v, want %v", trial, err, wantErr)
		}
	}
}

// FuzzSnapshotLoad feeds Load arbitrary bytes, seeded with valid v1, v2
// and v3 snapshots and corruptions of all three. Load must never panic;
// when it succeeds, the resulting warehouse must re-save in both writable
// formats and contain only valid runs (the generic reader path eagerly
// materializes v3 runs, so this invariant covers v3 too).
func FuzzSnapshotLoad(f *testing.F) {
	w := New(0)
	if err := w.RegisterSpec(spec.Phylogenomics()); err != nil {
		f.Fatal(err)
	}
	if err := w.LoadRun(run.Figure2()); err != nil {
		f.Fatal(err)
	}
	var v1, v2, v3 bytes.Buffer
	if err := w.Save(&v1); err != nil {
		f.Fatal(err)
	}
	if err := w.SaveBinary(&v2); err != nil {
		f.Fatal(err)
	}
	if err := w.SaveV3(&v3); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v3.Bytes())
	f.Add(v1.Bytes()[:v1.Len()/2])
	f.Add(v2.Bytes()[:v2.Len()/2])
	f.Add(v3.Bytes()[:v3.Len()/2])
	f.Add([]byte("ZOOM\x02"))
	f.Add([]byte("ZOOM\x03"))
	f.Add([]byte("Z"))
	f.Add([]byte("{}"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), v2.Bytes()...)
	for i := 6; i < len(corrupt); i += 11 {
		corrupt[i] ^= 0x55
	}
	f.Add(corrupt)
	corrupt3 := append([]byte(nil), v3.Bytes()...)
	for i := 6; i < len(corrupt3); i += 131 {
		corrupt3[i] ^= 0x55
	}
	f.Add(corrupt3)
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := LoadWith(bytes.NewReader(data), 0, LoadOptions{Workers: 2})
		if err != nil {
			return
		}
		for _, id := range back.RunIDs() {
			r, err := back.Run(id)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("loaded invalid run %q: %v", id, err)
			}
		}
		var b1, b2 bytes.Buffer
		if err := back.Save(&b1); err != nil {
			t.Fatalf("re-save v1: %v", err)
		}
		if err := back.SaveBinary(&b2); err != nil {
			t.Fatalf("re-save v2: %v", err)
		}
	})
}

// TestConcurrentParallelLoadEquivalence: loading the same snapshot with
// Workers=1 and Workers=8 yields identical warehouses — same catalog stats
// and identical deep-provenance answers — in both formats. Runs under
// -race in CI (name matches the Concurrent pattern).
func TestConcurrentParallelLoadEquivalence(t *testing.T) {
	w := snapshotWarehouse(t, 3)
	var v1, v2 bytes.Buffer
	mustT(t, w.Save(&v1))
	mustT(t, w.SaveBinary(&v2))

	for _, tc := range []struct {
		name string
		data []byte
	}{{"v1", v1.Bytes()}, {"v2", v2.Bytes()}} {
		t.Run(tc.name, func(t *testing.T) {
			serial, err := LoadWith(bytes.NewReader(tc.data), 0, LoadOptions{Workers: 1})
			mustT(t, err)
			parallel, err := LoadWith(bytes.NewReader(tc.data), 0, LoadOptions{Workers: 8})
			mustT(t, err)
			if !reflect.DeepEqual(serial.RunIDs(), parallel.RunIDs()) {
				t.Fatal("run sets differ by worker count")
			}
			if got, want := catalog(parallel.Stats()), catalog(serial.Stats()); !reflect.DeepEqual(got, want) {
				t.Fatalf("stats differ by worker count:\n workers=8 %+v\n workers=1 %+v", got, want)
			}
			if !reflect.DeepEqual(deepAnswers(t, serial), deepAnswers(t, parallel)) {
				t.Fatal("provenance answers differ by worker count")
			}
		})
	}
}
