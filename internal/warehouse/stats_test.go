package warehouse

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/wflog"
)

func TestStats(t *testing.T) {
	w := loadedWarehouse(t)
	s, _ := w.Spec("phylogenomics")
	joe, _ := core.BuildRelevant(s, spec.PhyloRelevantJoe())
	mustT(t, w.RegisterView("joe", joe))
	if _, err := w.DeepProvenance("fig2", "d447"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.DeepProvenance("fig2", "d447"); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Specs != 1 || st.Views != 1 || st.Runs != 1 {
		t.Fatalf("catalog counts wrong: %+v", st)
	}
	if st.Steps != 10 || st.DataObjects != 246 || st.FlowEdges != 13 {
		t.Fatalf("run counts wrong: %+v", st)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("cache counters wrong: %+v", st)
	}
	if !strings.Contains(st.String(), "runs=1") {
		t.Fatalf("Stats.String = %s", st)
	}
}

func TestDropRun(t *testing.T) {
	w := loadedWarehouse(t)
	if _, err := w.DeepProvenance("fig2", "d447"); err != nil {
		t.Fatal(err)
	}
	if err := w.DropRun("fig2"); err != nil {
		t.Fatal(err)
	}
	if err := w.DropRun("fig2"); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("double drop: %v", err)
	}
	if _, err := w.Run("fig2"); !errors.Is(err, ErrUnknownRun) {
		t.Fatal("run still present")
	}
	// The cached closure must not resurrect the dropped run.
	if _, err := w.DeepProvenance("fig2", "d447"); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("query on dropped run: %v", err)
	}
	// Reloading the same id works (the cache entry is gone).
	mustT(t, w.LoadRun(run.Figure2()))
	c, err := w.DeepProvenance("fig2", "d447")
	if err != nil || c.NumSteps() != 10 {
		t.Fatalf("reloaded run broken: %v", err)
	}
}

func TestIngestLogStream(t *testing.T) {
	w := New(0)
	mustT(t, w.RegisterSpec(spec.Phylogenomics()))
	events, err := run.Figure2().ToLog()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wflog.Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	n, err := w.IngestLogStream("streamed", "phylogenomics", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(events) {
		t.Fatalf("ingested %d events, want %d", n, len(events))
	}
	r, err := w.Run("streamed")
	if err != nil || r.NumSteps() != 10 {
		t.Fatalf("streamed run wrong: %v", err)
	}
	// A malformed stream loads nothing.
	if _, err := w.IngestLogStream("bad", "phylogenomics", strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage stream accepted")
	}
	if _, err := w.Run("bad"); !errors.Is(err, ErrUnknownRun) {
		t.Fatal("half-loaded run visible")
	}
}
