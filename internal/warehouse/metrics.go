package warehouse

import (
	"time"

	"repro/internal/obs"
)

// warehouseMetrics are the warehouse's ingest instruments, resolved once at
// attach time (see obs.Registry: returned pointers are stable, recording is
// lock-free).
type warehouseMetrics struct {
	runsLoaded     *obs.Counter   // ingest.runs_loaded
	events         *obs.Counter   // ingest.events
	logIngestNs    *obs.Histogram // ingest.log_ns, per LoadLogReader call
	snapshotLoadNs *obs.Histogram // ingest.snapshot_load_ns, per LoadWith call
	labelBuilds    *obs.Counter   // labels.builds
	labelHits      *obs.Counter   // labels.hits
	labelFallbacks *obs.Counter   // labels.fallbacks
}

// AttachMetrics wires the warehouse and its closure cache to a metrics
// registry; every subsequent ingest and cache lifecycle event is recorded
// there, and Stats gains a Metrics snapshot. Attaching nil detaches.
// Safe to call concurrently with queries: attachment is published through
// atomic pointers, and recording sites tolerate observing the old registry
// for a few operations.
func (w *Warehouse) AttachMetrics(reg *obs.Registry) {
	w.metricsReg.Store(reg)
	w.cache.attachMetrics(reg)
	if reg == nil {
		w.obs.Store(nil)
		return
	}
	w.obs.Store(&warehouseMetrics{
		runsLoaded:     reg.Counter("ingest.runs_loaded"),
		events:         reg.Counter("ingest.events"),
		logIngestNs:    reg.Histogram("ingest.log_ns"),
		snapshotLoadNs: reg.Histogram("ingest.snapshot_load_ns"),
		labelBuilds:    reg.Counter("labels.builds"),
		labelHits:      reg.Counter("labels.hits"),
		labelFallbacks: reg.Counter("labels.fallbacks"),
	})
}

// Metrics returns the attached registry (nil when detached).
func (w *Warehouse) Metrics() *obs.Registry {
	return w.metricsReg.Load()
}

// observeRunLoaded records one successful LoadRun.
func (w *Warehouse) observeRunLoaded() {
	if m := w.obs.Load(); m != nil {
		m.runsLoaded.Inc()
	}
}

// observeLogIngest records one LoadLogReader call: events decoded and wall
// time, from which events/s falls out of the exported snapshot
// (ingest.events vs. ingest.log_ns sum).
func (w *Warehouse) observeLogIngest(events int, start time.Time) {
	m := w.obs.Load()
	if m == nil || start.IsZero() {
		return
	}
	m.events.Add(int64(events))
	m.logIngestNs.Observe(time.Since(start).Nanoseconds())
}

// observeSnapshotLoad records one whole-warehouse snapshot load.
func (w *Warehouse) observeSnapshotLoad(start time.Time) {
	m := w.obs.Load()
	if m == nil || start.IsZero() {
		return
	}
	m.snapshotLoadNs.Observe(time.Since(start).Nanoseconds())
}

// observeLabelBuild records one successfully built label index.
func (w *Warehouse) observeLabelBuild() {
	w.labelBuilds.Add(1)
	if m := w.obs.Load(); m != nil {
		m.labelBuilds.Inc()
	}
}

// observeLabelHit records one closure computation served by labels.
func (w *Warehouse) observeLabelHit() {
	w.labelHits.Add(1)
	if m := w.obs.Load(); m != nil {
		m.labelHits.Inc()
	}
}

// observeLabelFallback records one label-requested computation that took
// the BFS because the run had no usable labels.
func (w *Warehouse) observeLabelFallback() {
	w.labelFallbacks.Add(1)
	if m := w.obs.Load(); m != nil {
		m.labelFallbacks.Inc()
	}
}

// metricsTime returns the current time if a registry is attached, else the
// zero Time — ingest paths call it so a detached warehouse never pays for
// time.Now.
func (w *Warehouse) metricsTime() time.Time {
	if w.obs.Load() != nil {
		return time.Now()
	}
	return time.Time{}
}
