package warehouse

import (
	"fmt"
	"io"

	"repro/internal/obs"
)

// Stats summarizes the warehouse contents — the row counts a database
// administrator would read off the catalog. The cache fields are atomic
// snapshots; under concurrent traffic they are each exact, though the set
// is not one instantaneous cut.
type Stats struct {
	Specs       int
	Views       int
	Runs        int
	Steps       int
	FlowEdges   int
	DataObjects int
	CacheHits   int64
	CacheMisses int64
	Cache       CacheCounters
	// Snapshot describes the snapshot this warehouse was opened from and,
	// for v3 opens, how much of it has materialized (zero value for live
	// warehouses and v1/v2 loads).
	Snapshot SnapshotStats
	// Index summarizes the compact run indexes (interned ids, CSR bytes,
	// closure bitset words) across all loaded runs.
	Index IndexStats
	// Labels summarizes the reachability label indexes (labeled runs,
	// chains, label bytes) and the label lifecycle counters.
	Labels LabelsStats
	// Metrics is a snapshot of the attached observability registry (nil
	// unless AttachMetrics was called): query-stage latency histograms,
	// ingest throughput, and cache lifecycle counters.
	Metrics *obs.Snapshot
}

// CacheCounters are the closure cache's global counters. All of them are
// maintained with atomic adds (never plain increments), so reading them
// during a 32-goroutine stress run is race-free. At any quiescent point
// (no lookup, invalidation, drop, or reset in flight) they satisfy:
//
//	Hits + Misses + SharedWaits == number of closure lookups
//	Computes == Misses                 (every miss leads one singleflight)
//	Stores <= Computes                 (errors and fenced results not cached)
//	Stores == Evictions + Invalidations + Drops + cached entries
//
// The last line is the removal-accounting invariant: every closure that
// ever entered the cache is either still cached or left through exactly one
// counted exit (LRU eviction, explicit invalidation, or run drop). Reset
// zeroes all counters together with the cache, so the invariants hold
// trivially afterwards.
type CacheCounters struct {
	// Hits and Misses count lookups served from / absent from the shards.
	Hits, Misses int64
	// SharedWaits counts lookups that piggy-backed on another goroutine's
	// in-flight computation instead of recomputing (the singleflight win).
	SharedWaits int64
	// Computes counts closure computations actually executed.
	Computes int64
	// Stores counts closures inserted into the cache (a compute whose
	// result passed the generation fence).
	Stores int64
	// Evictions counts LRU evictions across all shards.
	Evictions int64
	// Invalidations counts explicit single-key invalidations that removed
	// a cached entry; invalidating an absent key does not count.
	Invalidations int64
	// Drops counts entries removed because their run was dropped.
	Drops int64
}

// SnapshotStats describes a warehouse's snapshot provenance: the on-disk
// format version it was opened from (0 for warehouses built live), whether
// the snapshot is memory-mapped and how many bytes the mapping covers, and
// the lazy-materialization progress of a v3 open (RunsMaterialized counts
// runs whose tables are resident; queries materialize runs on demand).
type SnapshotStats struct {
	Version          int
	Mapped           bool
	MappedBytes      int
	RunsTotal        int
	RunsMaterialized int
}

// Stats computes the current warehouse statistics.
func (w *Warehouse) Stats() Stats {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var st Stats
	st.Specs = len(w.specs)
	for _, vs := range w.views {
		st.Views += len(vs)
	}
	st.Runs = len(w.runs)
	st.Snapshot.RunsTotal = len(w.runs)
	if w.snap != nil {
		st.Snapshot.Version = w.snap.version
		st.Snapshot.Mapped = w.snap.mapped
		if w.snap.mapped {
			st.Snapshot.MappedBytes = w.snap.bytes
		}
	}
	for _, rt := range w.runs {
		if lz := rt.lazy; lz != nil && !lz.done.Load() {
			// Unmaterialized (or failed) v3 run: report the directory counts
			// without forcing the tables resident. The done.Load gate also
			// orders this loop against a concurrent materialization.
			st.Steps += lz.rec.steps
			st.FlowEdges += lz.rec.edges
			st.DataObjects += lz.rec.data
			continue
		}
		st.Snapshot.RunsMaterialized++
		st.Steps += rt.run.NumSteps()
		st.FlowEdges += rt.run.NumEdges()
		st.DataObjects += rt.run.NumData()
	}
	if w.snap == nil {
		st.Snapshot.RunsMaterialized = len(w.runs)
	}
	st.Cache = w.cache.counters()
	st.CacheHits, st.CacheMisses = st.Cache.Hits, st.Cache.Misses
	st.Index = w.indexStatsLocked()
	st.Labels = w.labelStatsLocked()
	if reg := w.metricsReg.Load(); reg != nil {
		snap := reg.Snapshot()
		st.Metrics = &snap
	}
	return st
}

// String renders the statistics on one line.
func (s Stats) String() string {
	out := fmt.Sprintf("specs=%d views=%d runs=%d steps=%d flows=%d data=%d cache=%d/%d index[runs=%d steps=%d data=%d csr=%dB closure=%dw]",
		s.Specs, s.Views, s.Runs, s.Steps, s.FlowEdges, s.DataObjects, s.CacheHits, s.CacheMisses,
		s.Index.IndexedRuns, s.Index.InternedSteps, s.Index.InternedData, s.Index.CSRBytes, s.Index.ClosureWords)
	if s.Labels.Enabled || s.Labels.LabeledRuns > 0 || s.Labels.Fallbacks > 0 {
		out += fmt.Sprintf(" labels[runs=%d chains=%d bytes=%d builds=%d hits=%d fallbacks=%d]",
			s.Labels.LabeledRuns, s.Labels.Chains, s.Labels.LabelBytes,
			s.Labels.Builds, s.Labels.Hits, s.Labels.Fallbacks)
	}
	return out
}

// DropRun removes a run and its cached closures. Dropping an unknown run
// is an error, so callers notice typos.
func (w *Warehouse) DropRun(id string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.runs[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownRun, id)
	}
	delete(w.runs, id)
	w.cache.dropRun(id)
	return nil
}

// IngestLogStream reads a JSON-lines workflow log from r and loads it as a
// run — the "during execution" ingestion path of the paper's architecture,
// where the extractor tails the workflow system's log. The whole stream is
// validated before anything becomes visible to queries, so a malformed
// tail cannot leave a half-loaded run behind. It is an alias of
// LoadLogReader, which streams events straight into run construction.
func (w *Warehouse) IngestLogStream(runID, specName string, r io.Reader) (int, error) {
	return w.LoadLogReader(runID, specName, r)
}
