package warehouse

import (
	"reflect"
	"testing"
)

// fuzzNode maps a byte into a 12-node universe, mirroring the edgeList
// encoding of the graph package's quick tests.
func fuzzNode(b byte) string { return string(rune('a' + int(b)%12)) }

// FuzzConnectBy feeds ConnectBy random parent functions (encoded as byte
// pairs over a small node universe, plus two start nodes) and checks the
// recursive operator's contract: the closure is deterministic,
// duplicate-free, complete under the parent function, and returned in
// exact BFS order with the start keys as a stable prefix.
func FuzzConnectBy(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23, 0x30}, byte(0), byte(1))
	f.Add([]byte{}, byte(3), byte(3))
	f.Add([]byte{0x00, 0x00, 0x01, 0x10}, byte(0), byte(2)) // self-loop + 2-cycle
	f.Add([]byte{0x0b, 0xb0, 0x55}, byte(11), byte(5))
	f.Fuzz(func(t *testing.T, edges []byte, s1, s2 byte) {
		parents := make(map[string][]string)
		for i := 0; i+1 < len(edges); i += 2 {
			from, to := fuzzNode(edges[i]), fuzzNode(edges[i+1])
			parents[from] = append(parents[from], to)
		}
		pf := func(k string) []string { return parents[k] }
		start := []string{fuzzNode(s1), fuzzNode(s2)}

		got := ConnectBy(start, pf)

		// Deterministic: a second run returns the identical order.
		if again := ConnectBy(start, pf); !reflect.DeepEqual(got, again) {
			t.Fatalf("non-deterministic: %v then %v", got, again)
		}
		// Duplicate-free.
		seen := make(map[string]bool, len(got))
		for _, k := range got {
			if seen[k] {
				t.Fatalf("duplicate %q in %v", k, got)
			}
			seen[k] = true
		}
		// Complete and sound: closed under parents, and every key reachable.
		for _, k := range got {
			for _, p := range parents[k] {
				if !seen[p] {
					t.Fatalf("closure not closed: %s -> %s missing from %v", k, p, got)
				}
			}
		}
		// Exact BFS order, start keys (deduplicated) first: replay a
		// reference queue and demand identical output.
		var ref []string
		refSeen := make(map[string]bool)
		for _, s := range start {
			if !refSeen[s] {
				refSeen[s] = true
				ref = append(ref, s)
			}
		}
		for i := 0; i < len(ref); i++ {
			for _, p := range pf(ref[i]) {
				if !refSeen[p] {
					refSeen[p] = true
					ref = append(ref, p)
				}
			}
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("not BFS order: got %v, want %v", got, ref)
		}
		// BFS-prefix stability: truncating the frontier exploration to any
		// prefix of the start set yields a prefix-consistent order — the
		// first start key is always first.
		if len(got) == 0 || got[0] != start[0] {
			t.Fatalf("start key not first: %v", got)
		}
	})
}
