package warehouse

import (
	"fmt"

	"repro/internal/core"
)

// Subset returns a new warehouse holding only the runs keep selects,
// together with every specification and named view of the parent (they
// are tiny, and each shard of a cluster needs the full catalog of specs
// and views to answer view queries over its runs). It is the resharding
// primitive behind `zoom snapshot shard`: split a warehouse by the
// consistent-hash ring, save each subset, and each file is a complete,
// self-contained shard snapshot.
//
// The subset shares the parent's immutable per-run storage (runs, compact
// indexes, reachability labels) instead of rebuilding it, so splitting is
// proportional to catalog size, not graph size. For a parent opened from
// a v3 (mmap) snapshot that storage aliases the mapping: use or save the
// subset before closing the parent. Lazily-opened runs that keep selects
// are materialized here; runs it rejects are never touched, so splitting
// a v3 snapshot N ways still only materializes each run once overall.
func (w *Warehouse) Subset(keep func(runID string) bool) (*Warehouse, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		return nil, ErrClosed
	}
	nw := New(0)
	nw.noIndex = w.noIndex
	nw.labelIndex = w.labelIndex
	for name, s := range w.specs {
		nw.specs[name] = s
		views := make(map[string]*core.UserView, len(w.views[name]))
		for vn, v := range w.views[name] {
			views[vn] = v
		}
		nw.views[name] = views
	}
	for id, rt := range w.runs {
		if !keep(id) {
			continue
		}
		if err := w.resolveLocked(rt); err != nil {
			return nil, fmt.Errorf("warehouse: subset run %q: %w", id, err)
		}
		nw.runs[id] = &runTables{
			specName: rt.specName,
			run:      rt.run,
			index:    rt.index,
			labels:   rt.labels,
		}
	}
	return nw, nil
}
