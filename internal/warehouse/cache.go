package warehouse

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// closureCache is the equivalent of the paper's temporary table: "when a
// query is executed on a given workflow run, the UAdmin provenance
// information is stored in a temporary table, and does not need to be
// recomputed when switching the user view on the same workflow run".
//
// The cache is built for concurrent serving:
//
//   - Entries live in lock-striped LRU shards keyed by a hash of
//     (run id, data id), so goroutines querying different keys rarely
//     contend on the same mutex. Small capacities collapse to a single
//     shard, preserving exact global LRU order for tiny caches.
//   - Misses go through a per-key singleflight: the first goroutine to
//     miss becomes the leader and computes the closure once; concurrent
//     misses on the same key wait for the leader's result instead of
//     duplicating the ConnectBy traversal (no thundering herd).
//   - Every run has a generation number. Invalidate, dropRun and reset
//     bump it, and a leader only stores its result if the generation is
//     unchanged since it started computing — a closure computed from
//     dropped or invalidated state is delivered to its waiters but never
//     cached.
//
// Counters are atomic and globally aggregated across shards; the invariant
// hits + misses + sharedWaits == number of getOrCompute calls holds at any
// quiescent point, and computes == misses (every miss leads a flight).
type closureCache struct {
	shards []*cacheShard

	hits          atomic.Int64
	misses        atomic.Int64
	sharedWaits   atomic.Int64
	computes      atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64

	genMu sync.Mutex
	gens  map[string]uint64 // run id -> generation
}

type cacheKey struct {
	run, data string
}

type cacheEntry struct {
	key cacheKey
	c   *Closure
}

// cacheShard is one lock stripe: an LRU list plus the in-flight table for
// the singleflight protocol.
type cacheShard struct {
	mu       sync.Mutex
	cap      int
	items    map[cacheKey]*list.Element
	order    *list.List // front = most recently used
	inflight map[cacheKey]*flight
}

// flight is one in-progress closure computation. done is closed by the
// leader after c/err are set; waiters must not read them before that.
type flight struct {
	done chan struct{}
	c    *Closure
	err  error
}

// shardsFor picks the stripe count: one shard per 64 cached closures,
// capped at 16. Tiny caches (like the eviction tests' capacity-2 cache)
// stay single-sharded so global LRU order is exact.
func shardsFor(capacity int) int {
	n := capacity / 64
	if n < 1 {
		return 1
	}
	if n > 16 {
		return 16
	}
	return n
}

func newClosureCache(capacity int) *closureCache {
	n := shardsFor(capacity)
	perShard := (capacity + n - 1) / n
	cc := &closureCache{
		shards: make([]*cacheShard, n),
		gens:   make(map[string]uint64),
	}
	for i := range cc.shards {
		cc.shards[i] = &cacheShard{
			cap:      perShard,
			items:    make(map[cacheKey]*list.Element),
			order:    list.New(),
			inflight: make(map[cacheKey]*flight),
		}
	}
	return cc
}

// shard hashes a key to its stripe (FNV-1a over run, a separator, data).
func (cc *closureCache) shard(key cacheKey) *cacheShard {
	if len(cc.shards) == 1 {
		return cc.shards[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key.run); i++ {
		h = (h ^ uint64(key.run[i])) * prime64
	}
	h = (h ^ 0xff) * prime64
	for i := 0; i < len(key.data); i++ {
		h = (h ^ uint64(key.data[i])) * prime64
	}
	return cc.shards[h%uint64(len(cc.shards))]
}

// generation returns the current generation of a run, registering the run
// in the generation table so later bumps (reset, drop, invalidate) are
// visible to an in-flight leader that read the generation first.
func (cc *closureCache) generation(runID string) uint64 {
	cc.genMu.Lock()
	defer cc.genMu.Unlock()
	g, ok := cc.gens[runID]
	if !ok {
		cc.gens[runID] = 0
	}
	return g
}

// bumpRun advances a run's generation so in-flight computations started
// before the bump cannot populate the cache.
func (cc *closureCache) bumpRun(runID string) {
	cc.genMu.Lock()
	cc.gens[runID]++
	cc.genMu.Unlock()
}

// bumpAll advances every registered run's generation (reset).
func (cc *closureCache) bumpAll() {
	cc.genMu.Lock()
	for id := range cc.gens {
		cc.gens[id]++
	}
	cc.genMu.Unlock()
}

// insertLocked adds or refreshes an entry and evicts from the back while
// over capacity. Callers hold sh.mu.
func (sh *cacheShard) insertLocked(key cacheKey, c *Closure, cc *closureCache) {
	if el, ok := sh.items[key]; ok {
		el.Value.(*cacheEntry).c = c
		sh.order.MoveToFront(el)
		return
	}
	sh.items[key] = sh.order.PushFront(&cacheEntry{key: key, c: c})
	for len(sh.items) > sh.cap {
		back := sh.order.Back()
		sh.order.Remove(back)
		delete(sh.items, back.Value.(*cacheEntry).key)
		cc.evictions.Add(1)
	}
}

// getOrCompute returns the cached closure for (runID, d), or computes it
// exactly once per generation under concurrent misses: the first miss
// leads the flight and runs compute without holding any shard lock; every
// concurrent miss on the same key blocks on the flight and shares the
// result. Errors are delivered to all waiters and never cached.
func (cc *closureCache) getOrCompute(runID, d string, compute func() (*Closure, error)) (*Closure, error) {
	key := cacheKey{runID, d}
	sh := cc.shard(key)
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		sh.order.MoveToFront(el)
		c := el.Value.(*cacheEntry).c
		sh.mu.Unlock()
		cc.hits.Add(1)
		return c.clone(), nil
	}
	if fl, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		cc.sharedWaits.Add(1)
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		return fl.c.clone(), nil
	}
	fl := &flight{done: make(chan struct{})}
	sh.inflight[key] = fl
	sh.mu.Unlock()

	cc.misses.Add(1)
	gen := cc.generation(runID)
	cc.computes.Add(1)
	c, err := compute()

	sh.mu.Lock()
	delete(sh.inflight, key)
	if err == nil && cc.generation(runID) == gen {
		sh.insertLocked(key, c, cc)
	}
	sh.mu.Unlock()
	fl.c, fl.err = c, err
	close(fl.done)
	if err != nil {
		return nil, err
	}
	return c.clone(), nil
}

func (cc *closureCache) stats() (hits, misses int64) {
	return cc.hits.Load(), cc.misses.Load()
}

// counters snapshots every cache counter.
func (cc *closureCache) counters() CacheCounters {
	return CacheCounters{
		Hits:          cc.hits.Load(),
		Misses:        cc.misses.Load(),
		SharedWaits:   cc.sharedWaits.Load(),
		Computes:      cc.computes.Load(),
		Evictions:     cc.evictions.Load(),
		Invalidations: cc.invalidations.Load(),
	}
}

// len returns the number of cached entries across all shards.
func (cc *closureCache) len() int {
	n := 0
	for _, sh := range cc.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// invalidate evicts one key and bumps the run's generation so an in-flight
// computation of any key of that run cannot re-populate the cache with a
// result from before the invalidation.
func (cc *closureCache) invalidate(runID, d string) {
	cc.bumpRun(runID)
	key := cacheKey{runID, d}
	sh := cc.shard(key)
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		sh.order.Remove(el)
		delete(sh.items, key)
	}
	sh.mu.Unlock()
	cc.invalidations.Add(1)
}

// dropRun evicts every cached closure belonging to one run.
func (cc *closureCache) dropRun(runID string) {
	cc.bumpRun(runID)
	for _, sh := range cc.shards {
		sh.mu.Lock()
		for key, el := range sh.items {
			if key.run == runID {
				sh.order.Remove(el)
				delete(sh.items, key)
			}
		}
		sh.mu.Unlock()
	}
}

func (cc *closureCache) reset() {
	cc.bumpAll()
	for _, sh := range cc.shards {
		sh.mu.Lock()
		sh.items = make(map[cacheKey]*list.Element)
		sh.order.Init()
		sh.mu.Unlock()
	}
	cc.hits.Store(0)
	cc.misses.Store(0)
	cc.sharedWaits.Store(0)
	cc.computes.Store(0)
	cc.evictions.Store(0)
	cc.invalidations.Store(0)
}
