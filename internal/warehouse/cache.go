package warehouse

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// closureCache is the equivalent of the paper's temporary table: "when a
// query is executed on a given workflow run, the UAdmin provenance
// information is stored in a temporary table, and does not need to be
// recomputed when switching the user view on the same workflow run". It is
// a plain LRU keyed by (run id, data id) with hit/miss counters so the
// view-switch experiment can verify the warm path is taken.
type closureCache struct {
	mu    sync.Mutex
	cap   int
	items map[cacheKey]*list.Element
	order *list.List // front = most recently used

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheKey struct {
	run, data string
}

type cacheEntry struct {
	key cacheKey
	c   *Closure
}

func newClosureCache(capacity int) *closureCache {
	return &closureCache{
		cap:   capacity,
		items: make(map[cacheKey]*list.Element),
		order: list.New(),
	}
}

func (cc *closureCache) get(runID, d string) (*Closure, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	el, ok := cc.items[cacheKey{runID, d}]
	if !ok {
		cc.misses.Add(1)
		return nil, false
	}
	cc.order.MoveToFront(el)
	cc.hits.Add(1)
	return el.Value.(*cacheEntry).c.clone(), true
}

func (cc *closureCache) put(runID, d string, c *Closure) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	key := cacheKey{runID, d}
	if el, ok := cc.items[key]; ok {
		el.Value.(*cacheEntry).c = c
		cc.order.MoveToFront(el)
		return
	}
	cc.items[key] = cc.order.PushFront(&cacheEntry{key: key, c: c})
	for len(cc.items) > cc.cap {
		back := cc.order.Back()
		cc.order.Remove(back)
		delete(cc.items, back.Value.(*cacheEntry).key)
	}
}

func (cc *closureCache) stats() (hits, misses int64) {
	return cc.hits.Load(), cc.misses.Load()
}

// dropRun evicts every cached closure belonging to one run.
func (cc *closureCache) dropRun(runID string) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	for key, el := range cc.items {
		if key.run == runID {
			cc.order.Remove(el)
			delete(cc.items, key)
		}
	}
}

func (cc *closureCache) reset() {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.items = make(map[cacheKey]*list.Element)
	cc.order.Init()
	cc.hits.Store(0)
	cc.misses.Store(0)
}
