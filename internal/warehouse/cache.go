package warehouse

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// closureCache is the equivalent of the paper's temporary table: "when a
// query is executed on a given workflow run, the UAdmin provenance
// information is stored in a temporary table, and does not need to be
// recomputed when switching the user view on the same workflow run".
//
// The cache is built for concurrent serving:
//
//   - Entries live in lock-striped LRU shards keyed by a hash of
//     (run id, data id), so goroutines querying different keys rarely
//     contend on the same mutex. Small capacities collapse to a single
//     shard, preserving exact global LRU order for tiny caches.
//   - Misses go through a per-key singleflight: the first goroutine to
//     miss becomes the leader and computes the closure once; concurrent
//     misses on the same key wait for the leader's result instead of
//     duplicating the ConnectBy traversal (no thundering herd).
//   - Every queried run has a generation drawn from a cache-global
//     monotonic sequence. Invalidate and reset advance it, dropRun and
//     reset unregister it, and a leader only stores its result if the run
//     is still registered at the generation it read before computing — a
//     closure computed from dropped or invalidated state is delivered to
//     its waiters but never cached. Because the sequence never repeats a
//     value, a run dropped and re-registered can never alias a stale
//     leader's generation, which is what lets dropRun *delete* the
//     generation entry instead of keeping a tombstone forever: the table
//     is bounded by the set of live, queried runs.
//
// Counters are atomic and globally aggregated across shards; see
// CacheCounters for the invariants they maintain.
type closureCache struct {
	shards []*cacheShard

	hits          atomic.Int64
	misses        atomic.Int64
	sharedWaits   atomic.Int64
	computes      atomic.Int64
	stores        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	drops         atomic.Int64

	genMu  sync.Mutex
	gens   map[string]uint64 // run id -> generation (live, queried runs only)
	genSeq uint64            // last issued generation; strictly increases

	// obs mirrors the lifecycle counters into an attached metrics registry
	// (nil when detached — the common case — so the hot path pays one
	// atomic pointer load).
	obs atomic.Pointer[cacheMetrics]
}

// cacheMetrics are the cache's instruments in an attached registry,
// resolved once at attach time so recording never touches the registry map.
type cacheMetrics struct {
	hits, misses, sharedWaits       *obs.Counter
	computes, stores                *obs.Counter
	evictions, invalidations, drops *obs.Counter
	computeNs                       *obs.Histogram
}

// attachMetrics wires the cache to a registry (nil detaches).
func (cc *closureCache) attachMetrics(reg *obs.Registry) {
	if reg == nil {
		cc.obs.Store(nil)
		return
	}
	cc.obs.Store(&cacheMetrics{
		hits:          reg.Counter("cache.hits"),
		misses:        reg.Counter("cache.misses"),
		sharedWaits:   reg.Counter("cache.shared_waits"),
		computes:      reg.Counter("cache.computes"),
		stores:        reg.Counter("cache.stores"),
		evictions:     reg.Counter("cache.evictions"),
		invalidations: reg.Counter("cache.invalidations"),
		drops:         reg.Counter("cache.drops"),
		computeNs:     reg.Histogram("cache.compute_ns"),
	})
}

type cacheKey struct {
	run, data string
}

type cacheEntry struct {
	key cacheKey
	c   *Closure
}

// cacheShard is one lock stripe: an LRU list plus the in-flight table for
// the singleflight protocol.
type cacheShard struct {
	mu       sync.Mutex
	cap      int
	items    map[cacheKey]*list.Element
	order    *list.List // front = most recently used
	inflight map[cacheKey]*flight
}

// flight is one in-progress closure computation. done is closed by the
// leader after c/err are set; waiters must not read them before that.
type flight struct {
	done chan struct{}
	c    *Closure
	err  error
}

// Outcome classifies one closure-cache lookup — the dimension the query
// latency histograms are split by.
type Outcome uint8

const (
	// OutcomeHit: the closure was served from the cache.
	OutcomeHit Outcome = iota
	// OutcomeMiss: this lookup led the singleflight and computed the
	// closure.
	OutcomeMiss
	// OutcomeSharedWait: this lookup piggy-backed on another goroutine's
	// in-flight computation.
	OutcomeSharedWait
)

// String returns the label used in metrics names and trace output.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeMiss:
		return "miss"
	case OutcomeSharedWait:
		return "shared-wait"
	}
	return "unknown"
}

// Observation is what one cache lookup reports back to the caller for
// instrumentation: how the lookup was served and, for a miss, how long the
// closure compute took. ComputeNs is zero unless timing was requested (or
// a registry is attached) and the outcome is OutcomeMiss. Strategy names
// the computation a miss actually ran ("labels", "bfs", "legacy"); it is
// empty for hits and shared waits, which run no computation of their own.
type Observation struct {
	Outcome   Outcome
	ComputeNs int64
	Strategy  string
}

// shardsFor picks the stripe count: one shard per 64 cached closures,
// capped at 16. Tiny caches (like the eviction tests' capacity-2 cache)
// stay single-sharded so global LRU order is exact.
func shardsFor(capacity int) int {
	n := capacity / 64
	if n < 1 {
		return 1
	}
	if n > 16 {
		return 16
	}
	return n
}

func newClosureCache(capacity int) *closureCache {
	n := shardsFor(capacity)
	perShard := (capacity + n - 1) / n
	cc := &closureCache{
		shards: make([]*cacheShard, n),
		gens:   make(map[string]uint64),
	}
	for i := range cc.shards {
		cc.shards[i] = &cacheShard{
			cap:      perShard,
			items:    make(map[cacheKey]*list.Element),
			order:    list.New(),
			inflight: make(map[cacheKey]*flight),
		}
	}
	return cc
}

// shard hashes a key to its stripe (FNV-1a over run, a separator, data).
func (cc *closureCache) shard(key cacheKey) *cacheShard {
	if len(cc.shards) == 1 {
		return cc.shards[0]
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key.run); i++ {
		h = (h ^ uint64(key.run[i])) * prime64
	}
	h = (h ^ 0xff) * prime64
	for i := 0; i < len(key.data); i++ {
		h = (h ^ uint64(key.data[i])) * prime64
	}
	return cc.shards[h%uint64(len(cc.shards))]
}

// generation returns the run's current generation, registering the run on
// first use so later bumps (invalidate) and unregistrations (dropRun,
// reset) are visible to an in-flight leader that read the generation
// first. Generations come from a cache-global monotonic sequence, so a
// value can never repeat: a run dropped and later re-registered gets a
// strictly larger generation than any a pre-drop leader could hold.
func (cc *closureCache) generation(runID string) uint64 {
	cc.genMu.Lock()
	defer cc.genMu.Unlock()
	g, ok := cc.gens[runID]
	if !ok {
		cc.genSeq++
		g = cc.genSeq
		cc.gens[runID] = g
	}
	return g
}

// generationIs is the leader's store-time fence: it reports whether the
// run is still registered at generation g. A run dropped or reset since
// the leader read g is no longer registered, and a run re-registered since
// carries a strictly larger generation, so both fail the check.
func (cc *closureCache) generationIs(runID string, g uint64) bool {
	cc.genMu.Lock()
	defer cc.genMu.Unlock()
	cur, ok := cc.gens[runID]
	return ok && cur == g
}

// forgetGeneration removes the run's generation entry if it is still
// exactly g — the error path's cleanup, keeping the table bounded when
// queries against unknown runs or data register a generation whose compute
// then fails. Removing the entry is always safe: any other in-flight
// leader holding g simply fails its store-time fence and skips caching.
func (cc *closureCache) forgetGeneration(runID string, g uint64) {
	cc.genMu.Lock()
	if cur, ok := cc.gens[runID]; ok && cur == g {
		delete(cc.gens, runID)
	}
	cc.genMu.Unlock()
}

// bumpRun advances a registered run's generation so in-flight computations
// started before the bump cannot populate the cache. An unregistered run
// needs no bump: every leader registers the run (generation) before
// starting its compute, so no fenceable computation can exist.
func (cc *closureCache) bumpRun(runID string) {
	cc.genMu.Lock()
	if _, ok := cc.gens[runID]; ok {
		cc.genSeq++
		cc.gens[runID] = cc.genSeq
	}
	cc.genMu.Unlock()
}

// dropGeneration unregisters a run. In-flight leaders fail generationIs on
// the missing entry, and — unlike the old bump-and-keep scheme — nothing
// is left behind, so run churn cannot grow the table without bound.
func (cc *closureCache) dropGeneration(runID string) {
	cc.genMu.Lock()
	delete(cc.gens, runID)
	cc.genMu.Unlock()
}

// resetGenerations unregisters every run (reset). genSeq is deliberately
// not reset: monotonicity across resets is what makes deletion safe.
func (cc *closureCache) resetGenerations() {
	cc.genMu.Lock()
	cc.gens = make(map[string]uint64)
	cc.genMu.Unlock()
}

// generationTableLen returns the number of registered runs — bounded by
// the live, queried runs (the lifecycle tests pin this).
func (cc *closureCache) generationTableLen() int {
	cc.genMu.Lock()
	defer cc.genMu.Unlock()
	return len(cc.gens)
}

// insertLocked adds or refreshes an entry and evicts from the back while
// over capacity. Callers hold sh.mu.
func (sh *cacheShard) insertLocked(key cacheKey, c *Closure, cc *closureCache, m *cacheMetrics) {
	if el, ok := sh.items[key]; ok {
		el.Value.(*cacheEntry).c = c
		sh.order.MoveToFront(el)
		return
	}
	sh.items[key] = sh.order.PushFront(&cacheEntry{key: key, c: c})
	for len(sh.items) > sh.cap {
		back := sh.order.Back()
		sh.order.Remove(back)
		delete(sh.items, back.Value.(*cacheEntry).key)
		cc.evictions.Add(1)
		if m != nil {
			m.evictions.Inc()
		}
	}
}

// getOrCompute returns the cached closure for (runID, d), or computes it
// exactly once per generation under concurrent misses: the first miss
// leads the flight and runs compute without holding any shard lock; every
// concurrent miss on the same key blocks on the flight and shares the
// result. Errors are delivered to all waiters and never cached.
//
// The Observation reports how the lookup was served; when timed is true
// (or a metrics registry is attached) a miss also reports the closure
// compute's wall time. A traced context (obs.StartSpan) additionally gets
// "closure.compute" / "closure.shared-wait" child spans; hits record no
// span of their own — the engine's enclosing "query.lookup" span IS the
// hit's cost — and an untraced context pays only the one nil span check.
func (cc *closureCache) getOrCompute(ctx context.Context, runID, d string, timed bool, compute func(ctx context.Context) (*Closure, error)) (*Closure, Observation, error) {
	key := cacheKey{runID, d}
	sh := cc.shard(key)
	m := cc.obs.Load()
	sh.mu.Lock()
	if el, ok := sh.items[key]; ok {
		sh.order.MoveToFront(el)
		c := el.Value.(*cacheEntry).c
		sh.mu.Unlock()
		cc.hits.Add(1)
		if m != nil {
			m.hits.Inc()
		}
		return c.clone(), Observation{Outcome: OutcomeHit}, nil
	}
	if fl, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		cc.sharedWaits.Add(1)
		if m != nil {
			m.sharedWaits.Inc()
		}
		wsp := obs.SpanFromContext(ctx).StartChild("closure.shared-wait")
		<-fl.done
		wsp.End()
		if fl.err != nil {
			return nil, Observation{Outcome: OutcomeSharedWait}, fl.err
		}
		return fl.c.clone(), Observation{Outcome: OutcomeSharedWait}, nil
	}
	fl := &flight{done: make(chan struct{})}
	sh.inflight[key] = fl
	sh.mu.Unlock()

	cc.misses.Add(1)
	gen := cc.generation(runID)
	cc.computes.Add(1)
	if m != nil {
		m.misses.Inc()
		m.computes.Inc()
		timed = true
	}
	var start time.Time
	if timed {
		start = time.Now()
	}
	// The compute callback gets a context carrying the "closure.compute"
	// span, so strategy-specific child spans (closure.label) nest under it;
	// on an untraced context StartSpan returns ctx unchanged and a nil span.
	cctx, csp := obs.StartSpan(ctx, "closure.compute")
	c, err := compute(cctx)
	csp.End()
	var computeNs int64
	if timed {
		computeNs = time.Since(start).Nanoseconds()
	}
	if m != nil {
		m.computeNs.Observe(computeNs)
	}

	sh.mu.Lock()
	delete(sh.inflight, key)
	if err == nil && cc.generationIs(runID, gen) {
		sh.insertLocked(key, c, cc, m)
		cc.stores.Add(1)
		if m != nil {
			m.stores.Inc()
		}
	}
	sh.mu.Unlock()
	fl.c, fl.err = c, err
	close(fl.done)
	if err != nil {
		// A failed compute must not pin a generation entry forever (a
		// stream of misspelled run ids would otherwise grow the table).
		cc.forgetGeneration(runID, gen)
		return nil, Observation{Outcome: OutcomeMiss, ComputeNs: computeNs}, err
	}
	return c.clone(), Observation{Outcome: OutcomeMiss, ComputeNs: computeNs}, nil
}

func (cc *closureCache) stats() (hits, misses int64) {
	return cc.hits.Load(), cc.misses.Load()
}

// counters snapshots every cache counter.
func (cc *closureCache) counters() CacheCounters {
	return CacheCounters{
		Hits:          cc.hits.Load(),
		Misses:        cc.misses.Load(),
		SharedWaits:   cc.sharedWaits.Load(),
		Computes:      cc.computes.Load(),
		Stores:        cc.stores.Load(),
		Evictions:     cc.evictions.Load(),
		Invalidations: cc.invalidations.Load(),
		Drops:         cc.drops.Load(),
	}
}

// len returns the number of cached entries across all shards.
func (cc *closureCache) len() int {
	n := 0
	for _, sh := range cc.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// invalidate evicts one key and bumps the run's generation so an in-flight
// computation of any key of that run cannot re-populate the cache with a
// result from before the invalidation. Invalidations counts only lookups
// that actually removed a cached entry — invalidating an absent key is a
// no-op, not a removal (the counter-drift fix the CacheCounters invariants
// rely on).
func (cc *closureCache) invalidate(runID, d string) {
	cc.bumpRun(runID)
	key := cacheKey{runID, d}
	sh := cc.shard(key)
	sh.mu.Lock()
	removed := false
	if el, ok := sh.items[key]; ok {
		sh.order.Remove(el)
		delete(sh.items, key)
		removed = true
	}
	sh.mu.Unlock()
	if removed {
		cc.invalidations.Add(1)
		if m := cc.obs.Load(); m != nil {
			m.invalidations.Inc()
		}
	}
}

// dropRun evicts every cached closure belonging to one run (counted as
// Drops) and unregisters the run's generation. The bump happens first so
// a leader finishing between the entry sweep and the generation delete is
// still fenced.
func (cc *closureCache) dropRun(runID string) {
	cc.bumpRun(runID)
	m := cc.obs.Load()
	for _, sh := range cc.shards {
		sh.mu.Lock()
		for key, el := range sh.items {
			if key.run == runID {
				sh.order.Remove(el)
				delete(sh.items, key)
				cc.drops.Add(1)
				if m != nil {
					m.drops.Inc()
				}
			}
		}
		sh.mu.Unlock()
	}
	cc.dropGeneration(runID)
}

// reset drops every cached closure, unregisters every generation, and
// zeroes the counters (so the post-reset state is indistinguishable from a
// fresh cache, and every CacheCounters invariant holds trivially).
func (cc *closureCache) reset() {
	cc.resetGenerations()
	for _, sh := range cc.shards {
		sh.mu.Lock()
		sh.items = make(map[cacheKey]*list.Element)
		sh.order.Init()
		sh.mu.Unlock()
	}
	cc.hits.Store(0)
	cc.misses.Store(0)
	cc.sharedWaits.Store(0)
	cc.computes.Store(0)
	cc.stores.Store(0)
	cc.evictions.Store(0)
	cc.invalidations.Store(0)
	cc.drops.Store(0)
}
