package warehouse

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bitset"
	"repro/internal/obs"
	"repro/internal/run"
)

// This file implements the warehouse's recursive query machinery. Oracle's
// CONNECT BY starts from a set of rows (START WITH) and repeatedly joins
// each frontier row to its parents (CONNECT BY PRIOR); ConnectBy is the
// same fixpoint over an arbitrary parent function, and Closure specializes
// it to the bipartite immediate-provenance relation
//
//	data object d  ->  the step that produced d
//	step s         ->  the data objects s read
//
// whose fixpoint is exactly the paper's deep provenance at the UAdmin
// level. Deep provenance under any coarser user view is obtained by
// *projecting* this closure (see the provenance package) — the strategy the
// paper's evaluation found fastest: "first compute UAdmin and then remove
// information hidden within composite steps of the given user view".
//
// Two closure computations coexist. The default is the compact path in
// index.go: an integer BFS over the run's interned CSR index producing
// bitset-backed closures. The string/map path below is kept as the
// reference implementation — SetCompactIndex(false) selects it — and the
// equivalence property tests hold the two element-for-element identical.

// ConnectBy computes the transitive closure of parents over start,
// returning every reached key exactly once in BFS order (start keys first).
func ConnectBy(start []string, parents func(string) []string) []string {
	seen := make(map[string]bool, len(start))
	var order []string
	for _, s := range start {
		if !seen[s] {
			seen[s] = true
			order = append(order, s)
		}
	}
	for i := 0; i < len(order); i++ {
		for _, p := range parents(order[i]) {
			if !seen[p] {
				seen[p] = true
				order = append(order, p)
			}
		}
	}
	return order
}

// Closure is the result of a deep-provenance (or deep-derivation) query at
// the UAdmin level: every step and every data object transitively involved.
//
// Internally a closure is either bitset-backed (computed by the integer BFS
// over a run index; Bits reports ok) or map-backed (the legacy traversal,
// or closures assembled by callers via NewClosure). The exported map views
// StepSet/DataSet are materialized lazily from the bitsets on first use, so
// a cached closure that is only ever intersected bit-wise by the projection
// fast path never pays for string maps at all.
type Closure struct {
	// Root is the data object the query started from.
	Root string

	// Compact representation (nil ix for map-backed closures). The bitsets
	// are frozen after construction and shared between clones.
	ix       *run.Index
	stepBits bitset.Set
	dataBits bitset.Set

	stepsOnce sync.Once
	dataOnce  sync.Once
	steps     map[string]bool
	data      map[string]bool
}

// NewClosure assembles a map-backed closure from explicit step and data
// sets. The maps are adopted, not copied.
func NewClosure(root string, steps, data map[string]bool) *Closure {
	if steps == nil {
		steps = make(map[string]bool)
	}
	if data == nil {
		data = make(map[string]bool)
	}
	return &Closure{Root: root, steps: steps, data: data}
}

// newBitClosure assembles a bitset-backed closure over a run index.
func newBitClosure(root string, ix *run.Index, stepBits, dataBits bitset.Set) *Closure {
	return &Closure{Root: root, ix: ix, stepBits: stepBits, dataBits: dataBits}
}

// Bits exposes the compact representation: the run index the interned ids
// refer to and the step/data member sets. ok is false for map-backed
// closures. The returned sets are shared and must be treated as read-only.
func (c *Closure) Bits() (ix *run.Index, steps, data bitset.Set, ok bool) {
	return c.ix, c.stepBits, c.dataBits, c.ix != nil
}

// HasStep reports whether a step id is in the closure, without
// materializing the map view.
func (c *Closure) HasStep(id string) bool {
	if c.ix != nil {
		s, ok := c.ix.StepID(id)
		return ok && c.stepBits.Has(s)
	}
	return c.steps[id]
}

// HasData reports whether a data id is in the closure, without
// materializing the map view.
func (c *Closure) HasData(id string) bool {
	if c.ix != nil {
		d, ok := c.ix.DataID(id)
		return ok && c.dataBits.Has(d)
	}
	return c.data[id]
}

// StepSet returns the step ids in the closure as a set, materializing it
// from the bitset representation on first use. The map is owned by this
// closure instance; callers may read it freely and may mutate it only if
// they own the closure (each cache lookup returns a private clone).
func (c *Closure) StepSet() map[string]bool {
	c.stepsOnce.Do(func() {
		if c.steps != nil {
			return
		}
		m := make(map[string]bool, c.stepBits.Count())
		c.stepBits.Each(func(s int32) { m[c.ix.StepName(s)] = true })
		c.steps = m
	})
	return c.steps
}

// DataSet returns the data ids in the closure as a set, materialized
// lazily like StepSet.
func (c *Closure) DataSet() map[string]bool {
	c.dataOnce.Do(func() {
		if c.data != nil {
			return
		}
		m := make(map[string]bool, c.dataBits.Count())
		c.dataBits.Each(func(d int32) { m[c.ix.DataName(d)] = true })
		c.data = m
	})
	return c.data
}

// NumSteps returns the number of steps in the closure.
func (c *Closure) NumSteps() int {
	if c.ix != nil {
		return c.stepBits.Count()
	}
	return len(c.steps)
}

// NumData returns the number of data objects in the closure.
func (c *Closure) NumData() int {
	if c.ix != nil {
		return c.dataBits.Count()
	}
	return len(c.data)
}

// Size returns |Steps| + |Data|.
func (c *Closure) Size() int { return c.NumSteps() + c.NumData() }

// clone returns a defensive copy so cached closures can be handed out.
// Bitset-backed closures share the frozen bitsets and the index — the copy
// is two slice headers — and each clone materializes its own map views on
// demand. Map-backed closures copy the maps, as before.
func (c *Closure) clone() *Closure {
	if c.ix != nil {
		return newBitClosure(c.Root, c.ix, c.stepBits, c.dataBits)
	}
	out := &Closure{Root: c.Root, steps: make(map[string]bool, len(c.steps)), data: make(map[string]bool, len(c.data))}
	for k := range c.steps {
		out.steps[k] = true
	}
	for k := range c.data {
		out.data[k] = true
	}
	return out
}

// DeepProvenance computes the UAdmin deep provenance of data object d in
// the given run: all steps and data objects transitively used to produce
// it. Results are cached per (run, data) — the paper's temporary table —
// so that switching user views re-reads the closure instead of recomputing
// it. Concurrent misses on the same (run, data) key are coalesced by the
// cache's singleflight: the closure is computed once and shared, so a
// thundering herd of identical cold queries costs one traversal.
func (w *Warehouse) DeepProvenance(runID, d string) (*Closure, error) {
	c, _, err := w.DeepProvenanceObserved(runID, d, false)
	return c, err
}

// DeepProvenanceObserved is DeepProvenance plus an Observation telling the
// caller how the lookup was served (hit, miss, shared-wait) and — when
// timed is true or a metrics registry is attached — how long a miss's
// closure compute took. The provenance engine uses it to split its query
// latency histograms by outcome and to fill per-query traces.
func (w *Warehouse) DeepProvenanceObserved(runID, d string, timed bool) (*Closure, Observation, error) {
	return w.DeepProvenanceObservedCtx(context.Background(), runID, d, timed)
}

// DeepProvenanceObservedCtx is DeepProvenanceObserved with a context. When
// the context carries a trace span (obs.StartSpan), the cache records
// "closure.compute" and "closure.shared-wait" child spans, giving a traced
// request per-stage causality down to the singleflight; an untraced
// context behaves exactly like DeepProvenanceObserved.
func (w *Warehouse) DeepProvenanceObservedCtx(ctx context.Context, runID, d string, timed bool) (*Closure, Observation, error) {
	return w.DeepProvenanceStrategyCtx(ctx, runID, d, timed, StrategyAuto)
}

// DeepProvenanceStrategyCtx is DeepProvenanceObservedCtx with an explicit
// closure strategy for a miss's computation (per-request label selection).
// The cache is shared across strategies — label-backed and BFS-backed
// closures are element-for-element identical, which the differential
// equivalence suite pins — so a hit serves whatever strategy computed the
// entry; Observation.Strategy reports the computation that actually ran
// (empty for hits and shared waits).
func (w *Warehouse) DeepProvenanceStrategyCtx(ctx context.Context, runID, d string, timed bool, strat ClosureStrategy) (*Closure, Observation, error) {
	var used string
	c, o, err := w.cache.getOrCompute(ctx, runID, d, timed, func(cctx context.Context) (*Closure, error) {
		cl, u, err := w.computeUAdminClosure(cctx, runID, d, strat)
		used = u
		return cl, err
	})
	if o.Outcome == OutcomeMiss {
		// used was written by this goroutine: a miss means this call led
		// the singleflight and ran the compute callback itself.
		o.Strategy = used
	}
	return c, o, err
}

// computeUAdminClosure is the uncached closure computation (the recursive
// CONNECT BY query). It holds the warehouse read lock for the traversal,
// never any cache shard lock, and dispatches on the run's representation
// and the requested strategy: reachability labels when the run carries a
// fresh label set and the strategy wants them, the integer BFS over the
// compact index otherwise, and the legacy string/map traversal for runs
// loaded without an index. It reports which computation ran.
func (w *Warehouse) computeUAdminClosure(ctx context.Context, runID, d string, strat ClosureStrategy) (*Closure, string, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		return nil, "", ErrClosed
	}
	rt, ok := w.runs[runID]
	if !ok {
		return nil, "", fmt.Errorf("%w: %q", ErrUnknownRun, runID)
	}
	if err := w.resolveLocked(rt); err != nil {
		return nil, "", err
	}
	r := rt.run
	if !r.HasData(d) {
		return nil, "", fmt.Errorf("%w: %q in run %q", ErrUnknownData, d, runID)
	}
	if l := w.labelsFor(rt, strat); l != nil {
		_, sp := obs.StartSpan(ctx, "closure.label")
		c := labelProvenanceClosure(l, d)
		sp.End()
		w.observeLabelHit()
		return c, strategyLabels, nil
	}
	if rt.index != nil {
		return indexedProvenanceClosure(rt.index, d), strategyBFS, nil
	}
	steps, data := make(map[string]bool), map[string]bool{d: true}
	// Bipartite keys: "d:" prefixes data, "s:" prefixes steps.
	ConnectBy([]string{"d:" + d}, func(key string) []string {
		id := key[2:]
		if key[0] == 'd' {
			if p, ok := r.Producer(id); ok && p != "" {
				steps[p] = true
				return []string{"s:" + p}
			}
			return nil
		}
		inputs := r.InputsOf(id)
		out := make([]string, 0, len(inputs))
		for _, in := range inputs {
			data[in] = true
			out = append(out, "d:"+in)
		}
		return out
	})
	return NewClosure(d, steps, data), strategyLegacy, nil
}

// DeepDerivation is the inverse canned query the prototype section
// mentions ("Return the data objects which have a given data object in
// their data provenance"): all steps and data objects transitively derived
// from d.
func (w *Warehouse) DeepDerivation(runID, d string) (*Closure, error) {
	return w.DeepDerivationStrategy(runID, d, StrategyAuto)
}

// DeepDerivationStrategy is DeepDerivation with an explicit closure
// strategy. Derivation closures are not cached (the canned query is rare),
// so the strategy dispatch happens on every call, with the same fallback
// accounting as the provenance path.
func (w *Warehouse) DeepDerivationStrategy(runID, d string, strat ClosureStrategy) (*Closure, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		return nil, ErrClosed
	}
	rt, ok := w.runs[runID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRun, runID)
	}
	if err := w.resolveLocked(rt); err != nil {
		return nil, err
	}
	r := rt.run
	if !r.HasData(d) {
		return nil, fmt.Errorf("%w: %q in run %q", ErrUnknownData, d, runID)
	}
	if l := w.labelsFor(rt, strat); l != nil {
		c := labelDerivationClosure(l, d)
		w.observeLabelHit()
		return c, nil
	}
	if rt.index != nil {
		return indexedDerivationClosure(rt.index, d), nil
	}
	steps, data := make(map[string]bool), map[string]bool{d: true}
	ConnectBy([]string{"d:" + d}, func(key string) []string {
		id := key[2:]
		if key[0] == 'd' {
			consumers := r.Consumers(id)
			out := make([]string, 0, len(consumers))
			for _, s := range consumers {
				steps[s] = true
				out = append(out, "s:"+s)
			}
			return out
		}
		outputs := r.OutputsOf(id)
		out := make([]string, 0, len(outputs))
		for _, o := range outputs {
			data[o] = true
			out = append(out, "d:"+o)
		}
		return out
	})
	return NewClosure(d, steps, data), nil
}

// ImmediateProvenance returns the producing step of d and that step's input
// data set — the paper's immediate provenance at the UAdmin level. For
// external data the step is "" and the inputs nil.
func (w *Warehouse) ImmediateProvenance(runID, d string) (string, []string, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		return "", nil, ErrClosed
	}
	rt, ok := w.runs[runID]
	if !ok {
		return "", nil, fmt.Errorf("%w: %q", ErrUnknownRun, runID)
	}
	if err := w.resolveLocked(rt); err != nil {
		return "", nil, err
	}
	r := rt.run
	p, ok := r.Producer(d)
	if !ok {
		return "", nil, fmt.Errorf("%w: %q in run %q", ErrUnknownData, d, runID)
	}
	if p == "" {
		return "", nil, nil
	}
	return p, r.InputsOf(p), nil
}
