package warehouse

import "fmt"

// This file implements the warehouse's recursive query machinery. Oracle's
// CONNECT BY starts from a set of rows (START WITH) and repeatedly joins
// each frontier row to its parents (CONNECT BY PRIOR); ConnectBy is the
// same fixpoint over an arbitrary parent function, and Closure specializes
// it to the bipartite immediate-provenance relation
//
//	data object d  ->  the step that produced d
//	step s         ->  the data objects s read
//
// whose fixpoint is exactly the paper's deep provenance at the UAdmin
// level. Deep provenance under any coarser user view is obtained by
// *projecting* this closure (see the provenance package) — the strategy the
// paper's evaluation found fastest: "first compute UAdmin and then remove
// information hidden within composite steps of the given user view".

// ConnectBy computes the transitive closure of parents over start,
// returning every reached key exactly once in BFS order (start keys first).
func ConnectBy(start []string, parents func(string) []string) []string {
	seen := make(map[string]bool, len(start))
	var order []string
	for _, s := range start {
		if !seen[s] {
			seen[s] = true
			order = append(order, s)
		}
	}
	for i := 0; i < len(order); i++ {
		for _, p := range parents(order[i]) {
			if !seen[p] {
				seen[p] = true
				order = append(order, p)
			}
		}
	}
	return order
}

// Closure is the result of a deep-provenance (or deep-derivation) query at
// the UAdmin level: every step and every data object transitively involved.
type Closure struct {
	// Root is the data object the query started from.
	Root string
	// Steps is the set of step ids in the closure.
	Steps map[string]bool
	// Data is the set of data ids in the closure, including Root.
	Data map[string]bool
}

// clone returns a defensive copy so cached closures can be handed out.
func (c *Closure) clone() *Closure {
	out := &Closure{Root: c.Root, Steps: make(map[string]bool, len(c.Steps)), Data: make(map[string]bool, len(c.Data))}
	for k := range c.Steps {
		out.Steps[k] = true
	}
	for k := range c.Data {
		out.Data[k] = true
	}
	return out
}

// Size returns |Steps| + |Data|.
func (c *Closure) Size() int { return len(c.Steps) + len(c.Data) }

// DeepProvenance computes the UAdmin deep provenance of data object d in
// the given run: all steps and data objects transitively used to produce
// it. Results are cached per (run, data) — the paper's temporary table —
// so that switching user views re-reads the closure instead of recomputing
// it. Concurrent misses on the same (run, data) key are coalesced by the
// cache's singleflight: the closure is computed once and shared, so a
// thundering herd of identical cold queries costs one ConnectBy traversal.
func (w *Warehouse) DeepProvenance(runID, d string) (*Closure, error) {
	return w.cache.getOrCompute(runID, d, func() (*Closure, error) {
		return w.computeUAdminClosure(runID, d)
	})
}

// computeUAdminClosure is the uncached closure computation (the recursive
// CONNECT BY query). It holds the warehouse read lock for the traversal,
// never any cache shard lock.
func (w *Warehouse) computeUAdminClosure(runID, d string) (*Closure, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	rt, ok := w.runs[runID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRun, runID)
	}
	r := rt.run
	if !r.HasData(d) {
		return nil, fmt.Errorf("%w: %q in run %q", ErrUnknownData, d, runID)
	}
	c := &Closure{Root: d, Steps: make(map[string]bool), Data: map[string]bool{d: true}}
	// Bipartite keys: "d:" prefixes data, "s:" prefixes steps.
	ConnectBy([]string{"d:" + d}, func(key string) []string {
		id := key[2:]
		if key[0] == 'd' {
			if p, ok := r.Producer(id); ok && p != "" {
				c.Steps[p] = true
				return []string{"s:" + p}
			}
			return nil
		}
		inputs := r.InputsOf(id)
		out := make([]string, 0, len(inputs))
		for _, in := range inputs {
			c.Data[in] = true
			out = append(out, "d:"+in)
		}
		return out
	})
	return c, nil
}

// DeepDerivation is the inverse canned query the prototype section
// mentions ("Return the data objects which have a given data object in
// their data provenance"): all steps and data objects transitively derived
// from d.
func (w *Warehouse) DeepDerivation(runID, d string) (*Closure, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	rt, ok := w.runs[runID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRun, runID)
	}
	r := rt.run
	if !r.HasData(d) {
		return nil, fmt.Errorf("%w: %q in run %q", ErrUnknownData, d, runID)
	}
	c := &Closure{Root: d, Steps: make(map[string]bool), Data: map[string]bool{d: true}}
	ConnectBy([]string{"d:" + d}, func(key string) []string {
		id := key[2:]
		if key[0] == 'd' {
			consumers := r.Consumers(id)
			out := make([]string, 0, len(consumers))
			for _, s := range consumers {
				c.Steps[s] = true
				out = append(out, "s:"+s)
			}
			return out
		}
		outputs := r.OutputsOf(id)
		out := make([]string, 0, len(outputs))
		for _, o := range outputs {
			c.Data[o] = true
			out = append(out, "d:"+o)
		}
		return out
	})
	return c, nil
}

// ImmediateProvenance returns the producing step of d and that step's input
// data set — the paper's immediate provenance at the UAdmin level. For
// external data the step is "" and the inputs nil.
func (w *Warehouse) ImmediateProvenance(runID, d string) (string, []string, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	rt, ok := w.runs[runID]
	if !ok {
		return "", nil, fmt.Errorf("%w: %q", ErrUnknownRun, runID)
	}
	r := rt.run
	p, ok := r.Producer(d)
	if !ok {
		return "", nil, fmt.Errorf("%w: %q in run %q", ErrUnknownData, d, runID)
	}
	if p == "" {
		return "", nil, nil
	}
	return p, r.InputsOf(p), nil
}
