package warehouse

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/run"
	"repro/internal/spec"
)

// waitForSharedWaits blocks until the cache reports n piggy-backed waiters
// (or fails the test after a generous deadline). It is how the singleflight
// tests prove that the concurrent misses really were concurrent.
func waitForSharedWaits(t *testing.T, cc *closureCache, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for cc.sharedWaits.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters arrived", cc.sharedWaits.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConcurrentSingleflightComputesOnce is the acceptance test for the
// thundering-herd path: 32 goroutines miss the same cold key at the same
// time (the leader's computation is gated until all 31 others are blocked
// on the flight), and the closure is computed exactly once.
func TestConcurrentSingleflightComputesOnce(t *testing.T) {
	cc := newClosureCache(1024)
	release := make(chan struct{})
	compute := func(context.Context) (*Closure, error) {
		<-release
		return NewClosure("d1", map[string]bool{"S1": true}, map[string]bool{"d1": true}), nil
	}

	const goroutines = 32
	results := make([]*Closure, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = cc.getOrCompute(context.Background(), "r1", "d1", false, compute)
		}(i)
	}
	waitForSharedWaits(t, cc, goroutines-1)
	close(release)
	wg.Wait()

	c := cc.counters()
	if c.Computes != 1 {
		t.Fatalf("cold key computed %d times under %d concurrent misses, want exactly 1", c.Computes, goroutines)
	}
	if c.Misses != 1 || c.SharedWaits != goroutines-1 || c.Hits != 0 {
		t.Fatalf("counters = %+v, want misses=1 sharedWaits=%d hits=0", c, goroutines-1)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if !results[i].HasStep("S1") || !results[i].HasData("d1") {
			t.Fatalf("goroutine %d got wrong closure %+v", i, results[i])
		}
		// Every caller gets a defensive copy, never a shared map.
		for j := i + 1; j < goroutines; j++ {
			if results[i] == results[j] {
				t.Fatal("two goroutines share one closure pointer")
			}
		}
	}
	// The key is now cached: one more lookup is a hit without a compute.
	if _, o, err := cc.getOrCompute(context.Background(), "r1", "d1", false, compute); err != nil || o.Outcome != OutcomeHit {
		t.Fatalf("warm lookup: outcome=%v err=%v, want hit", o.Outcome, err)
	}
	c = cc.counters()
	if c.Hits != 1 || c.Computes != 1 {
		t.Fatalf("warm lookup: %+v, want hits=1 computes=1", c)
	}
}

// TestConcurrentSingleflightErrorShared pins the failure path: a failing
// computation runs once, every concurrent waiter receives the same error,
// and the error is not cached (the next miss recomputes).
func TestConcurrentSingleflightErrorShared(t *testing.T) {
	cc := newClosureCache(1024)
	release := make(chan struct{})
	boom := errors.New("boom")
	failing := func(context.Context) (*Closure, error) {
		<-release
		return nil, boom
	}

	const goroutines = 16
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = cc.getOrCompute(context.Background(), "r1", "d1", false, failing)
		}(i)
	}
	waitForSharedWaits(t, cc, goroutines-1)
	close(release)
	wg.Wait()

	if c := cc.counters(); c.Computes != 1 {
		t.Fatalf("failing compute ran %d times, want 1", c.Computes)
	}
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("goroutine %d: err = %v, want boom", i, err)
		}
	}
	// Errors must not poison the cache: the next miss computes again.
	ok := func(context.Context) (*Closure, error) {
		return NewClosure("d1", nil, map[string]bool{"d1": true}), nil
	}
	if _, _, err := cc.getOrCompute(context.Background(), "r1", "d1", false, ok); err != nil {
		t.Fatal(err)
	}
	if c := cc.counters(); c.Computes != 2 {
		t.Fatalf("error was cached: computes = %d, want 2", c.Computes)
	}
}

// TestConcurrentWarehouseHerd hammers one warehouse key through the public
// API from 32 goroutines and checks the counter invariants and the answer.
func TestConcurrentWarehouseHerd(t *testing.T) {
	w := loadedWarehouse(t)
	const goroutines = 32
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := w.DeepProvenance("fig2", "d447")
			if err != nil {
				t.Errorf("herd query: %v", err)
				return
			}
			if c.NumSteps() != 10 {
				t.Errorf("herd query returned %d steps, want 10", c.NumSteps())
			}
		}()
	}
	wg.Wait()
	c := w.CacheCounters()
	if c.Hits+c.Misses+c.SharedWaits != goroutines {
		t.Fatalf("counter leak: hits(%d)+misses(%d)+shared(%d) != %d lookups",
			c.Hits, c.Misses, c.SharedWaits, goroutines)
	}
	if c.Computes != c.Misses {
		t.Fatalf("computes (%d) != misses (%d)", c.Computes, c.Misses)
	}
	if c.Computes < 1 {
		t.Fatal("closure never computed")
	}
}

// checkQuiescentInvariants asserts every CacheCounters invariant documented
// on the type, at a quiescent point (no lookup or removal in flight):
// lookups fully partition into hits/misses/shared-waits, every miss led one
// compute, and every stored closure is either still cached or left through
// exactly one counted exit.
func checkQuiescentInvariants(t *testing.T, c CacheCounters, lookups int64, cached int) {
	t.Helper()
	if c.Hits+c.Misses+c.SharedWaits != lookups {
		t.Fatalf("counter leak: hits(%d)+misses(%d)+shared(%d) != %d lookups",
			c.Hits, c.Misses, c.SharedWaits, lookups)
	}
	if c.Computes != c.Misses {
		t.Fatalf("computes (%d) != misses (%d)", c.Computes, c.Misses)
	}
	if c.Stores > c.Computes {
		t.Fatalf("stores (%d) > computes (%d)", c.Stores, c.Computes)
	}
	if got := c.Evictions + c.Invalidations + c.Drops + int64(cached); c.Stores != got {
		t.Fatalf("removal accounting broken: stores(%d) != evictions(%d)+invalidations(%d)+drops(%d)+cached(%d)",
			c.Stores, c.Evictions, c.Invalidations, c.Drops, cached)
	}
}

// TestStressShardedCacheCounters mixes hits, misses, evictions and
// Invalidate from 32 goroutines against a deliberately tiny cache and
// asserts the global counters stay consistent, the cache stays within
// capacity, and the answers stay correct — run this under -race.
func TestStressShardedCacheCounters(t *testing.T) {
	const capacity = 8
	w := New(capacity)
	mustT(t, w.RegisterSpec(spec.Phylogenomics()))
	mustT(t, w.LoadRun(run.Figure2()))
	r, _ := w.Run("fig2")
	data := r.AllData()

	const (
		goroutines = 32
		opsPerG    = 300
	)
	queriesPerG := 0
	invalidatesPerG := 0
	for op := 0; op < opsPerG; op++ {
		if op%17 == 16 {
			invalidatesPerG++
		} else {
			queriesPerG++
		}
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for op := 0; op < opsPerG; op++ {
				d := data[rng.Intn(len(data))]
				if op%17 == 16 {
					w.Invalidate("fig2", d)
					continue
				}
				c, err := w.DeepProvenance("fig2", d)
				if err != nil {
					t.Errorf("stress query %s: %v", d, err)
					return
				}
				if !c.HasData(d) || c.Root != d {
					t.Errorf("closure of %s lost its root", d)
					return
				}
			}
		}(int64(g) + 1)
	}
	wg.Wait()

	c := w.CacheCounters()
	totalQueries := int64(goroutines * queriesPerG)
	checkQuiescentInvariants(t, c, totalQueries, w.CacheLen())
	// Invalidations counts only removals, so it is bounded by (not equal
	// to) the Invalidate calls issued: invalidating an uncached key — which
	// a tiny LRU cache makes common — is a no-op.
	if want := int64(goroutines * invalidatesPerG); c.Invalidations > want {
		t.Fatalf("invalidations = %d > %d Invalidate calls", c.Invalidations, want)
	}
	if n := w.CacheLen(); n > capacity {
		t.Fatalf("cache holds %d entries, capacity %d", n, capacity)
	}
	if c.Evictions == 0 {
		t.Fatalf("stress run on a capacity-%d cache saw no evictions: %+v", capacity, c)
	}
	// The cache still answers correctly after the storm.
	closure, err := w.DeepProvenance("fig2", "d447")
	if err != nil || closure.NumSteps() != 10 {
		t.Fatalf("post-stress query broken: %v", err)
	}
}

// TestStressInvalidateGenerations pins "computed exactly once per
// generation": with a cache large enough to avoid evictions, a storm of
// queries computes each key once; after invalidating every key (bumping
// the generation), a second storm computes each key exactly once more.
func TestStressInvalidateGenerations(t *testing.T) {
	w := New(4096)
	mustT(t, w.RegisterSpec(spec.Phylogenomics()))
	mustT(t, w.LoadRun(run.Figure2()))
	r, _ := w.Run("fig2")
	data := r.AllData()

	storm := func() {
		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(off int) {
				defer wg.Done()
				// Every goroutine visits every key, offset so different
				// goroutines collide on different keys at the same time.
				for j := 0; j < len(data); j++ {
					d := data[(j+off*len(data)/16)%len(data)]
					if _, err := w.DeepProvenance("fig2", d); err != nil {
						t.Errorf("storm query %s: %v", d, err)
						return
					}
				}
			}(g)
		}
		wg.Wait()
	}

	storm()
	if c := w.CacheCounters(); c.Computes != int64(len(data)) {
		t.Fatalf("generation 0: %d computes for %d keys, want exactly one each", c.Computes, len(data))
	}
	for _, d := range data {
		w.Invalidate("fig2", d)
	}
	if n := w.CacheLen(); n != 0 {
		t.Fatalf("cache not empty after invalidating every key: %d left", n)
	}
	storm()
	if c := w.CacheCounters(); c.Computes != int64(2*len(data)) {
		t.Fatalf("generation 1: %d computes total for %d keys, want exactly %d",
			c.Computes, len(data), 2*len(data))
	}
}

// TestConcurrentDropReload races queries against DropRun/LoadRun cycles:
// queries must either answer correctly or fail with ErrUnknownRun, never
// corrupt state, and the generation fence keeps dropped closures out of
// the cache.
func TestConcurrentDropReload(t *testing.T) {
	w := loadedWarehouse(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c, err := w.DeepProvenance("fig2", "d447")
				if err != nil {
					if !errors.Is(err, ErrUnknownRun) {
						t.Errorf("unexpected error: %v", err)
						return
					}
					continue
				}
				if c.NumSteps() != 10 {
					t.Errorf("torn closure: %d steps", c.NumSteps())
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if err := w.DropRun("fig2"); err != nil {
			t.Fatal(err)
		}
		if err := w.LoadRun(run.Figure2()); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	c, err := w.DeepProvenance("fig2", "d447")
	if err != nil || c.NumSteps() != 10 {
		t.Fatalf("post-churn query broken: %v", err)
	}
}

// TestShardingDistribution sanity-checks the stripe function: the default
// cache fans out over multiple shards and the same key always maps to the
// same shard.
func TestShardingDistribution(t *testing.T) {
	cc := newClosureCache(1024)
	if len(cc.shards) < 2 {
		t.Fatalf("default cache has %d shards, want several", len(cc.shards))
	}
	used := make(map[*cacheShard]bool)
	for i := 0; i < 256; i++ {
		key := cacheKey{run: "r", data: fmt.Sprintf("d%d", i)}
		sh := cc.shard(key)
		if sh != cc.shard(key) {
			t.Fatal("shard mapping not deterministic")
		}
		used[sh] = true
	}
	if len(used) < 2 {
		t.Fatalf("256 keys landed on %d shard(s)", len(used))
	}
	// Tiny caches stay single-sharded so exact LRU order is preserved.
	if tiny := newClosureCache(2); len(tiny.shards) != 1 {
		t.Fatalf("capacity-2 cache has %d shards, want 1", len(tiny.shards))
	}
	var total int
	for _, sh := range cc.shards {
		total += sh.cap
	}
	if total < 1024 {
		t.Fatalf("summed shard capacity %d < requested 1024", total)
	}
}

// TestInvalidateSingleKey checks Invalidate through the public API: only
// the named key is evicted, and the next query recomputes it.
func TestInvalidateSingleKey(t *testing.T) {
	w := loadedWarehouse(t)
	for _, d := range []string{"d447", "d413"} {
		if _, err := w.DeepProvenance("fig2", d); err != nil {
			t.Fatal(err)
		}
	}
	w.Invalidate("fig2", "d447")
	if n := w.CacheLen(); n != 1 {
		t.Fatalf("cache has %d entries after single-key invalidate, want 1", n)
	}
	before := w.CacheCounters()
	if _, err := w.DeepProvenance("fig2", "d413"); err != nil { // still cached
		t.Fatal(err)
	}
	if _, err := w.DeepProvenance("fig2", "d447"); err != nil { // recomputed
		t.Fatal(err)
	}
	after := w.CacheCounters()
	if after.Hits != before.Hits+1 || after.Computes != before.Computes+1 {
		t.Fatalf("invalidate semantics wrong: before %+v after %+v", before, after)
	}
}
