package warehouse

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/spec"
	"repro/internal/wflog"
)

// tinyChurnSpec is the smallest useful workflow (INPUT -> A -> OUTPUT),
// cheap enough to load and drop thousands of times in one test.
func tinyChurnSpec(t *testing.T) *spec.Spec {
	t.Helper()
	s := spec.New("tiny")
	s.MustAddModule(spec.Module{Name: "A"})
	s.MustAddEdge(spec.Input, "A")
	s.MustAddEdge("A", spec.Output)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// tinyChurnEvents is one execution of the tiny spec: step S1 runs module A,
// reading d0 and writing d1.
func tinyChurnEvents() []wflog.Event {
	return []wflog.Event{
		{Seq: 1, Kind: wflog.KindStart, Step: "S1", Module: "A"},
		{Seq: 2, Kind: wflog.KindRead, Step: "S1", Data: "d0"},
		{Seq: 3, Kind: wflog.KindWrite, Step: "S1", Data: "d1"},
	}
}

// TestStressGenerationTableBounded is the regression test for the
// generation-map leak: before the fix, dropRun bumped a run's generation
// but never deleted it, so loading and dropping 10k distinct runs left 10k
// entries behind forever. The table must stay bounded by the set of live,
// queried runs — here at most one — and end empty.
func TestStressGenerationTableBounded(t *testing.T) {
	w := New(64)
	mustT(t, w.RegisterSpec(tinyChurnSpec(t)))
	events := tinyChurnEvents()

	const cycles = 10000
	for i := 0; i < cycles; i++ {
		id := fmt.Sprintf("run-%d", i)
		mustT(t, w.LoadLog(id, "tiny", events))
		c, err := w.DeepProvenance(id, "d1")
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if !c.HasStep("S1") || !c.HasData("d0") {
			t.Fatalf("cycle %d: wrong closure", i)
		}
		mustT(t, w.DropRun(id))
		if n := w.cache.generationTableLen(); n > 1 {
			t.Fatalf("cycle %d: generation table holds %d entries, want <= 1 (leak)", i, n)
		}
	}
	if n := w.cache.generationTableLen(); n != 0 {
		t.Fatalf("generation table holds %d entries after dropping every run, want 0", n)
	}
	if n := w.CacheLen(); n != 0 {
		t.Fatalf("cache holds %d closures after dropping every run, want 0", n)
	}
	c := w.CacheCounters()
	checkQuiescentInvariants(t, c, int64(cycles), 0)
	if c.Drops != c.Stores {
		t.Fatalf("every stored closure was dropped with its run: drops=%d stores=%d", c.Drops, c.Stores)
	}
}

// TestGenerationTableBoundedOnFailedLookups: a stream of queries against
// unknown runs (or unknown data) must not grow the generation table either —
// the leader registers a generation before computing, and the error path
// forgets it again.
func TestGenerationTableBoundedOnFailedLookups(t *testing.T) {
	w := loadedWarehouse(t)
	for i := 0; i < 10000; i++ {
		if _, err := w.DeepProvenance(fmt.Sprintf("ghost-%d", i), "d447"); !errors.Is(err, ErrUnknownRun) {
			t.Fatalf("ghost run %d: err = %v, want ErrUnknownRun", i, err)
		}
	}
	if _, err := w.DeepProvenance("fig2", "no-such-data"); !errors.Is(err, ErrUnknownData) {
		t.Fatalf("unknown data: %v", err)
	}
	// Only fig2 may be registered (it has been queried — unsuccessfully —
	// but it exists; the ghosts must all be forgotten).
	if n := w.cache.generationTableLen(); n > 1 {
		t.Fatalf("generation table holds %d entries after failed lookups, want <= 1", n)
	}
}

// TestConcurrentDropFencing is the fencing regression test (run under
// -race): a leader whose run is dropped mid-compute must deliver its result
// to callers but never populate the cache, even though the generation entry
// it fenced against no longer exists.
func TestConcurrentDropFencing(t *testing.T) {
	cc := newClosureCache(1024)
	computeStarted := make(chan struct{})
	release := make(chan struct{})
	stale := func(context.Context) (*Closure, error) {
		close(computeStarted)
		<-release
		return NewClosure("d1", map[string]bool{"OLD": true}, map[string]bool{"d1": true}), nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, o, err := cc.getOrCompute(context.Background(), "r1", "d1", false, stale)
		if err != nil || o.Outcome != OutcomeMiss {
			t.Errorf("stale leader: outcome=%v err=%v", o.Outcome, err)
			return
		}
		// The caller still gets the computed closure...
		if !c.HasStep("OLD") {
			t.Error("stale leader lost its own result")
		}
	}()
	<-computeStarted
	// Drop the run while the leader is computing. Its generation entry is
	// deleted outright — the leak fix — and the leader must still be fenced.
	cc.dropRun("r1")
	close(release)
	wg.Wait()

	if n := cc.len(); n != 0 {
		t.Fatalf("dropped run's closure was cached (%d entries)", n)
	}
	if c := cc.counters(); c.Stores != 0 {
		t.Fatalf("stores = %d, want 0 (fence must reject the stale result)", c.Stores)
	}
	if n := cc.generationTableLen(); n != 0 {
		t.Fatalf("generation table holds %d entries, want 0", n)
	}
}

// TestConcurrentDropReloadFencing extends the fence across re-registration:
// the run is dropped and re-queried (registering a fresh, strictly larger
// generation and caching a new closure) while the original leader is still
// computing. Because generations are drawn from a monotonic sequence, the
// stale leader can neither store its result nor clobber the new entry.
func TestConcurrentDropReloadFencing(t *testing.T) {
	cc := newClosureCache(1024)
	computeStarted := make(chan struct{})
	release := make(chan struct{})
	stale := func(context.Context) (*Closure, error) {
		close(computeStarted)
		<-release
		return NewClosure("d1", map[string]bool{"OLD": true}, map[string]bool{"d1": true}), nil
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, _, err := cc.getOrCompute(context.Background(), "r1", "d1", false, stale); err != nil {
			t.Errorf("stale leader: %v", err)
		}
	}()
	<-computeStarted
	cc.dropRun("r1")
	// Re-register the run under a different key, so the fresh query is a
	// new singleflight (the stale leader still owns the "d1" flight slot)
	// and the run's generation entry is re-created.
	fresh := func(context.Context) (*Closure, error) {
		return NewClosure("d2", map[string]bool{"NEW": true}, map[string]bool{"d2": true}), nil
	}
	if _, _, err := cc.getOrCompute(context.Background(), "r1", "d2", false, fresh); err != nil {
		t.Fatal(err)
	}
	close(release)
	wg.Wait()

	// Exactly the fresh closure is cached; the stale one failed its fence
	// against the re-registered (strictly larger) generation.
	if n := cc.len(); n != 1 {
		t.Fatalf("cache holds %d entries, want exactly the fresh one", n)
	}
	c, o, err := cc.getOrCompute(context.Background(), "r1", "d2", false, fresh)
	if err != nil || o.Outcome != OutcomeHit || !c.HasStep("NEW") {
		t.Fatalf("fresh closure lost: outcome=%v err=%v", o.Outcome, err)
	}
	if _, o, _ := cc.getOrCompute(context.Background(), "r1", "d1", false, fresh); o.Outcome != OutcomeMiss {
		t.Fatalf("stale key served from cache (outcome=%v), want miss", o.Outcome)
	}
}
