package warehouse

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/mmapfile"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/xxh"
)

// The v3 snapshot format: the warehouse in its in-memory form, page-aligned
// and pointer-free, so a file can be memory-mapped and served without
// copying. Where v2 is a *serialization* (uvarint frames that must be
// decoded into the compact index), v3 *is* the compact index — the CSR
// adjacency, interning tables and finals bitset are stored little-endian at
// their natural alignment, and OpenV3 aliases them straight out of the
// mapping with unsafe.Slice. Opening costs the header, the section
// directory, the JSON spec/view islands and the run directory — O(catalog),
// not O(warehouse); each run's tables materialize lazily on first query.
//
// File layout (all integers little-endian):
//
//	header     64 bytes
//	  [0:4)    magic "ZOOM"           (same dispatch position as v2)
//	  [4]      version byte 3
//	  [5:8)    zero
//	  [8:12)   u32 section count
//	  [12:16)  zero
//	  [16:24)  u64 directory offset (currently 64)
//	  [24:32)  u64 file size (must equal the real size — truncation check)
//	  [32:40)  u64 xxh64 of the directory bytes
//	  [40:64)  zero (reserved)
//	directory  count × 32-byte entries
//	  u32 kind, u32 reserved, u64 offset, u64 length, u64 xxh64
//	sections   each page-aligned (4096)
//
// Section kinds: 1 = specs (JSON array of spec documents), 2 = views (JSON
// array of view snapshots), 3 = run directory, 4 = run data. The spec,
// view and run-directory sections are checksummed eagerly at open; the run
// data section's directory hash is zero and integrity is per run block
// (each block's xxh64 lives in its run-directory record and is verified on
// first materialization), which is what keeps open time independent of
// warehouse size.
//
// Run directory section:
//
//	u64 run count
//	count × 64-byte records
//	  u64 block offset (relative to the run-data section), u64 block length
//	  u64 block xxh64
//	  u32 idOff, u32 idLen, u32 specOff, u32 specLen   (into the arena below)
//	  u32 steps, u32 data, u32 edges                   (directory counts)
//	  12 zero bytes
//	string arena (run ids and spec names)
//
// Run block (8-aligned within the section; all arrays at natural
// alignment, which the 32-byte header and the field order preserve):
//
//	header     u32 nSteps, nData, nFlows, flowInts, metaLen, arenaLen, 0, 0
//	finals     ⌈nData/64⌉ u64 bitset words
//	stepNameOff, stepModOff   (nSteps+1) u32 each — offsets into the arena
//	dataNameOff               (nData+1) u32
//	producer   nData i32
//	inOff, outOff             (nSteps+1) i32 each  — CSR row offsets
//	conOff                    (nData+1) i32
//	inData, outData, conStep  CSR values
//	flows      flowInts i32: per flow  from, to, count, data indexes
//	arena      arenaLen bytes (step ids, modules, data ids, concatenated)
//	meta       metaLen bytes, JSON [{"d": idx, "kv": {...}}] (sorted by idx)
//
// At materialization the int32/uint64 arrays are adopted by the run's
// index *without copying* (they alias the mapping); strings are copied out
// of the arena in one conversion so query results never dangle after
// Close. A checksummed-but-forged block cannot cause memory unsafety: the
// block is bounds- and invariant-checked here and again by
// run.ReconstructArena before any aliased slice is indexed.
const snapVersion3 = 3

const (
	v3HeaderSize   = 64
	v3DirEntrySize = 32
	v3RunRecSize   = 64
	v3SectionAlign = 4096
	v3BlockAlign   = 8

	v3SecSpecs   = 1
	v3SecViews   = 2
	v3SecRunDir  = 3
	v3SecRunData = 4

	// v3MaxSections/v3MaxRuns bound the catalog structures decoded eagerly,
	// so a forged header cannot make open allocate unbounded memory.
	v3MaxSections = 64
	v3MaxRuns     = 1 << 28
)

// snapshotInfo records how a warehouse came off disk — the Stats snapshot
// section and the Close lifecycle hang off it.
type snapshotInfo struct {
	version int
	mapped  bool
	bytes   int
	src     io.Closer // the mapping (nil when opened from a heap buffer)
}

// v3RunRec is one decoded run-directory record.
type v3RunRec struct {
	id, specName       string
	blockOff, blockLen uint64 // absolute offsets into the file image
	blockHash          uint64
	steps, data, edges int
}

// lazyRun defers a v3 run's materialization to first use. once serializes
// the build (any lock holder may trigger it; sync.Once publishes the
// runTables writes to every waiter), err is sticky, and done lets readers
// that do not want to force a build (Stats, label backfill) check state
// with acquire semantics.
type lazyRun struct {
	once sync.Once
	err  error
	done atomic.Bool
	// buildLabels asks materialization to also build reachability labels;
	// set at open (LoadOptions.Labels) or by a later SetLabelIndex(true).
	buildLabels atomic.Bool
	data        []byte
	rec         v3RunRec
}

// SaveV3 writes the warehouse in the v3 zero-copy snapshot format. Every
// lazily-opened run is materialized first (saving is a whole-warehouse
// operation). Output is deterministic: runs, specs and views are sorted, so
// save → open → save is byte-identical.
func (w *Warehouse) SaveV3(out io.Writer) error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		return ErrClosed
	}
	for id, rt := range w.runs {
		if err := w.resolveLocked(rt); err != nil {
			return fmt.Errorf("warehouse: save run %q: %w", id, err)
		}
	}
	img, err := w.buildV3Locked()
	if err != nil {
		return err
	}
	if _, err := out.Write(img); err != nil {
		return fmt.Errorf("warehouse: write snapshot: %w", err)
	}
	return nil
}

// buildV3Locked assembles the complete v3 image in memory; callers hold
// w.mu and have resolved every run.
func (w *Warehouse) buildV3Locked() ([]byte, error) {
	specNames := make([]string, 0, len(w.specs))
	for n := range w.specs {
		specNames = append(specNames, n)
	}
	sort.Strings(specNames)
	specDocs := make([]json.RawMessage, 0, len(specNames))
	var views []viewSnapshot
	for _, n := range specNames {
		blob, err := json.Marshal(w.specs[n])
		if err != nil {
			return nil, fmt.Errorf("warehouse: encode spec %q: %w", n, err)
		}
		specDocs = append(specDocs, blob)
		viewNames := make([]string, 0, len(w.views[n]))
		for vn := range w.views[n] {
			viewNames = append(viewNames, vn)
		}
		sort.Strings(viewNames)
		for _, vn := range viewNames {
			views = append(views, viewSnapshot{Spec: n, Name: vn, Blocks: w.views[n][vn].Blocks()})
		}
	}
	specsJSON, err := json.Marshal(specDocs)
	if err != nil {
		return nil, fmt.Errorf("warehouse: encode specs: %w", err)
	}
	if views == nil {
		views = []viewSnapshot{}
	}
	viewsJSON, err := json.Marshal(views)
	if err != nil {
		return nil, fmt.Errorf("warehouse: encode views: %w", err)
	}

	runIDs := make([]string, 0, len(w.runs))
	for id := range w.runs {
		runIDs = append(runIDs, id)
	}
	sort.Strings(runIDs)

	// Run data section: 8-aligned blocks, offsets relative to the section.
	type recInfo struct {
		off, length uint64
		hash        uint64
		steps, data, edges int
	}
	var runData []byte
	recs := make([]recInfo, len(runIDs))
	for i, id := range runIDs {
		for len(runData)%v3BlockAlign != 0 {
			runData = append(runData, 0)
		}
		start := len(runData)
		rt := w.runs[id]
		runData, err = appendRunBlockV3(runData, rt.run, rt.index)
		if err != nil {
			return nil, fmt.Errorf("warehouse: encode run %q: %w", id, err)
		}
		block := runData[start:]
		ix := rt.index
		recs[i] = recInfo{
			off: uint64(start), length: uint64(len(block)), hash: xxh.Sum64(block),
			steps: ix.NumSteps(), data: ix.NumData(), edges: rt.run.NumEdges(),
		}
	}

	// Run directory section.
	var arena []byte
	dir := make([]byte, 8, 8+len(runIDs)*v3RunRecSize)
	binary.LittleEndian.PutUint64(dir, uint64(len(runIDs)))
	for i, id := range runIDs {
		rec := recs[i]
		var rb [v3RunRecSize]byte
		le := binary.LittleEndian
		le.PutUint64(rb[0:], rec.off)
		le.PutUint64(rb[8:], rec.length)
		le.PutUint64(rb[16:], rec.hash)
		le.PutUint32(rb[24:], uint32(len(arena)))
		le.PutUint32(rb[28:], uint32(len(id)))
		arena = append(arena, id...)
		specName := w.runs[id].specName
		le.PutUint32(rb[32:], uint32(len(arena)))
		le.PutUint32(rb[36:], uint32(len(specName)))
		arena = append(arena, specName...)
		le.PutUint32(rb[40:], uint32(rec.steps))
		le.PutUint32(rb[44:], uint32(rec.data))
		le.PutUint32(rb[48:], uint32(rec.edges))
		dir = append(dir, rb[:]...)
	}
	runDir := append(dir, arena...)

	// Assemble: header, directory, then the four page-aligned sections.
	type section struct {
		kind uint32
		body []byte
		hash uint64
		off  uint64
	}
	sections := []section{
		{kind: v3SecSpecs, body: specsJSON, hash: xxh.Sum64(specsJSON)},
		{kind: v3SecViews, body: viewsJSON, hash: xxh.Sum64(viewsJSON)},
		{kind: v3SecRunDir, body: runDir, hash: xxh.Sum64(runDir)},
		{kind: v3SecRunData, body: runData, hash: 0}, // integrity is per block
	}
	off := uint64(v3HeaderSize + len(sections)*v3DirEntrySize)
	for i := range sections {
		off = alignUp(off, v3SectionAlign)
		sections[i].off = off
		off += uint64(len(sections[i].body))
	}
	fileSize := off

	dirBytes := make([]byte, 0, len(sections)*v3DirEntrySize)
	for _, s := range sections {
		var eb [v3DirEntrySize]byte
		le := binary.LittleEndian
		le.PutUint32(eb[0:], s.kind)
		le.PutUint64(eb[8:], s.off)
		le.PutUint64(eb[16:], uint64(len(s.body)))
		le.PutUint64(eb[24:], s.hash)
		dirBytes = append(dirBytes, eb[:]...)
	}

	img := make([]byte, fileSize)
	copy(img[0:4], snapMagic[:])
	img[4] = snapVersion3
	le := binary.LittleEndian
	le.PutUint32(img[8:], uint32(len(sections)))
	le.PutUint64(img[16:], v3HeaderSize)
	le.PutUint64(img[24:], fileSize)
	le.PutUint64(img[32:], xxh.Sum64(dirBytes))
	copy(img[v3HeaderSize:], dirBytes)
	for _, s := range sections {
		copy(img[s.off:], s.body)
	}
	return img, nil
}

// v3MetaEntry is one annotated input in a run block's JSON meta island.
type v3MetaEntry struct {
	D  int32             `json:"d"`
	KV map[string]string `json:"kv"`
}

// appendRunBlockV3 encodes one materialized run as a v3 block, appending to
// dst (which is 8-aligned on entry).
func appendRunBlockV3(dst []byte, r *run.Run, ix *run.Index) ([]byte, error) {
	if ix == nil {
		// Runs loaded under SetCompactIndex(false) have no CSR tables to
		// store; build the index now rather than fail the save.
		ix = r.Index()
	}
	nSteps, nData := ix.NumSteps(), ix.NumData()

	// Arena plus the three name-offset tables.
	var arena []byte
	stepNameOff := make([]uint32, 0, nSteps+1)
	stepModOff := make([]uint32, 0, nSteps+1)
	dataNameOff := make([]uint32, 0, nData+1)
	steps := r.Steps() // natural order = interning order
	for _, st := range steps {
		stepNameOff = append(stepNameOff, uint32(len(arena)))
		arena = append(arena, st.ID...)
	}
	stepNameOff = append(stepNameOff, uint32(len(arena)))
	for _, st := range steps {
		stepModOff = append(stepModOff, uint32(len(arena)))
		arena = append(arena, st.Module...)
	}
	stepModOff = append(stepModOff, uint32(len(arena)))
	for d := 0; d < nData; d++ {
		dataNameOff = append(dataNameOff, uint32(len(arena)))
		arena = append(arena, ix.DataName(int32(d))...)
	}
	dataNameOff = append(dataNameOff, uint32(len(arena)))

	// CSR tables straight off the index.
	producer := make([]int32, nData)
	inOff := make([]int32, 1, nSteps+1)
	outOff := make([]int32, 1, nSteps+1)
	conOff := make([]int32, 1, nData+1)
	var inData, outData, conStep []int32
	for s := 0; s < nSteps; s++ {
		inData = append(inData, ix.InputsOf(int32(s))...)
		inOff = append(inOff, int32(len(inData)))
		outData = append(outData, ix.OutputsOf(int32(s))...)
		outOff = append(outOff, int32(len(outData)))
	}
	finals := bitset.New(nData)
	for d := 0; d < nData; d++ {
		producer[d] = ix.Producer(int32(d))
		conStep = append(conStep, ix.ConsumersOf(int32(d))...)
		conOff = append(conOff, int32(len(conStep)))
		if ix.IsFinal(int32(d)) {
			finals.Add(int32(d))
		}
	}

	// Flow stream, sorted by (from, to) node code like the v2 frames.
	type edge struct {
		fc, tc   int32
		from, to string
	}
	stepCode := make(map[string]int32, nSteps+2)
	stepCode[spec.Input] = nodeInput
	stepCode[spec.Output] = nodeOutput
	for i, st := range steps {
		stepCode[st.ID] = int32(i + nodeStep0)
	}
	edges := make([]edge, 0, r.NumEdges())
	for _, e := range r.Graph().Edges() {
		edges = append(edges, edge{fc: stepCode[e.From], tc: stepCode[e.To], from: e.From, to: e.To})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].fc != edges[j].fc {
			return edges[i].fc < edges[j].fc
		}
		return edges[i].tc < edges[j].tc
	})
	var flows []int32
	for _, e := range edges {
		ds := r.DataOn(e.from, e.to) // naturally sorted = ascending indexes
		flows = append(flows, e.fc, e.tc, int32(len(ds)))
		for _, d := range ds {
			di, _ := ix.DataID(d)
			flows = append(flows, di)
		}
	}

	// Meta island.
	var metaJSON []byte
	if ann := r.AnnotatedInputs(); len(ann) > 0 {
		entries := make([]v3MetaEntry, 0, len(ann))
		for _, d := range ann {
			di, _ := ix.DataID(d)
			entries = append(entries, v3MetaEntry{D: di, KV: r.InputMeta(d)})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].D < entries[j].D })
		var err error
		if metaJSON, err = json.Marshal(entries); err != nil {
			return nil, err
		}
	}

	// Emit. Field order keeps every array at its natural alignment given
	// the 8-aligned block start.
	le := binary.LittleEndian
	var hdr [32]byte
	le.PutUint32(hdr[0:], uint32(nSteps))
	le.PutUint32(hdr[4:], uint32(nData))
	le.PutUint32(hdr[8:], uint32(len(edges)))
	le.PutUint32(hdr[12:], uint32(len(flows)))
	le.PutUint32(hdr[16:], uint32(len(metaJSON)))
	le.PutUint32(hdr[20:], uint32(len(arena)))
	dst = append(dst, hdr[:]...)
	for _, w := range finals {
		dst = le.AppendUint64(dst, w)
	}
	for _, tbl := range [][]uint32{stepNameOff, stepModOff, dataNameOff} {
		for _, v := range tbl {
			dst = le.AppendUint32(dst, v)
		}
	}
	for _, tbl := range [][]int32{producer, inOff, outOff, conOff, inData, outData, conStep, flows} {
		for _, v := range tbl {
			dst = le.AppendUint32(dst, uint32(v))
		}
	}
	dst = append(dst, arena...)
	dst = append(dst, metaJSON...)
	return dst, nil
}

// OpenV3 memory-maps a v3 snapshot and returns a queryable warehouse
// without loading it: the catalog (specs, views, run directory) is verified
// and decoded eagerly, run tables materialize lazily on first query, and
// the big integer arrays are served from the mapping for the warehouse's
// lifetime. Call Close when done to release the mapping; cacheSize as in
// New. Only the Labels and Metrics load options apply (there is no load
// phase to parallelize — Progress, if set, is told the warehouse is ready
// immediately).
func OpenV3(path string, cacheSize int, opts LoadOptions) (*Warehouse, error) {
	f, err := mmapfile.Open(path)
	if err != nil {
		return nil, fmt.Errorf("warehouse: open snapshot: %w", err)
	}
	w, err := openV3Bytes(f.Bytes(), f.Mapped(), f, cacheSize, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// openV3Bytes builds a lazily-served warehouse over a complete v3 file
// image. src (optional) is closed by Warehouse.Close.
func openV3Bytes(data []byte, mapped bool, src io.Closer, cacheSize int, opts LoadOptions) (*Warehouse, error) {
	secs, err := parseV3Catalog(data)
	if err != nil {
		return nil, err
	}

	w := New(cacheSize)
	if opts.Labels {
		w.labelIndex = true
	}
	w.snap = &snapshotInfo{version: snapVersion3, mapped: mapped, bytes: len(data), src: src}

	var specDocs []json.RawMessage
	if err := json.Unmarshal(secs.bodies[v3SecSpecs], &specDocs); err != nil {
		return nil, fmt.Errorf("warehouse: v3 snapshot: decode specs: %w", err)
	}
	for i, raw := range specDocs {
		s, err := spec.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("warehouse: snapshot spec %d: %w", i, err)
		}
		if err := w.RegisterSpec(s); err != nil {
			return nil, err
		}
	}
	var views []viewSnapshot
	if err := json.Unmarshal(secs.bodies[v3SecViews], &views); err != nil {
		return nil, fmt.Errorf("warehouse: v3 snapshot: decode views: %w", err)
	}
	for _, vs := range views {
		s, err := w.Spec(vs.Spec)
		if err != nil {
			return nil, err
		}
		v, err := core.NewUserView(s, vs.Blocks)
		if err != nil {
			return nil, fmt.Errorf("warehouse: snapshot view %q: %w", vs.Name, err)
		}
		if err := w.RegisterView(vs.Name, v); err != nil {
			return nil, err
		}
	}

	recs, err := parseV3RunDir(secs.bodies[v3SecRunDir], secs.runDataOff, secs.runDataLen)
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if _, err := w.Spec(rec.specName); err != nil {
			return nil, fmt.Errorf("warehouse: v3 snapshot: run %q: %w", rec.id, err)
		}
		if _, dup := w.runs[rec.id]; dup {
			return nil, fmt.Errorf("%w: run %q", ErrDuplicate, rec.id)
		}
		lz := &lazyRun{data: data, rec: rec}
		if opts.Labels {
			lz.buildLabels.Store(true)
		}
		w.runs[rec.id] = &runTables{specName: rec.specName, lazy: lz}
	}

	if opts.Metrics != nil {
		w.AttachMetrics(opts.Metrics)
	}
	if opts.Progress != nil {
		opts.Progress(len(recs), len(recs))
	}
	return w, nil
}

// v3Sections maps section kind to body bytes for the eagerly-read sections,
// plus the bounds of the run-data section (whose body is only touched per
// block, on materialization).
type v3Sections struct {
	bodies                 map[uint32][]byte
	runDataOff, runDataLen uint64
}

// parseV3Catalog verifies the header, the section directory and the eager
// sections' checksums, returning the section table. Every offset is bounds-
// checked against the real file size before it is dereferenced, so a
// truncated or forged file yields an error, never a fault.
func parseV3Catalog(data []byte) (secs v3Sections, err error) {
	size := uint64(len(data))
	if len(data) < v3HeaderSize {
		return secs, fmt.Errorf("warehouse: v3 snapshot: file truncated at %d bytes", len(data))
	}
	if [4]byte(data[:4]) != snapMagic {
		return secs, fmt.Errorf("warehouse: bad snapshot magic %q", data[:4])
	}
	if data[4] != snapVersion3 {
		return secs, fmt.Errorf("warehouse: unsupported snapshot version %d", data[4])
	}
	le := binary.LittleEndian
	nSec := le.Uint32(data[8:])
	dirOff := le.Uint64(data[16:])
	fileSize := le.Uint64(data[24:])
	dirHash := le.Uint64(data[32:])
	if fileSize != size {
		return secs, fmt.Errorf("warehouse: v3 snapshot: header says %d bytes, file has %d (truncated?)", fileSize, size)
	}
	if nSec == 0 || nSec > v3MaxSections {
		return secs, fmt.Errorf("warehouse: v3 snapshot: implausible section count %d", nSec)
	}
	dirLen := uint64(nSec) * v3DirEntrySize
	if dirOff > size || dirLen > size-dirOff {
		return secs, fmt.Errorf("warehouse: v3 snapshot: section directory out of bounds")
	}
	dir := data[dirOff : dirOff+dirLen]
	if h := xxh.Sum64(dir); h != dirHash {
		return secs, fmt.Errorf("warehouse: v3 snapshot: section directory checksum mismatch (%#x != %#x)", h, dirHash)
	}
	secs.bodies = make(map[uint32][]byte, nSec)
	sawRunData := false
	for i := uint32(0); i < nSec; i++ {
		e := dir[i*v3DirEntrySize:]
		kind := le.Uint32(e)
		off := le.Uint64(e[8:])
		length := le.Uint64(e[16:])
		hash := le.Uint64(e[24:])
		if off > size || length > size-off {
			return secs, fmt.Errorf("warehouse: v3 snapshot: section %d out of bounds", kind)
		}
		body := data[off : off+length]
		switch kind {
		case v3SecSpecs, v3SecViews, v3SecRunDir:
			if _, dup := secs.bodies[kind]; dup {
				return secs, fmt.Errorf("warehouse: v3 snapshot: duplicate section %d", kind)
			}
			if h := xxh.Sum64(body); h != hash {
				return secs, fmt.Errorf("warehouse: v3 snapshot: section %d checksum mismatch (%#x != %#x)", kind, h, hash)
			}
			secs.bodies[kind] = body
		case v3SecRunData:
			if sawRunData {
				return secs, fmt.Errorf("warehouse: v3 snapshot: duplicate section %d", kind)
			}
			sawRunData = true
			secs.runDataOff, secs.runDataLen = off, length
		default:
			// Unknown sections are skipped — room for forward-compatible
			// additions without a version bump.
		}
	}
	for _, kind := range []uint32{v3SecSpecs, v3SecViews, v3SecRunDir} {
		if _, ok := secs.bodies[kind]; !ok {
			return secs, fmt.Errorf("warehouse: v3 snapshot: missing section %d", kind)
		}
	}
	if !sawRunData {
		return secs, fmt.Errorf("warehouse: v3 snapshot: missing section %d", v3SecRunData)
	}
	return secs, nil
}

// parseV3RunDir decodes the run directory. Block bounds are validated
// against the run-data section here, once, so materialization can slice
// without re-checking; ids and spec names are copied out of the section
// (they become catalog keys and must survive Close).
func parseV3RunDir(body []byte, runDataOff, runDataLen uint64) ([]v3RunRec, error) {
	if len(body) < 8 {
		return nil, fmt.Errorf("warehouse: v3 snapshot: run directory truncated")
	}
	le := binary.LittleEndian
	n := le.Uint64(body)
	if n > v3MaxRuns {
		return nil, fmt.Errorf("warehouse: v3 snapshot: implausible run count %d", n)
	}
	recBytes := n * v3RunRecSize
	if recBytes > uint64(len(body))-8 {
		return nil, fmt.Errorf("warehouse: v3 snapshot: run directory truncated (%d runs)", n)
	}
	arena := string(body[8+recBytes:])
	recs := make([]v3RunRec, 0, n)
	for i := uint64(0); i < n; i++ {
		rb := body[8+i*v3RunRecSize:]
		rec := v3RunRec{
			blockOff:  le.Uint64(rb[0:]),
			blockLen:  le.Uint64(rb[8:]),
			blockHash: le.Uint64(rb[16:]),
			steps:     int(le.Uint32(rb[40:])),
			data:      int(le.Uint32(rb[44:])),
			edges:     int(le.Uint32(rb[48:])),
		}
		if rec.blockOff > runDataLen || rec.blockLen > runDataLen-rec.blockOff {
			return nil, fmt.Errorf("warehouse: v3 snapshot: run %d block out of bounds", i)
		}
		if (runDataOff+rec.blockOff)%v3BlockAlign != 0 {
			return nil, fmt.Errorf("warehouse: v3 snapshot: run %d block misaligned", i)
		}
		rec.blockOff += runDataOff // absolute from here on
		idOff, idLen := uint64(le.Uint32(rb[24:])), uint64(le.Uint32(rb[28:]))
		spOff, spLen := uint64(le.Uint32(rb[32:])), uint64(le.Uint32(rb[36:]))
		aLen := uint64(len(arena))
		if idOff > aLen || idLen > aLen-idOff || spOff > aLen || spLen > aLen-spOff {
			return nil, fmt.Errorf("warehouse: v3 snapshot: run %d name out of bounds", i)
		}
		rec.id = arena[idOff : idOff+idLen]
		rec.specName = arena[spOff : spOff+spLen]
		if rec.id == "" {
			return nil, fmt.Errorf("warehouse: v3 snapshot: run %d has an empty id", i)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// materialize builds the run and its index from the block, verifying the
// block checksum and every structural invariant first. Called exactly once
// per lazyRun (through sync.Once); on success it publishes run/index (and
// labels when requested) into rt.
func (lz *lazyRun) materialize(rt *runTables, w *Warehouse) {
	r, err := decodeRunBlockV3(lz.data, lz.rec)
	if err != nil {
		lz.err = fmt.Errorf("warehouse: v3 snapshot: run %q: %w", lz.rec.id, err)
		return
	}
	if err := r.Validate(); err != nil {
		lz.err = fmt.Errorf("warehouse: v3 snapshot: run %q: %w", lz.rec.id, err)
		return
	}
	rt.run = r
	rt.index = r.Index() // pre-built by ReconstructArena; no second build
	if lz.buildLabels.Load() {
		if rt.labels = rt.index.BuildLabels(); rt.labels != nil {
			w.observeLabelBuild()
		}
	}
	lz.done.Store(true)
}

// decodeRunBlockV3 decodes one run block into a run whose index aliases the
// block's integer arrays.
func decodeRunBlockV3(data []byte, rec v3RunRec) (*run.Run, error) {
	b := data[rec.blockOff : rec.blockOff+rec.blockLen]
	if h := xxh.Sum64(b); h != rec.blockHash {
		return nil, fmt.Errorf("block checksum mismatch (%#x != %#x)", h, rec.blockHash)
	}
	if len(b) < 32 {
		return nil, fmt.Errorf("block truncated at %d bytes", len(b))
	}
	le := binary.LittleEndian
	nSteps := int(le.Uint32(b[0:]))
	nData := int(le.Uint32(b[4:]))
	nFlows := int(le.Uint32(b[8:]))
	flowInts := int(le.Uint32(b[12:]))
	metaLen := int(le.Uint32(b[16:]))
	arenaLen := int(le.Uint32(b[20:]))
	if nSteps != rec.steps || nData != rec.data || nFlows != rec.edges {
		return nil, fmt.Errorf("block header disagrees with run directory (%d/%d/%d vs %d/%d/%d)",
			nSteps, nData, nFlows, rec.steps, rec.data, rec.edges)
	}

	cur := &blockCursor{b: b, off: 32}
	finals, err := cur.u64s((nData + 63) / 64)
	if err != nil {
		return nil, err
	}
	stepNameOff, err := cur.u32s(nSteps + 1)
	if err != nil {
		return nil, err
	}
	stepModOff, err := cur.u32s(nSteps + 1)
	if err != nil {
		return nil, err
	}
	dataNameOff, err := cur.u32s(nData + 1)
	if err != nil {
		return nil, err
	}
	producer, err := cur.i32s(nData)
	if err != nil {
		return nil, err
	}
	inOff, err := cur.i32s(nSteps + 1)
	if err != nil {
		return nil, err
	}
	outOff, err := cur.i32s(nSteps + 1)
	if err != nil {
		return nil, err
	}
	conOff, err := cur.i32s(nData + 1)
	if err != nil {
		return nil, err
	}
	inData, err := cur.csrVals("inputs", inOff)
	if err != nil {
		return nil, err
	}
	outData, err := cur.csrVals("outputs", outOff)
	if err != nil {
		return nil, err
	}
	conStep, err := cur.csrVals("consumers", conOff)
	if err != nil {
		return nil, err
	}
	flowArr, err := cur.i32s(flowInts)
	if err != nil {
		return nil, err
	}
	if cur.off+arenaLen+metaLen > len(b) {
		return nil, fmt.Errorf("block arena out of bounds")
	}
	// One copy: the arena becomes an immutable Go string and every name a
	// substring, so results survive Close (the int arrays above stay
	// mapping-backed on purpose).
	arena := string(b[cur.off : cur.off+arenaLen])
	metaBytes := b[cur.off+arenaLen : cur.off+arenaLen+metaLen]

	names := func(what string, off []uint32, n int) ([]string, error) {
		out := make([]string, n)
		for i := 0; i < n; i++ {
			lo, hi := off[i], off[i+1]
			if lo > hi || int(hi) > len(arena) {
				return nil, fmt.Errorf("%s name table out of bounds at %d", what, i)
			}
			out[i] = arena[lo:hi]
		}
		return out, nil
	}
	stepIDs, err := names("step", stepNameOff, nSteps)
	if err != nil {
		return nil, err
	}
	stepMods, err := names("module", stepModOff, nSteps)
	if err != nil {
		return nil, err
	}
	dataNames, err := names("data", dataNameOff, nData)
	if err != nil {
		return nil, err
	}

	flows := make([]run.InternedFlow, 0, nFlows)
	for k := 0; k < len(flowArr); {
		if len(flowArr)-k < 3 {
			return nil, fmt.Errorf("flow stream truncated")
		}
		cnt := int(flowArr[k+2])
		if cnt < 0 || cnt > len(flowArr)-k-3 {
			return nil, fmt.Errorf("flow stream truncated")
		}
		flows = append(flows, run.InternedFlow{
			From: flowArr[k], To: flowArr[k+1], Data: flowArr[k+3 : k+3+cnt],
		})
		k += 3 + cnt
	}
	if len(flows) != nFlows {
		return nil, fmt.Errorf("flow stream has %d flows, header says %d", len(flows), nFlows)
	}

	var meta map[int32]map[string]string
	if metaLen > 0 {
		var entries []v3MetaEntry
		if err := json.Unmarshal(metaBytes, &entries); err != nil {
			return nil, fmt.Errorf("decode meta island: %w", err)
		}
		meta = make(map[int32]map[string]string, len(entries))
		for _, e := range entries {
			meta[e.D] = e.KV
		}
	}

	return run.ReconstructArena(rec.id, rec.specName, run.ArenaTables{
		StepIDs: stepIDs, StepModules: stepMods, DataNames: dataNames,
		Producer: producer,
		InOff:    inOff, InData: inData,
		OutOff: outOff, OutData: outData,
		ConOff: conOff, ConStep: conStep,
		Finals: bitset.Set(finals),
		Flows:  flows, Meta: meta,
	})
}

// blockCursor slices typed little-endian arrays out of a run block without
// copying, bounds- and alignment-checking every step. The zero-copy step —
// unsafe.Slice over the mapping — is safe because (a) the byte range is
// checked against the block first and (b) the pointer's alignment is
// checked at runtime, so even a forged block can only produce an error.
type blockCursor struct {
	b   []byte
	off int
}

func (c *blockCursor) bytesFor(n, size, align int) (unsafe.Pointer, error) {
	if n < 0 || n > (len(c.b)-c.off)/size {
		return nil, fmt.Errorf("block table out of bounds at offset %d", c.off)
	}
	if n == 0 {
		return nil, nil
	}
	p := unsafe.Pointer(&c.b[c.off])
	if uintptr(p)%uintptr(align) != 0 {
		return nil, fmt.Errorf("block table misaligned at offset %d", c.off)
	}
	c.off += n * size
	return p, nil
}

func (c *blockCursor) u64s(n int) ([]uint64, error) {
	p, err := c.bytesFor(n, 8, 8)
	if p == nil {
		return nil, err
	}
	return unsafe.Slice((*uint64)(p), n), nil
}

func (c *blockCursor) u32s(n int) ([]uint32, error) {
	p, err := c.bytesFor(n, 4, 4)
	if p == nil {
		return nil, err
	}
	return unsafe.Slice((*uint32)(p), n), nil
}

func (c *blockCursor) i32s(n int) ([]int32, error) {
	p, err := c.bytesFor(n, 4, 4)
	if p == nil {
		return nil, err
	}
	return unsafe.Slice((*int32)(p), n), nil
}

// csrVals reads the value array belonging to a CSR offset table (its length
// is the table's last entry; ReconstructArena re-checks monotonicity).
func (c *blockCursor) csrVals(what string, off []int32) ([]int32, error) {
	if len(off) == 0 {
		return nil, fmt.Errorf("%s CSR has no offsets", what)
	}
	n := off[len(off)-1]
	if n < 0 {
		return nil, fmt.Errorf("%s CSR has negative length", what)
	}
	vals, err := c.i32s(int(n))
	if err != nil {
		return nil, fmt.Errorf("%s CSR: %w", what, err)
	}
	return vals, nil
}

// alignUp rounds off up to the next multiple of align (a power of two).
func alignUp(off uint64, align uint64) uint64 {
	return (off + align - 1) &^ (align - 1)
}

// alignedBytes allocates n bytes with 8-byte alignment guaranteed (a plain
// make([]byte, n) may be byte-aligned for tiny sizes), so a heap-loaded v3
// image can use the same unsafe.Slice decode path as a mapping.
func alignedBytes(n int) []byte {
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}
