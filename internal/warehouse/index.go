package warehouse

import (
	"repro/internal/bitset"
	"repro/internal/run"
)

// The compact query path. At load time the warehouse builds each run's
// interned CSR index (run.Index); the closure computations below are then
// integer BFS over flat int32 slices with bitset visited sets — no string
// hashing, no per-hop allocation — and their results are bitset-backed
// Closures whose map views materialize lazily (see connectby.go). This is
// the database trick behind the paper's compute-UAdmin-then-project
// strategy done natively: intern once, traverse dense ids, only
// re-materialize strings at the result boundary.

// SetCompactIndex selects whether runs loaded *from now on* get a compact
// index built at load time (the default). Disabling it routes queries for
// subsequently loaded runs through the legacy string/map traversal — the
// reference implementation the benchmarks and equivalence tests compare
// against. Runs already loaded keep whichever representation they have.
func (w *Warehouse) SetCompactIndex(enabled bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.noIndex = !enabled
}

// indexedProvenanceClosure is the backward integer BFS: data → producing
// step → that step's inputs, to fixpoint. The worklist is a stack of
// interned data ids; steps are expanded at most once, guarded by the step
// bitset itself.
func indexedProvenanceClosure(ix *run.Index, d string) *Closure {
	root, _ := ix.DataID(d)
	stepBits := bitset.New(ix.NumSteps())
	dataBits := bitset.New(ix.NumData())
	dataBits.Add(root)
	stack := make([]int32, 0, 64)
	stack = append(stack, root)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		p := ix.Producer(cur)
		if p < 0 || stepBits.Has(p) {
			continue
		}
		stepBits.Add(p)
		for _, in := range ix.InputsOf(p) {
			if !dataBits.Has(in) {
				dataBits.Add(in)
				stack = append(stack, in)
			}
		}
	}
	return newBitClosure(d, ix, stepBits, dataBits)
}

// indexedDerivationClosure is the forward integer BFS: data → consuming
// steps → their outputs, to fixpoint.
func indexedDerivationClosure(ix *run.Index, d string) *Closure {
	root, _ := ix.DataID(d)
	stepBits := bitset.New(ix.NumSteps())
	dataBits := bitset.New(ix.NumData())
	dataBits.Add(root)
	stack := make([]int32, 0, 64)
	stack = append(stack, root)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range ix.ConsumersOf(cur) {
			if stepBits.Has(s) {
				continue
			}
			stepBits.Add(s)
			for _, out := range ix.OutputsOf(s) {
				if !dataBits.Has(out) {
					dataBits.Add(out)
					stack = append(stack, out)
				}
			}
		}
	}
	return newBitClosure(d, ix, stepBits, dataBits)
}

// RunIndex returns the compact index of a loaded run, or nil when the run
// was loaded with compact indexing disabled. The engine's projection fast
// path uses pointer identity between this index and the one a closure
// carries.
func (w *Warehouse) RunIndex(runID string) *run.Index {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		return nil
	}
	rt, ok := w.runs[runID]
	if !ok {
		return nil
	}
	if err := w.resolveLocked(rt); err != nil {
		return nil
	}
	return rt.index
}

// IndexStats aggregates the per-run index footprints: how many ids were
// interned, what the flat CSR adjacency costs, and how many 64-bit words a
// closure bitset pair needs across all loaded runs. IndexedRuns counts the
// runs that carry a compact index (runs loaded under SetCompactIndex(false)
// do not).
type IndexStats struct {
	IndexedRuns   int
	InternedSteps int
	InternedData  int
	CSRBytes      int
	ClosureWords  int
}

// indexStatsLocked aggregates index stats; callers hold w.mu.
func (w *Warehouse) indexStatsLocked() IndexStats {
	var st IndexStats
	for _, rt := range w.runs {
		if lz := rt.lazy; lz != nil && !lz.done.Load() {
			continue // unmaterialized v3 run: no index resident yet
		}
		if rt.index == nil {
			continue
		}
		s := rt.index.Stats()
		st.IndexedRuns++
		st.InternedSteps += s.Steps
		st.InternedData += s.Data
		st.CSRBytes += s.CSRBytes
		st.ClosureWords += s.ClosureWords
	}
	return st
}
