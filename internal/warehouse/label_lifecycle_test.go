package warehouse

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/run"
	"repro/internal/spec"
)

// closureKey renders a closure's membership canonically so two closures can
// be compared for exact equality regardless of representation.
func closureKey(c *Closure) string {
	render := func(m map[string]bool) string {
		ids := make([]string, 0, len(m))
		for id := range m {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		return strings.Join(ids, ",")
	}
	return "s{" + render(c.StepSet()) + "} d{" + render(c.DataSet()) + "}"
}

// labeledWarehouse is loadedWarehouse with the label index on.
func labeledWarehouse(t testing.TB) *Warehouse {
	t.Helper()
	w := loadedWarehouse(t)
	w.SetLabelIndex(true)
	return w
}

// TestLabelBackfillAndQuery checks the basic lifecycle: enabling labels on
// an already-loaded warehouse builds them, label-backed answers match the
// BFS answers, and the counters tell the story.
func TestLabelBackfillAndQuery(t *testing.T) {
	bfs := loadedWarehouse(t)
	w := labeledWarehouse(t)
	if !w.LabelIndexEnabled() {
		t.Fatal("LabelIndexEnabled = false after SetLabelIndex(true)")
	}
	if w.RunLabels("fig2") == nil {
		t.Fatal("no labels built for fig2")
	}
	if got := w.LabelCounters().Builds; got != 1 {
		t.Fatalf("Builds = %d, want 1", got)
	}
	for _, d := range []string{"d447", "d413", "d410"} {
		want, err := bfs.DeepProvenance("fig2", d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := w.DeepProvenance("fig2", d)
		if err != nil {
			t.Fatal(err)
		}
		if closureKey(got) != closureKey(want) {
			t.Fatalf("label provenance of %s:\n  %s\nwant\n  %s", d, closureKey(got), closureKey(want))
		}
		wantD, _ := bfs.DeepDerivation("fig2", d)
		gotD, err := w.DeepDerivation("fig2", d)
		if err != nil {
			t.Fatal(err)
		}
		if closureKey(gotD) != closureKey(wantD) {
			t.Fatalf("label derivation of %s:\n  %s\nwant\n  %s", d, closureKey(gotD), closureKey(wantD))
		}
	}
	lc := w.LabelCounters()
	if lc.Hits == 0 || lc.Fallbacks != 0 {
		t.Fatalf("LabelCounters = %+v, want hits > 0 and no fallbacks", lc)
	}
	st := w.Stats()
	if st.Labels.LabeledRuns != 1 || st.Labels.Chains == 0 || st.Labels.LabelBytes == 0 {
		t.Fatalf("Stats.Labels = %+v", st.Labels)
	}
	if !strings.Contains(st.String(), "labels[") {
		t.Fatalf("Stats.String() lacks labels section: %s", st)
	}
	// A per-request BFS override must bypass the labels without counting a
	// fallback — it never requested them.
	before := w.LabelCounters()
	c, o, err := w.DeepProvenanceStrategyCtx(context.Background(), "fig2", "d430", false, StrategyBFS)
	if err != nil || c == nil {
		t.Fatal(err)
	}
	if o.Outcome == OutcomeMiss && o.Strategy != strategyBFS {
		t.Fatalf("StrategyBFS miss reported strategy %q", o.Strategy)
	}
	after := w.LabelCounters()
	if after.Fallbacks != before.Fallbacks {
		t.Fatal("StrategyBFS counted a label fallback")
	}
}

// TestLabelFallbackAccounting pins the fallback contract: every
// label-requested computation that cannot be served by labels is counted,
// so Hits + Fallbacks always equals the label-requested computations.
func TestLabelFallbackAccounting(t *testing.T) {
	w := loadedWarehouse(t) // labels off
	// Per-request label strategy against a label-less run: correct answer,
	// counted fallback.
	want, _ := w.DeepProvenance("fig2", "d447")
	w.ResetCache()
	c, o, err := w.DeepProvenanceStrategyCtx(context.Background(), "fig2", "d447", false, StrategyLabels)
	if err != nil {
		t.Fatal(err)
	}
	if closureKey(c) != closureKey(want) {
		t.Fatal("fallback answer differs from BFS answer")
	}
	if o.Outcome != OutcomeMiss || o.Strategy != strategyBFS {
		t.Fatalf("fallback observation = %+v, want miss via bfs", o)
	}
	if lc := w.LabelCounters(); lc.Hits != 0 || lc.Fallbacks != 1 {
		t.Fatalf("LabelCounters = %+v, want exactly one fallback", lc)
	}
	// Disabling labels after a build drops them: the next auto query is
	// BFS and counts nothing; a label-requested one counts a fallback.
	w.SetLabelIndex(true)
	if w.RunLabels("fig2") == nil {
		t.Fatal("labels not built")
	}
	w.SetLabelIndex(false)
	if w.RunLabels("fig2") != nil {
		t.Fatal("labels survived SetLabelIndex(false)")
	}
	w.ResetCache()
	before := w.LabelCounters()
	if _, err := w.DeepProvenance("fig2", "d447"); err != nil {
		t.Fatal(err)
	}
	if lc := w.LabelCounters(); lc.Fallbacks != before.Fallbacks {
		t.Fatal("auto query with labels off counted a fallback")
	}
	if _, err := w.DeepDerivationStrategy("fig2", "d413", StrategyLabels); err != nil {
		t.Fatal(err)
	}
	if lc := w.LabelCounters(); lc.Fallbacks != before.Fallbacks+1 {
		t.Fatalf("LabelCounters = %+v, want one more fallback", lc)
	}
}

// TestConcurrentLabelChurn is the staleness regression test: dropRun and
// re-ingest race with label-backed deep-provenance queries under -race.
// Every answer must match the reference closure of one of the two run
// variants that ever inhabit the id — a stale label index consulted across
// a swap would produce a set matching neither — and at the quiescent end
// the label counters must account for every label-requested computation
// and the surviving label set must be the one built over the current index
// (the generation fence kept everything else out of the cache).
func TestConcurrentLabelChurn(t *testing.T) {
	s := spec.Phylogenomics()
	variantA := run.Figure2()
	variantB, _, err := run.Execute(s, run.Config{RunID: "fig2", Seed: 99})
	if err != nil {
		t.Fatal(err)
	}

	// Reference closures per variant, computed by the plain BFS path on
	// single-variant warehouses. Each variant's probe data id is its
	// naturally-last final output.
	probe := func(r *run.Run) string {
		outs := r.FinalOutputs()
		return outs[len(outs)-1]
	}
	ref := func(r *run.Run, d string) string {
		ww := New(0)
		if err := ww.RegisterSpec(spec.Phylogenomics()); err != nil {
			t.Fatal(err)
		}
		if err := ww.LoadRun(r); err != nil {
			t.Fatal(err)
		}
		c, err := ww.DeepProvenance("fig2", d)
		if err != nil {
			t.Fatal(err)
		}
		return closureKey(c)
	}
	dA, dB := probe(variantA), probe(variantB)
	refs := map[string]map[string]bool{
		dA: {ref(variantA, dA): true},
		dB: {ref(variantB, dB): true},
	}
	// A probe id may exist in both variants (with different provenance);
	// admit the other variant's answer for it too, if defined.
	if variantB.HasData(dA) {
		refs[dA][ref(variantB, dA)] = true
	}
	if variantA.HasData(dB) {
		refs[dB][ref(variantA, dB)] = true
	}

	w := New(0)
	if err := w.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	w.SetLabelIndex(true)
	if err := w.LoadRun(variantA); err != nil {
		t.Fatal(err)
	}

	// servedMisses counts the successful closure computations observed by
	// the queriers — the label-requested computations the label counters
	// must account for (failed computes never reach the strategy dispatch).
	var servedMisses atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := dA
			if g%2 == 1 {
				d = dB
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				c, o, err := w.DeepProvenanceObserved("fig2", d, false)
				if err != nil {
					if !errors.Is(err, ErrUnknownRun) && !errors.Is(err, ErrUnknownData) {
						t.Errorf("unexpected error: %v", err)
						return
					}
					continue
				}
				if o.Outcome == OutcomeMiss {
					servedMisses.Add(1)
					if o.Strategy != strategyLabels && o.Strategy != strategyBFS {
						t.Errorf("miss served by unexpected strategy %q", o.Strategy)
						return
					}
				}
				if !refs[d][closureKey(c)] {
					t.Errorf("closure of %s matches neither variant: %s", d, closureKey(c))
					return
				}
			}
		}(g)
	}
	variants := []*run.Run{variantB, variantA}
	for i := 0; i < 40; i++ {
		if err := w.DropRun("fig2"); err != nil {
			t.Fatal(err)
		}
		if err := w.LoadRun(variants[i%2]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Quiescent accounting: the toggle was on throughout, so every
	// *successful* closure computation was label-requested and must be
	// counted as exactly one hit or fallback (failed computes — unknown
	// run/data during a swap window — never reach the strategy dispatch).
	lc := w.LabelCounters()
	if lc.Hits+lc.Fallbacks != servedMisses.Load() {
		t.Fatalf("label accounting leak: hits=%d + fallbacks=%d != served misses=%d",
			lc.Hits, lc.Fallbacks, servedMisses.Load())
	}
	// The surviving labels are the ones built over the current index.
	l, ix := w.RunLabels("fig2"), w.RunIndex("fig2")
	if l == nil || ix == nil || l.Index() != ix {
		t.Fatalf("stale or missing labels after churn: labels=%p index=%p", l, ix)
	}
	c, err := w.DeepProvenance("fig2", dA)
	if err != nil || !refs[dA][closureKey(c)] {
		t.Fatalf("post-churn query broken: %v", err)
	}
}

// TestConcurrentLabelBackfillToggle races SetLabelIndex flips against
// queries and churn: whatever interleaving happens, a consulted label set
// is always the one built over the run's current index (answers stay
// correct), and the final state is internally consistent.
func TestConcurrentLabelBackfillToggle(t *testing.T) {
	w := loadedWarehouse(t)
	want, err := w.DeepProvenance("fig2", "d447")
	if err != nil {
		t.Fatal(err)
	}
	wantKey := closureKey(want)
	w.ResetCache()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c, err := w.DeepProvenance("fig2", "d447")
				if err != nil {
					if !errors.Is(err, ErrUnknownRun) {
						t.Errorf("unexpected error: %v", err)
						return
					}
					continue
				}
				if closureKey(c) != wantKey {
					t.Errorf("wrong closure: %s", closureKey(c))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			w.SetLabelIndex(i%2 == 0)
		}
	}()
	for i := 0; i < 30; i++ {
		if err := w.DropRun("fig2"); err != nil {
			t.Fatal(err)
		}
		if err := w.LoadRun(run.Figure2()); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if l, ix := w.RunLabels("fig2"), w.RunIndex("fig2"); l != nil && l.Index() != ix {
		t.Fatal("final state carries labels for a foreign index")
	}
	c, err := w.DeepProvenance("fig2", "d447")
	if err != nil || closureKey(c) != wantKey {
		t.Fatalf("post-toggle query broken: %v", err)
	}
}

// TestLabelDeclineWideRunFallback loads a run the label builder declines —
// 4097 mutually independent steps, one more parallel chain than the budget
// allows — and checks the query path: correct BFS answer, fallback
// counted, no labels in stats. (Width is measured on the induced step
// graph; a single step with thousands of inputs labels just fine.)
func TestLabelDeclineWideRunFallback(t *testing.T) {
	const parallel = 4097 // maxLabelChains + 1
	s := spec.New("wide")
	s.MustAddModule(spec.Module{Name: "W"})
	s.MustAddEdge(spec.Input, "W")
	s.MustAddEdge("W", spec.Output)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	r := run.NewRun("wide1", "wide")
	for i := 0; i < parallel; i++ {
		si := "S" + itoa(i)
		if err := r.AddStep(si, "W"); err != nil {
			t.Fatal(err)
		}
		if err := r.AddFlow(spec.Input, si, []string{"w" + itoa(i)}); err != nil {
			t.Fatal(err)
		}
		if err := r.AddFlow(si, spec.Output, []string{"o" + itoa(i)}); err != nil {
			t.Fatal(err)
		}
	}

	w := New(0)
	if err := w.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	w.SetLabelIndex(true)
	if err := w.LoadRun(r); err != nil {
		t.Fatal(err)
	}
	if w.RunLabels("wide1") != nil {
		t.Fatalf("label builder accepted a %d-parallel-step run", parallel)
	}
	if lc := w.LabelCounters(); lc.Builds != 0 {
		t.Fatalf("Builds = %d for a declined run", lc.Builds)
	}
	c, err := w.DeepProvenance("wide1", "o0")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSteps() != 1 || c.NumData() != 2 {
		t.Fatalf("closure = %d steps, %d data", c.NumSteps(), c.NumData())
	}
	if lc := w.LabelCounters(); lc.Hits != 0 || lc.Fallbacks != 1 {
		t.Fatalf("LabelCounters = %+v, want one fallback", lc)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
