package warehouse

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/run"
	"repro/internal/spec"
)

// legacyWarehouse is loadedWarehouse with the compact index disabled: the
// reference string/map query path.
func legacyWarehouse(t *testing.T) *Warehouse {
	t.Helper()
	w := New(0)
	w.SetCompactIndex(false)
	mustT(t, w.RegisterSpec(spec.Phylogenomics()))
	mustT(t, w.LoadRun(run.Figure2()))
	return w
}

// TestIndexedClosureMatchesLegacy compares the bitset closure against the
// legacy string BFS for every data object of Figure 2, in both directions.
func TestIndexedClosureMatchesLegacy(t *testing.T) {
	wi := loadedWarehouse(t)
	wl := legacyWarehouse(t)
	r, _ := wi.Run("fig2")
	for _, d := range r.AllData() {
		for name, query := range map[string]func(*Warehouse) (*Closure, error){
			"provenance": func(w *Warehouse) (*Closure, error) { return w.DeepProvenance("fig2", d) },
			"derivation": func(w *Warehouse) (*Closure, error) { return w.DeepDerivation("fig2", d) },
		} {
			ci, err := query(wi)
			if err != nil {
				t.Fatalf("%s(%s) indexed: %v", name, d, err)
			}
			cl, err := query(wl)
			if err != nil {
				t.Fatalf("%s(%s) legacy: %v", name, d, err)
			}
			if _, _, _, ok := ci.Bits(); !ok {
				t.Fatalf("%s(%s): indexed warehouse returned a map closure", name, d)
			}
			if _, _, _, ok := cl.Bits(); ok {
				t.Fatalf("%s(%s): legacy warehouse returned a bitset closure", name, d)
			}
			if !reflect.DeepEqual(ci.StepSet(), cl.StepSet()) {
				t.Fatalf("%s(%s): steps differ\nindexed %v\nlegacy  %v", name, d, ci.StepSet(), cl.StepSet())
			}
			if !reflect.DeepEqual(ci.DataSet(), cl.DataSet()) {
				t.Fatalf("%s(%s): data differ\nindexed %v\nlegacy  %v", name, d, ci.DataSet(), cl.DataSet())
			}
		}
	}
}

// TestClosureFacade pins the facade invariants: Has* agrees with the lazy
// map views, counts agree, and the maps are per-instance (mutating one
// caller's view cannot poison another's).
func TestClosureFacade(t *testing.T) {
	w := loadedWarehouse(t)
	c, err := w.DeepProvenance("fig2", "d447")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.StepSet()) != c.NumSteps() || len(c.DataSet()) != c.NumData() {
		t.Fatalf("lazy maps disagree with counts: %d/%d vs %d/%d",
			len(c.StepSet()), len(c.DataSet()), c.NumSteps(), c.NumData())
	}
	for s := range c.StepSet() {
		if !c.HasStep(s) {
			t.Fatalf("HasStep(%s) false but in StepSet", s)
		}
	}
	for d := range c.DataSet() {
		if !c.HasData(d) {
			t.Fatalf("HasData(%s) false but in DataSet", d)
		}
	}
	if c.HasStep("ghost") || c.HasData("ghost") {
		t.Fatal("facade invented members")
	}
	if c.Size() != c.NumSteps()+c.NumData() {
		t.Fatalf("Size = %d", c.Size())
	}
	delete(c.StepSet(), "S1")
	c2, err := w.DeepProvenance("fig2", "d447")
	if err != nil || !c2.HasStep("S1") {
		t.Fatal("cache poisoned through a materialized map view")
	}
}

// TestSetCompactIndexScope: toggling affects only subsequently loaded runs.
func TestSetCompactIndexScope(t *testing.T) {
	w := New(0)
	mustT(t, w.RegisterSpec(spec.Phylogenomics()))
	mustT(t, w.LoadRun(run.Figure2()))
	if w.RunIndex("fig2") == nil {
		t.Fatal("default load built no index")
	}
	w.SetCompactIndex(false)
	if w.RunIndex("fig2") == nil {
		t.Fatal("toggling dropped an existing run's index")
	}
	mustT(t, w.LoadRun(figure2As(t, "fig2b")))
	if w.RunIndex("fig2b") != nil {
		t.Fatal("run loaded under SetCompactIndex(false) got an index")
	}
	st := w.Stats()
	if st.Index.IndexedRuns != 1 {
		t.Fatalf("IndexedRuns = %d, want 1", st.Index.IndexedRuns)
	}
	w.SetCompactIndex(true)
	mustT(t, w.LoadRun(figure2As(t, "fig2c")))
	if w.RunIndex("fig2c") == nil {
		t.Fatal("re-enabled compact index not built")
	}
}

// figure2As rebuilds the Figure 2 run under a different id via its log.
func figure2As(t *testing.T, id string) *run.Run {
	t.Helper()
	events, err := run.Figure2().ToLog()
	if err != nil {
		t.Fatal(err)
	}
	r, err := run.FromLog(id, "phylogenomics", events)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestIndexDroppedWithRun: DropRun discards the index along with the run.
func TestIndexDroppedWithRun(t *testing.T) {
	w := loadedWarehouse(t)
	if w.RunIndex("fig2") == nil {
		t.Fatal("no index after load")
	}
	if err := w.DropRun("fig2"); err != nil {
		t.Fatal(err)
	}
	if w.RunIndex("fig2") != nil {
		t.Fatal("index survived DropRun")
	}
	if st := w.Stats(); st.Index.IndexedRuns != 0 || st.Index.CSRBytes != 0 {
		t.Fatalf("stats still count dropped index: %+v", st.Index)
	}
}

// TestIndexStatsSurface: Stats carries the aggregate index footprint and
// renders it.
func TestIndexStatsSurface(t *testing.T) {
	w := loadedWarehouse(t)
	st := w.Stats()
	if st.Index.IndexedRuns != 1 {
		t.Fatalf("IndexedRuns = %d", st.Index.IndexedRuns)
	}
	if st.Index.InternedSteps != st.Steps || st.Index.InternedData != st.DataObjects {
		t.Fatalf("interned counts diverge from catalog counts: %+v vs steps=%d data=%d",
			st.Index, st.Steps, st.DataObjects)
	}
	if st.Index.CSRBytes <= 0 || st.Index.ClosureWords <= 0 {
		t.Fatalf("footprint missing: %+v", st.Index)
	}
	for _, want := range []string{"index[runs=1", "csr=", "closure="} {
		if !contains(st.String(), want) {
			t.Fatalf("Stats.String() = %q missing %q", st.String(), want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestConcurrentIndexedClosures hammers the indexed BFS and the lazy map
// materialization from many goroutines — the sync.Once facade and the shared
// frozen bitsets must be race-free (run under -race).
func TestConcurrentIndexedClosures(t *testing.T) {
	w := loadedWarehouse(t)
	r, _ := w.Run("fig2")
	data := r.AllData()
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for j := 0; j < len(data); j++ {
				d := data[(j+g*len(data)/goroutines)%len(data)]
				c, err := w.DeepProvenance("fig2", d)
				if err != nil {
					t.Errorf("query %s: %v", d, err)
					return
				}
				if !c.HasData(d) {
					t.Errorf("closure of %s lost its root", d)
					return
				}
				// Alternate access styles so bitset reads and lazy map
				// materialization race against each other across clones.
				switch g % 3 {
				case 0:
					_ = c.StepSet()
				case 1:
					_ = c.DataSet()
				default:
					_ = c.NumSteps() + c.NumData()
				}
			}
		}(g)
	}
	wg.Wait()
}
