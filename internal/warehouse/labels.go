package warehouse

import (
	"repro/internal/bitset"
	"repro/internal/run"
)

// The label query path. On top of the compact run index (index.go) the
// warehouse can carry a reachability label index per run (run.Labels): a
// chain decomposition of the bipartite provenance DAG with per-chain
// interval labels, built once at load time, that turns a deep-provenance
// closure into k prefix scans over flat arrays — no traversal, no visited
// set. SetLabelIndex turns it on; queries fall back to the bitset BFS
// whenever labels are absent (label indexing off, the build declined a run
// wider than the label budget) or stale (the label set's index is no longer
// the run's index) — the fallback is counted, never silent.

// ClosureStrategy selects how an individual closure computation runs.
type ClosureStrategy uint8

const (
	// StrategyAuto follows the warehouse's SetLabelIndex toggle: labels
	// when the run has a fresh label index, bitset BFS otherwise.
	StrategyAuto ClosureStrategy = iota
	// StrategyLabels prefers the label index regardless of the toggle,
	// still falling back (and counting the fallback) when the run has no
	// usable labels.
	StrategyLabels
	// StrategyBFS forces the traversal path, ignoring any labels.
	StrategyBFS
)

// String returns the label used in traces and query responses.
func (s ClosureStrategy) String() string {
	switch s {
	case StrategyLabels:
		return "labels"
	case StrategyBFS:
		return "bfs"
	}
	return "auto"
}

// Strategy names reported in Observation.Strategy and query traces: which
// computation actually ran (as opposed to which was requested).
const (
	strategyLabels = "labels"
	strategyBFS    = "bfs"
	strategyLegacy = "legacy"
)

// SetLabelIndex enables or disables the reachability label index. Enabling
// builds labels for every already-loaded indexed run (the builds run
// outside the catalog lock, so concurrent queries keep flowing — they use
// the BFS until the labels attach) and for every run loaded from now on.
// Disabling drops all label sets and routes StrategyAuto queries back to
// the BFS. Runs whose decomposition exceeds the label budget never get
// labels; queries against them count fallbacks instead.
func (w *Warehouse) SetLabelIndex(enabled bool) {
	if !enabled {
		w.mu.Lock()
		w.labelIndex = false
		for _, rt := range w.runs {
			if lz := rt.lazy; lz != nil {
				lz.buildLabels.Store(false)
			}
			rt.labels = nil
		}
		w.mu.Unlock()
		return
	}
	w.mu.Lock()
	w.labelIndex = true
	type pending struct {
		id string
		rt *runTables
		ix *run.Index
	}
	var todo []pending
	for id, rt := range w.runs {
		if lz := rt.lazy; lz != nil && !lz.done.Load() {
			// Not materialized yet (or failed): ask materialization to build
			// labels when it happens instead of forcing every run resident.
			lz.buildLabels.Store(true)
			continue
		}
		if rt.index != nil && rt.labels == nil {
			todo = append(todo, pending{id, rt, rt.index})
		}
	}
	w.mu.Unlock()

	for _, p := range todo {
		l := p.ix.BuildLabels()
		if l == nil {
			continue
		}
		w.mu.Lock()
		// Attach only if the run is still the one we labeled: a drop and
		// re-ingest between the snapshot and here swapped rt out of the
		// catalog (or swapped its index), and those labels must die with it.
		if cur, ok := w.runs[p.id]; ok && cur == p.rt && cur.index == p.ix && w.labelIndex {
			cur.labels = l
			w.observeLabelBuild()
		}
		w.mu.Unlock()
	}
}

// LabelIndexEnabled reports whether SetLabelIndex(true) is in effect.
func (w *Warehouse) LabelIndexEnabled() bool {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.labelIndex
}

// RunLabels returns a loaded run's label index, or nil when the run has
// none (labels off, build declined, or unknown run).
func (w *Warehouse) RunLabels(runID string) *run.Labels {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		return nil
	}
	rt, ok := w.runs[runID]
	if !ok {
		return nil
	}
	if err := w.resolveLocked(rt); err != nil {
		return nil
	}
	return rt.labels
}

// labelsFor resolves the label index to use for one closure computation
// under rt, or nil when the computation must take the BFS path. Callers
// hold w.mu (read); the pointer-identity check is the staleness fence at
// the data-structure level — even if a stale runTables were ever consulted,
// labels built over a different index are refused.
func (w *Warehouse) labelsFor(rt *runTables, strat ClosureStrategy) *run.Labels {
	if strat != StrategyLabels && (strat != StrategyAuto || !w.labelIndex) {
		return nil
	}
	// Label-requested from here on: the computation is served by labels
	// (the caller counts the hit) or counted as a fallback, never silent —
	// Hits + Fallbacks account for every label-requested computation.
	if rt.index == nil || rt.labels == nil || rt.labels.Index() != rt.index {
		w.observeLabelFallback()
		return nil
	}
	return rt.labels
}

// labelProvenanceClosure materializes the deep provenance of d from the
// label index: one prefix scan per chain instead of a BFS.
func labelProvenanceClosure(l *run.Labels, d string) *Closure {
	ix := l.Index()
	root, _ := ix.DataID(d)
	stepBits := bitset.New(ix.NumSteps())
	dataBits := bitset.New(ix.NumData())
	l.ProvenanceInto(root, stepBits, dataBits)
	return newBitClosure(d, ix, stepBits, dataBits)
}

// labelDerivationClosure materializes the deep derivation of d from the
// label index (suffix scans).
func labelDerivationClosure(l *run.Labels, d string) *Closure {
	ix := l.Index()
	root, _ := ix.DataID(d)
	stepBits := bitset.New(ix.NumSteps())
	dataBits := bitset.New(ix.NumData())
	l.DerivationInto(root, stepBits, dataBits)
	return newBitClosure(d, ix, stepBits, dataBits)
}

// LabelCounters snapshot the label lifecycle: Builds counts label indexes
// successfully built (load-time and SetLabelIndex backfills), Hits counts
// closure computations served by labels, and Fallbacks counts computations
// that wanted labels but took the BFS because the run had none (declined
// build, labels disabled between request and compute, or a stale label
// set). At any quiescent point Hits + Fallbacks equals the label-requested
// closure computations — every such query is accounted one way or the
// other, which the staleness regression test pins.
type LabelCounters struct {
	Builds    int64
	Hits      int64
	Fallbacks int64
}

// LabelCounters returns the current label lifecycle counters.
func (w *Warehouse) LabelCounters() LabelCounters {
	return LabelCounters{
		Builds:    w.labelBuilds.Load(),
		Hits:      w.labelHits.Load(),
		Fallbacks: w.labelFallbacks.Load(),
	}
}

// LabelsStats aggregates the per-run label footprints plus the lifecycle
// counters — the Labels section of Warehouse.Stats.
type LabelsStats struct {
	// Enabled mirrors the SetLabelIndex toggle.
	Enabled bool
	// LabeledRuns counts runs currently carrying a label index; Chains and
	// LabelBytes sum their decomposition sizes and label memory.
	LabeledRuns int
	Chains      int
	LabelBytes  int
	// Builds, Hits and Fallbacks are the LabelCounters.
	Builds, Hits, Fallbacks int64
}

// labelStatsLocked aggregates label stats; callers hold w.mu.
func (w *Warehouse) labelStatsLocked() LabelsStats {
	st := LabelsStats{
		Enabled:   w.labelIndex,
		Builds:    w.labelBuilds.Load(),
		Hits:      w.labelHits.Load(),
		Fallbacks: w.labelFallbacks.Load(),
	}
	for _, rt := range w.runs {
		if lz := rt.lazy; lz != nil && !lz.done.Load() {
			continue // unmaterialized v3 run: no labels resident yet
		}
		if rt.labels == nil {
			continue
		}
		s := rt.labels.Stats()
		st.LabeledRuns++
		st.Chains += s.Chains
		st.LabelBytes += s.LabelBytes
	}
	return st
}
