package warehouse

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/run"
	"repro/internal/spec"
)

func loadedWarehouse(t testing.TB) *Warehouse {
	t.Helper()
	w := New(0)
	if err := w.RegisterSpec(spec.Phylogenomics()); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadRun(run.Figure2()); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRegisterSpecValidation(t *testing.T) {
	w := New(0)
	bad := spec.New("bad")
	bad.MustAddModule(spec.Module{Name: "A"})
	if err := w.RegisterSpec(bad); err == nil {
		t.Fatal("invalid spec registered")
	}
	if err := w.RegisterSpec(spec.Phylogenomics()); err != nil {
		t.Fatal(err)
	}
	if err := w.RegisterSpec(spec.Phylogenomics()); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate spec: %v", err)
	}
	if _, err := w.Spec("nope"); !errors.Is(err, ErrUnknownSpec) {
		t.Fatalf("unknown spec: %v", err)
	}
	if got := w.SpecNames(); !reflect.DeepEqual(got, []string{"phylogenomics"}) {
		t.Fatalf("SpecNames = %v", got)
	}
}

func TestRegisterView(t *testing.T) {
	w := loadedWarehouse(t)
	s, _ := w.Spec("phylogenomics")
	joe, err := core.BuildRelevant(s, spec.PhyloRelevantJoe())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RegisterView("joe", joe); err != nil {
		t.Fatal(err)
	}
	if err := w.RegisterView("joe", joe); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate view: %v", err)
	}
	if _, err := w.View("phylogenomics", "joe"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.View("phylogenomics", "nope"); !errors.Is(err, ErrUnknownView) {
		t.Fatalf("unknown view: %v", err)
	}
	if _, err := w.View("nope", "joe"); !errors.Is(err, ErrUnknownSpec) {
		t.Fatalf("unknown spec: %v", err)
	}
	foreign := core.UAdmin(spec.New("ghost"))
	if err := w.RegisterView("x", foreign); !errors.Is(err, ErrUnknownSpec) {
		t.Fatalf("foreign view: %v", err)
	}
	if got := w.ViewNames("phylogenomics"); !reflect.DeepEqual(got, []string{"joe"}) {
		t.Fatalf("ViewNames = %v", got)
	}
}

func TestLoadRunChecks(t *testing.T) {
	w := New(0)
	if err := w.LoadRun(run.Figure2()); !errors.Is(err, ErrUnknownSpec) {
		t.Fatalf("run without spec: %v", err)
	}
	mustT(t, w.RegisterSpec(spec.Phylogenomics()))
	mustT(t, w.LoadRun(run.Figure2()))
	if err := w.LoadRun(run.Figure2()); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate run: %v", err)
	}
	// Non-conformant run rejected.
	bad := run.NewRun("bad", "phylogenomics")
	mustT(t, bad.AddStep("S1", "M1"))
	mustT(t, bad.AddStep("S2", "M7"))
	mustT(t, bad.AddFlow(spec.Input, "S1", []string{"x1"}))
	mustT(t, bad.AddFlow("S1", "S2", []string{"x2"}))
	mustT(t, bad.AddFlow("S2", spec.Output, []string{"x3"}))
	if err := w.LoadRun(bad); !errors.Is(err, run.ErrNonConformant) {
		t.Fatalf("non-conformant run: %v", err)
	}
	if w.NumRuns() != 1 {
		t.Fatalf("NumRuns = %d", w.NumRuns())
	}
	if got := w.RunsOfSpec("phylogenomics"); !reflect.DeepEqual(got, []string{"fig2"}) {
		t.Fatalf("RunsOfSpec = %v", got)
	}
	if _, err := w.Run("ghost"); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("unknown run: %v", err)
	}
}

func TestLoadLog(t *testing.T) {
	w := New(0)
	mustT(t, w.RegisterSpec(spec.Phylogenomics()))
	orig := run.Figure2()
	events, err := orig.ToLog()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.LoadLog("fromlog", "phylogenomics", events); err != nil {
		t.Fatal(err)
	}
	r, err := w.Run("fromlog")
	if err != nil {
		t.Fatal(err)
	}
	if r.NumSteps() != orig.NumSteps() || r.NumData() != orig.NumData() {
		t.Fatal("log-loaded run differs from original")
	}
}

func TestConnectByGeneric(t *testing.T) {
	parents := map[string][]string{
		"a": {"b", "c"},
		"b": {"d"},
		"c": {"d"},
		"d": nil,
	}
	got := ConnectBy([]string{"a"}, func(k string) []string { return parents[k] })
	if !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("ConnectBy = %v", got)
	}
	// Cycles terminate.
	loop := map[string][]string{"x": {"y"}, "y": {"x"}}
	got = ConnectBy([]string{"x"}, func(k string) []string { return loop[k] })
	if len(got) != 2 {
		t.Fatalf("cycle closure = %v", got)
	}
	// Duplicate starts collapse.
	got = ConnectBy([]string{"a", "a"}, func(k string) []string { return nil })
	if len(got) != 1 {
		t.Fatalf("duplicate starts: %v", got)
	}
}

func TestDeepProvenanceD447(t *testing.T) {
	// "the provenance of the final data object d447 in Figure 2 would
	// include every data object (d1..) and every step (S1..S10)".
	w := loadedWarehouse(t)
	c, err := w.DeepProvenance("fig2", "d447")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSteps() != 10 {
		t.Fatalf("steps = %d, want all 10", c.NumSteps())
	}
	r, _ := w.Run("fig2")
	if c.NumData() != r.NumData() {
		t.Fatalf("data = %d, want all %d", c.NumData(), r.NumData())
	}
	if !c.HasData("d447") || c.Root != "d447" {
		t.Fatal("root missing")
	}
}

func TestDeepProvenanceD413(t *testing.T) {
	// Deep provenance of d413 includes S2 with inputs {d308..d408} but not
	// the annotation branch (S7..S9) nor the final step S10.
	w := loadedWarehouse(t)
	c, err := w.DeepProvenance("fig2", "d413")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"S1", "S2", "S3", "S4", "S5", "S6"} {
		if !c.HasStep(s) {
			t.Fatalf("step %s missing", s)
		}
	}
	for _, s := range []string{"S7", "S8", "S9", "S10"} {
		if c.HasStep(s) {
			t.Fatalf("step %s should not be in provenance of d413", s)
		}
	}
	for _, d := range []string{"d308", "d408", "d410", "d411", "d412", "d1"} {
		if !c.HasData(d) {
			t.Fatalf("data %s missing", d)
		}
	}
	if c.HasData("d446") || c.HasData("d202") {
		t.Fatal("annotation-branch data leaked into d413's provenance")
	}
}

func TestDeepProvenanceExternalData(t *testing.T) {
	w := loadedWarehouse(t)
	c, err := w.DeepProvenance("fig2", "d1")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSteps() != 0 || c.NumData() != 1 {
		t.Fatalf("external data closure: steps=%d data=%d", c.NumSteps(), c.NumData())
	}
}

func TestDeepProvenanceErrors(t *testing.T) {
	w := loadedWarehouse(t)
	if _, err := w.DeepProvenance("ghost", "d1"); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("unknown run: %v", err)
	}
	if _, err := w.DeepProvenance("fig2", "d9999"); !errors.Is(err, ErrUnknownData) {
		t.Fatalf("unknown data: %v", err)
	}
}

func TestDeepDerivation(t *testing.T) {
	w := loadedWarehouse(t)
	c, err := w.DeepDerivation("fig2", "d410")
	if err != nil {
		t.Fatal(err)
	}
	// d410 -> S4 -> d411 -> S5 -> d412 -> S6 -> d413 -> S10 -> d447.
	for _, s := range []string{"S4", "S5", "S6", "S10"} {
		if !c.HasStep(s) {
			t.Fatalf("step %s missing from derivation", s)
		}
	}
	for _, d := range []string{"d411", "d412", "d413", "d447"} {
		if !c.HasData(d) {
			t.Fatalf("data %s missing from derivation", d)
		}
	}
	if c.HasStep("S1") || c.HasData("d308") {
		t.Fatal("upstream data leaked into derivation")
	}
	if _, err := w.DeepDerivation("fig2", "nope"); !errors.Is(err, ErrUnknownData) {
		t.Fatalf("unknown data: %v", err)
	}
	if _, err := w.DeepDerivation("ghost", "d1"); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("unknown run: %v", err)
	}
}

func TestImmediateProvenance(t *testing.T) {
	w := loadedWarehouse(t)
	step, inputs, err := w.ImmediateProvenance("fig2", "d413")
	if err != nil {
		t.Fatal(err)
	}
	if step != "S6" || !reflect.DeepEqual(inputs, []string{"d412"}) {
		t.Fatalf("immediate provenance of d413 = %s %v", step, inputs)
	}
	step, inputs, err = w.ImmediateProvenance("fig2", "d1")
	if err != nil || step != "" || inputs != nil {
		t.Fatalf("external: %s %v %v", step, inputs, err)
	}
	if _, _, err := w.ImmediateProvenance("fig2", "nope"); !errors.Is(err, ErrUnknownData) {
		t.Fatalf("unknown data: %v", err)
	}
	if _, _, err := w.ImmediateProvenance("ghost", "d1"); !errors.Is(err, ErrUnknownRun) {
		t.Fatalf("unknown run: %v", err)
	}
}

func TestClosureCacheBehavior(t *testing.T) {
	w := loadedWarehouse(t)
	if _, err := w.DeepProvenance("fig2", "d447"); err != nil {
		t.Fatal(err)
	}
	h0, m0 := w.CacheStats()
	if h0 != 0 || m0 != 1 {
		t.Fatalf("after first query: hits=%d misses=%d", h0, m0)
	}
	if _, err := w.DeepProvenance("fig2", "d447"); err != nil {
		t.Fatal(err)
	}
	h1, _ := w.CacheStats()
	if h1 != 1 {
		t.Fatalf("second query did not hit cache: hits=%d", h1)
	}
	// Mutating a returned closure must not poison the cache.
	c, _ := w.DeepProvenance("fig2", "d447")
	delete(c.StepSet(), "S1")
	c2, _ := w.DeepProvenance("fig2", "d447")
	if !c2.HasStep("S1") {
		t.Fatal("cache poisoned through returned closure")
	}
	w.ResetCache()
	h, m := w.CacheStats()
	if h != 0 || m != 0 {
		t.Fatal("ResetCache did not clear stats")
	}
}

func TestClosureCacheEviction(t *testing.T) {
	w := New(2) // tiny cache
	mustT(t, w.RegisterSpec(spec.Phylogenomics()))
	mustT(t, w.LoadRun(run.Figure2()))
	for _, d := range []string{"d447", "d413", "d410"} {
		if _, err := w.DeepProvenance("fig2", d); err != nil {
			t.Fatal(err)
		}
	}
	// d447 (least recently used) was evicted: querying it again misses.
	_, m0 := w.CacheStats()
	if _, err := w.DeepProvenance("fig2", "d447"); err != nil {
		t.Fatal(err)
	}
	_, m1 := w.CacheStats()
	if m1 != m0+1 {
		t.Fatalf("expected eviction miss: misses %d -> %d", m0, m1)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	w := loadedWarehouse(t)
	s, _ := w.Spec("phylogenomics")
	joe, _ := core.BuildRelevant(s, spec.PhyloRelevantJoe())
	mustT(t, w.RegisterView("joe", joe))
	r0, _ := w.Run("fig2")
	mustT(t, r0.AnnotateInput("d1", map[string]string{"who": "joe"}))

	var buf bytes.Buffer
	if err := w.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(buf.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.SpecNames(), w.SpecNames()) {
		t.Fatal("specs differ after round trip")
	}
	if !reflect.DeepEqual(back.RunIDs(), w.RunIDs()) {
		t.Fatal("runs differ after round trip")
	}
	v, err := back.View("phylogenomics", "joe")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(joe) {
		t.Fatal("view differs after round trip")
	}
	// Provenance answers must be identical.
	a, _ := w.DeepProvenance("fig2", "d413")
	b, _ := back.DeepProvenance("fig2", "d413")
	if !reflect.DeepEqual(a.StepSet(), b.StepSet()) || !reflect.DeepEqual(a.DataSet(), b.DataSet()) {
		t.Fatal("provenance differs after round trip")
	}
	// Input metadata survives the round trip.
	rr, _ := back.Run("fig2")
	if got := rr.InputMeta("d1"); got["who"] != "joe" {
		t.Fatalf("metadata lost: %v", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("{")), 0); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, err := Load(bytes.NewReader([]byte(`{"views":[{"spec":"ghost","name":"v","blocks":{}}]}`)), 0); err == nil {
		t.Fatal("dangling view accepted")
	}
}

func TestConcurrentQueries(t *testing.T) {
	w := loadedWarehouse(t)
	r, _ := w.Run("fig2")
	data := r.AllData()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for j := off; j < len(data); j += 8 {
				if _, err := w.DeepProvenance("fig2", data[j]); err != nil {
					t.Errorf("concurrent query: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func mustT(t testing.TB, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
