// Package warehouse is the provenance warehouse of the ZOOM architecture
// (Section IV, Figure 8). The paper stores specifications, user-view
// definitions, and per-run step/data information in an Oracle 10g database
// and answers deep-provenance queries with recursive SQL (CONNECT BY)
// extended by stored procedures; this package is the embedded pure-Go
// equivalent: typed relational tables with hash indexes, a ConnectBy
// recursive operator, and the temporary-table cache that makes switching
// user views on an already-queried run nearly free (the paper measures
// ~13 ms for a switch versus up to seconds for the first query).
//
// The warehouse is a concurrent query-serving layer. Loads take the write
// lock, queries the read lock, and the closure cache is sharded into
// lock-striped LRU stripes with a per-key singleflight so many goroutines
// can answer deep-provenance queries at once without duplicating work (see
// cache.go for the full protocol).
package warehouse

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/wflog"
)

// Errors reported by the warehouse.
var (
	ErrUnknownSpec = errors.New("warehouse: unknown specification")
	ErrUnknownRun  = errors.New("warehouse: unknown run")
	ErrUnknownView = errors.New("warehouse: unknown view")
	ErrUnknownData = errors.New("warehouse: unknown data object")
	ErrDuplicate   = errors.New("warehouse: duplicate identifier")
	// ErrClosed is returned by every run-touching operation after Close.
	// A closed warehouse has released its snapshot mapping, so queries
	// must fail cleanly rather than reach into unmapped memory.
	ErrClosed = errors.New("warehouse: closed")
)

// Warehouse holds the provenance tables.
//
// Thread-safety contract: every exported method is safe for concurrent
// use by multiple goroutines. Catalog state (specs, views, runs) is
// guarded by mu; runs are immutable once loaded, so queries may retain
// *run.Run pointers after releasing the lock. Closure queries
// (DeepProvenance) additionally go through the sharded closure cache,
// whose counters are atomic and whose misses are coalesced per key by a
// singleflight. Mutators that remove state (DropRun, Invalidate,
// ResetCache) bump the affected runs' cache generations so concurrent
// in-flight computations can never re-populate the cache with stale
// results.
type Warehouse struct {
	mu sync.RWMutex

	specs map[string]*spec.Spec                // spec name -> spec
	views map[string]map[string]*core.UserView // spec name -> view name -> view
	runs  map[string]*runTables                // run id -> per-run tables

	// noIndex disables building the compact run index for subsequently
	// loaded runs (SetCompactIndex) — the legacy string/map query path.
	noIndex bool

	// labelIndex enables building reachability labels (run.Labels) on top
	// of the compact index for subsequently loaded runs, and selects the
	// label-backed closure path for StrategyAuto queries (SetLabelIndex).
	labelIndex bool

	// Label lifecycle counters (see LabelCounters): successful builds,
	// closure computations served by labels, and label-requested
	// computations that fell back to the BFS because labels were absent,
	// declined, or stale.
	labelBuilds    atomic.Int64
	labelHits      atomic.Int64
	labelFallbacks atomic.Int64

	cache *closureCache

	// snap describes the snapshot this warehouse was opened from (nil for
	// live warehouses and v1/v2 loads): format version, whether the file is
	// memory-mapped, and the mapping to release on Close. closed flips once
	// under the write lock; every reader that could touch mapped memory
	// checks it first.
	snap   *snapshotInfo
	closed bool

	// metricsReg/obs are the attached observability registry and the
	// warehouse's instruments resolved from it (both nil when detached —
	// the common case). Published atomically so AttachMetrics is safe
	// against concurrent ingest; see metrics.go.
	metricsReg atomic.Pointer[obs.Registry]
	obs        atomic.Pointer[warehouseMetrics]
}

// runTables is the per-run slice of the relational schema: the Steps,
// Produced and Consumed relations plus the hash indexes the queries use.
// index is the immutable compact representation (interned ids + CSR
// adjacency) built at load time; it is dropped with the run, so DropRun
// invalidates it together with the run's cached closures. labels is the
// optional reachability label index over that same index (nil when label
// indexing is off or the build declined the run); the label query path
// checks labels.Index() == index before consulting it, so a label set can
// never outlive the index it was built over.
type runTables struct {
	specName string
	run      *run.Run
	index    *run.Index
	labels   *run.Labels

	// lazy, when non-nil, holds a v3 snapshot run that has not necessarily
	// materialized yet: run/index/labels are populated on first use through
	// lazy.once (resolveLocked), which also publishes the writes to every
	// other lock holder. Readers that must not force a build check
	// lazy.done instead.
	lazy *lazyRun
}

// resolveLocked materializes a lazily-opened run if it has not been yet.
// Callers hold w.mu (read or write); the sync.Once inside lazyRun both
// serializes the build among concurrent read-lock holders and gives every
// caller a happens-before edge to the published runTables fields.
func (w *Warehouse) resolveLocked(rt *runTables) error {
	lz := rt.lazy
	if lz == nil {
		return nil
	}
	lz.once.Do(func() { lz.materialize(rt, w) })
	return lz.err
}

// New returns an empty warehouse. cacheSize bounds the number of cached
// UAdmin closures (the "temporary tables"); zero selects the default 1024.
func New(cacheSize int) *Warehouse {
	if cacheSize <= 0 {
		cacheSize = 1024
	}
	return &Warehouse{
		specs: make(map[string]*spec.Spec),
		views: make(map[string]map[string]*core.UserView),
		runs:  make(map[string]*runTables),
		cache: newClosureCache(cacheSize),
	}
}

// RegisterSpec stores a workflow specification. The specification is
// validated first; duplicate names are rejected.
func (w *Warehouse) RegisterSpec(s *spec.Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.specs[s.Name()]; dup {
		return fmt.Errorf("%w: spec %q", ErrDuplicate, s.Name())
	}
	w.specs[s.Name()] = s
	w.views[s.Name()] = make(map[string]*core.UserView)
	return nil
}

// Spec returns a registered specification.
func (w *Warehouse) Spec(name string) (*spec.Spec, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	s, ok := w.specs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSpec, name)
	}
	return s, nil
}

// SpecNames lists registered specifications, sorted.
func (w *Warehouse) SpecNames() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, 0, len(w.specs))
	for n := range w.specs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RegisterView stores a named user view for a registered specification.
func (w *Warehouse) RegisterView(name string, v *core.UserView) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	specName := v.Spec().Name()
	vs, ok := w.views[specName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSpec, specName)
	}
	if _, dup := vs[name]; dup {
		return fmt.Errorf("%w: view %q of %q", ErrDuplicate, name, specName)
	}
	vs[name] = v
	return nil
}

// View returns a registered view of a specification.
func (w *Warehouse) View(specName, viewName string) (*core.UserView, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	vs, ok := w.views[specName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSpec, specName)
	}
	v, ok := vs[viewName]
	if !ok {
		return nil, fmt.Errorf("%w: %q of %q", ErrUnknownView, viewName, specName)
	}
	return v, nil
}

// ViewNames lists the views registered for a specification, sorted.
func (w *Warehouse) ViewNames(specName string) []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var out []string
	for n := range w.views[specName] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LoadRun stores a validated run. Its specification must be registered and
// the run must conform to it.
//
// The expensive part of a load — structural validation, spec conformance,
// and the compact-index build — runs *outside* the catalog lock, so many
// goroutines can ingest runs concurrently (the parallel snapshot loader and
// live multi-run ingestion both lean on this); only the brief catalog
// insert serializes. Duplicate ids are re-checked under the write lock, so
// two racing loads of the same id still resolve to exactly one winner.
func (w *Warehouse) LoadRun(r *run.Run) error {
	w.mu.RLock()
	closed := w.closed
	s, ok := w.specs[r.SpecName()]
	_, dup := w.runs[r.ID()]
	noIndex := w.noIndex
	buildLabels := w.labelIndex
	w.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSpec, r.SpecName())
	}
	if dup {
		return fmt.Errorf("%w: run %q", ErrDuplicate, r.ID())
	}
	if err := r.Validate(); err != nil {
		return err
	}
	if err := r.ConformsTo(s); err != nil {
		return err
	}
	rt := &runTables{specName: r.SpecName(), run: r}
	if !noIndex {
		rt.index = r.Index()
		if buildLabels {
			if rt.labels = rt.index.BuildLabels(); rt.labels != nil {
				w.observeLabelBuild()
			}
		}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if _, dup := w.runs[r.ID()]; dup {
		return fmt.Errorf("%w: run %q", ErrDuplicate, r.ID())
	}
	w.runs[r.ID()] = rt
	w.observeRunLoaded()
	return nil
}

// LoadLog ingests an event log, reconstructing the run it describes — the
// paper's "extractor" that populates the warehouse from workflow-system
// logs during or after execution.
func (w *Warehouse) LoadLog(runID, specName string, events []wflog.Event) error {
	r, err := run.FromLog(runID, specName, events)
	if err != nil {
		return err
	}
	return w.LoadRun(r)
}

// LoadLogReader streams a JSON-lines workflow log from src into run
// construction, one event at a time — no []Event slice is ever
// materialized, so log size is bounded by the run it describes, not by the
// event count. The run only becomes visible to queries after the whole
// stream has validated and loaded, exactly like LoadLog. It returns the
// number of events ingested.
func (w *Warehouse) LoadLogReader(runID, specName string, src io.Reader) (int, error) {
	start := w.metricsTime()
	dec := wflog.NewDecoder(src)
	l := run.NewLogLoader(runID, specName)
	for dec.Next() {
		if err := l.Add(dec.Event()); err != nil {
			return l.NumEvents(), err
		}
	}
	if err := dec.Err(); err != nil {
		return l.NumEvents(), err
	}
	r, err := l.Finish()
	if err != nil {
		return l.NumEvents(), err
	}
	if err := w.LoadRun(r); err != nil {
		return l.NumEvents(), err
	}
	w.observeLogIngest(l.NumEvents(), start)
	return l.NumEvents(), nil
}

// Run returns a loaded run, materializing it first when the warehouse was
// opened from a v3 snapshot.
func (w *Warehouse) Run(id string) (*run.Run, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		return nil, ErrClosed
	}
	rt, ok := w.runs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRun, id)
	}
	if err := w.resolveLocked(rt); err != nil {
		return nil, err
	}
	return rt.run, nil
}

// Close releases the resources behind a snapshot-opened warehouse — in
// particular the memory mapping a v3 open holds, after which none of the
// mapping-backed index slices may be touched again. Every subsequent
// run-touching operation returns ErrClosed; callers must drain in-flight
// queries first (Close takes the write lock, so it cannot overlap one).
// Closing a live warehouse just marks it closed. Close is idempotent.
func (w *Warehouse) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	// Cached closures can hold index pointers; drop them with the mapping.
	w.cache.reset()
	if w.snap != nil && w.snap.src != nil {
		return w.snap.src.Close()
	}
	return nil
}

// RunIDs lists loaded runs, sorted.
func (w *Warehouse) RunIDs() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, 0, len(w.runs))
	for id := range w.runs {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RunsOfSpec lists the runs of one specification, sorted.
func (w *Warehouse) RunsOfSpec(specName string) []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var out []string
	for id, rt := range w.runs {
		if rt.specName == specName {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// NumRuns returns the number of loaded runs.
func (w *Warehouse) NumRuns() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.runs)
}

// CacheStats exposes closure-cache hit/miss counters for the view-switch
// experiment.
func (w *Warehouse) CacheStats() (hits, misses int64) {
	return w.cache.stats()
}

// CacheCounters snapshots every closure-cache counter, including the
// singleflight and eviction counters the concurrency experiments report.
func (w *Warehouse) CacheCounters() CacheCounters {
	return w.cache.counters()
}

// CacheLen returns the number of closures currently cached (always bounded
// by the capacity passed to New).
func (w *Warehouse) CacheLen() int {
	return w.cache.len()
}

// Invalidate evicts the cached closure of one (run, data) key and bumps
// the run's cache generation, forcing the next query to recompute even if
// a computation for that run is in flight right now.
func (w *Warehouse) Invalidate(runID, d string) {
	w.cache.invalidate(runID, d)
}

// ResetCache drops all cached closures (used by benchmarks to separate the
// cold and warm paths).
func (w *Warehouse) ResetCache() {
	w.cache.reset()
}
