package warehouse

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/run"
	"repro/internal/spec"
)

// Snapshot persistence. Two on-disk formats share one loading path:
//
//   - v1 is a single JSON document (Save) — human-readable, diff-able, and
//     the compatibility format every earlier snapshot is in;
//   - v2 is a length-prefixed binary format (SaveBinary, persist_v2.go)
//     whose runs are independent frames, which is what lets Load decode and
//     index them on a worker pool instead of serially.
//
// Load auto-detects the format from the first byte ('{' for JSON, the magic
// byte for v2). Either way, loading rebuilds every run through the same
// validated construction path as live loads, so a corrupted snapshot cannot
// produce an inconsistent warehouse.

type snapshot struct {
	Specs []json.RawMessage `json:"specs"`
	Views []viewSnapshot    `json:"views"`
	Runs  []runSnapshot     `json:"runs"`
}

type viewSnapshot struct {
	Spec   string              `json:"spec"`
	Name   string              `json:"name"`
	Blocks map[string][]string `json:"blocks"`
}

type runSnapshot struct {
	ID    string                       `json:"id"`
	Spec  string                       `json:"spec"`
	Steps []run.Step                   `json:"steps"`
	Flows []flowSnap                   `json:"flows"`
	Meta  map[string]map[string]string `json:"meta,omitempty"`
}

type flowSnap struct {
	From string   `json:"from"`
	To   string   `json:"to"`
	Data []string `json:"data"`
}

// Save writes the warehouse contents as JSON (the v1 snapshot format).
func (w *Warehouse) Save(out io.Writer) error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		return ErrClosed
	}
	for id, rt := range w.runs {
		if err := w.resolveLocked(rt); err != nil {
			return fmt.Errorf("warehouse: save run %q: %w", id, err)
		}
	}
	var snap snapshot
	specNames := make([]string, 0, len(w.specs))
	for n := range w.specs {
		specNames = append(specNames, n)
	}
	sort.Strings(specNames)
	for _, n := range specNames {
		raw, err := json.Marshal(w.specs[n])
		if err != nil {
			return fmt.Errorf("warehouse: encode spec %q: %w", n, err)
		}
		snap.Specs = append(snap.Specs, raw)
		viewNames := make([]string, 0, len(w.views[n]))
		for vn := range w.views[n] {
			viewNames = append(viewNames, vn)
		}
		sort.Strings(viewNames)
		for _, vn := range viewNames {
			snap.Views = append(snap.Views, viewSnapshot{
				Spec: n, Name: vn, Blocks: w.views[n][vn].Blocks(),
			})
		}
	}
	runIDs := make([]string, 0, len(w.runs))
	for id := range w.runs {
		runIDs = append(runIDs, id)
	}
	sort.Strings(runIDs)
	for _, id := range runIDs {
		r := w.runs[id].run
		rs := runSnapshot{ID: id, Spec: r.SpecName(), Steps: r.Steps()}
		for _, e := range r.Graph().Edges() {
			rs.Flows = append(rs.Flows, flowSnap{From: e.From, To: e.To, Data: r.DataOn(e.From, e.To)})
		}
		for _, d := range r.AnnotatedInputs() {
			if rs.Meta == nil {
				rs.Meta = make(map[string]map[string]string)
			}
			rs.Meta[d] = r.InputMeta(d)
		}
		snap.Runs = append(snap.Runs, rs)
	}
	bw := bufio.NewWriterSize(out, 1<<16)
	if err := json.NewEncoder(bw).Encode(&snap); err != nil {
		return fmt.Errorf("warehouse: encode snapshot: %w", err)
	}
	return bw.Flush()
}

// LoadOptions tune snapshot loading.
type LoadOptions struct {
	// Workers bounds the goroutines that reconstruct, validate and index
	// runs concurrently. Zero or negative selects GOMAXPROCS. Whatever the
	// worker count, the loaded warehouse (and, on failure, the reported
	// error) is identical to a serial load.
	Workers int
	// Metrics, when non-nil, is attached to the loaded warehouse, and the
	// load itself is recorded there (ingest.snapshot_load_ns plus the
	// loaded run count under ingest.runs_loaded).
	Metrics *obs.Registry
	// Labels enables the reachability label index: labels are built for
	// every run as it loads (on the same worker pool) and the warehouse
	// comes up with SetLabelIndex(true) in effect.
	Labels bool
	// Progress, when non-nil, is called as runs finish loading: first with
	// (0, total), then with the running count after each run. Calls come
	// from loader goroutines (serialized by an internal mutex); keep the
	// callback fast. A v3 open calls it once with (total, total), since
	// there is no load phase.
	Progress func(loaded, total int)
}

// Load reads a snapshot produced by Save or SaveBinary into an empty
// warehouse, auto-detecting the format, with the default (parallel) load
// options.
func Load(in io.Reader, cacheSize int) (*Warehouse, error) {
	return LoadWith(in, cacheSize, LoadOptions{})
}

// LoadWith is Load with explicit options.
func LoadWith(in io.Reader, cacheSize int, opts LoadOptions) (*Warehouse, error) {
	var start time.Time
	if opts.Metrics != nil {
		start = time.Now()
	}
	br := bufio.NewReaderSize(in, 1<<16)
	head, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("warehouse: decode snapshot: %w", err)
	}
	var w *Warehouse
	if head[0] == snapMagic[0] {
		w, err = loadBinary(br, cacheSize, opts)
	} else {
		w, err = loadJSON(br, cacheSize, opts)
	}
	if err != nil {
		return nil, err
	}
	if opts.Metrics != nil {
		w.AttachMetrics(opts.Metrics)
		w.observeSnapshotLoad(start)
		// The parallel loader bypasses LoadRun's per-run observation, so
		// credit the loaded runs here.
		if m := w.obs.Load(); m != nil {
			m.runsLoaded.Add(int64(w.NumRuns()))
		}
	}
	return w, nil
}

// loadJSON restores a v1 (JSON) snapshot: the document is decoded in one
// piece, then the runs are rebuilt on the worker pool.
func loadJSON(in io.Reader, cacheSize int, opts LoadOptions) (*Warehouse, error) {
	var snap snapshot
	if err := json.NewDecoder(in).Decode(&snap); err != nil {
		return nil, fmt.Errorf("warehouse: decode snapshot: %w", err)
	}
	w := New(cacheSize)
	if opts.Labels {
		w.labelIndex = true
	}
	for i, raw := range snap.Specs {
		s, err := spec.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("warehouse: snapshot spec %d: %w", i, err)
		}
		if err := w.RegisterSpec(s); err != nil {
			return nil, err
		}
	}
	for _, vs := range snap.Views {
		s, err := w.Spec(vs.Spec)
		if err != nil {
			return nil, err
		}
		v, err := core.NewUserView(s, vs.Blocks)
		if err != nil {
			return nil, fmt.Errorf("warehouse: snapshot view %q: %w", vs.Name, err)
		}
		if err := w.RegisterView(vs.Name, v); err != nil {
			return nil, err
		}
	}
	err := w.loadRunsParallel(opts.Workers, len(snap.Runs), opts.Progress, func(i int) (*run.Run, error) {
		return reconstructSnapshotRun(&snap.Runs[i])
	})
	if err != nil {
		return nil, err
	}
	return w, nil
}

// reconstructSnapshotRun rebuilds one v1 run record through the bulk
// construction path.
func reconstructSnapshotRun(rs *runSnapshot) (*run.Run, error) {
	flows := make([]run.Flow, len(rs.Flows))
	for i, f := range rs.Flows {
		flows[i] = run.Flow{From: f.From, To: f.To, Data: f.Data}
	}
	r, err := run.Reconstruct(rs.ID, rs.Spec, rs.Steps, flows, rs.Meta)
	if err != nil {
		return nil, fmt.Errorf("warehouse: snapshot run %q: %w", rs.ID, err)
	}
	return r, nil
}

// loadRunsParallel rebuilds n runs with a bounded worker pool: each worker
// calls build(i) — reconstruction from the snapshot record — and then
// LoadRun, which validates, checks spec conformance and builds the compact
// index outside the catalog lock. Error reporting is deterministic: if any
// indexes fail, the error of the *lowest* failing index is returned, no
// matter how the pool interleaved. Indexes above a known failure are
// skipped best-effort, never ones below it.
func (w *Warehouse) loadRunsParallel(workers, n int, progress func(loaded, total int), build func(i int) (*run.Run, error)) error {
	if n == 0 {
		if progress != nil {
			progress(0, 0)
		}
		return nil
	}
	if progress != nil {
		progress(0, n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		loaded   int
	)
	advance := func() {
		if progress == nil {
			return
		}
		mu.Lock()
		loaded++
		progress(loaded, n)
		mu.Unlock()
	}
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	failedBelow := func(i int) bool {
		mu.Lock()
		defer mu.Unlock()
		return i > firstIdx
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			idx <- i
		}
	}()
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failedBelow(i) {
					continue
				}
				r, err := build(i)
				if err == nil {
					err = w.LoadRun(r)
				}
				if err != nil {
					record(i, err)
				} else {
					advance()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
