package warehouse

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/run"
	"repro/internal/spec"
)

// Snapshot persistence. The warehouse serializes to a single JSON document
// containing every specification, view definition and run; loading rebuilds
// the indexes through the same validated construction path as live loads,
// so a corrupted snapshot cannot produce an inconsistent warehouse.

type snapshot struct {
	Specs []json.RawMessage `json:"specs"`
	Views []viewSnapshot    `json:"views"`
	Runs  []runSnapshot     `json:"runs"`
}

type viewSnapshot struct {
	Spec   string              `json:"spec"`
	Name   string              `json:"name"`
	Blocks map[string][]string `json:"blocks"`
}

type runSnapshot struct {
	ID    string                       `json:"id"`
	Spec  string                       `json:"spec"`
	Steps []run.Step                   `json:"steps"`
	Flows []flowSnap                   `json:"flows"`
	Meta  map[string]map[string]string `json:"meta,omitempty"`
}

type flowSnap struct {
	From string   `json:"from"`
	To   string   `json:"to"`
	Data []string `json:"data"`
}

// Save writes the warehouse contents as JSON.
func (w *Warehouse) Save(out io.Writer) error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var snap snapshot
	specNames := make([]string, 0, len(w.specs))
	for n := range w.specs {
		specNames = append(specNames, n)
	}
	sort.Strings(specNames)
	for _, n := range specNames {
		raw, err := json.Marshal(w.specs[n])
		if err != nil {
			return fmt.Errorf("warehouse: encode spec %q: %w", n, err)
		}
		snap.Specs = append(snap.Specs, raw)
		viewNames := make([]string, 0, len(w.views[n]))
		for vn := range w.views[n] {
			viewNames = append(viewNames, vn)
		}
		sort.Strings(viewNames)
		for _, vn := range viewNames {
			snap.Views = append(snap.Views, viewSnapshot{
				Spec: n, Name: vn, Blocks: w.views[n][vn].Blocks(),
			})
		}
	}
	runIDs := make([]string, 0, len(w.runs))
	for id := range w.runs {
		runIDs = append(runIDs, id)
	}
	sort.Strings(runIDs)
	for _, id := range runIDs {
		r := w.runs[id].run
		rs := runSnapshot{ID: id, Spec: r.SpecName(), Steps: r.Steps()}
		for _, e := range r.Graph().Edges() {
			rs.Flows = append(rs.Flows, flowSnap{From: e.From, To: e.To, Data: r.DataOn(e.From, e.To)})
		}
		for _, d := range r.AnnotatedInputs() {
			if rs.Meta == nil {
				rs.Meta = make(map[string]map[string]string)
			}
			rs.Meta[d] = r.InputMeta(d)
		}
		snap.Runs = append(snap.Runs, rs)
	}
	enc := json.NewEncoder(out)
	return enc.Encode(&snap)
}

// Load reads a snapshot produced by Save into an empty warehouse.
func Load(in io.Reader, cacheSize int) (*Warehouse, error) {
	var snap snapshot
	if err := json.NewDecoder(in).Decode(&snap); err != nil {
		return nil, fmt.Errorf("warehouse: decode snapshot: %w", err)
	}
	w := New(cacheSize)
	for i, raw := range snap.Specs {
		s, err := spec.Decode(raw)
		if err != nil {
			return nil, fmt.Errorf("warehouse: snapshot spec %d: %w", i, err)
		}
		if err := w.RegisterSpec(s); err != nil {
			return nil, err
		}
	}
	for _, vs := range snap.Views {
		s, err := w.Spec(vs.Spec)
		if err != nil {
			return nil, err
		}
		v, err := core.NewUserView(s, vs.Blocks)
		if err != nil {
			return nil, fmt.Errorf("warehouse: snapshot view %q: %w", vs.Name, err)
		}
		if err := w.RegisterView(vs.Name, v); err != nil {
			return nil, err
		}
	}
	for _, rs := range snap.Runs {
		r := run.NewRun(rs.ID, rs.Spec)
		for _, st := range rs.Steps {
			if err := r.AddStep(st.ID, st.Module); err != nil {
				return nil, fmt.Errorf("warehouse: snapshot run %q: %w", rs.ID, err)
			}
		}
		for _, f := range rs.Flows {
			if err := r.AddFlow(f.From, f.To, f.Data); err != nil {
				return nil, fmt.Errorf("warehouse: snapshot run %q: %w", rs.ID, err)
			}
		}
		for d, meta := range rs.Meta {
			if err := r.AnnotateInput(d, meta); err != nil {
				return nil, fmt.Errorf("warehouse: snapshot run %q: %w", rs.ID, err)
			}
		}
		if err := w.LoadRun(r); err != nil {
			return nil, err
		}
	}
	return w, nil
}
