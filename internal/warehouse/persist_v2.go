package warehouse

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/run"
	"repro/internal/spec"
)

// The v2 binary snapshot format. Layout:
//
//	magic   4 bytes  "ZOOM"  (first byte != '{', so Load can dispatch)
//	version 1 byte   2
//	specs   uvarint count, then per spec  a length-prefixed JSON island
//	views   uvarint count, then per view  a length-prefixed JSON island
//	runs    uvarint count, then per run   a length-prefixed binary frame
//
// Specifications and view definitions are tiny and change rarely, so they
// stay as JSON islands (same schema as v1). Runs are the bulk of a
// warehouse, so each run is one self-contained binary frame: strings are
// interned once per frame — steps and data ids in natural order, exactly
// the compact index's interning order (run.Index) — and every flow edge is
// written as integer ids into those tables. Because each frame is length-
// prefixed, the loader can slice the file into frames without decoding
// them, hand the frames to a worker pool, and reconstruct runs in parallel.
//
// Frame layout (all integers are uvarints):
//
//	runID, specName                      length-prefixed strings
//	#steps, then per step                id, module (natural order)
//	#data, then per datum                data id (natural order)
//	#flows, then per flow                from, to, #data, data indexes
//	#meta, then per annotated input      data index, #keys, then key, value
//
// Flow endpoints are node codes: 0 = INPUT, 1 = OUTPUT, k+2 = interned step
// k. Flows are sorted by (from, to) and their data indexes ascend (natural
// order == interned order), so Save → Load → Save is byte-identical.
var snapMagic = [4]byte{'Z', 'O', 'O', 'M'}

const snapVersion2 = 2

const (
	nodeInput  = run.NodeInput
	nodeOutput = run.NodeOutput
	nodeStep0  = run.NodeStep0
)

// SaveBinary writes the warehouse contents in the v2 binary snapshot
// format. Load reads either format transparently.
func (w *Warehouse) SaveBinary(out io.Writer) error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		return ErrClosed
	}
	for id, rt := range w.runs {
		if err := w.resolveLocked(rt); err != nil {
			return fmt.Errorf("warehouse: save run %q: %w", id, err)
		}
	}
	bw := bufio.NewWriterSize(out, 1<<16)
	enc := &binWriter{w: bw}
	enc.raw(snapMagic[:])
	enc.raw([]byte{snapVersion2})

	specNames := make([]string, 0, len(w.specs))
	for n := range w.specs {
		specNames = append(specNames, n)
	}
	sort.Strings(specNames)
	enc.uvarint(uint64(len(specNames)))
	for _, n := range specNames {
		blob, err := json.Marshal(w.specs[n])
		if err != nil {
			return fmt.Errorf("warehouse: encode spec %q: %w", n, err)
		}
		enc.blob(blob)
	}

	var views []viewSnapshot
	for _, n := range specNames {
		viewNames := make([]string, 0, len(w.views[n]))
		for vn := range w.views[n] {
			viewNames = append(viewNames, vn)
		}
		sort.Strings(viewNames)
		for _, vn := range viewNames {
			views = append(views, viewSnapshot{Spec: n, Name: vn, Blocks: w.views[n][vn].Blocks()})
		}
	}
	enc.uvarint(uint64(len(views)))
	for i := range views {
		blob, err := json.Marshal(&views[i])
		if err != nil {
			return fmt.Errorf("warehouse: encode view %q: %w", views[i].Name, err)
		}
		enc.blob(blob)
	}

	runIDs := make([]string, 0, len(w.runs))
	for id := range w.runs {
		runIDs = append(runIDs, id)
	}
	sort.Strings(runIDs)
	enc.uvarint(uint64(len(runIDs)))
	var frame []byte
	for _, id := range runIDs {
		frame = appendRunFrame(frame[:0], w.runs[id].run)
		enc.blob(frame)
	}
	if enc.err != nil {
		return fmt.Errorf("warehouse: write snapshot: %w", enc.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("warehouse: write snapshot: %w", err)
	}
	return nil
}

// appendRunFrame encodes one run as a v2 frame, appending to dst.
func appendRunFrame(dst []byte, r *run.Run) []byte {
	dst = appendString(dst, r.ID())
	dst = appendString(dst, r.SpecName())

	steps := r.Steps() // natural order = interning order
	dst = binary.AppendUvarint(dst, uint64(len(steps)))
	stepCode := make(map[string]uint64, len(steps)+2)
	stepCode[spec.Input] = nodeInput
	stepCode[spec.Output] = nodeOutput
	for i, st := range steps {
		dst = appendString(dst, st.ID)
		dst = appendString(dst, st.Module)
		stepCode[st.ID] = uint64(i + nodeStep0)
	}

	data := r.AllData() // natural order = interning order
	dst = binary.AppendUvarint(dst, uint64(len(data)))
	dataIdx := make(map[string]uint64, len(data))
	for i, d := range data {
		dst = appendString(dst, d)
		dataIdx[d] = uint64(i)
	}

	type edge struct {
		fc, tc   uint64
		from, to string
	}
	edges := make([]edge, 0, r.NumEdges())
	for _, e := range r.Graph().Edges() {
		edges = append(edges, edge{fc: stepCode[e.From], tc: stepCode[e.To], from: e.From, to: e.To})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].fc != edges[j].fc {
			return edges[i].fc < edges[j].fc
		}
		return edges[i].tc < edges[j].tc
	})
	dst = binary.AppendUvarint(dst, uint64(len(edges)))
	for _, e := range edges {
		dst = binary.AppendUvarint(dst, e.fc)
		dst = binary.AppendUvarint(dst, e.tc)
		ds := r.DataOn(e.from, e.to) // naturally sorted = ascending indexes
		dst = binary.AppendUvarint(dst, uint64(len(ds)))
		for _, d := range ds {
			dst = binary.AppendUvarint(dst, dataIdx[d])
		}
	}

	ann := r.AnnotatedInputs() // natural order
	dst = binary.AppendUvarint(dst, uint64(len(ann)))
	for _, d := range ann {
		dst = binary.AppendUvarint(dst, dataIdx[d])
		meta := r.InputMeta(d)
		keys := make([]string, 0, len(meta))
		for k := range meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dst = binary.AppendUvarint(dst, uint64(len(keys)))
		for _, k := range keys {
			dst = appendString(dst, k)
			dst = appendString(dst, meta[k])
		}
	}
	return dst
}

// loadBinary restores a v2 snapshot: specs and views are registered
// serially (they are small JSON islands), then the run frames — already
// sliced apart by their length prefixes — are decoded, validated and
// indexed on the worker pool.
func loadBinary(br *bufio.Reader, cacheSize int, opts LoadOptions) (*Warehouse, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("warehouse: decode snapshot header: %w", err)
	}
	if [4]byte(hdr[:4]) != snapMagic {
		return nil, fmt.Errorf("warehouse: bad snapshot magic %q", hdr[:4])
	}
	switch hdr[4] {
	case snapVersion2:
		// fall through to the v2 frame decoder below
	case snapVersion3:
		// A v3 snapshot arriving through the generic reader path: slurp the
		// image into an aligned heap buffer (the reader offers no mapping)
		// and serve it through the same lazy open as OpenV3.
		rest, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("warehouse: decode snapshot: %w", err)
		}
		buf := alignedBytes(len(hdr) + len(rest))
		copy(buf, hdr[:])
		copy(buf[len(hdr):], rest)
		w, err := openV3Bytes(buf, false, nil, cacheSize, opts)
		if err != nil {
			return nil, err
		}
		// The generic reader path keeps Load's contract — a snapshot either
		// loads completely or errors — so materialize every run now (in id
		// order, for deterministic error reporting). The lazy O(1) path is
		// OpenV3.
		for _, id := range w.RunIDs() {
			if _, err := w.Run(id); err != nil {
				return nil, err
			}
		}
		return w, nil
	default:
		return nil, fmt.Errorf("warehouse: unsupported snapshot version %d", hdr[4])
	}
	dec := &binReader{r: br}
	w := New(cacheSize)
	if opts.Labels {
		w.labelIndex = true
	}

	nSpecs := dec.uvarint()
	for i := uint64(0); i < nSpecs && dec.err == nil; i++ {
		blob := dec.blob()
		if dec.err != nil {
			break
		}
		s, err := spec.Decode(blob)
		if err != nil {
			return nil, fmt.Errorf("warehouse: snapshot spec %d: %w", i, err)
		}
		if err := w.RegisterSpec(s); err != nil {
			return nil, err
		}
	}
	nViews := dec.uvarint()
	for i := uint64(0); i < nViews && dec.err == nil; i++ {
		blob := dec.blob()
		if dec.err != nil {
			break
		}
		var vs viewSnapshot
		if err := json.Unmarshal(blob, &vs); err != nil {
			return nil, fmt.Errorf("warehouse: snapshot view %d: %w", i, err)
		}
		s, err := w.Spec(vs.Spec)
		if err != nil {
			return nil, err
		}
		v, err := core.NewUserView(s, vs.Blocks)
		if err != nil {
			return nil, fmt.Errorf("warehouse: snapshot view %q: %w", vs.Name, err)
		}
		if err := w.RegisterView(vs.Name, v); err != nil {
			return nil, err
		}
	}
	nRuns := dec.uvarint()
	var frames [][]byte
	for i := uint64(0); i < nRuns && dec.err == nil; i++ {
		if blob := dec.blob(); dec.err == nil {
			frames = append(frames, blob)
		}
	}
	if dec.err != nil {
		return nil, fmt.Errorf("warehouse: decode snapshot: %w", dec.err)
	}
	err := w.loadRunsParallel(opts.Workers, len(frames), opts.Progress, func(i int) (*run.Run, error) {
		return decodeRunFrame(frames[i])
	})
	if err != nil {
		return nil, err
	}
	return w, nil
}

// decodeRunFrame rebuilds one run from its v2 frame through the bulk
// construction path. Every count, index and length is bounds-checked, so a
// corrupt frame yields an error, never a panic or an unbounded allocation.
func decodeRunFrame(frame []byte) (*run.Run, error) {
	fr := newFrameReader(frame)
	runID := fr.str()
	specName := fr.str()

	nSteps := fr.count(2) // a step is at least two length bytes
	steps := make([]run.Step, 0, nSteps)
	for i := 0; i < nSteps && fr.err == nil; i++ {
		id := fr.str()
		module := fr.str()
		steps = append(steps, run.Step{ID: id, Module: module})
	}

	nData := fr.count(1)
	data := make([]string, 0, nData)
	for i := 0; i < nData && fr.err == nil; i++ {
		data = append(data, fr.str())
	}

	node := func(code uint64) int32 {
		if code >= nodeStep0+uint64(len(steps)) {
			fr.fail(fmt.Errorf("node code %d out of range", code))
			return 0
		}
		return int32(code)
	}

	nFlows := fr.count(3) // from, to, count
	flows := make([]run.InternedFlow, 0, nFlows)
	for i := 0; i < nFlows && fr.err == nil; i++ {
		from := node(fr.uvarint())
		to := node(fr.uvarint())
		nd := fr.count(1)
		ds := make([]int32, 0, nd)
		for j := 0; j < nd && fr.err == nil; j++ {
			di := fr.uvarint()
			if di >= uint64(len(data)) {
				fr.fail(fmt.Errorf("data index %d out of range", di))
				break
			}
			ds = append(ds, int32(di))
		}
		flows = append(flows, run.InternedFlow{From: from, To: to, Data: ds})
	}

	var meta map[int32]map[string]string
	nMeta := fr.count(2)
	for i := 0; i < nMeta && fr.err == nil; i++ {
		di := fr.uvarint()
		if fr.err == nil && di >= uint64(len(data)) {
			fr.fail(fmt.Errorf("meta data index %d out of range", di))
			break
		}
		nk := fr.count(2)
		kv := make(map[string]string, nk)
		for j := 0; j < nk && fr.err == nil; j++ {
			k := fr.str()
			v := fr.str()
			kv[k] = v
		}
		if fr.err == nil {
			if meta == nil {
				meta = make(map[int32]map[string]string, nMeta)
			}
			meta[int32(di)] = kv
		}
	}
	if fr.err != nil {
		return nil, fmt.Errorf("warehouse: snapshot run frame %q: %w", runID, fr.err)
	}
	r, err := run.ReconstructInterned(runID, specName, steps, data, flows, meta)
	if err != nil {
		return nil, fmt.Errorf("warehouse: snapshot run %q: %w", runID, err)
	}
	return r, nil
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// binWriter wraps a bufio.Writer with sticky-error varint/blob primitives.
type binWriter struct {
	w   *bufio.Writer
	tmp [binary.MaxVarintLen64]byte
	err error
}

func (b *binWriter) raw(p []byte) {
	if b.err == nil {
		_, b.err = b.w.Write(p)
	}
}

func (b *binWriter) uvarint(x uint64) {
	n := binary.PutUvarint(b.tmp[:], x)
	b.raw(b.tmp[:n])
}

func (b *binWriter) blob(p []byte) {
	b.uvarint(uint64(len(p)))
	b.raw(p)
}

// binReader reads sticky-error varints and length-prefixed blobs from a
// stream. Blob allocation is chunked, so a corrupt length prefix cannot
// force one giant allocation: the claimed size is only ever committed as
// actual bytes arrive.
type binReader struct {
	r   *bufio.Reader
	err error
}

func (b *binReader) uvarint() uint64 {
	if b.err != nil {
		return 0
	}
	x, err := binary.ReadUvarint(b.r)
	if err != nil {
		b.err = err
		return 0
	}
	return x
}

func (b *binReader) blob() []byte {
	n := b.uvarint()
	if b.err != nil {
		return nil
	}
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for uint64(len(buf)) < n {
		step := min(n-uint64(len(buf)), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(b.r, buf[start:]); err != nil {
			b.err = err
			return nil
		}
	}
	return buf
}

// frameReader decodes one run frame from an in-memory slice with bounds
// checking on every read. All strings are substrings of one immutable copy
// of the frame, so decoding a run performs one string allocation total, not
// one per step and data id (the frame stays reachable for as long as any of
// its ids do, which for a loaded run is its whole lifetime anyway).
type frameReader struct {
	b   []byte
	s   string // string(b), backing every str() result
	off int
	err error
}

func newFrameReader(b []byte) *frameReader {
	return &frameReader{b: b, s: string(b)}
}

func (f *frameReader) fail(err error) {
	if f.err == nil {
		f.err = err
	}
}

func (f *frameReader) uvarint() uint64 {
	if f.err != nil {
		return 0
	}
	x, n := binary.Uvarint(f.b[f.off:])
	if n <= 0 {
		f.fail(fmt.Errorf("truncated varint at offset %d", f.off))
		return 0
	}
	f.off += n
	return x
}

// count reads a length and sanity-checks it against the bytes remaining in
// the frame (each counted element occupies at least minBytes), so a corrupt
// count cannot drive an oversized allocation.
func (f *frameReader) count(minBytes int) int {
	x := f.uvarint()
	if f.err != nil {
		return 0
	}
	if x > uint64(len(f.b)-f.off)/uint64(minBytes)+1 {
		f.fail(fmt.Errorf("count %d exceeds frame size", x))
		return 0
	}
	return int(x)
}

func (f *frameReader) str() string {
	n := f.uvarint()
	if f.err != nil {
		return ""
	}
	if n > uint64(len(f.b)-f.off) {
		f.fail(fmt.Errorf("string length %d exceeds frame size", n))
		return ""
	}
	s := f.s[f.off : f.off+int(n)]
	f.off += int(n)
	return s
}
