package warehouse

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/run"
	"repro/internal/spec"
)

// saveV3Temp saves w as a v3 snapshot in a temp file and returns the path
// and the raw image.
func saveV3Temp(t testing.TB, w *Warehouse) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	mustT(t, w.SaveV3(&buf))
	path := filepath.Join(t.TempDir(), "snap.v3")
	mustT(t, os.WriteFile(path, buf.Bytes(), 0o644))
	return path, buf.Bytes()
}

// openV3Image opens a v3 image from an aligned heap copy of data — the
// corruption tests' entry point (no temp file per mutation).
func openV3Image(data []byte, opts LoadOptions) (*Warehouse, error) {
	buf := alignedBytes(len(data))
	copy(buf, data)
	return openV3Bytes(buf, false, nil, 0, opts)
}

// TestSaveV3RoundTrip: SaveV3 → OpenV3 restores an equivalent warehouse —
// same catalog, views, metadata and deep-provenance answers — and a second
// SaveV3 from the opened warehouse is byte-identical (the format is
// canonical: sorted sections, sorted runs, deterministic blocks).
func TestSaveV3RoundTrip(t *testing.T) {
	w := snapshotWarehouse(t, 2)
	path, img := saveV3Temp(t, w)

	back, err := OpenV3(path, 0, LoadOptions{})
	mustT(t, err)
	defer back.Close()

	if !reflect.DeepEqual(back.SpecNames(), w.SpecNames()) {
		t.Fatal("specs differ after v3 round trip")
	}
	if !reflect.DeepEqual(back.RunIDs(), w.RunIDs()) {
		t.Fatal("runs differ after v3 round trip")
	}
	v, err := back.View("phylogenomics", "joe")
	mustT(t, err)
	orig, err := w.View("phylogenomics", "joe")
	mustT(t, err)
	if !v.Equal(orig) {
		t.Fatal("view differs after v3 round trip")
	}
	r, err := back.Run("fig2")
	mustT(t, err)
	if got := r.InputMeta("d1"); got["who"] != "joe" || got["when"] != "2008-04-07" {
		t.Fatalf("metadata lost: %v", got)
	}
	if !reflect.DeepEqual(deepAnswers(t, back), deepAnswers(t, w)) {
		t.Fatal("provenance answers differ after v3 round trip")
	}

	var buf2 bytes.Buffer
	mustT(t, back.SaveV3(&buf2))
	if !bytes.Equal(img, buf2.Bytes()) {
		t.Fatalf("v3 snapshot not byte-stable: %d vs %d bytes", len(img), buf2.Len())
	}

	// The same image loads through the generic auto-detecting reader too.
	fromReader, err := Load(bytes.NewReader(img), 0)
	mustT(t, err)
	if !reflect.DeepEqual(deepAnswers(t, fromReader), deepAnswers(t, w)) {
		t.Fatal("reader-path v3 load disagrees")
	}
}

// TestOpenV3Lazy: opening is O(catalog) — no run is materialized until
// queried — while Stats still reports full catalog counts from the run
// directory, and materialization progresses per touched run.
func TestOpenV3Lazy(t *testing.T) {
	w := snapshotWarehouse(t, 1)
	wantStats := catalog(w.Stats())
	path, _ := saveV3Temp(t, w)

	back, err := OpenV3(path, 0, LoadOptions{})
	mustT(t, err)
	defer back.Close()

	st := back.Stats()
	if st.Snapshot.Version != 3 || st.Snapshot.RunsTotal != len(w.RunIDs()) {
		t.Fatalf("snapshot stats: %+v", st.Snapshot)
	}
	if st.Snapshot.RunsMaterialized != 0 {
		t.Fatalf("open materialized %d runs", st.Snapshot.RunsMaterialized)
	}
	if st.Steps != wantStats.Steps || st.DataObjects != wantStats.DataObjects || st.FlowEdges != wantStats.FlowEdges {
		t.Fatalf("directory counts diverge: got %d/%d/%d want %d/%d/%d",
			st.Steps, st.DataObjects, st.FlowEdges, wantStats.Steps, wantStats.DataObjects, wantStats.FlowEdges)
	}

	if _, err := back.Run("fig2"); err != nil {
		t.Fatal(err)
	}
	if got := back.Stats().Snapshot.RunsMaterialized; got != 1 {
		t.Fatalf("after one query %d runs materialized, want 1", got)
	}
	// Directory counts and materialized counts must agree: totals unchanged.
	st = back.Stats()
	if st.Steps != wantStats.Steps || st.DataObjects != wantStats.DataObjects || st.FlowEdges != wantStats.FlowEdges {
		t.Fatalf("counts changed across materialization: %+v", st)
	}
}

// TestOpenV3Labels: the Labels load option takes effect lazily — labels are
// built at materialization time, and the label path serves the queries.
func TestOpenV3Labels(t *testing.T) {
	w := snapshotWarehouse(t, 1)
	path, _ := saveV3Temp(t, w)
	back, err := OpenV3(path, 0, LoadOptions{Labels: true})
	mustT(t, err)
	defer back.Close()
	if !back.LabelIndexEnabled() {
		t.Fatal("labels not enabled")
	}
	if back.RunLabels("fig2") == nil {
		t.Fatal("no labels built at materialization")
	}
	fig2, _ := back.Run("fig2")
	cl, _, err := back.DeepProvenanceStrategyCtx(context.Background(), "fig2", fig2.FinalOutputs()[0], false, StrategyLabels)
	mustT(t, err)
	if cl == nil || len(cl.DataSet()) == 0 {
		t.Fatal("label-path closure empty")
	}
	if c := back.LabelCounters(); c.Hits == 0 {
		t.Fatalf("label path not taken: %+v", c)
	}
}

// TestV3CloseLifecycle: Close releases the snapshot and every subsequent
// run-touching operation fails with ErrClosed — cleanly, never a fault
// from an unmapped slice. Close is idempotent, and results obtained before
// Close stay usable (strings are copies, closures hold heap bitsets).
func TestV3CloseLifecycle(t *testing.T) {
	w := snapshotWarehouse(t, 1)
	path, _ := saveV3Temp(t, w)
	back, err := OpenV3(path, 0, LoadOptions{})
	mustT(t, err)

	r, err := back.Run("fig2")
	mustT(t, err)
	finals := r.FinalOutputs()
	cl, err := back.DeepProvenance("fig2", finals[len(finals)-1])
	mustT(t, err)
	preData := cl.DataSet()

	mustT(t, back.Close())
	mustT(t, back.Close()) // idempotent

	if _, err := back.Run("fig2"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Run after Close: %v", err)
	}
	if _, err := back.DeepProvenance("fig2", finals[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("DeepProvenance after Close: %v", err)
	}
	if _, _, err := back.ImmediateProvenance("fig2", finals[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("ImmediateProvenance after Close: %v", err)
	}
	if err := back.SaveV3(new(bytes.Buffer)); !errors.Is(err, ErrClosed) {
		t.Fatalf("SaveV3 after Close: %v", err)
	}
	if err := back.Save(new(bytes.Buffer)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Save after Close: %v", err)
	}
	if err := back.SaveBinary(new(bytes.Buffer)); !errors.Is(err, ErrClosed) {
		t.Fatalf("SaveBinary after Close: %v", err)
	}
	if err := back.LoadRun(run.Figure2()); !errors.Is(err, ErrClosed) {
		t.Fatalf("LoadRun after Close: %v", err)
	}
	if ix := back.RunIndex("fig2"); ix != nil {
		t.Fatal("RunIndex after Close must be nil")
	}
	// Pre-Close results remain intact (their strings were copied out of the
	// arena at materialization).
	for d := range preData {
		if d == "" {
			t.Fatal("dangling data name")
		}
	}
	// Stats must not fault either.
	_ = back.Stats()
}

// TestV3RejectsTruncation: every prefix cut of a valid image is rejected
// with a descriptive error at open or at first query — never accepted
// silently, never a panic.
func TestV3RejectsTruncation(t *testing.T) {
	w := snapshotWarehouse(t, 1)
	var buf bytes.Buffer
	mustT(t, w.SaveV3(&buf))
	good := buf.Bytes()

	for _, cut := range []int{0, 1, 4, 5, 63, 64, 100, len(good) / 4, len(good) / 2, len(good) - 1} {
		if _, err := openV3Image(good[:cut], LoadOptions{}); err == nil {
			t.Fatalf("truncation at %d accepted at open", cut)
		}
	}
}

// TestV3RejectsBitFlips: flipping any byte of the image must surface as a
// checksum (or structural) error at open or at query time. Queries against
// a corrupted-but-opened snapshot return errors; they never panic, which
// is the safety property the aliased slices depend on.
func TestV3RejectsBitFlips(t *testing.T) {
	w := snapshotWarehouse(t, 1)
	var buf bytes.Buffer
	mustT(t, w.SaveV3(&buf))
	good := buf.Bytes()
	want := deepAnswers(t, w)

	stride := 131
	if testing.Short() {
		stride = 997
	}
	clean := 0
	for i := 0; i < len(good); i += stride {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xff
		back, err := openV3Image(mut, LoadOptions{})
		if err != nil {
			continue // rejected at open: fine
		}
		// Opened: either every query answers exactly like the original (the
		// flip hit padding) or the damaged runs error out cleanly.
		got := make(map[string][]string)
		for _, id := range back.RunIDs() {
			r, err := back.Run(id)
			if err != nil {
				continue
			}
			mustT(t, r.Validate())
			finals := r.FinalOutputs()
			if len(finals) == 0 {
				continue
			}
			cl, err := back.DeepProvenance(id, finals[len(finals)-1])
			if err != nil {
				continue
			}
			var ds []string
			for d := range cl.DataSet() {
				ds = append(ds, d)
			}
			sort.Strings(ds)
			got[id] = ds
		}
		for id, ds := range got {
			if !reflect.DeepEqual(ds, want[id]) {
				t.Fatalf("flip at %d silently changed answers for %q", i, id)
			}
		}
		if len(got) == len(want) {
			clean++
		}
	}
	_ = clean
}

// TestV3BlockChecksum: damaging one run's block leaves the warehouse
// openable, fails exactly that run with a checksum error (sticky across
// retries), and leaves every other run answering correctly.
func TestV3BlockChecksum(t *testing.T) {
	w := snapshotWarehouse(t, 1)
	var buf bytes.Buffer
	mustT(t, w.SaveV3(&buf))
	img := buf.Bytes()

	// Find the fig2 block via the open path, then flip a byte inside it.
	pristine, err := openV3Image(img, LoadOptions{})
	mustT(t, err)
	rt := pristine.runs["fig2"]
	if rt == nil || rt.lazy == nil {
		t.Fatal("fixture: fig2 not lazy")
	}
	off := int(rt.lazy.rec.blockOff) + 40 // inside the block, past the header counts

	mut := append([]byte(nil), img...)
	mut[off] ^= 0x01
	back, err := openV3Image(mut, LoadOptions{})
	mustT(t, err) // open succeeds: block integrity is lazy by design

	_, err = back.Run("fig2")
	if err == nil || !strings.Contains(err.Error(), "fig2") {
		t.Fatalf("damaged block: %v", err)
	}
	_, err2 := back.Run("fig2")
	if err2 == nil || err2.Error() != err.Error() {
		t.Fatalf("materialization error not sticky: %v vs %v", err2, err)
	}
	// Other runs still answer, and the damaged one is excluded from both.
	got := deepAnswers2(t, back)
	wantAll := deepAnswers(t, w)
	delete(wantAll, "fig2")
	if !reflect.DeepEqual(got, wantAll) {
		t.Fatal("healthy runs affected by another run's damaged block")
	}
}

// deepAnswers2 is deepAnswers tolerating per-run materialization errors
// (skipping failed runs).
func deepAnswers2(t testing.TB, w *Warehouse) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	for _, id := range w.RunIDs() {
		r, err := w.Run(id)
		if err != nil {
			continue
		}
		finals := r.FinalOutputs()
		if len(finals) == 0 {
			continue
		}
		cl, err := w.DeepProvenance(id, finals[len(finals)-1])
		mustT(t, err)
		var ds []string
		for d := range cl.DataSet() {
			ds = append(ds, d)
		}
		sort.Strings(ds)
		out[id] = ds
	}
	return out
}

// TestConcurrentV3Materialization: many goroutines race first queries
// against a freshly opened v3 warehouse — concurrent lazy materialization,
// Stats scans and a SetLabelIndex toggle all run under -race — and every
// answer matches the heap-loaded v2 warehouse byte for byte.
func TestConcurrentV3Materialization(t *testing.T) {
	w := snapshotWarehouse(t, 2)
	var v2 bytes.Buffer
	mustT(t, w.SaveBinary(&v2))
	heap, err := Load(bytes.NewReader(v2.Bytes()), 0)
	mustT(t, err)
	want := deepAnswers(t, heap)

	path, _ := saveV3Temp(t, w)
	back, err := OpenV3(path, 0, LoadOptions{})
	mustT(t, err)
	defer back.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := deepAnswers2(t, back)
			if !reflect.DeepEqual(got, want) {
				errs <- errors.New("concurrent v3 answers diverge from v2")
			}
		}()
	}
	// Stats and label toggles race the materializations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = back.Stats()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		back.SetLabelIndex(true)
		back.SetLabelIndex(false)
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := back.Stats().Snapshot
	if st.RunsMaterialized != st.RunsTotal {
		t.Fatalf("not all runs materialized: %+v", st)
	}
}

// FuzzSnapshotV3 feeds the v3 open path arbitrary images (seeded with a
// valid snapshot and systematic corruptions). Opening must never panic;
// when it succeeds, every queryable run must be valid and re-save must
// work once failed runs are absent.
func FuzzSnapshotV3(f *testing.F) {
	w := New(0)
	if err := w.RegisterSpec(spec.Phylogenomics()); err != nil {
		f.Fatal(err)
	}
	if err := w.LoadRun(run.Figure2()); err != nil {
		f.Fatal(err)
	}
	var v3 bytes.Buffer
	if err := w.SaveV3(&v3); err != nil {
		f.Fatal(err)
	}
	good := v3.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:v3HeaderSize])
	f.Add([]byte("ZOOM\x03"))
	f.Add([]byte{})
	for _, stride := range []int{7, 131} {
		corrupt := append([]byte(nil), good...)
		for i := 5; i < len(corrupt); i += stride {
			corrupt[i] ^= 0x55
		}
		f.Add(corrupt)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := openV3Image(data, LoadOptions{})
		if err != nil {
			return
		}
		ok := true
		for _, id := range back.RunIDs() {
			r, err := back.Run(id)
			if err != nil {
				ok = false
				continue
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("materialized invalid run %q: %v", id, err)
			}
		}
		if ok {
			if err := back.SaveV3(new(bytes.Buffer)); err != nil {
				t.Fatalf("re-save v3: %v", err)
			}
		}
	})
}
