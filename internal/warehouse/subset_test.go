package warehouse

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// splitKeep partitions run ids by a trivial deterministic rule (length
// parity) — the tests don't need the real ring, just a 2-way split.
func splitKeep(part int) func(string) bool {
	return func(id string) bool { return len(id)%2 == part }
}

func TestSubsetSplitsRunsKeepsCatalog(t *testing.T) {
	w := snapshotWarehouse(t, 2)
	all := w.RunIDs()
	want := deepAnswers(t, w)

	var parts []*Warehouse
	total := 0
	for p := 0; p < 2; p++ {
		sub, err := w.Subset(splitKeep(p))
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, sub)
		total += sub.NumRuns()

		// Full spec and view catalog on every shard.
		if got, want := sub.SpecNames(), w.SpecNames(); !reflect.DeepEqual(got, want) {
			t.Fatalf("subset specs %v, want %v", got, want)
		}
		if got := sub.ViewNames("phylogenomics"); len(got) != 1 || got[0] != "joe" {
			t.Fatalf("subset views %v, want [joe]", got)
		}

		// Each kept run answers exactly as in the parent.
		subAnswers := deepAnswers(t, sub)
		for id, ds := range subAnswers {
			if !reflect.DeepEqual(ds, want[id]) {
				t.Fatalf("subset answer for %q differs from parent", id)
			}
		}
		for _, id := range sub.RunIDs() {
			if splitKeep(p)(id) != true {
				t.Fatalf("run %q on wrong side of the split", id)
			}
		}
	}
	if total != len(all) {
		t.Fatalf("subsets hold %d runs, parent has %d", total, len(all))
	}

	// Saved subsets round-trip as complete snapshots of their own.
	var buf bytes.Buffer
	mustT(t, parts[0].SaveBinary(&buf))
	back, err := Load(bytes.NewReader(buf.Bytes()), 0)
	mustT(t, err)
	if !reflect.DeepEqual(back.RunIDs(), parts[0].RunIDs()) {
		t.Fatalf("reloaded subset runs %v, want %v", back.RunIDs(), parts[0].RunIDs())
	}
}

// TestSubsetOfV3Materializes covers the lazy path: splitting a warehouse
// opened from a v3 (mmap) snapshot materializes kept runs on demand and
// the subsets can be saved before the parent closes.
func TestSubsetOfV3Materializes(t *testing.T) {
	w := snapshotWarehouse(t, 2)
	path := filepath.Join(t.TempDir(), "wh.v3")
	f, err := os.Create(path)
	mustT(t, err)
	mustT(t, w.SaveV3(f))
	mustT(t, f.Close())

	parent, err := OpenV3(path, 0, LoadOptions{})
	mustT(t, err)
	defer parent.Close()
	sub, err := parent.Subset(func(id string) bool { return strings.HasPrefix(id, "snap-") })
	mustT(t, err)
	if sub.NumRuns() == 0 || sub.NumRuns() == parent.NumRuns() {
		t.Fatalf("split selected %d of %d runs, want a strict subset", sub.NumRuns(), parent.NumRuns())
	}
	var buf bytes.Buffer
	mustT(t, sub.SaveBinary(&buf))
	back, err := Load(bytes.NewReader(buf.Bytes()), 0)
	mustT(t, err)
	if !reflect.DeepEqual(back.RunIDs(), sub.RunIDs()) {
		t.Fatalf("reloaded v3 subset runs %v, want %v", back.RunIDs(), sub.RunIDs())
	}
}

func TestSubsetClosed(t *testing.T) {
	w := snapshotWarehouse(t, 1)
	mustT(t, w.Close())
	if _, err := w.Subset(func(string) bool { return true }); err == nil {
		t.Fatal("Subset on a closed warehouse should fail")
	}
}
