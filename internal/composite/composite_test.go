package composite

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/run"
	"repro/internal/spec"
)

func joeView(t testing.TB) *core.UserView {
	t.Helper()
	v, err := core.BuildRelevant(spec.Phylogenomics(), spec.PhyloRelevantJoe())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func maryView(t testing.TB) *core.UserView {
	t.Helper()
	v, err := core.BuildRelevant(spec.Phylogenomics(), spec.PhyloRelevantMary())
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestJoeS13 reproduces the paper's S13: under Joe's view the whole loop
// M3-M4-M5 collapses into one execution of M10 (named "M3" by the builder)
// with input {d308..d408} and output {d413}.
func TestJoeS13(t *testing.T) {
	m, err := Build(run.Figure2(), joeView(t))
	if err != nil {
		t.Fatal(err)
	}
	execs := m.ExecutionsOf("M3") // builder names Joe's M10 after M3
	if len(execs) != 1 {
		t.Fatalf("M10 has %d executions, want 1 (S13)", len(execs))
	}
	s13 := execs[0]
	if !reflect.DeepEqual(s13.Steps, []string{"S2", "S3", "S4", "S5", "S6"}) {
		t.Fatalf("S13 steps = %v", s13.Steps)
	}
	if !reflect.DeepEqual(s13.Inputs, run.DataIDs(308, 408)) {
		t.Fatalf("S13 inputs = %s", run.FormatDataSet(s13.Inputs))
	}
	if !reflect.DeepEqual(s13.Outputs, []string{"d413"}) {
		t.Fatalf("S13 outputs = %v", s13.Outputs)
	}
}

// TestMaryS11S12 reproduces S11 and S12: two executions of M11, the first
// with input {d308..d408} and output {d410}, the second with input {d411}
// and output {d413}.
func TestMaryS11S12(t *testing.T) {
	m, err := Build(run.Figure2(), maryView(t))
	if err != nil {
		t.Fatal(err)
	}
	execs := m.ExecutionsOf("M3") // Mary's M11 is named after M3
	if len(execs) != 2 {
		t.Fatalf("M11 has %d executions, want 2 (S11, S12)", len(execs))
	}
	s11, s12 := execs[0], execs[1]
	if !reflect.DeepEqual(s11.Steps, []string{"S2", "S3"}) {
		t.Fatalf("S11 steps = %v", s11.Steps)
	}
	if !reflect.DeepEqual(s11.Inputs, run.DataIDs(308, 408)) {
		t.Fatalf("S11 inputs = %s", run.FormatDataSet(s11.Inputs))
	}
	if !reflect.DeepEqual(s11.Outputs, []string{"d410"}) {
		t.Fatalf("S11 outputs = %v", s11.Outputs)
	}
	if !reflect.DeepEqual(s12.Steps, []string{"S5", "S6"}) {
		t.Fatalf("S12 steps = %v", s12.Steps)
	}
	if !reflect.DeepEqual(s12.Inputs, []string{"d411"}) {
		t.Fatalf("S12 inputs = %v", s12.Inputs)
	}
	if !reflect.DeepEqual(s12.Outputs, []string{"d413"}) {
		t.Fatalf("S12 outputs = %v", s12.Outputs)
	}
}

func TestVisibility(t *testing.T) {
	r := run.Figure2()
	mJoe, _ := Build(r, joeView(t))
	mMary, _ := Build(r, maryView(t))
	// "Joe would not see the data d411" — internal to S13.
	if mJoe.Visible("d411") {
		t.Fatal("d411 visible to Joe")
	}
	// Mary sees d411 (it flows M11 -> M5's step).
	if !mMary.Visible("d411") {
		t.Fatal("d411 not visible to Mary")
	}
	// d413 crosses into S10 for both.
	if !mJoe.Visible("d413") || !mMary.Visible("d413") {
		t.Fatal("d413 must be visible to both")
	}
	// User input is always visible; final output is always visible.
	if !mJoe.Visible("d1") || !mJoe.Visible("d447") {
		t.Fatal("external input / final output not visible")
	}
	if mJoe.Visible("d999") {
		t.Fatal("unknown data visible")
	}
	// d409 is internal to M10 for Joe AND internal to M11's S11 for Mary.
	if mJoe.Visible("d409") || mMary.Visible("d409") {
		t.Fatal("d409 must be hidden from both")
	}
	// d410 is hidden from Joe (internal to S13) but visible to Mary (it
	// flows S11 -> S4). d412 flows S5 -> S6, both inside Mary's S12, so it
	// is hidden from Mary as well.
	if mJoe.Visible("d410") {
		t.Fatal("d410 visible to Joe")
	}
	if !mMary.Visible("d410") {
		t.Fatal("d410 hidden from Mary")
	}
	if mJoe.Visible("d412") || mMary.Visible("d412") {
		t.Fatal("d412 must be hidden from both")
	}
}

func TestUAdminMappingIsIdentity(t *testing.T) {
	r := run.Figure2()
	m, err := Build(r, core.UAdmin(spec.Phylogenomics()))
	if err != nil {
		t.Fatal(err)
	}
	if m.NumExecutions() != r.NumSteps() {
		t.Fatalf("%d executions, want %d", m.NumExecutions(), r.NumSteps())
	}
	// Single-step executions keep their step ids.
	for _, st := range r.Steps() {
		e, ok := m.Execution(st.ID)
		if !ok {
			t.Fatalf("no execution named %s", st.ID)
		}
		if !reflect.DeepEqual(e.Steps, []string{st.ID}) {
			t.Fatalf("execution %s steps = %v", st.ID, e.Steps)
		}
		if !reflect.DeepEqual(e.Inputs, r.InputsOf(st.ID)) {
			t.Fatalf("execution %s inputs differ", st.ID)
		}
	}
	// Under UAdmin every data object is visible.
	for _, d := range r.AllData() {
		if !m.Visible(d) {
			t.Fatalf("%s hidden under UAdmin", d)
		}
	}
}

func TestBlackBoxMapping(t *testing.T) {
	r := run.Figure2()
	v, err := core.UBlackBox(spec.Phylogenomics())
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(r, v)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumExecutions() != 1 {
		t.Fatalf("%d executions, want 1", m.NumExecutions())
	}
	e := m.Executions()[0]
	if len(e.Steps) != 10 {
		t.Fatalf("black box contains %d steps", len(e.Steps))
	}
	// Inputs: all external data; outputs: the final tree.
	if len(e.Inputs) != 131 {
		t.Fatalf("inputs = %d, want 131", len(e.Inputs))
	}
	if !reflect.DeepEqual(e.Outputs, []string{"d447"}) {
		t.Fatalf("outputs = %v", e.Outputs)
	}
	// Only external data and the final output are visible.
	visible := 0
	for _, d := range r.AllData() {
		if m.Visible(d) {
			visible++
		}
	}
	if visible != 132 {
		t.Fatalf("visible data = %d, want 132", visible)
	}
}

func TestExecutionEdges(t *testing.T) {
	m, _ := Build(run.Figure2(), maryView(t))
	edges := m.Edges()
	find := func(from, to string) *Edge {
		for i := range edges {
			if edges[i].From == from && edges[i].To == to {
				return &edges[i]
			}
		}
		return nil
	}
	// M11's first execution feeds S4 (M5's step) with d410.
	e := find("M3@1", "S4")
	if e == nil || !reflect.DeepEqual(e.Data, []string{"d410"}) {
		t.Fatalf("edge M3@1 -> S4 = %+v", e)
	}
	// S4 feeds M11's second execution with d411.
	e = find("S4", "M3@2")
	if e == nil || !reflect.DeepEqual(e.Data, []string{"d411"}) {
		t.Fatalf("edge S4 -> M3@2 = %+v", e)
	}
	// No self edges.
	for _, e := range edges {
		if e.From == e.To {
			t.Fatalf("self edge %v", e)
		}
	}
}

func TestExecutionOfAndProducer(t *testing.T) {
	m, _ := Build(run.Figure2(), joeView(t))
	id, ok := m.ExecutionOf("S4")
	if !ok || id != "M3@1" {
		t.Fatalf("ExecutionOf(S4) = %s, %v", id, ok)
	}
	if _, ok := m.ExecutionOf("S99"); ok {
		t.Fatal("unknown step mapped")
	}
	pe, ok := m.ProducerExecution("d413")
	if !ok || pe != "M3@1" {
		t.Fatalf("ProducerExecution(d413) = %s, %v", pe, ok)
	}
	if _, ok := m.ProducerExecution("d1"); ok {
		t.Fatal("external data has a producer execution")
	}
	if _, ok := m.ProducerExecution("d999"); ok {
		t.Fatal("unknown data has a producer execution")
	}
}

func TestBuildRejectsForeignView(t *testing.T) {
	other := spec.New("other")
	other.MustAddModule(spec.Module{Name: "X"})
	other.MustAddEdge(spec.Input, "X")
	other.MustAddEdge("X", spec.Output)
	v := core.UAdmin(other)
	if _, err := Build(run.Figure2(), v); !errors.Is(err, ErrViewMismatch) {
		t.Fatalf("foreign view accepted: %v", err)
	}
}

func TestExecutedRunsMapCleanly(t *testing.T) {
	// Composite executions over generated runs: every step lands in exactly
	// one execution; executions partition the steps.
	s := spec.Phylogenomics()
	r, _, err := run.Execute(s, run.Config{Seed: 13, LoopIter: [2]int{4, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []*core.UserView{joeView(t), maryView(t), core.UAdmin(s)} {
		m, err := Build(r, v)
		if err != nil {
			t.Fatal(err)
		}
		count := 0
		for _, e := range m.Executions() {
			count += len(e.Steps)
			for _, st := range e.Steps {
				if id, _ := m.ExecutionOf(st); id != e.ID {
					t.Fatalf("step %s maps to %s, expected %s", st, id, e.ID)
				}
			}
		}
		if count != r.NumSteps() {
			t.Fatalf("executions cover %d steps, want %d", count, r.NumSteps())
		}
	}
}

// TestSelfLoopMergesUnderUAdmin pins the documented consequence of the
// paper's "consecutive steps" rule: even under UAdmin, the consecutive
// iterations of a self-looping module form one composite execution, and
// the data passed between iterations is hidden.
func TestSelfLoopMergesUnderUAdmin(t *testing.T) {
	s := spec.New("selfloop")
	s.MustAddModule(spec.Module{Name: "A"})
	s.MustAddModule(spec.Module{Name: "B"})
	s.MustAddEdge(spec.Input, "A")
	s.MustAddEdge("A", "A")
	s.MustAddEdge("A", "B")
	s.MustAddEdge("B", spec.Output)
	r, _, err := run.Execute(s, run.Config{RunID: "sl", Seed: 2, LoopIter: [2]int{3, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(r.StepsOfModule("A")); got != 3 {
		t.Fatalf("A ran %d times, want 3", got)
	}
	m, err := Build(r, core.UAdmin(s))
	if err != nil {
		t.Fatal(err)
	}
	execs := m.ExecutionsOf("A")
	if len(execs) != 1 {
		t.Fatalf("self-loop iterations split into %d executions, want 1", len(execs))
	}
	if len(execs[0].Steps) != 3 {
		t.Fatalf("merged execution has %d steps", len(execs[0].Steps))
	}
	// The inter-iteration data is hidden; the exit data is visible.
	for _, d := range r.DataOn(execs[0].Steps[0], execs[0].Steps[1]) {
		if m.Visible(d) {
			t.Fatalf("inter-iteration data %s visible", d)
		}
	}
	for _, d := range execs[0].Outputs {
		if !m.Visible(d) {
			t.Fatalf("exit data %s hidden", d)
		}
	}
}
