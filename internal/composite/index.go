package composite

import (
	"repro/internal/run"
)

// Projector is the integer-indexed face of a Mapping: the per-(run, view)
// arrays the projection fast path intersects with a bitset-backed UAdmin
// closure. Everything is precomputed once per mapping — step → execution
// ordinal, data → producer-execution ordinal, and each execution's input /
// output data as interned ids in CSR layout — so projecting a closure is
// pure int32 arithmetic until the final Result is materialized.
//
// Execution ordinals are positions in the mapping's topological order, so
// walking ordinals ascending visits executions exactly as Executions()
// returns them.
type Projector struct {
	ix    *run.Index
	execs []*Execution // topological order; ordinal = slice position

	stepExec []int32 // interned step -> execution ordinal
	prodExec []int32 // interned data -> producer execution ordinal, -1 external

	inOff, inData   []int32 // ordinal -> interned input data (CSR, ascending)
	outOff, outData []int32 // ordinal -> interned output data (CSR, ascending)
}

// Projector returns the mapping's integer-indexed projector, building it
// on first use (concurrent first calls build once). The projector is
// immutable and safe to share.
func (m *Mapping) Projector() *Projector {
	m.projOnce.Do(func() { m.proj = buildProjector(m) })
	return m.proj
}

func buildProjector(m *Mapping) *Projector {
	ix := m.r.Index()
	p := &Projector{
		ix:    ix,
		execs: m.Executions(),
	}
	p.stepExec = make([]int32, ix.NumSteps())
	for ord, e := range p.execs {
		for _, s := range e.Steps {
			id, _ := ix.StepID(s)
			p.stepExec[id] = int32(ord)
		}
	}
	p.prodExec = make([]int32, ix.NumData())
	for d := range p.prodExec {
		if s := ix.Producer(int32(d)); s >= 0 {
			p.prodExec[d] = p.stepExec[s]
		} else {
			p.prodExec[d] = -1
		}
	}
	p.inOff = make([]int32, len(p.execs)+1)
	p.outOff = make([]int32, len(p.execs)+1)
	for ord, e := range p.execs {
		for _, d := range e.Inputs {
			id, _ := ix.DataID(d)
			p.inData = append(p.inData, id)
		}
		p.inOff[ord+1] = int32(len(p.inData))
		for _, d := range e.Outputs {
			id, _ := ix.DataID(d)
			p.outData = append(p.outData, id)
		}
		p.outOff[ord+1] = int32(len(p.outData))
	}
	return p
}

// Index returns the run index the projector's interned ids refer to. A
// closure projects through this projector only when it carries the same
// index (pointer identity).
func (p *Projector) Index() *run.Index { return p.ix }

// NumExecutions returns the number of composite executions.
func (p *Projector) NumExecutions() int { return len(p.execs) }

// Execution returns the execution at a topological ordinal.
func (p *Projector) Execution(ord int32) *Execution { return p.execs[ord] }

// ExecOfStep returns the execution ordinal containing an interned step.
func (p *Projector) ExecOfStep(s int32) int32 { return p.stepExec[s] }

// ProducerExec returns the execution ordinal that produced an interned
// data id, or -1 when the data is external (user/workflow input).
func (p *Projector) ProducerExec(d int32) int32 { return p.prodExec[d] }

// InputsOf returns an execution's interned input data, ascending (= natural
// order). The slice aliases the projector; callers must not mutate it.
func (p *Projector) InputsOf(ord int32) []int32 { return p.inData[p.inOff[ord]:p.inOff[ord+1]] }

// OutputsOf returns an execution's interned output data, ascending. The
// slice aliases the projector; callers must not mutate it.
func (p *Projector) OutputsOf(ord int32) []int32 { return p.outData[p.outOff[ord]:p.outOff[ord+1]] }
