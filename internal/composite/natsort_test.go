package composite

import (
	"strings"
	"testing"
)

// TestSplitNatOverflow mirrors the provenance-side guard: suffixes longer
// than 18 digits fall back to string comparison instead of overflowing.
func TestSplitNatOverflow(t *testing.T) {
	big := "d" + strings.Repeat("9", 25)
	if prefix, n := splitNat(big); prefix != big || n != -1 {
		t.Fatalf("splitNat(%q) = (%q, %d), want string fallback", big, prefix, n)
	}
	if lessNatural(big, "d2") {
		t.Fatalf("%q sorted before d2: overflow wrapped negative", big)
	}
	xs := []string{big, "d10", "d2"}
	sortNatural(xs)
	if xs[0] != "d2" || xs[1] != "d10" || xs[2] != big {
		t.Fatalf("sorted = %v", xs)
	}
}
