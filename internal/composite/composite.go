// Package composite synthesizes composite executions (Section II): the
// execution of consecutive steps within the same composite module causes a
// virtual execution of the composite step. In Figure 2, Joe's composite M10
// = {M3, M4, M5} has the single virtual execution S13 = {S2..S6} with input
// {d308..d408} and output {d413}, while Mary's M11 = {M3, M4} has two —
// S11 = {S2, S3} and S12 = {S5, S6} — because the visible step S4:M5 sits
// between them.
//
// Formally a composite execution is a weakly connected component of the run
// DAG restricted to the steps whose module belongs to one composite. Its
// inputs are the data objects entering the component from outside (or from
// the user); its outputs are the data objects leaving it (or ending the
// run). Data passed between steps inside one component is hidden.
//
// One consequence worth calling out: the rule applies to *every* view,
// including UAdmin. A self-looping module's consecutive iterations are
// consecutive steps of one (singleton) composite, so they merge into a
// single virtual execution and the data passed between iterations is
// hidden even at the finest granularity — just as Joe's S13 hides the
// looping of M3. The paper's example workflows only contain multi-module
// loops, where UAdmin keeps every iteration separate because a visible
// step of another module always sits between them.
package composite

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/run"
	"repro/internal/spec"
)

// ErrViewMismatch reports a view whose specification does not cover the
// run's modules.
var ErrViewMismatch = errors.New("composite: view does not cover run")

// Execution is one virtual execution of a composite module.
type Execution struct {
	// ID identifies the execution. Single-step executions keep their step
	// id (so UAdmin provenance reads exactly like the paper's S1..S10);
	// multi-step executions are named <composite>@<ordinal>.
	ID string
	// Composite is the composite module this is an execution of.
	Composite string
	// Steps are the member step ids in natural order.
	Steps []string
	// Inputs are the data objects entering the execution from outside.
	Inputs []string
	// Outputs are the data objects leaving the execution.
	Outputs []string
}

// Mapping relates a run to the composite executions induced by a view.
type Mapping struct {
	r      *run.Run
	v      *core.UserView
	execs  map[string]*Execution // id -> execution
	ofStep map[string]string     // step id -> execution id
	order  []string              // execution ids in topological order

	// allSingleton is true when every execution is one step (id == step
	// id) — always the case for UAdmin over loop-free composites — letting
	// the projection skip its visibility bookkeeping.
	allSingleton bool

	projOnce sync.Once
	proj     *Projector
}

// Build computes the composite executions of r under view v. Every module
// instantiated by the run must belong to some composite of the view.
func Build(r *run.Run, v *core.UserView) (*Mapping, error) {
	m := &Mapping{
		r:      r,
		v:      v,
		execs:  make(map[string]*Execution),
		ofStep: make(map[string]string),
	}
	// Group steps by composite.
	byComp := make(map[string][]string)
	for _, st := range r.Steps() {
		comp, ok := v.CompositeOf(st.Module)
		if !ok {
			return nil, fmt.Errorf("%w: module %q of step %q not in view", ErrViewMismatch, st.Module, st.ID)
		}
		byComp[comp] = append(byComp[comp], st.ID)
	}
	// Weak components within each composite's step set.
	g := r.Graph()
	comps := make([]string, 0, len(byComp))
	for c := range byComp {
		comps = append(comps, c)
	}
	sort.Strings(comps)
	type protoExec struct {
		comp  string
		steps []string
	}
	var protos []protoExec
	for _, comp := range comps {
		keep := make(map[string]bool, len(byComp[comp]))
		for _, id := range byComp[comp] {
			keep[id] = true
		}
		sub := g.InducedSubgraph(keep)
		for _, cc := range sub.WeaklyConnectedComponents() {
			sortNatural(cc)
			protos = append(protos, protoExec{comp: comp, steps: cc})
		}
	}
	// Topologically order executions by their earliest step position so
	// ordinals are stable and meaningful.
	topo, err := g.TopoSort()
	if err != nil {
		return nil, fmt.Errorf("composite: run graph cyclic: %w", err)
	}
	pos := make(map[string]int, len(topo))
	for i, n := range topo {
		pos[n] = i
	}
	sort.SliceStable(protos, func(i, j int) bool {
		return pos[protos[i].steps[0]] < pos[protos[j].steps[0]]
	})
	ordinal := make(map[string]int)
	m.allSingleton = true
	for _, p := range protos {
		var id string
		if len(p.steps) == 1 {
			id = p.steps[0]
		} else {
			m.allSingleton = false
			ordinal[p.comp]++
			id = fmt.Sprintf("%s@%d", p.comp, ordinal[p.comp])
		}
		e := &Execution{ID: id, Composite: p.comp, Steps: p.steps}
		m.execs[id] = e
		m.order = append(m.order, id)
		for _, s := range p.steps {
			m.ofStep[s] = id
		}
	}
	// Compute inputs and outputs.
	for _, e := range m.execs {
		inSet := make(map[string]bool)
		outSet := make(map[string]bool)
		member := make(map[string]bool, len(e.Steps))
		for _, s := range e.Steps {
			member[s] = true
		}
		for _, s := range e.Steps {
			for _, p := range g.Predecessors(s) {
				if !member[p] {
					for _, d := range r.DataOn(p, s) {
						inSet[d] = true
					}
				}
			}
			for _, w := range g.Successors(s) {
				if !member[w] {
					for _, d := range r.DataOn(s, w) {
						outSet[d] = true
					}
				}
			}
		}
		e.Inputs = sortedNatural(inSet)
		e.Outputs = sortedNatural(outSet)
	}
	return m, nil
}

// Run returns the underlying run.
func (m *Mapping) Run() *run.Run { return m.r }

// View returns the view the mapping was built for.
func (m *Mapping) View() *core.UserView { return m.v }

// Execution returns the execution with the given id.
func (m *Mapping) Execution(id string) (*Execution, bool) {
	e, ok := m.execs[id]
	return e, ok
}

// Executions returns all executions in topological order.
func (m *Mapping) Executions() []*Execution {
	out := make([]*Execution, len(m.order))
	for i, id := range m.order {
		out[i] = m.execs[id]
	}
	return out
}

// NumExecutions returns the number of composite executions.
func (m *Mapping) NumExecutions() int { return len(m.execs) }

// AllSingleton reports whether every execution consists of exactly one
// step, i.e. execution ids coincide with step ids. UAdmin mappings are
// all-singleton whenever no module self-loops.
func (m *Mapping) AllSingleton() bool { return m.allSingleton }

// ExecutionOf returns the execution id containing the given step.
func (m *Mapping) ExecutionOf(step string) (string, bool) {
	id, ok := m.ofStep[step]
	return id, ok
}

// ExecutionsOf returns the executions of one composite module, in order.
func (m *Mapping) ExecutionsOf(composite string) []*Execution {
	var out []*Execution
	for _, id := range m.order {
		if m.execs[id].Composite == composite {
			out = append(out, m.execs[id])
		}
	}
	return out
}

// ProducerExecution returns the execution that produced data object d, or
// ("", false) when d is external (user/workflow input) or unknown.
func (m *Mapping) ProducerExecution(d string) (string, bool) {
	p, ok := m.r.Producer(d)
	if !ok || p == "" {
		return "", false
	}
	id, ok := m.ofStep[p]
	return id, ok
}

// Visible reports whether data object d crosses execution boundaries under
// this mapping: d is visible iff it is external, a final output, or flows
// between two different executions. Data internal to one execution is
// hidden ("Joe would not see the data d411").
func (m *Mapping) Visible(d string) bool {
	p, ok := m.r.Producer(d)
	if !ok {
		return false
	}
	if p == "" {
		return true // user/workflow input
	}
	pe := m.ofStep[p]
	for _, c := range m.r.Consumers(d) {
		if m.ofStep[c] != pe {
			return true
		}
	}
	// Final outputs have no consuming step but leave via OUTPUT.
	for _, fo := range m.r.FinalOutputs() {
		if fo == d {
			return true
		}
	}
	return false
}

// Edge is a dataflow edge between two composite executions (or INPUT /
// OUTPUT endpoints), labelled with the data passed.
type Edge struct {
	From, To string
	Data     []string
}

// Edges returns the execution-level dataflow: one edge per ordered pair of
// distinct executions that exchange data, plus INPUT and OUTPUT edges,
// ordered deterministically.
func (m *Mapping) Edges() []Edge {
	acc := make(map[[2]string]map[string]bool)
	add := func(from, to, d string) {
		key := [2]string{from, to}
		if acc[key] == nil {
			acc[key] = make(map[string]bool)
		}
		acc[key][d] = true
	}
	m.r.Graph().EachEdge(func(u, w string) {
		for _, d := range m.r.DataOn(u, w) {
			from, to := u, w
			if u != spec.Input {
				from = m.ofStep[u]
			}
			if w != spec.Output {
				to = m.ofStep[w]
			}
			if from != to {
				add(from, to, d)
			}
		}
	})
	keys := make([][2]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	out := make([]Edge, len(keys))
	for i, k := range keys {
		out[i] = Edge{From: k[0], To: k[1], Data: sortedNatural(acc[k])}
	}
	return out
}

func sortedNatural(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sortNatural(out)
	return out
}

// sortNatural sorts ids with numeric suffixes numerically (d2 < d10).
func sortNatural(xs []string) {
	sort.Slice(xs, func(i, j int) bool { return lessNatural(xs[i], xs[j]) })
}

func lessNatural(a, b string) bool {
	pa, na := splitNat(a)
	pb, nb := splitNat(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

func splitNat(s string) (string, int) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	// No digit suffix, or one too long to fit an int without overflow
	// (> 18 digits): fall back to plain string comparison.
	if i == len(s) || len(s)-i > 18 {
		return s, -1
	}
	n := 0
	for _, c := range s[i:] {
		n = n*10 + int(c-'0')
	}
	return s[:i], n
}
