package server

import "repro/internal/obs"

// The slow-query ring was born here in PR 5 and lifted into internal/obs
// when the router grew its own slowlog — both tiers share one ring type.
// The aliases keep the server's exported surface (and its callers) intact.

// SlowEntry is one slow request; see obs.SlowEntry.
type SlowEntry = obs.SlowEntry

// SlowLog is a bounded ring of slow requests; see obs.SlowLog.
type SlowLog = obs.SlowLog

// NewSlowLog returns a ring holding the most recent size entries
// (minimum 1).
func NewSlowLog(size int) *SlowLog { return obs.NewSlowLog(size) }
