package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

// newTestEngine loads the paper's running example (Figure 1 spec, Figure 2
// run) plus a registered "joe" view into a fresh warehouse.
func newTestEngine(t *testing.T) *provenance.Engine {
	t.Helper()
	w := warehouse.New(0)
	sp := spec.Phylogenomics()
	if err := w.RegisterSpec(sp); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadRun(run.Figure2()); err != nil {
		t.Fatal(err)
	}
	joe, err := core.BuildRelevant(sp, spec.PhyloRelevantJoe())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RegisterView("joe", joe); err != nil {
		t.Fatal(err)
	}
	return provenance.NewEngine(w)
}

// newTestServer returns a ready server and its registry. cfg.ExpvarName
// stays empty (expvar names are process-global and tests run repeatedly).
func newTestServer(t *testing.T, cfg Config) (*Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s, err := New(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t)
	e.AttachMetrics(reg)
	s.SetEngine(e)
	return s, reg
}

// doJSON posts a JSON body and decodes the JSON response.
func doJSON(t *testing.T, h http.Handler, method, url string, body, out any) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, url, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 500 && strings.HasPrefix(rec.Header().Get("Content-Type"), "application/json") {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON response %q: %v", method, url, rec.Body.String(), err)
		}
	}
	return rec
}

func TestServerHealthAndReadiness(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(reg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	// Health answers before the warehouse loads; readiness and the API do
	// not.
	rec := doJSON(t, h, "GET", "/healthz", nil, nil)
	if rec.Code != 200 {
		t.Fatalf("/healthz before load: %d", rec.Code)
	}
	rec = doJSON(t, h, "GET", "/readyz", nil, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before load: %d, want 503", rec.Code)
	}
	for _, u := range []string{"/v1/runs", "/v1/stats"} {
		if rec = doJSON(t, h, "GET", u, nil, nil); rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("GET %s before load: %d, want 503", u, rec.Code)
		}
		if rec.Header().Get("X-Zoom-Trace-Id") == "" {
			t.Fatalf("GET %s: 503 without a trace id", u)
		}
	}
	rec = doJSON(t, h, "POST", "/v1/query", queryRequest{Run: "fig2", Data: "d447"}, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query before load: %d, want 503", rec.Code)
	}
	if snap := reg.Snapshot(); snap.Gauges["server.ready"] != 0 {
		t.Fatalf("server.ready = %d before load", snap.Gauges["server.ready"])
	}

	s.SetEngine(newTestEngine(t))
	if rec = doJSON(t, h, "GET", "/readyz", nil, nil); rec.Code != 200 {
		t.Fatalf("/readyz after load: %d", rec.Code)
	}
	if snap := reg.Snapshot(); snap.Gauges["server.ready"] != 1 {
		t.Fatalf("server.ready = %d after load", snap.Gauges["server.ready"])
	}
}

func TestServerQueryDeep(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	req := queryRequest{Run: "fig2", Data: "d447", Relevant: spec.PhyloRelevantJoe()}
	var resp queryResponse
	rec := doJSON(t, h, "POST", "/v1/query", req, &resp)
	if rec.Code != 200 {
		t.Fatalf("query: %d: %s", rec.Code, rec.Body.String())
	}
	if hdr := rec.Header().Get("X-Zoom-Trace-Id"); hdr == "" || hdr != resp.TraceID {
		t.Fatalf("trace id header %q vs body %q", hdr, resp.TraceID)
	}
	if resp.Kind != "deep" || resp.Outcome != "miss" {
		t.Fatalf("kind=%q outcome=%q, want deep/miss on a cold cache", resp.Kind, resp.Outcome)
	}
	if resp.Result == nil || len(resp.Result.Data) == 0 || len(resp.Result.Executions) == 0 {
		t.Fatalf("empty result: %+v", resp.Result)
	}
	if resp.Timing == nil || resp.Timing.TotalNs <= 0 || resp.Timing.LookupNs <= 0 {
		t.Fatalf("timing not populated: %+v", resp.Timing)
	}
	if resp.Trace != nil {
		t.Fatal("trace embedded without ?trace=1")
	}

	// Same query again: the closure cache serves it, and a fresh trace id
	// is minted.
	var warm queryResponse
	doJSON(t, h, "POST", "/v1/query", req, &warm)
	if warm.Outcome != "hit" {
		t.Fatalf("second query outcome %q, want hit", warm.Outcome)
	}
	if warm.TraceID == resp.TraceID {
		t.Fatal("trace id reused across requests")
	}
	if len(warm.Result.Data) != len(resp.Result.Data) {
		t.Fatalf("warm result differs: %d vs %d data objects", len(warm.Result.Data), len(resp.Result.Data))
	}
}

func TestServerQueryInlineTrace(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	req := queryRequest{Run: "fig2", Data: "d447"}
	var cold queryResponse
	if rec := doJSON(t, h, "POST", "/v1/query?trace=1", req, &cold); rec.Code != 200 {
		t.Fatalf("cold query: %d", rec.Code)
	}
	if cold.Trace == nil {
		t.Fatal("?trace=1 returned no span tree")
	}
	// The cold span tree shows the PR-4 engine stages: the cache lookup
	// with the closure computation nested inside it, then the projection.
	lookup := cold.Trace.Find("query.lookup")
	if lookup == nil {
		t.Fatalf("no query.lookup span: %+v", cold.Trace)
	}
	if lookup.Find("closure.compute") == nil {
		t.Fatalf("cold lookup has no closure.compute child: %+v", lookup)
	}
	project := cold.Trace.Find("query.project")
	if project == nil {
		t.Fatalf("no query.project span: %+v", cold.Trace)
	}
	if lookup.DurNs <= 0 || project.DurNs < 0 {
		t.Fatalf("span durations lookup=%d project=%d", lookup.DurNs, project.DurNs)
	}
	if cold.Trace.DurNs < lookup.DurNs {
		t.Fatalf("root (%dns) shorter than lookup (%dns)", cold.Trace.DurNs, lookup.DurNs)
	}

	// Warm: the lookup span remains but nothing is computed.
	var warm queryResponse
	doJSON(t, h, "POST", "/v1/query?trace=1", req, &warm)
	if warm.Trace.Find("query.lookup") == nil {
		t.Fatal("warm trace lost query.lookup")
	}
	if warm.Trace.Find("closure.compute") != nil {
		t.Fatal("warm trace recorded closure.compute on a cache hit")
	}
}

func TestServerQueryKinds(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	var imm queryResponse
	rec := doJSON(t, h, "POST", "/v1/query", queryRequest{Run: "fig2", Data: "d447", Kind: "immediate"}, &imm)
	if rec.Code != 200 || imm.Execution == nil {
		t.Fatalf("immediate: %d %+v", rec.Code, imm.Execution)
	}
	if imm.Execution.ID != "S10" {
		t.Fatalf("immediate provenance of d447 under UAdmin = %q, want S10", imm.Execution.ID)
	}

	// External input: immediate provenance is nil, not an error.
	var ext queryResponse
	rec = doJSON(t, h, "POST", "/v1/query", queryRequest{Run: "fig2", Data: "d1", Kind: "immediate"}, &ext)
	if rec.Code != 200 || ext.Execution != nil {
		t.Fatalf("immediate of input: %d %+v", rec.Code, ext.Execution)
	}

	var der queryResponse
	rec = doJSON(t, h, "POST", "/v1/query?trace=1", queryRequest{Run: "fig2", Data: "d1", Kind: "derived"}, &der)
	if rec.Code != 200 || der.Result == nil || len(der.Result.Data) == 0 {
		t.Fatalf("derived: %d %+v", rec.Code, der.Result)
	}
	if der.Trace == nil || der.Trace.Find("query.derived") == nil {
		t.Fatal("derived query recorded no query.derived span")
	}

	if rec = doJSON(t, h, "POST", "/v1/query", queryRequest{Run: "fig2", Data: "d447", Kind: "sideways"}, nil); rec.Code != 400 {
		t.Fatalf("unknown kind: %d, want 400", rec.Code)
	}
}

func TestServerQueryErrors(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	cases := []struct {
		name string
		body any
		raw  string
		want int
	}{
		{name: "bad json", raw: "{not json", want: 400},
		{name: "unknown field", raw: `{"run":"fig2","data":"d447","vew":"joe"}`, want: 400},
		{name: "missing run", body: queryRequest{Data: "d447"}, want: 400},
		{name: "missing data", body: queryRequest{Run: "fig2"}, want: 400},
		{name: "unknown run", body: queryRequest{Run: "ghost", Data: "d447"}, want: 404},
		{name: "unknown data", body: queryRequest{Run: "fig2", Data: "d99999"}, want: 404},
		{name: "unknown view", body: queryRequest{Run: "fig2", Data: "d447", View: "nobody"}, want: 404},
		{name: "view and relevant", body: queryRequest{Run: "fig2", Data: "d447", View: "joe", Relevant: []string{"M2"}}, want: 400},
		{name: "bad relevant", body: queryRequest{Run: "fig2", Data: "d447", Relevant: []string{"M99"}}, want: 400},
	}
	for _, c := range cases {
		var rec *httptest.ResponseRecorder
		if c.raw != "" {
			req := httptest.NewRequest("POST", "/v1/query", strings.NewReader(c.raw))
			rec = httptest.NewRecorder()
			h.ServeHTTP(rec, req)
		} else {
			rec = doJSON(t, h, "POST", "/v1/query", c.body, nil)
		}
		if rec.Code != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, rec.Code, c.want, rec.Body.String())
		}
		if rec.Header().Get("X-Zoom-Trace-Id") == "" {
			t.Errorf("%s: error response without trace id", c.name)
		}
		var eb errorBody
		if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error == "" {
			t.Errorf("%s: error body %q", c.name, rec.Body.String())
		}
	}
}

func TestServerBatch(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	data := []string{"d447", "d413", "d414", "d446", "d409"}
	var resp batchResponse
	rec := doJSON(t, h, "POST", "/v1/batch?trace=1",
		batchRequest{Run: "fig2", Data: data, View: "joe", Workers: 3}, &resp)
	if rec.Code != 200 {
		t.Fatalf("batch: %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Count != len(data) || len(resp.Results) != len(data) {
		t.Fatalf("batch answered %d/%d", resp.Count, len(data))
	}
	for i, r := range resp.Results {
		if r == nil || r.Root != data[i] {
			t.Fatalf("result %d: %+v, want root %s", i, r, data[i])
		}
	}
	if resp.Trace == nil {
		t.Fatal("?trace=1 returned no batch trace")
	}
	// Each member query records its own span under the root.
	for _, d := range data {
		if resp.Trace.Find("batch.query "+d) == nil {
			t.Fatalf("no span for batch member %s: %+v", d, resp.Trace)
		}
	}

	// A bad id fails the whole batch with a 404.
	rec = doJSON(t, h, "POST", "/v1/batch", batchRequest{Run: "fig2", Data: []string{"d447", "dYYY"}}, nil)
	if rec.Code != 404 {
		t.Fatalf("batch with bad id: %d, want 404", rec.Code)
	}
	// An empty batch is a client error.
	rec = doJSON(t, h, "POST", "/v1/batch", batchRequest{Run: "fig2"}, nil)
	if rec.Code != 400 {
		t.Fatalf("empty batch: %d, want 400", rec.Code)
	}
}

func TestServerRunsAndStats(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	var runsResp struct {
		TraceID string    `json:"trace_id"`
		Runs    []runInfo `json:"runs"`
	}
	if rec := doJSON(t, h, "GET", "/v1/runs", nil, &runsResp); rec.Code != 200 {
		t.Fatalf("/v1/runs: %d", rec.Code)
	}
	if len(runsResp.Runs) != 1 || runsResp.Runs[0].ID != "fig2" ||
		runsResp.Runs[0].Spec != "phylogenomics" || runsResp.Runs[0].Steps != 10 {
		t.Fatalf("runs: %+v", runsResp.Runs)
	}

	var statsResp struct {
		Stats map[string]any `json:"stats"`
	}
	if rec := doJSON(t, h, "GET", "/v1/stats", nil, &statsResp); rec.Code != 200 {
		t.Fatalf("/v1/stats: %d", rec.Code)
	}
	if len(statsResp.Stats) == 0 {
		t.Fatal("empty stats")
	}
}

func TestServerMetricsExposition(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()

	// Generate traffic first so the histograms have observations.
	doJSON(t, h, "POST", "/v1/query", queryRequest{Run: "fig2", Data: "d447"}, nil)
	doJSON(t, h, "POST", "/v1/query", queryRequest{Run: "fig2", Data: "d447"}, nil)
	doJSON(t, h, "POST", "/v1/query", queryRequest{Run: "ghost", Data: "dX"}, nil)

	rec := doJSON(t, h, "GET", "/metrics", nil, nil)
	if rec.Code != 200 {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	text := rec.Body.String()
	for _, want := range []string{
		"# TYPE zoom_http_requests counter",
		"# TYPE zoom_http_request_ns histogram",
		"# TYPE zoom_server_ready gauge",
		"zoom_server_ready 1",
		`zoom_query_deep_total_ns_count{outcome="hit"}`,
		`zoom_query_deep_total_ns_count{outcome="miss"}`,
		`le="+Inf"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "zoom_http_errors 1") {
		t.Fatalf("error counter not exported:\n%s", text)
	}
}

func TestServerSlowlog(t *testing.T) {
	// A negative threshold logs every request.
	s, _ := newTestServer(t, Config{SlowThreshold: -1, SlowLogSize: 4})
	h := s.Handler()

	for i := 0; i < 6; i++ {
		doJSON(t, h, "POST", "/v1/query?trace=1", queryRequest{Run: "fig2", Data: "d447"}, nil)
	}
	var resp struct {
		ThresholdNs int64       `json:"threshold_ns"`
		Entries     []SlowEntry `json:"entries"`
	}
	if rec := doJSON(t, h, "GET", "/debug/slowlog", nil, &resp); rec.Code != 200 {
		t.Fatalf("/debug/slowlog: %d", rec.Code)
	}
	if len(resp.Entries) != 4 {
		t.Fatalf("slow log holds %d entries, want ring size 4", len(resp.Entries))
	}
	for i, e := range resp.Entries {
		if e.TraceID == "" || e.Route != "POST /v1/query" || e.Status != 200 || e.DurNs < 0 {
			t.Fatalf("entry %d malformed: %+v", i, e)
		}
		if e.Trace.Find("query.lookup") == nil {
			t.Fatalf("entry %d span tree lost the engine stages: %+v", i, e.Trace)
		}
		if i > 0 && e.Time.After(resp.Entries[i-1].Time) {
			t.Fatalf("entries not newest-first at %d", i)
		}
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(4)
	if l.Len() != 0 {
		t.Fatalf("fresh ring Len = %d", l.Len())
	}
	for i := 0; i < 10; i++ {
		l.Add(SlowEntry{DurNs: int64(i)})
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	got := l.Entries()
	for i, want := range []int64{9, 8, 7, 6} {
		if got[i].DurNs != want {
			t.Fatalf("entry %d = %d, want %d (newest first)", i, got[i].DurNs, want)
		}
	}
}

func TestServerExpvarConflict(t *testing.T) {
	reg := obs.NewRegistry()
	name := fmt.Sprintf("zoom-test-conflict-%d", time.Now().UnixNano())
	if _, err := New(reg, Config{ExpvarName: name}); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	if _, err := New(obs.NewRegistry(), Config{ExpvarName: name}); err == nil {
		t.Fatal("second server published the same expvar name without error")
	} else if !strings.Contains(err.Error(), name) {
		t.Fatalf("conflict error does not name the variable: %v", err)
	}
}

func TestServerDebugEndpoints(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	h := s.Handler()
	for _, u := range []string{"/debug/vars", "/debug/pprof/"} {
		if rec := doJSON(t, h, "GET", u, nil, nil); rec.Code != 200 {
			t.Fatalf("GET %s: %d", u, rec.Code)
		}
	}
}

// TestServerConcurrentBatchTrace hammers the API from many goroutines —
// traced batches, traced and untraced single queries, metric scrapes, and
// slow-log reads all at once — so -race can see the span tree, ring
// buffer, view memo, and registry interact. (`make race` runs every test
// matching Concurrent|Stress.)
func TestServerConcurrentBatchTrace(t *testing.T) {
	s, _ := newTestServer(t, Config{SlowThreshold: -1, SlowLogSize: 32})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	data := []string{"d447", "d413", "d414", "d446", "d409", "d201"}
	const workers = 8
	iters := 30
	if testing.Short() {
		iters = 5
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (w + i) % 4 {
				case 0:
					body, _ := json.Marshal(batchRequest{Run: "fig2", Data: data, Relevant: spec.PhyloRelevantJoe()})
					resp, err := http.Post(ts.URL+"/v1/batch?trace=1", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					var br batchResponse
					err = json.NewDecoder(resp.Body).Decode(&br)
					resp.Body.Close()
					if err != nil || resp.StatusCode != 200 || br.Count != len(data) {
						errs <- fmt.Errorf("batch: status=%d count=%d err=%v", resp.StatusCode, br.Count, err)
						return
					}
				case 1, 2:
					body, _ := json.Marshal(queryRequest{Run: "fig2", Data: data[i%len(data)]})
					resp, err := http.Post(ts.URL+"/v1/query?trace=1", "application/json", bytes.NewReader(body))
					if err != nil {
						errs <- err
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != 200 {
						errs <- fmt.Errorf("query status %d", resp.StatusCode)
						return
					}
				case 3:
					for _, u := range []string{"/metrics", "/debug/slowlog"} {
						resp, err := http.Get(ts.URL + u)
						if err != nil {
							errs <- err
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := s.SlowLog().Len(); n == 0 {
		t.Fatal("no slow-log entries after a hammered run with threshold -1")
	}
}

// TestServerQueryLabels exercises the per-request labels override: true
// routes a miss through the reachability-label path, false forces the BFS,
// and a label-less warehouse falls back (counted) while still answering.
func TestServerQueryLabels(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(reg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	w := warehouse.New(0)
	w.SetLabelIndex(true)
	sp := spec.Phylogenomics()
	if err := w.RegisterSpec(sp); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadRun(run.Figure2()); err != nil {
		t.Fatal(err)
	}
	s.SetEngine(provenance.NewEngine(w))
	h := s.Handler()

	yes, no := true, false
	var resp queryResponse
	rec := doJSON(t, h, "POST", "/v1/query", queryRequest{Run: "fig2", Data: "d447", Labels: &yes}, &resp)
	if rec.Code != 200 {
		t.Fatalf("labels query: %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Outcome != "miss" || resp.Strategy != "labels" {
		t.Fatalf("outcome=%q strategy=%q, want miss/labels", resp.Outcome, resp.Strategy)
	}
	// A different data object with labels=false must run the BFS.
	rec = doJSON(t, h, "POST", "/v1/query", queryRequest{Run: "fig2", Data: "d410", Labels: &no}, &resp)
	if rec.Code != 200 {
		t.Fatalf("bfs query: %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Outcome != "miss" || resp.Strategy != "bfs" {
		t.Fatalf("outcome=%q strategy=%q, want miss/bfs", resp.Outcome, resp.Strategy)
	}
	// Warm re-query: a hit reports no strategy (nothing was computed). A
	// fresh response struct matters — strategy is omitempty, so decoding
	// into a reused struct would keep the previous value.
	var warm queryResponse
	rec = doJSON(t, h, "POST", "/v1/query", queryRequest{Run: "fig2", Data: "d447", Labels: &yes}, &warm)
	if rec.Code != 200 || warm.Outcome != "hit" || warm.Strategy != "" {
		t.Fatalf("warm: code=%d outcome=%q strategy=%q, want 200/hit/empty", rec.Code, warm.Outcome, warm.Strategy)
	}
	// Derived queries honor the override too (uncached, so every call
	// dispatches).
	rec = doJSON(t, h, "POST", "/v1/query", queryRequest{Run: "fig2", Data: "d410", Kind: "derived", Labels: &yes}, &resp)
	if rec.Code != 200 || resp.Result == nil {
		t.Fatalf("derived labels query: %d: %s", rec.Code, rec.Body.String())
	}
	if lc := w.LabelCounters(); lc.Hits < 2 || lc.Fallbacks != 0 {
		t.Fatalf("label counters after labeled queries: %+v", lc)
	}

	// Against a label-less warehouse the override falls back, counted.
	s2, err := New(obs.NewRegistry(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	e2 := newTestEngine(t)
	s2.SetEngine(e2)
	var fb queryResponse
	rec = doJSON(t, s2.Handler(), "POST", "/v1/query", queryRequest{Run: "fig2", Data: "d447", Labels: &yes}, &fb)
	if rec.Code != 200 {
		t.Fatalf("fallback query: %d: %s", rec.Code, rec.Body.String())
	}
	if fb.Outcome != "miss" || fb.Strategy != "bfs" {
		t.Fatalf("fallback outcome=%q strategy=%q, want miss/bfs", fb.Outcome, fb.Strategy)
	}
	if lc := e2.Warehouse().LabelCounters(); lc.Fallbacks != 1 {
		t.Fatalf("fallback not counted: %+v", lc)
	}
}

func TestReadyzReportsLoadProgress(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(reg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	get := func() (int, readyzBody) {
		t.Helper()
		req := httptest.NewRequest("GET", "/readyz", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		var body readyzBody
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("/readyz: bad JSON %q: %v", rec.Body.String(), err)
		}
		return rec.Code, body
	}

	// Before any load progress: not ready, zero counts.
	code, body := get()
	if code != http.StatusServiceUnavailable || body.Ready {
		t.Fatalf("/readyz before load: code=%d body=%+v", code, body)
	}
	if body.RunsLoaded != 0 || body.RunsTotal != 0 {
		t.Fatalf("/readyz before load: %+v, want 0/0", body)
	}

	// Mid-load: still 503, progress visible.
	s.SetLoadProgress(0, 8)
	s.SetLoadProgress(3, 8)
	code, body = get()
	if code != http.StatusServiceUnavailable || body.Ready {
		t.Fatalf("/readyz mid-load: code=%d body=%+v", code, body)
	}
	if body.RunsLoaded != 3 || body.RunsTotal != 8 {
		t.Fatalf("/readyz mid-load: %+v, want 3/8", body)
	}

	// Loaded: 200 with final counts.
	s.SetLoadProgress(8, 8)
	s.SetEngine(newTestEngine(t))
	code, body = get()
	if code != http.StatusOK || !body.Ready {
		t.Fatalf("/readyz after load: code=%d body=%+v", code, body)
	}
	if body.RunsLoaded != 8 || body.RunsTotal != 8 {
		t.Fatalf("/readyz after load: %+v, want 8/8", body)
	}
}

// TestServerTraceIDPropagation: a valid inbound X-Zoom-Trace-Id is adopted
// for the whole request (header, body, slow log), so a routed query keeps
// one trace id end-to-end; an invalid one is replaced with a fresh id.
func TestServerTraceIDPropagation(t *testing.T) {
	s, _ := newTestServer(t, Config{SlowThreshold: -1})
	h := s.Handler()
	const id = "00000000deadbeef"

	body, _ := json.Marshal(map[string]any{"run": "fig2", "data": "d447"})
	req := httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body))
	req.Header.Set(TraceIDHeader, id)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if got := rec.Header().Get(TraceIDHeader); got != id {
		t.Fatalf("response header id %q, want inbound %q", got, id)
	}
	var resp struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != id {
		t.Fatalf("body trace_id %q, want inbound %q", resp.TraceID, id)
	}
	entries := s.SlowLog().Entries()
	if len(entries) == 0 || entries[0].TraceID != id {
		t.Fatalf("slow log did not keep the inbound trace id: %+v", entries)
	}

	// An invalid inbound id must be replaced, not echoed.
	req = httptest.NewRequest("POST", "/v1/query", bytes.NewReader(body))
	req.Header.Set(TraceIDHeader, "not-a-trace-id!!")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	got := rec.Header().Get(TraceIDHeader)
	if got == "not-a-trace-id!!" || !obs.ValidTraceID(got) {
		t.Fatalf("invalid inbound id echoed or replacement invalid: %q", got)
	}
}

// TestServerRouteMetrics: each API route owns status-class counters, a
// latency histogram, and an in-flight gauge, and they reach /metrics with
// the status class folded into a class label.
func TestServerRouteMetrics(t *testing.T) {
	s, reg := newTestServer(t, Config{})
	h := s.Handler()

	var out map[string]any
	doJSON(t, h, "POST", "/v1/query", map[string]any{"run": "fig2", "data": "d447"}, &out)
	rec := doJSON(t, h, "POST", "/v1/query", map[string]any{"run": "no-such-run", "data": "d447"}, nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown run: status %d", rec.Code)
	}
	doJSON(t, h, "GET", "/v1/runs", nil, &out)

	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"http.query.status.2xx": 1,
		"http.query.status.4xx": 1,
		"http.runs.status.2xx":  1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if h := snap.Histograms["http.query.ns"]; h.Count != 2 {
		t.Errorf("http.query.ns count = %d, want 2", h.Count)
	}
	if g, ok := snap.Gauges["http.query.in_flight"]; !ok || g != 0 {
		t.Errorf("http.query.in_flight = %d (present %v), want 0", g, ok)
	}

	var prom bytes.Buffer
	obs.WritePrometheus(&prom, snap, "zoom")
	for _, want := range []string{
		`zoom_http_query_status{class="2xx"} 1`,
		`zoom_http_query_status{class="4xx"} 1`,
		`zoom_http_query_in_flight 0`,
		`zoom_http_query_ns_count 2`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestServerRunsSortedWithCount: GET /v1/runs reports a count and lists
// runs in sorted id order regardless of load order — the stable shape the
// cluster router's scatter-gather merge depends on.
func TestServerRunsSortedWithCount(t *testing.T) {
	w := warehouse.New(0)
	sp := spec.Phylogenomics()
	if err := w.RegisterSpec(sp); err != nil {
		t.Fatal(err)
	}
	// Load in non-sorted id order.
	for _, id := range []string{"zrun", "arun"} {
		r, _, err := run.Execute(sp, run.Config{RunID: id, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.LoadRun(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.LoadRun(run.Figure2()); err != nil {
		t.Fatal(err)
	}
	s, err := New(obs.NewRegistry(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetEngine(provenance.NewEngine(w))

	var resp struct {
		TraceID string `json:"trace_id"`
		Count   int    `json:"count"`
		Runs    []struct {
			ID string `json:"id"`
		} `json:"runs"`
	}
	doJSON(t, s.Handler(), "GET", "/v1/runs", nil, &resp)
	if resp.Count != 3 || len(resp.Runs) != 3 {
		t.Fatalf("count %d, %d runs, want 3", resp.Count, len(resp.Runs))
	}
	want := []string{"arun", "fig2", "zrun"}
	for i, r := range resp.Runs {
		if r.ID != want[i] {
			t.Fatalf("runs[%d] = %q, want %q (sorted)", i, r.ID, want[i])
		}
	}
}

// TestServerConcurrentBatchDrain regression-pins the graceful-drain path:
// a SIGTERM (context cancellation, as cmdServe wires it) arriving while a
// /v1/batch is in flight must let the batch finish with a 200 while the
// listener stops accepting new connections.
func TestServerConcurrentBatchDrain(t *testing.T) {
	s, _ := newTestServer(t, Config{SlowThreshold: time.Hour})
	started := make(chan struct{})
	release := make(chan struct{})
	s.testHookBatchStarted = func() {
		close(started)
		<-release
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln, 10*time.Second) }()

	type reply struct {
		status int
		body   []byte
		err    error
	}
	resc := make(chan reply, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/batch", "application/json",
			strings.NewReader(`{"run":"fig2","data":["d447","d413"]}`))
		if err != nil {
			resc <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		resc <- reply{status: resp.StatusCode, body: b}
	}()

	<-started
	cancel() // what SIGTERM does in cmdServe

	// The listener must close while the batch is still being held open.
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, derr := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if derr != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			close(release)
			t.Fatal("listener still accepting after shutdown began")
		}
		time.Sleep(10 * time.Millisecond)
	}

	close(release)
	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight batch failed during drain: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight batch status %d during drain: %s", res.status, res.body)
	}
	var batch struct {
		Count   int               `json:"count"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(res.body, &batch); err != nil {
		t.Fatalf("bad batch body after drain: %v", err)
	}
	if batch.Count != 2 || len(batch.Results) != 2 {
		t.Fatalf("drained batch answered %d/%d results, want 2", batch.Count, len(batch.Results))
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve returned %v after drain", err)
	}
}
