package server

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// postTraced posts a query with trace headers and returns the decoded
// inline trace.
func postTraced(t *testing.T, s *Server, traceID, parentSpan string) *obs.SpanNode {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/query?trace=1",
		strings.NewReader(`{"run":"fig2","data":"d447"}`))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceIDHeader, traceID)
	if parentSpan != "" {
		req.Header.Set(ParentSpanHeader, parentSpan)
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp struct {
		Trace *obs.SpanNode `json:"trace"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Trace == nil {
		t.Fatal("no inline trace")
	}
	return resp.Trace
}

// TestServerParentSpanTag checks the worker half of cross-process
// stitching: a routed, traced request carries X-Zoom-Parent-Span, and the
// worker tags its root span with the sanitized value so the router's
// stitched tree names the attempt the subtree answered.
func TestServerParentSpanTag(t *testing.T) {
	s, _ := newTestServer(t, Config{})

	const id = "00000000deadbeef"
	tr := postTraced(t, s, id, id+".a1")
	if got := tr.Tags["parent_span"]; got != id+".a1" {
		t.Fatalf("root parent_span = %q, want %q", got, id+".a1")
	}

	// Without the header there is no tag at all.
	tr = postTraced(t, s, id, "")
	if _, ok := tr.Tags["parent_span"]; ok {
		t.Fatalf("parent_span tag appeared without the header: %+v", tr.Tags)
	}

	// Hostile values — wrong charset, over-long — are dropped, never
	// echoed into the span tree.
	for _, hostile := range []string{
		`inject"quote`,
		"semi;colon",
		"new\nline",
		strings.Repeat("a", obs.MaxHeaderToken+1),
	} {
		tr = postTraced(t, s, id, hostile)
		if got, ok := tr.Tags["parent_span"]; ok {
			t.Fatalf("hostile header %q reached the trace as %q", hostile, got)
		}
	}
}

// TestServerRuntimeMetrics checks the worker registry carries the process
// gauges after New (the obs.AttachRuntime satellite).
func TestServerRuntimeMetrics(t *testing.T) {
	_, reg := newTestServer(t, Config{})
	s := reg.Snapshot()
	if s.Gauges["runtime.goroutines"] <= 0 || s.Gauges["runtime.heap_bytes"] <= 0 {
		t.Fatalf("runtime gauges missing: %+v", s.Gauges)
	}
	if s.Infos["runtime.build_info"]["go_version"] == "" {
		t.Fatalf("build info missing: %+v", s.Infos)
	}
}
