// Package server is the HTTP face of the provenance system: a JSON query
// API over the engine (deep, immediate, derived, and batch provenance),
// plus the operational surface a long-running service needs — Prometheus
// metrics, expvar, pprof, health/readiness probes, a slow-query log, and
// per-request trace ids.
//
// Every API request runs under an obs.Trace: the handler creates the trace
// at the boundary, the engine and warehouse record their stages as spans
// (query.lookup, closure.compute / closure.shared-wait, query.project,
// batch.query <id>), and the finished tree is returned inline with
// ?trace=1, referenced by the X-Zoom-Trace-Id response header, and kept in
// the slow log for requests over the threshold. The server is usable
// before its warehouse finishes loading: /healthz answers immediately,
// /readyz and the API answer 503 until SetEngine installs a loaded engine.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/warehouse"
)

// Config tunes a Server.
type Config struct {
	// SlowThreshold is the request duration at or above which a request
	// enters the slow log. Zero selects the 10ms default; negative logs
	// every request (useful in tests).
	SlowThreshold time.Duration
	// SlowLogSize bounds the slow-log ring (default 128).
	SlowLogSize int
	// ExpvarName, when non-empty, publishes the registry under this name
	// in the process-global expvar table (served at /debug/vars). New
	// fails if the name is already taken — a second server in the same
	// process must pick its own name or pass "".
	ExpvarName string
	// Workers bounds the per-batch worker pool (0 selects GOMAXPROCS).
	Workers int
}

// DefaultSlowThreshold is the slow-log threshold when none is configured.
const DefaultSlowThreshold = 10 * time.Millisecond

// maxBodyBytes bounds request bodies; provenance requests are tiny.
const maxBodyBytes = 1 << 20

// maxCachedViews bounds the built-view memo; past it the memo resets.
// Views are tiny, but the engine memoizes projection mappings by view
// pointer, so serving a fresh view object per request would also leak
// mappings — the cache is correctness-adjacent, not just speed.
const maxCachedViews = 1024

// Server serves provenance queries over HTTP. Construct with New, install
// an engine with SetEngine (possibly after the handler is already
// serving), and mount Handler.
type Server struct {
	reg  *obs.Registry
	cfg  Config
	slow *SlowLog

	engine atomic.Pointer[provenance.Engine]

	// Load progress, reported by /readyz while the warehouse is loading.
	// SetLoadProgress is the warehouse loader's LoadOptions.Progress hook.
	runsLoaded atomic.Int64
	runsTotal  atomic.Int64

	// generation is an opaque warehouse generation reported on /readyz:
	// seeded from the wall clock at construction (so two process
	// incarnations never share a value) and bumped on every SetEngine. A
	// router caches responses against it and invalidates when it changes.
	generation atomic.Int64

	// Request metrics, resolved once at construction.
	requests  *obs.Counter
	errCount  *obs.Counter
	requestNs *obs.Histogram
	slowCount *obs.Counter
	ready     *obs.Gauge

	// Per-route metrics (status-class counters, latency histogram,
	// in-flight gauge), resolved once at construction and keyed by the
	// short route name. The router scrapes these on both sides of a
	// forwarded request to attribute tail latency to router or worker.
	routes map[string]*routeMetrics

	// testHookBatchStarted, when set by a test, runs inside handleBatch
	// after the request is decoded and validated — the seam the graceful-
	// drain regression test uses to hold a batch in flight across SIGTERM.
	testHookBatchStarted func()

	// views memoizes built user views per (spec, relevant) and per named
	// view so repeated requests hit the engine's mapping memo (keyed by
	// view pointer) instead of rebuilding both every time.
	vmu   sync.Mutex
	views map[string]*core.UserView
}

// New returns a server wired to the registry (one is created when nil).
// It fails fast when cfg.ExpvarName is already published, so a
// misconfigured second instance dies at startup, not at first scrape.
func New(reg *obs.Registry, cfg Config) (*Server, error) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	if cfg.SlowLogSize <= 0 {
		cfg.SlowLogSize = 128
	}
	if cfg.ExpvarName != "" {
		if err := reg.Publish(cfg.ExpvarName); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	obs.AttachRuntime(reg)
	s := &Server{
		reg:       reg,
		cfg:       cfg,
		slow:      NewSlowLog(cfg.SlowLogSize),
		requests:  reg.Counter("http.requests"),
		errCount:  reg.Counter("http.errors"),
		requestNs: reg.Histogram("http.request_ns"),
		slowCount: reg.Counter("http.slow_requests"),
		ready:     reg.Gauge("server.ready"),
		routes:    make(map[string]*routeMetrics),
		views:     make(map[string]*core.UserView),
	}
	s.generation.Store(time.Now().UnixNano())
	for _, key := range routeKeys {
		s.routes[key] = newRouteMetrics(reg, key)
	}
	return s, nil
}

// routeKeys are the short names of the instrumented API routes; they
// appear in metric names as http.<key>.status.<class>, http.<key>.ns and
// http.<key>.in_flight (the status classes fold into class="..." labels
// in the Prometheus exposition).
var routeKeys = []string{"query", "batch", "runs", "stats"}

// routeMetrics are one API route's instruments: request counters split by
// status class, a latency histogram, and an in-flight gauge.
type routeMetrics struct {
	status   [6]*obs.Counter // index status/100; 0 unused
	latency  *obs.Histogram
	inFlight *obs.Gauge
}

func newRouteMetrics(reg *obs.Registry, key string) *routeMetrics {
	rm := &routeMetrics{
		latency:  reg.Histogram("http." + key + ".ns"),
		inFlight: reg.Gauge("http." + key + ".in_flight"),
	}
	for c := 1; c <= 5; c++ {
		rm.status[c] = reg.Counter(fmt.Sprintf("http.%s.status.%dxx", key, c))
	}
	return rm
}

// observe records one finished request on the route's instruments.
func (rm *routeMetrics) observe(status int, durNs int64) {
	if rm == nil {
		return
	}
	if c := status / 100; c >= 1 && c <= 5 {
		rm.status[c].Inc()
	}
	rm.latency.Observe(durNs)
}

// addInFlight adjusts the route's in-flight gauge (no-op on nil).
func (rm *routeMetrics) addInFlight(delta int64) {
	if rm != nil {
		rm.inFlight.Add(delta)
	}
}

// SetEngine installs the engine and flips the server ready. It may be
// called while the handler is serving — the warehouse typically loads in
// the background after the listener is already up.
func (s *Server) SetEngine(e *provenance.Engine) {
	s.engine.Store(e)
	s.generation.Add(1)
	if e != nil {
		s.ready.Set(1)
	} else {
		s.ready.Set(0)
	}
}

// Generation returns the current warehouse generation (see readyzBody).
func (s *Server) Generation() int64 { return s.generation.Load() }

// Ready reports whether an engine is installed.
func (s *Server) Ready() bool { return s.engine.Load() != nil }

// SetLoadProgress records warehouse load progress for /readyz. Wire it as
// the loader's LoadOptions.Progress callback: it is safe to call
// concurrently and before the listener is up.
func (s *Server) SetLoadProgress(loaded, total int) {
	s.runsLoaded.Store(int64(loaded))
	s.runsTotal.Store(int64(total))
}

// LoadProgress returns the last recorded (loaded, total) run counts.
func (s *Server) LoadProgress() (loaded, total int) {
	return int(s.runsLoaded.Load()), int(s.runsTotal.Load())
}

// readyzBody is the JSON shape of GET /readyz — ready flag plus load
// progress, so an orchestrator (or a human with curl) can see how far
// along a cold start is instead of a bare 503.
type readyzBody struct {
	Ready      bool  `json:"ready"`
	RunsLoaded int   `json:"runs_loaded"`
	RunsTotal  int   `json:"runs_total"`
	Generation int64 `json:"generation"`
}

// SlowLog returns the server's slow-query ring.
func (s *Server) SlowLog() *SlowLog { return s.slow }

// Registry returns the server's metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the full route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/query", s.traced("POST /v1/query", s.handleQuery))
	mux.Handle("POST /v1/batch", s.traced("POST /v1/batch", s.handleBatch))
	mux.Handle("GET /v1/runs", s.traced("GET /v1/runs", s.handleRuns))
	mux.Handle("GET /v1/stats", s.traced("GET /v1/stats", s.handleStats))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/slowlog", s.handleSlowlog)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		loaded, total := s.LoadProgress()
		body := readyzBody{Ready: s.Ready(), RunsLoaded: loaded, RunsTotal: total, Generation: s.generation.Load()}
		status := http.StatusOK
		if !body.Ready {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, body)
	})
	return mux
}

// Serve runs the server on ln until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get up
// to drain to finish. It returns nil after a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(sctx)
	if e := <-errc; e != nil && !errors.Is(e, http.ErrServerClosed) && err == nil {
		err = e
	}
	return err
}

// statusWriter records the response status for metrics and the slow log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// apiHandler is an API endpoint body: it runs under the request's trace
// (ctx carries the root span) and gets the trace itself for inline
// snapshots.
type apiHandler func(ctx context.Context, tr *obs.Trace, w http.ResponseWriter, r *http.Request)

// TraceIDHeader carries the request's trace id on responses — and, since
// the handlers accept it inbound too, one id can follow a request through
// a router hop onto a worker, so both slow logs name the same trace.
const TraceIDHeader = "X-Zoom-Trace-Id"

// ParentSpanHeader carries, on traced routed requests, the router's
// attempt-span reference; the worker tags its root span with the
// sanitized value so the stitched tree names the attempt it answered.
const ParentSpanHeader = "X-Zoom-Parent-Span"

// routeKey maps a route ("POST /v1/query") to its metrics key ("query").
func routeKey(route string) string {
	if i := strings.LastIndexByte(route, '/'); i >= 0 {
		return route[i+1:]
	}
	return route
}

// traced wraps an API endpoint with the request boundary: a trace (id in
// X-Zoom-Trace-Id — a valid inbound id on the same header is adopted
// instead of minting one), request and per-route metrics, and slow-log
// capture when the request runs at or over the threshold.
func (s *Server) traced(route string, h apiHandler) http.Handler {
	rm := s.routes[routeKey(route)]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTraceWithID(route, r.Header.Get(TraceIDHeader))
		if ps := obs.SanitizeHeaderToken(r.Header.Get(ParentSpanHeader)); ps != "" {
			// A routed, traced request names the router attempt span it
			// answers; the tag survives into the returned tree so the
			// router's stitch is verifiable end-to-end. A malformed header
			// is dropped, never echoed.
			tr.Root().SetTag("parent_span", ps)
		}
		ctx := tr.Context(r.Context())
		w.Header().Set(TraceIDHeader, tr.ID())
		sw := &statusWriter{ResponseWriter: w}
		rm.addInFlight(1)
		start := time.Now()
		h(ctx, tr, sw, r)
		dur := time.Since(start)
		rm.addInFlight(-1)
		node := tr.Finish()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.requests.Inc()
		s.requestNs.Observe(dur.Nanoseconds())
		rm.observe(sw.status, dur.Nanoseconds())
		if sw.status >= 400 {
			s.errCount.Inc()
		}
		if dur >= s.cfg.SlowThreshold {
			s.slowCount.Inc()
			s.slow.Add(SlowEntry{
				Time:    time.Now(),
				TraceID: tr.ID(),
				Route:   route,
				Request: r.URL.RequestURI(),
				Status:  sw.status,
				DurNs:   dur.Nanoseconds(),
				Trace:   node,
			})
		}
	})
}

// errorBody is the uniform JSON error shape.
type errorBody struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps engine/warehouse errors onto HTTP statuses: unknown
// names are the client's 404s, malformed requests 400s, everything else a
// 500.
func writeError(w http.ResponseWriter, tr *obs.Trace, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, warehouse.ErrUnknownRun),
		errors.Is(err, warehouse.ErrUnknownData),
		errors.Is(err, warehouse.ErrUnknownSpec),
		errors.Is(err, warehouse.ErrUnknownView):
		status = http.StatusNotFound
	case errors.Is(err, errTooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, errBadRequest),
		errors.Is(err, provenance.ErrForeignView),
		errors.Is(err, composite.ErrViewMismatch):
		status = http.StatusBadRequest
	}
	var id string
	if tr != nil {
		id = tr.ID()
	}
	writeJSON(w, status, errorBody{Error: err.Error(), TraceID: id})
}

// errBadRequest tags client errors produced by the server itself.
var errBadRequest = errors.New("bad request")

// errTooLarge tags requests rejected by the body size cap; they answer
// 413, not 400 — the request may be perfectly well-formed, just too big.
var errTooLarge = errors.New("request body too large")

// errNotReady answers API calls before the warehouse has loaded.
func (s *Server) engineOr503(w http.ResponseWriter, tr *obs.Trace) *provenance.Engine {
	e := s.engine.Load()
	if e == nil {
		var id string
		if tr != nil {
			id = tr.ID()
		}
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "warehouse loading, not ready", TraceID: id})
	}
	return e
}

// queryRequest is the body of POST /v1/query. Exactly one data object; the
// view is selected by name (a registered view of the run's specification),
// by relevant-module set (built on demand and memoized), or defaults to
// UAdmin (everything visible). Kind selects the query form.
type queryRequest struct {
	Run  string `json:"run"`
	Data string `json:"data"`
	// Kind is "deep" (default), "immediate", or "derived".
	Kind     string   `json:"kind,omitempty"`
	View     string   `json:"view,omitempty"`
	Relevant []string `json:"relevant,omitempty"`
	// Labels overrides the closure strategy for this request: true forces
	// the reachability-label path (falling back, counted, when the run has
	// no labels), false forces the BFS, absent follows the warehouse's
	// SetLabelIndex toggle.
	Labels *bool `json:"labels,omitempty"`
}

// strategyOf maps a request's Labels override onto the closure strategy.
func (q *queryRequest) strategyOf() warehouse.ClosureStrategy {
	switch {
	case q.Labels == nil:
		return warehouse.StrategyAuto
	case *q.Labels:
		return warehouse.StrategyLabels
	default:
		return warehouse.StrategyBFS
	}
}

// batchRequest is the body of POST /v1/batch: many data objects of one
// run under one view, answered in parallel.
type batchRequest struct {
	Run      string   `json:"run"`
	Data     []string `json:"data"`
	View     string   `json:"view,omitempty"`
	Relevant []string `json:"relevant,omitempty"`
	Workers  int      `json:"workers,omitempty"`
}

// executionDTO mirrors composite.Execution with JSON names.
type executionDTO struct {
	ID        string   `json:"id"`
	Composite string   `json:"composite"`
	Steps     []string `json:"steps"`
	Inputs    []string `json:"inputs,omitempty"`
	Outputs   []string `json:"outputs,omitempty"`
}

// edgeDTO mirrors provenance.Edge.
type edgeDTO struct {
	From string   `json:"from"`
	To   string   `json:"to"`
	Data []string `json:"data"`
}

// resultDTO is a provenance.Result shaped for JSON.
type resultDTO struct {
	Root       string            `json:"root"`
	External   bool              `json:"external,omitempty"`
	Metadata   map[string]string `json:"metadata,omitempty"`
	Executions []executionDTO    `json:"executions"`
	Data       []string          `json:"data"`
	Edges      []edgeDTO         `json:"edges"`
}

func toExecutionDTO(x *composite.Execution) executionDTO {
	return executionDTO{ID: x.ID, Composite: x.Composite, Steps: x.Steps,
		Inputs: x.Inputs, Outputs: x.Outputs}
}

func toResultDTO(res *provenance.Result) *resultDTO {
	if res == nil {
		return nil
	}
	out := &resultDTO{
		Root:       res.Root,
		External:   res.External,
		Metadata:   res.Metadata,
		Executions: make([]executionDTO, 0, len(res.Executions)),
		Data:       res.Data,
		Edges:      make([]edgeDTO, 0, len(res.Edges)),
	}
	for _, x := range res.Executions {
		out.Executions = append(out.Executions, toExecutionDTO(x))
	}
	for _, e := range res.Edges {
		out.Edges = append(out.Edges, edgeDTO{From: e.From, To: e.To, Data: e.Data})
	}
	return out
}

// timingDTO carries the QueryTrace stage numbers.
type timingDTO struct {
	LookupNs  int64 `json:"lookup_ns"`
	ComputeNs int64 `json:"compute_ns,omitempty"`
	ProjectNs int64 `json:"project_ns"`
	TotalNs   int64 `json:"total_ns"`
}

// queryResponse is the body of a POST /v1/query answer.
type queryResponse struct {
	TraceID   string        `json:"trace_id"`
	Run       string        `json:"run"`
	Data      string        `json:"data"`
	Kind    string `json:"kind"`
	Outcome string `json:"outcome,omitempty"`
	// Strategy reports the closure computation a deep-query miss actually
	// ran ("labels", "bfs", or "legacy"); empty on cache hits.
	Strategy  string        `json:"strategy,omitempty"`
	Timing    *timingDTO    `json:"timing,omitempty"`
	Result    *resultDTO    `json:"result,omitempty"`
	Execution *executionDTO `json:"execution,omitempty"`
	Trace     *obs.SpanNode `json:"trace,omitempty"`
}

// batchResponse is the body of a POST /v1/batch answer.
type batchResponse struct {
	TraceID string        `json:"trace_id"`
	Run     string        `json:"run"`
	Count   int           `json:"count"`
	Results []*resultDTO  `json:"results"`
	Trace   *obs.SpanNode `json:"trace,omitempty"`
}

// decodeBody parses a bounded JSON request body, rejecting unknown fields
// so typos fail loudly.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return fmt.Errorf("%w: limit is %d bytes", errTooLarge, mbe.Limit)
		}
		return fmt.Errorf("%w: %v", errBadRequest, err)
	}
	return nil
}

// resolveView turns a request's view selector into a built view, memoized
// so repeated requests reuse one view pointer (and therefore the engine's
// memoized projection mapping).
func (s *Server) resolveView(e *provenance.Engine, runID, viewName string, relevant []string) (*core.UserView, error) {
	if viewName != "" && len(relevant) > 0 {
		return nil, fmt.Errorf("%w: view and relevant are mutually exclusive", errBadRequest)
	}
	w := e.Warehouse()
	r, err := w.Run(runID)
	if err != nil {
		return nil, err
	}
	specName := r.SpecName()
	if viewName != "" {
		return w.View(specName, viewName)
	}
	var key string
	if len(relevant) > 0 {
		sorted := append([]string(nil), relevant...)
		sort.Strings(sorted)
		key = "relevant\x00" + specName + "\x00" + strings.Join(sorted, "\x00")
	} else {
		key = "uadmin\x00" + specName
	}
	s.vmu.Lock()
	v := s.views[key]
	s.vmu.Unlock()
	if v != nil {
		return v, nil
	}
	sp, err := w.Spec(specName)
	if err != nil {
		return nil, err
	}
	if len(relevant) > 0 {
		if v, err = core.BuildRelevant(sp, relevant); err != nil {
			return nil, fmt.Errorf("%w: %v", errBadRequest, err)
		}
	} else {
		v = core.UAdmin(sp)
	}
	s.vmu.Lock()
	if len(s.views) >= maxCachedViews {
		s.views = make(map[string]*core.UserView)
	}
	// Keep the first winner so concurrent builders converge on one pointer.
	if prev := s.views[key]; prev != nil {
		v = prev
	} else {
		s.views[key] = v
	}
	s.vmu.Unlock()
	return v, nil
}

// wantInlineTrace reports whether the response should embed the span tree.
func wantInlineTrace(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// handleQuery answers one provenance query.
func (s *Server) handleQuery(ctx context.Context, tr *obs.Trace, w http.ResponseWriter, r *http.Request) {
	e := s.engineOr503(w, tr)
	if e == nil {
		return
	}
	var req queryRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, tr, err)
		return
	}
	if req.Run == "" || req.Data == "" {
		writeError(w, tr, fmt.Errorf("%w: run and data are required", errBadRequest))
		return
	}
	v, err := s.resolveView(e, req.Run, req.View, req.Relevant)
	if err != nil {
		writeError(w, tr, err)
		return
	}
	resp := queryResponse{TraceID: tr.ID(), Run: req.Run, Data: req.Data}
	switch req.Kind {
	case "", "deep":
		resp.Kind = "deep"
		res, qt, err := e.DeepProvenanceTracedStrategyCtx(ctx, req.Run, v, req.Data, req.strategyOf())
		if err != nil {
			writeError(w, tr, err)
			return
		}
		resp.Result = toResultDTO(res)
		resp.Outcome = qt.Outcome
		resp.Strategy = qt.Strategy
		resp.Timing = &timingDTO{LookupNs: qt.LookupNs, ComputeNs: qt.ComputeNs,
			ProjectNs: qt.ProjectNs, TotalNs: qt.TotalNs}
	case "immediate":
		resp.Kind = "immediate"
		x, err := e.ImmediateProvenanceCtx(ctx, req.Run, v, req.Data)
		if err != nil {
			writeError(w, tr, err)
			return
		}
		if x != nil {
			dto := toExecutionDTO(x)
			resp.Execution = &dto
		}
	case "derived":
		resp.Kind = "derived"
		_, sp := obs.StartSpan(ctx, "query.derived")
		res, err := e.DeepDerivationStrategy(req.Run, v, req.Data, req.strategyOf())
		sp.End()
		if err != nil {
			writeError(w, tr, err)
			return
		}
		resp.Result = toResultDTO(res)
	default:
		writeError(w, tr, fmt.Errorf("%w: unknown kind %q (deep, immediate, derived)", errBadRequest, req.Kind))
		return
	}
	if wantInlineTrace(r) {
		node := tr.Snapshot()
		resp.Trace = &node
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch answers many queries of one run/view in parallel. The batch
// workers record sibling spans under this request's root, so a traced
// batch shows its internal concurrency.
func (s *Server) handleBatch(ctx context.Context, tr *obs.Trace, w http.ResponseWriter, r *http.Request) {
	e := s.engineOr503(w, tr)
	if e == nil {
		return
	}
	var req batchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, tr, err)
		return
	}
	if req.Run == "" || len(req.Data) == 0 {
		writeError(w, tr, fmt.Errorf("%w: run and a non-empty data list are required", errBadRequest))
		return
	}
	v, err := s.resolveView(e, req.Run, req.View, req.Relevant)
	if err != nil {
		writeError(w, tr, err)
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	if s.testHookBatchStarted != nil {
		s.testHookBatchStarted()
	}
	results, err := e.DeepProvenanceBatch(ctx, req.Run, v, req.Data, workers)
	if err != nil {
		writeError(w, tr, err)
		return
	}
	resp := batchResponse{TraceID: tr.ID(), Run: req.Run, Count: len(results)}
	resp.Results = make([]*resultDTO, len(results))
	for i, res := range results {
		resp.Results[i] = toResultDTO(res)
	}
	if wantInlineTrace(r) {
		node := tr.Snapshot()
		resp.Trace = &node
	}
	writeJSON(w, http.StatusOK, resp)
}

// runInfo is one row of GET /v1/runs.
type runInfo struct {
	ID    string `json:"id"`
	Spec  string `json:"spec"`
	Steps int    `json:"steps"`
	Edges int    `json:"edges"`
}

// runsResponse is the body of GET /v1/runs: the run list sorted by id
// plus an explicit count. The sort and count are load-bearing for the
// cluster router, whose scatter-gather merge needs stable, dedupable
// worker responses — field order here must stay in sync with the router's
// merged response so a fully-healthy cluster answer is byte-identical to
// a single node's.
type runsResponse struct {
	TraceID string    `json:"trace_id"`
	Count   int       `json:"count"`
	Runs    []runInfo `json:"runs"`
}

// handleRuns lists the loaded runs, deterministically sorted by run id.
func (s *Server) handleRuns(_ context.Context, tr *obs.Trace, w http.ResponseWriter, _ *http.Request) {
	e := s.engineOr503(w, tr)
	if e == nil {
		return
	}
	wh := e.Warehouse()
	ids := wh.RunIDs() // sorted by the warehouse
	out := make([]runInfo, 0, len(ids))
	for _, id := range ids {
		r, err := wh.Run(id)
		if err != nil {
			continue // dropped between listing and lookup
		}
		out = append(out, runInfo{ID: id, Spec: r.SpecName(), Steps: r.NumSteps(), Edges: r.NumEdges()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, http.StatusOK, runsResponse{TraceID: tr.ID(), Count: len(out), Runs: out})
}

// handleStats returns the warehouse statistics (catalog row counts, cache
// counters, and — when attached — the metrics snapshot).
func (s *Server) handleStats(_ context.Context, tr *obs.Trace, w http.ResponseWriter, _ *http.Request) {
	e := s.engineOr503(w, tr)
	if e == nil {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"trace_id": tr.ID(), "stats": e.Warehouse().Stats()})
}

// handleMetrics serves the Prometheus text exposition of the registry.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, s.reg.Snapshot(), "zoom")
}

// handleSlowlog serves the slow-query ring, newest first.
func (s *Server) handleSlowlog(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_ns": s.cfg.SlowThreshold.Nanoseconds(),
		"entries":      s.slow.Entries(),
	})
}
