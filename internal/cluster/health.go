package cluster

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/zoom/client"
)

// shard is the router's view of one worker: its address, a typed client
// over the shared keep-alive pool, the last health verdict, and a
// circuit breaker over forwarding failures.
type shard struct {
	index int
	base  string
	cl    *client.Client

	// polled flips once the first health check completes; until then the
	// router forwards optimistically (workers typically come up behind
	// the router, and the first real request is as good a probe as any).
	polled atomic.Bool
	// ready is the last /readyz verdict (true = 200 with ready:true).
	ready atomic.Bool
	// loaded/total mirror the worker's reported load progress.
	loaded atomic.Int64
	total  atomic.Int64

	// Circuit breaker: consecutive forwarding failures open the circuit
	// until openUntil (unix nanos); while open, requests for this shard
	// fail fast with a 502 naming the shard instead of waiting out a
	// connect timeout per request.
	fails     atomic.Int32
	openUntil atomic.Int64

	up *obs.Gauge // router.shard.<i>.up: 1 when forwardable
}

// available reports whether the router should attempt a forward: the
// breaker is closed and the worker wasn't down at the last poll.
func (s *shard) available(now time.Time) bool {
	if now.UnixNano() < s.openUntil.Load() {
		return false
	}
	if s.polled.Load() && !s.ready.Load() {
		return false
	}
	return true
}

// state describes why a shard is unavailable ("" when it is available).
func (s *shard) state(now time.Time) string {
	if now.UnixNano() < s.openUntil.Load() {
		return "circuit open"
	}
	if s.polled.Load() && !s.ready.Load() {
		return "worker not ready"
	}
	return ""
}

// fail records one forwarding failure, opening the breaker at the
// configured threshold.
func (s *shard) fail(threshold int32, cooldown time.Duration) {
	if s.fails.Add(1) >= threshold {
		s.openUntil.Store(time.Now().Add(cooldown).UnixNano())
	}
	s.setUp(false)
}

// ok resets the breaker after a successful forward.
func (s *shard) ok() {
	s.fails.Store(0)
	s.openUntil.Store(0)
	s.setUp(true)
}

// setHealth records a health-poll verdict. A healthy verdict closes the
// breaker — this is the "join" path: a worker that was down (or is new)
// starts taking traffic again within one poll interval of answering
// /readyz.
func (s *shard) setHealth(ready bool, loaded, total int) {
	s.polled.Store(true)
	s.ready.Store(ready)
	s.loaded.Store(int64(loaded))
	s.total.Store(int64(total))
	if ready {
		s.fails.Store(0)
		s.openUntil.Store(0)
	}
	s.setUp(ready)
}

func (s *shard) setUp(up bool) {
	if up {
		s.up.Set(1)
	} else {
		s.up.Set(0)
	}
}

// checkAll polls every shard's /readyz concurrently (bounded by the
// gather fan-out) and records the verdicts. It returns true when every
// shard is ready. Both the periodic health loop and GET /readyz on the
// router run this, so readiness answers are live, not cached.
func (rt *Router) checkAll(ctx context.Context) bool {
	sem := make(chan struct{}, rt.cfg.Fanout)
	var wg sync.WaitGroup
	allReady := atomic.Bool{}
	allReady.Store(true)
	for _, sh := range rt.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			hctx, cancel := context.WithTimeout(ctx, rt.cfg.GatherTimeout)
			defer cancel()
			rz, err := sh.cl.Ready(hctx)
			if err != nil {
				sh.setHealth(false, 0, 0)
				allReady.Store(false)
				return
			}
			sh.setHealth(rz.Ready, rz.RunsLoaded, rz.RunsTotal)
			if !rz.Ready {
				allReady.Store(false)
			}
		}(sh)
	}
	wg.Wait()
	return allReady.Load()
}

// HealthLoop polls worker readiness every cfg.HealthInterval until ctx
// is cancelled. Run it in a goroutine next to Serve; the router also
// works without it (forwarding failures still trip the per-shard
// breaker), but join/leave detection is then driven by traffic instead
// of polling.
func (rt *Router) HealthLoop(ctx context.Context) {
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	rt.checkAll(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.checkAll(ctx)
		}
	}
}
