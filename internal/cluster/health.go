package cluster

import (
	"context"
	"sync"
	"time"
)

// checkAll polls every replica's /readyz concurrently (bounded by the
// gather fan-out) and records the verdicts, including each worker's
// warehouse generation — a change bumps the shard's cache epoch so
// responses cached against the old data stop being served. It returns
// true when every shard has at least one ready replica. Both the
// periodic health loop and GET /readyz on the router run this, so
// readiness answers are live, not cached.
func (rt *Router) checkAll(ctx context.Context) bool {
	sem := make(chan struct{}, rt.cfg.Fanout)
	var wg sync.WaitGroup
	for _, sh := range rt.shards {
		for _, rep := range sh.replicas {
			wg.Add(1)
			go func(sh *shard, rep *replica) {
				defer wg.Done()
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					return
				}
				defer func() { <-sem }()
				hctx, cancel := context.WithTimeout(ctx, rt.cfg.GatherTimeout)
				defer cancel()
				t0 := time.Now()
				rz, err := rep.cl.Ready(hctx)
				rep.recordPoll(time.Since(t0), err)
				if err != nil {
					rep.setHealth(false, 0, 0)
					return
				}
				if rep.observeGeneration(rz.Generation) {
					sh.epoch.Add(1)
					rt.cacheInvals.Inc()
				}
				rep.setHealth(rz.Ready, rz.RunsLoaded, rz.RunsTotal)
			}(sh, rep)
		}
	}
	wg.Wait()
	allReady := true
	for _, sh := range rt.shards {
		ready := false
		for _, rep := range sh.replicas {
			if rep.polled.Load() && rep.ready.Load() {
				ready = true
				break
			}
		}
		if !ready {
			allReady = false
		}
	}
	return allReady
}

// HealthLoop polls worker readiness every cfg.HealthInterval until ctx
// is cancelled. Run it in a goroutine next to Serve; the router also
// works without it (forwarding failures still trip the per-replica
// breakers), but join/leave detection — and cache invalidation on a
// worker reload — is then driven by traffic instead of polling.
func (rt *Router) HealthLoop(ctx context.Context) {
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	rt.checkAll(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.checkAll(ctx)
		}
	}
}
