package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/run"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/warehouse"
	"repro/zoom/client"
)

// newWorker boots one real worker server over w.
func newWorker(t *testing.T, w *warehouse.Warehouse) *httptest.Server {
	t.Helper()
	s, err := server.New(obs.NewRegistry(), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetEngine(provenance.NewEngine(w))
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// corpusRun is one generated run of the differential corpus.
type corpusRun struct {
	id       string
	specName string
	relevant []string
	targets  []string
}

// buildCorpus generates one workflow per Table I class and runs per run
// class, returning the specs, runs, and per-run query targets.
func buildCorpus(t *testing.T, runClasses []gen.RunClass) ([]*spec.Spec, []*run.Run, []corpusRun) {
	t.Helper()
	g := gen.NewGenerator(42)
	var specs []*spec.Spec
	var runs []*run.Run
	var infos []corpusRun
	for i, wc := range gen.Classes() {
		sp := g.Workflow(wc, fmt.Sprintf("wf%d", i+1))
		specs = append(specs, sp)
		for _, rc := range runClasses {
			id := fmt.Sprintf("run-%d-%s", i+1, rc.Name)
			r, _, err := g.Run(sp, rc, id)
			if err != nil {
				t.Fatalf("generate %s: %v", id, err)
			}
			targets := r.FinalOutputs()
			if len(targets) == 0 {
				targets = r.AllData()
			}
			if len(targets) > 2 {
				targets = targets[:2]
			}
			runs = append(runs, r)
			infos = append(infos, corpusRun{
				id:       id,
				specName: sp.Name(),
				relevant: gen.UBioRelevant(sp),
				targets:  targets,
			})
		}
	}
	return specs, runs, infos
}

// buildCluster loads the corpus into one full warehouse plus n shard
// warehouses split by the ring, boots a worker per shard and a router in
// front, and returns (single-node URL, router URL, router).
func buildCluster(t *testing.T, n int, specs []*spec.Spec, runs []*run.Run) (string, string, *Router) {
	t.Helper()
	ring, err := NewRing(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := warehouse.New(0)
	shardWh := make([]*warehouse.Warehouse, n)
	for i := range shardWh {
		shardWh[i] = warehouse.New(0)
	}
	for _, sp := range specs {
		if err := full.RegisterSpec(sp); err != nil {
			t.Fatal(err)
		}
		for _, w := range shardWh {
			if err := w.RegisterSpec(sp); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, r := range runs {
		if err := full.LoadRun(r); err != nil {
			t.Fatal(err)
		}
		if err := shardWh[ring.Place(r.ID())].LoadRun(r); err != nil {
			t.Fatal(err)
		}
	}
	single := newWorker(t, full)
	workers := make([]string, n)
	for i, w := range shardWh {
		workers[i] = newWorker(t, w).URL
	}
	rt, err := New(obs.NewRegistry(), Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	return single.URL, rts.URL, rt
}

func postRaw(t *testing.T, base, path, traceID, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		req.Header.Set(client.TraceIDHeader, traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func getRaw(t *testing.T, base, path, traceID string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if traceID != "" {
		req.Header.Set(client.TraceIDHeader, traceID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func TestRouterForwardAndGather(t *testing.T) {
	specs, runs, infos := buildCorpus(t, []gen.RunClass{gen.Small()})
	_, routerURL, rt := buildCluster(t, 2, specs, runs)
	c := client.New(routerURL, client.Options{})
	ctx := context.Background()

	// Run-addressed queries land on the owning shard and come back whole.
	for _, info := range infos {
		q, err := c.Query(ctx, client.QueryRequest{Run: info.id, Data: info.targets[0]})
		if err != nil {
			t.Fatalf("query %s through router: %v", info.id, err)
		}
		if q.Kind != "deep" || q.Result == nil || len(q.Result.Executions) == 0 {
			t.Fatalf("query %s: unexpected answer %+v", info.id, q)
		}
		b, err := c.Batch(ctx, client.BatchRequest{Run: info.id, Data: info.targets})
		if err != nil {
			t.Fatalf("batch %s through router: %v", info.id, err)
		}
		if b.Count != len(info.targets) {
			t.Fatalf("batch %s: count %d, want %d", info.id, b.Count, len(info.targets))
		}
	}

	// The merged catalog covers every run, sorted, with a count.
	rr, err := c.Runs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Count != len(runs) || len(rr.Runs) != len(runs) {
		t.Fatalf("merged runs count %d, want %d", rr.Count, len(runs))
	}
	for i := 1; i < len(rr.Runs); i++ {
		if rr.Runs[i-1].ID >= rr.Runs[i].ID {
			t.Fatalf("merged runs not sorted: %q before %q", rr.Runs[i-1].ID, rr.Runs[i].ID)
		}
	}

	// Stats carries one raw document per shard.
	st, code := getRaw(t, routerURL, "/v1/stats", "")
	if st != http.StatusOK {
		t.Fatalf("stats status %d", st)
	}
	var stats routerStatsResponse
	if err := json.Unmarshal(code, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.ShardsTotal != 2 || stats.ShardsOK != 2 || len(stats.Shards) != 2 || stats.Partial {
		t.Fatalf("stats shape unexpected: %+v", stats)
	}

	// Worker errors pass through verbatim (status and body), and the
	// router validates only what it needs (a run id).
	status, body := postRaw(t, routerURL, "/v1/query", "", `{"run":"no-such-run","data":"d1"}`)
	if status != http.StatusNotFound || !strings.Contains(string(body), "unknown run") {
		t.Fatalf("unknown run via router: status %d body %s", status, body)
	}
	status, _ = postRaw(t, routerURL, "/v1/query", "", `{"data":"d1"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("missing run id: status %d, want 400", status)
	}

	// Readyz is live and all shards are up.
	status, body = getRaw(t, routerURL, "/readyz", "")
	if status != http.StatusOK || !strings.Contains(string(body), `"ready": true`) {
		t.Fatalf("readyz: status %d body %s", status, body)
	}
	if got := rt.shardStates(); len(got) != 2 || !got[0].Ready || !got[1].Ready {
		t.Fatalf("shard states unexpected: %+v", got)
	}
}

func TestRouterTraceIDPropagation(t *testing.T) {
	specs, runs, infos := buildCorpus(t, []gen.RunClass{gen.Small()})
	_, routerURL, _ := buildCluster(t, 2, specs, runs)
	const id = "00000000deadbeef"
	status, body := postRaw(t, routerURL, "/v1/query", id,
		fmt.Sprintf(`{"run":%q,"data":%q}`, infos[0].id, infos[0].targets[0]))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != id {
		t.Fatalf("trace id %q did not survive the router hop (want %q)", resp.TraceID, id)
	}
}

// TestRouterDeadShardFast502 kills one worker and checks the failure
// mode the tentpole promises: requests for the dead shard fail fast with
// a 502 naming the shard, the breaker opens after the threshold, and the
// surviving shard keeps answering.
func TestRouterDeadShardFast502(t *testing.T) {
	specs, runs, infos := buildCorpus(t, []gen.RunClass{gen.Small()})
	_, routerURL, rt := buildCluster(t, 2, specs, runs)

	// Find runs on both shards.
	byShard := map[int]corpusRun{}
	for _, info := range infos {
		byShard[rt.ring.Place(info.id)] = info
	}
	if len(byShard) != 2 {
		t.Skip("corpus landed on one shard; grow the corpus")
	}

	// Kill shard 0 by pointing it at a closed listener.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	rt.shards[0].replicas[0].base = deadURL
	rt.shards[0].replicas[0].cl = client.New(deadURL, client.Options{Timeout: -1})

	deadRun, liveRun := byShard[0], byShard[1]
	body := fmt.Sprintf(`{"run":%q,"data":%q}`, deadRun.id, deadRun.targets[0])

	// Requests to the dead shard 502 fast and name the shard.
	for i := 0; i < rt.cfg.BreakerThreshold; i++ {
		start := time.Now()
		status, b := postRaw(t, routerURL, "/v1/query", "", body)
		if status != http.StatusBadGateway {
			t.Fatalf("dead shard request %d: status %d body %s", i, status, b)
		}
		if !strings.Contains(string(b), "shard 0") {
			t.Fatalf("502 body does not name the shard: %s", b)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("dead-shard 502 took %v, want fast", d)
		}
	}

	// The breaker is now open: the next request fails without dialing.
	if rt.shards[0].state(time.Now()) != "circuit open" {
		t.Fatalf("breaker not open after %d failures", rt.cfg.BreakerThreshold)
	}
	status, b := postRaw(t, routerURL, "/v1/query", "", body)
	if status != http.StatusBadGateway || !strings.Contains(string(b), "circuit open") {
		t.Fatalf("open-circuit request: status %d body %s", status, b)
	}

	// The surviving shard still answers.
	status, b = postRaw(t, routerURL, "/v1/query", "",
		fmt.Sprintf(`{"run":%q,"data":%q}`, liveRun.id, liveRun.targets[0]))
	if status != http.StatusOK {
		t.Fatalf("live shard after neighbor death: status %d body %s", status, b)
	}

	// Scatter-gather degrades to a flagged partial answer, never a hang.
	status, b = getRaw(t, routerURL, "/v1/runs", "")
	if status != http.StatusOK {
		t.Fatalf("partial runs status %d", status)
	}
	var rr routerRunsResponse
	if err := json.Unmarshal(b, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Partial || len(rr.FailedShards) != 1 || rr.FailedShards[0].Shard != 0 {
		t.Fatalf("partial runs shape unexpected: %+v", rr)
	}
	if rr.Count == 0 {
		t.Fatal("partial runs dropped the surviving shard's runs")
	}

	// And the router reports itself not ready.
	status, _ = getRaw(t, routerURL, "/readyz", "")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead shard: status %d, want 503", status)
	}
}

// TestRouterHealthJoinLeave drives the poll-based join/leave cycle: a
// worker that reports not-ready is taken out of rotation (fast 502), and
// rejoins within one poll of reporting ready again.
func TestRouterHealthJoinLeave(t *testing.T) {
	specs, runs, infos := buildCorpus(t, []gen.RunClass{gen.Small()})
	full := warehouse.New(0)
	for _, sp := range specs {
		if err := full.RegisterSpec(sp); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range runs {
		if err := full.LoadRun(r); err != nil {
			t.Fatal(err)
		}
	}
	s, err := server.New(obs.NewRegistry(), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.SetEngine(provenance.NewEngine(full))

	// Wrap the worker so /readyz can be forced to 503 while the API keeps
	// working — a worker mid-reload.
	var down atomic.Bool
	h := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() && r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"ready": false}`)
			return
		}
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	rt, err := New(obs.NewRegistry(), Config{Workers: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	body := fmt.Sprintf(`{"run":%q,"data":%q}`, infos[0].id, infos[0].targets[0])

	// Healthy poll: traffic flows.
	if !rt.checkAll(context.Background()) {
		t.Fatal("initial health check should pass")
	}
	status, _ := postRaw(t, rts.URL, "/v1/query", "", body)
	if status != http.StatusOK {
		t.Fatalf("healthy worker: status %d", status)
	}

	// Leave: poll sees not-ready, forwards fail fast naming the state.
	down.Store(true)
	if rt.checkAll(context.Background()) {
		t.Fatal("health check should fail while worker reports not ready")
	}
	status, b := postRaw(t, rts.URL, "/v1/query", "", body)
	if status != http.StatusBadGateway || !strings.Contains(string(b), "worker not ready") {
		t.Fatalf("down worker: status %d body %s", status, b)
	}

	// Join: one healthy poll puts it back in rotation.
	down.Store(false)
	if !rt.checkAll(context.Background()) {
		t.Fatal("health check should recover")
	}
	status, _ = postRaw(t, rts.URL, "/v1/query", "", body)
	if status != http.StatusOK {
		t.Fatalf("rejoined worker: status %d", status)
	}
}
