package cluster

import (
	"bytes"
	"container/list"
	"sync"

	"repro/internal/xxh"
)

// DefaultCacheBytes bounds the response cache's total retained bytes
// (request + response bodies) when Config.CacheBytes is zero.
const DefaultCacheBytes = 64 << 20

// maxCacheBody is the largest worker response body the cache will retain;
// larger answers are streamed through uncached so one huge deep-provenance
// result cannot monopolize the cache.
const maxCacheBody = 4 << 20

// cacheEntry is one cached worker response. The full request body is kept
// so a 64-bit key collision degrades to a miss, never a wrong answer, and
// the trace id embedded in the stored body is kept so a hit can be
// rewritten to carry the current request's id (the only byte that may
// legitimately differ between a cached and a freshly-forwarded answer).
type cacheEntry struct {
	key         uint64
	path        string
	reqBody     []byte
	shard       int
	epoch       uint64
	contentType string
	traceID     string
	body        []byte
}

func (e *cacheEntry) size() int64 { return int64(len(e.reqBody) + len(e.body)) }

// respCache is a bounded LRU over full (path, request body) keys. The
// paper's query model makes the request body a complete cache key: a
// /v1/query or /v1/batch body spells out (run, view or relevant set,
// data, kind), and the worker's answer is a pure function of those plus
// the shard's loaded data — so entries are invalidated by the owning
// shard's epoch (bumped when a health poll observes the worker's
// warehouse generation change), never by time.
type respCache struct {
	mu       sync.Mutex
	maxEnts  int
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[uint64]*list.Element
}

func newRespCache(maxEntries int, maxBytes int64) *respCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &respCache{
		maxEnts:  maxEntries,
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[uint64]*list.Element),
	}
}

func cacheKey(path string, reqBody []byte) uint64 {
	h := make([]byte, 0, len(path)+1+len(reqBody))
	h = append(h, path...)
	h = append(h, 0)
	h = append(h, reqBody...)
	return xxh.Sum64(h)
}

// lookup returns the fresh entry for (path, reqBody), or nil. stale
// reports that an entry existed but was dropped because the shard's
// epoch moved past it — the caller counts that as an invalidation.
func (c *respCache) lookup(path string, reqBody []byte, epoch uint64) (e *cacheEntry, stale bool) {
	key := cacheKey(path, reqBody)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	ent := el.Value.(*cacheEntry)
	if ent.path != path || !bytes.Equal(ent.reqBody, reqBody) {
		// 64-bit collision: a different request hashed here. Miss.
		return nil, false
	}
	if ent.epoch != epoch {
		c.remove(el)
		return nil, true
	}
	c.ll.MoveToFront(el)
	return ent, false
}

// store inserts (or replaces) the entry and evicts from the LRU tail
// until both bounds hold. Oversized bodies are the caller's problem —
// it skips store entirely past maxCacheBody.
func (c *respCache) store(ent *cacheEntry) {
	ent.key = cacheKey(ent.path, ent.reqBody)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[ent.key]; ok {
		c.remove(el)
	}
	c.entries[ent.key] = c.ll.PushFront(ent)
	c.bytes += ent.size()
	for (c.maxEnts > 0 && c.ll.Len() > c.maxEnts) || c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.remove(back)
	}
}

// remove unlinks an element; callers hold c.mu.
func (c *respCache) remove(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.entries, ent.key)
	c.bytes -= ent.size()
}

// Len reports the live entry count (tests and /v1/shards introspection).
func (c *respCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// rewriteTraceID replaces the stored answer's embedded trace id with the
// current request's. Responses carry exactly one top-level trace_id field
// (the first field the server encodes), so replacing the first occurrence
// of the quoted field is exact; when the ids already match (or the stored
// id is empty) the body is returned as-is.
func rewriteTraceID(body []byte, oldID, newID string) []byte {
	if oldID == "" || oldID == newID {
		return body
	}
	old := []byte(`"trace_id": "` + oldID + `"`)
	new := []byte(`"trace_id": "` + newID + `"`)
	return bytes.Replace(body, old, new, 1)
}
