package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"regexp"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/zoom/client"
)

// timingRe matches the volatile per-stage timing object in a deep-query
// response; it is the only non-deterministic part of any API body (wall-
// clock nanoseconds), so the differential suite masks it before the byte
// comparison. The timing object is flat — no nested braces.
var timingRe = regexp.MustCompile(`"timing": \{[^{}]*\}`)

func maskTiming(b []byte) []byte {
	return timingRe.ReplaceAll(b, []byte(`"timing": null`))
}

// traceID returns a fixed, valid trace id for pair n, so the single node
// and the cluster answer the same logical query under the same id and
// the trace_id fields compare equal byte-for-byte.
func traceID(n int) string { return fmt.Sprintf("%016x", n+1) }

// TestClusterDifferentialByteIdentical is the core correctness claim of
// the scale-out layer: for every run, query kind, and view shape, the
// routed answer over 2 and 4 shards is byte-identical to a single node
// holding all the runs (deep queries modulo the masked wall-clock timing
// block). Run ids are the shard key and every query is answered within
// one run, so sharding must not be observable to clients.
func TestClusterDifferentialByteIdentical(t *testing.T) {
	specs, runs, infos := buildCorpus(t, []gen.RunClass{gen.Small(), gen.Medium()})
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			singleURL, routerURL, _ := buildCluster(t, shards, specs, runs)
			n := 0
			diff := func(path, body string, mask bool) {
				t.Helper()
				id := traceID(n)
				n++
				wantStatus, want := postRaw(t, singleURL, path, id, body)
				gotStatus, got := postRaw(t, routerURL, path, id, body)
				if wantStatus != gotStatus {
					t.Fatalf("%s %s: status single=%d routed=%d", path, body, wantStatus, gotStatus)
				}
				if mask {
					want, got = maskTiming(want), maskTiming(got)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("%s %s: routed answer differs from single node\nsingle: %s\nrouted: %s",
						path, body, want, got)
				}
			}
			for _, info := range infos {
				relevant, err := json.Marshal(info.relevant)
				if err != nil {
					t.Fatal(err)
				}
				for _, target := range info.targets {
					// Deep under UAdmin, a relevant-set view, and each kind.
					diff("/v1/query", fmt.Sprintf(`{"run":%q,"data":%q}`, info.id, target), true)
					diff("/v1/query", fmt.Sprintf(`{"run":%q,"data":%q,"relevant":%s}`, info.id, target, relevant), true)
					diff("/v1/query", fmt.Sprintf(`{"run":%q,"data":%q,"kind":"immediate"}`, info.id, target), false)
					diff("/v1/query", fmt.Sprintf(`{"run":%q,"data":%q,"kind":"derived"}`, info.id, target), false)
				}
				targets, err := json.Marshal(info.targets)
				if err != nil {
					t.Fatal(err)
				}
				diff("/v1/batch", fmt.Sprintf(`{"run":%q,"data":%s}`, info.id, targets), false)
				diff("/v1/batch", fmt.Sprintf(`{"run":%q,"data":%s,"relevant":%s}`, info.id, targets, relevant), false)
			}

			// The merged run catalog is byte-identical too: same rows, same
			// sort, same count, same field order.
			id := traceID(n)
			wantStatus, want := getRaw(t, singleURL, "/v1/runs", id)
			gotStatus, got := getRaw(t, routerURL, "/v1/runs", id)
			if wantStatus != http.StatusOK || gotStatus != http.StatusOK {
				t.Fatalf("/v1/runs: status single=%d routed=%d", wantStatus, gotStatus)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("/v1/runs: routed catalog differs\nsingle: %s\nrouted: %s", want, got)
			}
		})
	}
}

// TestClusterConcurrentDifferential hammers the router from concurrent
// clients and checks every answer against single-node ground truth. The
// "Concurrent" name opts it into the -race CI job.
func TestClusterConcurrentDifferential(t *testing.T) {
	specs, runs, infos := buildCorpus(t, []gen.RunClass{gen.Small()})
	singleURL, routerURL, _ := buildCluster(t, 2, specs, runs)
	single := client.New(singleURL, client.Options{})
	ctx := context.Background()

	// Ground truth from the single node.
	type answer struct {
		result *client.Result
		batch  []*client.Result
	}
	truth := make(map[string]answer, len(infos))
	for _, info := range infos {
		q, err := single.Query(ctx, client.QueryRequest{Run: info.id, Data: info.targets[0]})
		if err != nil {
			t.Fatal(err)
		}
		b, err := single.Batch(ctx, client.BatchRequest{Run: info.id, Data: info.targets})
		if err != nil {
			t.Fatal(err)
		}
		truth[info.id] = answer{result: q.Result, batch: b.Results}
	}

	const workers = 8
	const iters = 10
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One client per goroutine, all sharing the router.
			c := client.New(routerURL, client.Options{})
			for i := 0; i < iters; i++ {
				info := infos[(w+i)%len(infos)]
				want := truth[info.id]
				q, err := c.Query(ctx, client.QueryRequest{Run: info.id, Data: info.targets[0]})
				if err != nil {
					errc <- fmt.Errorf("worker %d query %s: %v", w, info.id, err)
					return
				}
				if !reflect.DeepEqual(q.Result, want.result) {
					errc <- fmt.Errorf("worker %d: routed deep result for %s differs from single node", w, info.id)
					return
				}
				b, err := c.Batch(ctx, client.BatchRequest{Run: info.id, Data: info.targets})
				if err != nil {
					errc <- fmt.Errorf("worker %d batch %s: %v", w, info.id, err)
					return
				}
				if !reflect.DeepEqual(b.Results, want.batch) {
					errc <- fmt.Errorf("worker %d: routed batch for %s differs from single node", w, info.id)
					return
				}
				if i%5 == 0 {
					rr, err := c.Runs(ctx)
					if err != nil {
						errc <- fmt.Errorf("worker %d runs: %v", w, err)
						return
					}
					if rr.Count != len(infos) {
						errc <- fmt.Errorf("worker %d: merged runs count %d, want %d", w, rr.Count, len(infos))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
