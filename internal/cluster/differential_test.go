package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"regexp"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/zoom/client"
)

// timingRe matches the volatile per-stage timing object in a deep-query
// response; it is the only non-deterministic part of any API body (wall-
// clock nanoseconds), so the differential suite masks it before the byte
// comparison. The timing object is flat — no nested braces.
var timingRe = regexp.MustCompile(`"timing": \{[^{}]*\}`)

func maskTiming(b []byte) []byte {
	return timingRe.ReplaceAll(b, []byte(`"timing": null`))
}

// traceID returns a fixed, valid trace id for pair n, so the single node
// and the cluster answer the same logical query under the same id and
// the trace_id fields compare equal byte-for-byte.
func traceID(n int) string { return fmt.Sprintf("%016x", n+1) }

// TestClusterDifferentialByteIdentical is the core correctness claim of
// the scale-out layer: for every run, query kind, and view shape, the
// routed answer over 2 and 4 shards is byte-identical to a single node
// holding all the runs (deep queries modulo the masked wall-clock timing
// block). Run ids are the shard key and every query is answered within
// one run, so sharding must not be observable to clients.
func TestClusterDifferentialByteIdentical(t *testing.T) {
	specs, runs, infos := buildCorpus(t, []gen.RunClass{gen.Small(), gen.Medium()})
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			singleURL, routerURL, _ := buildCluster(t, shards, specs, runs)
			n := 0
			diff := func(path, body string, mask bool) {
				t.Helper()
				id := traceID(n)
				n++
				wantStatus, want := postRaw(t, singleURL, path, id, body)
				gotStatus, got := postRaw(t, routerURL, path, id, body)
				if wantStatus != gotStatus {
					t.Fatalf("%s %s: status single=%d routed=%d", path, body, wantStatus, gotStatus)
				}
				if mask {
					want, got = maskTiming(want), maskTiming(got)
				}
				if !bytes.Equal(want, got) {
					t.Fatalf("%s %s: routed answer differs from single node\nsingle: %s\nrouted: %s",
						path, body, want, got)
				}
			}
			for _, info := range infos {
				relevant, err := json.Marshal(info.relevant)
				if err != nil {
					t.Fatal(err)
				}
				for _, target := range info.targets {
					// Deep under UAdmin, a relevant-set view, and each kind.
					diff("/v1/query", fmt.Sprintf(`{"run":%q,"data":%q}`, info.id, target), true)
					diff("/v1/query", fmt.Sprintf(`{"run":%q,"data":%q,"relevant":%s}`, info.id, target, relevant), true)
					diff("/v1/query", fmt.Sprintf(`{"run":%q,"data":%q,"kind":"immediate"}`, info.id, target), false)
					diff("/v1/query", fmt.Sprintf(`{"run":%q,"data":%q,"kind":"derived"}`, info.id, target), false)
				}
				targets, err := json.Marshal(info.targets)
				if err != nil {
					t.Fatal(err)
				}
				diff("/v1/batch", fmt.Sprintf(`{"run":%q,"data":%s}`, info.id, targets), false)
				diff("/v1/batch", fmt.Sprintf(`{"run":%q,"data":%s,"relevant":%s}`, info.id, targets, relevant), false)
			}

			// The merged run catalog is byte-identical too: same rows, same
			// sort, same count, same field order.
			id := traceID(n)
			wantStatus, want := getRaw(t, singleURL, "/v1/runs", id)
			gotStatus, got := getRaw(t, routerURL, "/v1/runs", id)
			if wantStatus != http.StatusOK || gotStatus != http.StatusOK {
				t.Fatalf("/v1/runs: status single=%d routed=%d", wantStatus, gotStatus)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("/v1/runs: routed catalog differs\nsingle: %s\nrouted: %s", want, got)
			}
		})
	}
}

// TestClusterReplicatedDifferentialByteIdentical extends the byte-
// identity claim to replica sets: over a 2-shard × 2-replica cluster
// with the response cache enabled, every query kind answers byte-
// identically to a single node. Then the preferred replica of every
// shard is killed mid-suite and the whole sweep repeats twice more —
// once bypassing the cache (exercising failover to the fresh sibling)
// and once through it (exercising cached replay) — and both must
// reproduce the recorded first-sweep answers with only the trace id
// changed. Repeated bodies are compared against the recording, not the
// live single node, because the worker engine's closure memo makes a
// repeat observable there (outcome flips "miss" → "hit") while a fresh
// replica or a cached replay answers as the first time — exactly the
// contract the cache and identical-snapshot replicas promise.
func TestClusterReplicatedDifferentialByteIdentical(t *testing.T) {
	specs, runs, infos := buildCorpus(t, []gen.RunClass{gen.Small(), gen.Medium()})
	singleURL, routerURL, rt, servers := buildReplicatedCluster(t, 2, 2, specs, runs, func(cfg *Config) {
		cfg.CacheEntries = 1024
	})

	type recorded struct {
		path, body string
		mask       bool
		status     int
		traceID    string
		bytes      []byte // raw routed answer from the first sweep
	}
	var tape []recorded
	n := 0
	nextID := func() string { id := traceID(n); n++; return id }

	// Sweep 1: live differential against the single node, recording the
	// routed answers.
	sweep1 := func(path, body string, mask bool) {
		t.Helper()
		id := nextID()
		wantStatus, want := postRaw(t, singleURL, path, id, body)
		gotStatus, got := postRaw(t, routerURL, path, id, body)
		if wantStatus != gotStatus {
			t.Fatalf("%s %s: status single=%d routed=%d", path, body, wantStatus, gotStatus)
		}
		mw, mg := want, got
		if mask {
			mw, mg = maskTiming(want), maskTiming(got)
		}
		if !bytes.Equal(mw, mg) {
			t.Fatalf("%s %s: replicated answer differs from single node\nsingle: %s\nrouted: %s",
				path, body, mw, mg)
		}
		tape = append(tape, recorded{path: path, body: body, mask: mask, status: gotStatus, traceID: id, bytes: got})
	}
	for _, info := range infos {
		relevant, err := json.Marshal(info.relevant)
		if err != nil {
			t.Fatal(err)
		}
		for _, target := range info.targets {
			sweep1("/v1/query", fmt.Sprintf(`{"run":%q,"data":%q}`, info.id, target), true)
			sweep1("/v1/query", fmt.Sprintf(`{"run":%q,"data":%q,"relevant":%s}`, info.id, target, relevant), true)
			sweep1("/v1/query", fmt.Sprintf(`{"run":%q,"data":%q,"kind":"immediate"}`, info.id, target), false)
			sweep1("/v1/query", fmt.Sprintf(`{"run":%q,"data":%q,"kind":"derived"}`, info.id, target), false)
		}
		targets, err := json.Marshal(info.targets)
		if err != nil {
			t.Fatal(err)
		}
		sweep1("/v1/batch", fmt.Sprintf(`{"run":%q,"data":%s}`, info.id, targets), false)
	}

	// Kill the preferred replica of every shard.
	for i := range servers {
		killServer(servers[i][0])
	}

	// replay re-issues every recorded request under a fresh trace id and
	// checks the answer is the recording with the trace id rewritten.
	// rawQuery bypasses the router cache when set (the worker ignores the
	// unknown parameter, so its bytes don't change).
	replay := func(name, rawQuery string) {
		for _, rec := range tape {
			id := nextID()
			path := rec.path
			if rawQuery != "" {
				path += "?" + rawQuery
			}
			status, got := postRaw(t, routerURL, path, id, rec.body)
			if status != rec.status {
				t.Fatalf("%s %s %s: status %d, want recorded %d", name, rec.path, rec.body, status, rec.status)
			}
			want := bytes.Replace(rec.bytes, []byte(rec.traceID), []byte(id), 1)
			if rec.mask {
				want, got = maskTiming(want), maskTiming(got)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("%s %s %s: answer differs from recording (recID=%s newID=%s)\nrecorded: %s\nreplayed: %s",
					name, rec.path, rec.body, rec.traceID, id, want, got)
			}
		}
	}
	failoversBefore := rt.failovers.Value()
	replay("failover", "x=1")
	if rt.failovers.Value() == failoversBefore {
		t.Fatal("failover sweep never failed over")
	}
	hitsBefore := rt.cacheHits.Value()
	replay("cache", "")
	if rt.cacheHits.Value() == hitsBefore {
		t.Fatal("cache sweep produced no cache hits")
	}
}

// TestClusterReplicatedConcurrentDifferential hammers a 2×2 cluster from
// concurrent clients while the preferred replica of every shard is
// killed mid-flight: failover must keep every answer correct with zero
// errors. The "Concurrent" name opts it into the -race CI job.
func TestClusterReplicatedConcurrentDifferential(t *testing.T) {
	specs, runs, infos := buildCorpus(t, []gen.RunClass{gen.Small()})
	singleURL, routerURL, _, servers := buildReplicatedCluster(t, 2, 2, specs, runs, nil)
	single := client.New(singleURL, client.Options{})
	ctx := context.Background()

	truth := make(map[string]*client.Result, len(infos))
	for _, info := range infos {
		q, err := single.Query(ctx, client.QueryRequest{Run: info.id, Data: info.targets[0]})
		if err != nil {
			t.Fatal(err)
		}
		truth[info.id] = q.Result
	}

	const workers = 8
	const iters = 15
	var started sync.WaitGroup
	started.Add(workers)
	killed := make(chan struct{})
	go func() {
		started.Wait() // all clients in flight before the kill
		for i := range servers {
			killServer(servers[i][0])
		}
		close(killed)
	}()

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := client.New(routerURL, client.Options{})
			for i := 0; i < iters; i++ {
				if i == 1 {
					started.Done()
				}
				info := infos[(w+i)%len(infos)]
				q, err := c.Query(ctx, client.QueryRequest{Run: info.id, Data: info.targets[0]})
				if err != nil {
					errc <- fmt.Errorf("worker %d iter %d query %s: %v", w, i, info.id, err)
					return
				}
				if !reflect.DeepEqual(q.Result, truth[info.id]) {
					errc <- fmt.Errorf("worker %d: replicated answer for %s differs from single node", w, info.id)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	<-killed
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestClusterConcurrentDifferential hammers the router from concurrent
// clients and checks every answer against single-node ground truth. The
// "Concurrent" name opts it into the -race CI job.
func TestClusterConcurrentDifferential(t *testing.T) {
	specs, runs, infos := buildCorpus(t, []gen.RunClass{gen.Small()})
	singleURL, routerURL, _ := buildCluster(t, 2, specs, runs)
	single := client.New(singleURL, client.Options{})
	ctx := context.Background()

	// Ground truth from the single node.
	type answer struct {
		result *client.Result
		batch  []*client.Result
	}
	truth := make(map[string]answer, len(infos))
	for _, info := range infos {
		q, err := single.Query(ctx, client.QueryRequest{Run: info.id, Data: info.targets[0]})
		if err != nil {
			t.Fatal(err)
		}
		b, err := single.Batch(ctx, client.BatchRequest{Run: info.id, Data: info.targets})
		if err != nil {
			t.Fatal(err)
		}
		truth[info.id] = answer{result: q.Result, batch: b.Results}
	}

	const workers = 8
	const iters = 10
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One client per goroutine, all sharing the router.
			c := client.New(routerURL, client.Options{})
			for i := 0; i < iters; i++ {
				info := infos[(w+i)%len(infos)]
				want := truth[info.id]
				q, err := c.Query(ctx, client.QueryRequest{Run: info.id, Data: info.targets[0]})
				if err != nil {
					errc <- fmt.Errorf("worker %d query %s: %v", w, info.id, err)
					return
				}
				if !reflect.DeepEqual(q.Result, want.result) {
					errc <- fmt.Errorf("worker %d: routed deep result for %s differs from single node", w, info.id)
					return
				}
				b, err := c.Batch(ctx, client.BatchRequest{Run: info.id, Data: info.targets})
				if err != nil {
					errc <- fmt.Errorf("worker %d batch %s: %v", w, info.id, err)
					return
				}
				if !reflect.DeepEqual(b.Results, want.batch) {
					errc <- fmt.Errorf("worker %d: routed batch for %s differs from single node", w, info.id)
					return
				}
				if i%5 == 0 {
					rr, err := c.Runs(ctx)
					if err != nil {
						errc <- fmt.Errorf("worker %d runs: %v", w, err)
						return
					}
					if rr.Count != len(infos) {
						errc <- fmt.Errorf("worker %d: merged runs count %d, want %d", w, rr.Count, len(infos))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
