// Package cluster is the scale-out layer of the provenance service: a
// consistent-hash ring placing run ids on shards, and a stateless HTTP
// router that forwards run-addressed queries to the worker owning the
// run and scatter-gathers the catalog endpoints across all workers.
//
// The paper's provenance model is run-granular — every query (deep,
// immediate, derived, under any view) is answered entirely within one
// run's induced graph — so the run id is a perfect shard key: a worker
// holding a run's snapshot frames answers queries over it exactly as a
// single node would, and the cluster's answers are byte-identical to a
// single node's (pinned by the differential suite). Placement and
// snapshot splitting (`zoom snapshot shard`) use the same ring, so
// `router + N×(serve -mmap shard-k)` is a complete cluster bring-up.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/xxh"
)

// DefaultReplicas is the virtual-node count per shard. 128 points per
// shard keeps the max/mean load ratio under ~1.15 for realistic shard
// counts while the whole ring for 64 shards stays under 100KB.
const DefaultReplicas = 128

// Ring places run ids on n shards by consistent hashing: each shard
// contributes Replicas virtual points on a 64-bit circle (XXH64 of
// "shard-<k>#<r>"), and a run id lands on the first point clockwise of
// its own hash. Shards are abstract indexes 0..n-1 — the router maps
// them onto worker addresses, the snapshot splitter onto output files —
// so placement depends only on (n, replicas, run id), never on worker
// addresses: re-pointing a shard at a replacement worker moves no data.
//
// Consistent hashing (rather than hash mod n) keeps resharding cheap:
// growing n to n+1 moves ~1/(n+1) of the runs, the rest stay put, which
// is what makes `zoom snapshot shard` a file-level re-split instead of a
// full redistribution.
//
// A Ring is immutable after New and safe for concurrent use.
type Ring struct {
	n      int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing returns a ring over n shards with the given virtual-node count
// per shard (replicas <= 0 selects DefaultReplicas).
func NewRing(n, replicas int) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard, got %d", n)
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{n: n, points: make([]ringPoint, 0, n*replicas)}
	var key []byte
	for shard := 0; shard < n; shard++ {
		for v := 0; v < replicas; v++ {
			key = fmt.Appendf(key[:0], "shard-%d#%d", shard, v)
			r.points = append(r.points, ringPoint{hash: xxh.Sum64(key), shard: shard})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hashes (vanishingly rare): break the tie by shard so
		// placement stays deterministic regardless of sort stability.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the number of shards on the ring.
func (r *Ring) Shards() int { return r.n }

// Place returns the shard owning runID: the shard of the first virtual
// point at or clockwise of XXH64(runID), wrapping at the top of the
// circle.
func (r *Ring) Place(runID string) int {
	h := xxh.Sum64([]byte(runID))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Partition splits runIDs into per-shard groups, preserving input order
// within each group.
func (r *Ring) Partition(runIDs []string) [][]string {
	out := make([][]string, r.n)
	for _, id := range runIDs {
		s := r.Place(id)
		out[s] = append(out[s], id)
	}
	return out
}
