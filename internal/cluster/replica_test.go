package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/run"
	"repro/internal/server"
	"repro/internal/spec"
	"repro/internal/warehouse"
	"repro/zoom/client"
)

func TestParseWorkers(t *testing.T) {
	cases := []struct {
		in   string
		want [][]string
	}{
		{"a", [][]string{{"a"}}},
		{"a,b", [][]string{{"a"}, {"b"}}}, // legacy: commas separate shards
		{"a,b;c,d", [][]string{{"a", "b"}, {"c", "d"}}},
		{"a;b", [][]string{{"a"}, {"b"}}},
		{"a,b;", [][]string{{"a", "b"}}}, // trailing ; forces grouped
		{" a , b ; c ", [][]string{{"a", "b"}, {"c"}}},
		{"", nil},
		{";;", nil},
	}
	for _, tc := range cases {
		if got := ParseWorkers(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("ParseWorkers(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// buildReplicatedCluster is buildCluster with reps workers per shard (all
// replicas of a shard serve the same shard warehouse) and a caller-shaped
// router config. It returns the per-shard replica servers so tests can
// kill specific processes.
func buildReplicatedCluster(t *testing.T, n, reps int, specs []*spec.Spec, runs []*run.Run, shape func(*Config)) (string, string, *Router, [][]*httptest.Server) {
	t.Helper()
	ring, err := NewRing(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := warehouse.New(0)
	// Each replica gets its own warehouse loaded with the same shard's
	// runs — real replicas are separate processes over identical snapshot
	// copies, and sharing one in-process warehouse would leak memoized
	// closure state between siblings.
	shardWh := make([][]*warehouse.Warehouse, n)
	for i := range shardWh {
		for j := 0; j < reps; j++ {
			shardWh[i] = append(shardWh[i], warehouse.New(0))
		}
	}
	for _, sp := range specs {
		if err := full.RegisterSpec(sp); err != nil {
			t.Fatal(err)
		}
		for _, g := range shardWh {
			for _, w := range g {
				if err := w.RegisterSpec(sp); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for _, r := range runs {
		if err := full.LoadRun(r); err != nil {
			t.Fatal(err)
		}
		for _, w := range shardWh[ring.Place(r.ID())] {
			if err := w.LoadRun(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	single := newWorker(t, full)
	groups := make([][]string, n)
	servers := make([][]*httptest.Server, n)
	for i, g := range shardWh {
		for _, w := range g {
			ts := newWorker(t, w)
			servers[i] = append(servers[i], ts)
			groups[i] = append(groups[i], ts.URL)
		}
	}
	cfg := Config{Shards: groups}
	if shape != nil {
		shape(&cfg)
	}
	rt, err := New(obs.NewRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	return single.URL, rts.URL, rt, servers
}

// killServer force-closes a replica's client connections and listener so
// in-flight and future requests to it fail at the transport level.
func killServer(ts *httptest.Server) {
	ts.CloseClientConnections()
	ts.Close()
}

// TestRouterReplicaFailover kills the preferred replica of every shard
// and checks the tentpole's availability claim: every run-addressed
// request still answers 200 via the sibling replica, the failover counter
// moves, and the router still reports ready.
func TestRouterReplicaFailover(t *testing.T) {
	specs, runs, infos := buildCorpus(t, []gen.RunClass{gen.Small()})
	_, routerURL, rt, servers := buildReplicatedCluster(t, 2, 2, specs, runs, nil)

	for i := range servers {
		killServer(servers[i][0])
	}
	for _, info := range infos {
		status, b := postRaw(t, routerURL, "/v1/query", "",
			fmt.Sprintf(`{"run":%q,"data":%q}`, info.id, info.targets[0]))
		if status != http.StatusOK {
			t.Fatalf("query %s with preferred replica dead: status %d body %s", info.id, status, b)
		}
	}
	if rt.failovers.Value() == 0 {
		t.Fatal("failover counter did not move")
	}

	// Scatter-gather also fails over: the catalog is whole, not partial.
	status, b := getRaw(t, routerURL, "/v1/runs", "")
	if status != http.StatusOK || strings.Contains(string(b), `"partial"`) {
		t.Fatalf("runs with preferred replicas dead: status %d body %s", status, b)
	}

	// Live readiness: every shard still has a ready replica.
	status, b = getRaw(t, routerURL, "/readyz", "")
	if status != http.StatusOK {
		t.Fatalf("readyz with one replica per shard dead: status %d body %s", status, b)
	}
	for _, st := range rt.shardStates() {
		if !st.Ready {
			t.Fatalf("shard %d not ready with a live sibling: %+v", st.Shard, st)
		}
		if st.Replicas[0].Ready {
			t.Fatalf("shard %d dead replica still reported ready", st.Shard)
		}
	}

	// Kill the sibling too: now the shard fails fast with a 502.
	for i := range servers {
		killServer(servers[i][1])
	}
	deadInfo := infos[0]
	var sawGateway bool
	for i := 0; i < rt.cfg.BreakerThreshold+1; i++ {
		status, _ = postRaw(t, routerURL, "/v1/query", "",
			fmt.Sprintf(`{"run":%q,"data":%q}`, deadInfo.id, deadInfo.targets[0]))
		if status == http.StatusBadGateway {
			sawGateway = true
		}
	}
	if !sawGateway {
		t.Fatal("whole shard dead: expected 502s")
	}
}

// TestRouterHedging makes the preferred replica slow and checks that a
// hedged second attempt on the sibling wins: the answer comes back fast,
// correct, and the hedge counters move.
func TestRouterHedging(t *testing.T) {
	specs, runs, infos := buildCorpus(t, []gen.RunClass{gen.Small()})

	const slowFor = 500 * time.Millisecond
	_, routerURL, rt, servers := buildReplicatedCluster(t, 1, 2, specs, runs, func(cfg *Config) {
		cfg.HedgeDelay = 25 * time.Millisecond
	})

	// Interpose a delay on the preferred replica's query endpoint only
	// (health stays fast so the replica remains in rotation — a slow
	// worker, not a dead one).
	slowInner := servers[0][0].Config.Handler
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			time.Sleep(slowFor)
		}
		slowInner.ServeHTTP(w, r)
	}))
	t.Cleanup(slow.Close)
	rt.shards[0].replicas[0].base = slow.URL
	rt.shards[0].replicas[0].cl = client.New(slow.URL, client.Options{Timeout: -1})

	info := infos[0]
	start := time.Now()
	status, b := postRaw(t, routerURL, "/v1/query", "",
		fmt.Sprintf(`{"run":%q,"data":%q}`, info.id, info.targets[0]))
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("hedged query: status %d body %s", status, b)
	}
	if elapsed >= slowFor {
		t.Fatalf("hedged query took %v, want well under the %v straggler", elapsed, slowFor)
	}
	if rt.hedges.Value() == 0 || rt.hedgeWins.Value() == 0 {
		t.Fatalf("hedge counters did not move: hedges=%d wins=%d",
			rt.hedges.Value(), rt.hedgeWins.Value())
	}
}

// TestRouterResponseCache drives the cache through its whole life cycle:
// miss and store, hit with the trace id rewritten to the current
// request's, and invalidation when a health poll observes the worker's
// generation change.
func TestRouterResponseCache(t *testing.T) {
	specs, runs, infos := buildCorpus(t, []gen.RunClass{gen.Small()})
	full := warehouse.New(0)
	for _, sp := range specs {
		if err := full.RegisterSpec(sp); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range runs {
		if err := full.LoadRun(r); err != nil {
			t.Fatal(err)
		}
	}
	s, err := server.New(obs.NewRegistry(), server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng := provenance.NewEngine(full)
	s.SetEngine(eng)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	rt, err := New(obs.NewRegistry(), Config{Workers: []string{ts.URL}, CacheEntries: 64})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	ctx := context.Background()
	rt.checkAll(ctx) // record the baseline generation

	info := infos[0]
	body := fmt.Sprintf(`{"run":%q,"data":%q}`, info.id, info.targets[0])

	status1, b1 := postRaw(t, rts.URL, "/v1/query", "00000000000000a1", body)
	if status1 != http.StatusOK {
		t.Fatalf("first query: status %d body %s", status1, b1)
	}
	if rt.cacheMisses.Value() != 1 || rt.cacheHits.Value() != 0 {
		t.Fatalf("after first query: misses=%d hits=%d", rt.cacheMisses.Value(), rt.cacheHits.Value())
	}
	if rt.cache.Len() != 1 {
		t.Fatalf("cache entries %d, want 1", rt.cache.Len())
	}

	status2, b2 := postRaw(t, rts.URL, "/v1/query", "00000000000000a2", body)
	if status2 != http.StatusOK {
		t.Fatalf("second query: status %d body %s", status2, b2)
	}
	if rt.cacheHits.Value() != 1 {
		t.Fatalf("second query did not hit the cache: hits=%d", rt.cacheHits.Value())
	}
	// The cached replay is the first answer with only the trace id
	// swapped for the current request's.
	want := bytes.Replace(b1, []byte("00000000000000a1"), []byte("00000000000000a2"), 1)
	if !bytes.Equal(b2, want) {
		t.Fatalf("cached replay differs beyond the trace id\nfirst:  %s\nreplay: %s", b1, b2)
	}

	// ?trace=1 must bypass the cache: the inline trace is per-request.
	status3, b3 := postRaw(t, rts.URL, "/v1/query?trace=1", "00000000000000a3", body)
	if status3 != http.StatusOK || !strings.Contains(string(b3), `"trace"`) {
		t.Fatalf("traced query: status %d", status3)
	}
	if rt.cacheHits.Value() != 1 {
		t.Fatalf("traced query must not be served from cache: hits=%d", rt.cacheHits.Value())
	}

	// The worker reloads its warehouse: the generation changes, the next
	// health poll bumps the shard epoch, and the cached entry is dropped.
	s.SetEngine(eng)
	rt.checkAll(ctx)
	if rt.cacheInvals.Value() == 0 {
		t.Fatal("generation change did not count an invalidation")
	}
	status4, _ := postRaw(t, rts.URL, "/v1/query", "00000000000000a4", body)
	if status4 != http.StatusOK {
		t.Fatalf("post-invalidation query: status %d", status4)
	}
	if rt.cacheHits.Value() != 1 || rt.cacheMisses.Value() != 2 {
		t.Fatalf("post-invalidation query should miss: hits=%d misses=%d",
			rt.cacheHits.Value(), rt.cacheMisses.Value())
	}
}

// TestRespCacheBounds unit-tests the LRU's entry and byte bounds.
func TestRespCacheBounds(t *testing.T) {
	c := newRespCache(2, 0)
	mk := func(i int) *cacheEntry {
		return &cacheEntry{path: "/p", reqBody: []byte(fmt.Sprintf("req%d", i)), body: []byte("resp")}
	}
	c.store(mk(1))
	c.store(mk(2))
	c.store(mk(3)) // evicts 1
	if c.Len() != 2 {
		t.Fatalf("len %d, want 2", c.Len())
	}
	if e, _ := c.lookup("/p", []byte("req1"), 0); e != nil {
		t.Fatal("oldest entry should be evicted")
	}
	if e, _ := c.lookup("/p", []byte("req3"), 0); e == nil {
		t.Fatal("newest entry missing")
	}
	// Epoch mismatch drops the entry and reports stale.
	if _, stale := c.lookup("/p", []byte("req3"), 7); !stale {
		t.Fatal("epoch mismatch should report stale")
	}
	if e, _ := c.lookup("/p", []byte("req3"), 7); e != nil {
		t.Fatal("stale entry should be gone")
	}

	// Byte bound: tiny budget keeps only the newest entry.
	c2 := newRespCache(100, 16)
	c2.store(&cacheEntry{path: "/p", reqBody: []byte("aaaaaaaa"), body: []byte("bbbbbbbb")}) // 16 bytes
	c2.store(&cacheEntry{path: "/p", reqBody: []byte("cccccccc"), body: []byte("dddddddd")}) // evicts first
	if c2.Len() != 1 {
		t.Fatalf("byte-bounded len %d, want 1", c2.Len())
	}
}

// TestRouterRequestTooLarge checks the oversized-body bugfix on both
// sides of the hop: the router and the worker answer 413 (not 400) with
// the standard error body.
func TestRouterRequestTooLarge(t *testing.T) {
	specs, runs, _ := buildCorpus(t, []gen.RunClass{gen.Small()})
	singleURL, routerURL, _ := buildCluster(t, 2, specs, runs)
	big := fmt.Sprintf(`{"run":"r","data":%q}`, strings.Repeat("a", maxBodyBytes))
	for _, base := range []string{routerURL, singleURL} {
		status, body := postRaw(t, base, "/v1/query", "0000000000000bad", big)
		if status != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s: oversized body status %d, want 413 (body %.120s)", base, status, body)
		}
		if !strings.Contains(string(body), `"error"`) || !strings.Contains(string(body), "0000000000000bad") {
			t.Fatalf("%s: 413 body missing error/trace id: %s", base, body)
		}
	}
}

// TestRouterGatherCancel checks the semaphore bugfix: a cancelled
// scatter-gather returns promptly with context errors for unvisited
// shards instead of blocking on the fanout semaphore behind a hung
// worker.
func TestRouterGatherCancel(t *testing.T) {
	hang := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			<-r.Context().Done()
		}))
	}
	w0, w1 := hang(), hang()
	t.Cleanup(w0.Close)
	t.Cleanup(w1.Close)
	rt, err := New(obs.NewRegistry(), Config{
		Workers:       []string{w0.URL, w1.URL},
		Fanout:        1, // the second shard must wait for the first's slot
		GatherTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, fails := rt.gather(ctx, func(ctx context.Context, cl *client.Client) (any, error) {
		return cl.Runs(ctx)
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled gather took %v, want prompt return", elapsed)
	}
	if len(fails) != 2 {
		t.Fatalf("cancelled gather reported %d failures, want 2: %+v", len(fails), fails)
	}
	var sawCtx bool
	for _, f := range fails {
		if strings.Contains(f.Error, "context canceled") {
			sawCtx = true
		}
	}
	if !sawCtx {
		t.Fatalf("no shard reported the context error: %+v", fails)
	}
}

// TestRouterCopyErrors checks the relay bugfix: a worker that dies
// mid-body (Content-Length promised, connection cut short) is counted in
// router.copy_errors instead of passing as a silent success.
func TestRouterCopyErrors(t *testing.T) {
	// A worker whose query responses promise more bytes than they send;
	// the server closes the connection on the short write and the
	// router's relay fails mid-body.
	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"ready": true, "runs_loaded": 1, "runs_total": 1}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", "100000")
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		fmt.Fprint(w, `{"trace_id": "xx"`)
	}))
	t.Cleanup(liar.Close)
	rt, err := New(obs.NewRegistry(), Config{Workers: []string{liar.URL}})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	resp, err := http.Post(rts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"run":"r","data":"d"}`))
	if err == nil {
		// The router commits the 200 status line before the relay fails,
		// so the client sees a truncated body, not an HTTP error.
		_, _ = httputilReadAll(resp)
		resp.Body.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for rt.copyErrors.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if rt.copyErrors.Value() == 0 {
		t.Fatal("mid-body relay failure was not counted in router.copy_errors")
	}
}

// httputilReadAll drains a response body, tolerating the transport error
// a truncated relay produces.
func httputilReadAll(resp *http.Response) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// TestConcurrentBreakerHalfOpenReadmit races the per-replica breaker's
// open/half-open/re-admit cycle against in-flight forwards and the
// health loop, under -race (the "Concurrent" name opts it into the race
// CI job). A flaky preferred replica cycles between cutting connections
// and serving; the sibling stays healthy, so with failover every query
// must answer 200 throughout.
func TestConcurrentBreakerHalfOpenReadmit(t *testing.T) {
	specs, runs, infos := buildCorpus(t, []gen.RunClass{gen.Small()})

	_, routerURL, rt, servers := buildReplicatedCluster(t, 1, 2, specs, runs, func(cfg *Config) {
		cfg.BreakerThreshold = 2
		cfg.BreakerCooldown = 20 * time.Millisecond // fast half-open cycles
		cfg.HealthInterval = 10 * time.Millisecond
	})

	// Replace the preferred replica with a flaky front over the same
	// warehouse: while down it hijacks and drops every connection
	// (transport error), while up it serves normally.
	var down atomic.Bool
	inner := servers[0][0].Config.Handler
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(flaky.Close)
	rt.shards[0].replicas[0].base = flaky.URL
	rt.shards[0].replicas[0].cl = client.New(flaky.URL, client.Options{Timeout: -1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rt.HealthLoop(ctx)
	go func() {
		for ctx.Err() == nil {
			down.Store(!down.Load())
			time.Sleep(15 * time.Millisecond)
		}
	}()

	const workers = 4
	const iters = 40
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				info := infos[(w+i)%len(infos)]
				status, b := postRaw(t, routerURL, "/v1/query", "",
					fmt.Sprintf(`{"run":%q,"data":%q}`, info.id, info.targets[0]))
				if status != http.StatusOK {
					errc <- fmt.Errorf("worker %d iter %d: status %d body %.200s", w, i, status, b)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
