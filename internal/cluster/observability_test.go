package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/server"
	"repro/internal/warehouse"
)

// buildObsCluster is buildCluster with two observability twists: each
// worker's warehouse carries the SAME registry as its HTTP server (so the
// stats document embeds http.* counters, like `zoom serve` wires it), and
// the router takes a caller-supplied Config.
func buildObsCluster(t *testing.T, n int, cfg Config) (string, *Router, []string) {
	t.Helper()
	specs, runs, infos := buildCorpus(t, []gen.RunClass{gen.Small()})
	ring, err := NewRing(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	shardWh := make([]*warehouse.Warehouse, n)
	for i := range shardWh {
		shardWh[i] = warehouse.New(0)
		for _, sp := range specs {
			if err := shardWh[i].RegisterSpec(sp); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, r := range runs {
		if err := shardWh[ring.Place(r.ID())].LoadRun(r); err != nil {
			t.Fatal(err)
		}
	}
	workers := make([]string, n)
	for i, w := range shardWh {
		reg := obs.NewRegistry()
		w.AttachMetrics(reg)
		s, err := server.New(reg, server.Config{})
		if err != nil {
			t.Fatal(err)
		}
		s.SetEngine(provenance.NewEngine(w))
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		workers[i] = ts.URL
	}
	cfg.Workers = workers
	rt, err := New(obs.NewRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)
	// Any corpus run works for the trace tests; return the ids.
	ids := make([]string, 0, len(infos))
	for _, info := range infos {
		ids = append(ids, info.id+"\x00"+info.targets[0])
	}
	return rts.URL, rt, ids
}

// TestRouterStitchedTrace drives the tentpole end to end: one traced
// request through the router returns ONE span tree containing the
// router's spans (route.pick, cache.lookup, replica.attempt) with the
// worker's engine spans as a child subtree of the winning attempt, and
// the same stitched tree lands in the router slowlog.
func TestRouterStitchedTrace(t *testing.T) {
	routerURL, rt, ids := buildObsCluster(t, 2, Config{
		CacheEntries:  16,
		SlowThreshold: -1, // log every request
	})
	parts := strings.SplitN(ids[0], "\x00", 2)
	runID, target := parts[0], parts[1]
	const id = "0123456789abcdef"

	status, body := postRaw(t, routerURL, "/v1/query?trace=1", id,
		fmt.Sprintf(`{"run":%q,"data":%q}`, runID, target))
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp struct {
		TraceID string        `json:"trace_id"`
		Trace   *obs.SpanNode `json:"trace"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != id {
		t.Fatalf("trace id %q, want %q", resp.TraceID, id)
	}
	if resp.Trace == nil {
		t.Fatalf("no inline trace in routed response: %s", body)
	}
	if resp.Trace.Name != "POST /v1/query" {
		t.Fatalf("stitched root is %q, want the router route", resp.Trace.Name)
	}

	pick := resp.Trace.Find("route.pick")
	if pick == nil || pick.Tags["run"] != runID || pick.Tags["shard"] == "" {
		t.Fatalf("route.pick missing or untagged: %+v", pick)
	}
	// ?trace=1 carries a query string, so the enabled cache is bypassed —
	// and the span says so.
	look := resp.Trace.Find("cache.lookup")
	if look == nil || look.Tags["outcome"] != "bypass" {
		t.Fatalf("cache.lookup missing or outcome != bypass: %+v", look)
	}
	att := resp.Trace.Find("replica.attempt")
	if att == nil {
		t.Fatalf("no replica.attempt span: %+v", resp.Trace)
	}
	if att.Tags["outcome"] != "won" || !strings.HasPrefix(att.Tags["addr"], "http://") {
		t.Fatalf("attempt tags unexpected: %+v", att.Tags)
	}
	wantRef := id + ".a0"
	if att.Tags["span"] != wantRef {
		t.Fatalf("attempt span ref %q, want %q", att.Tags["span"], wantRef)
	}

	// The worker's subtree hangs under the winning attempt and names the
	// attempt it answered via the propagated parent-span header.
	var workerRoot *obs.SpanNode
	for i := range att.Children {
		if att.Children[i].Name == "POST /v1/query" {
			workerRoot = &att.Children[i]
		}
	}
	if workerRoot == nil {
		t.Fatalf("worker subtree missing under attempt: %+v", att)
	}
	if workerRoot.Tags["parent_span"] != wantRef {
		t.Fatalf("worker root parent_span %q, want %q", workerRoot.Tags["parent_span"], wantRef)
	}
	for _, span := range []string{"query.lookup", "closure.compute", "query.project"} {
		if workerRoot.Find(span) == nil {
			t.Fatalf("worker subtree missing %s: %+v", span, workerRoot)
		}
	}

	// The same stitched tree is in the router slowlog (threshold < 0 logs
	// everything), both via the API and at /debug/slowlog.
	var entry *obs.SlowEntry
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		for _, e := range rt.SlowLog().Entries() {
			if e.TraceID == id {
				entry = &e
				break
			}
		}
		if entry != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if entry == nil {
		t.Fatal("traced request never reached the router slowlog")
	}
	if entry.Trace.Find("replica.attempt") == nil || entry.Trace.Find("query.lookup") == nil {
		t.Fatalf("slowlog tree not stitched: %+v", entry.Trace)
	}
	status, body = getRaw(t, routerURL, "/debug/slowlog", "")
	if status != http.StatusOK || !strings.Contains(string(body), id) {
		t.Fatalf("/debug/slowlog: status %d, body misses trace %s", status, id)
	}

	// An untraced request through the same router must NOT grow a trace
	// field: stitching is strictly opt-in.
	status, body = postRaw(t, routerURL, "/v1/query", "",
		fmt.Sprintf(`{"run":%q,"data":%q}`, runID, target))
	if status != http.StatusOK {
		t.Fatalf("untraced status %d", status)
	}
	if strings.Contains(string(body), `"trace"`) {
		t.Fatalf("untraced routed response grew a trace field: %s", body)
	}
}

// TestRouterHostileTraceHeaders sends malformed trace ids and checks they
// are replaced, never echoed — in the response header, the body, and the
// slowlog.
func TestRouterHostileTraceHeaders(t *testing.T) {
	routerURL, rt, ids := buildObsCluster(t, 2, Config{SlowThreshold: -1})
	parts := strings.SplitN(ids[0], "\x00", 2)
	runID, target := parts[0], parts[1]
	for _, hostile := range []string{
		"UPPERCASE1234567",
		"short",
		"0123456789abcdef0123456789abcdef", // too long
		"inject\"quote123",
	} {
		req, err := http.NewRequest(http.MethodPost, routerURL+"/v1/query",
			strings.NewReader(fmt.Sprintf(`{"run":%q,"data":%q}`, runID, target)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(TraceIDHeader, hostile)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		got := resp.Header.Get(TraceIDHeader)
		if got == hostile || !obs.ValidTraceID(got) {
			t.Fatalf("hostile id %q echoed or replaced badly: %q", hostile, got)
		}
	}
	for _, e := range rt.SlowLog().Entries() {
		if !obs.ValidTraceID(e.TraceID) {
			t.Fatalf("hostile id reached the slowlog: %q", e.TraceID)
		}
	}
}

// TestRouterClusterStats exercises GET /v1/cluster/stats: worker
// registries merge into one cluster snapshot, both unprefixed (totals)
// and under shard.<k>. prefixes, next to the router's own snapshot.
func TestRouterClusterStats(t *testing.T) {
	routerURL, _, ids := buildObsCluster(t, 2, Config{})
	// Put some traffic on both shards so the merged counters are nonzero.
	for _, pair := range ids {
		parts := strings.SplitN(pair, "\x00", 2)
		status, _ := postRaw(t, routerURL, "/v1/query", "",
			fmt.Sprintf(`{"run":%q,"data":%q}`, parts[0], parts[1]))
		if status != http.StatusOK {
			t.Fatalf("query status %d", status)
		}
	}
	status, body := getRaw(t, routerURL, "/v1/cluster/stats", "")
	if status != http.StatusOK {
		t.Fatalf("cluster stats status %d: %s", status, body)
	}
	var resp clusterStatsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ShardsTotal != 2 || resp.ShardsOK != 2 || resp.Partial {
		t.Fatalf("shape unexpected: total=%d ok=%d partial=%v", resp.ShardsTotal, resp.ShardsOK, resp.Partial)
	}
	if len(resp.Shards) != 2 {
		t.Fatalf("want 2 raw shard documents, got %d", len(resp.Shards))
	}
	if resp.Router == nil || resp.Router.Counters["router.requests"] == 0 {
		t.Fatalf("router snapshot missing its own counters: %+v", resp.Router)
	}
	cl := resp.Cluster
	if cl == nil {
		t.Fatal("no merged cluster snapshot")
	}
	total := cl.Counters["http.requests"]
	if total < int64(len(ids)) {
		t.Fatalf("merged http.requests = %d, want >= %d", total, len(ids))
	}
	// The per-shard prefixed series must sum to the unprefixed total.
	if s := cl.Counters["shard.0.http.requests"] + cl.Counters["shard.1.http.requests"]; s != total {
		t.Fatalf("shard-prefixed sum %d != total %d", s, total)
	}
	if cl.Histograms["http.request_ns"].Count == 0 {
		t.Fatal("merged latency histogram empty")
	}
	// Runtime gauges from the workers survive the merge.
	if cl.Gauges["runtime.goroutines"] == 0 {
		t.Fatalf("merged runtime gauges missing: %+v", cl.Gauges)
	}
}

// TestRouterShardsPollVisibility checks the satellite: after a health
// sweep, /v1/shards reports each replica's last poll latency and
// timestamp, and a dead replica's row carries the error.
func TestRouterShardsPollVisibility(t *testing.T) {
	routerURL, rt, _ := buildObsCluster(t, 2, Config{})
	if rt.checkAll(t.Context()) != true {
		t.Fatal("cluster not ready")
	}
	status, body := getRaw(t, routerURL, "/v1/shards", "")
	if status != http.StatusOK {
		t.Fatalf("shards status %d", status)
	}
	var doc struct {
		Shards []shardState `json:"shards"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Shards) != 2 {
		t.Fatalf("want 2 shards, got %d", len(doc.Shards))
	}
	for _, sh := range doc.Shards {
		for _, rep := range sh.Replicas {
			if rep.LastPollNs <= 0 || rep.LastPollUnix <= 0 {
				t.Fatalf("replica %d/%d has no poll reading: %+v", sh.Shard, rep.Replica, rep)
			}
			if rep.LastError != "" {
				t.Fatalf("healthy replica reports error %q", rep.LastError)
			}
		}
	}
	// A failed poll surfaces its error in the replica's row.
	rep := rt.shards[0].replicas[0]
	rep.recordPoll(time.Millisecond, fmt.Errorf("connection refused"))
	durNs, atNs, msg := rep.lastPoll()
	if durNs <= 0 || atNs <= 0 || msg != "connection refused" {
		t.Fatalf("lastPoll after failure: %d %d %q", durNs, atNs, msg)
	}
	_, body = getRaw(t, routerURL, "/v1/shards", "")
	if !strings.Contains(string(body), "connection refused") {
		t.Fatalf("/v1/shards hides the poll error: %s", body)
	}
}

// TestRouterMetricsLabels checks the router's /metrics exposition folds
// the per-shard/per-replica series into labels.
func TestRouterMetricsLabels(t *testing.T) {
	routerURL, rt, ids := buildObsCluster(t, 2, Config{CacheEntries: 16})
	parts := strings.SplitN(ids[0], "\x00", 2)
	body := fmt.Sprintf(`{"run":%q,"data":%q}`, parts[0], parts[1])
	// Twice: a miss then a hit, so per-shard cache counters move.
	for i := 0; i < 2; i++ {
		if status, b := postRaw(t, routerURL, "/v1/query", "", body); status != http.StatusOK {
			t.Fatalf("query status %d: %s", status, b)
		}
	}
	if rt.checkAll(t.Context()) != true {
		t.Fatal("cluster not ready")
	}
	status, metrics := getRaw(t, routerURL, "/metrics", "")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	out := string(metrics)
	for _, want := range []string{
		`zoom_router_up{replica="0",shard="0"} 1`,
		`zoom_router_up{replica="0",shard="1"} 1`,
		`zoom_router_breaker_open{replica="0",shard="0"} 0`,
		"zoom_router_poll_ns{",
		`zoom_router_attempts{replica="0",`,
		"# TYPE zoom_runtime_goroutines gauge",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, out)
		}
	}
	// One shard took both requests: its labeled hit counter moved.
	if !strings.Contains(out, `zoom_router_cache_hits{shard="0"} `) &&
		!strings.Contains(out, `zoom_router_cache_hits{shard="1"} `) {
		t.Fatalf("no per-shard cache-hit series:\n%s", out)
	}
}
