package cluster

import (
	"fmt"
	"testing"
)

func ids(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("run-%04d", i)
	}
	return out
}

func TestRingRejectsZeroShards(t *testing.T) {
	if _, err := NewRing(0, 0); err == nil {
		t.Fatal("NewRing(0) should fail")
	}
}

func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRing(4, 0)
	for _, id := range ids(1000) {
		if a.Place(id) != b.Place(id) {
			t.Fatalf("placement of %q differs between identical rings", id)
		}
	}
	if a.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", a.Shards())
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing(4, DefaultReplicas)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	const n = 20000
	for _, id := range ids(n) {
		counts[r.Place(id)]++
	}
	mean := float64(n) / 4
	for s, c := range counts {
		ratio := float64(c) / mean
		if ratio < 0.5 || ratio > 1.5 {
			t.Fatalf("shard %d holds %d of %d runs (ratio %.2f), want within [0.5, 1.5] of mean", s, c, n, ratio)
		}
	}
}

// TestRingMinimalMovement pins the consistent-hashing property: growing
// the ring from n to n+1 shards moves roughly 1/(n+1) of the keys, not
// all of them (hash-mod-n would reshuffle ~80%).
func TestRingMinimalMovement(t *testing.T) {
	r4, _ := NewRing(4, 0)
	r5, _ := NewRing(5, 0)
	moved := 0
	const n = 20000
	for _, id := range ids(n) {
		if r4.Place(id) != r5.Place(id) {
			moved++
		}
	}
	frac := float64(moved) / n
	if frac < 0.05 || frac > 0.40 {
		t.Fatalf("grow 4->5 moved %.1f%% of keys, want ~20%% (5%%..40%%)", frac*100)
	}
}

func TestRingPartition(t *testing.T) {
	r, _ := NewRing(3, 0)
	in := ids(300)
	parts := r.Partition(in)
	if len(parts) != 3 {
		t.Fatalf("Partition returned %d groups, want 3", len(parts))
	}
	total := 0
	for s, group := range parts {
		total += len(group)
		for _, id := range group {
			if r.Place(id) != s {
				t.Fatalf("run %q in group %d but Place says %d", id, s, r.Place(id))
			}
		}
	}
	if total != len(in) {
		t.Fatalf("groups hold %d runs, want %d", total, len(in))
	}
}
