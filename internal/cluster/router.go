package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/zoom/client"
)

// TraceIDHeader carries the trace id across the router hop; the router
// adopts a valid inbound id and forwards it to the worker, which adopts
// it in turn, so one id names the request in every log on the path.
const TraceIDHeader = client.TraceIDHeader

// ParentSpanHeader carries the router's attempt-span reference to the
// worker on traced requests, so the worker's returned span tree can name
// the router attempt it answers (see client.ParentSpanHeader).
const ParentSpanHeader = client.ParentSpanHeader

// maxBodyBytes bounds forwarded request bodies (same cap as the worker).
const maxBodyBytes = 1 << 20

// maxStitchBody bounds how much of a traced worker response the router
// buffers to splice the stitched span tree in. A bigger body is relayed
// unmodified (with the worker's own trace still inline) rather than
// buffered without bound.
const maxStitchBody = 16 << 20

// DefaultSlowThreshold is the router slowlog threshold when none is
// configured (same default as the worker's).
const DefaultSlowThreshold = 10 * time.Millisecond

// Config tunes a Router.
type Config struct {
	// Workers are shard base URLs in shard order, one replica per shard:
	// Workers[k] serves shard k of len(Workers). The order must match the
	// -n used by `zoom snapshot shard`; the ring places runs on indexes,
	// not URLs. Ignored when Shards is set.
	Workers []string
	// Shards groups worker base URLs into replica sets: Shards[k] lists
	// the replicas serving shard k, in preference order (the router
	// forwards to the first available replica and fails over to the
	// next). Every replica of shard k must hold the same shard-k
	// snapshot. Takes precedence over Workers.
	Shards [][]string
	// Replicas is the virtual-node count per shard on the placement ring
	// (0 = DefaultReplicas). Must match the value used to split the
	// snapshot. (Ring vnodes, not the replica sets above.)
	Replicas int
	// ForwardTimeout bounds each forwarding attempt of a /v1/query or
	// /v1/batch request (default 30s).
	ForwardTimeout time.Duration
	// GatherTimeout bounds each per-shard call of a scatter-gather and of
	// a health poll (default 5s).
	GatherTimeout time.Duration
	// Fanout bounds how many shards a scatter-gather or health sweep hits
	// concurrently (default 8).
	Fanout int
	// HealthInterval is the /readyz polling period (default 2s).
	HealthInterval time.Duration
	// BreakerThreshold is the consecutive forwarding failures that open a
	// replica's circuit (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit fails fast before the
	// next attempt is allowed through (default 5s). A successful health
	// poll closes the circuit early.
	BreakerCooldown time.Duration
	// HedgeDelay, when positive, launches a second attempt of a
	// run-addressed request on the shard's next available replica after
	// this delay; the first response wins and the loser is cancelled.
	// Pick a p99-ish value for the workload. Zero disables hedging (the
	// default) — it trades duplicate load for tail latency and only
	// helps when replicas exist.
	HedgeDelay time.Duration
	// CacheEntries bounds the router-side response cache (entry count).
	// Zero disables the cache (the default for embedded use; `zoom
	// router` enables it by flag). Entries are keyed on the full request
	// body and invalidated when the owning shard's worker generation
	// changes.
	CacheEntries int
	// CacheBytes bounds the cache's total retained bytes (0 selects
	// DefaultCacheBytes). Only meaningful when CacheEntries > 0.
	CacheBytes int64
	// MaxIdleConns bounds the keep-alive pool per worker (default 32).
	MaxIdleConns int
	// Transport overrides the shared HTTP transport (tests, custom pools).
	Transport http.RoundTripper
	// SlowThreshold is the request duration at or above which a routed
	// request enters the router slowlog at /debug/slowlog, span tree
	// included. Zero selects DefaultSlowThreshold; negative logs every
	// request (useful in tests and smoke scripts).
	SlowThreshold time.Duration
	// SlowLogSize bounds the router slowlog ring (default 128).
	SlowLogSize int
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Replicas <= 0 {
		out.Replicas = DefaultReplicas
	}
	if out.ForwardTimeout <= 0 {
		out.ForwardTimeout = 30 * time.Second
	}
	if out.GatherTimeout <= 0 {
		out.GatherTimeout = 5 * time.Second
	}
	if out.Fanout <= 0 {
		out.Fanout = 8
	}
	if out.HealthInterval <= 0 {
		out.HealthInterval = 2 * time.Second
	}
	if out.BreakerThreshold <= 0 {
		out.BreakerThreshold = 3
	}
	if out.BreakerCooldown <= 0 {
		out.BreakerCooldown = 5 * time.Second
	}
	if out.MaxIdleConns <= 0 {
		out.MaxIdleConns = 32
	}
	if out.SlowThreshold == 0 {
		out.SlowThreshold = DefaultSlowThreshold
	}
	if out.SlowLogSize <= 0 {
		out.SlowLogSize = 128
	}
	return out
}

// Router is a stateless scale-out front for N zoom shards, each served
// by a replica set of workers: it places run-addressed requests
// (/v1/query, /v1/batch) on the consistent-hash ring and forwards them
// to the shard's preferred replica over pooled keep-alive connections —
// failing over to the next replica on transport error or open breaker,
// optionally hedging slow requests — and answers the catalog endpoints
// (/v1/runs, /v1/stats) by bounded parallel scatter-gather with a
// deterministic merge. Per-replica circuit breakers and /readyz polling
// keep a dead worker from blacking out its shard while a sibling holds
// the same data, and an optional bounded response cache answers repeated
// queries without a hop, invalidated by the worker generation the health
// poll observes.
type Router struct {
	cfg    Config
	ring   *Ring
	shards []*shard
	httpc  *http.Client
	reg    *obs.Registry
	cache  *respCache
	slow   *obs.SlowLog

	requests    *obs.Counter
	slowCount   *obs.Counter
	requestNs   *obs.Histogram
	forwards    *obs.Counter
	fwdErrors   *obs.Counter
	fastFails   *obs.Counter
	failovers   *obs.Counter
	hedges      *obs.Counter
	hedgeWins   *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	cacheInvals *obs.Counter
	copyErrors  *obs.Counter
	gathers     *obs.Counter
	partials    *obs.Counter
}

// New returns a router over cfg.Shards (or cfg.Workers as single-replica
// shards; at least one shard required), wired to reg (one is created
// when nil). Start its health loop with HealthLoop or let Serve do it.
func New(reg *obs.Registry, cfg Config) (*Router, error) {
	groups := cfg.Shards
	if len(groups) == 0 {
		for _, w := range cfg.Workers {
			groups = append(groups, []string{w})
		}
	}
	if len(groups) == 0 {
		return nil, errors.New("cluster: router needs at least one worker")
	}
	total := 0
	for k, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replicas", k)
		}
		for _, base := range g {
			if base == "" {
				return nil, fmt.Errorf("cluster: shard %d has an empty replica address", k)
			}
		}
		total += len(g)
	}
	cfg = (&cfg).withDefaults()
	ring, err := NewRing(len(groups), cfg.Replicas)
	if err != nil {
		return nil, err
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	rt := cfg.Transport
	if rt == nil {
		rt = &http.Transport{
			MaxIdleConns:        cfg.MaxIdleConns * total,
			MaxIdleConnsPerHost: cfg.MaxIdleConns,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	obs.AttachRuntime(reg)
	r := &Router{
		cfg:         cfg,
		ring:        ring,
		httpc:       &http.Client{Transport: rt},
		reg:         reg,
		slow:        obs.NewSlowLog(cfg.SlowLogSize),
		requests:    reg.Counter("router.requests"),
		slowCount:   reg.Counter("router.slow_requests"),
		requestNs:   reg.Histogram("router.request_ns"),
		forwards:    reg.Counter("router.forwards"),
		fwdErrors:   reg.Counter("router.forward_errors"),
		fastFails:   reg.Counter("router.fast_fails"),
		failovers:   reg.Counter("router.failovers"),
		hedges:      reg.Counter("router.hedges"),
		hedgeWins:   reg.Counter("router.hedge_wins"),
		cacheHits:   reg.Counter("router.cache_hits"),
		cacheMisses: reg.Counter("router.cache_misses"),
		cacheInvals: reg.Counter("router.cache_invalidations"),
		copyErrors:  reg.Counter("router.copy_errors"),
		gathers:     reg.Counter("router.gathers"),
		partials:    reg.Counter("router.gather_partial"),
	}
	if cfg.CacheEntries > 0 {
		r.cache = newRespCache(cfg.CacheEntries, cfg.CacheBytes)
	}
	for k, g := range groups {
		sh := &shard{
			index:       k,
			cacheHits:   reg.Counter(fmt.Sprintf("router.shard.%d.cache_hits", k)),
			cacheMisses: reg.Counter(fmt.Sprintf("router.shard.%d.cache_misses", k)),
			failovers:   reg.Counter(fmt.Sprintf("router.shard.%d.failovers", k)),
			hedges:      reg.Counter(fmt.Sprintf("router.shard.%d.hedges", k)),
			hedgeWins:   reg.Counter(fmt.Sprintf("router.shard.%d.hedge_wins", k)),
		}
		for j, base := range g {
			prefix := fmt.Sprintf("router.shard.%d.replica.%d.", k, j)
			sh.replicas = append(sh.replicas, &replica{
				shard:    k,
				index:    j,
				base:     base,
				cl:       client.New(base, client.Options{Timeout: -1, Transport: rt}),
				up:       reg.Gauge(prefix + "up"),
				breaker:  reg.Gauge(prefix + "breaker_open"),
				pollNs:   reg.Gauge(prefix + "poll_ns"),
				attempts: reg.Counter(prefix + "attempts"),
				errors:   reg.Counter(prefix + "errors"),
			})
		}
		r.shards = append(r.shards, sh)
	}
	return r, nil
}

// Ring returns the router's placement ring.
func (rt *Router) Ring() *Ring { return rt.ring }

// Registry returns the router's metrics registry.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// errorBody matches the worker's uniform JSON error shape, so clients
// decode router-originated errors (fast 502s) exactly like worker errors.
type errorBody struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Handler returns the router's route table.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/query", rt.traced("POST /v1/query", rt.forward("/v1/query")))
	mux.Handle("POST /v1/batch", rt.traced("POST /v1/batch", rt.forward("/v1/batch")))
	mux.Handle("GET /v1/runs", rt.traced("GET /v1/runs", rt.handleRuns))
	mux.Handle("GET /v1/stats", rt.traced("GET /v1/stats", rt.handleStats))
	mux.Handle("GET /v1/cluster/stats", rt.traced("GET /v1/cluster/stats", rt.handleClusterStats))
	mux.HandleFunc("GET /v1/shards", rt.handleShards)
	mux.HandleFunc("GET /debug/slowlog", rt.handleSlowlog)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	return mux
}

// statusWriter records the response status for the slowlog.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// routerHandler is a routed endpoint body: it runs under the request's
// trace (created at the boundary by traced) and records spans on its root.
type routerHandler func(tr *obs.Trace, w http.ResponseWriter, r *http.Request)

// traced wraps a routed endpoint with the request boundary: a trace (a
// valid inbound X-Zoom-Trace-Id is adopted — anything malformed is
// replaced, never echoed), the request counter/histogram, and slowlog
// capture when the request runs at or over the threshold. The captured
// tree is the router's spans — route.pick, cache.lookup, each
// replica.attempt — plus, for traced requests, the worker's stitched
// subtree, so a slow entry shows where the time went across the hop.
func (rt *Router) traced(route string, h routerHandler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTraceWithID(route, r.Header.Get(TraceIDHeader))
		w.Header().Set(TraceIDHeader, tr.ID())
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(tr, sw, r)
		dur := time.Since(start)
		node := tr.Finish()
		rt.requests.Inc()
		rt.requestNs.Observe(dur.Nanoseconds())
		if dur >= rt.cfg.SlowThreshold {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			rt.slowCount.Inc()
			rt.slow.Add(obs.SlowEntry{
				Time:    time.Now(),
				TraceID: tr.ID(),
				Route:   route,
				Request: r.URL.RequestURI(),
				Status:  status,
				DurNs:   dur.Nanoseconds(),
				Trace:   node,
			})
		}
	})
}

// SlowLog returns the router's slow-request ring.
func (rt *Router) SlowLog() *obs.SlowLog { return rt.slow }

// handleSlowlog serves the router slowlog, newest first.
func (rt *Router) handleSlowlog(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"threshold_ns": rt.cfg.SlowThreshold.Nanoseconds(),
		"entries":      rt.slow.Entries(),
	})
}

// Serve runs the router on ln until ctx is cancelled, with the health
// loop polling in the background, then shuts down gracefully like the
// worker: the listener closes immediately, in-flight requests get up to
// drain to finish.
func (rt *Router) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	go rt.HealthLoop(hctx)
	srv := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(sctx)
	if e := <-errc; e != nil && !errors.Is(e, http.ErrServerClosed) && err == nil {
		err = e
	}
	return err
}

// wantInlineTrace mirrors the worker's ?trace=1 check: the client asked
// for the span tree inline in the response body.
func wantInlineTrace(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// forward returns the handler for a run-addressed endpoint: peek at the
// run id, place it on the ring, and relay the request/response verbatim
// to/from the shard's replicas. The body passes through untouched in
// both directions — the cluster's answers are byte-identical to the
// worker's (and, by the differential suite, to a single node's) — and a
// cache hit replays the worker's bytes with only the trace id rewritten
// to the current request's. The one exception is ?trace=1 (never
// cacheable, since any query string bypasses the cache): the worker's
// inline span tree is spliced out of the body and grafted under the
// winning replica.attempt span, so the client gets ONE stitched tree
// covering both hops instead of the worker's fragment.
func (rt *Router) forward(path string) routerHandler {
	return func(tr *obs.Trace, w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{
					Error:   fmt.Sprintf("request body exceeds %d bytes", mbe.Limit),
					TraceID: tr.ID(),
				})
				return
			}
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: "bad request: " + err.Error(), TraceID: tr.ID()})
			return
		}
		// The router only needs the run id for placement; everything else
		// in the body is the worker's to validate.
		var peek struct {
			Run string `json:"run"`
		}
		if jerr := json.Unmarshal(body, &peek); jerr != nil || peek.Run == "" {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: "bad request: a JSON body with a run id is required", TraceID: tr.ID()})
			return
		}
		pick := tr.Root().StartChild("route.pick")
		idx := rt.ring.Place(peek.Run)
		sh := rt.shards[idx]
		pick.SetTag("run", peek.Run)
		pick.SetTag("shard", strconv.Itoa(idx))
		pick.End()

		// The epoch is read before the lookup/forward so a generation
		// change observed mid-flight invalidates conservatively. The
		// cache.lookup span is recorded in every configuration — its
		// outcome tag says which case this request was (disabled, bypass
		// for a query string, hit, miss), so a trace always answers "did
		// the cache see this?".
		epoch := sh.epoch.Load()
		cacheable := rt.cache != nil && r.URL.RawQuery == ""
		look := tr.Root().StartChild("cache.lookup")
		switch {
		case rt.cache == nil:
			look.SetTag("outcome", "disabled")
			look.End()
		case !cacheable:
			look.SetTag("outcome", "bypass")
			look.End()
		default:
			ent, stale := rt.cache.lookup(path, body, epoch)
			if stale {
				rt.cacheInvals.Inc()
			}
			if ent != nil {
				look.SetTag("outcome", "hit")
				look.End()
				rt.cacheHits.Inc()
				sh.cacheHits.Inc()
				if ent.contentType != "" {
					w.Header().Set("Content-Type", ent.contentType)
				}
				w.WriteHeader(http.StatusOK)
				if _, werr := w.Write(rewriteTraceID(ent.body, ent.traceID, tr.ID())); werr != nil {
					rt.copyError(tr, idx, werr)
				}
				return
			}
			look.SetTag("outcome", "miss")
			look.End()
			rt.cacheMisses.Inc()
			sh.cacheMisses.Inc()
		}

		cands := sh.candidates(time.Now())
		if len(cands) == 0 {
			rt.fastFails.Inc()
			writeJSON(w, http.StatusBadGateway, errorBody{
				Error:   fmt.Sprintf("shard %d unavailable: %s", idx, sh.state(time.Now())),
				TraceID: tr.ID(),
			})
			return
		}
		wantTrace := wantInlineTrace(r)
		resp, rep, winSpan, release, err := rt.attempt(r.Context(), tr, sh, path, r.URL.RawQuery, body, cands, wantTrace)
		if err != nil {
			base := ""
			if rep != nil {
				base = rep.base
			}
			writeJSON(w, http.StatusBadGateway, errorBody{
				Error:   fmt.Sprintf("shard %d (%s) forward failed: %v", idx, base, err),
				TraceID: tr.ID(),
			})
			return
		}
		defer release()
		defer resp.Body.Close()
		rt.forwards.Inc()
		ct := resp.Header.Get("Content-Type")
		if ct != "" {
			w.Header().Set("Content-Type", ct)
		}

		if wantTrace && resp.StatusCode == http.StatusOK {
			// Buffer the traced response and splice the worker's span tree
			// out of the body, grafting it under the winning attempt span;
			// the rewritten body then carries the full stitched tree. An
			// over-sized body is relayed unmodified instead of buffered
			// without bound.
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxStitchBody+1))
			if rerr == nil && len(data) <= maxStitchBody {
				w.WriteHeader(http.StatusOK)
				if _, werr := w.Write(rt.stitch(tr, winSpan, data)); werr != nil {
					rt.copyError(tr, idx, werr)
				}
				return
			}
			w.WriteHeader(http.StatusOK)
			if len(data) > 0 {
				if _, werr := w.Write(data); werr != nil {
					rt.copyError(tr, idx, werr)
					return
				}
			}
			if rerr != nil {
				rt.copyError(tr, idx, rerr)
				return
			}
			if _, cerr := io.Copy(w, resp.Body); cerr != nil {
				rt.copyError(tr, idx, cerr)
			}
			return
		}

		w.WriteHeader(resp.StatusCode)
		relay := tr.Root().StartChild("relay")
		defer relay.End()
		if cacheable && resp.StatusCode == http.StatusOK {
			// Buffer a cache-sized prefix; if the body fits, the copy to
			// the client and the stored entry are the same bytes.
			data, rerr := io.ReadAll(io.LimitReader(resp.Body, maxCacheBody+1))
			if len(data) > 0 {
				if _, werr := w.Write(data); werr != nil {
					rt.copyError(tr, idx, werr)
					return
				}
			}
			if rerr != nil {
				rt.copyError(tr, idx, rerr)
				return
			}
			if len(data) <= maxCacheBody {
				rt.cache.store(&cacheEntry{
					path:        path,
					reqBody:     body,
					shard:       idx,
					epoch:       epoch,
					contentType: ct,
					traceID:     tr.ID(),
					body:        data,
				})
				return
			}
			// Too big to cache: stream the rest through.
			if _, cerr := io.Copy(w, resp.Body); cerr != nil {
				rt.copyError(tr, idx, cerr)
			}
			return
		}
		if _, cerr := io.Copy(w, resp.Body); cerr != nil {
			// A mid-body client disconnect or worker reset is not a
			// successful forward even though the status line went out.
			rt.copyError(tr, idx, cerr)
		}
	}
}

// stitch splices the worker's inline span tree out of a traced response
// body and replaces it with the router's full tree, the worker's tree
// adopted under the winning attempt span. The body is otherwise relayed
// byte-for-byte: the worker's trace value is located as verbatim source
// bytes (json.RawMessage) and swapped in place, so field order,
// indentation, and every other byte the worker wrote survive. On any
// decode surprise the body passes through unmodified — a stitching bug
// degrades to the worker's own trace, never to a corrupt response.
func (rt *Router) stitch(tr *obs.Trace, winSpan *obs.Span, data []byte) []byte {
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		return data
	}
	raw, ok := doc["trace"]
	if !ok {
		return data
	}
	var node obs.SpanNode
	if err := json.Unmarshal(raw, &node); err != nil {
		return data
	}
	winSpan.Adopt(node)
	snap := tr.Snapshot()
	// Depth-1 value under the worker's SetIndent("", "  ") document.
	nb, err := json.MarshalIndent(snap, "  ", "  ")
	if err != nil {
		return data
	}
	return bytes.Replace(data, raw, nb, 1)
}

// copyError records a response-relay failure: the status line was already
// committed, so all the router can do is count it and name the trace.
func (rt *Router) copyError(tr *obs.Trace, shard int, err error) {
	rt.copyErrors.Inc()
	log.Printf("zoom router: response copy failed: shard %d trace %s: %v", shard, tr.ID(), err)
}

// fwdResult is one replica attempt's outcome inside attempt.
type fwdResult struct {
	rep    *replica
	span   *obs.Span
	resp   *http.Response
	cancel context.CancelFunc
	err    error
	hedged bool
}

// attempt forwards body to the shard's candidate replicas: the preferred
// replica first, failing over to the next on transport error, and — when
// cfg.HedgeDelay is set — hedging with a second concurrent attempt on
// the next candidate once the delay elapses. The first successful
// response wins; losers are cancelled and drained. The returned release
// func ends the winner's request context and must be called after the
// response body has been consumed. Only transport-level failures feed
// the breaker and trigger failover; a worker that answers (any status)
// is alive and its response is relayed verbatim.
//
// Every launch records a replica.attempt span under the trace root,
// tagged with the replica address and how it ended (won / failed /
// cancelled), so a failover or hedge race reads directly off the tree.
// Each span also carries a span reference ("<traceid>.a<n>") that, on
// traced requests, travels to the worker in X-Zoom-Parent-Span; the
// worker tags its root with the same reference, so the stitched subtree
// names the exact attempt it answered even after the trees are merged.
func (rt *Router) attempt(parent context.Context, tr *obs.Trace, sh *shard, path, rawQuery string, body []byte, cands []*replica, wantTrace bool) (*http.Response, *replica, *obs.Span, func(), error) {
	results := make(chan fwdResult, len(cands))
	next, inflight, attemptSeq := 0, 0, 0
	launch := func(hedged bool) {
		rep := cands[next]
		next++
		inflight++
		ref := fmt.Sprintf("%s.a%d", tr.ID(), attemptSeq)
		attemptSeq++
		sp := tr.Root().StartChild("replica.attempt")
		sp.SetTag("addr", rep.base)
		sp.SetTag("replica", strconv.Itoa(rep.index))
		sp.SetTag("span", ref)
		if hedged {
			sp.SetTag("hedged", "true")
		}
		rep.attempts.Inc()
		actx, cancel := context.WithTimeout(parent, rt.cfg.ForwardTimeout)
		go func() {
			url := rep.base + path
			if rawQuery != "" {
				url += "?" + rawQuery
			}
			req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(body))
			if err != nil {
				results <- fwdResult{rep: rep, span: sp, cancel: cancel, err: err, hedged: hedged}
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set(TraceIDHeader, tr.ID())
			if wantTrace {
				req.Header.Set(ParentSpanHeader, ref)
			}
			resp, err := rt.httpc.Do(req)
			results <- fwdResult{rep: rep, span: sp, resp: resp, cancel: cancel, err: err, hedged: hedged}
		}()
	}
	// drainLosers closes out attempts still in flight after a decision.
	drainLosers := func(n int) {
		if n <= 0 {
			return
		}
		go func() {
			for i := 0; i < n; i++ {
				lr := <-results
				lr.cancel()
				if lr.resp != nil {
					lr.resp.Body.Close()
				}
				lr.span.SetTag("outcome", "cancelled")
				lr.span.End()
			}
		}()
	}

	launch(false)
	var hedgeC <-chan time.Time
	if rt.cfg.HedgeDelay > 0 && len(cands) > 1 {
		t := time.NewTimer(rt.cfg.HedgeDelay)
		defer t.Stop()
		hedgeC = t.C
	}
	var lastErr error
	var lastRep *replica
	for inflight > 0 {
		select {
		case <-hedgeC:
			hedgeC = nil
			if next < len(cands) {
				rt.hedges.Inc()
				sh.hedges.Inc()
				launch(true)
			}
		case res := <-results:
			inflight--
			if res.err != nil {
				res.cancel()
				res.span.SetTag("outcome", "failed")
				res.span.SetTag("error", res.err.Error())
				res.span.End()
				res.rep.errors.Inc()
				if parent.Err() != nil {
					// The client went away (or the whole request timed
					// out): not the replica's fault — no breaker, no
					// failover cascade.
					drainLosers(inflight)
					return nil, res.rep, nil, nil, parent.Err()
				}
				res.rep.fail(int32(rt.cfg.BreakerThreshold), rt.cfg.BreakerCooldown)
				rt.fwdErrors.Inc()
				lastErr, lastRep = res.err, res.rep
				if inflight == 0 && next < len(cands) {
					rt.failovers.Inc()
					sh.failovers.Inc()
					launch(false)
				}
				continue
			}
			res.rep.ok()
			if res.hedged {
				rt.hedgeWins.Inc()
				sh.hedgeWins.Inc()
			}
			res.span.SetTag("outcome", "won")
			res.span.End()
			drainLosers(inflight)
			return res.resp, res.rep, res.span, res.cancel, nil
		}
	}
	return nil, lastRep, nil, nil, lastErr
}

// ShardError describes one shard's failure inside a partial scatter-
// gather answer or a fast 502.
type ShardError struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	Error string `json:"error"`
}

// gather calls fn once per shard with bounded concurrency and returns
// the per-shard results (nil where failed) plus the failures sorted by
// shard index. Within a shard, fn runs against the preferred available
// replica and fails over to the next on transport error; shards with no
// available replica are reported failed without a request. Only
// transport-level failures feed the breakers; a worker that answers
// (even with an error status) is alive. Acquiring a fan-out slot
// respects ctx, so a cancelled scatter-gather releases immediately and
// reports a context error for unvisited shards instead of blocking on
// the semaphore.
func (rt *Router) gather(ctx context.Context, fn func(context.Context, *client.Client) (any, error)) ([]any, []ShardError) {
	rt.gathers.Inc()
	results := make([]any, len(rt.shards))
	errs := make([]error, len(rt.shards))
	sem := make(chan struct{}, rt.cfg.Fanout)
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				errs[i] = ctx.Err()
				return
			}
			defer func() { <-sem }()
			cands := sh.candidates(time.Now())
			if len(cands) == 0 {
				errs[i] = errors.New(sh.state(time.Now()))
				return
			}
			for _, rep := range cands {
				cctx, cancel := context.WithTimeout(ctx, rt.cfg.GatherTimeout)
				v, err := fn(cctx, rep.cl)
				cancel()
				if err != nil {
					errs[i] = err
					var ce *client.Error
					if errors.As(err, &ce) {
						// The worker answered; its error is the shard's
						// answer — no failover past a live worker.
						return
					}
					if ctx.Err() != nil {
						return
					}
					rep.fail(int32(rt.cfg.BreakerThreshold), rt.cfg.BreakerCooldown)
					continue
				}
				rep.ok()
				results[i], errs[i] = v, nil
				return
			}
		}(i, sh)
	}
	wg.Wait()
	var fails []ShardError
	for i, err := range errs {
		if err != nil {
			fails = append(fails, ShardError{Shard: i, Addr: rt.shards[i].replicas[0].base, Error: err.Error()})
		}
	}
	if len(fails) > 0 {
		rt.partials.Inc()
	}
	return results, fails
}

// routerRunsResponse is the merged GET /v1/runs body. The leading fields
// mirror the worker's runsResponse exactly (trace_id, count, runs) so a
// fully-healthy cluster answer is byte-identical to a single node
// holding the same runs; the partial fields only appear when shards
// failed — degraded answers are flagged, never silently truncated.
type routerRunsResponse struct {
	TraceID      string           `json:"trace_id"`
	Count        int              `json:"count"`
	Runs         []client.RunInfo `json:"runs"`
	Partial      bool             `json:"partial,omitempty"`
	FailedShards []ShardError     `json:"failed_shards,omitempty"`
}

// handleRuns scatter-gathers the run catalog and merges it
// deterministically: dedup by run id (first shard wins — shards are
// disjoint under a correct split, so this only matters for overlapping
// hand-built deployments), then sort by id.
func (rt *Router) handleRuns(tr *obs.Trace, w http.ResponseWriter, r *http.Request) {
	results, fails := rt.gather(r.Context(), func(ctx context.Context, cl *client.Client) (any, error) {
		return cl.Runs(ctx)
	})
	seen := make(map[string]bool)
	merged := make([]client.RunInfo, 0, 16)
	for _, v := range results {
		rr, ok := v.(*client.RunsResponse)
		if !ok || rr == nil {
			continue
		}
		for _, ri := range rr.Runs {
			if !seen[ri.ID] {
				seen[ri.ID] = true
				merged = append(merged, ri)
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })
	resp := routerRunsResponse{TraceID: tr.ID(), Count: len(merged), Runs: merged}
	if len(fails) > 0 {
		resp.Partial = true
		resp.FailedShards = fails
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardStats is one shard's raw stats document inside the merged
// GET /v1/stats body.
type shardStats struct {
	Shard int             `json:"shard"`
	Addr  string          `json:"addr"`
	Stats json.RawMessage `json:"stats"`
}

// routerStatsResponse is the merged GET /v1/stats body: each shard's
// stats document verbatim, in shard order, plus the partial flag.
type routerStatsResponse struct {
	TraceID      string       `json:"trace_id"`
	ShardsTotal  int          `json:"shards_total"`
	ShardsOK     int          `json:"shards_ok"`
	Shards       []shardStats `json:"shards"`
	Partial      bool         `json:"partial,omitempty"`
	FailedShards []ShardError `json:"failed_shards,omitempty"`
}

func (rt *Router) handleStats(tr *obs.Trace, w http.ResponseWriter, r *http.Request) {
	results, fails := rt.gather(r.Context(), func(ctx context.Context, cl *client.Client) (any, error) {
		return cl.Stats(ctx)
	})
	resp := routerStatsResponse{TraceID: tr.ID(), ShardsTotal: len(rt.shards)}
	for i, v := range results {
		sr, ok := v.(*client.StatsResponse)
		if !ok || sr == nil {
			continue
		}
		resp.ShardsOK++
		resp.Shards = append(resp.Shards, shardStats{Shard: i, Addr: rt.shards[i].replicas[0].base, Stats: sr.Stats})
	}
	if len(fails) > 0 {
		resp.Partial = true
		resp.FailedShards = fails
	}
	writeJSON(w, http.StatusOK, resp)
}

// clusterStatsResponse is the GET /v1/cluster/stats body: the router's
// own metrics snapshot, a merged cluster-wide snapshot (every worker's
// registry summed twice — once unprefixed into the totals, once under a
// shard.<k>. prefix that the Prometheus renderer folds into a shard
// label), and each worker's raw stats document for drill-down.
type clusterStatsResponse struct {
	TraceID      string        `json:"trace_id"`
	ShardsTotal  int           `json:"shards_total"`
	ShardsOK     int           `json:"shards_ok"`
	Router       *obs.Snapshot `json:"router"`
	Cluster      *obs.Snapshot `json:"cluster"`
	Shards       []shardStats  `json:"shards"`
	Partial      bool          `json:"partial,omitempty"`
	FailedShards []ShardError  `json:"failed_shards,omitempty"`
}

// handleClusterStats scatter-gathers every shard's /v1/stats and merges
// the workers' metrics registries into one cluster-wide snapshot:
// counters and gauges sum, histograms merge bucket-wise with recomputed
// quantiles. One scrape of the router answers "how is the cluster doing"
// without visiting N workers.
func (rt *Router) handleClusterStats(tr *obs.Trace, w http.ResponseWriter, r *http.Request) {
	results, fails := rt.gather(r.Context(), func(ctx context.Context, cl *client.Client) (any, error) {
		return cl.Stats(ctx)
	})
	router := rt.reg.Snapshot()
	cluster := &obs.Snapshot{}
	resp := clusterStatsResponse{TraceID: tr.ID(), ShardsTotal: len(rt.shards), Router: &router, Cluster: cluster}
	for i, v := range results {
		sr, ok := v.(*client.StatsResponse)
		if !ok || sr == nil {
			continue
		}
		resp.ShardsOK++
		resp.Shards = append(resp.Shards, shardStats{Shard: i, Addr: rt.shards[i].replicas[0].base, Stats: sr.Stats})
		// The worker's stats document embeds its metrics snapshot under
		// the Go field name (warehouse.Stats has no json tags).
		var doc struct {
			Metrics *obs.Snapshot
		}
		if err := json.Unmarshal(sr.Stats, &doc); err != nil || doc.Metrics == nil {
			continue
		}
		obs.MergeInto(cluster, *doc.Metrics, "")
		obs.MergeInto(cluster, *doc.Metrics, fmt.Sprintf("shard.%d.", i))
	}
	if len(fails) > 0 {
		resp.Partial = true
		resp.FailedShards = fails
	}
	writeJSON(w, http.StatusOK, resp)
}

// replicaState is one replica's row inside a shardState. The last_poll
// fields mirror the health loop's most recent /readyz reading — latency,
// completion time, and error — so a flapping or slow replica is visible
// in /v1/shards between verdict flips.
type replicaState struct {
	Replica      int    `json:"replica"`
	Addr         string `json:"addr"`
	Ready        bool   `json:"ready"`
	State        string `json:"state,omitempty"` // why unavailable; empty when forwardable
	RunsLoaded   int    `json:"runs_loaded"`
	RunsTotal    int    `json:"runs_total"`
	Generation   int64  `json:"generation,omitempty"`
	LastPollNs   int64  `json:"last_poll_ns,omitempty"`
	LastPollUnix int64  `json:"last_poll_unix_ns,omitempty"`
	LastError    string `json:"last_error,omitempty"`
}

// shardState is one row of GET /v1/shards and GET /readyz: the router's
// current view of a shard's replica set.
type shardState struct {
	Shard    int            `json:"shard"`
	Ready    bool           `json:"ready"`
	State    string         `json:"state,omitempty"` // why unavailable; empty when forwardable
	Replicas []replicaState `json:"replicas"`
}

func (rt *Router) shardStates() []shardState {
	now := time.Now()
	out := make([]shardState, len(rt.shards))
	for i, sh := range rt.shards {
		st := shardState{
			Shard: i,
			Ready: sh.available(now),
			State: sh.state(now),
		}
		for j, rep := range sh.replicas {
			pollNs, pollAt, pollErr := rep.lastPoll()
			st.Replicas = append(st.Replicas, replicaState{
				Replica:      j,
				Addr:         rep.base,
				Ready:        rep.available(now),
				State:        rep.state(now),
				RunsLoaded:   int(rep.loaded.Load()),
				RunsTotal:    int(rep.total.Load()),
				Generation:   rep.gen.Load(),
				LastPollNs:   pollNs,
				LastPollUnix: pollAt,
				LastError:    pollErr,
			})
		}
		out[i] = st
	}
	return out
}

// handleShards reports the router's shard table from its current state,
// without touching the workers.
func (rt *Router) handleShards(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"shards":   rt.shardStates(),
		"replicas": rt.cfg.Replicas,
	}
	if rt.cache != nil {
		body["cache_entries"] = rt.cache.Len()
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz polls every replica's /readyz live (also refreshing the
// health state) and answers 200 only when every shard has at least one
// ready replica — the signal a cluster smoke test or orchestrator waits
// on before sending traffic.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := rt.checkAll(r.Context())
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready":  ready,
		"shards": rt.shardStates(),
	})
}

// handleMetrics serves the router registry's Prometheus exposition.
func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, rt.reg.Snapshot(), "zoom")
}
