package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/zoom/client"
)

// TraceIDHeader carries the trace id across the router hop; the router
// adopts a valid inbound id and forwards it to the worker, which adopts
// it in turn, so one id names the request in every log on the path.
const TraceIDHeader = client.TraceIDHeader

// maxBodyBytes bounds forwarded request bodies (same cap as the worker).
const maxBodyBytes = 1 << 20

// Config tunes a Router.
type Config struct {
	// Workers are the shard base URLs in shard order: Workers[k] serves
	// shard k of len(Workers). The order must match the -n used by
	// `zoom snapshot shard`; the ring places runs on indexes, not URLs.
	Workers []string
	// Replicas is the virtual-node count per shard (0 = DefaultReplicas).
	// Must match the value used to split the snapshot.
	Replicas int
	// ForwardTimeout bounds one forwarded /v1/query or /v1/batch request
	// (default 30s).
	ForwardTimeout time.Duration
	// GatherTimeout bounds each per-shard call of a scatter-gather and of
	// a health poll (default 5s).
	GatherTimeout time.Duration
	// Fanout bounds how many shards a scatter-gather or health sweep hits
	// concurrently (default 8).
	Fanout int
	// HealthInterval is the /readyz polling period (default 2s).
	HealthInterval time.Duration
	// BreakerThreshold is the consecutive forwarding failures that open a
	// shard's circuit (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit fails fast before the
	// next attempt is allowed through (default 5s). A successful health
	// poll closes the circuit early.
	BreakerCooldown time.Duration
	// MaxIdleConns bounds the keep-alive pool per worker (default 32).
	MaxIdleConns int
	// Transport overrides the shared HTTP transport (tests, custom pools).
	Transport http.RoundTripper
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Replicas <= 0 {
		out.Replicas = DefaultReplicas
	}
	if out.ForwardTimeout <= 0 {
		out.ForwardTimeout = 30 * time.Second
	}
	if out.GatherTimeout <= 0 {
		out.GatherTimeout = 5 * time.Second
	}
	if out.Fanout <= 0 {
		out.Fanout = 8
	}
	if out.HealthInterval <= 0 {
		out.HealthInterval = 2 * time.Second
	}
	if out.BreakerThreshold <= 0 {
		out.BreakerThreshold = 3
	}
	if out.BreakerCooldown <= 0 {
		out.BreakerCooldown = 5 * time.Second
	}
	if out.MaxIdleConns <= 0 {
		out.MaxIdleConns = 32
	}
	return out
}

// Router is a stateless scale-out front for N zoom workers: it places
// run-addressed requests (/v1/query, /v1/batch) on the consistent-hash
// ring and forwards them verbatim to the owning worker over pooled
// keep-alive connections, and answers the catalog endpoints (/v1/runs,
// /v1/stats) by bounded parallel scatter-gather with a deterministic
// merge. Per-shard circuit breakers and /readyz polling turn a dead
// worker into fast 502s naming the shard instead of per-request connect
// timeouts, while the remaining shards keep answering.
type Router struct {
	cfg    Config
	ring   *Ring
	shards []*shard
	httpc  *http.Client
	reg    *obs.Registry

	requests  *obs.Counter
	requestNs *obs.Histogram
	forwards  *obs.Counter
	fwdErrors *obs.Counter
	fastFails *obs.Counter
	gathers   *obs.Counter
	partials  *obs.Counter
}

// New returns a router over cfg.Workers (at least one required), wired to
// reg (one is created when nil). Start its health loop with HealthLoop or
// let Serve do it.
func New(reg *obs.Registry, cfg Config) (*Router, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: router needs at least one worker")
	}
	cfg = (&cfg).withDefaults()
	ring, err := NewRing(len(cfg.Workers), cfg.Replicas)
	if err != nil {
		return nil, err
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	rt := cfg.Transport
	if rt == nil {
		rt = &http.Transport{
			MaxIdleConns:        cfg.MaxIdleConns * len(cfg.Workers),
			MaxIdleConnsPerHost: cfg.MaxIdleConns,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	r := &Router{
		cfg:       cfg,
		ring:      ring,
		httpc:     &http.Client{Transport: rt},
		reg:       reg,
		requests:  reg.Counter("router.requests"),
		requestNs: reg.Histogram("router.request_ns"),
		forwards:  reg.Counter("router.forwards"),
		fwdErrors: reg.Counter("router.forward_errors"),
		fastFails: reg.Counter("router.fast_fails"),
		gathers:   reg.Counter("router.gathers"),
		partials:  reg.Counter("router.gather_partial"),
	}
	for i, base := range cfg.Workers {
		r.shards = append(r.shards, &shard{
			index: i,
			base:  base,
			cl:    client.New(base, client.Options{Timeout: -1, Transport: rt}),
			up:    reg.Gauge(fmt.Sprintf("router.shard.%d.up", i)),
		})
	}
	return r, nil
}

// Ring returns the router's placement ring.
func (rt *Router) Ring() *Ring { return rt.ring }

// Registry returns the router's metrics registry.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// errorBody matches the worker's uniform JSON error shape, so clients
// decode router-originated errors (fast 502s) exactly like worker errors.
type errorBody struct {
	Error   string `json:"error"`
	TraceID string `json:"trace_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Handler returns the router's route table.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/query", rt.measured(rt.forward("/v1/query")))
	mux.Handle("POST /v1/batch", rt.measured(rt.forward("/v1/batch")))
	mux.Handle("GET /v1/runs", rt.measured(http.HandlerFunc(rt.handleRuns)))
	mux.Handle("GET /v1/stats", rt.measured(http.HandlerFunc(rt.handleStats)))
	mux.HandleFunc("GET /v1/shards", rt.handleShards)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	return mux
}

// measured wraps a handler with the router's request counter/histogram.
func (rt *Router) measured(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h.ServeHTTP(w, r)
		rt.requests.Inc()
		rt.requestNs.Observe(time.Since(start).Nanoseconds())
	})
}

// Serve runs the router on ln until ctx is cancelled, with the health
// loop polling in the background, then shuts down gracefully like the
// worker: the listener closes immediately, in-flight requests get up to
// drain to finish.
func (rt *Router) Serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()
	go rt.HealthLoop(hctx)
	srv := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(sctx)
	if e := <-errc; e != nil && !errors.Is(e, http.ErrServerClosed) && err == nil {
		err = e
	}
	return err
}

// forward returns the handler for a run-addressed endpoint: peek at the
// run id, place it on the ring, and relay the request/response verbatim
// to/from the owning worker. The body passes through untouched in both
// directions — the cluster's answers are byte-identical to the worker's
// (and, by the differential suite, to a single node's).
func (rt *Router) forward(path string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTraceWithID("POST "+path, r.Header.Get(TraceIDHeader))
		defer tr.Finish()
		w.Header().Set(TraceIDHeader, tr.ID())
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: "bad request: " + err.Error(), TraceID: tr.ID()})
			return
		}
		// The router only needs the run id for placement; everything else
		// in the body is the worker's to validate.
		var peek struct {
			Run string `json:"run"`
		}
		if jerr := json.Unmarshal(body, &peek); jerr != nil || peek.Run == "" {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: "bad request: a JSON body with a run id is required", TraceID: tr.ID()})
			return
		}
		idx := rt.ring.Place(peek.Run)
		sh := rt.shards[idx]
		if reason := sh.state(time.Now()); reason != "" {
			rt.fastFails.Inc()
			writeJSON(w, http.StatusBadGateway, errorBody{
				Error:   fmt.Sprintf("shard %d (%s) unavailable: %s", idx, sh.base, reason),
				TraceID: tr.ID(),
			})
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ForwardTimeout)
		defer cancel()
		url := sh.base + path
		if q := r.URL.RawQuery; q != "" {
			url += "?" + q
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			writeJSON(w, http.StatusInternalServerError,
				errorBody{Error: err.Error(), TraceID: tr.ID()})
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(TraceIDHeader, tr.ID())
		resp, err := rt.httpc.Do(req)
		if err != nil {
			sh.fail(int32(rt.cfg.BreakerThreshold), rt.cfg.BreakerCooldown)
			rt.fwdErrors.Inc()
			writeJSON(w, http.StatusBadGateway, errorBody{
				Error:   fmt.Sprintf("shard %d (%s) forward failed: %v", idx, sh.base, err),
				TraceID: tr.ID(),
			})
			return
		}
		defer resp.Body.Close()
		sh.ok()
		rt.forwards.Inc()
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	})
}

// ShardError describes one shard's failure inside a partial scatter-
// gather answer or a fast 502.
type ShardError struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	Error string `json:"error"`
}

// gather calls fn once per shard with bounded concurrency and returns
// the per-shard results (nil where failed) plus the failures sorted by
// shard index. Shards that are breaker-open or health-down are reported
// failed without a request. Only transport-level failures feed the
// breaker; a worker that answers (even with an error status) is alive.
func (rt *Router) gather(ctx context.Context, fn func(context.Context, *shard) (any, error)) ([]any, []ShardError) {
	rt.gathers.Inc()
	results := make([]any, len(rt.shards))
	errs := make([]error, len(rt.shards))
	sem := make(chan struct{}, rt.cfg.Fanout)
	var wg sync.WaitGroup
	for i, sh := range rt.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if reason := sh.state(time.Now()); reason != "" {
				errs[i] = errors.New(reason)
				return
			}
			cctx, cancel := context.WithTimeout(ctx, rt.cfg.GatherTimeout)
			defer cancel()
			v, err := fn(cctx, sh)
			if err != nil {
				var ce *client.Error
				if !errors.As(err, &ce) {
					sh.fail(int32(rt.cfg.BreakerThreshold), rt.cfg.BreakerCooldown)
				}
				errs[i] = err
				return
			}
			sh.ok()
			results[i] = v
		}(i, sh)
	}
	wg.Wait()
	var fails []ShardError
	for i, err := range errs {
		if err != nil {
			fails = append(fails, ShardError{Shard: i, Addr: rt.shards[i].base, Error: err.Error()})
		}
	}
	if len(fails) > 0 {
		rt.partials.Inc()
	}
	return results, fails
}

// routerRunsResponse is the merged GET /v1/runs body. The leading fields
// mirror the worker's runsResponse exactly (trace_id, count, runs) so a
// fully-healthy cluster answer is byte-identical to a single node
// holding the same runs; the partial fields only appear when shards
// failed — degraded answers are flagged, never silently truncated.
type routerRunsResponse struct {
	TraceID      string           `json:"trace_id"`
	Count        int              `json:"count"`
	Runs         []client.RunInfo `json:"runs"`
	Partial      bool             `json:"partial,omitempty"`
	FailedShards []ShardError     `json:"failed_shards,omitempty"`
}

// handleRuns scatter-gathers the run catalog and merges it
// deterministically: dedup by run id (first shard wins — shards are
// disjoint under a correct split, so this only matters for overlapping
// hand-built deployments), then sort by id.
func (rt *Router) handleRuns(w http.ResponseWriter, r *http.Request) {
	tr := obs.NewTraceWithID("GET /v1/runs", r.Header.Get(TraceIDHeader))
	defer tr.Finish()
	w.Header().Set(TraceIDHeader, tr.ID())
	results, fails := rt.gather(r.Context(), func(ctx context.Context, sh *shard) (any, error) {
		return sh.cl.Runs(ctx)
	})
	seen := make(map[string]bool)
	merged := make([]client.RunInfo, 0, 16)
	for _, v := range results {
		rr, ok := v.(*client.RunsResponse)
		if !ok || rr == nil {
			continue
		}
		for _, ri := range rr.Runs {
			if !seen[ri.ID] {
				seen[ri.ID] = true
				merged = append(merged, ri)
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ID < merged[j].ID })
	resp := routerRunsResponse{TraceID: tr.ID(), Count: len(merged), Runs: merged}
	if len(fails) > 0 {
		resp.Partial = true
		resp.FailedShards = fails
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardStats is one shard's raw stats document inside the merged
// GET /v1/stats body.
type shardStats struct {
	Shard int             `json:"shard"`
	Addr  string          `json:"addr"`
	Stats json.RawMessage `json:"stats"`
}

// routerStatsResponse is the merged GET /v1/stats body: each shard's
// stats document verbatim, in shard order, plus the partial flag.
type routerStatsResponse struct {
	TraceID      string       `json:"trace_id"`
	ShardsTotal  int          `json:"shards_total"`
	ShardsOK     int          `json:"shards_ok"`
	Shards       []shardStats `json:"shards"`
	Partial      bool         `json:"partial,omitempty"`
	FailedShards []ShardError `json:"failed_shards,omitempty"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	tr := obs.NewTraceWithID("GET /v1/stats", r.Header.Get(TraceIDHeader))
	defer tr.Finish()
	w.Header().Set(TraceIDHeader, tr.ID())
	results, fails := rt.gather(r.Context(), func(ctx context.Context, sh *shard) (any, error) {
		return sh.cl.Stats(ctx)
	})
	resp := routerStatsResponse{TraceID: tr.ID(), ShardsTotal: len(rt.shards)}
	for i, v := range results {
		sr, ok := v.(*client.StatsResponse)
		if !ok || sr == nil {
			continue
		}
		resp.ShardsOK++
		resp.Shards = append(resp.Shards, shardStats{Shard: i, Addr: rt.shards[i].base, Stats: sr.Stats})
	}
	if len(fails) > 0 {
		resp.Partial = true
		resp.FailedShards = fails
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardState is one row of GET /v1/shards and GET /readyz: the router's
// current view of a worker.
type shardState struct {
	Shard      int    `json:"shard"`
	Addr       string `json:"addr"`
	Ready      bool   `json:"ready"`
	State      string `json:"state,omitempty"` // why unavailable; empty when forwardable
	RunsLoaded int    `json:"runs_loaded"`
	RunsTotal  int    `json:"runs_total"`
}

func (rt *Router) shardStates() []shardState {
	now := time.Now()
	out := make([]shardState, len(rt.shards))
	for i, sh := range rt.shards {
		out[i] = shardState{
			Shard:      i,
			Addr:       sh.base,
			Ready:      sh.available(now),
			State:      sh.state(now),
			RunsLoaded: int(sh.loaded.Load()),
			RunsTotal:  int(sh.total.Load()),
		}
	}
	return out
}

// handleShards reports the router's shard table from its current state,
// without touching the workers.
func (rt *Router) handleShards(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":   rt.shardStates(),
		"replicas": rt.cfg.Replicas,
	})
}

// handleReadyz polls every worker's /readyz live (also refreshing the
// health state) and answers 200 only when all shards are ready — the
// signal a cluster smoke test or orchestrator waits on before sending
// traffic.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := rt.checkAll(r.Context())
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready":  ready,
		"shards": rt.shardStates(),
	})
}

// handleMetrics serves the router registry's Prometheus exposition.
func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, rt.reg.Snapshot(), "zoom")
}
