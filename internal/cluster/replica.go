package cluster

import (
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/zoom/client"
)

// replica is the router's view of one worker process serving a shard: its
// address, a typed client over the shared keep-alive pool, the last
// health verdict, and a circuit breaker over forwarding failures. A shard
// is served by one or more replicas holding identical shard snapshots;
// the breaker and health state are per-replica so one dead process never
// blacks out a shard that has a live sibling.
type replica struct {
	shard int // shard index on the ring
	index int // position within the shard's replica set (0 = preferred)
	base  string
	cl    *client.Client

	// polled flips once the first health check completes; until then the
	// router forwards optimistically (workers typically come up behind
	// the router, and the first real request is as good a probe as any).
	polled atomic.Bool
	// ready is the last /readyz verdict (true = 200 with ready:true).
	ready atomic.Bool
	// loaded/total mirror the worker's reported load progress.
	loaded atomic.Int64
	total  atomic.Int64
	// gen is the last warehouse generation the worker reported on
	// /readyz (0 = never observed, or a pre-generation worker). The
	// value is opaque — only a change matters, and a change bumps the
	// shard's cache epoch.
	gen atomic.Int64

	// Circuit breaker: consecutive forwarding failures open the circuit
	// until openUntil (unix nanos); while open, the router prefers the
	// shard's other replicas and only fails fast when every replica is
	// out. After the cooldown the breaker is half-open: the next forward
	// is admitted, and its outcome closes or re-opens the circuit.
	fails     atomic.Int32
	openUntil atomic.Int64

	// Last health-poll reading: duration, completion time, and error
	// string (nil pointer when the poll succeeded). A flapping replica is
	// visible in /v1/shards between state transitions, not only when the
	// verdict flips.
	pollDurNs  atomic.Int64
	pollAtUnix atomic.Int64 // unix nanos of the last completed poll
	pollErr    atomic.Pointer[string]

	up       *obs.Gauge   // router.shard.<i>.replica.<j>.up: 1 when forwardable
	breaker  *obs.Gauge   // ...breaker_open: 1 while the circuit is open
	pollNs   *obs.Gauge   // ...poll_ns: latency of the last health poll
	attempts *obs.Counter // ...attempts: forward attempts sent here
	errors   *obs.Counter // ...errors: transport-failed attempts
}

// recordPoll stores one health-poll outcome.
func (r *replica) recordPoll(d time.Duration, err error) {
	r.pollDurNs.Store(d.Nanoseconds())
	r.pollAtUnix.Store(time.Now().UnixNano())
	if err != nil {
		msg := err.Error()
		r.pollErr.Store(&msg)
	} else {
		r.pollErr.Store(nil)
	}
	r.pollNs.Set(d.Nanoseconds())
}

// lastPoll returns the last poll's latency, completion time, and error
// string ("" when it succeeded); zero values before the first poll.
func (r *replica) lastPoll() (durNs, atUnixNs int64, errMsg string) {
	durNs = r.pollDurNs.Load()
	atUnixNs = r.pollAtUnix.Load()
	if p := r.pollErr.Load(); p != nil {
		errMsg = *p
	}
	return durNs, atUnixNs, errMsg
}

// available reports whether the router should attempt a forward: the
// breaker is closed (or half-open past its cooldown) and the worker
// wasn't down at the last poll.
func (r *replica) available(now time.Time) bool {
	if now.UnixNano() < r.openUntil.Load() {
		return false
	}
	if r.polled.Load() && !r.ready.Load() {
		return false
	}
	return true
}

// state describes why a replica is unavailable ("" when it is available).
func (r *replica) state(now time.Time) string {
	if now.UnixNano() < r.openUntil.Load() {
		return "circuit open"
	}
	if r.polled.Load() && !r.ready.Load() {
		return "worker not ready"
	}
	return ""
}

// fail records one forwarding failure, opening the breaker at the
// configured threshold.
func (r *replica) fail(threshold int32, cooldown time.Duration) {
	if r.fails.Add(1) >= threshold {
		r.openUntil.Store(time.Now().Add(cooldown).UnixNano())
		r.breaker.Set(1)
	}
	r.setUp(false)
}

// ok resets the breaker after a successful forward.
func (r *replica) ok() {
	r.fails.Store(0)
	r.openUntil.Store(0)
	r.breaker.Set(0)
	r.setUp(true)
}

// setHealth records a health-poll verdict. A healthy verdict closes the
// breaker — this is the "join" path: a worker that was down (or is new)
// starts taking traffic again within one poll interval of answering
// /readyz.
func (r *replica) setHealth(ready bool, loaded, total int) {
	r.polled.Store(true)
	r.ready.Store(ready)
	r.loaded.Store(int64(loaded))
	r.total.Store(int64(total))
	if ready {
		r.fails.Store(0)
		r.openUntil.Store(0)
		r.breaker.Set(0)
	}
	r.setUp(ready)
}

// observeGeneration records the worker generation a health poll saw and
// reports whether it changed — i.e. the worker reloaded its warehouse or
// was replaced by a process serving different bytes — which must
// invalidate the router's cached responses for the shard. The first
// observation is not a change: the cache was empty before the first poll
// could have stored anything against a different generation.
func (r *replica) observeGeneration(g int64) bool {
	if g == 0 {
		return false
	}
	old := r.gen.Swap(g)
	return old != 0 && old != g
}

func (r *replica) setUp(up bool) {
	if up {
		r.up.Set(1)
	} else {
		r.up.Set(0)
	}
}

// shard is one ring position: a set of replicas holding identical copies
// of the shard's snapshot, in preference order (index 0 first).
type shard struct {
	index    int
	replicas []*replica

	// epoch tags response-cache entries for this shard; it bumps when a
	// health poll observes any replica's warehouse generation change, so
	// entries cached against the old data become unservable.
	epoch atomic.Uint64

	// Per-shard series (router.shard.<k>.*), folded into shard="<k>"
	// labels by the Prometheus renderer, next to the router's unlabeled
	// totals.
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	failovers   *obs.Counter
	hedges      *obs.Counter
	hedgeWins   *obs.Counter
}

// candidates returns the shard's available replicas in preference order.
func (s *shard) candidates(now time.Time) []*replica {
	out := make([]*replica, 0, len(s.replicas))
	for _, r := range s.replicas {
		if r.available(now) {
			out = append(out, r)
		}
	}
	return out
}

// available reports whether any replica can take a forward.
func (s *shard) available(now time.Time) bool {
	for _, r := range s.replicas {
		if r.available(now) {
			return true
		}
	}
	return false
}

// state describes why the shard is unavailable ("" when at least one
// replica is available), naming each replica's reason.
func (s *shard) state(now time.Time) string {
	var parts []string
	for _, r := range s.replicas {
		reason := r.state(now)
		if reason == "" {
			return ""
		}
		parts = append(parts, r.base+": "+reason)
	}
	return strings.Join(parts, "; ")
}

// ParseWorkers parses the -workers flag into replica groups: semicolons
// separate shards and commas separate replicas within a shard, so
// "a,b;c,d" is shard 0 with replicas a,b and shard 1 with replicas c,d.
// Without any semicolon the single-replica syntax from PR 8 still means
// what it meant: commas separate shards ("a,b" is two shards of one
// replica each). A trailing semicolon forces grouped parsing, so "a,b;"
// is one shard with two replicas.
func ParseWorkers(s string) [][]string {
	if !strings.Contains(s, ";") {
		var out [][]string
		for _, w := range splitTrim(s, ",") {
			out = append(out, []string{w})
		}
		return out
	}
	var out [][]string
	for _, group := range strings.Split(s, ";") {
		reps := splitTrim(group, ",")
		if len(reps) > 0 {
			out = append(out, reps)
		}
	}
	return out
}

func splitTrim(s, sep string) []string {
	var out []string
	for _, p := range strings.Split(s, sep) {
		if t := strings.TrimSpace(p); t != "" {
			out = append(out, t)
		}
	}
	return out
}
