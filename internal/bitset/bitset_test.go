package bitset

import (
	"math/rand"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Words() != 3 {
		t.Fatalf("words = %d, want 3", s.Words())
	}
	for _, i := range []int32{0, 1, 63, 64, 127, 129} {
		if s.Has(i) {
			t.Fatalf("empty set has %d", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("set misses %d after Add", i)
		}
	}
	if s.Count() != 6 {
		t.Fatalf("count = %d, want 6", s.Count())
	}
	if s.Has(200) || s.Has(1 << 20) {
		t.Fatal("out-of-capacity ids must read as absent")
	}
	var got []int32
	s.Each(func(i int32) { got = append(got, i) })
	want := []int32{0, 1, 63, 64, 127, 129}
	if len(got) != len(want) {
		t.Fatalf("Each visited %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Each order %v, want ascending %v", got, want)
		}
	}
	if m := s.Members(nil); len(m) != 6 || m[5] != 129 {
		t.Fatalf("Members = %v", m)
	}
	c := s.Clone()
	c.Reset()
	if c.Count() != 0 || s.Count() != 6 {
		t.Fatal("Reset on clone must not affect original")
	}
}

func TestAndOr(t *testing.T) {
	a, b := New(200), New(200)
	for i := int32(0); i < 200; i += 3 {
		a.Add(i)
	}
	for i := int32(0); i < 200; i += 5 {
		b.Add(i)
	}
	u := a.Clone()
	u.Or(b)
	x := a.Clone()
	x.And(b)
	for i := int32(0); i < 200; i++ {
		inA, inB := i%3 == 0, i%5 == 0
		if u.Has(i) != (inA || inB) {
			t.Fatalf("union wrong at %d", i)
		}
		if x.Has(i) != (inA && inB) {
			t.Fatalf("intersection wrong at %d", i)
		}
	}
	// And with a shorter set clears the excess words.
	short := New(64)
	short.Add(3)
	long := New(500)
	long.Add(3)
	long.Add(400)
	long.And(short)
	if !long.Has(3) || long.Has(400) || long.Count() != 1 {
		t.Fatal("And with shorter set must clear excess words")
	}
}

func TestAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 4096
	s := New(n)
	ref := make(map[int32]bool)
	for i := 0; i < 2000; i++ {
		v := int32(rng.Intn(n))
		s.Add(v)
		ref[v] = true
	}
	if s.Count() != len(ref) {
		t.Fatalf("count = %d, want %d", s.Count(), len(ref))
	}
	for i := int32(0); i < n; i++ {
		if s.Has(i) != ref[i] {
			t.Fatalf("membership of %d diverges", i)
		}
	}
}
