// Package bitset provides the dense bit sets the compact run index is
// built on. A Set over n elements is ⌈n/64⌉ machine words; membership is a
// shift and a mask, union/intersection are word-wise loops, and iterating
// the members of a sparse set costs one trailing-zero count per member
// plus one word test per empty word — the representation that lets the
// warehouse hold a deep-provenance closure in a few cache lines instead of
// a hash map of strings.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity zero; use New to size one. Sets are not safe for concurrent
// mutation, but any number of readers may share a set that is no longer
// being written — the warehouse freezes closure sets after construction.
type Set []uint64

// New returns an empty set able to hold members in [0, n).
func New(n int) Set {
	return make(Set, (n+63)/64)
}

// Add inserts i. It panics (index out of range) when i exceeds capacity,
// matching slice semantics — the index layer only adds interned ids.
func (s Set) Add(i int32) {
	s[uint32(i)>>6] |= 1 << (uint32(i) & 63)
}

// Has reports whether i is a member. Out-of-capacity ids are absent.
func (s Set) Has(i int32) bool {
	w := uint32(i) >> 6
	return int(w) < len(s) && s[w]&(1<<(uint32(i)&63)) != 0
}

// Count returns the number of members (population count).
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Words returns the number of backing machine words.
func (s Set) Words() int { return len(s) }

// Clone returns an independent copy.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Reset clears every member, keeping capacity.
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// Each calls fn for every member in ascending order.
func (s Set) Each(fn func(i int32)) {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(int32(wi*64 + b))
			w &= w - 1
		}
	}
}

// Members appends every member to dst in ascending order and returns it.
func (s Set) Members(dst []int32) []int32 {
	s.Each(func(i int32) { dst = append(dst, i) })
	return dst
}

// And intersects s with o in place (s ∩= o). Capacities may differ; excess
// words of s are cleared.
func (s Set) And(o Set) {
	for i := range s {
		if i < len(o) {
			s[i] &= o[i]
		} else {
			s[i] = 0
		}
	}
}

// Or unions o into s (s ∪= o). Members of o beyond s's capacity panic,
// matching Add.
func (s Set) Or(o Set) {
	for i, w := range o {
		if w != 0 {
			s[i] |= w
		}
	}
}
