package bench

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// TestConcurrentServingShape checks the machine-independent claims of the
// C1 experiment: every configuration answers the same batch, closure
// computes equal the number of distinct (run, data) keys at every worker
// count (the pool never duplicates work the cache can share), and the
// thundering-herd row collapses 32 identical cold queries into exactly one
// compute with 31 shared waits.
func TestConcurrentServingShape(t *testing.T) {
	o := Default()
	o.RunsPerKind = 2
	o.Trials = 1
	rep := ExpConcurrent(o)
	if rep.ID != "C1" || len(rep.Rows) != 5 {
		t.Fatalf("unexpected report shape: id=%s rows=%d", rep.ID, len(rep.Rows))
	}
	seqComputes, ok := rep.Cell("sequential", "closure computes")
	if !ok {
		t.Fatal("no sequential row")
	}
	for _, cfg := range []string{"pool, 1 workers", "pool, 4 workers", "pool, 16 workers"} {
		c, ok := rep.Cell(cfg, "closure computes")
		if !ok {
			t.Fatalf("missing row %q", cfg)
		}
		if c != seqComputes {
			t.Fatalf("%s computed %s closures, sequential computed %s — pool duplicated work",
				cfg, c, seqComputes)
		}
	}
	herd, ok := rep.Cell("herd, 32x same query", "closure computes")
	if !ok {
		t.Fatal("no herd row")
	}
	// The other 31 queries are served from the in-flight computation (shared
	// waits) or, if the leader already finished, from the cache (hits); the
	// split is timing-dependent but the single compute is not.
	var computes, hits, shared int
	if _, err := fmt.Sscanf(herd, "%d (%d hits, %d shared waits)", &computes, &hits, &shared); err != nil {
		t.Fatalf("unparseable herd cell %q: %v", herd, err)
	}
	if computes != 1 || hits+shared != 31 {
		t.Fatalf("herd row %q: want exactly 1 compute and 31 hits+shared waits", herd)
	}
}

// TestConcurrentServingSpeedup asserts the >= 2x throughput gain at 4
// workers that motivates the pool. Parallel speedup needs parallel
// hardware, so the assertion only runs on hosts with at least 4 CPUs;
// elsewhere the shape test above still pins the correctness claims.
func TestConcurrentServingSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup assertion, have %d", runtime.NumCPU())
	}
	o := Default()
	o.RunsPerKind = 3
	o.Trials = 3
	rep := ExpConcurrent(o)
	cell, ok := rep.Cell("pool, 4 workers", "speedup")
	if !ok {
		t.Fatal("no 4-worker row")
	}
	speedup, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("unparseable speedup %q: %v", cell, err)
	}
	if speedup < 2.0 {
		t.Fatalf("4-worker speedup %.2fx < 2x", speedup)
	}
}
