package bench

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/gen"
	"repro/internal/warehouse"
)

// ExpMmap (L2) measures what the v3 snapshot buys at serve time: the same
// multi-run warehouse is saved as v2 binary frames and as a v3 mmap-ready
// image, and the two paths to a queryable system are timed — the v2 full
// load (decode + reconstruct + validate + index every run) against the v3
// OpenV3 (map the file, parse the catalog, defer every run). Because the
// open is O(catalog), its cost is a property of the run *count*, not the
// run *sizes* — that is the headline "ready speedup" column. The deferred
// work does not vanish: "touch ms" is the first-touch materialization of
// one run (checksum + arena adoption + validation), paid per run on first
// query. The cold-query columns then compare an identical cache-cold deep
// provenance query over the materialized run in both warehouses; parity
// (v3/v2) pins that queries over mmap-backed, unsafe.Slice-aliased arrays
// cost the same as over heap-built ones.
func ExpMmap(o Options) *Report {
	rep := &Report{
		ID:    "L2",
		Title: "Snapshot serving: v2 full load vs v3 mmap open, time-to-ready and query parity",
		Headers: []string{"run kind", "runs", "steps", "v2 KB", "v3 KB",
			"v2 load ms", "v3 open ms", "ready speedup", "touch ms",
			"v2 cold ms", "v3 cold ms", "parity"},
	}
	dir, err := os.MkdirTemp("", "zoom-l2-*")
	if err != nil {
		rep.Notes = append(rep.Notes, "skipped: "+err.Error())
		return rep
	}
	defer os.RemoveAll(dir)

	g := gen.NewGenerator(o.Seed + 17)
	for _, rc := range runClasses(o) {
		s := g.Workflow(gen.Class4(), "l2-"+rc.Name)
		w := warehouse.New(0)
		if err := w.RegisterSpec(s); err != nil {
			continue
		}
		nRuns := o.RunsPerKind
		if nRuns < 1 {
			nRuns = 1
		}
		var target string
		ok := true
		for i := 0; i < nRuns; i++ {
			r, _, err := g.Run(s, rc, fmt.Sprintf("l2-%s-r%d", rc.Name, i))
			if err != nil || w.LoadRun(r) != nil {
				ok = false
				break
			}
			if finals := r.FinalOutputs(); i == nRuns-1 && len(finals) > 0 {
				target = finals[len(finals)-1]
			}
		}
		if !ok || target == "" {
			continue
		}
		st := w.Stats()
		targetRun := w.RunIDs()[len(w.RunIDs())-1]

		var v2 bytes.Buffer
		if w.SaveBinary(&v2) != nil {
			continue
		}
		path := filepath.Join(dir, rc.Name+".v3")
		f, err := os.Create(path)
		if err != nil {
			continue
		}
		err = w.SaveV3(f)
		if cerr := f.Close(); err != nil || cerr != nil {
			continue
		}
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}

		reps := 10
		if st.Steps > 3000 {
			reps = 3
		}
		v2load, _, err := measureLoad(v2.Bytes(), 0, reps)
		if err != nil {
			continue
		}
		v3open, err := measureOpen(path, reps*4)
		if err != nil {
			continue
		}
		touch, v3cold, err := measureMmapQuery(path, targetRun, target, reps)
		if err != nil {
			continue
		}
		v2cold, err := measureHeapQuery(v2.Bytes(), targetRun, target, reps)
		if err != nil {
			continue
		}
		speedup, parity := "-", "-"
		if v3open > 0 {
			speedup = fmt.Sprintf("%.0fx", v2load/v3open)
		}
		if v2cold > 0 {
			parity = fmt.Sprintf("%.2fx", v3cold/v2cold)
		}
		rep.Append(rc.Name, nRuns, st.Steps,
			fmt.Sprintf("%.1f", float64(v2.Len())/1024),
			fmt.Sprintf("%.1f", float64(fi.Size())/1024),
			v2load, v3open, speedup, touch, v2cold, v3cold, parity)
	}
	rep.Notes = append(rep.Notes,
		"ready speedup = v2 full load / v3 open: the open parses the section directory",
		"and run catalog only, so it stays flat as runs grow; touch ms is the lazy",
		"per-run materialization the first query pays; parity = v3 cold / v2 cold for",
		"one cache-cold deep query over the already-touched run — mmap-aliased arrays",
		"must query at heap speed.")
	return rep
}

// measureOpen times warehouse.OpenV3 (map + catalog parse, no run
// materialization), averaged over reps, in milliseconds.
func measureOpen(path string, reps int) (avgMS float64, err error) {
	w, err := warehouse.OpenV3(path, 0, warehouse.LoadOptions{})
	if err != nil {
		return 0, err
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		w, err := warehouse.OpenV3(path, 0, warehouse.LoadOptions{})
		if err != nil {
			return 0, err
		}
		if err := w.Close(); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(start).Microseconds()) / float64(reps) / 1000, nil
}

// measureMmapQuery opens a v3 snapshot fresh for each rep and times, per
// rep, the first touch of one run (lazy materialization) and then one
// cache-cold deep provenance query over it.
func measureMmapQuery(path, runID, d string, reps int) (touchMS, coldMS float64, err error) {
	var touch, cold time.Duration
	for i := 0; i < reps; i++ {
		w, err := warehouse.OpenV3(path, 0, warehouse.LoadOptions{})
		if err != nil {
			return 0, 0, err
		}
		start := time.Now()
		if _, err := w.Run(runID); err != nil {
			w.Close()
			return 0, 0, err
		}
		touch += time.Since(start)
		start = time.Now()
		if _, err := w.DeepProvenance(runID, d); err != nil {
			w.Close()
			return 0, 0, err
		}
		cold += time.Since(start)
		if err := w.Close(); err != nil {
			return 0, 0, err
		}
	}
	return float64(touch.Microseconds()) / float64(reps) / 1000,
		float64(cold.Microseconds()) / float64(reps) / 1000, nil
}

// measureHeapQuery loads a v2 snapshot fresh for each rep and times one
// cache-cold deep provenance query — the baseline the mmap-backed query
// must match.
func measureHeapQuery(image []byte, runID, d string, reps int) (coldMS float64, err error) {
	var cold time.Duration
	for i := 0; i < reps; i++ {
		w, err := warehouse.LoadWith(bytes.NewReader(image), 0, warehouse.LoadOptions{})
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := w.DeepProvenance(runID, d); err != nil {
			return 0, err
		}
		cold += time.Since(start)
	}
	return float64(cold.Microseconds()) / float64(reps) / 1000, nil
}
