package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/provenance"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

// ExpCompact (P1) measures the compact-index query path against the legacy
// string/map path on the Table II run classes: the same run is loaded into
// two warehouses — one with the interned CSR index (the default), one with
// SetCompactIndex(false) — and the cold deep-provenance query of the final
// output (closure compute + projection, cache reset every repetition) is
// timed and its heap allocations counted on both. The equivalence tests in
// internal/provenance guarantee the two paths return identical results, so
// the ratio columns are pure representation cost.
func ExpCompact(o Options) *Report {
	rep := &Report{
		ID:    "P1",
		Title: "Compact run index vs legacy string path (cold closure + projection)",
		Headers: []string{"run kind", "steps", "data", "legacy ms", "indexed ms", "speedup",
			"legacy allocs", "indexed allocs", "alloc ratio"},
	}
	g := gen.NewGenerator(o.Seed + 11)
	for _, rc := range runClasses(o) {
		// Class 4 (loops) drives the largest runs — the regime where the
		// paper's response times reach seconds.
		s := g.Workflow(gen.Class4(), "p1-"+rc.Name)
		r, _, err := g.Run(s, rc, "p1-"+rc.Name+"-r")
		if err != nil {
			continue
		}
		reps := 20
		if r.NumSteps() > 1000 {
			reps = 5
		}
		legacyMS, legacyAllocs, err := measureColdQuery(s, r, false, reps)
		if err != nil {
			continue
		}
		indexedMS, indexedAllocs, err := measureColdQuery(s, r, true, reps)
		if err != nil {
			continue
		}
		speedup, allocRatio := "-", "-"
		if indexedMS > 0 {
			speedup = fmt.Sprintf("%.2fx", legacyMS/indexedMS)
		}
		if indexedAllocs > 0 {
			allocRatio = fmt.Sprintf("%.2fx", float64(legacyAllocs)/float64(indexedAllocs))
		}
		rep.Append(rc.Name, r.NumSteps(), r.NumData(),
			legacyMS, indexedMS, speedup, legacyAllocs, indexedAllocs, allocRatio)
	}
	rep.Notes = append(rep.Notes,
		"same run, two warehouses; indexed = interned int32 CSR + bitset BFS + integer",
		"projection, legacy = string BFS + map projection; every rep resets the closure",
		"cache so each query pays the full compute-UAdmin-then-project cost.")
	return rep
}

// measureColdQuery loads r into a fresh warehouse (indexed or legacy) and
// returns the average wall-clock milliseconds and heap allocations of a
// cold deep-provenance query of the last final output under the UBio view.
func measureColdQuery(s *spec.Spec, r *run.Run, indexed bool, reps int) (avgMS float64, allocsPerOp uint64, err error) {
	w := warehouse.New(0)
	w.SetCompactIndex(indexed)
	if err := w.RegisterSpec(s); err != nil {
		return 0, 0, err
	}
	if err := w.LoadRun(r); err != nil {
		return 0, 0, err
	}
	e := provenance.NewEngine(w)
	bio, err := core.BuildRelevant(s, gen.UBioRelevant(s))
	if err != nil {
		return 0, 0, err
	}
	finals := r.FinalOutputs()
	if len(finals) == 0 {
		return 0, 0, fmt.Errorf("bench: run %q has no final outputs", r.ID())
	}
	root := finals[len(finals)-1]
	// Warm the mapping and projector so the measurement isolates the
	// per-query path (closure + projection), not one-time setup.
	if _, err := e.DeepProvenance(r.ID(), bio, root); err != nil {
		return 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		w.ResetCache()
		if _, err := e.DeepProvenance(r.ID(), bio, root); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	avgMS = float64(elapsed.Microseconds()) / float64(reps) / 1000
	allocsPerOp = (after.Mallocs - before.Mallocs) / uint64(reps)
	return avgMS, allocsPerOp, nil
}
