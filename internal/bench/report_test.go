package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestReportJSONRoundTrip pins the schema stamp: fresh reports serialize
// with the current version, every field survives a round trip, and a
// report that already carries an explicit version keeps it.
func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		ID:      "P2",
		Title:   "labels vs bfs",
		Headers: []string{"run kind", "speedup"},
		Notes:   []string{"a note"},
	}
	rep.Append("large", 2.5)
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"Schema":2`) {
		t.Fatalf("fresh report not stamped with schema %d: %s", ReportSchema, raw)
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema {
		t.Fatalf("Schema = %d after round trip, want %d", back.Schema, ReportSchema)
	}
	back.Schema = 0 // the stamp is the only field the encoder injects
	rt, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if string(rt) != string(raw) {
		t.Fatalf("round trip changed the report:\n  %s\nvs\n  %s", rt, raw)
	}
}

// TestReportJSONLegacy reads a version-1 artifact — the shape of
// BENCH_L1.json and BENCH_P1.json as originally committed, no Schema field
// — and checks it decodes with the defaulted version and re-encodes with
// the version preserved (a rewriter must not silently upgrade history).
func TestReportJSONLegacy(t *testing.T) {
	legacy := `{
  "ID": "L1",
  "Title": "warehouse load",
  "Headers": ["kind", "ms"],
  "Rows": [["small", "1.00"]],
  "Notes": null
}`
	var rep Report
	if err := json.Unmarshal([]byte(legacy), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != 1 {
		t.Fatalf("legacy Schema = %d, want 1", rep.Schema)
	}
	if rep.ID != "L1" || len(rep.Rows) != 1 || rep.Rows[0][1] != "1.00" {
		t.Fatalf("legacy decode mangled fields: %+v", rep)
	}
	re, err := json.Marshal(&rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(re), `"Schema":1`) {
		t.Fatalf("re-encoding a legacy report lost its version: %s", re)
	}
	// A slice of reports (the zoombench -json payload) round-trips too.
	many := []*Report{&rep}
	raw, err := json.MarshalIndent(many, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var backs []*Report
	if err := json.Unmarshal(raw, &backs); err != nil {
		t.Fatal(err)
	}
	if len(backs) != 1 || backs[0].Schema != 1 || backs[0].Title != rep.Title {
		t.Fatalf("slice round trip broke: %+v", backs[0])
	}
}
