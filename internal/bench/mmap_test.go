package bench

import "testing"

// TestMmapShape pins the L2 experiment's shape: one row per Table II run
// class, the v3 open clearly faster than the v2 full load on the larger
// classes (the committed BENCH_L2.json asserts the full >=20x headline at
// bench scale; the test floor is looser so CI noise cannot flake it), and
// the cold query over the mmap-backed run within shouting distance of the
// heap-backed one.
func TestMmapShape(t *testing.T) {
	rep := ExpMmap(testOptions())
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d\n%s", len(rep.Rows), rep)
	}
	for _, kind := range []string{"medium", "large"} {
		v2load := cellF(t, rep, kind, "v2 load ms")
		v3open := cellF(t, rep, kind, "v3 open ms")
		if v3open*3 >= v2load {
			t.Fatalf("%s: v3 open (%v ms) not clearly faster than v2 load (%v ms)\n%s",
				kind, v3open, v2load, rep)
		}
	}
	for _, kind := range []string{"small", "medium", "large"} {
		v2cold := cellF(t, rep, kind, "v2 cold ms")
		v3cold := cellF(t, rep, kind, "v3 cold ms")
		// Sub-millisecond timings are too noisy for a ratio bound.
		if v2cold >= 0.05 && v3cold > v2cold*3 {
			t.Fatalf("%s: mmap cold query (%v ms) far off heap cold query (%v ms)\n%s",
				kind, v3cold, v2cold, rep)
		}
	}
}
