package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/server"
	"repro/internal/warehouse"
	"repro/zoom/client"
)

// replicaStraggleEvery marks every Nth query request on the preferred
// replica as a straggler (held for replicaStraggle before service) in the
// S2 tail-latency phase — frequent enough that the p99 lands inside the
// straggler population at smoke scale.
const replicaStraggleEvery = 8

// replicaStraggle is the added straggler delay: several service floors,
// so an unhedged straggler dominates the tail and a hedge placed at
// replicaHedgeDelay beats it decisively.
const replicaStraggle = 6 * shardServiceFloor

// replicaHedgeDelay is the hedge trigger for the hedged row: ~2 service
// floors, past the healthy p99 at the light straggler-phase load but far
// below the straggler delay.
const replicaHedgeDelay = 2 * shardServiceFloor

// replicaKillClients/replicaTailClients size the load for the two S2
// phases: the kill phase wants queue pressure (errors surface fast), the
// tail phase wants light load so queueing stays under the hedge delay
// and the p99 isolates stragglers, not saturation.
const (
	replicaKillClients = 8
	replicaTailClients = 2
)

// ExpReplica (S2) measures what replica sets buy over PR 8's
// single-worker shards. Phase one is availability: a 2-shard cluster
// loses one worker halfway through the workload — with one replica per
// shard every query for the dead shard fails fast (the S1 failure mode),
// with two replicas the router fails over and the error count stays
// zero. Phase two is tail latency: the preferred replica delays every
// Nth request as an emulated straggler, and the same workload runs
// unhedged vs hedged — the hedged run answers stragglers from the
// sibling replica and pulls the p99 back toward the service floor.
func ExpReplica(o Options) *Report {
	rep := &Report{
		ID:    "S2",
		Title: "Replica failover and hedging: availability under worker loss, p99 under stragglers",
		Headers: []string{"config", "queries", "clients",
			"throughput q/s", "errors", "p50 ms", "p99 ms", "hedge wins"},
	}

	// Corpus: large-class runs over 2 shards, as in S1 but smaller — S2
	// compares failure modes at fixed scale, not scale-out curves.
	g := gen.NewGenerator(o.Seed + 29)
	classes := gen.Classes()
	sp := g.Workflow(classes[len(classes)-1], "s2-wf")
	large := runClasses(o)[2]
	nRuns := 4 * o.RunsPerKind
	targetsPerRun := o.Trials + 2

	full := warehouse.New(0)
	if err := full.RegisterSpec(sp); err != nil {
		panic(err)
	}
	var queries []shardQuery
	for i := 0; i < nRuns; i++ {
		r, _, err := g.Run(sp, large, fmt.Sprintf("s2-run-%02d", i))
		if err != nil {
			panic(err)
		}
		if err := full.LoadRun(r); err != nil {
			panic(err)
		}
		all := r.AllData()
		step := len(all) / targetsPerRun
		if step < 1 {
			step = 1
		}
		for j, taken := 0, 0; j < len(all) && taken < targetsPerRun; j, taken = j+step, taken+1 {
			queries = append(queries, shardQuery{run: r.ID(), data: all[j]})
		}
	}
	rand.New(rand.NewSource(o.Seed+29)).Shuffle(len(queries), func(i, j int) {
		queries[i], queries[j] = queries[j], queries[i]
	})

	const shards = 2
	ring, err := cluster.NewRing(shards, 0)
	if err != nil {
		panic(err)
	}

	// newReplica boots one gated worker over its own subset of shard k's
	// runs (replicas are separate processes over identical snapshot
	// copies; sharing one warehouse would share closure memo state).
	newReplica := func(k int, wrap func(http.Handler) http.Handler) *httptest.Server {
		sub, err := full.Subset(func(id string) bool { return ring.Place(id) == k })
		if err != nil {
			panic(err)
		}
		s, err := server.New(obs.NewRegistry(), server.Config{})
		if err != nil {
			panic(err)
		}
		s.SetEngine(provenance.NewEngine(sub))
		var h http.Handler = &capacityGate{
			next:  s.Handler(),
			sem:   make(chan struct{}, 1),
			floor: shardServiceFloor,
		}
		if wrap != nil {
			h = wrap(h)
		}
		return httptest.NewServer(h)
	}

	// buildCluster assembles reps replicas per shard (preferred replica
	// optionally wrapped) and a router, returning the client, the router,
	// and the servers for surgical kills.
	buildCluster := func(reps int, wrapPreferred func(http.Handler) http.Handler, cfg cluster.Config) (*client.Client, *cluster.Router, [][]*httptest.Server, func()) {
		servers := make([][]*httptest.Server, shards)
		groups := make([][]string, shards)
		for k := 0; k < shards; k++ {
			for j := 0; j < reps; j++ {
				var wrap func(http.Handler) http.Handler
				if j == 0 {
					wrap = wrapPreferred
				}
				ts := newReplica(k, wrap)
				servers[k] = append(servers[k], ts)
				groups[k] = append(groups[k], ts.URL)
			}
		}
		cfg.Shards = groups
		rt, err := cluster.New(obs.NewRegistry(), cfg)
		if err != nil {
			panic(err)
		}
		front := httptest.NewServer(rt.Handler())
		cl := client.New(front.URL, client.Options{})
		stop := func() {
			front.Close()
			for _, g := range servers {
				for _, ts := range g {
					ts.Close()
				}
			}
		}
		return cl, rt, servers, stop
	}

	// Phase 1 — availability under worker loss: kill shard 0's preferred
	// worker halfway through the drive.
	for _, reps := range []int{1, 2} {
		cl, _, servers, stop := buildCluster(reps, nil, cluster.Config{})
		var once sync.Once
		wall, lat, errCount := driveReplicaLoad(cl, queries, replicaKillClients, func() {
			once.Do(func() {
				servers[0][0].CloseClientConnections()
				servers[0][0].Close()
			})
		})
		rep.Append(fmt.Sprintf("2x%d kill", reps), len(queries), replicaKillClients,
			float64(len(queries))/wall.Seconds(), errCount,
			ms(percentileDuration(lat, 0.50)), ms(percentileDuration(lat, 0.99)), 0)
		stop()
	}

	// Phase 2 — tail latency under stragglers: the preferred replica of
	// each shard delays every Nth query request, unhedged vs hedged.
	straggler := func(next http.Handler) http.Handler {
		var n atomic.Int64
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost && n.Add(1)%replicaStraggleEvery == 0 {
				time.Sleep(replicaStraggle)
			}
			next.ServeHTTP(w, r)
		})
	}
	for _, hedge := range []time.Duration{0, replicaHedgeDelay} {
		cl, rt, _, stop := buildCluster(2, straggler, cluster.Config{HedgeDelay: hedge})
		wall, lat, errCount := driveReplicaLoad(cl, queries, replicaTailClients, nil)
		name := "2x2 straggler"
		if hedge > 0 {
			name += " hedged"
		}
		wins := 0
		if hedge > 0 {
			wins = int(rt.Registry().Snapshot().Counters["router.hedge_wins"])
		}
		rep.Append(name, len(queries), replicaTailClients,
			float64(len(queries))/wall.Seconds(), errCount,
			ms(percentileDuration(lat, 0.50)), ms(percentileDuration(lat, 0.99)), wins)
		stop()
	}

	rep.Notes = append(rep.Notes,
		"Kill rows: shard 0's preferred worker dies (connections cut, listener closed)",
		"halfway through the workload. With one replica per shard its queries fail fast",
		"(the errors column counts PR 8's 502s); with two, per-replica breakers and",
		"failover keep the error count at zero through the loss.",
		fmt.Sprintf("Straggler rows: the preferred replica holds every %dth query for %s", replicaStraggleEvery, replicaStraggle),
		fmt.Sprintf("before service; the hedged row launches a second attempt on the sibling after %s", replicaHedgeDelay),
		"and the first answer wins, pulling the p99 back toward the service floor.",
		fmt.Sprintf("Workers are gated to one in-flight request with a %s service floor as in S1;", shardServiceFloor),
		"the light straggler-phase load keeps queueing under the hedge delay so the p99",
		"isolates stragglers rather than saturation. Caveats: loopback transport, emulated",
		"single-core workers, and a straggler rate far above production make the deltas",
		"directional, not absolute.")
	return rep
}

// driveReplicaLoad is driveShardLoad with a halfway hook: onHalf (when
// non-nil) runs once the drive passes the midpoint of the workload — the
// seam the kill phase uses to lose a worker mid-flight.
func driveReplicaLoad(cl *client.Client, queries []shardQuery, clients int, onHalf func()) (time.Duration, []time.Duration, int) {
	ctx := context.Background()
	lat := make([]time.Duration, len(queries))
	var next, errCount atomic.Int64
	var wg sync.WaitGroup
	half := int64(len(queries) / 2)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(queries)) {
					return
				}
				if onHalf != nil && i == half {
					onHalf()
				}
				qs := time.Now()
				_, err := cl.Query(ctx, client.QueryRequest{Run: queries[i].run, Data: queries[i].data})
				lat[i] = time.Since(qs)
				if err != nil {
					errCount.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start), lat, int(errCount.Load())
}
