package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/server"
	"repro/internal/warehouse"
	"repro/zoom/client"
)

// shardServiceFloor is the emulated per-request service time of one
// worker machine. Each bench worker admits one request at a time and
// holds it for at least this long, so on a single-CPU host aggregate
// throughput is bounded by workers/floor — the shape a real deployment
// gets from one CPU per worker — while the provenance computation inside
// each request stays real. The floor must stay well above the real cold
// compute per query (~13ms on capped large runs here), or the shared CPU
// becomes the bottleneck and hides the scale-out.
const shardServiceFloor = 60 * time.Millisecond

// shardClients is the number of concurrent load-generating clients; kept
// above the largest worker count so the cluster, not the driver, is the
// bottleneck.
const shardClients = 8

// capacityGate emulates a single-core worker machine: at most one
// request in service, each occupying the worker for at least floor.
type capacityGate struct {
	next  http.Handler
	sem   chan struct{}
	floor time.Duration
}

func (cg *capacityGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	cg.sem <- struct{}{}
	defer func() { <-cg.sem }()
	start := time.Now()
	cg.next.ServeHTTP(w, r)
	if d := time.Since(start); d < cg.floor {
		time.Sleep(cg.floor - d)
	}
}

// shardQuery is one cold deep-provenance request of the S1 workload.
type shardQuery struct{ run, data string }

// ExpShard (S1) measures scale-out: aggregate cold deep-query throughput
// and tail latency through the consistent-hash router at 1, 2 and 4
// workers, each worker holding the shard of large-class runs the ring
// assigns it. Every (run, data) pair is queried exactly once per
// configuration, so every closure computation is cold. The experiment
// finishes with a dead-worker probe: one worker is killed and the router
// must fail its shard fast (502 naming the shard) while the survivors
// keep answering.
func ExpShard(o Options) *Report {
	rep := &Report{
		ID:    "S1",
		Title: "Sharded scale-out: routed cold-query throughput vs workers (large runs)",
		Headers: []string{"workers", "runs", "queries", "clients",
			"throughput q/s", "speedup", "p50 ms", "p99 ms", "errors"},
	}

	// Corpus: large-class runs of the richest workflow class, enough runs
	// to give every shard of a 4-way ring real work.
	g := gen.NewGenerator(o.Seed + 23)
	classes := gen.Classes()
	sp := g.Workflow(classes[len(classes)-1], "s1-wf")
	large := runClasses(o)[2]
	// Enough runs that the ring spreads load: with few keys consistent
	// hashing is lumpy and the busiest shard caps the speedup (8 runs over
	// 2 shards lands 7:1 here).
	nRuns := 8 * o.RunsPerKind
	targetsPerRun := o.Trials + 2

	full := warehouse.New(0)
	if err := full.RegisterSpec(sp); err != nil {
		panic(err)
	}
	var queries []shardQuery
	for i := 0; i < nRuns; i++ {
		r, _, err := g.Run(sp, large, fmt.Sprintf("s1-run-%02d", i))
		if err != nil {
			panic(err)
		}
		if err := full.LoadRun(r); err != nil {
			panic(err)
		}
		all := r.AllData()
		step := len(all) / targetsPerRun
		if step < 1 {
			step = 1
		}
		for j, taken := 0, 0; j < len(all) && taken < targetsPerRun; j, taken = j+step, taken+1 {
			queries = append(queries, shardQuery{run: r.ID(), data: all[j]})
		}
	}
	rand.New(rand.NewSource(o.Seed+23)).Shuffle(len(queries), func(i, j int) {
		queries[i], queries[j] = queries[j], queries[i]
	})

	var baseline time.Duration
	var lastRouter *client.Client
	var lastRing *cluster.Ring
	var lastWorkers []*httptest.Server
	var lastFront *httptest.Server
	for _, n := range []int{1, 2, 4} {
		ring, err := cluster.NewRing(n, 0)
		if err != nil {
			panic(err)
		}
		// Split the corpus with the same Subset primitive `zoom snapshot
		// shard` uses; each subset gets its own cold closure cache.
		workers := make([]*httptest.Server, n)
		urls := make([]string, n)
		for k := 0; k < n; k++ {
			sub, err := full.Subset(func(id string) bool { return ring.Place(id) == k })
			if err != nil {
				panic(err)
			}
			s, err := server.New(obs.NewRegistry(), server.Config{})
			if err != nil {
				panic(err)
			}
			s.SetEngine(provenance.NewEngine(sub))
			workers[k] = httptest.NewServer(&capacityGate{
				next:  s.Handler(),
				sem:   make(chan struct{}, 1),
				floor: shardServiceFloor,
			})
			urls[k] = workers[k].URL
		}
		rt, err := cluster.New(obs.NewRegistry(), cluster.Config{Workers: urls})
		if err != nil {
			panic(err)
		}
		front := httptest.NewServer(rt.Handler())
		cl := client.New(front.URL, client.Options{})

		wall, lat, errCount := driveShardLoad(cl, queries, shardClients)
		if n == 1 {
			baseline = wall
		}
		qps := float64(len(queries)) / wall.Seconds()
		rep.Append(n, full.NumRuns(), len(queries), shardClients,
			qps, ratio(baseline, wall),
			ms(percentileDuration(lat, 0.50)), ms(percentileDuration(lat, 0.99)), errCount)

		if n == 4 {
			lastRouter, lastRing, lastWorkers, lastFront = cl, ring, workers, front
		} else {
			front.Close()
			for _, w := range workers {
				w.Close()
			}
		}
	}

	// Dead-worker probe on the 4-way cluster: kill shard 0's worker, then
	// time consecutive requests for a run it owns — each must come back as
	// a fast 502 naming the shard — while a surviving shard still answers.
	deadShard := 0
	lastWorkers[deadShard].Close()
	var deadRun, liveRun string
	for _, q := range queries {
		switch lastRing.Place(q.run) {
		case deadShard:
			deadRun = q.run
		default:
			liveRun = q.run
		}
	}
	for i := 0; deadRun == ""; i++ {
		// The corpus left the dead shard empty; any id that places there
		// exercises the same fast-fail path.
		if id := fmt.Sprintf("s1-probe-%02d", i); lastRing.Place(id) == deadShard {
			deadRun = id
		}
	}
	ctx := context.Background()
	var worst time.Duration
	fastFails := 0
	for i := 0; i < 4; i++ {
		start := time.Now()
		_, err := lastRouter.Query(ctx, client.QueryRequest{Run: deadRun, Data: "x"})
		d := time.Since(start)
		var ce *client.Error
		if errors.As(err, &ce) && ce.Status == http.StatusBadGateway {
			fastFails++
			if d > worst {
				worst = d
			}
		}
	}
	liveOK := false
	for _, q := range queries {
		if q.run == liveRun {
			if _, err := lastRouter.Query(ctx, client.QueryRequest{Run: q.run, Data: q.data}); err == nil {
				liveOK = true
			}
			break
		}
	}
	lastFront.Close()
	for k, w := range lastWorkers {
		if k != deadShard {
			w.Close()
		}
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("dead-worker probe: killed shard %d's worker; %d/4 requests for its runs", deadShard, fastFails),
		fmt.Sprintf("failed fast as 502 (worst %.2f ms) and surviving shards answered=%v.", ms(worst), liveOK),
		fmt.Sprintf("GOMAXPROCS=%d, NumCPU=%d; each worker is gated to one in-flight request", runtime.GOMAXPROCS(0), runtime.NumCPU()),
		fmt.Sprintf("with a %s service-time floor to emulate one single-core machine per", shardServiceFloor),
		"worker on this host, so throughput measures the scale-out path (placement,",
		"routing, fan-out), not local core count; provenance work inside each request",
		"is real and results stay byte-identical to a single node (differential suite).")
	return rep
}

// driveShardLoad replays the workload through clients concurrent workers
// sharing one router client, returning wall time, per-request latencies,
// and the number of failed requests.
func driveShardLoad(cl *client.Client, queries []shardQuery, clients int) (time.Duration, []time.Duration, int) {
	ctx := context.Background()
	lat := make([]time.Duration, len(queries))
	var next, errCount atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				qs := time.Now()
				_, err := cl.Query(ctx, client.QueryRequest{Run: queries[i].run, Data: queries[i].data})
				lat[i] = time.Since(qs)
				if err != nil {
					errCount.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	return time.Since(start), lat, int(errCount.Load())
}

// percentileDuration returns the p-th percentile (0 < p <= 1) of ds.
func percentileDuration(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}
