package bench

import "testing"

// TestIngestShape pins the L1 experiment's shape: one row per Table II run
// class, v2 smaller than v1 on disk, fewer allocations per load, and on the
// larger classes the v2 parallel load must clearly beat the v1 serial load
// (the committed BENCH_L1.json asserts the full >=3x headline at bench
// scale; the test floor is looser so CI noise cannot flake it).
func TestIngestShape(t *testing.T) {
	rep := ExpIngest(testOptions())
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d\n%s", len(rep.Rows), rep)
	}
	for _, kind := range []string{"small", "medium", "large"} {
		v1 := cellF(t, rep, kind, "v1 KB")
		v2 := cellF(t, rep, kind, "v2 KB")
		if v2 >= v1 {
			t.Fatalf("%s: v2 snapshot (%v KB) not smaller than v1 (%v KB)\n%s", kind, v2, v1, rep)
		}
	}
	for _, kind := range []string{"medium", "large"} {
		v1ser := cellF(t, rep, kind, "v1 ser ms")
		v2par := cellF(t, rep, kind, "v2 par ms")
		if v2par*1.5 >= v1ser {
			t.Fatalf("%s: v2 parallel load (%v ms) not clearly faster than v1 serial (%v ms)\n%s",
				kind, v2par, v1ser, rep)
		}
	}
}
