package bench

import (
	"strconv"
	"strings"
	"testing"
)

// TestExpShardScales runs S1 at reduced scale and asserts the shape the
// paper-style claim needs: no request errors, a merged row per worker
// count, and aggregate throughput that grows with workers (the capacity
// gate makes scaling visible even on a single-CPU host).
func TestExpShardScales(t *testing.T) {
	if testing.Short() {
		t.Skip("spins HTTP clusters")
	}
	o := testOptions()
	o.RunsPerKind = 2
	o.Trials = 1
	o.LargeRunCap = 400
	rep := ExpShard(o)
	if len(rep.Rows) != 3 {
		t.Fatalf("expected rows for 1/2/4 workers, got %d", len(rep.Rows))
	}
	qps := make(map[string]float64)
	for _, want := range []string{"1", "2", "4"} {
		s, ok := rep.Cell(want, "throughput q/s")
		if !ok {
			t.Fatalf("missing row for %s workers\n%s", want, rep)
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("throughput %q: %v", s, err)
		}
		qps[want] = v
		if e, _ := rep.Cell(want, "errors"); e != "0" {
			t.Fatalf("%s workers: %s request errors\n%s", want, e, rep)
		}
	}
	if qps["4"] <= qps["1"] {
		t.Fatalf("no scale-out: 4 workers %.1f q/s vs 1 worker %.1f q/s\n%s",
			qps["4"], qps["1"], rep)
	}
	notes := strings.Join(rep.Notes, " ")
	if !strings.Contains(notes, "4/4 requests") || !strings.Contains(notes, "answered=true") {
		t.Fatalf("dead-worker probe did not fail fast with live survivors:\n%s", rep)
	}
}
