package bench

import "testing"

func TestSmokeAll(t *testing.T) {
	o := Default()
	o.WorkflowsPerClass = 1
	o.RunsPerKind = 1
	o.Trials = 1
	o.ScaleSpecs = 4
	o.MaxSpecNodes = 200
	o.LargeRunCap = 500
	reports := RunAll(o)
	if len(reports) != 15 {
		t.Fatalf("expected 15 reports, got %d", len(reports))
	}
	for _, r := range reports {
		t.Log("\n" + r.String())
	}
}
