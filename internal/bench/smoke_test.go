package bench

import "testing"

func TestSmokeAll(t *testing.T) {
	o := Default()
	o.WorkflowsPerClass = 1
	o.RunsPerKind = 1
	o.Trials = 1
	o.ScaleSpecs = 4
	o.MaxSpecNodes = 200
	o.LargeRunCap = 500
	reports := RunAll(o)
	if want := len(Experiments()); len(reports) != want {
		t.Fatalf("expected %d reports, got %d", want, len(reports))
	}
	ids := make(map[string]bool, len(reports))
	for i, r := range reports {
		t.Log("\n" + r.String())
		if got, want := r.ID, Experiments()[i].ID; got != want {
			t.Fatalf("registry id %q produced report id %q", want, got)
		}
		if ids[r.ID] {
			t.Fatalf("duplicate report id %q", r.ID)
		}
		ids[r.ID] = true
	}
}
