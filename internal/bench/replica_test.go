package bench

import (
	"strconv"
	"testing"
)

// TestExpReplicaFailoverAndHedging runs S2 at reduced scale and asserts
// the two claims the report makes: losing a worker produces errors with
// one replica per shard and none with two, and hedging pulls the
// straggler-phase p99 below the unhedged run's.
func TestExpReplicaFailoverAndHedging(t *testing.T) {
	if testing.Short() {
		t.Skip("spins HTTP clusters")
	}
	o := testOptions()
	o.RunsPerKind = 2
	o.Trials = 1
	o.LargeRunCap = 400
	rep := ExpReplica(o)
	if len(rep.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d\n%s", len(rep.Rows), rep)
	}
	cellInt := func(row, col string) int {
		s, ok := rep.Cell(row, col)
		if !ok {
			t.Fatalf("missing row %q\n%s", row, rep)
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("%s/%s = %q: %v", row, col, s, err)
		}
		return v
	}
	cellFloat := func(row, col string) float64 {
		s, ok := rep.Cell(row, col)
		if !ok {
			t.Fatalf("missing row %q\n%s", row, rep)
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("%s/%s = %q: %v", row, col, s, err)
		}
		return v
	}
	if e := cellInt("2x1 kill", "errors"); e == 0 {
		t.Fatalf("single-replica kill produced no errors — the dead shard should fail fast\n%s", rep)
	}
	if e := cellInt("2x2 kill", "errors"); e != 0 {
		t.Fatalf("replicated kill produced %d errors — failover should absorb the loss\n%s", e, rep)
	}
	unhedged := cellFloat("2x2 straggler", "p99 ms")
	hedged := cellFloat("2x2 straggler hedged", "p99 ms")
	if hedged >= unhedged {
		t.Fatalf("hedging did not improve straggler p99: %.1f ms hedged vs %.1f ms unhedged\n%s",
			hedged, unhedged, rep)
	}
	if w := cellInt("2x2 straggler hedged", "hedge wins"); w == 0 {
		t.Fatalf("hedged run recorded no hedge wins\n%s", rep)
	}
}
