package bench

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/provenance"
	"repro/internal/warehouse"
)

// ExpConcurrent measures the concurrent-serving path the paper's
// warehouse would face with many simultaneous users: a fixed batch of
// deep-provenance queries answered sequentially and through the worker
// pool at 1, 4 and 16 goroutines, cold cache each time, plus a
// thundering-herd row where 32 identical queries hit a cold cache at once
// and the singleflight layer must collapse them to a single closure
// computation. Throughput is hardware-dependent; the computes column is
// not — exactly one closure build per distinct (run, data) key no matter
// the concurrency.
func ExpConcurrent(o Options) *Report {
	rep := &Report{
		ID:      "C1",
		Title:   "Concurrent serving: worker pool throughput and singleflight",
		Headers: []string{"configuration", "queries", "total ms", "qps", "speedup", "closure computes"},
	}
	g := gen.NewGenerator(o.Seed + 11)
	w := warehouse.New(0)
	e := provenance.NewEngine(w)
	var queries []provenance.Query
	for _, class := range gen.Classes() {
		s := g.Workflow(class, "conc-"+class.Name)
		if err := w.RegisterSpec(s); err != nil {
			continue
		}
		v, err := core.BuildRelevant(s, gen.UBioRelevant(s))
		if err != nil {
			continue
		}
		for i := 0; i < o.RunsPerKind; i++ {
			r, _, err := g.Run(s, gen.Small(), fmt.Sprintf("conc-%s-%d", class.Name, i))
			if err != nil {
				continue
			}
			if err := w.LoadRun(r); err != nil {
				continue
			}
			for _, d := range r.AllData() {
				queries = append(queries, provenance.Query{RunID: r.ID(), View: v, Data: d})
			}
		}
	}
	if len(queries) == 0 {
		return rep
	}

	ctx := context.Background()
	repeats := o.Trials
	if repeats < 1 {
		repeats = 1
	}
	run := func(workers int) (time.Duration, warehouse.CacheCounters) {
		var total time.Duration
		var counters warehouse.CacheCounters
		for i := 0; i < repeats; i++ {
			w.ResetCache()
			start := time.Now()
			if workers == 0 {
				for _, q := range queries {
					e.DeepProvenance(q.RunID, q.View, q.Data)
				}
			} else {
				e.ServeConcurrently(ctx, queries, workers)
			}
			total += time.Since(start)
			counters = w.CacheCounters()
		}
		return total / time.Duration(repeats), counters
	}

	seq, seqC := run(0)
	qps := func(d time.Duration) float64 {
		if d <= 0 {
			return 0
		}
		return float64(len(queries)) / d.Seconds()
	}
	rep.Append("sequential", len(queries), ms(seq), qps(seq), "1.00x", seqC.Computes)
	for _, workers := range []int{1, 4, 16} {
		d, c := run(workers)
		rep.Append(fmt.Sprintf("pool, %d workers", workers), len(queries),
			ms(d), qps(d), ratio(seq, d), c.Computes)
	}

	// Thundering herd: 32 copies of the same expensive query against a cold
	// cache. Without singleflight this costs 32 closure builds; with it,
	// exactly one, and the other 31 report as shared waits.
	herd := make([]provenance.Query, 32)
	for i := range herd {
		herd[i] = queries[0]
	}
	w.ResetCache()
	start := time.Now()
	e.ServeConcurrently(ctx, herd, len(herd))
	herdTime := time.Since(start)
	hc := w.CacheCounters()
	rep.Append("herd, 32x same query", len(herd), ms(herdTime), qps(herdTime),
		"-", fmt.Sprintf("%d (%d hits, %d shared waits)", hc.Computes, hc.Hits, hc.SharedWaits))

	rep.Notes = append(rep.Notes,
		fmt.Sprintf("GOMAXPROCS=%d, NumCPU=%d; pool speedup needs real cores — on a", runtime.GOMAXPROCS(0), runtime.NumCPU()),
		"single-CPU host expect ~1x throughput but identical results and counters;",
		"the herd row is hardware-independent: singleflight guarantees one closure",
		"compute per distinct (run, data) key regardless of concurrency.")
	return rep
}
