package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/provenance"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

// ExpLabels (P2) measures the reachability-label closure path against the
// bitset BFS on the Table II run classes: the same run is loaded into two
// warehouses — one with SetLabelIndex(true), one without — and the cold
// deep-provenance query of the final output (closure compute + projection,
// cache reset every repetition) is timed on both. Rows cover the parallel
// profile (Class3, whose step graph decomposes into many chains) and the
// loop profile (Class4, long unrolled sequences — the regime that drives
// the largest runs and collapses to a handful of chains). The differential
// suite in internal/provenance guarantees the two strategies return
// identical results, so the speedup column is pure closure-compute cost.
func ExpLabels(o Options) *Report {
	rep := &Report{
		ID:    "P2",
		Title: "Reachability labels vs bitset BFS (cold closure + projection)",
		Headers: []string{"workflow", "run kind", "steps", "data", "chains", "label KB",
			"bfs ms", "labels ms", "speedup"},
	}
	g := gen.NewGenerator(o.Seed + 13)
	for _, wc := range []gen.WorkflowClass{gen.Class3(), gen.Class4()} {
		for _, rc := range runClasses(o) {
			s := g.Workflow(wc, "p2-"+wc.Name+"-"+rc.Name)
			r, _, err := g.Run(s, rc, "p2-"+wc.Name+"-"+rc.Name+"-r")
			if err != nil {
				continue
			}
			// Cold closures on these runs cost tens of microseconds, so the
			// rep counts are much higher than P1's: the timing loop must
			// outlast scheduler and GC noise for the ratio to mean anything.
			reps := 500
			switch {
			case r.NumSteps() > 1000:
				reps = 50
			case r.NumSteps() > 100:
				reps = 200
			}
			bfsMS, _, err := measureLabelQuery(s, r, false, reps)
			if err != nil {
				continue
			}
			labelMS, lstats, err := measureLabelQuery(s, r, true, reps)
			if err != nil {
				continue
			}
			chains, labelKB, speedup := "-", "-", "-"
			if lstats != nil {
				chains = fmt.Sprintf("%d", lstats.Chains)
				labelKB = fmt.Sprintf("%.1f", float64(lstats.LabelBytes)/1024)
				if labelMS > 0 {
					speedup = fmt.Sprintf("%.2fx", bfsMS/labelMS)
				}
			}
			rep.Append(wc.Name, rc.Name, r.NumSteps(), r.NumData(),
				chains, labelKB, bfsMS, labelMS, speedup)
		}
	}
	rep.Notes = append(rep.Notes,
		"same run, two warehouses; labels = chain-decomposition interval index over the",
		"induced step graph (built once at load), bfs = bitset BFS over the CSR index;",
		"every rep resets the closure cache so each query pays the full closure compute.",
		"chains '-' means the label builder declined the run and the row fell back to BFS.")
	return rep
}

// measureLabelQuery loads r into a fresh warehouse (with or without the
// label index) and returns the average wall-clock milliseconds of a cold
// deep-provenance query of the last final output under the UBio view,
// pinned to the matching closure strategy. With labels on it also returns
// the built index's footprint (nil if the builder declined the run — the
// timing then reflects the counted BFS fallback).
func measureLabelQuery(s *spec.Spec, r *run.Run, labels bool, reps int) (avgMS float64, lstats *run.LabelStats, err error) {
	w := warehouse.New(0)
	w.SetLabelIndex(labels)
	if err := w.RegisterSpec(s); err != nil {
		return 0, nil, err
	}
	if err := w.LoadRun(r); err != nil {
		return 0, nil, err
	}
	strat := warehouse.StrategyBFS
	if labels {
		strat = warehouse.StrategyLabels
		if l := w.RunLabels(r.ID()); l != nil {
			st := l.Stats()
			lstats = &st
		}
	}
	e := provenance.NewEngine(w)
	bio, err := core.BuildRelevant(s, gen.UBioRelevant(s))
	if err != nil {
		return 0, nil, err
	}
	finals := r.FinalOutputs()
	if len(finals) == 0 {
		return 0, nil, fmt.Errorf("bench: run %q has no final outputs", r.ID())
	}
	root := finals[len(finals)-1]
	// Warm the mapping and projector so the measurement isolates the
	// per-query path (closure + projection), not one-time setup.
	if _, err := e.DeepProvenanceStrategy(r.ID(), bio, root, strat); err != nil {
		return 0, nil, err
	}
	runtime.GC() // keep earlier experiments' garbage out of the timing loop
	start := time.Now()
	for i := 0; i < reps; i++ {
		w.ResetCache()
		if _, err := e.DeepProvenanceStrategy(r.ID(), bio, root, strat); err != nil {
			return 0, nil, err
		}
	}
	elapsed := time.Since(start)
	avgMS = float64(elapsed.Microseconds()) / float64(reps) / 1000
	return avgMS, lstats, nil
}
