// Package bench is the evaluation harness: one function per table or
// figure of the paper's Section V, each returning a Report whose rows
// mirror what the paper plots. Absolute numbers differ from the paper's
// 2008 Oracle testbed, but the shapes the experiments establish — view
// granularity vs. result size, builder scalability and optimality, cheap
// view switching — are asserted by the tests in this package.
package bench

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ReportSchema is the version stamped into report JSON by MarshalJSON.
// Version 1 is the pre-stamp format (no Schema field — BENCH_L1.json and
// BENCH_P1.json as originally committed); version 2 added the stamp with
// no other shape change. Readers default a missing stamp to 1, so every
// historical artifact still round-trips.
const ReportSchema = 2

// Report is a rendered experiment result: a titled table plus free-form
// notes (the "expected shape" commentary).
type Report struct {
	Schema  int    `json:",omitempty"` // JSON schema version; 0 in memory = current
	ID      string // experiment id from DESIGN.md (T1, E1, F10, ...)
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// MarshalJSON writes the report with the current schema stamp (unless the
// report already carries an explicit version, which is preserved — that is
// what lets the round-trip test re-encode a legacy artifact unchanged).
func (r *Report) MarshalJSON() ([]byte, error) {
	type alias Report // drops the method set: no recursion
	a := alias(*r)
	if a.Schema == 0 {
		a.Schema = ReportSchema
	}
	return json.Marshal(a)
}

// UnmarshalJSON reads report JSON of any schema version: a missing stamp
// means a version-1 file.
func (r *Report) UnmarshalJSON(data []byte) error {
	type alias Report
	a := alias{Schema: 1}
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*r = Report(a)
	return nil
}

// Append adds a row, formatting every cell with %v.
func (r *Report) Append(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	r.Rows = append(r.Rows, row)
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the report as RFC-4180 CSV (headers first, no notes), so the
// figure series can be re-plotted with external tooling.
func (r *Report) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, r.Headers)
	for _, row := range r.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteByte('\n')
}

// Cell looks a row up by its first column and returns the named column's
// value; it is how the tests assert on report contents.
func (r *Report) Cell(rowKey, column string) (string, bool) {
	col := -1
	for i, h := range r.Headers {
		if h == column {
			col = i
			break
		}
	}
	if col < 0 {
		return "", false
	}
	for _, row := range r.Rows {
		if len(row) > col && row[0] == rowKey {
			return row[col], true
		}
	}
	return "", false
}
