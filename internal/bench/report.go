// Package bench is the evaluation harness: one function per table or
// figure of the paper's Section V, each returning a Report whose rows
// mirror what the paper plots. Absolute numbers differ from the paper's
// 2008 Oracle testbed, but the shapes the experiments establish — view
// granularity vs. result size, builder scalability and optimality, cheap
// view switching — are asserted by the tests in this package.
package bench

import (
	"fmt"
	"strings"
)

// Report is a rendered experiment result: a titled table plus free-form
// notes (the "expected shape" commentary).
type Report struct {
	ID      string // experiment id from DESIGN.md (T1, E1, F10, ...)
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Append adds a row, formatting every cell with %v.
func (r *Report) Append(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	r.Rows = append(r.Rows, row)
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(r.Headers)
	sep := make([]string, len(r.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the report as RFC-4180 CSV (headers first, no notes), so the
// figure series can be re-plotted with external tooling.
func (r *Report) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, r.Headers)
	for _, row := range r.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteByte('\n')
}

// Cell looks a row up by its first column and returns the named column's
// value; it is how the tests assert on report contents.
func (r *Report) Cell(rowKey, column string) (string, bool) {
	col := -1
	for i, h := range r.Headers {
		if h == column {
			col = i
			break
		}
	}
	if col < 0 {
		return "", false
	}
	for _, row := range r.Rows {
		if len(row) > col && row[0] == rowKey {
			return row[col], true
		}
	}
	return "", false
}
