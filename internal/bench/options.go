package bench

// Options scale the experiments. Default() is sized for CI and unit tests;
// Full() matches the paper's workload volumes (10 workflows per class, 30
// runs per kind — 3,600 runs in total — and 1,000 randomized specifications
// for the scalability experiment).
type Options struct {
	// Seed makes every experiment deterministic.
	Seed int64
	// WorkflowsPerClass is how many specifications to draw per Table I class.
	WorkflowsPerClass int
	// RunsPerKind is how many runs to execute per Table II kind per workflow.
	RunsPerKind int
	// Trials is the number of random relevant-set draws per percentage for
	// the optimality and Figure 11 experiments (the paper uses 10).
	Trials int
	// ScaleSpecs is the number of randomized specifications for the
	// scalability experiment (the paper uses 1000).
	ScaleSpecs int
	// MinSpecNodes/MaxSpecNodes bound the randomized specification sizes
	// (the paper sweeps 100-1000 nodes).
	MinSpecNodes int
	MaxSpecNodes int
	// LargeRunCap lowers the Table II "large" run size so the full sweep
	// stays tractable on one machine; 0 keeps the class default (10,000).
	LargeRunCap int
}

// Default returns options sized for fast, deterministic test runs.
func Default() Options {
	return Options{
		Seed:              1,
		WorkflowsPerClass: 3,
		RunsPerKind:       3,
		Trials:            3,
		ScaleSpecs:        30,
		MinSpecNodes:      100,
		MaxSpecNodes:      500,
		LargeRunCap:       3000,
	}
}

// Full returns the paper-scale options.
func Full() Options {
	return Options{
		Seed:              1,
		WorkflowsPerClass: 10,
		RunsPerKind:       30,
		Trials:            10,
		ScaleSpecs:        1000,
		MinSpecNodes:      100,
		MaxSpecNodes:      1000,
	}
}
