package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/provenance"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

// runClasses returns the Table II kinds with the large-run cap applied.
func runClasses(o Options) []gen.RunClass {
	classes := gen.RunClasses()
	if o.LargeRunCap > 0 {
		classes[2].MaxNodes = o.LargeRunCap
	}
	return classes
}

// ExpTable1 regenerates Table I: for each workflow class, the number of
// workflows generated and their average size (modules) and loop count,
// validating that the generator realizes the published profiles.
func ExpTable1(o Options) *Report {
	rep := &Report{
		ID:      "T1",
		Title:   "Classes of workflows (Table I)",
		Headers: []string{"class", "workflows", "avg modules", "avg edges", "avg loops"},
	}
	g := gen.NewGenerator(o.Seed)
	for _, class := range gen.Classes() {
		var mods, edges, loops int
		for i := 0; i < o.WorkflowsPerClass; i++ {
			s := g.Workflow(class, fmt.Sprintf("%s-w%d", class.Name, i))
			mods += s.NumModules()
			edges += s.NumEdges()
			loops += s.LoopCount()
		}
		n := float64(o.WorkflowsPerClass)
		rep.Append(class.Name, o.WorkflowsPerClass,
			float64(mods)/n, float64(edges)/n, float64(loops)/n)
	}
	rep.Notes = append(rep.Notes,
		"Class1 models the 30 collected real workflows (12-node average, mostly linear);",
		"Class4 (Loop) must show the highest loop count, Class2 (Linear) near zero fan-out.")
	return rep
}

// ExpTable2 regenerates Table II: for each run kind, the observed run
// sizes (steps/edges/data) produced by the generator parameters.
func ExpTable2(o Options) *Report {
	rep := &Report{
		ID:    "T2",
		Title: "Classes of runs (Table II)",
		Headers: []string{"kind", "user input", "data/step", "loop iter",
			"avg steps", "max steps", "avg edges", "avg data", "avg depth"},
	}
	g := gen.NewGenerator(o.Seed + 2)
	for _, rc := range runClasses(o) {
		var steps, edges, data, maxSteps, depth int
		count := 0
		for _, class := range gen.Classes() {
			s := g.Workflow(class, fmt.Sprintf("t2-%s-%s", rc.Name, class.Name))
			for i := 0; i < o.RunsPerKind; i++ {
				r, _, err := g.Run(s, rc, fmt.Sprintf("t2-%s-%s-%d", rc.Name, class.Name, i))
				if err != nil {
					continue
				}
				st := r.Stats()
				steps += st.Steps
				edges += st.Edges
				data += st.Data
				depth += st.Depth
				if st.Steps > maxSteps {
					maxSteps = st.Steps
				}
				count++
			}
		}
		n := float64(count)
		rep.Append(rc.Name,
			fmt.Sprintf("%d-%d", rc.UserInput[0], rc.UserInput[1]),
			fmt.Sprintf("%d-%d", rc.DataPerStep[0], rc.DataPerStep[1]),
			fmt.Sprintf("%d-%d", rc.LoopIter[0], rc.LoopIter[1]),
			float64(steps)/n, maxSteps, float64(edges)/n, float64(data)/n, float64(depth)/n)
	}
	rep.Notes = append(rep.Notes,
		"loop iteration count is the dominant size driver, as in the paper",
		"('by iterating over the loops many times we were able to generate very large runs').")
	return rep
}

// ExpScalability regenerates the Section V.B scalability experiment:
// RelevUserViewBuilder over increasingly large randomized specifications.
// The paper runs 1000 specifications of 100-1000 nodes and observes every
// execution under 80 ms.
func ExpScalability(o Options) *Report {
	rep := &Report{
		ID:      "E1",
		Title:   "RelevUserViewBuilder scalability",
		Headers: []string{"nodes(bucket)", "specs", "avg ms", "max ms"},
	}
	g := gen.NewGenerator(o.Seed + 3)
	type bucket struct {
		specs int
		total time.Duration
		max   time.Duration
	}
	buckets := make(map[int]*bucket)
	span := o.MaxSpecNodes - o.MinSpecNodes
	for i := 0; i < o.ScaleSpecs; i++ {
		target := o.MinSpecNodes
		if o.ScaleSpecs > 1 {
			target += span * i / (o.ScaleSpecs - 1)
		}
		class := gen.Class3()
		class.TargetModules = target
		s := g.Workflow(class, fmt.Sprintf("scale-%d", i))
		rel := g.RandomRelevant(s, 10+(i%5)*10) // 10-50% relevant
		start := time.Now()
		if _, err := core.BuildRelevant(s, rel); err != nil {
			panic(fmt.Sprintf("bench: builder failed on generated spec: %v", err))
		}
		el := time.Since(start)
		key := (target / 100) * 100
		b := buckets[key]
		if b == nil {
			b = &bucket{}
			buckets[key] = b
		}
		b.specs++
		b.total += el
		if el > b.max {
			b.max = el
		}
	}
	for key := (o.MinSpecNodes / 100) * 100; key <= o.MaxSpecNodes; key += 100 {
		b := buckets[key]
		if b == nil {
			continue
		}
		rep.Append(fmt.Sprintf("%d-%d", key, key+99), b.specs,
			float64(b.total.Microseconds())/float64(b.specs)/1000,
			float64(b.max.Microseconds())/1000)
	}
	rep.Notes = append(rep.Notes, "paper: every execution took < 80 ms on 2008 hardware.")
	return rep
}

// ExpOptimality regenerates the Section V.B optimality experiment: as the
// percentage of relevant modules grows, how many composite modules beyond
// the lower bound |R| does the builder create? The paper observes that
// adding one relevant module adds about one composite, i.e. few
// non-relevant composites.
func ExpOptimality(o Options) *Report {
	rep := &Report{
		ID:      "E2",
		Title:   "RelevUserViewBuilder optimality",
		Headers: []string{"% relevant", "avg |R|", "avg view size", "avg extra composites"},
	}
	g := gen.NewGenerator(o.Seed + 4)
	var specs []*spec.Spec
	for _, class := range gen.Classes() {
		for i := 0; i < o.WorkflowsPerClass; i++ {
			specs = append(specs, g.Workflow(class, fmt.Sprintf("opt-%s-%d", class.Name, i)))
		}
	}
	for pct := 0; pct <= 100; pct += 10 {
		var sumR, sumSize, samples int
		for _, s := range specs {
			for trial := 0; trial < o.Trials; trial++ {
				rel := g.RandomRelevant(s, pct)
				v, err := core.BuildRelevant(s, rel)
				if err != nil {
					panic(fmt.Sprintf("bench: builder failed: %v", err))
				}
				sumR += len(rel)
				sumSize += v.Size()
				samples++
			}
		}
		n := float64(samples)
		rep.Append(fmt.Sprintf("%d", pct), float64(sumR)/n, float64(sumSize)/n,
			float64(sumSize-sumR)/n)
	}
	rep.Notes = append(rep.Notes,
		"extra composites = view size - |R|; the paper reports this stays small",
		"(adding one relevant class creates only about one new composite class).")
	return rep
}

// queryTriple loads one run into a fresh warehouse and measures the deep
// provenance of its final output under the three views of Figure 10.
type tripleResult struct {
	admin, bio, blackbox *provenance.Result
	coldTime             time.Duration // first (cache-filling) query
	switchTime           time.Duration // subsequent warm view switches
}

func queryTriple(s *spec.Spec, r *run.Run, rel []string) (*tripleResult, error) {
	w := warehouse.New(0)
	if err := w.RegisterSpec(s); err != nil {
		return nil, err
	}
	if err := w.LoadRun(r); err != nil {
		return nil, err
	}
	e := provenance.NewEngine(w)
	finals := r.FinalOutputs()
	if len(finals) == 0 {
		return nil, fmt.Errorf("bench: run %q has no final outputs", r.ID())
	}
	root := finals[len(finals)-1]
	admin := core.UAdmin(s)
	bio, err := core.BuildRelevant(s, rel)
	if err != nil {
		return nil, err
	}
	blackbox, err := core.UBlackBox(s)
	if err != nil {
		return nil, err
	}
	out := &tripleResult{}
	start := time.Now()
	out.admin, err = e.DeepProvenance(r.ID(), admin, root)
	if err != nil {
		return nil, err
	}
	out.coldTime = time.Since(start)
	start = time.Now()
	out.bio, err = e.DeepProvenance(r.ID(), bio, root)
	if err != nil {
		return nil, err
	}
	out.blackbox, err = e.DeepProvenance(r.ID(), blackbox, root)
	if err != nil {
		return nil, err
	}
	out.switchTime = time.Since(start) / 2
	return out, nil
}

// ExpFig10 regenerates Figure 10: the size of the deep-provenance result
// of the final output, per workflow class and run kind, under UAdmin, UBio
// and UBlackBox.
func ExpFig10(o Options) *Report {
	rep := &Report{
		ID:      "F10",
		Title:   "Size of query result by view (Figure 10)",
		Headers: []string{"class/run", "UAdmin", "UBio", "UBlackBox", "UBio/UAdmin", "UBio/UBlackBox"},
	}
	g := gen.NewGenerator(o.Seed + 5)
	for _, class := range gen.Classes() {
		for ki, rc := range runClasses(o) {
			var sumAdmin, sumBio, sumBB, count int
			for wi := 0; wi < o.WorkflowsPerClass; wi++ {
				s := g.Workflow(class, fmt.Sprintf("f10-%s-%s-%d", class.Name, rc.Name, wi))
				rel := gen.UBioRelevant(s)
				for ri := 0; ri < o.RunsPerKind; ri++ {
					r, _, err := g.Run(s, rc, fmt.Sprintf("f10-%s-%s-%d-%d", class.Name, rc.Name, wi, ri))
					if err != nil {
						continue
					}
					tr, err := queryTriple(s, r, rel)
					if err != nil {
						continue
					}
					sumAdmin += tr.admin.NumData()
					sumBio += tr.bio.NumData()
					sumBB += tr.blackbox.NumData()
					count++
				}
			}
			if count == 0 {
				continue
			}
			n := float64(count)
			a, b, c := float64(sumAdmin)/n, float64(sumBio)/n, float64(sumBB)/n
			rep.Append(fmt.Sprintf("%s/run%d", class.Name, ki+1), a, b, c, b/a, b/c)
		}
	}
	rep.Notes = append(rep.Notes,
		"paper (small runs): UAdmin 24, UBio 13, UBlackBox 5 data items on average;",
		"paper (medium/large): UBio ~20% of UAdmin and ~22x UBlackBox;",
		"Class4 (loops) benefits most: loop iterations hide up to 90% of the data.")
	return rep
}

// ExpQueryTime regenerates the query-response-time experiment: the cost of
// the most expensive query (deep provenance of the final output), cold.
func ExpQueryTime(o Options) *Report {
	rep := &Report{
		ID:      "E3",
		Title:   "Query response time",
		Headers: []string{"run kind", "queries", "avg steps", "avg ms", "max ms"},
	}
	g := gen.NewGenerator(o.Seed + 6)
	for _, rc := range runClasses(o) {
		var total, max time.Duration
		var steps, count int
		for _, class := range gen.Classes() {
			s := g.Workflow(class, fmt.Sprintf("qt-%s-%s", rc.Name, class.Name))
			rel := gen.UBioRelevant(s)
			for i := 0; i < o.RunsPerKind; i++ {
				r, _, err := g.Run(s, rc, fmt.Sprintf("qt-%s-%s-%d", rc.Name, class.Name, i))
				if err != nil {
					continue
				}
				tr, err := queryTriple(s, r, rel)
				if err != nil {
					continue
				}
				total += tr.coldTime
				if tr.coldTime > max {
					max = tr.coldTime
				}
				steps += r.NumSteps()
				count++
			}
		}
		if count == 0 {
			continue
		}
		rep.Append(rc.Name, count, float64(steps)/float64(count),
			float64(total.Microseconds())/float64(count)/1000,
			float64(max.Microseconds())/1000)
	}
	rep.Notes = append(rep.Notes,
		"paper: small 23 ms, medium 213 ms, large 1.1 s, always < 30 s; response time",
		"is dominated by the UAdmin closure (first step of the compute-then-project strategy).")
	return rep
}

// ExpViewSwitch regenerates the interactive-capability experiment: after
// the first (cold) query on a run, switching the user view reuses the
// cached UAdmin closure; the paper measures ~13 ms per switch on average.
func ExpViewSwitch(o Options) *Report {
	rep := &Report{
		ID:      "E4",
		Title:   "Effect of view granularity on response time (view switching)",
		Headers: []string{"run kind", "switches", "avg cold ms", "avg switch ms", "speedup"},
	}
	g := gen.NewGenerator(o.Seed + 7)
	for _, rc := range runClasses(o) {
		var cold, sw time.Duration
		var count int
		for _, class := range gen.Classes() {
			s := g.Workflow(class, fmt.Sprintf("vs-%s-%s", rc.Name, class.Name))
			rel := gen.UBioRelevant(s)
			for i := 0; i < o.RunsPerKind; i++ {
				r, _, err := g.Run(s, rc, fmt.Sprintf("vs-%s-%s-%d", rc.Name, class.Name, i))
				if err != nil {
					continue
				}
				tr, err := queryTriple(s, r, rel)
				if err != nil {
					continue
				}
				cold += tr.coldTime
				sw += tr.switchTime
				count++
			}
		}
		if count == 0 {
			continue
		}
		avgCold := float64(cold.Microseconds()) / float64(count) / 1000
		avgSwitch := float64(sw.Microseconds()) / float64(count) / 1000
		speedup := 0.0
		if avgSwitch > 0 {
			speedup = avgCold / avgSwitch
		}
		rep.Append(rc.Name, 2*count, avgCold, avgSwitch, speedup)
	}
	rep.Notes = append(rep.Notes,
		"paper: recomputing provenance for a different user view takes ~13 ms on average",
		"(max 1 s) because the UAdmin result is cached in a temporary table.")
	return rep
}

// ExpFig11 regenerates Figure 11: the size of the query result as a
// function of the percentage of (randomly chosen) relevant modules, one
// series per run kind.
func ExpFig11(o Options) *Report {
	rep := &Report{
		ID:      "F11",
		Title:   "Effect of view granularity on size of query result (Figure 11)",
		Headers: []string{"% relevant", "run1(small)", "run2(medium)", "run3(large)"},
	}
	g := gen.NewGenerator(o.Seed + 8)
	classes := runClasses(o)
	// Pre-build one warehouse per (class, workflow, kind) and reuse cached
	// closures across percentages — the paper's 120,000-query experiment is
	// feasible precisely because of this caching.
	type site struct {
		s    *spec.Spec
		e    *provenance.Engine
		run  string
		root string
		kind int
	}
	var sites []site
	for _, class := range gen.Classes() {
		for wi := 0; wi < o.WorkflowsPerClass; wi++ {
			s := g.Workflow(class, fmt.Sprintf("f11-%s-%d", class.Name, wi))
			for ki, rc := range classes {
				w := warehouse.New(0)
				if err := w.RegisterSpec(s); err != nil {
					continue
				}
				r, _, err := g.Run(s, rc, fmt.Sprintf("f11-%s-%d-%s", class.Name, wi, rc.Name))
				if err != nil {
					continue
				}
				if err := w.LoadRun(r); err != nil {
					continue
				}
				finals := r.FinalOutputs()
				if len(finals) == 0 {
					continue
				}
				sites = append(sites, site{
					s: s, e: provenance.NewEngine(w), run: r.ID(),
					root: finals[len(finals)-1], kind: ki,
				})
			}
		}
	}
	for pct := 0; pct <= 100; pct += 10 {
		sums := make([]float64, len(classes))
		counts := make([]int, len(classes))
		for _, st := range sites {
			for trial := 0; trial < o.Trials; trial++ {
				rel := g.RandomRelevant(st.s, pct)
				v, err := core.BuildRelevant(st.s, rel)
				if err != nil {
					continue
				}
				res, err := st.e.DeepProvenance(st.run, v, st.root)
				if err != nil {
					continue
				}
				sums[st.kind] += float64(res.NumData())
				counts[st.kind]++
			}
		}
		row := []interface{}{fmt.Sprintf("%d", pct)}
		for k := range classes {
			if counts[k] == 0 {
				row = append(row, "-")
				continue
			}
			row = append(row, sums[k]/float64(counts[k]))
		}
		rep.Append(row...)
	}
	rep.Notes = append(rep.Notes,
		"each series must be monotone (noise aside): more relevant modules -> finer",
		"granularity -> more visible provenance; Class4 grows super-linearly (loops).")
	return rep
}

// RunAll executes every experiment in DESIGN.md order, including the
// ablations and the minimal-vs-minimum gap study.
func RunAll(o Options) []*Report {
	exps := Experiments()
	reports := make([]*Report, 0, len(exps))
	for _, e := range exps {
		reports = append(reports, e.Run(o))
	}
	return reports
}

// Experiment pairs a report id with the function that produces it, so
// drivers can select experiments before paying for them (zoombench -only
// runs just the requested one instead of the whole harness).
type Experiment struct {
	ID  string
	Run func(Options) *Report
}

// Experiments returns the harness registry in DESIGN.md order. Each
// entry's ID matches the ID of the report its Run returns.
func Experiments() []Experiment {
	return []Experiment{
		{"T1", ExpTable1},
		{"T2", ExpTable2},
		{"E1", ExpScalability},
		{"E2", ExpOptimality},
		{"F10", ExpFig10},
		{"E3", ExpQueryTime},
		{"E4", ExpViewSwitch},
		{"F11", ExpFig11},
		{"E5", ExpMinimumGap},
		{"A1/A2", ExpAblation},
		{"C1", ExpConcurrent},
		{"P1", ExpCompact},
		{"P2", ExpLabels},
		{"L1", ExpIngest},
		{"L2", ExpMmap},
		{"S1", ExpShard},
		{"S2", ExpReplica},
		{"O3", ExpObsCluster},
	}
}
