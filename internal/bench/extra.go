package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/provenance"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

// ExpMinimumGap studies the paper's open problem empirically: how often is
// RelevUserViewBuilder's minimal view strictly larger than the minimum one?
// For small random specifications the minimum is found by exhaustive search
// (core.MinimumView), so the gap can be measured exactly.
func ExpMinimumGap(o Options) *Report {
	rep := &Report{
		ID:      "E5",
		Title:   "Minimal vs. minimum user views (open problem, Figure 7)",
		Headers: []string{"modules", "instances", "gap instances", "gap %", "avg gap", "max gap"},
	}
	g := gen.NewGenerator(o.Seed + 9)
	perSize := 100 * o.Trials
	for _, n := range []int{4, 5, 6} {
		var gaps, total, sumGap, maxGap int
		for i := 0; i < perSize; i++ {
			// Unstructured random DAGs: pattern-built workflows almost
			// never exhibit the gap, random ones occasionally do.
			s := g.RandomDAG(fmt.Sprintf("gap-%d-%d", n, i), n)
			if s.NumModules() > core.MaxMinimumSearchModules {
				continue
			}
			rel := g.RandomRelevant(s, 20+(i%3)*20)
			built, err := core.BuildRelevant(s, rel)
			if err != nil {
				continue
			}
			min, err := core.MinimumView(s, rel)
			if err != nil {
				continue
			}
			total++
			if d := built.Size() - min.Size(); d > 0 {
				gaps++
				sumGap += d
				if d > maxGap {
					maxGap = d
				}
			}
		}
		if total == 0 {
			continue
		}
		avg := 0.0
		if gaps > 0 {
			avg = float64(sumGap) / float64(gaps)
		}
		rep.Append(fmt.Sprintf("%d", n), total, gaps,
			100*float64(gaps)/float64(total), avg, maxGap)
	}
	// The machine-found Figure 7 instance always exhibits the gap.
	f7, f7rel := spec.Figure7()
	f7built, err := core.BuildRelevant(f7, f7rel)
	if err != nil {
		panic(err)
	}
	f7min, err := core.MinimumView(f7, f7rel)
	if err != nil {
		panic(err)
	}
	rep.Append("figure7", 1, 1, 100.0, float64(f7built.Size()-f7min.Size()), f7built.Size()-f7min.Size())
	rep.Notes = append(rep.Notes,
		"the builder is always minimal (no pairwise merge possible, Theorem 1) but, as",
		"the paper's Figure 7 shows, not always minimum; spec/examples.go carries a",
		"machine-found instance with builder size 5 vs. minimum 3.")
	return rep
}

// ExpAblation reports the two design-choice ablations of DESIGN.md as a
// table: the memoized nr-path fronts behind the builder, and the
// compute-UAdmin-then-project query strategy against its alternatives.
func ExpAblation(o Options) *Report {
	rep := &Report{
		ID:      "A1/A2",
		Title:   "Ablations: nr-path memoization and query strategy",
		Headers: []string{"variant", "avg ms", "vs baseline"},
	}
	g := gen.NewGenerator(o.Seed + 10)

	// A1: nr-path machinery on a mid-size specification.
	class := gen.Class3()
	class.TargetModules = 120
	s := g.Workflow(class, "abl-nr")
	rel := g.RandomRelevant(s, 20)
	relSet := make(map[string]bool, len(rel))
	for _, r := range rel {
		relSet[r] = true
	}
	repeats := 3
	memo := timeIt(repeats, func() {
		a, err := core.NewAnalysis(s, rel)
		if err != nil {
			panic(err)
		}
		for _, n := range s.ModuleNames() {
			_ = a.RPred(n)
			_ = a.RSucc(n)
		}
	})
	perQuery := timeIt(1, func() {
		gg := s.Graph()
		avoid := func(n string) bool { return relSet[n] }
		sources := append(append([]string(nil), rel...), spec.Input)
		targets := append(append([]string(nil), rel...), spec.Output)
		for _, n := range s.ModuleNames() {
			for _, r := range sources {
				_ = gg.HasPathAvoiding(r, n, avoid)
			}
			for _, r := range targets {
				_ = gg.HasPathAvoiding(n, r, avoid)
			}
		}
	})
	rep.Append("A1 memoized fronts (builder)", ms(memo), "1.00x")
	rep.Append("A1 per-query BFS", ms(perQuery), ratio(perQuery, memo))

	// A2: query strategies over one medium Class 4 run.
	s4 := g.Workflow(gen.Class4(), "abl-q")
	rc := gen.Medium()
	r, _, err := g.Run(s4, rc, "abl-run")
	if err != nil {
		panic(err)
	}
	w := warehouse.New(0)
	// Measure the paper's strategy ablation on the legacy string path: with
	// the compact index the cold closure recompute is nearly free and the
	// cold/cached distinction drowns in noise. P1 (ExpCompact) measures
	// indexed vs legacy directly.
	w.SetCompactIndex(false)
	if err := w.RegisterSpec(s4); err != nil {
		panic(err)
	}
	if err := w.LoadRun(r); err != nil {
		panic(err)
	}
	e := provenance.NewEngine(w)
	bio, err := core.BuildRelevant(s4, gen.UBioRelevant(s4))
	if err != nil {
		panic(err)
	}
	finals := r.FinalOutputs()
	root := finals[len(finals)-1]
	// Warm mapping caches once.
	if _, err := e.DeepProvenance(r.ID(), bio, root); err != nil {
		panic(err)
	}
	if _, err := e.DeepProvenanceDirect(r.ID(), bio, root); err != nil {
		panic(err)
	}
	const qreps = 20
	cached := timeIt(qreps, func() {
		if _, err := e.DeepProvenance(r.ID(), bio, root); err != nil {
			panic(err)
		}
	})
	cold := timeIt(qreps, func() {
		w.ResetCache()
		if _, err := e.DeepProvenance(r.ID(), bio, root); err != nil {
			panic(err)
		}
	})
	direct := timeIt(qreps, func() {
		if _, err := e.DeepProvenanceDirect(r.ID(), bio, root); err != nil {
			panic(err)
		}
	})
	rep.Append("A2 project, cached closure (paper)", ms(cached), "1.00x")
	rep.Append("A2 project, cold closure", ms(cold), ratio(cold, cached))
	rep.Append("A2 direct per-view recursion", ms(direct), ratio(direct, cached))
	rep.Notes = append(rep.Notes,
		"direct recursion can be fast but over-approximates multi-step composite inputs;",
		"the projected strategy is exact and its cache powers interactive view switching.")
	return rep
}

func timeIt(repeats int, fn func()) time.Duration {
	start := time.Now()
	for i := 0; i < repeats; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(repeats)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func ratio(a, b time.Duration) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}
