package bench

import "testing"

// TestCompactShape pins the P1 experiment's shape: one row per Table II
// run class, and on the larger runs the indexed path must beat the legacy
// path in both time and allocations (the small-run row is exempt from the
// timing assertion — both paths finish in microseconds there and noise
// dominates).
func TestCompactShape(t *testing.T) {
	rep := ExpCompact(testOptions())
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d\n%s", len(rep.Rows), rep)
	}
	for _, kind := range []string{"small", "medium", "large"} {
		la := cellF(t, rep, kind, "legacy allocs")
		ia := cellF(t, rep, kind, "indexed allocs")
		if ia >= la {
			t.Fatalf("%s: indexed allocs (%v) not below legacy (%v)\n%s", kind, ia, la, rep)
		}
	}
	for _, kind := range []string{"medium", "large"} {
		lm := cellF(t, rep, kind, "legacy ms")
		im := cellF(t, rep, kind, "indexed ms")
		if im >= lm {
			t.Fatalf("%s: indexed path (%v ms) not faster than legacy (%v ms)\n%s", kind, im, lm, rep)
		}
	}
}
