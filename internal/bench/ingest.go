package bench

import (
	"bytes"
	"fmt"
	"runtime"
	"time"

	"repro/internal/gen"
	"repro/internal/warehouse"
)

// ExpIngest (L1) measures the warehouse ingest path: the same multi-run
// warehouse is snapshotted in both formats and reloaded four ways — v1
// (JSON) and v2 (binary frames), each serially (Workers=1) and with the
// default parallel worker pool — timing the full load (decode, reconstruct,
// validate, conformance-check, compact-index build) and counting its heap
// allocations. The headline column is v2 parallel against v1 serial: the
// old path versus everything this PR's ingest work buys. On a single-core
// host the parallel columns track the serial ones and the speedup is the
// format + interned-reconstruction win alone; with more cores the frame-
// parallel decode widens it.
func ExpIngest(o Options) *Report {
	rep := &Report{
		ID:    "L1",
		Title: "Snapshot ingest: v1 JSON vs v2 binary frames, serial vs parallel",
		Headers: []string{"run kind", "runs", "steps", "v1 KB", "v2 KB",
			"v1 ser ms", "v1 par ms", "v2 ser ms", "v2 par ms", "speedup", "alloc ratio"},
	}
	g := gen.NewGenerator(o.Seed + 13)
	for _, rc := range runClasses(o) {
		s := g.Workflow(gen.Class4(), "l1-"+rc.Name)
		w := warehouse.New(0)
		if err := w.RegisterSpec(s); err != nil {
			continue
		}
		nRuns := o.RunsPerKind
		if nRuns < 1 {
			nRuns = 1
		}
		ok := true
		for i := 0; i < nRuns; i++ {
			r, _, err := g.Run(s, rc, fmt.Sprintf("l1-%s-r%d", rc.Name, i))
			if err != nil || w.LoadRun(r) != nil {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		st := w.Stats()

		var v1, v2 bytes.Buffer
		if w.Save(&v1) != nil || w.SaveBinary(&v2) != nil {
			continue
		}
		reps := 10
		if st.Steps > 3000 {
			reps = 3
		}
		v1ser, v1allocs, err1 := measureLoad(v1.Bytes(), 1, reps)
		v1par, _, err2 := measureLoad(v1.Bytes(), 0, reps)
		v2ser, _, err3 := measureLoad(v2.Bytes(), 1, reps)
		v2par, v2allocs, err4 := measureLoad(v2.Bytes(), 0, reps)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			continue
		}
		speedup, allocRatio := "-", "-"
		if v2par > 0 {
			speedup = fmt.Sprintf("%.2fx", v1ser/v2par)
		}
		if v2allocs > 0 {
			allocRatio = fmt.Sprintf("%.2fx", float64(v1allocs)/float64(v2allocs))
		}
		rep.Append(rc.Name, nRuns, st.Steps,
			fmt.Sprintf("%.1f", float64(v1.Len())/1024),
			fmt.Sprintf("%.1f", float64(v2.Len())/1024),
			v1ser, v1par, v2ser, v2par, speedup, allocRatio)
	}
	rep.Notes = append(rep.Notes,
		"speedup = v1 serial / v2 parallel (the upgrade a deployment sees); the v2 win",
		"is length-prefixed frames + interned-id reconstruction that pre-builds the",
		"compact index from integer tables, skipping every natural-order string sort;",
		"on a single-core host the parallel columns equal the serial ones.")
	return rep
}

// measureLoad loads a snapshot image reps times with the given worker count
// and returns the average wall-clock milliseconds and heap allocations per
// load.
func measureLoad(image []byte, workers, reps int) (avgMS float64, allocsPerOp uint64, err error) {
	// One warm-up load keeps one-time costs (lazy runtime setup) out of the
	// measurement.
	if _, err := warehouse.LoadWith(bytes.NewReader(image), 0, warehouse.LoadOptions{Workers: workers}); err != nil {
		return 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := warehouse.LoadWith(bytes.NewReader(image), 0, warehouse.LoadOptions{Workers: workers}); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	avgMS = float64(elapsed.Microseconds()) / float64(reps) / 1000
	allocsPerOp = (after.Mallocs - before.Mallocs) / uint64(reps)
	return avgMS, allocsPerOp, nil
}
