package bench

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/server"
	"repro/internal/warehouse"
	"repro/zoom/client"
)

// obsClusterClients is the concurrent client count for the O3 drive —
// enough to keep both shards busy without queueing dominating the tail.
const obsClusterClients = 4

// ExpObsCluster (O3) pins the cost of the cluster observability plane on
// the routed query path. Three drives of the same workload through the
// same 2-shard cluster: the untraced baseline (tracing machinery present
// but dormant — the state every production request is in), the untraced
// path with the router slowlog capturing EVERY request (threshold < 0,
// the worst-case slowlog configuration), and ?trace=1 on every request —
// worker span trees returned inline, stitched under the router's attempt
// spans. The first two rows must agree within noise: spans and the
// slowlog ring cost nothing until a request opts in. The traced row pays
// for span recording, JSON re-encoding, and the splice; that delta is
// the published price of a stitched distributed trace.
func ExpObsCluster(o Options) *Report {
	rep := &Report{
		ID:    "O3",
		Title: "Cluster observability overhead: untraced vs slowlog-all vs stitched ?trace=1",
		Headers: []string{"config", "queries", "clients",
			"throughput q/s", "p50 ms", "p99 ms", "slowlog entries"},
	}

	// Corpus: medium runs over 2 shards. Queries are served unguarded (no
	// capacity gate) — O3 measures the router/worker code path itself, so
	// an artificial service floor would only bury the overhead.
	g := gen.NewGenerator(o.Seed + 31)
	classes := gen.Classes()
	sp := g.Workflow(classes[len(classes)-1], "o3-wf")
	medium := runClasses(o)[1]
	nRuns := 2 * o.RunsPerKind
	targetsPerRun := o.Trials + 2

	full := warehouse.New(0)
	if err := full.RegisterSpec(sp); err != nil {
		panic(err)
	}
	var queries []shardQuery
	for i := 0; i < nRuns; i++ {
		r, _, err := g.Run(sp, medium, fmt.Sprintf("o3-run-%02d", i))
		if err != nil {
			panic(err)
		}
		if err := full.LoadRun(r); err != nil {
			panic(err)
		}
		all := r.AllData()
		step := len(all) / targetsPerRun
		if step < 1 {
			step = 1
		}
		for j, taken := 0, 0; j < len(all) && taken < targetsPerRun; j, taken = j+step, taken+1 {
			queries = append(queries, shardQuery{run: r.ID(), data: all[j]})
		}
	}
	rand.New(rand.NewSource(o.Seed+31)).Shuffle(len(queries), func(i, j int) {
		queries[i], queries[j] = queries[j], queries[i]
	})

	const shards = 2
	ring, err := cluster.NewRing(shards, 0)
	if err != nil {
		panic(err)
	}

	configs := []struct {
		name  string
		trace bool
		cfg   cluster.Config
	}{
		// Default threshold (10ms): small queries stay out of the slowlog.
		{"routed untraced", false, cluster.Config{}},
		{"routed untraced slowlog-all", false, cluster.Config{SlowThreshold: -1}},
		{"routed traced+stitched", true, cluster.Config{SlowThreshold: -1}},
	}
	for _, c := range configs {
		// A fresh cluster per row: closure caches and the slowlog start
		// cold, so rows differ only in the observability configuration.
		groups := make([][]string, shards)
		var workers []*httptest.Server
		for k := 0; k < shards; k++ {
			sub, err := full.Subset(func(id string) bool { return ring.Place(id) == k })
			if err != nil {
				panic(err)
			}
			reg := obs.NewRegistry()
			sub.AttachMetrics(reg)
			s, err := server.New(reg, server.Config{})
			if err != nil {
				panic(err)
			}
			s.SetEngine(provenance.NewEngine(sub))
			ts := httptest.NewServer(s.Handler())
			workers = append(workers, ts)
			groups[k] = []string{ts.URL}
		}
		c.cfg.Shards = groups
		rt, err := cluster.New(obs.NewRegistry(), c.cfg)
		if err != nil {
			panic(err)
		}
		front := httptest.NewServer(rt.Handler())
		cl := client.New(front.URL, client.Options{})

		ctx := context.Background()
		lat := make([]time.Duration, len(queries))
		var next atomic.Int64
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < obsClusterClients; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(len(queries)) {
						return
					}
					qs := time.Now()
					_, err := cl.Query(ctx, client.QueryRequest{
						Run: queries[i].run, Data: queries[i].data, Trace: c.trace,
					})
					lat[i] = time.Since(qs)
					if err != nil {
						panic(fmt.Sprintf("O3 %s: query %s/%s: %v", c.name, queries[i].run, queries[i].data, err))
					}
				}
			}()
		}
		wg.Wait()
		wall := time.Since(start)
		rep.Append(c.name, len(queries), obsClusterClients,
			float64(len(queries))/wall.Seconds(),
			ms(percentileDuration(lat, 0.50)), ms(percentileDuration(lat, 0.99)),
			rt.SlowLog().Len())

		front.Close()
		for _, ts := range workers {
			ts.Close()
		}
	}

	rep.Notes = append(rep.Notes,
		"Same workload, same 2-shard cluster, three observability configurations.",
		"Row 1 is the production default: tracing dormant, slowlog at the 10ms",
		"threshold. Row 2 forces every request through the slowlog ring (threshold",
		"< 0) without client-visible tracing — it must match row 1 within noise,",
		"since the captured tree is the router's own spans only. Row 3 sends",
		"?trace=1 on every request: the worker builds and returns its span tree",
		"and the router splices it under the winning attempt span (a decode,",
		"re-encode, and byte splice per response). Production requests opt into",
		"that cost one request at a time; this row is the worst case, not a tax.",
		"Loopback transport as in S1/S2: deltas are directional, not absolute.")
	return rep
}
