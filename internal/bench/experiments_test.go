package bench

import (
	"strconv"
	"strings"
	"testing"
)

// testOptions is small enough for CI but large enough that the paper's
// qualitative shapes are statistically stable.
func testOptions() Options {
	o := Default()
	o.WorkflowsPerClass = 2
	o.RunsPerKind = 2
	o.Trials = 2
	o.ScaleSpecs = 6
	o.MaxSpecNodes = 300
	o.LargeRunCap = 1500
	return o
}

func cellF(t *testing.T, r *Report, row, col string) float64 {
	t.Helper()
	s, ok := r.Cell(row, col)
	if !ok {
		t.Fatalf("%s: missing cell (%s, %s)\n%s", r.ID, row, col, r)
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%s,%s) = %q not numeric", r.ID, row, col, s)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	rep := ExpTable1(testOptions())
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Class1 averages ~12 modules (the real-workflow statistic).
	c1 := cellF(t, rep, "Class1", "avg modules")
	if c1 < 12 || c1 > 18 {
		t.Fatalf("Class1 avg modules = %v, want ~12", c1)
	}
	// Class4 must have by far the most loops.
	l4 := cellF(t, rep, "Class4", "avg loops")
	l2 := cellF(t, rep, "Class2", "avg loops")
	if l4 <= l2 {
		t.Fatalf("Class4 loops (%v) not above Class2 (%v)", l4, l2)
	}
	if l4 < 3 {
		t.Fatalf("Class4 avg loops = %v, want >= 3 (50%% loop pattern)", l4)
	}
}

func TestTable2Shape(t *testing.T) {
	rep := ExpTable2(testOptions())
	small := cellF(t, rep, "small", "avg steps")
	medium := cellF(t, rep, "medium", "avg steps")
	large := cellF(t, rep, "large", "avg steps")
	if !(small < medium && medium < large) {
		t.Fatalf("run sizes not increasing: %v %v %v", small, medium, large)
	}
	dSmall := cellF(t, rep, "small", "avg data")
	dLarge := cellF(t, rep, "large", "avg data")
	if dSmall >= dLarge {
		t.Fatalf("data volumes not increasing: %v vs %v", dSmall, dLarge)
	}
}

func TestScalabilityShape(t *testing.T) {
	rep := ExpScalability(testOptions())
	if len(rep.Rows) == 0 {
		t.Fatal("no scalability buckets")
	}
	for _, row := range rep.Rows {
		max, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad max ms %q", row[3])
		}
		// The paper's bound is 80 ms on 2008 hardware; we allow a very
		// generous 2000 ms so the assertion is about asymptotics, not the
		// host machine.
		if max > 2000 {
			t.Fatalf("builder took %v ms on bucket %s", max, row[0])
		}
	}
}

func TestOptimalityShape(t *testing.T) {
	rep := ExpOptimality(testOptions())
	if len(rep.Rows) != 11 {
		t.Fatalf("rows = %d, want 11 (0..100 step 10)", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		extra, _ := strconv.ParseFloat(row[3], 64)
		// "adding one relevant class creates only one new composite class":
		// the surplus beyond |R| stays tiny at every percentage.
		if extra > 2.5 {
			t.Fatalf("extra composites at %s%% = %v, want small", row[0], extra)
		}
		if extra < 0 {
			t.Fatalf("view smaller than |R| at %s%%", row[0])
		}
	}
	// At 100% relevant the view is exactly UAdmin: zero extra composites.
	if extra := cellF(t, rep, "100", "avg extra composites"); extra != 0 {
		t.Fatalf("100%% relevant must give zero extra composites, got %v", extra)
	}
}

func TestFig10Shape(t *testing.T) {
	rep := ExpFig10(testOptions())
	if len(rep.Rows) != 12 {
		t.Fatalf("rows = %d, want 4 classes x 3 kinds", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		admin, _ := strconv.ParseFloat(row[1], 64)
		bio, _ := strconv.ParseFloat(row[2], 64)
		bb, _ := strconv.ParseFloat(row[3], 64)
		if !(admin >= bio && bio >= bb) {
			t.Fatalf("%s: sizes not monotone in view coarseness: %v %v %v", row[0], admin, bio, bb)
		}
		if bb < 1 {
			t.Fatalf("%s: black box must at least show the root", row[0])
		}
	}
	// Loops hide most: Class4 medium/large UBio is a small fraction of
	// UAdmin (the paper reports up to 90% hidden).
	for _, key := range []string{"Class4/run2", "Class4/run3"} {
		ratio := cellF(t, rep, key, "UBio/UAdmin")
		if ratio > 0.5 {
			t.Fatalf("%s: UBio/UAdmin = %v, want <= 0.5 (loop hiding)", key, ratio)
		}
	}
}

func TestQueryTimeShape(t *testing.T) {
	rep := ExpQueryTime(testOptions())
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	small := cellF(t, rep, "small", "avg steps")
	large := cellF(t, rep, "large", "avg steps")
	if small >= large {
		t.Fatalf("step counts not increasing: %v vs %v", small, large)
	}
	for _, row := range rep.Rows {
		avg, _ := strconv.ParseFloat(row[3], 64)
		if avg <= 0 {
			t.Fatalf("%s: no time measured", row[0])
		}
	}
}

func TestViewSwitchShape(t *testing.T) {
	rep := ExpViewSwitch(testOptions())
	// On medium and large runs the warm switch must beat the cold query —
	// the paper's core interactivity claim.
	for _, kind := range []string{"medium", "large"} {
		cold := cellF(t, rep, kind, "avg cold ms")
		sw := cellF(t, rep, kind, "avg switch ms")
		if sw >= cold {
			t.Fatalf("%s: switch (%v ms) not cheaper than cold (%v ms)", kind, sw, cold)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	rep := ExpFig11(testOptions())
	if len(rep.Rows) != 11 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	for col := 1; col <= 3; col++ {
		first, errF := strconv.ParseFloat(rep.Rows[0][col], 64)
		last, errL := strconv.ParseFloat(rep.Rows[len(rep.Rows)-1][col], 64)
		if errF != nil || errL != nil {
			t.Fatalf("column %d not numeric", col)
		}
		// Granularity effect: full relevance shows strictly more than none.
		if last <= first {
			t.Fatalf("column %d: size at 100%% (%v) not above 0%% (%v)", col, last, first)
		}
		// Broad monotonicity: at most a third of adjacent pairs may invert
		// (random views are noisy at small sample sizes).
		inversions := 0
		prev := first
		for i := 1; i < len(rep.Rows); i++ {
			cur, _ := strconv.ParseFloat(rep.Rows[i][col], 64)
			if cur < prev {
				inversions++
			}
			prev = cur
		}
		if inversions > 3 {
			t.Fatalf("column %d: %d inversions, series not broadly monotone\n%s",
				col, inversions, rep)
		}
	}
}

func TestReportRendering(t *testing.T) {
	rep := &Report{ID: "X", Title: "t", Headers: []string{"a", "b"}}
	rep.Append("k", 1.234)
	rep.Notes = append(rep.Notes, "hello")
	out := rep.String()
	for _, want := range []string{"== X: t ==", "k  1.23", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if _, ok := rep.Cell("k", "b"); !ok {
		t.Fatal("Cell lookup failed")
	}
	if _, ok := rep.Cell("k", "zzz"); ok {
		t.Fatal("unknown column found")
	}
	if _, ok := rep.Cell("zzz", "b"); ok {
		t.Fatal("unknown row found")
	}
}

func TestMinimumGapShape(t *testing.T) {
	rep := ExpMinimumGap(testOptions())
	// The fixture row is always present and always shows the gap.
	gapPct, ok := rep.Cell("figure7", "gap %")
	if !ok || gapPct != "100.00" {
		t.Fatalf("figure7 row wrong: %q %v\n%s", gapPct, ok, rep)
	}
	avg := cellF(t, rep, "figure7", "avg gap")
	if avg != 2 {
		t.Fatalf("figure7 gap = %v, want 2 (builder 5 vs minimum 3)", avg)
	}
	// Random rows exist for sizes 4-6 and never report negative gaps.
	for _, n := range []string{"4", "5", "6"} {
		if v := cellF(t, rep, n, "avg gap"); v < 0 {
			t.Fatalf("negative gap at size %s", n)
		}
	}
}

func TestAblationShape(t *testing.T) {
	rep := ExpAblation(testOptions())
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d\n%s", len(rep.Rows), rep)
	}
	memo := cellF(t, rep, "A1 memoized fronts (builder)", "avg ms")
	per := cellF(t, rep, "A1 per-query BFS", "avg ms")
	if per <= memo {
		t.Fatalf("per-query BFS (%v ms) not slower than memoized (%v ms)", per, memo)
	}
	cached := cellF(t, rep, "A2 project, cached closure (paper)", "avg ms")
	cold := cellF(t, rep, "A2 project, cold closure", "avg ms")
	if cold <= cached {
		t.Fatalf("cold (%v ms) not slower than cached (%v ms)", cold, cached)
	}
}

func TestReportCSV(t *testing.T) {
	rep := &Report{ID: "X", Title: "t", Headers: []string{"a", "b"}}
	rep.Append("k,1", 2.5)
	rep.Append(`say "hi"`, 1)
	got := rep.CSV()
	want := "a,b\n\"k,1\",2.50\n\"say \"\"hi\"\"\",1\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
