package core

import (
	"fmt"
	"sort"

	"repro/internal/spec"
)

// Analysis precomputes the nr-path machinery of Section III for one
// (specification, relevant set) pair:
//
//	rpred(n) = { r in R ∪ {input}  | there is an nr-path from r to n }
//	rsucc(n) = { r in R ∪ {output} | there is an nr-path from n to r }
//
// where an nr-path is a path containing no relevant *intermediate* module.
// Both maps are materialized with |R|+1 filtered BFS traversals each, giving
// the O(|N|² + |E|) bound the paper states for the builder.
type Analysis struct {
	s        *spec.Spec
	relevant map[string]bool
	rpred    map[string]map[string]bool
	rsucc    map[string]map[string]bool

	// Memoized sorted forms: the builder's Step 3 interrogates rpred/rsucc
	// of the same nodes over and over while probing merges, so sorting on
	// every call would dominate the whole algorithm on large inputs.
	rpredSorted map[string][]string
	rsuccSorted map[string][]string
}

// NewAnalysis validates the relevant set (every entry must be a module of
// s, duplicates are tolerated) and computes rpred/rsucc for every module.
func NewAnalysis(s *spec.Spec, relevant []string) (*Analysis, error) {
	a := &Analysis{
		s:           s,
		relevant:    make(map[string]bool, len(relevant)),
		rpred:       make(map[string]map[string]bool),
		rsucc:       make(map[string]map[string]bool),
		rpredSorted: make(map[string][]string),
		rsuccSorted: make(map[string][]string),
	}
	for _, r := range relevant {
		if !s.HasModule(r) {
			return nil, fmt.Errorf("core: relevant module %q not in spec %q: %w", r, s.Name(), ErrBadRelevant)
		}
		a.relevant[r] = true
	}
	g := s.Graph()
	avoid := func(n string) bool { return a.relevant[n] }

	add := func(m map[string]map[string]bool, key, val string) {
		set, ok := m[key]
		if !ok {
			set = make(map[string]bool)
			m[key] = set
		}
		set[val] = true
	}

	sources := append(a.sortedRelevant(), spec.Input)
	for _, r := range sources {
		for n := range g.ReachAvoiding(r, avoid) {
			add(a.rpred, n, r)
		}
	}
	targets := append(a.sortedRelevant(), spec.Output)
	for _, r := range targets {
		for n := range g.ReachBackAvoiding(r, avoid) {
			add(a.rsucc, n, r)
		}
	}
	return a, nil
}

// Spec returns the analyzed specification.
func (a *Analysis) Spec() *spec.Spec { return a.s }

// Relevant returns the sorted relevant modules.
func (a *Analysis) Relevant() []string { return a.sortedRelevant() }

// IsRelevant reports whether module n is in R.
func (a *Analysis) IsRelevant(n string) bool { return a.relevant[n] }

// RPred returns rpred(n), sorted. The slice is memoized and must not be
// mutated by the caller.
func (a *Analysis) RPred(n string) []string {
	if cached, ok := a.rpredSorted[n]; ok {
		return cached
	}
	out := setToSorted(a.rpred[n])
	a.rpredSorted[n] = out
	return out
}

// RSucc returns rsucc(n), sorted. The slice is memoized and must not be
// mutated by the caller.
func (a *Analysis) RSucc(n string) []string {
	if cached, ok := a.rsuccSorted[n]; ok {
		return cached
	}
	out := setToSorted(a.rsucc[n])
	a.rsuccSorted[n] = out
	return out
}

// RPredSet returns rpred(n) as a set; the map must not be mutated.
func (a *Analysis) RPredSet(n string) map[string]bool { return a.rpred[n] }

// RSuccSet returns rsucc(n) as a set; the map must not be mutated.
func (a *Analysis) RSuccSet(n string) map[string]bool { return a.rsucc[n] }

// RPredOfSet returns rpredM(M) = ∪_{n in M} rpred(n), sorted.
func (a *Analysis) RPredOfSet(members []string) []string {
	return setToSorted(a.unionOf(a.rpred, members))
}

// RSuccOfSet returns rsuccM(M) = ∪_{n in M} rsucc(n), sorted.
func (a *Analysis) RSuccOfSet(members []string) []string {
	return setToSorted(a.unionOf(a.rsucc, members))
}

// HasNRPath reports whether there is an nr-path from one node to another
// (endpoints may be relevant, INPUT or OUTPUT; intermediates must not be
// relevant).
func (a *Analysis) HasNRPath(from, to string) bool {
	return a.s.Graph().HasPathAvoiding(from, to, func(n string) bool { return a.relevant[n] })
}

func (a *Analysis) sortedRelevant() []string {
	out := make([]string, 0, len(a.relevant))
	for r := range a.relevant {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

func (a *Analysis) unionOf(m map[string]map[string]bool, members []string) map[string]bool {
	out := make(map[string]bool)
	for _, n := range members {
		for r := range m[n] {
			out[r] = true
		}
	}
	return out
}

func setToSorted(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sameSet(a map[string]bool, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func sameSortedSlice(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
