package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/spec"
)

// randomSpec builds a random valid specification with n modules. With
// probability ~1/3 a back edge is added, producing cyclic specifications so
// that the theorem is exercised on loops too.
func randomSpec(rng *rand.Rand, n int) *spec.Spec {
	s := spec.New(fmt.Sprintf("rand%d", rng.Int63()))
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("m%02d", i)
		s.MustAddModule(spec.Module{Name: names[i]})
	}
	// Forward edges keep the base acyclic and connected-ish.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Intn(3) == 0 {
				s.MustAddEdge(names[i], names[j])
			}
		}
	}
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 || s.Graph().InDegree(names[i]) == 0 {
			s.MustAddEdge(spec.Input, names[i])
		}
		if rng.Intn(3) == 0 || s.Graph().OutDegree(names[i]) == 0 {
			s.MustAddEdge(names[i], spec.Output)
		}
	}
	// Occasionally close a loop.
	if n >= 3 && rng.Intn(3) == 0 {
		i := 1 + rng.Intn(n-1)
		j := rng.Intn(i)
		s.MustAddEdge(names[i], names[j])
	}
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("randomSpec produced invalid spec: %v", err))
	}
	return s
}

// randomRelevant draws k distinct relevant modules.
func randomRelevant(rng *rand.Rand, s *spec.Spec, k int) []string {
	names := s.ModuleNames()
	perm := rng.Perm(len(names))
	if k > len(names) {
		k = len(names)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = names[perm[i]]
	}
	return out
}

// TestTheorem1 is the statistical version of Theorem 1: on hundreds of
// random specifications (cyclic and acyclic) and random relevant sets, the
// builder's output satisfies Properties 1-3 (edge level and path level) and
// is minimal.
func TestTheorem1(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 200
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(8)
		s := randomSpec(rng, n)
		rel := randomRelevant(rng, s, rng.Intn(n+1))
		v, err := BuildRelevant(s, rel)
		if err != nil {
			t.Fatalf("trial %d: builder failed: %v\nspec: %v\nrel: %v", trial, err, s.Edges(), rel)
		}
		if err := CheckAll(v, rel); err != nil {
			t.Fatalf("trial %d: properties violated: %v\nspec: %v\nrel: %v\nview: %v",
				trial, err, s.Edges(), rel, v)
		}
		if err := PreservesPathLevel(v, rel); err != nil {
			t.Fatalf("trial %d: path level violated: %v\nspec: %v\nrel: %v\nview: %v",
				trial, err, s.Edges(), rel, v)
		}
		if ok, w := Minimal(v, rel); !ok {
			t.Fatalf("trial %d: not minimal, merge %v possible\nspec: %v\nrel: %v\nview: %v",
				trial, w, s.Edges(), rel, v)
		}
	}
}

// TestTheorem1Structure checks the two structural corollaries stated in
// Section III on random inputs: relevant composites are connected, and
// acyclic specifications induce acyclic views.
func TestTheorem1Structure(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	trials := 150
	if testing.Short() {
		trials = 30
	}
	for trial := 0; trial < trials; trial++ {
		n := 3 + rng.Intn(8)
		s := randomSpec(rng, n)
		rel := randomRelevant(rng, s, 1+rng.Intn(n))
		v, err := BuildRelevant(s, rel)
		if err != nil {
			t.Fatal(err)
		}
		if err := RelevantCompositeConnected(v, rel); err != nil {
			t.Fatalf("trial %d: %v\nspec: %v\nrel: %v\nview: %v", trial, err, s.Edges(), rel, v)
		}
		if s.IsAcyclic() && !v.Induced().IsAcyclic() {
			t.Fatalf("trial %d: acyclic spec induced a cyclic view\nspec: %v\nrel: %v\nview: %v",
				trial, s.Edges(), rel, v)
		}
	}
}

// TestBuilderEveryRelevantGetsComposite checks observation (i): the user
// sees one composite for each relevant module, and by Property 1 no two
// relevant modules share one.
func TestBuilderEveryRelevantGetsComposite(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		s := randomSpec(rng, 3+rng.Intn(6))
		rel := randomRelevant(rng, s, 1+rng.Intn(3))
		v, err := BuildRelevant(s, rel)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool)
		for _, r := range rel {
			c, ok := v.CompositeOf(r)
			if !ok {
				t.Fatalf("relevant %s has no composite", r)
			}
			if seen[c] {
				t.Fatalf("two relevant modules share composite %s", c)
			}
			seen[c] = true
		}
	}
}

// TestBuilderViewSizeLowerBound: |U| >= |R| always, and |U| >= 1.
func TestBuilderViewSizeLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		s := randomSpec(rng, 2+rng.Intn(7))
		rel := randomRelevant(rng, s, rng.Intn(4))
		v, err := BuildRelevant(s, rel)
		if err != nil {
			t.Fatal(err)
		}
		if v.Size() < len(rel) || v.Size() < 1 {
			t.Fatalf("size %d below lower bound |R|=%d", v.Size(), len(rel))
		}
	}
}
