package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/spec"
)

func TestAnalysisValidation(t *testing.T) {
	s := spec.Phylogenomics()
	if _, err := NewAnalysis(s, []string{"M99"}); !errors.Is(err, ErrBadRelevant) {
		t.Fatalf("unknown relevant module accepted: %v", err)
	}
	a, err := NewAnalysis(s, []string{"M3", "M3", "M7"}) // duplicates tolerated
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Relevant(); !reflect.DeepEqual(got, []string{"M3", "M7"}) {
		t.Fatalf("Relevant = %v", got)
	}
	if !a.IsRelevant("M3") || a.IsRelevant("M4") {
		t.Fatal("IsRelevant wrong")
	}
}

func TestAnalysisFigure6Values(t *testing.T) {
	// The paper states these rpred/rsucc values verbatim in Section III.
	s, relevant := spec.Figure6()
	a, err := NewAnalysis(s, relevant)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		node  string
		rpred []string
		rsucc []string
	}{
		{"M1", []string{spec.Input}, []string{"M3", "M6", spec.Output}},
		{"M2", []string{spec.Input}, []string{"M3"}},
		{"M4", []string{spec.Input}, []string{"M3", spec.Output}},
		{"M5", []string{spec.Input}, []string{"M3", spec.Output}},
		{"M7", []string{spec.Input, "M6"}, []string{spec.Output}},
		{"M8", []string{"M6"}, []string{spec.Output}},
	}
	for _, tc := range cases {
		if got := a.RPred(tc.node); !reflect.DeepEqual(got, sortedCopy(tc.rpred)) {
			t.Errorf("rpred(%s) = %v, want %v", tc.node, got, tc.rpred)
		}
		if got := a.RSucc(tc.node); !reflect.DeepEqual(got, sortedCopy(tc.rsucc)) {
			t.Errorf("rsucc(%s) = %v, want %v", tc.node, got, tc.rsucc)
		}
	}
}

func TestAnalysisPhylogenomicsIntro(t *testing.T) {
	// Section II: "there exists an nr-path from input to M2, but not from
	// input to M7, since all paths connecting these two modules contain an
	// intermediate node in R (M2, M3)."
	s := spec.Phylogenomics()
	a, err := NewAnalysis(s, spec.PhyloRelevantJoe())
	if err != nil {
		t.Fatal(err)
	}
	if !a.HasNRPath(spec.Input, "M2") {
		t.Fatal("expected nr-path input -> M2")
	}
	if a.HasNRPath(spec.Input, "M7") {
		t.Fatal("unexpected nr-path input -> M7")
	}
	if got := a.RPred("M7"); !reflect.DeepEqual(got, []string{"M2", "M3"}) {
		t.Fatalf("rpred(M7) = %v, want [M2 M3]", got)
	}
}

func TestAnalysisSetUnions(t *testing.T) {
	s, relevant := spec.Figure6()
	a, _ := NewAnalysis(s, relevant)
	got := a.RSuccOfSet([]string{"M1", "M4", "M5"})
	want := []string{"M3", "M6", spec.Output}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rsuccM({M1,M4,M5}) = %v, want %v", got, want)
	}
	gotP := a.RPredOfSet([]string{"M1", "M4", "M5"})
	if !reflect.DeepEqual(gotP, []string{spec.Input}) {
		t.Fatalf("rpredM({M1,M4,M5}) = %v, want [INPUT]", gotP)
	}
	if a.RPredOfSet(nil) != nil {
		t.Fatal("union of empty set should be nil")
	}
}

func TestAnalysisEmptyRelevant(t *testing.T) {
	s := spec.Phylogenomics()
	a, err := NewAnalysis(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range s.ModuleNames() {
		if got := a.RPred(m); !reflect.DeepEqual(got, []string{spec.Input}) {
			t.Fatalf("rpred(%s) = %v with empty R", m, got)
		}
		if got := a.RSucc(m); !reflect.DeepEqual(got, []string{spec.Output}) {
			t.Fatalf("rsucc(%s) = %v with empty R", m, got)
		}
	}
}

func TestAnalysisLoopNodes(t *testing.T) {
	// In the phylogenomics loop M3 -> M4 -> M5 -> M3 with Joe's relevant
	// set, M4 and M5 sit between executions of M3: rpred must contain M3,
	// and M4 additionally reaches M7 while M5 only returns to M3.
	s := spec.Phylogenomics()
	a, _ := NewAnalysis(s, spec.PhyloRelevantJoe())
	if got := a.RPred("M4"); !reflect.DeepEqual(got, []string{"M3"}) {
		t.Fatalf("rpred(M4) = %v", got)
	}
	if got := a.RSucc("M4"); !reflect.DeepEqual(got, []string{"M3", "M7"}) {
		t.Fatalf("rsucc(M4) = %v", got)
	}
	if got := a.RSucc("M5"); !reflect.DeepEqual(got, []string{"M3"}) {
		t.Fatalf("rsucc(M5) = %v", got)
	}
}

func sortedCopy(xs []string) []string {
	out := append([]string(nil), xs...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
