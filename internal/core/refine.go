package core

import (
	"fmt"
	"sort"

	"repro/internal/spec"
)

// This file implements the view-evolution operations of Sections IV and
// VII: "As the user's needs evolve, he may modify (add or remove) the set
// of modules he considers to be relevant", and "our approach can be used in
// conjunction with other composite module construction techniques ... by
// viewing each composite module as itself being a workflow and marking
// relevant atomic modules contained within it".

// AddRelevant rebuilds the view after flagging one more module relevant —
// the interactive UserViewBuilder loop of the prototype, where the user
// "visualizes the new user view each time he flags or unflags a module".
func AddRelevant(s *spec.Spec, relevant []string, module string) (*UserView, []string, error) {
	for _, r := range relevant {
		if r == module {
			v, err := BuildRelevant(s, relevant)
			return v, relevant, err
		}
	}
	next := append(append([]string(nil), relevant...), module)
	sort.Strings(next)
	v, err := BuildRelevant(s, next)
	return v, next, err
}

// RemoveRelevant rebuilds the view after unflagging a module.
func RemoveRelevant(s *spec.Spec, relevant []string, module string) (*UserView, []string, error) {
	next := make([]string, 0, len(relevant))
	for _, r := range relevant {
		if r != module {
			next = append(next, r)
		}
	}
	v, err := BuildRelevant(s, next)
	return v, next, err
}

// SubSpec extracts one composite of a view as a standalone workflow
// specification: the composite's members keep their names and the edges
// among them; every edge arriving from outside the composite becomes an
// INPUT edge and every edge leaving it an OUTPUT edge. This is the
// "viewing each composite module as itself being a workflow" construction.
func SubSpec(v *UserView, composite string) (*spec.Spec, error) {
	members := v.Members(composite)
	if members == nil {
		return nil, fmt.Errorf("core: unknown composite %q: %w", composite, ErrBadView)
	}
	inside := toSet(members)
	sub := spec.New(v.spec.Name() + "/" + composite)
	for _, m := range members {
		mod, _ := v.spec.Module(m)
		if err := sub.AddModule(mod); err != nil {
			return nil, err
		}
	}
	var addErr error
	v.spec.Graph().EachEdge(func(from, to string) {
		if addErr != nil {
			return
		}
		switch {
		case inside[from] && inside[to]:
			addErr = sub.AddEdge(from, to)
		case inside[to]: // entering the composite
			if !sub.Graph().HasEdge(spec.Input, to) {
				addErr = sub.AddEdge(spec.Input, to)
			}
		case inside[from]: // leaving the composite
			if !sub.Graph().HasEdge(from, spec.Output) {
				addErr = sub.AddEdge(from, spec.Output)
			}
		}
	})
	if addErr != nil {
		return nil, addErr
	}
	if err := sub.Validate(); err != nil {
		return nil, fmt.Errorf("core: composite %q does not form a valid sub-workflow: %w", composite, err)
	}
	return sub, nil
}

// RefineComposite splits one composite of a view by running
// RelevUserViewBuilder *inside* it: the composite is treated as its own
// workflow (SubSpec), the given modules are marked relevant within it, and
// the resulting sub-view's blocks replace the original composite. Relevant
// sub-blocks keep their relevant module's name; non-relevant sub-blocks are
// namespaced as <composite>/NRi.
//
// The refined view is a strictly finer (or equal) partition, so everything
// visible before stays visible; hierarchy lets a user drill into exactly
// one box of their provenance graph.
func RefineComposite(v *UserView, composite string, relevantInside []string) (*UserView, error) {
	sub, err := SubSpec(v, composite)
	if err != nil {
		return nil, err
	}
	for _, r := range relevantInside {
		if !sub.HasModule(r) {
			return nil, fmt.Errorf("core: module %q is not inside composite %q: %w", r, composite, ErrBadRelevant)
		}
	}
	subView, err := BuildRelevant(sub, relevantInside)
	if err != nil {
		return nil, err
	}
	blocks := v.Blocks()
	delete(blocks, composite)
	relSet := toSet(relevantInside)
	for _, name := range subView.Composites() {
		members := subView.Members(name)
		newName := name
		if !containsRelevant(members, relSet) {
			newName = composite + "/" + name
		}
		if _, clash := blocks[newName]; clash {
			newName = composite + "/" + newName
		}
		blocks[newName] = members
	}
	return NewUserView(v.spec, blocks)
}

// Refines reports whether view a is a refinement of view b: every block of
// a is contained in some block of b. UAdmin refines every view; every view
// refines UBlackBox.
func Refines(a, b *UserView) bool {
	if a.spec != b.spec && a.spec.Name() != b.spec.Name() {
		return false
	}
	for _, blockA := range a.blocks {
		owner, ok := b.CompositeOf(blockA[0])
		if !ok {
			return false
		}
		for _, m := range blockA[1:] {
			if o, _ := b.CompositeOf(m); o != owner {
				return false
			}
		}
	}
	return true
}

func containsRelevant(members []string, rel map[string]bool) bool {
	for _, m := range members {
		if rel[m] {
			return true
		}
	}
	return false
}
