package core

import (
	"testing"

	"repro/internal/gen"
)

// FuzzRelevUserViewBuilder throws random unstructured DAGs and random
// relevant sets at RelevUserViewBuilder and checks the paper's guarantees
// on every output: Properties 1-3 (well-formedness, dataflow preservation,
// completeness) always hold, and the view is minimal (Theorem 1 — no
// pairwise composite merge preserves the properties). The generator is the
// same RandomDAG the minimal-vs-minimum experiment uses, so the fuzz
// corpus is just (seed, size, percent) triples.
func FuzzRelevUserViewBuilder(f *testing.F) {
	f.Add(int64(1), uint8(6), uint8(30))
	f.Add(int64(42), uint8(12), uint8(50))
	f.Add(int64(7), uint8(3), uint8(0))
	f.Add(int64(99), uint8(11), uint8(100))
	f.Add(int64(-5), uint8(8), uint8(80))
	f.Fuzz(func(t *testing.T, seed int64, size, pct uint8) {
		g := gen.NewGenerator(seed)
		// 2-13 modules keeps the minimality check (quadratic in view size)
		// fast enough for the fuzzing loop while covering the shapes where
		// the builder historically had edge cases.
		s := g.RandomDAG("fuzz", 2+int(size)%12)
		rel := g.RandomRelevant(s, int(pct)%101)

		v, err := BuildRelevant(s, rel)
		if err != nil {
			t.Fatalf("builder failed on valid spec (%d modules, rel %v): %v",
				s.NumModules(), rel, err)
		}
		if err := CheckAll(v, rel); err != nil {
			t.Fatalf("Properties 1-3 violated (rel %v, view %v): %v", rel, v.Blocks(), err)
		}
		if ok, w := Minimal(v, rel); !ok {
			t.Fatalf("view not minimal: composites %s and %s can merge (rel %v, view %v)",
				w.A, w.B, rel, v.Blocks())
		}
		// The builder must produce one composite per relevant module at
		// least (Property 1 upper-bounds relevants per composite at one).
		if v.Size() < len(rel) {
			t.Fatalf("view size %d < |R| %d", v.Size(), len(rel))
		}
	})
}
