package core

import (
	"errors"
	"testing"

	"repro/internal/spec"
)

func TestWellFormed(t *testing.T) {
	s := spec.Phylogenomics()
	joe, _ := NewUserView(s, joeBlocks())
	if err := WellFormed(joe, spec.PhyloRelevantJoe()); err != nil {
		t.Fatalf("Joe's view is well-formed: %v", err)
	}
	// Mary's relevant set includes M5, which shares composite M10 with M3 in
	// Joe's view -> Property 1 violated.
	if err := WellFormed(joe, spec.PhyloRelevantMary()); !errors.Is(err, ErrProperty1) {
		t.Fatalf("expected property 1 violation, got %v", err)
	}
}

func TestJoeAndMaryViewsSatisfyAll(t *testing.T) {
	s := spec.Phylogenomics()
	joe, _ := NewUserView(s, joeBlocks())
	if err := CheckAll(joe, spec.PhyloRelevantJoe()); err != nil {
		t.Fatalf("Joe: %v", err)
	}
	mary, _ := NewUserView(s, maryBlocks())
	if err := CheckAll(mary, spec.PhyloRelevantMary()); err != nil {
		t.Fatalf("Mary: %v", err)
	}
}

func TestGroupingM1WithM2BreaksDataflow(t *testing.T) {
	// Section I: "by grouping M1 with M2 in a composite module M12, there
	// would exist an edge from M12 to M10 in the view ... it would appear
	// that Annotation checking (M2) must be performed before Run alignment
	// (M3), when in fact there is no precedence or dataflow between those
	// modules."
	s := spec.Phylogenomics()
	v, err := NewUserView(s, map[string][]string{
		"M12": {"M1", "M2"},
		"M10": {"M3", "M4", "M5"},
		"M9":  {"M6", "M7", "M8"},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = PreservesDataflow(v, spec.PhyloRelevantJoe())
	if !errors.Is(err, ErrProperty2) {
		t.Fatalf("expected property 2 violation, got %v", err)
	}
}

func TestFigure4Violations(t *testing.T) {
	// The paper derives both violations from Figure 4 explicitly.
	s, blocks, relevant := spec.Figure4()
	v, err := NewUserView(s, map[string][]string{"Cr1": blocks[0], "Cr2": blocks[1]})
	if err != nil {
		t.Fatal(err)
	}
	if err := WellFormed(v, relevant); err != nil {
		t.Fatalf("figure 4 view IS well-formed: %v", err)
	}
	if err := PreservesDataflow(v, relevant); !errors.Is(err, ErrProperty2) {
		t.Fatalf("want property 2 violation, got %v", err)
	}
	if err := CompleteWRTDataflow(v, relevant); !errors.Is(err, ErrProperty3) {
		t.Fatalf("want property 3 violation, got %v", err)
	}
	if err := PreservesPathLevel(v, relevant); err == nil {
		t.Fatal("path-level check passed on the known-bad view")
	}
}

func TestUAdminAlwaysSatisfiesAll(t *testing.T) {
	for _, build := range []func() (*spec.Spec, []string){
		func() (*spec.Spec, []string) { return spec.Phylogenomics(), spec.PhyloRelevantJoe() },
		func() (*spec.Spec, []string) { s, r := spec.Figure6(); return s, r },
		func() (*spec.Spec, []string) { s, r := spec.Figure7(); return s, r },
	} {
		s, rel := build()
		v := UAdmin(s)
		if err := CheckAll(v, rel); err != nil {
			t.Fatalf("%s: UAdmin violates properties: %v", s.Name(), err)
		}
		if err := PreservesPathLevel(v, rel); err != nil {
			t.Fatalf("%s: UAdmin violates path-level: %v", s.Name(), err)
		}
	}
}

func TestUBlackBoxPropertiesWithEmptyRelevant(t *testing.T) {
	// With R = {} the black box trivially satisfies everything: the only
	// nr-path pair is (input, output) and it survives.
	s := spec.Phylogenomics()
	v, _ := UBlackBox(s)
	if err := CheckAll(v, nil); err != nil {
		t.Fatalf("black box with empty R: %v", err)
	}
	// With Joe's relevant modules the black box violates Property 1.
	if err := WellFormed(v, spec.PhyloRelevantJoe()); !errors.Is(err, ErrProperty1) {
		t.Fatalf("want property 1 violation, got %v", err)
	}
}

func TestMinimalDetectsMergeableViews(t *testing.T) {
	// UAdmin of phylogenomics with Joe's relevant set is NOT minimal:
	// the builder merges M4, M5 into M3's composite, so those singleton
	// blocks must be mergeable.
	s := spec.Phylogenomics()
	admin := UAdmin(s)
	ok, w := Minimal(admin, spec.PhyloRelevantJoe())
	if ok {
		t.Fatal("UAdmin reported minimal although the builder can coarsen it")
	}
	if w == nil || w.A == w.B {
		t.Fatalf("bad witness %v", w)
	}
}

func TestMinimalOnBuilderOutput(t *testing.T) {
	s := spec.Phylogenomics()
	for _, rel := range [][]string{spec.PhyloRelevantJoe(), spec.PhyloRelevantMary()} {
		v, _ := BuildRelevant(s, rel)
		if ok, w := Minimal(v, rel); !ok {
			t.Fatalf("builder output for %v not minimal: %v", rel, w)
		}
	}
}

func TestEdgeLevelImpliesPathLevel(t *testing.T) {
	// For the fixture views, edge-level success must imply path-level
	// success (cross-validation of the two formulations).
	s := spec.Phylogenomics()
	for _, rel := range [][]string{spec.PhyloRelevantJoe(), spec.PhyloRelevantMary(), nil} {
		v, err := BuildRelevant(s, rel)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckAll(v, rel); err != nil {
			t.Fatalf("edge-level failed: %v", err)
		}
		if err := PreservesPathLevel(v, rel); err != nil {
			t.Fatalf("path-level failed where edge-level passed: %v", err)
		}
	}
}
