package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/spec"
)

// This file implements the checkers for the three properties of Section III
// plus the minimality condition. All checkers return nil when the property
// holds and a descriptive error (wrapping ErrProperty*) when it does not, so
// tests can both assert success and inspect counter-examples.

// Property violation sentinels.
var (
	ErrProperty1 = fmt.Errorf("core: property 1 (well-formed) violated")
	ErrProperty2 = fmt.Errorf("core: property 2 (preserves dataflow) violated")
	ErrProperty3 = fmt.Errorf("core: property 3 (complete w.r.t. dataflow) violated")
)

// WellFormed checks Property 1: every composite module of v contains at
// most one element of the relevant set.
func WellFormed(v *UserView, relevant []string) error {
	rel := toSet(relevant)
	for _, name := range v.Composites() {
		count := 0
		var found []string
		for _, m := range v.blocks[name] {
			if rel[m] {
				count++
				found = append(found, m)
			}
		}
		if count > 1 {
			return fmt.Errorf("%w: composite %q contains %v", ErrProperty1, name, found)
		}
	}
	return nil
}

// dataflowContext bundles the per-graph reachability fronts used by the
// Property 2 and 3 edge checks.
type dataflowContext struct {
	g       *graph.Graph
	rel     map[string]bool            // "relevant" nodes of this graph
	fwd     map[string]map[string]bool // source -> nr-reachable set
	bwd     map[string]map[string]bool // target -> nr-co-reachable set
	sources []string                   // R ∪ {input} (graph-local names)
	targets []string                   // R ∪ {output}
}

func newDataflowContext(g *graph.Graph, relNodes []string) *dataflowContext {
	ctx := &dataflowContext{
		g:   g,
		rel: toSet(relNodes),
		fwd: make(map[string]map[string]bool),
		bwd: make(map[string]map[string]bool),
	}
	avoid := func(n string) bool { return ctx.rel[n] }
	ctx.sources = append(append([]string(nil), relNodes...), spec.Input)
	ctx.targets = append(append([]string(nil), relNodes...), spec.Output)
	for _, r := range ctx.sources {
		ctx.fwd[r] = g.ReachAvoiding(r, avoid)
	}
	for _, r := range ctx.targets {
		ctx.bwd[r] = g.ReachBackAvoiding(r, avoid)
	}
	return ctx
}

// edgeOnNRPath reports whether the edge (u, w) lies on an nr-path from r to
// rp in this context's graph, using the precomputed fronts.
func (ctx *dataflowContext) edgeOnNRPath(u, w, r, rp string) bool {
	okU := u == r || (!ctx.rel[u] && ctx.fwd[r][u])
	if !okU {
		return false
	}
	return w == rp || (!ctx.rel[w] && ctx.bwd[rp][w])
}

// hasNRPath reports an nr-path r -> rp of length >= 1.
func (ctx *dataflowContext) hasNRPath(r, rp string) bool { return ctx.fwd[r][rp] }

// buildContexts prepares the specification-side and view-side contexts.
// The view-side relevant nodes are the composites holding a relevant module;
// C(input)=input and C(output)=output pass through by construction.
func buildContexts(v *UserView, relevant []string) (specCtx, viewCtx *dataflowContext, cOf func(string) string) {
	specCtx = newDataflowContext(v.spec.Graph(), relevant)
	relComposites := make([]string, 0, len(relevant))
	seen := make(map[string]bool)
	for _, r := range relevant {
		if c, ok := v.CompositeOf(r); ok && !seen[c] {
			seen[c] = true
			relComposites = append(relComposites, c)
		}
	}
	viewCtx = newDataflowContext(v.Induced(), relComposites)
	cOf = func(n string) string {
		c, _ := v.CompositeOf(n)
		return c
	}
	return specCtx, viewCtx, cOf
}

// PreservesDataflow checks Property 2: every specification edge that
// induces an edge lying on an nr-path from C(r) to C(r') in the view must
// itself lie on an nr-path from r to r' in the specification. Violations
// mean the view makes users perceive dataflow that does not exist.
func PreservesDataflow(v *UserView, relevant []string) error {
	specCtx, viewCtx, cOf := buildContexts(v, relevant)
	var err error
	v.spec.Graph().EachEdge(func(u, w string) {
		if err != nil {
			return
		}
		a, b := cOf(u), cOf(w)
		if a == b {
			return // edge internal to a composite: induces nothing
		}
		for _, r := range specCtx.sources {
			for _, rp := range specCtx.targets {
				if viewCtx.edgeOnNRPath(a, b, cOf(r), cOf(rp)) && !specCtx.edgeOnNRPath(u, w, r, rp) {
					err = fmt.Errorf("%w: edge (%s,%s) induces (%s,%s) on an nr-path %s->%s in the view, but is on no nr-path %s->%s in the spec",
						ErrProperty2, u, w, a, b, cOf(r), cOf(rp), r, rp)
					return
				}
			}
		}
	})
	return err
}

// CompleteWRTDataflow checks Property 3: every specification edge lying on
// an nr-path from r to r' that induces a view edge must have that induced
// edge on an nr-path from C(r) to C(r'). Violations mean the view hides
// dataflow that does exist.
func CompleteWRTDataflow(v *UserView, relevant []string) error {
	specCtx, viewCtx, cOf := buildContexts(v, relevant)
	var err error
	v.spec.Graph().EachEdge(func(u, w string) {
		if err != nil {
			return
		}
		a, b := cOf(u), cOf(w)
		if a == b {
			return
		}
		for _, r := range specCtx.sources {
			for _, rp := range specCtx.targets {
				if specCtx.edgeOnNRPath(u, w, r, rp) && !viewCtx.edgeOnNRPath(a, b, cOf(r), cOf(rp)) {
					err = fmt.Errorf("%w: edge (%s,%s) on nr-path %s->%s in the spec induces (%s,%s), which is on no nr-path %s->%s in the view",
						ErrProperty3, u, w, r, rp, a, b, cOf(r), cOf(rp))
					return
				}
			}
		}
	})
	return err
}

// PreservesPathLevel checks the path-level reading of Properties 2 and 3
// ("every nr-path from C(r) to C(r') in U(G_w) must be the residue of an
// nr-path from r to r' in G_w, and each nr-path in G_w must have a
// residue"): the set of (r, r') pairs connected by nr-paths is identical in
// the specification and the view. Pairs with r = r' are excluded: a loop
// around a single relevant module may legitimately be absorbed into its
// composite — the paper's Section II makes exactly this point when Joe,
// whose composite M10 swallows the M3-M4-M5 loop, "would not be aware of
// the looping inside of S13". The edge-level checkers imply this check; the
// property tests cross-validate the two formulations.
func PreservesPathLevel(v *UserView, relevant []string) error {
	specCtx, viewCtx, cOf := buildContexts(v, relevant)
	for _, r := range specCtx.sources {
		for _, rp := range specCtx.targets {
			if r == rp {
				continue
			}
			inSpec := specCtx.hasNRPath(r, rp)
			inView := viewCtx.hasNRPath(cOf(r), cOf(rp))
			if inView && !inSpec {
				return fmt.Errorf("%w: nr-path %s->%s exists in view only", ErrProperty2, r, rp)
			}
			if inSpec && !inView {
				return fmt.Errorf("%w: nr-path %s->%s exists in spec only", ErrProperty3, r, rp)
			}
		}
	}
	return nil
}

// CheckAll verifies Properties 1-3 in order and returns the first failure.
func CheckAll(v *UserView, relevant []string) error {
	if err := WellFormed(v, relevant); err != nil {
		return err
	}
	if err := PreservesDataflow(v, relevant); err != nil {
		return err
	}
	return CompleteWRTDataflow(v, relevant)
}

// MergeWitness describes a pair of composites whose merge would still
// satisfy Properties 1-3, i.e. a witness that a view is not minimal.
type MergeWitness struct {
	A, B string
}

// Minimal checks the paper's minimality condition: no two composite modules
// of v can be replaced by their union while still satisfying Properties
// 1-3. It returns (true, nil) for a minimal view and (false, witness) with
// the first mergeable pair otherwise.
func Minimal(v *UserView, relevant []string) (bool, *MergeWitness) {
	names := v.Composites()
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			merged := mergeBlocks(v, names[i], names[j])
			if CheckAll(merged, relevant) == nil {
				return false, &MergeWitness{A: names[i], B: names[j]}
			}
		}
	}
	return true, nil
}

// mergeBlocks returns a copy of v with composites a and b fused. The fused
// block keeps a's name when that name does not shadow a module (relevant
// composites are named after their member, which stays inside), otherwise a
// fresh neutral name is used.
func mergeBlocks(v *UserView, a, b string) *UserView {
	blocks := v.Blocks()
	union := append(blocks[a], blocks[b]...)
	delete(blocks, a)
	delete(blocks, b)
	// Reusing a's name is always valid: if it shadows a module, that module
	// was a member of a and remains inside the union.
	blocks[a] = union
	merged, err := NewUserView(v.spec, blocks)
	if err != nil {
		panic(fmt.Sprintf("core: internal merge produced invalid view: %v", err))
	}
	return merged
}

// RelevantCompositeConnected verifies the structural guarantee stated in
// Section III: in a view satisfying Properties 1-3, every composite that
// contains a relevant module is weakly connected in the specification.
func RelevantCompositeConnected(v *UserView, relevant []string) error {
	rel := toSet(relevant)
	for _, name := range v.Composites() {
		holdsRelevant := false
		for _, m := range v.blocks[name] {
			if rel[m] {
				holdsRelevant = true
				break
			}
		}
		if !holdsRelevant {
			continue
		}
		keep := toSet(v.blocks[name])
		sub := v.spec.Graph().InducedSubgraph(keep)
		if comps := sub.WeaklyConnectedComponents(); len(comps) > 1 {
			return fmt.Errorf("core: relevant composite %q is disconnected: %v", name, comps)
		}
	}
	return nil
}

func toSet(xs []string) map[string]bool {
	out := make(map[string]bool, len(xs))
	for _, x := range xs {
		out[x] = true
	}
	return out
}
