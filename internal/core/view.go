// Package core implements the paper's primary contribution: user views over
// workflow specifications (Section II), the three properties of a good user
// view plus minimality (Section III), and the RelevUserViewBuilder
// algorithm (Figure 5).
//
// A user view U of a specification G_w is a partition of its modules
// (excluding INPUT and OUTPUT) into composite modules. U induces a
// higher-level specification U(G_w) — the quotient graph — and restricts
// which steps and data objects are visible when querying provenance.
package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/spec"
)

// UserView is a partition of a specification's modules into composite
// modules. Views are immutable once constructed.
type UserView struct {
	spec   *spec.Spec
	blocks map[string][]string // composite name -> sorted member modules
	owner  map[string]string   // module -> composite name
}

// NewUserView constructs a view over s from the given blocks and validates
// that they form a partition of the modules: every module appears in exactly
// one block, blocks are non-empty, and block names neither use the reserved
// INPUT/OUTPUT identifiers nor shadow a module outside the block.
func NewUserView(s *spec.Spec, blocks map[string][]string) (*UserView, error) {
	v := &UserView{
		spec:   s,
		blocks: make(map[string][]string, len(blocks)),
		owner:  make(map[string]string),
	}
	for name, members := range blocks {
		if name == spec.Input || name == spec.Output {
			return nil, fmt.Errorf("core: composite name %q is reserved: %w", name, ErrBadView)
		}
		if len(members) == 0 {
			return nil, fmt.Errorf("core: composite %q is empty: %w", name, ErrBadView)
		}
		sorted := append([]string(nil), members...)
		sort.Strings(sorted)
		v.blocks[name] = sorted
		for _, m := range members {
			if !s.HasModule(m) {
				return nil, fmt.Errorf("core: composite %q contains unknown module %q: %w", name, m, ErrBadView)
			}
			if prev, dup := v.owner[m]; dup {
				return nil, fmt.Errorf("core: module %q in both %q and %q: %w", m, prev, name, ErrBadView)
			}
			v.owner[m] = name
		}
	}
	for _, m := range s.ModuleNames() {
		if _, ok := v.owner[m]; !ok {
			return nil, fmt.Errorf("core: module %q not covered by any composite: %w", m, ErrBadView)
		}
	}
	// A block may be named after a module only if that module is a member;
	// otherwise the induced graph would silently conflate two identities.
	for name := range v.blocks {
		if s.HasModule(name) && v.owner[name] != name {
			return nil, fmt.Errorf("core: composite %q shadows module %q outside it: %w", name, name, ErrBadView)
		}
	}
	return v, nil
}

// Spec returns the specification the view partitions.
func (v *UserView) Spec() *spec.Spec { return v.spec }

// Size returns |U|, the number of composite modules.
func (v *UserView) Size() int { return len(v.blocks) }

// CompositeOf returns the composite module containing the given module, or
// the module itself when it is INPUT or OUTPUT (the paper's convention
// C(input) = input, C(output) = output). The second result is false for
// identifiers unknown to the view.
func (v *UserView) CompositeOf(module string) (string, bool) {
	if module == spec.Input || module == spec.Output {
		return module, true
	}
	c, ok := v.owner[module]
	return c, ok
}

// Members returns the sorted member modules of a composite (nil if unknown).
func (v *UserView) Members(composite string) []string {
	ms := v.blocks[composite]
	if ms == nil {
		return nil
	}
	return append([]string(nil), ms...)
}

// Composites returns all composite names, sorted.
func (v *UserView) Composites() []string {
	out := make([]string, 0, len(v.blocks))
	for name := range v.blocks {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Blocks returns a deep copy of the partition.
func (v *UserView) Blocks() map[string][]string {
	out := make(map[string][]string, len(v.blocks))
	for name, members := range v.blocks {
		out[name] = append([]string(nil), members...)
	}
	return out
}

// BlockOf returns the module -> composite assignment as a fresh map.
func (v *UserView) BlockOf() map[string]string {
	out := make(map[string]string, len(v.owner))
	for m, c := range v.owner {
		out[m] = c
	}
	return out
}

// Induced returns the induced specification U(G_w): one node per composite
// plus the pass-through INPUT and OUTPUT, with an edge A -> B whenever some
// module of A has a specification edge to some module of B (A != B).
func (v *UserView) Induced() *graph.Graph {
	return v.spec.Graph().Quotient(v.owner, false)
}

// InducedSpec materializes the induced workflow as a first-class
// specification whose modules are the composites. A composite inherits
// KindScientific when any member is scientific, and its description lists
// the members. Because the result is an ordinary specification, views can
// be stacked: a user may build a view of an induced workflow, which is how
// the paper proposes interoperating with systems that already nest
// workflows ("by viewing each composite module as itself being a
// workflow").
func (v *UserView) InducedSpec() (*spec.Spec, error) {
	out := spec.New(v.spec.Name() + "@view")
	for _, name := range v.Composites() {
		kind := spec.KindFormatting
		for _, m := range v.blocks[name] {
			if mod, ok := v.spec.Module(m); ok && mod.Kind == spec.KindScientific {
				kind = spec.KindScientific
				break
			}
		}
		desc := "composite of " + fmt.Sprint(v.blocks[name])
		if err := out.AddModule(spec.Module{Name: name, Kind: kind, Desc: desc}); err != nil {
			return nil, err
		}
	}
	var addErr error
	v.Induced().EachEdge(func(from, to string) {
		if addErr == nil {
			addErr = out.AddEdge(from, to)
		}
	})
	if addErr != nil {
		return nil, addErr
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: induced workflow invalid: %w", err)
	}
	return out, nil
}

// CompositeContaining returns the composite that holds any relevant module
// of rel, mapping each relevant module to its composite. Used by checkers.
func (v *UserView) relevantComposites(rel map[string]bool) map[string]string {
	out := make(map[string]string)
	for m := range rel {
		if c, ok := v.owner[m]; ok {
			out[m] = c
		}
	}
	return out
}

// Equal reports whether two views are the same partition (block names are
// ignored; only the grouping matters).
func (v *UserView) Equal(o *UserView) bool {
	if len(v.owner) != len(o.owner) {
		return false
	}
	// Two partitions are equal iff every pair of modules co-grouped in one
	// is co-grouped in the other; comparing canonical block keys suffices.
	can := func(u *UserView) map[string]string {
		out := make(map[string]string, len(u.owner))
		for name, members := range u.blocks {
			key := fmt.Sprint(members)
			_ = name
			for _, m := range members {
				out[m] = key
			}
		}
		return out
	}
	a, b := can(v), can(o)
	for m, k := range a {
		if b[m] != k {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer with a deterministic rendering.
func (v *UserView) String() string {
	names := v.Composites()
	s := "view{"
	for i, n := range names {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%v", n, v.blocks[n])
	}
	return s + "}"
}

// UAdmin returns the finest view: every module is its own composite, named
// after itself. Under UAdmin every step and every data object is visible —
// the paper's administrator view.
func UAdmin(s *spec.Spec) *UserView {
	blocks := make(map[string][]string)
	for _, m := range s.ModuleNames() {
		blocks[m] = []string{m}
	}
	v, err := NewUserView(s, blocks)
	if err != nil {
		// Impossible for a well-formed spec; surface loudly in tests.
		panic(fmt.Sprintf("core: UAdmin construction failed: %v", err))
	}
	return v
}

// BlackBoxName is the composite name used by UBlackBox.
const BlackBoxName = "WORKFLOW"

// UBlackBox returns the coarsest view: the entire workflow in one composite.
// Only workflow inputs and final outputs are visible through it.
func UBlackBox(s *spec.Spec) (*UserView, error) {
	mods := s.ModuleNames()
	if len(mods) == 0 {
		return nil, fmt.Errorf("core: cannot build black-box view of empty spec: %w", ErrBadView)
	}
	return NewUserView(s, map[string][]string{BlackBoxName: mods})
}
