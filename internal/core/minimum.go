package core

import (
	"fmt"

	"repro/internal/spec"
)

// The paper leaves open whether a polynomial-time algorithm exists that
// produces a *minimum* good user view (smallest size satisfying Properties
// 1-3); RelevUserViewBuilder only guarantees a *minimal* one (no pairwise
// merge possible). MinimumView settles individual instances by exhaustive
// search over set partitions, which is feasible for the small hand-built
// specifications used to study the gap (Figure 7) — the Bell number of 10
// modules is 115975.

// MaxMinimumSearchModules bounds the exhaustive search.
const MaxMinimumSearchModules = 10

// MinimumView returns a smallest user view of s satisfying Properties 1-3
// for the given relevant set, found by exhaustive enumeration of the set
// partitions of the modules. It fails for specifications with more than
// MaxMinimumSearchModules modules.
//
// Among equal-size optima the partition generated first in restricted-growth
// order wins, making the result deterministic.
func MinimumView(s *spec.Spec, relevant []string) (*UserView, error) {
	mods := s.ModuleNames()
	if len(mods) > MaxMinimumSearchModules {
		return nil, fmt.Errorf("core: %d modules exceed exhaustive search bound %d", len(mods), MaxMinimumSearchModules)
	}
	if _, err := NewAnalysis(s, relevant); err != nil {
		return nil, err // validates the relevant set
	}
	var best *UserView
	bestSize := len(mods) + 1
	// Enumerate partitions via restricted growth strings: assign[i] is the
	// block of mods[i], and assign[i] <= 1+max(assign[0..i-1]).
	assign := make([]int, len(mods))
	var rec func(i, maxUsed int)
	rec = func(i, maxUsed int) {
		if i == len(mods) {
			size := maxUsed + 1
			if size >= bestSize {
				return
			}
			blocks := make(map[string][]string, size)
			for k, m := range mods {
				name := fmt.Sprintf("B%d", assign[k])
				blocks[name] = append(blocks[name], m)
			}
			v, err := NewUserView(s, blocks)
			if err != nil {
				return
			}
			if CheckAll(v, relevant) == nil {
				best = v
				bestSize = size
			}
			return
		}
		for b := 0; b <= maxUsed+1; b++ {
			// Prune: even if all remaining modules join existing blocks, the
			// final size is at least max(maxUsed, b)+1.
			mu := maxUsed
			if b > mu {
				mu = b
			}
			if mu+1 >= bestSize {
				continue
			}
			assign[i] = b
			rec(i+1, mu)
		}
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("core: empty specification: %w", ErrBadView)
	}
	rec(0, -1)
	if best == nil {
		return nil, fmt.Errorf("core: no view satisfies properties 1-3 (unexpected; UAdmin always does)")
	}
	return best, nil
}
