package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/spec"
)

func TestMinimumViewFigure7Gap(t *testing.T) {
	// The Figure 7 phenomenon: the builder's view is minimal (no pairwise
	// merge) yet strictly larger than the minimum view.
	s, relevant := spec.Figure7()
	built, err := BuildRelevant(s, relevant)
	if err != nil {
		t.Fatal(err)
	}
	if got := built.Size(); got != 5 {
		t.Fatalf("builder size = %d, want 5 (documented instance)", got)
	}
	if ok, w := Minimal(built, relevant); !ok {
		t.Fatalf("builder output is not minimal: %v", w)
	}
	min, err := MinimumView(s, relevant)
	if err != nil {
		t.Fatal(err)
	}
	if got := min.Size(); got != 3 {
		t.Fatalf("minimum size = %d, want 3", got)
	}
	if err := CheckAll(min, relevant); err != nil {
		t.Fatalf("minimum view violates properties: %v", err)
	}
	// The minimum groups the three non-relevant modules together.
	var nrBlock []string
	for _, c := range min.Composites() {
		ms := min.Members(c)
		if len(ms) == 3 {
			nrBlock = ms
		}
	}
	if strings.Join(nrBlock, ",") != "n1,n2,n4" {
		t.Fatalf("minimum non-relevant block = %v, want [n1 n2 n4]", nrBlock)
	}
}

func TestMinimumViewMatchesBuilderOnEasyInstances(t *testing.T) {
	// On the paper's running examples the builder already achieves the
	// minimum.
	s := spec.Phylogenomics()
	for _, rel := range [][]string{spec.PhyloRelevantJoe(), spec.PhyloRelevantMary()} {
		built, _ := BuildRelevant(s, rel)
		min, err := MinimumView(s, rel)
		if err != nil {
			t.Fatal(err)
		}
		if built.Size() != min.Size() {
			t.Fatalf("rel %v: builder %d vs minimum %d", rel, built.Size(), min.Size())
		}
	}
	f6, r6 := spec.Figure6()
	built, _ := BuildRelevant(f6, r6)
	min, err := MinimumView(f6, r6)
	if err != nil {
		t.Fatal(err)
	}
	if built.Size() != min.Size() {
		t.Fatalf("figure 6: builder %d vs minimum %d", built.Size(), min.Size())
	}
}

func TestMinimumViewNeverAboveBuilder(t *testing.T) {
	// The exhaustive minimum can never exceed the builder's size, and both
	// must satisfy the properties.
	rng := rand.New(rand.NewSource(5))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		s := randomSpec(rng, 3+rng.Intn(4)) // keep Bell numbers small
		rel := randomRelevant(rng, s, rng.Intn(3))
		built, err := BuildRelevant(s, rel)
		if err != nil {
			t.Fatal(err)
		}
		min, err := MinimumView(s, rel)
		if err != nil {
			t.Fatal(err)
		}
		if min.Size() > built.Size() {
			t.Fatalf("trial %d: minimum %d > builder %d", trial, min.Size(), built.Size())
		}
		if err := CheckAll(min, rel); err != nil {
			t.Fatalf("trial %d: minimum view invalid: %v", trial, err)
		}
	}
}

func TestMinimumViewBounds(t *testing.T) {
	big := spec.New("big")
	prev := spec.Input
	for i := 0; i < MaxMinimumSearchModules+1; i++ {
		name := "x" + string(rune('a'+i))
		big.MustAddModule(spec.Module{Name: name})
		big.MustAddEdge(prev, name)
		prev = name
	}
	big.MustAddEdge(prev, spec.Output)
	if _, err := MinimumView(big, nil); err == nil {
		t.Fatal("oversized search accepted")
	}
	if _, err := MinimumView(spec.New("empty"), nil); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := MinimumView(spec.Phylogenomics(), []string{"ghost"}); err == nil {
		t.Fatal("unknown relevant accepted")
	}
}
