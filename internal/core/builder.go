package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/spec"
)

// BuildRelevant is algorithm RelevUserViewBuilder (Figure 5): given a
// workflow specification and a set of relevant modules R, it constructs a
// user view that satisfies Properties 1-3 and is minimal (Theorem 1).
//
// The algorithm has three steps:
//
//  1. For each relevant module r, create the relevant composite
//     C(r) = in(r) ∪ out(r) ∪ {r}, where in(r) collects the non-relevant
//     modules whose only relevant successor (over nr-paths) is r, and
//     out(r) the still-unmarked non-relevant modules whose only relevant
//     predecessor is r.
//  2. Group the remaining non-relevant modules by their exact
//     (rpred, rsucc) signature.
//  3. Greedily merge pairs of non-relevant composites when the merge does
//     not manufacture nr-paths absent from the specification, checked by
//     comparing the relevant predecessors/successors of the merged block's
//     entry and exit points with the block-wide unions (Line 23).
//
// Relevant composites are named after their relevant module; non-relevant
// composites are named NR1, NR2, ... in deterministic order.
func BuildRelevant(s *spec.Spec, relevant []string) (*UserView, error) {
	a, err := NewAnalysis(s, relevant)
	if err != nil {
		return nil, err
	}
	return buildFromAnalysis(a)
}

// BuildFromAnalysis runs the builder over a precomputed Analysis, allowing
// callers that already paid for rpred/rsucc (e.g. the interactive
// UserViewBuilder UI loop) to skip recomputation.
func BuildFromAnalysis(a *Analysis) (*UserView, error) { return buildFromAnalysis(a) }

func buildFromAnalysis(a *Analysis) (*UserView, error) {
	s := a.Spec()
	R := a.Relevant()
	marked := make(map[string]bool)

	relevantBlock := make(map[string][]string, len(R)) // r -> members
	for _, r := range R {
		relevantBlock[r] = []string{r}
	}

	// Step 1a (Lines 3-5): in(r) = { n ∈ N\R : rsucc(n) = {r} }.
	for _, r := range R {
		for _, n := range s.ModuleNames() {
			if a.IsRelevant(n) || marked[n] {
				continue
			}
			if succ := a.RSucc(n); len(succ) == 1 && succ[0] == r {
				relevantBlock[r] = append(relevantBlock[r], n)
				marked[n] = true
			}
		}
	}
	// Step 1b (Lines 6-8): out(r) = { n ∈ N\R unmarked : rpred(n) = {r} }.
	for _, r := range R {
		for _, n := range s.ModuleNames() {
			if a.IsRelevant(n) || marked[n] {
				continue
			}
			if pred := a.RPred(n); len(pred) == 1 && pred[0] == r {
				relevantBlock[r] = append(relevantBlock[r], n)
				marked[n] = true
			}
		}
	}

	// Step 2 (Lines 11-16): group unmarked non-relevant modules by their
	// (rpred, rsucc) signature.
	type nrcBlock struct {
		members []string
		pred    []string // rpredM, kept sorted
		succ    []string // rsuccM, kept sorted
	}
	var nrc []*nrcBlock
	bySig := make(map[string]*nrcBlock)
	for _, n := range s.ModuleNames() {
		if a.IsRelevant(n) || marked[n] {
			continue
		}
		pred, succ := a.RPred(n), a.RSucc(n)
		sig := fmt.Sprint(pred, "|", succ)
		if blk, ok := bySig[sig]; ok {
			blk.members = append(blk.members, n)
			continue
		}
		blk := &nrcBlock{members: []string{n}, pred: pred, succ: succ}
		bySig[sig] = blk
		nrc = append(nrc, blk)
	}

	// Step 3 (Lines 17-25): merge non-relevant composites while legal.
	// Block-level rpred/rsucc are kept as sorted slices, so the pairwise
	// union is a linear merge and the Line 23 comparisons are linear scans.
	// Block membership is tracked through ownerBlk (nil for relevant and
	// marked modules), so "edge leaves M" is a pointer comparison instead
	// of a per-pair set construction.
	g := s.Graph()
	ownerBlk := make(map[string]*nrcBlock)
	for _, blk := range nrc {
		for _, n := range blk.members {
			ownerBlk[n] = blk
		}
	}
	// Sorted rpred/rsucc slices are interned to small integers so the
	// Line 23 equality tests inside legalMerge are O(1) per member.
	intern := make(map[string]int)
	internID := func(xs []string) int {
		key := strings.Join(xs, "\x00")
		id, ok := intern[key]
		if !ok {
			id = len(intern)
			intern[key] = id
		}
		return id
	}
	predID := make(map[string]int)
	succID := make(map[string]int)
	for _, blk := range nrc {
		for _, n := range blk.members {
			predID[n] = internID(a.RPred(n))
			succID[n] = internID(a.RSucc(n))
		}
	}
	legalMerge := func(b1, b2 *nrcBlock) bool {
		rpredMID := internID(unionSorted(b1.pred, b2.pred))
		rsuccMID := internID(unionSorted(b1.succ, b2.succ))
		for _, blk := range [2]*nrcBlock{b1, b2} {
			for _, n := range blk.members {
				// V+ : n has an outgoing edge leaving M.
				exit := false
				for _, w := range g.Successors(n) {
					if o := ownerBlk[w]; o != b1 && o != b2 {
						exit = true
						break
					}
				}
				if exit && predID[n] != rpredMID {
					return false
				}
				// V- : n has an incoming edge entering M from outside.
				entry := false
				for _, w := range g.Predecessors(n) {
					if o := ownerBlk[w]; o != b1 && o != b2 {
						entry = true
						break
					}
				}
				if entry && succID[n] != rsuccMID {
					return false
				}
			}
		}
		return true
	}
	// Fixpoint over pairwise merges. Each successful merge absorbs block j
	// into block i and rescans i's remaining partners in place; the outer
	// loop repeats until a full pass makes no change, so the result is the
	// same fixpoint the naive restart-from-scratch loop reaches, without
	// its cubic rescanning.
	sort.Slice(nrc, func(i, j int) bool { return minString(nrc[i].members) < minString(nrc[j].members) })
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(nrc); i++ {
			for j := i + 1; j < len(nrc); j++ {
				if legalMerge(nrc[i], nrc[j]) {
					for _, n := range nrc[j].members {
						ownerBlk[n] = nrc[i]
					}
					nrc[i].members = append(nrc[i].members, nrc[j].members...)
					nrc[i].pred = unionSorted(nrc[i].pred, nrc[j].pred)
					nrc[i].succ = unionSorted(nrc[i].succ, nrc[j].succ)
					nrc = append(nrc[:j], nrc[j+1:]...)
					changed = true
					j--
				}
			}
		}
	}

	// Assemble the view. Relevant composites keep their module's name (the
	// composite "takes on the meaning of the relevant module it contains");
	// non-relevant composites are numbered deterministically.
	blocks := make(map[string][]string, len(relevantBlock)+len(nrc))
	for r, members := range relevantBlock {
		sort.Strings(members)
		blocks[r] = members
	}
	sort.Slice(nrc, func(i, j int) bool { return minString(nrc[i].members) < minString(nrc[j].members) })
	for i, blk := range nrc {
		sort.Strings(blk.members)
		blocks[fmt.Sprintf("NR%d", i+1)] = blk.members
	}
	return NewUserView(s, blocks)
}

// unionSorted merges two sorted, deduplicated string slices into a fresh
// sorted, deduplicated slice.
func unionSorted(x, y []string) []string {
	out := make([]string, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			out = append(out, x[i])
			i++
		case x[i] > y[j]:
			out = append(out, y[j])
			j++
		default:
			out = append(out, x[i])
			i++
			j++
		}
	}
	out = append(out, x[i:]...)
	return append(out, y[j:]...)
}

// minString returns the lexicographically smallest element of xs; blocks
// are ordered by this key for deterministic iteration and naming.
func minString(xs []string) string {
	min := xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	return min
}
