package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/spec"
)

// phyloPartitionFromAssign turns 8 block indices into a candidate block
// map over the phylogenomics modules M1..M8.
func phyloPartitionFromAssign(assign [8]uint8) map[string][]string {
	blocks := make(map[string][]string)
	for i, b := range assign {
		name := fmt.Sprintf("B%d", int(b)%4)
		blocks[name] = append(blocks[name], fmt.Sprintf("M%d", i+1))
	}
	return blocks
}

// Property: every complete assignment of modules to blocks yields a valid
// view, and the view's accessors are mutually consistent: Size matches the
// block count, CompositeOf agrees with Members, and the induced graph has
// exactly Size+2 nodes.
func TestQuickPartitionConsistency(t *testing.T) {
	s := spec.Phylogenomics()
	f := func(assign [8]uint8) bool {
		blocks := phyloPartitionFromAssign(assign)
		v, err := NewUserView(s, blocks)
		if err != nil {
			return false
		}
		if v.Size() != len(blocks) {
			return false
		}
		for _, name := range v.Composites() {
			for _, m := range v.Members(name) {
				if c, ok := v.CompositeOf(m); !ok || c != name {
					return false
				}
			}
		}
		ind := v.Induced()
		return ind.NumNodes() == v.Size()+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: Equal is an equivalence relation insensitive to block naming.
func TestQuickViewEqualInvariance(t *testing.T) {
	s := spec.Phylogenomics()
	f := func(assign [8]uint8) bool {
		blocks := phyloPartitionFromAssign(assign)
		v1, err := NewUserView(s, blocks)
		if err != nil {
			return false
		}
		renamed := make(map[string][]string, len(blocks))
		for name, members := range blocks {
			renamed["X"+name] = members
		}
		v2, err := NewUserView(s, renamed)
		if err != nil {
			return false
		}
		return v1.Equal(v1) && v1.Equal(v2) && v2.Equal(v1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: for every relevant subset of the phylogenomics modules, the
// builder output satisfies Properties 1-3, refines UBlackBox, and is
// refined by UAdmin.
func TestQuickBuilderPhyloSubsets(t *testing.T) {
	s := spec.Phylogenomics()
	admin := UAdmin(s)
	bb, err := UBlackBox(s)
	if err != nil {
		t.Fatal(err)
	}
	f := func(mask uint8) bool {
		var rel []string
		for i := 0; i < 8; i++ {
			if mask&(1<<uint(i)) != 0 {
				rel = append(rel, fmt.Sprintf("M%d", i+1))
			}
		}
		v, err := BuildRelevant(s, rel)
		if err != nil {
			return false
		}
		if CheckAll(v, rel) != nil {
			return false
		}
		return Refines(admin, v) && Refines(v, bb)
	}
	// The mask space is only 256 values; sweep it completely instead of
	// sampling.
	for mask := 0; mask < 256; mask++ {
		if !f(uint8(mask)) {
			t.Fatalf("builder property failed for relevant mask %08b", mask)
		}
	}
	// And keep one quick pass to exercise the harness plumbing.
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: rpred/rsucc are dual — r ∈ rpred(n) iff there is an nr-path
// r -> n iff n "sees" r upstream; checked against HasNRPath directly.
func TestQuickAnalysisDuality(t *testing.T) {
	s := spec.Phylogenomics()
	f := func(mask uint8) bool {
		var rel []string
		for i := 0; i < 8; i++ {
			if mask&(1<<uint(i)) != 0 {
				rel = append(rel, fmt.Sprintf("M%d", i+1))
			}
		}
		a, err := NewAnalysis(s, rel)
		if err != nil {
			return false
		}
		for _, n := range s.ModuleNames() {
			for _, r := range append(a.Relevant(), spec.Input) {
				inPred := false
				for _, x := range a.RPred(n) {
					if x == r {
						inPred = true
					}
				}
				if inPred != a.HasNRPath(r, n) {
					return false
				}
			}
			for _, r := range append(a.Relevant(), spec.Output) {
				inSucc := false
				for _, x := range a.RSucc(n) {
					if x == r {
						inSucc = true
					}
				}
				if inSucc != a.HasNRPath(n, r) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
