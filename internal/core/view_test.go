package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/spec"
)

// joeBlocks is Joe's user view from Section I: M9 = {M6, M7, M8} (tree
// building), M10 = {M3, M4, M5} (alignment), with M1 and M2 alone.
func joeBlocks() map[string][]string {
	return map[string][]string{
		"M9":  {"M6", "M7", "M8"},
		"M10": {"M3", "M4", "M5"},
		"C2":  {"M2"},
		"C1":  {"M1"},
	}
}

// maryBlocks is Mary's view: like Joe's but M5 stays visible, M11 = {M3, M4}.
func maryBlocks() map[string][]string {
	return map[string][]string{
		"M9":  {"M6", "M7", "M8"},
		"M11": {"M3", "M4"},
		"C5":  {"M5"},
		"C2":  {"M2"},
		"C1":  {"M1"},
	}
}

func TestNewUserViewValidation(t *testing.T) {
	s := spec.Phylogenomics()

	if _, err := NewUserView(s, joeBlocks()); err != nil {
		t.Fatalf("Joe's view rejected: %v", err)
	}

	cases := []struct {
		name   string
		blocks map[string][]string
	}{
		{"missing module", map[string][]string{"A": {"M1", "M2", "M3", "M4", "M5", "M6", "M7"}}},
		{"duplicate module", map[string][]string{
			"A": {"M1", "M2", "M3", "M4"}, "B": {"M4", "M5", "M6", "M7", "M8"}}},
		{"unknown module", map[string][]string{
			"A": {"M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8", "M99"}}},
		{"empty block", map[string][]string{
			"A": {"M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8"}, "B": {}}},
		{"reserved name", map[string][]string{
			spec.Input: {"M1", "M2", "M3", "M4", "M5", "M6", "M7", "M8"}}},
		{"shadowing name", map[string][]string{
			"M1": {"M2", "M3", "M4", "M5", "M6", "M7", "M8"}, "B": {"M1"}}},
	}
	for _, tc := range cases {
		if _, err := NewUserView(s, tc.blocks); !errors.Is(err, ErrBadView) {
			t.Errorf("%s: err = %v, want ErrBadView", tc.name, err)
		}
	}
}

func TestUserViewAccessors(t *testing.T) {
	s := spec.Phylogenomics()
	joe, err := NewUserView(s, joeBlocks())
	if err != nil {
		t.Fatal(err)
	}
	if got := joe.Size(); got != 4 {
		t.Fatalf("Joe's view size = %d, want 4 (as stated in Section II)", got)
	}
	mary, err := NewUserView(s, maryBlocks())
	if err != nil {
		t.Fatal(err)
	}
	if got := mary.Size(); got != 5 {
		t.Fatalf("Mary's view size = %d, want 5", got)
	}
	if c, ok := joe.CompositeOf("M4"); !ok || c != "M10" {
		t.Fatalf("CompositeOf(M4) = %q, %v", c, ok)
	}
	if c, ok := joe.CompositeOf(spec.Input); !ok || c != spec.Input {
		t.Fatalf("CompositeOf(INPUT) = %q, %v (C(input) must be input)", c, ok)
	}
	if _, ok := joe.CompositeOf("M99"); ok {
		t.Fatal("CompositeOf(unknown) reported ok")
	}
	if got := joe.Members("M9"); !reflect.DeepEqual(got, []string{"M6", "M7", "M8"}) {
		t.Fatalf("Members(M9) = %v", got)
	}
	if got := joe.Members("nope"); got != nil {
		t.Fatalf("Members(unknown) = %v", got)
	}
	if got := joe.Composites(); !reflect.DeepEqual(got, []string{"C1", "C2", "M10", "M9"}) {
		t.Fatalf("Composites = %v", got)
	}
}

func TestBlocksAndBlockOfAreCopies(t *testing.T) {
	s := spec.Phylogenomics()
	joe, _ := NewUserView(s, joeBlocks())
	b := joe.Blocks()
	b["M9"][0] = "tampered"
	if joe.Members("M9")[0] != "M6" {
		t.Fatal("Blocks() aliases internal state")
	}
	bo := joe.BlockOf()
	bo["M6"] = "tampered"
	if c, _ := joe.CompositeOf("M6"); c != "M9" {
		t.Fatal("BlockOf() aliases internal state")
	}
}

func TestInducedJoe(t *testing.T) {
	// Figure 3(a): Joe's induced workflow.
	s := spec.Phylogenomics()
	joe, _ := NewUserView(s, joeBlocks())
	ind := joe.Induced()
	wantEdges := [][2]string{
		{spec.Input, "C1"},  // INPUT -> M1
		{"C1", "C2"},        // M1 -> M2
		{"C1", "M10"},       // M1 -> M3
		{"C2", "M9"},        // M2 -> M8 and M2 -> M6
		{"M10", "M9"},       // M4 -> M7
		{"M9", spec.Output}, // M7 -> OUTPUT
	}
	for _, e := range wantEdges {
		if !ind.HasEdge(e[0], e[1]) {
			t.Errorf("induced view missing edge %v", e)
		}
	}
	if got := ind.NumEdges(); got != len(wantEdges) {
		t.Fatalf("induced view has %d edges, want %d: %v", got, len(wantEdges), ind.Edges())
	}
	// The M3-M4-M5 loop is internal to M10 and must vanish.
	if ind.HasEdge("M10", "M10") {
		t.Fatal("internal loop leaked as a self-loop")
	}
	if !ind.IsAcyclic() {
		t.Fatal("Joe's induced view must be acyclic: the only loop is hidden")
	}
}

func TestInducedMaryKeepsLoop(t *testing.T) {
	// Mary leaves M5 visible, so the loop M11 -> C5 -> M11 survives.
	s := spec.Phylogenomics()
	mary, _ := NewUserView(s, maryBlocks())
	ind := mary.Induced()
	if !ind.HasEdge("M11", "C5") || !ind.HasEdge("C5", "M11") {
		t.Fatalf("Mary's induced view lost the alignment loop: %v", ind.Edges())
	}
	if ind.IsAcyclic() {
		t.Fatal("Mary's induced view must keep the loop")
	}
}

func TestUAdmin(t *testing.T) {
	s := spec.Phylogenomics()
	v := UAdmin(s)
	if v.Size() != s.NumModules() {
		t.Fatalf("UAdmin size = %d, want %d", v.Size(), s.NumModules())
	}
	// UAdmin's induced graph is isomorphic (indeed equal) to the spec graph.
	ind := v.Induced()
	if ind.NumNodes() != s.Graph().NumNodes() || ind.NumEdges() != s.Graph().NumEdges() {
		t.Fatalf("UAdmin induced graph differs from spec: %v vs %v", ind, s.Graph())
	}
	for _, e := range s.Graph().Edges() {
		if !ind.HasEdge(e.From, e.To) {
			t.Fatalf("UAdmin induced graph missing %v", e)
		}
	}
}

func TestUBlackBox(t *testing.T) {
	s := spec.Phylogenomics()
	v, err := UBlackBox(s)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 1 {
		t.Fatalf("UBlackBox size = %d", v.Size())
	}
	ind := v.Induced()
	if !ind.HasEdge(spec.Input, BlackBoxName) || !ind.HasEdge(BlackBoxName, spec.Output) {
		t.Fatalf("black box edges wrong: %v", ind.Edges())
	}
	if ind.NumEdges() != 2 {
		t.Fatalf("black box should have exactly 2 edges, got %v", ind.Edges())
	}
	if _, err := UBlackBox(spec.New("empty")); !errors.Is(err, ErrBadView) {
		t.Fatal("UBlackBox of empty spec must fail")
	}
}

func TestViewEqual(t *testing.T) {
	s := spec.Phylogenomics()
	a, _ := NewUserView(s, joeBlocks())
	// Same partition, different block names.
	renamed := map[string][]string{
		"X1": {"M6", "M7", "M8"},
		"X2": {"M3", "M4", "M5"},
		"X3": {"M2"},
		"X4": {"M1"},
	}
	b, _ := NewUserView(s, renamed)
	if !a.Equal(b) {
		t.Fatal("renamed identical partitions not Equal")
	}
	c, _ := NewUserView(s, maryBlocks())
	if a.Equal(c) {
		t.Fatal("different partitions reported Equal")
	}
}

func TestInducedSpec(t *testing.T) {
	s := spec.Phylogenomics()
	joe, _ := NewUserView(s, joeBlocks())
	ind, err := joe.InducedSpec()
	if err != nil {
		t.Fatal(err)
	}
	if err := ind.Validate(); err != nil {
		t.Fatal(err)
	}
	if ind.NumModules() != 4 {
		t.Fatalf("induced modules = %d", ind.NumModules())
	}
	// M10 = {M3, M4, M5} contains scientific M3 -> composite is scientific.
	m10, _ := ind.Module("M10")
	if m10.Kind != spec.KindScientific {
		t.Fatalf("M10 kind = %s", m10.Kind)
	}
	c1, _ := ind.Module("C1") // {M1}, formatting only
	if c1.Kind != spec.KindFormatting {
		t.Fatalf("C1 kind = %s", c1.Kind)
	}
	// Views stack: a view of the induced spec is legal.
	stacked, err := BuildRelevant(ind, []string{"M10"})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAll(stacked, []string{"M10"}); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSpecBlackBox(t *testing.T) {
	s := spec.Phylogenomics()
	bb, _ := UBlackBox(s)
	ind, err := bb.InducedSpec()
	if err != nil {
		t.Fatal(err)
	}
	if ind.NumModules() != 1 || ind.NumEdges() != 2 {
		t.Fatalf("black-box induced spec: %v", ind)
	}
}
