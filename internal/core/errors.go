package core

import "errors"

// Sentinel errors of the core package.
var (
	// ErrBadView reports a block set that is not a valid partition of the
	// specification's modules.
	ErrBadView = errors.New("core: invalid user view")
	// ErrBadRelevant reports a relevant-module set referencing unknown
	// modules or duplicates.
	ErrBadRelevant = errors.New("core: invalid relevant set")
)
