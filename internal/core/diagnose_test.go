package core

import (
	"strings"
	"testing"

	"repro/internal/spec"
)

func TestDiagnoseCleanView(t *testing.T) {
	s := spec.Phylogenomics()
	joe, _ := BuildRelevant(s, spec.PhyloRelevantJoe())
	if vs := Diagnose(joe, spec.PhyloRelevantJoe()); len(vs) != 0 {
		t.Fatalf("clean view diagnosed: %v", vs)
	}
}

func TestDiagnoseFigure4FindsBoth(t *testing.T) {
	s, blocks, relevant := spec.Figure4()
	v, err := NewUserView(s, map[string][]string{"A": blocks[0], "B": blocks[1]})
	if err != nil {
		t.Fatal(err)
	}
	vs := Diagnose(v, relevant)
	var p2, p3 int
	for _, viol := range vs {
		switch viol.Kind {
		case ViolationPreserves:
			p2++
		case ViolationComplete:
			p3++
		case ViolationWellFormed:
			t.Fatalf("figure 4 view is well-formed, got %v", viol)
		}
	}
	if p2 == 0 || p3 == 0 {
		t.Fatalf("expected both property 2 and 3 findings, got %v", vs)
	}
	// The paper's concrete evidence appears among the findings: the edge
	// (n1, r2) is a property-2 witness.
	found := false
	for _, viol := range vs {
		if viol.Kind == ViolationPreserves && viol.Edge == [2]string{"n1", "r2"} {
			found = true
		}
	}
	if !found {
		t.Fatalf("the paper's (n1, r2) witness missing from %v", vs)
	}
}

func TestDiagnoseProperty1(t *testing.T) {
	s := spec.Phylogenomics()
	joe, _ := NewUserView(s, joeBlocks())
	// Against Mary's relevant set, M10 holds both M3 and M5.
	vs := Diagnose(joe, spec.PhyloRelevantMary())
	found := false
	for _, viol := range vs {
		if viol.Kind == ViolationWellFormed && viol.Composite == "M10" {
			found = true
			if !strings.Contains(viol.Detail, "M3") || !strings.Contains(viol.Detail, "M5") {
				t.Fatalf("detail incomplete: %s", viol.Detail)
			}
		}
	}
	if !found {
		t.Fatalf("property 1 violation on M10 not found: %v", vs)
	}
}

func TestDiagnoseDeterministic(t *testing.T) {
	s, blocks, relevant := spec.Figure4()
	v, _ := NewUserView(s, map[string][]string{"A": blocks[0], "B": blocks[1]})
	a := Diagnose(v, relevant)
	b := Diagnose(v, relevant)
	if len(a) != len(b) {
		t.Fatal("non-deterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic order at %d: %v vs %v", i, a[i], b[i])
		}
	}
	if a[0].String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestDiagnoseAgreesWithCheckAll(t *testing.T) {
	// Diagnose finds nothing exactly when CheckAll passes, across the
	// random instances of the theorem test generator.
	rngSpecs := []struct {
		blocks map[string][]string
		rel    []string
	}{
		{joeBlocks(), spec.PhyloRelevantJoe()},
		{maryBlocks(), spec.PhyloRelevantMary()},
		{map[string][]string{"A": {"M1", "M2"}, "M10": {"M3", "M4", "M5"}, "M9": {"M6", "M7", "M8"}}, spec.PhyloRelevantJoe()},
	}
	s := spec.Phylogenomics()
	for i, tc := range rngSpecs {
		v, err := NewUserView(s, tc.blocks)
		if err != nil {
			t.Fatal(err)
		}
		checkErr := CheckAll(v, tc.rel)
		finds := Diagnose(v, tc.rel)
		if (checkErr == nil) != (len(finds) == 0) {
			t.Fatalf("case %d: CheckAll=%v but Diagnose found %d", i, checkErr, len(finds))
		}
	}
}
