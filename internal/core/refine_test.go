package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/spec"
)

func TestAddRemoveRelevant(t *testing.T) {
	s := spec.Phylogenomics()
	// Joe adds M5 -> he gets Mary's view.
	v, rel, err := AddRelevant(s, spec.PhyloRelevantJoe(), "M5")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rel, []string{"M2", "M3", "M5", "M7"}) {
		t.Fatalf("relevant = %v", rel)
	}
	mary, _ := BuildRelevant(s, spec.PhyloRelevantMary())
	if !v.Equal(mary) {
		t.Fatalf("adding M5 to Joe's set must give Mary's view, got %v", v)
	}
	// Mary removes M5 -> back to Joe's view.
	v2, rel2, err := RemoveRelevant(s, rel, "M5")
	if err != nil {
		t.Fatal(err)
	}
	joe, _ := BuildRelevant(s, spec.PhyloRelevantJoe())
	if !v2.Equal(joe) || len(rel2) != 3 {
		t.Fatalf("removing M5 must give Joe's view, got %v (%v)", v2, rel2)
	}
	// Adding an already-relevant module is a no-op.
	v3, rel3, err := AddRelevant(s, rel2, "M3")
	if err != nil || len(rel3) != 3 || !v3.Equal(joe) {
		t.Fatalf("idempotent add broken: %v %v %v", v3, rel3, err)
	}
}

func TestSubSpecJoeM10(t *testing.T) {
	s := spec.Phylogenomics()
	joe, _ := BuildRelevant(s, spec.PhyloRelevantJoe())
	sub, err := SubSpec(joe, "M3") // Joe's alignment composite {M3, M4, M5}
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.ModuleNames(); !reflect.DeepEqual(got, []string{"M3", "M4", "M5"}) {
		t.Fatalf("sub modules = %v", got)
	}
	// The loop survives inside the sub-workflow.
	for _, e := range [][2]string{{"M3", "M4"}, {"M4", "M5"}, {"M5", "M3"}} {
		if !sub.Graph().HasEdge(e[0], e[1]) {
			t.Fatalf("sub-spec missing %v", e)
		}
	}
	// M1 -> M3 became INPUT -> M3; M4 -> M7 became M4 -> OUTPUT.
	if !sub.Graph().HasEdge(spec.Input, "M3") {
		t.Fatal("entry edge missing")
	}
	if !sub.Graph().HasEdge("M4", spec.Output) {
		t.Fatal("exit edge missing")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSubSpecUnknownComposite(t *testing.T) {
	s := spec.Phylogenomics()
	joe, _ := BuildRelevant(s, spec.PhyloRelevantJoe())
	if _, err := SubSpec(joe, "nope"); !errors.Is(err, ErrBadView) {
		t.Fatalf("err = %v", err)
	}
}

func TestRefineCompositeTreeBlock(t *testing.T) {
	// Refining Joe's tree composite M9 = {M6, M7, M8} with {M7, M8}
	// relevant inside splits it into {M6, M7} and {M8}.
	s := spec.Phylogenomics()
	joe, _ := BuildRelevant(s, spec.PhyloRelevantJoe())
	refined, err := RefineComposite(joe, "M7", []string{"M7", "M8"})
	if err != nil {
		t.Fatal(err)
	}
	if got := refined.Members("M8"); !reflect.DeepEqual(got, []string{"M8"}) {
		t.Fatalf("Members(M8) = %v", got)
	}
	if got := refined.Members("M7"); !reflect.DeepEqual(got, []string{"M6", "M7"}) {
		t.Fatalf("Members(M7) = %v", got)
	}
	// Untouched blocks survive.
	if got := refined.Members("M3"); !reflect.DeepEqual(got, []string{"M3", "M4", "M5"}) {
		t.Fatalf("Members(M3) = %v", got)
	}
	if !Refines(refined, joe) {
		t.Fatal("refined view does not refine the original")
	}
	if Refines(joe, refined) {
		t.Fatal("coarser view claims to refine the finer one")
	}
}

func TestRefineCompositeErrors(t *testing.T) {
	s := spec.Phylogenomics()
	joe, _ := BuildRelevant(s, spec.PhyloRelevantJoe())
	if _, err := RefineComposite(joe, "nope", nil); !errors.Is(err, ErrBadView) {
		t.Fatalf("unknown composite: %v", err)
	}
	if _, err := RefineComposite(joe, "M7", []string{"M1"}); !errors.Is(err, ErrBadRelevant) {
		t.Fatalf("outside module accepted: %v", err)
	}
}

func TestRefinesLattice(t *testing.T) {
	s := spec.Phylogenomics()
	admin := UAdmin(s)
	bb, _ := UBlackBox(s)
	joe, _ := BuildRelevant(s, spec.PhyloRelevantJoe())
	mary, _ := BuildRelevant(s, spec.PhyloRelevantMary())
	cases := []struct {
		a, b *UserView
		want bool
	}{
		{admin, joe, true}, {admin, bb, true}, {joe, bb, true},
		{mary, joe, true}, // Mary's view is strictly finer than Joe's
		{joe, mary, false}, {bb, joe, false}, {joe, admin, false},
		{joe, joe, true},
	}
	for i, tc := range cases {
		if got := Refines(tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: Refines = %v, want %v", i, got, tc.want)
		}
	}
}

func TestRefineCompositePreservesPartition(t *testing.T) {
	// Property: refining any composite of a random builder view yields a
	// valid partition that refines the original.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		s := randomSpec(rng, 4+rng.Intn(5))
		rel := randomRelevant(rng, s, rng.Intn(3))
		v, err := BuildRelevant(s, rel)
		if err != nil {
			t.Fatal(err)
		}
		comps := v.Composites()
		comp := comps[rng.Intn(len(comps))]
		members := v.Members(comp)
		inner := []string{members[rng.Intn(len(members))]}
		refined, err := RefineComposite(v, comp, inner)
		if err != nil {
			// Disconnected composites may not form a valid sub-workflow;
			// that is a documented limitation, not a failure.
			continue
		}
		if !Refines(refined, v) {
			t.Fatalf("trial %d: refinement not finer\nbase: %v\nrefined: %v", trial, v, refined)
		}
	}
}
