package core

import (
	"fmt"
	"sort"
)

// Diagnostics for hand-built views. CheckAll stops at the first violation,
// which suits assertions; an interactive view editor (the prototype lets
// users regroup modules freely) wants the complete list, so the user can
// see every grouping that breaks dataflow at once.

// ViolationKind classifies a diagnostic finding.
type ViolationKind string

// The violation kinds, one per property of Section III.
const (
	ViolationWellFormed ViolationKind = "property1-well-formed"
	ViolationPreserves  ViolationKind = "property2-preserves-dataflow"
	ViolationComplete   ViolationKind = "property3-complete"
)

// Violation is one diagnostic finding.
type Violation struct {
	Kind ViolationKind
	// Composite names the offending composite for Property 1 violations.
	Composite string
	// Edge is the offending specification edge for Property 2/3 violations.
	Edge [2]string
	// Pair is the (r, r') endpoint pair whose nr-path evidence fails.
	Pair [2]string
	// Detail is a human-readable explanation.
	Detail string
}

// String implements fmt.Stringer.
func (v Violation) String() string { return string(v.Kind) + ": " + v.Detail }

// Diagnose runs all three property checks and returns every violation,
// deterministically ordered. An empty result means the view is good.
func Diagnose(v *UserView, relevant []string) []Violation {
	var out []Violation
	rel := toSet(relevant)
	for _, name := range v.Composites() {
		var found []string
		for _, m := range v.blocks[name] {
			if rel[m] {
				found = append(found, m)
			}
		}
		if len(found) > 1 {
			out = append(out, Violation{
				Kind:      ViolationWellFormed,
				Composite: name,
				Detail:    fmt.Sprintf("composite %q contains %d relevant modules %v", name, len(found), found),
			})
		}
	}
	specCtx, viewCtx, cOf := buildContexts(v, relevant)
	v.spec.Graph().EachEdge(func(u, w string) {
		a, b := cOf(u), cOf(w)
		if a == b {
			return
		}
		for _, r := range specCtx.sources {
			for _, rp := range specCtx.targets {
				onView := viewCtx.edgeOnNRPath(a, b, cOf(r), cOf(rp))
				onSpec := specCtx.edgeOnNRPath(u, w, r, rp)
				if onView && !onSpec {
					out = append(out, Violation{
						Kind: ViolationPreserves,
						Edge: [2]string{u, w},
						Pair: [2]string{r, rp},
						Detail: fmt.Sprintf("edge (%s,%s) makes %s appear to feed %s via (%s,%s), but no such dataflow exists",
							u, w, r, rp, a, b),
					})
				}
				if onSpec && !onView {
					out = append(out, Violation{
						Kind: ViolationComplete,
						Edge: [2]string{u, w},
						Pair: [2]string{r, rp},
						Detail: fmt.Sprintf("dataflow %s -> %s through edge (%s,%s) is hidden: induced edge (%s,%s) lost it",
							r, rp, u, w, a, b),
					})
				}
			}
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].Edge != out[j].Edge {
			return out[i].Edge[0]+out[i].Edge[1] < out[j].Edge[0]+out[j].Edge[1]
		}
		return out[i].Pair[0]+out[i].Pair[1] < out[j].Pair[0]+out[j].Pair[1]
	})
	return out
}
