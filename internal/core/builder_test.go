package core

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/spec"
)

func TestBuilderJoe(t *testing.T) {
	// Running RelevUserViewBuilder with Joe's relevant modules must
	// reconstruct exactly the view the paper attributes to Joe (Section I):
	// M10 = {M3, M4, M5}, M9 = {M6, M7, M8}, M2 and M1 alone.
	s := spec.Phylogenomics()
	v, err := BuildRelevant(s, spec.PhyloRelevantJoe())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewUserView(s, joeBlocks())
	if !v.Equal(want) {
		t.Fatalf("builder produced %v, want Joe's view %v", v, want)
	}
	if v.Size() != 4 {
		t.Fatalf("size = %d, want 4", v.Size())
	}
	// Relevant composites are named after their relevant module.
	if got := v.Members("M3"); !reflect.DeepEqual(got, []string{"M3", "M4", "M5"}) {
		t.Fatalf("Members(M3) = %v", got)
	}
	if got := v.Members("M7"); !reflect.DeepEqual(got, []string{"M6", "M7", "M8"}) {
		t.Fatalf("Members(M7) = %v", got)
	}
}

func TestBuilderMary(t *testing.T) {
	s := spec.Phylogenomics()
	v, err := BuildRelevant(s, spec.PhyloRelevantMary())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewUserView(s, maryBlocks())
	if !v.Equal(want) {
		t.Fatalf("builder produced %v, want Mary's view %v", v, want)
	}
	if v.Size() != 5 {
		t.Fatalf("size = %d, want 5", v.Size())
	}
	// Mary's alignment composite M11 contains only M3 and M4.
	if got := v.Members("M3"); !reflect.DeepEqual(got, []string{"M3", "M4"}) {
		t.Fatalf("Members(M3) = %v", got)
	}
}

func TestBuilderFigure6(t *testing.T) {
	// Section III walks through the three steps on Figure 6 and derives:
	// step 1: {M2, M3} and {M6, M8};
	// step 2: {M4, M5}, {M1}, {M7};
	// step 3: merge {M1} with {M4, M5}; {M7} stays alone.
	s, relevant := spec.Figure6()
	v, err := BuildRelevant(s, relevant)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewUserView(s, map[string][]string{
		"A": {"M2", "M3"},
		"B": {"M6", "M8"},
		"C": {"M1", "M4", "M5"},
		"D": {"M7"},
	})
	if !v.Equal(want) {
		t.Fatalf("builder produced %v, want %v", v, want)
	}
}

func TestBuilderFigure6Properties(t *testing.T) {
	s, relevant := spec.Figure6()
	v, _ := BuildRelevant(s, relevant)
	if err := CheckAll(v, relevant); err != nil {
		t.Fatalf("builder output violates properties: %v", err)
	}
	if ok, w := Minimal(v, relevant); !ok {
		t.Fatalf("builder output not minimal: merge %v possible", w)
	}
}

func TestBuilderEmptyRelevant(t *testing.T) {
	// With no relevant modules every module shares the signature
	// ({input}, {output}), so the builder collapses to the black box.
	s := spec.Phylogenomics()
	v, err := BuildRelevant(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 1 {
		t.Fatalf("size = %d, want 1 (black box)", v.Size())
	}
}

func TestBuilderAllRelevant(t *testing.T) {
	s := spec.Phylogenomics()
	v, err := BuildRelevant(s, s.ModuleNames())
	if err != nil {
		t.Fatal(err)
	}
	admin := UAdmin(s)
	if !v.Equal(admin) {
		t.Fatalf("all-relevant build %v differs from UAdmin", v)
	}
}

func TestBuilderUnknownRelevant(t *testing.T) {
	if _, err := BuildRelevant(spec.Phylogenomics(), []string{"nope"}); !errors.Is(err, ErrBadRelevant) {
		t.Fatalf("err = %v, want ErrBadRelevant", err)
	}
}

func TestBuilderFigure4NotUsedBlindly(t *testing.T) {
	// Figure 4's hand-made view violates Properties 2 and 3; the builder,
	// given the same relevant modules, must produce a different view that
	// satisfies them.
	s, blocks, relevant := spec.Figure4()
	bad, err := NewUserView(s, map[string][]string{"A": blocks[0], "B": blocks[1]})
	if err != nil {
		t.Fatal(err)
	}
	if err := PreservesDataflow(bad, relevant); !errors.Is(err, ErrProperty2) {
		t.Fatalf("figure 4 view should violate property 2, got %v", err)
	}
	if err := CompleteWRTDataflow(bad, relevant); !errors.Is(err, ErrProperty3) {
		t.Fatalf("figure 4 view should violate property 3, got %v", err)
	}
	good, err := BuildRelevant(s, relevant)
	if err != nil {
		t.Fatal(err)
	}
	if good.Equal(bad) {
		t.Fatal("builder reproduced the known-bad view")
	}
	if err := CheckAll(good, relevant); err != nil {
		t.Fatalf("builder output violates properties: %v", err)
	}
}

func TestBuilderDeterministic(t *testing.T) {
	s, relevant := spec.Figure6()
	a, _ := BuildRelevant(s, relevant)
	for i := 0; i < 5; i++ {
		b, _ := BuildRelevant(s, relevant)
		if !reflect.DeepEqual(a.Blocks(), b.Blocks()) {
			t.Fatalf("run %d differs: %v vs %v", i, a, b)
		}
	}
}

func TestBuildFromAnalysisMatchesBuildRelevant(t *testing.T) {
	s := spec.Phylogenomics()
	rel := spec.PhyloRelevantMary()
	a, err := NewAnalysis(s, rel)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := BuildFromAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := BuildRelevant(s, rel)
	if !v1.Equal(v2) {
		t.Fatal("BuildFromAnalysis differs from BuildRelevant")
	}
}

func TestBuilderRelevantCompositesConnected(t *testing.T) {
	// Section III: "Properties 1-3 guarantee that a relevant composite
	// module will always be a connected partition."
	for _, tc := range []struct {
		s   *spec.Spec
		rel []string
	}{
		{spec.Phylogenomics(), spec.PhyloRelevantJoe()},
		{spec.Phylogenomics(), spec.PhyloRelevantMary()},
	} {
		v, err := BuildRelevant(tc.s, tc.rel)
		if err != nil {
			t.Fatal(err)
		}
		if err := RelevantCompositeConnected(v, tc.rel); err != nil {
			t.Fatal(err)
		}
	}
	s, rel := spec.Figure6()
	v, _ := BuildRelevant(s, rel)
	if err := RelevantCompositeConnected(v, rel); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderNoNewLoops(t *testing.T) {
	// Section III: Properties 1-3 do not introduce loops in the induced
	// workflow other than those present in the original specification.
	// Figure 6 is acyclic, so every builder view of it must induce a DAG.
	s, relevant := spec.Figure6()
	v, _ := BuildRelevant(s, relevant)
	if !v.Induced().IsAcyclic() {
		t.Fatal("induced view of acyclic spec is cyclic")
	}
}
