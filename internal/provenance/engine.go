// Package provenance answers provenance queries through user views — the
// purpose of the whole system. The engine implements the strategy the
// paper's evaluation found best (Section V.B, "Query response time"):
// first compute the UAdmin deep provenance (a recursive closure over the
// step-level immediate-provenance relation, cached per run and data object
// by the warehouse), then remove the information hidden inside the
// composite steps of the requested user view. Because the expensive first
// phase is cached, switching the user view on the same run re-projects the
// cached closure and costs milliseconds — the paper's interactive-
// capability result.
package provenance

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

// ErrForeignView reports a view built over a different specification than
// the queried run's.
var ErrForeignView = errors.New("provenance: view does not match run's specification")

// Engine evaluates provenance queries against a warehouse.
//
// Thread-safety contract: every exported method is safe for concurrent
// use by multiple goroutines. The engine itself holds only the memoized
// view→composite-execution mappings, each built at most once per
// (run, view) key via a sync.Once so concurrent first queries on the same
// view never duplicate the Build; returned Mappings and Results are
// treated as immutable after construction and may be shared freely. The
// expensive UAdmin closures live in the warehouse's sharded singleflight
// cache, so concurrent queries over the same run contend only briefly on
// a shard lock, never on the traversal itself.
type Engine struct {
	w *warehouse.Warehouse

	mu       sync.Mutex
	mappings map[mappingKey]*mappingEntry

	// obs holds the engine's metrics instruments (nil when detached — the
	// common case, in which queries never read the clock). Published
	// atomically so AttachMetrics is safe against in-flight queries.
	obs atomic.Pointer[engineMetrics]
}

type mappingKey struct {
	runID string
	view  *core.UserView
}

// mappingEntry memoizes one Build outcome. The Once ensures the mapping
// is computed exactly once even when many goroutines miss concurrently —
// the engine-level analogue of the warehouse's singleflight.
type mappingEntry struct {
	once sync.Once
	m    *composite.Mapping
	err  error
}

// NewEngine returns an engine over the given warehouse.
func NewEngine(w *warehouse.Warehouse) *Engine {
	return &Engine{w: w, mappings: make(map[mappingKey]*mappingEntry)}
}

// Warehouse returns the underlying warehouse.
func (e *Engine) Warehouse() *warehouse.Warehouse { return e.w }

// mapping returns the (cached) composite-execution mapping of a run under a
// view. Mappings depend only on (run, view), not on the queried data, so
// they are shared across queries and built exactly once per key.
func (e *Engine) mapping(r *run.Run, v *core.UserView) (*composite.Mapping, error) {
	key := mappingKey{runID: r.ID(), view: v}
	e.mu.Lock()
	ent := e.mappings[key]
	if ent == nil {
		ent = &mappingEntry{}
		e.mappings[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() { ent.m, ent.err = composite.Build(r, v) })
	return ent.m, ent.err
}

// Edge is a dataflow edge of a provenance result graph.
type Edge struct {
	// From is a composite execution id or INPUT.
	From string
	// To is a composite execution id.
	To string
	// Data are the data objects passed, naturally ordered.
	Data []string
}

// Result is the answer to a provenance query under a user view.
type Result struct {
	RunID string
	Root  string
	// External is true when Root was provided by the user or the workflow
	// input; its provenance is then only the recorded metadata.
	External bool
	// Metadata carries the recorded input metadata (who/when) for an
	// external Root — the paper's provenance of user-provided data.
	Metadata map[string]string
	// Executions are the visible composite executions, topologically
	// ordered, with their full input/output sets.
	Executions []*composite.Execution
	// Data are the visible data objects (the paper's result-size metric).
	Data []string
	// Edges form the displayed provenance graph.
	Edges []Edge
}

// NumData returns the number of visible data objects — the metric Figures
// 10 and 11 plot.
func (r *Result) NumData() int { return len(r.Data) }

// NumSteps returns the number of visible composite executions.
func (r *Result) NumSteps() int { return len(r.Executions) }

// Tuples returns the total number of result rows (execution rows plus data
// rows), the warehouse-level answer size.
func (r *Result) Tuples() int { return len(r.Executions) + len(r.Data) }

// DeepProvenance answers the paper's flagship query — "what are all the
// data objects / sequence of steps which have been used to produce this
// data object?" — with respect to a user view.
func (e *Engine) DeepProvenance(runID string, v *core.UserView, d string) (*Result, error) {
	return e.deepProvenance(context.Background(), runID, v, d, nil, warehouse.StrategyAuto)
}

// DeepProvenanceCtx is DeepProvenance with a context. When the context
// carries a trace span (obs.StartSpan / Trace.Context) the query records
// "query.lookup" and "query.project" child spans — with the closure cache
// adding "closure.compute" or "closure.shared-wait" beneath the lookup —
// so a served request's response can explain where its time went. An
// untraced context costs one nil span check and behaves exactly like
// DeepProvenance.
func (e *Engine) DeepProvenanceCtx(ctx context.Context, runID string, v *core.UserView, d string) (*Result, error) {
	return e.deepProvenance(ctx, runID, v, d, nil, warehouse.StrategyAuto)
}

// DeepProvenanceStrategy is DeepProvenance with an explicit closure strategy
// for the UAdmin phase — per-query label selection overriding the
// warehouse's SetLabelIndex toggle. The projection phase is identical either
// way; the differential equivalence suite pins the results byte-for-byte.
func (e *Engine) DeepProvenanceStrategy(runID string, v *core.UserView, d string, strat warehouse.ClosureStrategy) (*Result, error) {
	return e.deepProvenance(context.Background(), runID, v, d, nil, strat)
}

// DeepProvenanceStrategyCtx is DeepProvenanceStrategy with a context.
func (e *Engine) DeepProvenanceStrategyCtx(ctx context.Context, runID string, v *core.UserView, d string, strat warehouse.ClosureStrategy) (*Result, error) {
	return e.deepProvenance(ctx, runID, v, d, nil, strat)
}

// deepProvenance is the shared query path behind DeepProvenance and
// DeepProvenanceTraced. When a metrics registry is attached, a trace is
// requested, or the context carries a span, it times each stage
// (closure-cache lookup including compute or wait, then view projection
// including the memoized mapping's first build); otherwise it never reads
// the clock, which is what keeps the detached overhead to a few nil checks
// (BenchmarkObsOverhead pins this).
func (e *Engine) deepProvenance(ctx context.Context, runID string, v *core.UserView, d string, tr *QueryTrace, strat warehouse.ClosureStrategy) (*Result, error) {
	m := e.obs.Load()
	sp := obs.SpanFromContext(ctx)
	timed := m != nil || tr != nil || sp != nil
	var start time.Time
	if timed {
		start = time.Now()
	}
	r, err := e.w.Run(runID)
	if err != nil {
		m.queryError()
		return nil, err
	}
	if r.SpecName() != v.Spec().Name() {
		m.queryError()
		return nil, fmt.Errorf("%w: run %q executes %q, view is over %q",
			ErrForeignView, runID, r.SpecName(), v.Spec().Name())
	}
	lctx, lsp := obs.StartSpan(ctx, "query.lookup")
	closure, o, err := e.w.DeepProvenanceStrategyCtx(lctx, runID, d, timed, strat)
	lsp.End()
	if err != nil {
		m.queryError()
		return nil, err
	}
	var lookupNs int64
	var projectStart time.Time
	if timed {
		// The lookup stage is measured from the query start: the run/view
		// validation above it costs tens of nanoseconds, not worth a third
		// clock read on the warm path.
		projectStart = time.Now()
		lookupNs = projectStart.Sub(start).Nanoseconds()
	}
	psp := sp.StartChild("query.project")
	mp, err := e.mapping(r, v)
	if err != nil {
		psp.End()
		m.queryError()
		return nil, err
	}
	res := project(mp, closure)
	psp.End()
	if timed {
		end := time.Now()
		projectNs := end.Sub(projectStart).Nanoseconds()
		totalNs := end.Sub(start).Nanoseconds()
		if m != nil {
			m.queries.Inc()
			m.totalNs[o.Outcome].Observe(totalNs)
			m.lookupNs.Observe(lookupNs)
			if o.Outcome == warehouse.OutcomeMiss {
				m.computeNs.Observe(o.ComputeNs)
			}
			m.projectNs.Observe(projectNs)
		}
		if tr != nil {
			tr.Outcome = o.Outcome.String()
			tr.Strategy = o.Strategy
			tr.LookupNs = lookupNs
			tr.ComputeNs = o.ComputeNs
			tr.ProjectNs = projectNs
			tr.TotalNs = totalNs
			tr.Steps = res.NumSteps()
			tr.Data_ = res.NumData()
			tr.Edges = len(res.Edges)
		}
	}
	return res, nil
}

// project restricts a UAdmin closure to what a view shows: the composite
// executions that intersect the closure, the data crossing their
// boundaries, and the edges between them. Bitset-backed closures take the
// integer fast path (intersect interned-id sets against the mapping's
// Projector, materialize strings only for the final Result); map-backed
// closures — legacy warehouses and the merged closures ExecutionProvenance
// assembles — take the string path. The equivalence property tests hold
// the two paths element-for-element identical.
func project(m *composite.Mapping, closure *warehouse.Closure) *Result {
	if ix, stepBits, dataBits, ok := closure.Bits(); ok {
		if px := m.Projector(); px.Index() == ix {
			return projectIndexed(m, px, closure.Root, stepBits, dataBits)
		}
	}
	return projectLegacy(m, closure)
}

// projectIndexed is the fast path: closure membership is a bit test, the
// visible-execution set is a bitset over topological ordinals, and data
// comes out naturally sorted for free because interned ids are natural
// ranks.
func projectIndexed(m *composite.Mapping, px *composite.Projector, root string, stepBits, dataBits bitset.Set) *Result {
	ix := px.Index()
	res := &Result{RunID: m.Run().ID(), Root: root, External: m.Run().IsExternal(root)}
	if res.External {
		res.Metadata = m.Run().InputMeta(root)
	}
	visible := bitset.New(px.NumExecutions())
	stepBits.Each(func(s int32) { visible.Add(px.ExecOfStep(s)) })
	outData := bitset.New(ix.NumData())
	if rootID, ok := ix.DataID(root); ok {
		outData.Add(rootID)
	}
	eb := borrowEdgeBuilder()
	// Ascending ordinals are topological order, matching m.Executions().
	visible.Each(func(ord int32) {
		ex := px.Execution(ord)
		res.Executions = append(res.Executions, ex)
		for _, d := range px.InputsOf(ord) {
			if !dataBits.Has(d) {
				continue // input irrelevant to this derivation
			}
			outData.Add(d)
			if src := px.ProducerExec(d); src < 0 {
				eb.add(spec.Input, ex.ID, ix.DataName(d), d)
			} else if visible.Has(src) {
				eb.add(px.Execution(src).ID, ex.ID, ix.DataName(d), d)
			}
		}
	})
	res.Data = make([]string, 0, outData.Count())
	outData.Each(func(d int32) { res.Data = append(res.Data, ix.DataName(d)) })
	res.Edges = eb.build()
	eb.release()
	return res
}

// projectLegacy is the string/map path.
func projectLegacy(m *composite.Mapping, closure *warehouse.Closure) *Result {
	res := &Result{RunID: m.Run().ID(), Root: closure.Root, External: m.Run().IsExternal(closure.Root)}
	if res.External {
		res.Metadata = m.Run().InputMeta(closure.Root)
	}
	// When every execution is a singleton (UAdmin without self-loops),
	// execution ids are step ids and visibility is closure membership —
	// no visible map needed.
	allSingle := m.AllSingleton()
	var visible map[string]bool
	if !allSingle {
		visible = make(map[string]bool)
	}
	for _, ex := range m.Executions() {
		for _, s := range ex.Steps {
			if closure.HasStep(s) {
				if !allSingle {
					visible[ex.ID] = true
				}
				res.Executions = append(res.Executions, ex)
				break
			}
		}
	}
	isVisible := func(id string) bool {
		if allSingle {
			return closure.HasStep(id)
		}
		return visible[id]
	}
	dataSet := map[string]bool{closure.Root: true}
	eb := borrowEdgeBuilder()
	for _, ex := range res.Executions {
		for _, d := range ex.Inputs {
			if !closure.HasData(d) {
				continue // input irrelevant to this derivation
			}
			dataSet[d] = true
			src, ok := m.ProducerExecution(d)
			if !ok {
				src = spec.Input
			}
			if src == spec.Input || isVisible(src) {
				eb.add(src, ex.ID, d, -1)
			}
		}
	}
	res.Data = make([]string, 0, len(dataSet))
	for d := range dataSet {
		res.Data = append(res.Data, d)
	}
	sortNatural(res.Data)
	res.Edges = eb.build()
	eb.release()
	return res
}

// edgeBuilder accumulates provenance-graph edges as a flat triple slice
// instead of the nested map-of-maps a per-query accumulator would allocate:
// one append per (from, to, data) fact, one sort, one grouping pass.
// Builders are pooled across queries, so a steady query load reuses the
// same backing arrays. rank is the data id's interned natural rank when the
// caller knows it (the indexed path), letting the sort compare ints instead
// of re-parsing digit suffixes; -1 falls back to lessNatural.
type edgeBuilder struct {
	triples []edgeTriple
}

type edgeTriple struct {
	from, to, d string
	rank        int32
}

var edgeBuilderPool = sync.Pool{New: func() interface{} { return &edgeBuilder{} }}

func borrowEdgeBuilder() *edgeBuilder {
	eb := edgeBuilderPool.Get().(*edgeBuilder)
	eb.triples = eb.triples[:0]
	return eb
}

func (eb *edgeBuilder) release() { edgeBuilderPool.Put(eb) }

func (eb *edgeBuilder) add(from, to, d string, rank int32) {
	eb.triples = append(eb.triples, edgeTriple{from: from, to: to, d: d, rank: rank})
}

// build sorts the triples by (From, To, natural data order) and groups them
// into Edges. Callers never add the same triple twice, so no deduplication
// is needed.
func (eb *edgeBuilder) build() []Edge {
	ts := eb.triples
	if len(ts) == 0 {
		return nil
	}
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].from != ts[j].from {
			return ts[i].from < ts[j].from
		}
		if ts[i].to != ts[j].to {
			return ts[i].to < ts[j].to
		}
		if ts[i].rank >= 0 && ts[j].rank >= 0 {
			return ts[i].rank < ts[j].rank
		}
		return lessNatural(ts[i].d, ts[j].d)
	})
	var edges []Edge
	for i := 0; i < len(ts); {
		j := i
		for j < len(ts) && ts[j].from == ts[i].from && ts[j].to == ts[i].to {
			j++
		}
		ds := make([]string, 0, j-i)
		for k := i; k < j; k++ {
			ds = append(ds, ts[k].d)
		}
		edges = append(edges, Edge{From: ts[i].from, To: ts[i].to, Data: ds})
		i = j
	}
	return edges
}

// ImmediateProvenance returns the composite execution that produced d under
// the view, with its full input set: "the immediate provenance of d413
// seen by Joe would be S13 and its input, {d308,...,d408} ... whereas that
// seen by Mary would be S12 and its input, {d411}".
func (e *Engine) ImmediateProvenance(runID string, v *core.UserView, d string) (*composite.Execution, error) {
	return e.ImmediateProvenanceCtx(context.Background(), runID, v, d)
}

// ImmediateProvenanceCtx is ImmediateProvenance with a context; a traced
// context records the whole stage as one "query.immediate" span (the query
// is a pair of map lookups — there are no interior stages worth splitting).
func (e *Engine) ImmediateProvenanceCtx(ctx context.Context, runID string, v *core.UserView, d string) (*composite.Execution, error) {
	_, sp := obs.StartSpan(ctx, "query.immediate")
	defer sp.End()
	r, err := e.w.Run(runID)
	if err != nil {
		return nil, err
	}
	if r.SpecName() != v.Spec().Name() {
		return nil, fmt.Errorf("%w: run %q executes %q, view is over %q",
			ErrForeignView, runID, r.SpecName(), v.Spec().Name())
	}
	if !r.HasData(d) {
		return nil, fmt.Errorf("%w: %q in run %q", warehouse.ErrUnknownData, d, runID)
	}
	m, err := e.mapping(r, v)
	if err != nil {
		return nil, err
	}
	id, ok := m.ProducerExecution(d)
	if !ok {
		return nil, nil // external input: provenance is metadata only
	}
	ex, _ := m.Execution(id)
	return ex, nil
}

// DeepDerivation is the canned inverse query ("return the data objects
// which have a given data object in their data provenance") projected
// through a view. Unlike DeepProvenance its closure is uncached, so the
// attached histogram (query.derivation_ns) records the full traversal each
// time.
func (e *Engine) DeepDerivation(runID string, v *core.UserView, d string) (*Result, error) {
	return e.DeepDerivationStrategy(runID, v, d, warehouse.StrategyAuto)
}

// DeepDerivationStrategy is DeepDerivation with an explicit closure strategy
// for the UAdmin traversal (label suffix scans versus forward BFS).
func (e *Engine) DeepDerivationStrategy(runID string, v *core.UserView, d string, strat warehouse.ClosureStrategy) (*Result, error) {
	m := e.obs.Load()
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	r, err := e.w.Run(runID)
	if err != nil {
		m.queryError()
		return nil, err
	}
	if r.SpecName() != v.Spec().Name() {
		m.queryError()
		return nil, fmt.Errorf("%w: run %q executes %q, view is over %q",
			ErrForeignView, runID, r.SpecName(), v.Spec().Name())
	}
	closure, err := e.w.DeepDerivationStrategy(runID, d, strat)
	if err != nil {
		m.queryError()
		return nil, err
	}
	mp, err := e.mapping(r, v)
	if err != nil {
		m.queryError()
		return nil, err
	}
	res := projectForward(mp, closure)
	if m != nil {
		m.forwardNs.Observe(time.Since(start).Nanoseconds())
	}
	return res, nil
}

// projectForward mirrors project for the derivation direction: visible
// executions intersecting the closure, and the closure data leaving each
// execution toward other visible executions (or toward the final output).
// Like project, bitset-backed closures take the integer fast path.
func projectForward(m *composite.Mapping, closure *warehouse.Closure) *Result {
	if ix, stepBits, dataBits, ok := closure.Bits(); ok {
		if px := m.Projector(); px.Index() == ix {
			return projectForwardIndexed(m, px, closure.Root, stepBits, dataBits)
		}
	}
	return projectForwardLegacy(m, closure)
}

func projectForwardIndexed(m *composite.Mapping, px *composite.Projector, root string, stepBits, dataBits bitset.Set) *Result {
	ix := px.Index()
	res := &Result{RunID: m.Run().ID(), Root: root, External: m.Run().IsExternal(root)}
	if res.External {
		res.Metadata = m.Run().InputMeta(root)
	}
	visible := bitset.New(px.NumExecutions())
	stepBits.Each(func(s int32) { visible.Add(px.ExecOfStep(s)) })
	outData := bitset.New(ix.NumData())
	if rootID, ok := ix.DataID(root); ok {
		outData.Add(rootID)
	}
	visible.Each(func(ord int32) {
		res.Executions = append(res.Executions, px.Execution(ord))
		for _, d := range px.OutputsOf(ord) {
			if !dataBits.Has(d) {
				continue
			}
			if ix.IsFinal(d) || consumedOutsideIndexed(ix, px, visible, ord, d) {
				outData.Add(d)
			}
		}
	})
	res.Data = make([]string, 0, outData.Count())
	outData.Each(func(d int32) { res.Data = append(res.Data, ix.DataName(d)) })
	return res
}

func consumedOutsideIndexed(ix *run.Index, px *composite.Projector, visible bitset.Set, ord, d int32) bool {
	for _, s := range ix.ConsumersOf(d) {
		if e := px.ExecOfStep(s); e != ord && visible.Has(e) {
			return true
		}
	}
	return false
}

func projectForwardLegacy(m *composite.Mapping, closure *warehouse.Closure) *Result {
	res := &Result{RunID: m.Run().ID(), Root: closure.Root, External: m.Run().IsExternal(closure.Root)}
	if res.External {
		res.Metadata = m.Run().InputMeta(closure.Root)
	}
	allSingle := m.AllSingleton()
	var visible map[string]bool
	if !allSingle {
		visible = make(map[string]bool)
	}
	for _, ex := range m.Executions() {
		for _, s := range ex.Steps {
			if closure.HasStep(s) {
				if !allSingle {
					visible[ex.ID] = true
				}
				res.Executions = append(res.Executions, ex)
				break
			}
		}
	}
	isVisible := func(id string) bool {
		if allSingle {
			return closure.HasStep(id)
		}
		return visible[id]
	}
	dataSet := map[string]bool{closure.Root: true}
	finals := make(map[string]bool)
	for _, d := range m.Run().FinalOutputs() {
		finals[d] = true
	}
	for _, ex := range res.Executions {
		for _, d := range ex.Outputs {
			if closure.HasData(d) && (finals[d] || consumedOutside(m, ex.ID, d, isVisible)) {
				dataSet[d] = true
			}
		}
	}
	res.Data = make([]string, 0, len(dataSet))
	for d := range dataSet {
		res.Data = append(res.Data, d)
	}
	sortNatural(res.Data)
	return res
}

func consumedOutside(m *composite.Mapping, execID, d string, visible func(string) bool) bool {
	for _, c := range m.Run().Consumers(d) {
		if id, ok := m.ExecutionOf(c); ok && id != execID && visible(id) {
			return true
		}
	}
	return false
}

func sortNatural(xs []string) {
	sort.Slice(xs, func(i, j int) bool { return lessNatural(xs[i], xs[j]) })
}

func lessNatural(a, b string) bool {
	pa, na := splitNat(a)
	pb, nb := splitNat(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

func splitNat(s string) (string, int) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	// No digit suffix, or one too long to fit an int without overflow
	// (> 18 digits): fall back to plain string comparison.
	if i == len(s) || len(s)-i > 18 {
		return s, -1
	}
	n := 0
	for _, c := range s[i:] {
		n = n*10 + int(c-'0')
	}
	return s[:i], n
}
