// Package provenance answers provenance queries through user views — the
// purpose of the whole system. The engine implements the strategy the
// paper's evaluation found best (Section V.B, "Query response time"):
// first compute the UAdmin deep provenance (a recursive closure over the
// step-level immediate-provenance relation, cached per run and data object
// by the warehouse), then remove the information hidden inside the
// composite steps of the requested user view. Because the expensive first
// phase is cached, switching the user view on the same run re-projects the
// cached closure and costs milliseconds — the paper's interactive-
// capability result.
package provenance

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

// ErrForeignView reports a view built over a different specification than
// the queried run's.
var ErrForeignView = errors.New("provenance: view does not match run's specification")

// Engine evaluates provenance queries against a warehouse.
//
// Thread-safety contract: every exported method is safe for concurrent
// use by multiple goroutines. The engine itself holds only the memoized
// view→composite-execution mappings, each built at most once per
// (run, view) key via a sync.Once so concurrent first queries on the same
// view never duplicate the Build; returned Mappings and Results are
// treated as immutable after construction and may be shared freely. The
// expensive UAdmin closures live in the warehouse's sharded singleflight
// cache, so concurrent queries over the same run contend only briefly on
// a shard lock, never on the traversal itself.
type Engine struct {
	w *warehouse.Warehouse

	mu       sync.Mutex
	mappings map[mappingKey]*mappingEntry
}

type mappingKey struct {
	runID string
	view  *core.UserView
}

// mappingEntry memoizes one Build outcome. The Once ensures the mapping
// is computed exactly once even when many goroutines miss concurrently —
// the engine-level analogue of the warehouse's singleflight.
type mappingEntry struct {
	once sync.Once
	m    *composite.Mapping
	err  error
}

// NewEngine returns an engine over the given warehouse.
func NewEngine(w *warehouse.Warehouse) *Engine {
	return &Engine{w: w, mappings: make(map[mappingKey]*mappingEntry)}
}

// Warehouse returns the underlying warehouse.
func (e *Engine) Warehouse() *warehouse.Warehouse { return e.w }

// mapping returns the (cached) composite-execution mapping of a run under a
// view. Mappings depend only on (run, view), not on the queried data, so
// they are shared across queries and built exactly once per key.
func (e *Engine) mapping(r *run.Run, v *core.UserView) (*composite.Mapping, error) {
	key := mappingKey{runID: r.ID(), view: v}
	e.mu.Lock()
	ent := e.mappings[key]
	if ent == nil {
		ent = &mappingEntry{}
		e.mappings[key] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() { ent.m, ent.err = composite.Build(r, v) })
	return ent.m, ent.err
}

// Edge is a dataflow edge of a provenance result graph.
type Edge struct {
	// From is a composite execution id or INPUT.
	From string
	// To is a composite execution id.
	To string
	// Data are the data objects passed, naturally ordered.
	Data []string
}

// Result is the answer to a provenance query under a user view.
type Result struct {
	RunID string
	Root  string
	// External is true when Root was provided by the user or the workflow
	// input; its provenance is then only the recorded metadata.
	External bool
	// Metadata carries the recorded input metadata (who/when) for an
	// external Root — the paper's provenance of user-provided data.
	Metadata map[string]string
	// Executions are the visible composite executions, topologically
	// ordered, with their full input/output sets.
	Executions []*composite.Execution
	// Data are the visible data objects (the paper's result-size metric).
	Data []string
	// Edges form the displayed provenance graph.
	Edges []Edge
}

// NumData returns the number of visible data objects — the metric Figures
// 10 and 11 plot.
func (r *Result) NumData() int { return len(r.Data) }

// NumSteps returns the number of visible composite executions.
func (r *Result) NumSteps() int { return len(r.Executions) }

// Tuples returns the total number of result rows (execution rows plus data
// rows), the warehouse-level answer size.
func (r *Result) Tuples() int { return len(r.Executions) + len(r.Data) }

// DeepProvenance answers the paper's flagship query — "what are all the
// data objects / sequence of steps which have been used to produce this
// data object?" — with respect to a user view.
func (e *Engine) DeepProvenance(runID string, v *core.UserView, d string) (*Result, error) {
	r, err := e.w.Run(runID)
	if err != nil {
		return nil, err
	}
	if r.SpecName() != v.Spec().Name() {
		return nil, fmt.Errorf("%w: run %q executes %q, view is over %q",
			ErrForeignView, runID, r.SpecName(), v.Spec().Name())
	}
	closure, err := e.w.DeepProvenance(runID, d)
	if err != nil {
		return nil, err
	}
	m, err := e.mapping(r, v)
	if err != nil {
		return nil, err
	}
	return project(m, closure), nil
}

// project restricts a UAdmin closure to what a view shows: the composite
// executions that intersect the closure, the data crossing their
// boundaries, and the edges between them.
func project(m *composite.Mapping, closure *warehouse.Closure) *Result {
	res := &Result{RunID: m.Run().ID(), Root: closure.Root, External: m.Run().IsExternal(closure.Root)}
	if res.External {
		res.Metadata = m.Run().InputMeta(closure.Root)
	}
	visible := make(map[string]bool)
	for _, ex := range m.Executions() {
		for _, s := range ex.Steps {
			if closure.Steps[s] {
				visible[ex.ID] = true
				res.Executions = append(res.Executions, ex)
				break
			}
		}
	}
	dataSet := map[string]bool{closure.Root: true}
	edgeAcc := make(map[[2]string]map[string]bool)
	addEdge := func(from, to, d string) {
		key := [2]string{from, to}
		if edgeAcc[key] == nil {
			edgeAcc[key] = make(map[string]bool)
		}
		edgeAcc[key][d] = true
	}
	for _, ex := range res.Executions {
		for _, d := range ex.Inputs {
			if !closure.Data[d] {
				continue // input irrelevant to this derivation
			}
			dataSet[d] = true
			src, ok := m.ProducerExecution(d)
			if !ok {
				src = spec.Input
			}
			if visible[src] || src == spec.Input {
				addEdge(src, ex.ID, d)
			}
		}
	}
	res.Data = make([]string, 0, len(dataSet))
	for d := range dataSet {
		res.Data = append(res.Data, d)
	}
	sortNatural(res.Data)
	keys := make([][2]string, 0, len(edgeAcc))
	for k := range edgeAcc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		ds := make([]string, 0, len(edgeAcc[k]))
		for d := range edgeAcc[k] {
			ds = append(ds, d)
		}
		sortNatural(ds)
		res.Edges = append(res.Edges, Edge{From: k[0], To: k[1], Data: ds})
	}
	return res
}

// ImmediateProvenance returns the composite execution that produced d under
// the view, with its full input set: "the immediate provenance of d413
// seen by Joe would be S13 and its input, {d308,...,d408} ... whereas that
// seen by Mary would be S12 and its input, {d411}".
func (e *Engine) ImmediateProvenance(runID string, v *core.UserView, d string) (*composite.Execution, error) {
	r, err := e.w.Run(runID)
	if err != nil {
		return nil, err
	}
	if r.SpecName() != v.Spec().Name() {
		return nil, fmt.Errorf("%w: run %q executes %q, view is over %q",
			ErrForeignView, runID, r.SpecName(), v.Spec().Name())
	}
	if !r.HasData(d) {
		return nil, fmt.Errorf("%w: %q in run %q", warehouse.ErrUnknownData, d, runID)
	}
	m, err := e.mapping(r, v)
	if err != nil {
		return nil, err
	}
	id, ok := m.ProducerExecution(d)
	if !ok {
		return nil, nil // external input: provenance is metadata only
	}
	ex, _ := m.Execution(id)
	return ex, nil
}

// DeepDerivation is the canned inverse query ("return the data objects
// which have a given data object in their data provenance") projected
// through a view.
func (e *Engine) DeepDerivation(runID string, v *core.UserView, d string) (*Result, error) {
	r, err := e.w.Run(runID)
	if err != nil {
		return nil, err
	}
	if r.SpecName() != v.Spec().Name() {
		return nil, fmt.Errorf("%w: run %q executes %q, view is over %q",
			ErrForeignView, runID, r.SpecName(), v.Spec().Name())
	}
	closure, err := e.w.DeepDerivation(runID, d)
	if err != nil {
		return nil, err
	}
	m, err := e.mapping(r, v)
	if err != nil {
		return nil, err
	}
	return projectForward(m, closure), nil
}

// projectForward mirrors project for the derivation direction: visible
// executions intersecting the closure, and the closure data leaving each
// execution toward other visible executions (or toward the final output).
func projectForward(m *composite.Mapping, closure *warehouse.Closure) *Result {
	res := &Result{RunID: m.Run().ID(), Root: closure.Root, External: m.Run().IsExternal(closure.Root)}
	if res.External {
		res.Metadata = m.Run().InputMeta(closure.Root)
	}
	visible := make(map[string]bool)
	for _, ex := range m.Executions() {
		for _, s := range ex.Steps {
			if closure.Steps[s] {
				visible[ex.ID] = true
				res.Executions = append(res.Executions, ex)
				break
			}
		}
	}
	dataSet := map[string]bool{closure.Root: true}
	finals := make(map[string]bool)
	for _, d := range m.Run().FinalOutputs() {
		finals[d] = true
	}
	for _, ex := range res.Executions {
		for _, d := range ex.Outputs {
			if closure.Data[d] && (finals[d] || consumedOutside(m, ex.ID, d, visible)) {
				dataSet[d] = true
			}
		}
	}
	res.Data = make([]string, 0, len(dataSet))
	for d := range dataSet {
		res.Data = append(res.Data, d)
	}
	sortNatural(res.Data)
	return res
}

func consumedOutside(m *composite.Mapping, execID, d string, visible map[string]bool) bool {
	for _, c := range m.Run().Consumers(d) {
		if id, ok := m.ExecutionOf(c); ok && id != execID && visible[id] {
			return true
		}
	}
	return false
}

func sortNatural(xs []string) {
	sort.Slice(xs, func(i, j int) bool { return lessNatural(xs[i], xs[j]) })
}

func lessNatural(a, b string) bool {
	pa, na := splitNat(a)
	pb, nb := splitNat(b)
	if pa != pb {
		return pa < pb
	}
	if na != nb {
		return na < nb
	}
	return a < b
}

func splitNat(s string) (string, int) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return s, -1
	}
	n := 0
	for _, c := range s[i:] {
		n = n*10 + int(c-'0')
	}
	return s[:i], n
}
