package provenance

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/warehouse"
)

func TestDerivationPathJoeVsMary(t *testing.T) {
	f := newFixture(t)
	// Under Joe's view the loop is one box: d308 reaches d413 in one hop
	// through the alignment composite.
	pathJoe, err := f.e.DerivationPath("fig2", f.joe, "d308", "d413")
	if err != nil {
		t.Fatal(err)
	}
	if len(pathJoe) != 2 {
		t.Fatalf("Joe's path length = %d, want 2 (one composite hop): %v", len(pathJoe), pathJoe)
	}
	if pathJoe[0].Data != "d308" || pathJoe[1].Data != "d413" {
		t.Fatalf("Joe's path endpoints wrong: %v", pathJoe)
	}
	// Under Mary's view the visible loop makes the path longer:
	// d308 -[S11]-> d410 -[S4]-> d411 -[S12]-> d413.
	pathMary, err := f.e.DerivationPath("fig2", f.mary, "d308", "d413")
	if err != nil {
		t.Fatal(err)
	}
	if len(pathMary) != 4 {
		t.Fatalf("Mary's path length = %d, want 4: %v", len(pathMary), pathMary)
	}
	want := []string{"d308", "d410", "d411", "d413"}
	for i, el := range pathMary {
		if el.Data != want[i] {
			t.Fatalf("Mary's path hop %d = %s, want %s", i, el.Data, want[i])
		}
	}
	rendered := FormatPath(pathMary)
	if !strings.Contains(rendered, "d308 -[") || !strings.Contains(rendered, "]-> d413") {
		t.Fatalf("FormatPath = %s", rendered)
	}
}

func TestDerivationPathAbsent(t *testing.T) {
	f := newFixture(t)
	// The lab annotations do not influence the alignment d413.
	path, err := f.e.DerivationPath("fig2", f.joe, "d415", "d413")
	if err != nil {
		t.Fatal(err)
	}
	if path != nil {
		t.Fatalf("unexpected path: %v", path)
	}
	if FormatPath(nil) != "(no derivation path)" {
		t.Fatal("empty-path rendering wrong")
	}
}

func TestDerivationPathDegenerate(t *testing.T) {
	f := newFixture(t)
	path, err := f.e.DerivationPath("fig2", f.joe, "d447", "d447")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0].Data != "d447" {
		t.Fatalf("self path = %v", path)
	}
}

func TestDerivationPathErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := f.e.DerivationPath("ghost", f.joe, "d1", "d2"); !errors.Is(err, warehouse.ErrUnknownRun) {
		t.Fatalf("unknown run: %v", err)
	}
	if _, err := f.e.DerivationPath("fig2", f.joe, "nope", "d447"); !errors.Is(err, warehouse.ErrUnknownData) {
		t.Fatalf("unknown from: %v", err)
	}
	if _, err := f.e.DerivationPath("fig2", f.joe, "d1", "nope"); !errors.Is(err, warehouse.ErrUnknownData) {
		t.Fatalf("unknown to: %v", err)
	}
	foreign := newFixture(t)
	_ = foreign
}

func TestDerivationPathAgreesWithInProvenance(t *testing.T) {
	// Under UAdmin (where every data object of Figure 2 is visible), a
	// derivation path exists exactly when the closure-level InProvenance
	// holds. Under coarser views the path may vanish because the target is
	// hidden inside a composite — see TestDerivationPathHiddenTarget.
	f := newFixture(t)
	admin := core.UAdmin(f.s)
	for _, from := range []string{"d1", "d201", "d308", "d415"} {
		for _, to := range []string{"d413", "d414", "d447"} {
			inProv, err := f.e.InProvenance("fig2", from, to)
			if err != nil {
				t.Fatal(err)
			}
			path, err := f.e.DerivationPath("fig2", admin, from, to)
			if err != nil {
				t.Fatal(err)
			}
			if inProv != (path != nil) {
				t.Fatalf("(%s, %s): InProvenance=%v but path=%v", from, to, inProv, path)
			}
		}
	}
}

func TestDerivationPathHiddenTarget(t *testing.T) {
	// d414 is internal to Joe's tree composite: d1 influences it at the
	// closure level, but no visible path exists through Joe's view.
	f := newFixture(t)
	inProv, err := f.e.InProvenance("fig2", "d1", "d414")
	if err != nil || !inProv {
		t.Fatalf("closure-level influence missing: %v %v", inProv, err)
	}
	path, err := f.e.DerivationPath("fig2", f.joe, "d1", "d414")
	if err != nil {
		t.Fatal(err)
	}
	if path != nil {
		t.Fatalf("hidden target reachable through Joe's view: %v", path)
	}
}
