package provenance

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/warehouse"
)

// TestBatchFailFastAbortsRemaining is the regression test for the wasted
// work bug: DeepProvenanceBatch documents that the first failing query
// aborts the batch, but the old implementation ran every query to
// completion first. With one worker (fully sequential) and the bad id
// first, no query after the failure may reach the closure cache.
func TestBatchFailFastAbortsRemaining(t *testing.T) {
	e, r, views := phyloEngine(t)
	ids := []string{"no-such-data", "d447", "d413", "d408", "d311"}
	_, err := e.DeepProvenanceBatch(context.Background(), r.ID(), views["admin"], ids, 1)
	if !errors.Is(err, warehouse.ErrUnknownData) {
		t.Fatalf("err = %v, want ErrUnknownData", err)
	}
	if !strings.Contains(err.Error(), "batch query 0 (no-such-data)") {
		t.Fatalf("error does not name the failing query: %v", err)
	}
	c := e.Warehouse().CacheCounters()
	// Exactly one lookup happened: the failing one. The four good queries
	// were cancelled, not computed.
	if lookups := c.Hits + c.Misses + c.SharedWaits; lookups != 1 {
		t.Fatalf("%d closure lookups after early failure, want 1 (wasted work): %+v", lookups, c)
	}
}

// TestBatchFailFastReportsFirstGenuineError: with the failure in the
// middle, earlier successes complete, the failure is reported under its own
// index, and induced cancellations are not misreported as the batch error.
func TestBatchFailFastReportsFirstGenuineError(t *testing.T) {
	e, r, views := phyloEngine(t)
	ids := []string{"d447", "d413", "bogus", "d408", "d311", "d352"}
	_, err := e.DeepProvenanceBatch(context.Background(), r.ID(), views["joe"], ids, 1)
	if !errors.Is(err, warehouse.ErrUnknownData) {
		t.Fatalf("err = %v, want ErrUnknownData", err)
	}
	if !strings.Contains(err.Error(), "batch query 2 (bogus)") {
		t.Fatalf("wrong query blamed: %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("induced cancellation leaked into the batch error: %v", err)
	}
}

// TestBatchCallerCancellationStillReported: the fail-fast rewrite must not
// swallow a cancellation the caller issued — that still surfaces as a
// context error, as the pre-existing cancellation test expects.
func TestBatchCallerCancellationStillReported(t *testing.T) {
	e, r, views := phyloEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.DeepProvenanceBatch(ctx, r.ID(), views["admin"], []string{"d447", "d413"}, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestEngineMetricsOutcomes: an attached engine splits query latency by
// cache outcome and counts stages; detach stops recording.
func TestEngineMetricsOutcomes(t *testing.T) {
	e, r, views := phyloEngine(t)
	reg := obs.NewRegistry()
	e.AttachMetrics(reg)
	e.Warehouse().AttachMetrics(reg)

	if _, err := e.DeepProvenance(r.ID(), views["joe"], "d447"); err != nil { // miss
		t.Fatal(err)
	}
	if _, err := e.DeepProvenance(r.ID(), views["mary"], "d447"); err != nil { // hit (view switch)
		t.Fatal(err)
	}
	if _, err := e.DeepProvenance(r.ID(), views["admin"], "nope"); err == nil { // error
		t.Fatal("bad data id succeeded")
	}
	s := reg.Snapshot()
	if s.Counters["query.deep_total"] != 2 || s.Counters["query.errors"] != 1 {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if s.Histograms["query.deep_total_ns.miss"].Count != 1 {
		t.Fatalf("miss histogram: %+v", s.Histograms["query.deep_total_ns.miss"])
	}
	if s.Histograms["query.deep_total_ns.hit"].Count != 1 {
		t.Fatalf("hit histogram: %+v", s.Histograms["query.deep_total_ns.hit"])
	}
	if s.Histograms["query.closure_compute_ns"].Count != 1 {
		t.Fatal("compute histogram must record misses only")
	}
	if s.Histograms["query.lookup_ns"].Count != 2 || s.Histograms["query.project_ns"].Count != 2 {
		t.Fatalf("stage histograms: %+v", s.Histograms)
	}
	// The failed lookup counts as a cache miss too (its compute errored, so
	// nothing was stored), hence 2 misses but only 1 store.
	if s.Counters["cache.hits"] != 1 || s.Counters["cache.misses"] != 2 || s.Counters["cache.stores"] != 1 {
		t.Fatalf("cache mirror counters: %+v", s.Counters)
	}

	e.AttachMetrics(nil)
	e.Warehouse().AttachMetrics(nil)
	if _, err := e.DeepProvenance(r.ID(), views["joe"], "d447"); err != nil {
		t.Fatal(err)
	}
	if n := reg.Snapshot().Counters["query.deep_total"]; n != 2 {
		t.Fatalf("detached engine still recorded: %d", n)
	}
}

// TestBatchMetrics: ServeConcurrently records batch size and the clamped
// worker count.
func TestBatchMetrics(t *testing.T) {
	e, r, views := phyloEngine(t)
	reg := obs.NewRegistry()
	e.AttachMetrics(reg)
	queries := make([]Query, 6)
	for i, d := range []string{"d447", "d413", "d408", "d311", "d352", "d300"} {
		queries[i] = Query{RunID: r.ID(), View: views["admin"], Data: d}
	}
	e.ServeConcurrently(context.Background(), queries, 64) // clamped to len(queries)
	s := reg.Snapshot()
	if s.Counters["batch.count"] != 1 {
		t.Fatalf("batch.count = %d", s.Counters["batch.count"])
	}
	if s.Histograms["batch.size"].Max != 6 {
		t.Fatalf("batch.size max = %d, want 6", s.Histograms["batch.size"].Max)
	}
	if s.Histograms["batch.workers"].Max != 6 {
		t.Fatalf("batch.workers max = %d, want clamped 6", s.Histograms["batch.workers"].Max)
	}
}

// TestDeepProvenanceTraced checks the per-stage breakdown: a cold trace is
// a miss with compute time inside the lookup stage, the warm re-query of
// the same key is a hit with no compute, and both carry the result sizes.
func TestDeepProvenanceTraced(t *testing.T) {
	e, r, views := phyloEngine(t)
	res, cold, err := e.DeepProvenanceTraced(r.ID(), views["joe"], "d447")
	if err != nil {
		t.Fatal(err)
	}
	if cold.Outcome != "miss" {
		t.Fatalf("cold outcome = %q, want miss", cold.Outcome)
	}
	if cold.ComputeNs <= 0 || cold.LookupNs < cold.ComputeNs {
		t.Fatalf("cold stage times inconsistent: lookup=%d compute=%d", cold.LookupNs, cold.ComputeNs)
	}
	if cold.TotalNs < cold.LookupNs+cold.ProjectNs {
		t.Fatalf("total %d < lookup %d + project %d", cold.TotalNs, cold.LookupNs, cold.ProjectNs)
	}
	if cold.Steps != res.NumSteps() || cold.Data_ != res.NumData() || cold.Edges != len(res.Edges) {
		t.Fatalf("trace sizes %d/%d/%d disagree with result %d/%d/%d",
			cold.Steps, cold.Data_, cold.Edges, res.NumSteps(), res.NumData(), len(res.Edges))
	}
	_, warm, err := e.DeepProvenanceTraced(r.ID(), views["mary"], "d447")
	if err != nil {
		t.Fatal(err)
	}
	if warm.Outcome != "hit" {
		t.Fatalf("warm outcome = %q, want hit (closure cached across view switch)", warm.Outcome)
	}
	if warm.ComputeNs != 0 {
		t.Fatalf("warm trace reports compute time %d", warm.ComputeNs)
	}
	// The rendering names every stage.
	text := warm.String()
	for _, want := range []string{"closure lookup", "view projection", "total", "outcome=hit"} {
		if !strings.Contains(text, want) {
			t.Fatalf("trace rendering missing %q:\n%s", want, text)
		}
	}
}
