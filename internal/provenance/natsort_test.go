package provenance

import (
	"sort"
	"strings"
	"testing"
)

// TestSplitNatOverflow pins the overflow guard: digit suffixes longer than
// 18 characters cannot be parsed into an int without overflow, so they fall
// back to plain string comparison instead of wrapping negative.
func TestSplitNatOverflow(t *testing.T) {
	big := "d" + strings.Repeat("9", 25)
	if prefix, n := splitNat(big); prefix != big || n != -1 {
		t.Fatalf("splitNat(%q) = (%q, %d), want string fallback", big, prefix, n)
	}
	// 18 digits still parse (fits in int64).
	if prefix, n := splitNat("d999999999999999999"); prefix != "d" || n != 999999999999999999 {
		t.Fatalf("18-digit suffix: (%q, %d)", prefix, n)
	}
	// An overflowing suffix must not compare below small numbers: were the
	// parse allowed to wrap negative, big would sort before d2.
	if lessNatural(big, "d2") {
		t.Fatalf("%q sorted before d2: overflow wrapped negative", big)
	}
	if !lessNatural("d2", big) {
		t.Fatalf("d2 not before %q", big)
	}
	// Two long suffixes order as strings, consistently and antisymmetrically.
	a := "d" + strings.Repeat("1", 30)
	b := "d" + strings.Repeat("2", 30)
	if !lessNatural(a, b) || lessNatural(b, a) {
		t.Fatal("long-suffix comparison not a strict order")
	}
}

// TestSortNaturalOrdering pins the ordinary cases around the guard.
func TestSortNaturalOrdering(t *testing.T) {
	xs := []string{"d10", "d2", "S1", "d" + strings.Repeat("9", 25), "d1", "S10", "S9", "d9999999999999999999"}
	sortNatural(xs)
	want := []string{"S1", "S9", "S10", "d1", "d2", "d10", "d9999999999999999999", "d" + strings.Repeat("9", 25)}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("sorted = %v, want %v", xs, want)
		}
	}
	// sort.Slice with lessNatural must be deterministic: resorting a
	// shuffled copy gives the same order.
	ys := append([]string(nil), xs...)
	for i := len(ys)/2 - 1; i >= 0; i-- {
		opp := len(ys) - 1 - i
		ys[i], ys[opp] = ys[opp], ys[i]
	}
	sort.Slice(ys, func(i, j int) bool { return lessNatural(ys[i], ys[j]) })
	for i := range xs {
		if xs[i] != ys[i] {
			t.Fatalf("unstable natural order: %v vs %v", xs, ys)
		}
	}
}
