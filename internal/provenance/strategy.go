package provenance

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

// This file implements the alternative evaluation strategy the paper tried
// and rejected ("We tested various strategies to implement the computation
// of deep provenance through user views"): recursing directly over the
// composite-execution graph of the requested view instead of computing the
// UAdmin closure first. It is kept as an ablation target — benchmarks
// compare it against the projected strategy — and as a semantic contrast:
// because a multi-step composite execution is traversed as a unit, the
// direct strategy pulls in *every* input of a visited execution, so on
// views with large composites it may over-approximate the precise
// derivation that UAdmin-then-project reports. (On UAdmin itself the two
// strategies coincide; the property tests pin this down.)

// DeepProvenanceDirect answers the deep-provenance query by recursive
// traversal at the granularity of the view's composite executions, without
// consulting or populating the UAdmin closure cache.
func (e *Engine) DeepProvenanceDirect(runID string, v *core.UserView, d string) (*Result, error) {
	r, err := e.w.Run(runID)
	if err != nil {
		return nil, err
	}
	if r.SpecName() != v.Spec().Name() {
		return nil, fmt.Errorf("%w: run %q executes %q, view is over %q",
			ErrForeignView, runID, r.SpecName(), v.Spec().Name())
	}
	if !r.HasData(d) {
		return nil, fmt.Errorf("%w: %q in run %q", warehouse.ErrUnknownData, d, runID)
	}
	m, err := e.mapping(r, v)
	if err != nil {
		return nil, err
	}
	res := &Result{RunID: runID, Root: d, External: r.IsExternal(d)}
	if res.External {
		res.Metadata = r.InputMeta(d)
	}
	dataSet := map[string]bool{d: true}
	visible := make(map[string]bool)
	start, ok := m.ProducerExecution(d)
	if ok {
		// Recursive CONNECT BY over execution ids.
		order := warehouse.ConnectBy([]string{start}, func(id string) []string {
			ex, _ := m.Execution(id)
			var parents []string
			for _, in := range ex.Inputs {
				dataSet[in] = true
				if p, ok := m.ProducerExecution(in); ok {
					parents = append(parents, p)
				}
			}
			return parents
		})
		for _, id := range order {
			visible[id] = true
		}
	}
	for _, ex := range m.Executions() { // topological order
		if visible[ex.ID] {
			res.Executions = append(res.Executions, ex)
		}
	}
	edgeAcc := make(map[[2]string][]string)
	for _, ex := range res.Executions {
		for _, in := range ex.Inputs {
			src, ok := m.ProducerExecution(in)
			if !ok {
				src = spec.Input
			}
			key := [2]string{src, ex.ID}
			edgeAcc[key] = append(edgeAcc[key], in)
		}
	}
	for key, ds := range edgeAcc {
		sortNatural(ds)
		res.Edges = append(res.Edges, Edge{From: key[0], To: key[1], Data: ds})
	}
	sortEdges(res.Edges)
	res.Data = make([]string, 0, len(dataSet))
	for x := range dataSet {
		res.Data = append(res.Data, x)
	}
	sortNatural(res.Data)
	return res, nil
}

func sortEdges(edges []Edge) {
	for i := 1; i < len(edges); i++ {
		for j := i; j > 0 && edgeLess(edges[j], edges[j-1]); j-- {
			edges[j], edges[j-1] = edges[j-1], edges[j]
		}
	}
}

func edgeLess(a, b Edge) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}
