package provenance

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

// The equivalence property: the bitset/CSR fast path (indexed warehouse)
// and the legacy string/map path (SetCompactIndex(false)) must produce
// element-for-element identical Results — same executions in the same
// order, same data, same edges — for every query. These tests pin it on
// the paper's phylogenomics example and on generated runs from every
// workflow class and every Table II run class.

// twinEngines returns two engines over the same spec and run: one indexed,
// one legacy.
func twinEngines(t *testing.T, s *spec.Spec, r *run.Run) (indexed, legacy *Engine) {
	t.Helper()
	wi := warehouse.New(0)
	if err := wi.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	if err := wi.LoadRun(r); err != nil {
		t.Fatal(err)
	}
	wl := warehouse.New(0)
	wl.SetCompactIndex(false)
	if err := wl.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	if err := wl.LoadRun(r); err != nil {
		t.Fatal(err)
	}
	if wi.RunIndex(r.ID()) == nil {
		t.Fatal("indexed warehouse built no index")
	}
	if wl.RunIndex(r.ID()) != nil {
		t.Fatal("legacy warehouse built an index")
	}
	return NewEngine(wi), NewEngine(wl)
}

func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if a.RunID != b.RunID || a.Root != b.Root || a.External != b.External {
		t.Fatalf("%s: headers differ: %+v vs %+v", label, a, b)
	}
	if !reflect.DeepEqual(a.Metadata, b.Metadata) {
		t.Fatalf("%s: metadata differ: %v vs %v", label, a.Metadata, b.Metadata)
	}
	if len(a.Executions) != len(b.Executions) {
		t.Fatalf("%s: %d vs %d executions", label, len(a.Executions), len(b.Executions))
	}
	for i := range a.Executions {
		if !reflect.DeepEqual(a.Executions[i], b.Executions[i]) {
			t.Fatalf("%s: execution %d differs: %+v vs %+v", label, i, a.Executions[i], b.Executions[i])
		}
	}
	if !reflect.DeepEqual(a.Data, b.Data) {
		t.Fatalf("%s: data differ:\nindexed %v\nlegacy  %v", label, a.Data, b.Data)
	}
	if !reflect.DeepEqual(a.Edges, b.Edges) {
		t.Fatalf("%s: edges differ:\nindexed %v\nlegacy  %v", label, a.Edges, b.Edges)
	}
}

// checkEquivalence compares both strategies for provenance and derivation
// of the given data objects under the given views.
func checkEquivalence(t *testing.T, ei, el *Engine, r *run.Run, views map[string]*core.UserView, data []string) {
	t.Helper()
	for vname, v := range views {
		for _, d := range data {
			a, err := ei.DeepProvenance(r.ID(), v, d)
			if err != nil {
				t.Fatalf("indexed prov(%s,%s): %v", vname, d, err)
			}
			b, err := el.DeepProvenance(r.ID(), v, d)
			if err != nil {
				t.Fatalf("legacy prov(%s,%s): %v", vname, d, err)
			}
			sameResult(t, fmt.Sprintf("prov %s/%s/%s", r.ID(), vname, d), a, b)
			a, err = ei.DeepDerivation(r.ID(), v, d)
			if err != nil {
				t.Fatalf("indexed deriv(%s,%s): %v", vname, d, err)
			}
			b, err = el.DeepDerivation(r.ID(), v, d)
			if err != nil {
				t.Fatalf("legacy deriv(%s,%s): %v", vname, d, err)
			}
			sameResult(t, fmt.Sprintf("deriv %s/%s/%s", r.ID(), vname, d), a, b)
		}
	}
}

// TestEquivalencePhylogenomics: every data object of the Figure 2 run,
// under UAdmin, Joe's view, Mary's view, and UBlackBox.
func TestEquivalencePhylogenomics(t *testing.T) {
	s := spec.Phylogenomics()
	r := run.Figure2()
	ei, el := twinEngines(t, s, r)
	joe, err := core.BuildRelevant(s, spec.PhyloRelevantJoe())
	if err != nil {
		t.Fatal(err)
	}
	mary, err := core.BuildRelevant(s, spec.PhyloRelevantMary())
	if err != nil {
		t.Fatal(err)
	}
	bb, err := core.UBlackBox(s)
	if err != nil {
		t.Fatal(err)
	}
	views := map[string]*core.UserView{
		"admin": core.UAdmin(s), "joe": joe, "mary": mary, "blackbox": bb,
	}
	checkEquivalence(t, ei, el, r, views, r.AllData())
}

// TestEquivalenceGeneratedRuns: 200 generated runs covering every workflow
// class and every Table II run class (mostly small for runtime, with
// periodic medium and large instances), compared under UAdmin, the UBio
// view, and a random builder view.
func TestEquivalenceGeneratedRuns(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 24
	}
	g := gen.NewGenerator(777)
	rng := rand.New(rand.NewSource(778))
	classes := gen.Classes()
	sawRunClass := map[string]bool{}
	for i := 0; i < trials; i++ {
		wc := classes[i%len(classes)]
		rc := gen.Small()
		switch {
		case i%50 == 20:
			rc = gen.Large()
		case i%10 == 5:
			rc = gen.Medium()
		}
		sawRunClass[rc.Name] = true
		s := g.Workflow(wc, fmt.Sprintf("eq-%d", i))
		r, _, err := g.Run(s, rc, fmt.Sprintf("eq-%d-r", i))
		if err != nil {
			t.Fatal(err)
		}
		ei, el := twinEngines(t, s, r)
		views := map[string]*core.UserView{"admin": core.UAdmin(s)}
		if ubio, err := core.BuildRelevant(s, gen.UBioRelevant(s)); err == nil {
			views["ubio"] = ubio
		}
		rel := randomModules(rng, s.ModuleNames())
		if v, err := core.BuildRelevant(s, rel); err == nil {
			views["random"] = v
		}
		data := sampleData(rng, r.AllData(), 8)
		finals := r.FinalOutputs()
		if len(finals) > 0 {
			data = append(data, finals[len(finals)-1])
		}
		checkEquivalence(t, ei, el, r, views, data)
	}
	if !testing.Short() {
		for _, want := range []string{"small", "medium", "large"} {
			if !sawRunClass[want] {
				t.Fatalf("run class %s never exercised", want)
			}
		}
	}
}

// TestConcurrentIndexedServe runs a query burst through ServeConcurrently
// against an indexed warehouse — the projector sync.Once, the shared frozen
// closure bitsets, and the pooled edge builders all under -race — and
// cross-checks every answer against the legacy engine.
func TestConcurrentIndexedServe(t *testing.T) {
	g := gen.NewGenerator(911)
	s := g.Workflow(gen.Class4(), "conc-ix")
	r, _, err := g.Run(s, gen.Medium(), "conc-ix-r")
	if err != nil {
		t.Fatal(err)
	}
	ei, el := twinEngines(t, s, r)
	admin := core.UAdmin(s)
	ubio, err := core.BuildRelevant(s, gen.UBioRelevant(s))
	if err != nil {
		t.Fatal(err)
	}
	data := sampleData(rand.New(rand.NewSource(13)), r.AllData(), 40)
	var queries []Query
	for rep := 0; rep < 4; rep++ { // repeats force cache-hit sharing
		for _, d := range data {
			queries = append(queries, Query{RunID: r.ID(), View: admin, Data: d})
			queries = append(queries, Query{RunID: r.ID(), View: ubio, Data: d})
		}
	}
	answered := ei.ServeConcurrently(context.Background(), queries, 8)
	for _, qr := range answered {
		if qr.Err != nil {
			t.Fatalf("query %d (%s): %v", qr.Index, qr.Query.Data, qr.Err)
		}
		want, err := el.DeepProvenance(qr.Query.RunID, qr.Query.View, qr.Query.Data)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("concurrent %s", qr.Query.Data), qr.Result, want)
	}
}
