package provenance

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/warehouse"
)

// Why-provenance: beyond "everything upstream", users ask *how* a
// particular input influenced a result. DerivationPath answers with one
// shortest chain of visible composite executions and data objects from a
// source data object to a target, through the given view.

// PathElement is one hop of a derivation path: a data object and the
// execution that consumed it on the way to the target ("" for the final
// element).
type PathElement struct {
	Data string
	Exec string
}

// DerivationPath returns a shortest derivation chain from one data object
// to another under the view, or nil when the source does not influence the
// target. The path alternates data and executions, starting at from and
// ending at to.
func (e *Engine) DerivationPath(runID string, v *core.UserView, from, to string) ([]PathElement, error) {
	r, err := e.w.Run(runID)
	if err != nil {
		return nil, err
	}
	if r.SpecName() != v.Spec().Name() {
		return nil, fmt.Errorf("%w: run %q executes %q, view is over %q",
			ErrForeignView, runID, r.SpecName(), v.Spec().Name())
	}
	for _, d := range []string{from, to} {
		if !r.HasData(d) {
			return nil, fmt.Errorf("%w: %q in run %q", warehouse.ErrUnknownData, d, runID)
		}
	}
	m, err := e.mapping(r, v)
	if err != nil {
		return nil, err
	}
	if from == to {
		return []PathElement{{Data: from}}, nil
	}
	// BFS over the visible dataflow: a data object d advances to every
	// data object produced by an execution that consumed d. Keys are data
	// ids; prev records (data, exec) predecessors for path reconstruction.
	type hop struct {
		data, exec string
	}
	prev := map[string]hop{from: {}}
	queue := []string{from}
	for len(queue) > 0 && prev[to].data == "" && to != from {
		d := queue[0]
		queue = queue[1:]
		execIDs := map[string]bool{}
		for _, c := range r.Consumers(d) {
			if id, ok := m.ExecutionOf(c); ok {
				execIDs[id] = true
			}
		}
		for id := range execIDs {
			ex, _ := m.Execution(id)
			// Only count consumption that enters the execution from
			// outside (visible flow); data internal to the execution is
			// not a visible hop, but its outputs still carry influence.
			for _, out := range ex.Outputs {
				if _, seen := prev[out]; !seen {
					prev[out] = hop{data: d, exec: id}
					queue = append(queue, out)
				}
			}
		}
	}
	if _, ok := prev[to]; !ok {
		return nil, nil
	}
	// Reconstruct back from the target.
	var rev []PathElement
	cur := to
	for cur != from {
		h := prev[cur]
		rev = append(rev, PathElement{Data: cur, Exec: h.exec})
		cur = h.data
	}
	out := make([]PathElement, 0, len(rev)+1)
	out = append(out, PathElement{Data: from, Exec: rev[len(rev)-1].Exec})
	for i := len(rev) - 1; i >= 0; i-- {
		el := PathElement{Data: rev[i].Data}
		if i > 0 {
			el.Exec = rev[i-1].Exec
		}
		out = append(out, el)
	}
	return out, nil
}

// FormatPath renders a derivation path as d1 -[S1]-> d2 -[M3@1]-> d3.
func FormatPath(path []PathElement) string {
	if len(path) == 0 {
		return "(no derivation path)"
	}
	out := path[0].Data
	for i := 0; i < len(path); i++ {
		if path[i].Exec == "" {
			continue
		}
		next := ""
		if i+1 < len(path) {
			next = path[i+1].Data
		}
		out += " -[" + path[i].Exec + "]-> " + next
	}
	return out
}
