package provenance

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/run"
	"repro/internal/warehouse"
)

// buildRandomSite creates a generated workflow, one run of it, and an
// engine over a fresh warehouse.
func buildRandomSite(t *testing.T, g *gen.Generator, class gen.WorkflowClass, name string) (*Engine, *run.Run, *core.UserView) {
	t.Helper()
	s := g.Workflow(class, name)
	r, _, err := g.Run(s, gen.Small(), name+"-r")
	if err != nil {
		t.Fatal(err)
	}
	w := warehouse.New(0)
	if err := w.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	if err := w.LoadRun(r); err != nil {
		t.Fatal(err)
	}
	ubio, err := core.BuildRelevant(s, gen.UBioRelevant(s))
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(w), r, ubio
}

// TestRefinementMonotonicity: if view A refines view B, then the deep
// provenance of any data object shows at least as much under A as under B
// — UAdmin ⊒ any builder view ⊒ UBlackBox, both in data items and in
// executions. This is the formal backbone of Figures 10 and 11.
func TestRefinementMonotonicity(t *testing.T) {
	g := gen.NewGenerator(101)
	for trial, class := range []gen.WorkflowClass{gen.Class1(), gen.Class2(), gen.Class3(), gen.Class4()} {
		e, r, ubio := buildRandomSite(t, g, class, fmt.Sprintf("mono-%d", trial))
		s := ubio.Spec()
		admin := core.UAdmin(s)
		bb, err := core.UBlackBox(s)
		if err != nil {
			t.Fatal(err)
		}
		if !core.Refines(admin, ubio) || !core.Refines(ubio, bb) {
			t.Fatal("refinement chain broken")
		}
		for _, d := range r.AllData() {
			ra, err := e.DeepProvenance(r.ID(), admin, d)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := e.DeepProvenance(r.ID(), ubio, d)
			if err != nil {
				t.Fatal(err)
			}
			rc, err := e.DeepProvenance(r.ID(), bb, d)
			if err != nil {
				t.Fatal(err)
			}
			if !(ra.NumData() >= rb.NumData() && rb.NumData() >= rc.NumData()) {
				t.Fatalf("%s/%s: data counts not monotone: %d %d %d",
					class.Name, d, ra.NumData(), rb.NumData(), rc.NumData())
			}
			if !(ra.NumSteps() >= rb.NumSteps() && rb.NumSteps() >= rc.NumSteps()) {
				t.Fatalf("%s/%s: step counts not monotone: %d %d %d",
					class.Name, d, ra.NumSteps(), rb.NumSteps(), rc.NumSteps())
			}
			// Set containment, not just counts: everything a coarse view
			// shows, the finer view shows too.
			aSet := toSet(ra.Data)
			for _, x := range rb.Data {
				if !aSet[x] {
					t.Fatalf("%s/%s: %s visible under UBio but not UAdmin", class.Name, d, x)
				}
			}
			bSet := toSet(rb.Data)
			for _, x := range rc.Data {
				if !bSet[x] {
					t.Fatalf("%s/%s: %s visible under UBlackBox but not UBio", class.Name, d, x)
				}
			}
		}
	}
}

// TestProjectionSoundness: under any view, the result's data is a subset
// of the UAdmin closure, the root is always included, every visible
// execution contains at least one closure step, and every edge endpoint is
// a visible execution or INPUT.
func TestProjectionSoundness(t *testing.T) {
	g := gen.NewGenerator(202)
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 6; trial++ {
		class := gen.Classes()[trial%4]
		e, r, _ := buildRandomSite(t, g, class, fmt.Sprintf("sound-%d", trial))
		s, _ := e.Warehouse().Spec(r.SpecName())
		rel := randomModules(rng, s.ModuleNames())
		v, err := core.BuildRelevant(s, rel)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range sampleData(rng, r.AllData(), 15) {
			closure, err := e.Warehouse().DeepProvenance(r.ID(), d)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.DeepProvenance(r.ID(), v, d)
			if err != nil {
				t.Fatal(err)
			}
			if res.Root != d {
				t.Fatalf("root mangled: %s", res.Root)
			}
			rootSeen := false
			for _, x := range res.Data {
				if x == d {
					rootSeen = true
				}
				if !closure.HasData(x) {
					t.Fatalf("visible data %s outside closure of %s", x, d)
				}
			}
			if !rootSeen {
				t.Fatalf("root %s missing from result data", d)
			}
			vis := make(map[string]bool)
			for _, ex := range res.Executions {
				vis[ex.ID] = true
				inClosure := false
				for _, st := range ex.Steps {
					if closure.HasStep(st) {
						inClosure = true
						break
					}
				}
				if !inClosure {
					t.Fatalf("execution %s visible without closure steps", ex.ID)
				}
			}
			for _, edge := range res.Edges {
				if edge.From != "INPUT" && !vis[edge.From] {
					t.Fatalf("edge from invisible %s", edge.From)
				}
				if !vis[edge.To] {
					t.Fatalf("edge to invisible %s", edge.To)
				}
				if len(edge.Data) == 0 {
					t.Fatalf("empty edge %v", edge)
				}
			}
		}
	}
}

// TestDerivationProvenanceDuality: at the closure level, candidate ∈
// provenance(target) iff target ∈ derivation(candidate). (The *projected*
// results need not satisfy this: even under UAdmin, a self-looped module's
// consecutive steps form one composite execution — the paper's
// "consecutive steps within the same composite module" rule — and data
// passed between its iterations is hidden.)
func TestDerivationProvenanceDuality(t *testing.T) {
	g := gen.NewGenerator(404)
	rng := rand.New(rand.NewSource(505))
	e, r, _ := buildRandomSite(t, g, gen.Class4(), "dual")
	all := r.AllData()
	for i := 0; i < 60; i++ {
		c := all[rng.Intn(len(all))]
		tgt := all[rng.Intn(len(all))]
		if c == tgt {
			continue
		}
		inProv, err := e.InProvenance(r.ID(), c, tgt)
		if err != nil {
			t.Fatal(err)
		}
		derC, err := e.Warehouse().DeepDerivation(r.ID(), c)
		if err != nil {
			t.Fatal(err)
		}
		if inProv != derC.HasData(tgt) {
			t.Fatalf("duality broken for (%s, %s): prov=%v der=%v", c, tgt, inProv, derC.HasData(tgt))
		}
	}
}

// TestProjectedDerivationSoundness: the projected derivation result is
// always a subset of the derivation closure and includes the root.
func TestProjectedDerivationSoundness(t *testing.T) {
	g := gen.NewGenerator(404)
	e, r, ubio := buildRandomSite(t, g, gen.Class4(), "dual2")
	admin := core.UAdmin(ubio.Spec())
	for _, c := range sampleData(rand.New(rand.NewSource(9)), r.AllData(), 20) {
		derC, err := e.Warehouse().DeepDerivation(r.ID(), c)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range []*core.UserView{admin, ubio} {
			der, err := e.DeepDerivation(r.ID(), v, c)
			if err != nil {
				t.Fatal(err)
			}
			root := false
			for _, x := range der.Data {
				if x == c {
					root = true
				}
				if !derC.HasData(x) {
					t.Fatalf("projected derivation leaked %s outside closure of %s", x, c)
				}
			}
			if !root {
				t.Fatalf("root %s missing", c)
			}
		}
	}
}

// TestDirectStrategyAgreesOnVisibleExecutions: the direct strategy and the
// projected strategy agree on the executions that are genuinely upstream;
// direct may only add executions (over-approximation), never drop one.
func TestDirectStrategyAgreesOnVisibleExecutions(t *testing.T) {
	g := gen.NewGenerator(606)
	e, r, ubio := buildRandomSite(t, g, gen.Class3(), "direct")
	for _, d := range sampleData(rand.New(rand.NewSource(7)), r.AllData(), 20) {
		a, err := e.DeepProvenance(r.ID(), ubio, d)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.DeepProvenanceDirect(r.ID(), ubio, d)
		if err != nil {
			t.Fatal(err)
		}
		bIDs := make(map[string]bool)
		for _, ex := range b.Executions {
			bIDs[ex.ID] = true
		}
		for _, ex := range a.Executions {
			if !bIDs[ex.ID] {
				t.Fatalf("direct strategy dropped execution %s for %s", ex.ID, d)
			}
		}
	}
}

func randomModules(rng *rand.Rand, mods []string) []string {
	k := rng.Intn(len(mods) + 1)
	perm := rng.Perm(len(mods))
	out := make([]string, 0, k)
	for _, i := range perm[:k] {
		out = append(out, mods[i])
	}
	return out
}

func sampleData(rng *rand.Rand, all []string, k int) []string {
	if len(all) <= k {
		return all
	}
	perm := rng.Perm(len(all))
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[perm[i]]
	}
	return out
}
