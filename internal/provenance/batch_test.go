package provenance

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

// phyloEngine builds an engine over the paper's phylogenomics example with
// the four views the paper discusses: UAdmin, Joe's, Mary's, and UBlackBox.
func phyloEngine(t testing.TB) (*Engine, *run.Run, map[string]*core.UserView) {
	t.Helper()
	s := spec.Phylogenomics()
	w := warehouse.New(0)
	if err := w.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	r := run.Figure2()
	if err := w.LoadRun(r); err != nil {
		t.Fatal(err)
	}
	views := map[string]*core.UserView{"admin": core.UAdmin(s)}
	joe, err := core.BuildRelevant(s, spec.PhyloRelevantJoe())
	if err != nil {
		t.Fatal(err)
	}
	views["joe"] = joe
	mary, err := core.BuildRelevant(s, spec.PhyloRelevantMary())
	if err != nil {
		t.Fatal(err)
	}
	views["mary"] = mary
	bb, err := core.UBlackBox(s)
	if err != nil {
		t.Fatal(err)
	}
	views["blackbox"] = bb
	return NewEngine(w), r, views
}

// TestConcurrentBatchMatchesSequentialPhylo pins the batch API's core
// property on the paper's running example: for every view and every data
// object of Figure 2, DeepProvenanceBatch returns exactly the results of
// sequential DeepProvenance calls, regardless of worker count.
func TestConcurrentBatchMatchesSequentialPhylo(t *testing.T) {
	e, r, views := phyloEngine(t)
	data := r.AllData()
	for name, v := range views {
		want := make([]*Result, len(data))
		for i, d := range data {
			res, err := e.DeepProvenance(r.ID(), v, d)
			if err != nil {
				t.Fatalf("sequential %s/%s: %v", name, d, err)
			}
			want[i] = res
		}
		for _, workers := range []int{1, 4, 32} {
			got, err := e.DeepProvenanceBatch(context.Background(), r.ID(), v, data, workers)
			if err != nil {
				t.Fatalf("batch %s @%d workers: %v", name, workers, err)
			}
			for i := range data {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("view %s, %d workers, data %s: batch differs from sequential\nbatch: %+v\nseq:   %+v",
						name, workers, data[i], got[i], want[i])
				}
			}
		}
	}
}

// TestConcurrentBatchMatchesSequentialSynthetic repeats the equivalence
// property on generated workloads: every Table I workflow class, a small
// run, UBio view — the shape the evaluation queries.
func TestConcurrentBatchMatchesSequentialSynthetic(t *testing.T) {
	g := gen.NewGenerator(11)
	for _, class := range gen.Classes() {
		s := g.Workflow(class, "batch-"+class.Name)
		r, _, err := g.Run(s, gen.Small(), "batch-run-"+class.Name)
		if err != nil {
			t.Fatal(err)
		}
		w := warehouse.New(0)
		if err := w.RegisterSpec(s); err != nil {
			t.Fatal(err)
		}
		if err := w.LoadRun(r); err != nil {
			t.Fatal(err)
		}
		e := NewEngine(w)
		v, err := core.BuildRelevant(s, gen.UBioRelevant(s))
		if err != nil {
			t.Fatal(err)
		}
		data := r.AllData()
		want := make([]*Result, len(data))
		for i, d := range data {
			if want[i], err = e.DeepProvenance(r.ID(), v, d); err != nil {
				t.Fatalf("%s sequential %s: %v", class.Name, d, err)
			}
		}
		got, err := e.DeepProvenanceBatch(context.Background(), r.ID(), v, data, 8)
		if err != nil {
			t.Fatalf("%s batch: %v", class.Name, err)
		}
		for i := range data {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("%s: batch result for %s differs from sequential", class.Name, data[i])
			}
		}
	}
}

// TestServeConcurrentlyMixedQueries drives the worker pool with queries
// across several views, including a failing one, and checks per-query
// error isolation and result ordering.
func TestServeConcurrentlyMixedQueries(t *testing.T) {
	e, r, views := phyloEngine(t)
	queries := []Query{
		{RunID: r.ID(), View: views["admin"], Data: "d447"},
		{RunID: r.ID(), View: views["joe"], Data: "d447"},
		{RunID: r.ID(), View: views["mary"], Data: "d413"},
		{RunID: r.ID(), View: views["admin"], Data: "no-such-data"},
		{RunID: "ghost", View: views["admin"], Data: "d447"},
		{RunID: r.ID(), View: views["blackbox"], Data: "d447"},
	}
	out := e.ServeConcurrently(context.Background(), queries, 3)
	if len(out) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(out), len(queries))
	}
	for i, qr := range out {
		if qr.Index != i || qr.Query != queries[i] {
			t.Fatalf("result %d out of order: %+v", i, qr)
		}
	}
	if out[3].Err == nil || !errors.Is(out[3].Err, warehouse.ErrUnknownData) {
		t.Fatalf("bad-data query: err = %v", out[3].Err)
	}
	if out[4].Err == nil || !errors.Is(out[4].Err, warehouse.ErrUnknownRun) {
		t.Fatalf("bad-run query: err = %v", out[4].Err)
	}
	for _, i := range []int{0, 1, 2, 5} {
		if out[i].Err != nil || out[i].Result == nil {
			t.Fatalf("query %d failed: %v", i, out[i].Err)
		}
	}
	// Sequential answers agree.
	seq, err := e.DeepProvenance(r.ID(), views["joe"], "d447")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out[1].Result, seq) {
		t.Fatal("pooled result differs from direct call")
	}
}

// TestServeConcurrentlyCancellation checks that a cancelled context stops
// unstarted queries with ctx.Err() while still returning one entry per
// query.
func TestServeConcurrentlyCancellation(t *testing.T) {
	e, r, views := phyloEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before serving: every query must be skipped
	queries := make([]Query, 64)
	for i := range queries {
		queries[i] = Query{RunID: r.ID(), View: views["admin"], Data: "d447"}
	}
	out := e.ServeConcurrently(ctx, queries, 4)
	for i, qr := range out {
		if !errors.Is(qr.Err, context.Canceled) {
			t.Fatalf("query %d: err = %v, want context.Canceled", i, qr.Err)
		}
		if qr.Result != nil {
			t.Fatalf("query %d returned a result after cancellation", i)
		}
	}
	// Batch propagates the cancellation as an error.
	if _, err := e.DeepProvenanceBatch(ctx, r.ID(), views["admin"], []string{"d447"}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch on cancelled ctx: %v", err)
	}
}

// TestDeepProvenanceBatchErrors checks the fail-fast contract and the
// empty batch.
func TestDeepProvenanceBatchErrors(t *testing.T) {
	e, r, views := phyloEngine(t)
	if _, err := e.DeepProvenanceBatch(context.Background(), r.ID(), views["admin"],
		[]string{"d447", "nope"}, 2); !errors.Is(err, warehouse.ErrUnknownData) {
		t.Fatalf("batch with bad id: %v", err)
	}
	out, err := e.DeepProvenanceBatch(context.Background(), r.ID(), views["admin"], nil, 4)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %v", out, err)
	}
	// Foreign view fails every query with ErrForeignView.
	foreign := core.UAdmin(spec.New("other"))
	if _, err := e.DeepProvenanceBatch(context.Background(), r.ID(), foreign,
		[]string{"d447"}, 1); !errors.Is(err, ErrForeignView) {
		t.Fatalf("foreign view: %v", err)
	}
}

// TestConcurrentMappingMemoization hammers the engine's view→mapping cache
// from many goroutines across several views at once; under -race this
// pins the goroutine-safety of the memoization, and the results must all
// agree with a fresh engine's.
func TestConcurrentMappingMemoization(t *testing.T) {
	e, r, views := phyloEngine(t)
	fresh, _, _ := phyloEngine(t)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		for name := range views {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				res, err := e.DeepProvenance(r.ID(), views[name], "d447")
				if err != nil {
					t.Errorf("view %s: %v", name, err)
					return
				}
				want, err := fresh.DeepProvenance(r.ID(), views[name], "d447")
				if err != nil {
					t.Errorf("fresh view %s: %v", name, err)
					return
				}
				if res.NumSteps() != want.NumSteps() || res.NumData() != want.NumData() {
					t.Errorf("view %s: concurrent answer differs (%d/%d vs %d/%d)",
						name, res.NumSteps(), res.NumData(), want.NumSteps(), want.NumData())
				}
			}(name)
		}
	}
	wg.Wait()
}

// TestBatchWorkerClamping checks worker-count edge cases: zero (GOMAXPROCS
// default), negative, and more workers than queries all serve correctly.
func TestBatchWorkerClamping(t *testing.T) {
	e, r, views := phyloEngine(t)
	for _, workers := range []int{0, -3, 1, 1000} {
		got, err := e.DeepProvenanceBatch(context.Background(), r.ID(), views["joe"],
			[]string{"d447", "d413"}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 2 || got[0].Root != "d447" || got[1].Root != "d413" {
			t.Fatalf("workers=%d: wrong results %+v", workers, got)
		}
	}
}
