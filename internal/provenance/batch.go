// Batch query serving: the engine's concurrent face. The paper's
// prototype answers one query at a time for one interactive user; a
// provenance warehouse serving many users sees the opposite shape — bursts
// of deep-provenance queries over the same few runs. ServeConcurrently is
// the bounded worker pool for that workload, and DeepProvenanceBatch the
// common special case (one run, one view, many data objects). Both lean on
// the warehouse's sharded singleflight cache: concurrent queries that need
// the same UAdmin closure compute it once and share it.
package provenance

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/warehouse"
)

// Query is one deep-provenance request: (run, view, data).
type Query struct {
	RunID string
	View  *core.UserView
	Data  string
}

// QueryResult pairs a Query with its outcome. Exactly one of Result and
// Err is set, except for queries skipped after context cancellation, which
// carry the context's error.
type QueryResult struct {
	Index  int
	Query  Query
	Result *Result
	Err    error
}

// ServeConcurrently answers many provenance queries with a bounded worker
// pool. workers <= 0 selects GOMAXPROCS; the pool never exceeds
// len(queries). Results are returned in query order. When ctx is
// cancelled, queries not yet started are completed immediately with
// ctx.Err() while in-flight ones finish normally, so the returned slice
// always has one entry per query.
func (e *Engine) ServeConcurrently(ctx context.Context, queries []Query, workers int) []QueryResult {
	return e.serve(ctx, queries, workers, nil)
}

// serve is the worker pool behind ServeConcurrently and
// DeepProvenanceBatch. onError, when non-nil, is called (possibly from
// several workers at once) for every genuine query failure — not for
// queries skipped because ctx was already cancelled — which is how the
// batch path turns the first failure into a cancellation of the rest.
func (e *Engine) serve(ctx context.Context, queries []Query, workers int, onError func(error)) []QueryResult {
	out := make([]QueryResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	if m := e.obs.Load(); m != nil {
		m.batchSize.Observe(int64(len(queries)))
		m.batchWorkers.Observe(int64(workers))
		m.batches.Inc()
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				q := queries[idx]
				if err := ctx.Err(); err != nil {
					out[idx] = QueryResult{Index: idx, Query: q, Err: err}
					continue
				}
				// Under a traced context each worker query gets its own
				// span (a sibling under the batch's root), so a traced
				// batch response shows per-query concurrency and which
				// member query was the slow one.
				qctx, qsp := obs.StartSpan(ctx, "batch.query "+q.Data)
				res, err := e.deepProvenance(qctx, q.RunID, q.View, q.Data, nil, warehouse.StrategyAuto)
				qsp.End()
				out[idx] = QueryResult{Index: idx, Query: q, Result: res, Err: err}
				if err != nil && onError != nil {
					onError(err)
				}
			}
		}()
	}
	for idx := range queries {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	return out
}

// DeepProvenanceBatch answers the deep provenance of many data objects of
// one run under one view, in parallel, returning results in dataIDs order.
// It is exactly equivalent to calling DeepProvenance sequentially for each
// id (a property the tests pin); the first failing query aborts the batch
// with its error: queries not yet started when the failure surfaces are
// cancelled instead of computed, so a bad id near the front of a large
// batch does not cost the whole batch's work. workers <= 0 selects
// GOMAXPROCS.
func (e *Engine) DeepProvenanceBatch(ctx context.Context, runID string, v *core.UserView, dataIDs []string, workers int) ([]*Result, error) {
	queries := make([]Query, len(dataIDs))
	for i, d := range dataIDs {
		queries[i] = Query{RunID: runID, View: v, Data: d}
	}
	// Abort the pool on the first genuine failure. The child context keeps
	// the induced cancellation distinguishable from one the caller issued.
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	answered := e.serve(cctx, queries, workers, func(error) { cancel() })
	// With the parent context clean, any context error in the results is
	// our own abort propagating — skip those entries to report the genuine
	// failure that caused them; everything else (including context errors
	// when the caller really did cancel) reports as before.
	skipInduced := ctx.Err() == nil
	var firstErr error
	firstIdx := -1
	for i, qr := range answered {
		if qr.Err == nil {
			continue
		}
		if skipInduced && (errors.Is(qr.Err, context.Canceled) || errors.Is(qr.Err, context.DeadlineExceeded)) {
			continue
		}
		if firstIdx == -1 || i < firstIdx {
			firstIdx, firstErr = i, qr.Err
		}
	}
	if firstIdx != -1 {
		return nil, fmt.Errorf("batch query %d (%s): %w", firstIdx, dataIDs[firstIdx], firstErr)
	}
	out := make([]*Result, len(answered))
	for i, qr := range answered {
		out[i] = qr.Result
	}
	return out, nil
}
