// Batch query serving: the engine's concurrent face. The paper's
// prototype answers one query at a time for one interactive user; a
// provenance warehouse serving many users sees the opposite shape — bursts
// of deep-provenance queries over the same few runs. ServeConcurrently is
// the bounded worker pool for that workload, and DeepProvenanceBatch the
// common special case (one run, one view, many data objects). Both lean on
// the warehouse's sharded singleflight cache: concurrent queries that need
// the same UAdmin closure compute it once and share it.
package provenance

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
)

// Query is one deep-provenance request: (run, view, data).
type Query struct {
	RunID string
	View  *core.UserView
	Data  string
}

// QueryResult pairs a Query with its outcome. Exactly one of Result and
// Err is set, except for queries skipped after context cancellation, which
// carry the context's error.
type QueryResult struct {
	Index  int
	Query  Query
	Result *Result
	Err    error
}

// ServeConcurrently answers many provenance queries with a bounded worker
// pool. workers <= 0 selects GOMAXPROCS; the pool never exceeds
// len(queries). Results are returned in query order. When ctx is
// cancelled, queries not yet started are completed immediately with
// ctx.Err() while in-flight ones finish normally, so the returned slice
// always has one entry per query.
func (e *Engine) ServeConcurrently(ctx context.Context, queries []Query, workers int) []QueryResult {
	out := make([]QueryResult, len(queries))
	if len(queries) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				q := queries[idx]
				if err := ctx.Err(); err != nil {
					out[idx] = QueryResult{Index: idx, Query: q, Err: err}
					continue
				}
				res, err := e.DeepProvenance(q.RunID, q.View, q.Data)
				out[idx] = QueryResult{Index: idx, Query: q, Result: res, Err: err}
			}
		}()
	}
	for idx := range queries {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	return out
}

// DeepProvenanceBatch answers the deep provenance of many data objects of
// one run under one view, in parallel, returning results in dataIDs order.
// It is exactly equivalent to calling DeepProvenance sequentially for each
// id (a property the tests pin); the first failing query aborts the batch
// with its error. workers <= 0 selects GOMAXPROCS.
func (e *Engine) DeepProvenanceBatch(ctx context.Context, runID string, v *core.UserView, dataIDs []string, workers int) ([]*Result, error) {
	queries := make([]Query, len(dataIDs))
	for i, d := range dataIDs {
		queries[i] = Query{RunID: runID, View: v, Data: d}
	}
	answered := e.ServeConcurrently(ctx, queries, workers)
	out := make([]*Result, len(answered))
	for i, qr := range answered {
		if qr.Err != nil {
			return nil, fmt.Errorf("batch query %d (%s): %w", i, dataIDs[i], qr.Err)
		}
		out[i] = qr.Result
	}
	return out, nil
}
