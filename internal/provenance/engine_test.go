package provenance

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

type fixture struct {
	w    *warehouse.Warehouse
	e    *Engine
	s    *spec.Spec
	joe  *core.UserView
	mary *core.UserView
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	f := &fixture{w: warehouse.New(0), s: spec.Phylogenomics()}
	if err := f.w.RegisterSpec(f.s); err != nil {
		t.Fatal(err)
	}
	if err := f.w.LoadRun(run.Figure2()); err != nil {
		t.Fatal(err)
	}
	var err error
	f.joe, err = core.BuildRelevant(f.s, spec.PhyloRelevantJoe())
	if err != nil {
		t.Fatal(err)
	}
	f.mary, err = core.BuildRelevant(f.s, spec.PhyloRelevantMary())
	if err != nil {
		t.Fatal(err)
	}
	f.e = NewEngine(f.w)
	return f
}

// TestImmediateProvenanceJoeVsMary is the paper's Section II contrast:
// "the immediate provenance of d413 seen by Joe would be S13 and its
// input, {d308,...,d408} ... whereas that seen by Mary would be S12 and
// its input, {d411}".
func TestImmediateProvenanceJoeVsMary(t *testing.T) {
	f := newFixture(t)
	s13, err := f.e.ImmediateProvenance("fig2", f.joe, "d413")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s13.Steps, []string{"S2", "S3", "S4", "S5", "S6"}) {
		t.Fatalf("Joe's producer execution steps = %v", s13.Steps)
	}
	if !reflect.DeepEqual(s13.Inputs, run.DataIDs(308, 408)) {
		t.Fatalf("Joe's inputs = %s", run.FormatDataSet(s13.Inputs))
	}
	s12, err := f.e.ImmediateProvenance("fig2", f.mary, "d413")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s12.Steps, []string{"S5", "S6"}) {
		t.Fatalf("Mary's producer execution steps = %v", s12.Steps)
	}
	if !reflect.DeepEqual(s12.Inputs, []string{"d411"}) {
		t.Fatalf("Mary's inputs = %v", s12.Inputs)
	}
}

// TestDeepProvenanceD413Visibility: Mary's deep provenance of d413
// includes d410 and d411 (data passed between executions of M11 and M5);
// Joe's does not (internal to S13), and Joe is unaware of the looping.
func TestDeepProvenanceD413Visibility(t *testing.T) {
	f := newFixture(t)
	mary, err := f.e.DeepProvenance("fig2", f.mary, "d413")
	if err != nil {
		t.Fatal(err)
	}
	joe, err := f.e.DeepProvenance("fig2", f.joe, "d413")
	if err != nil {
		t.Fatal(err)
	}
	maryData := toSet(mary.Data)
	if !maryData["d410"] || !maryData["d411"] {
		t.Fatalf("Mary must see d410 and d411: %v", run.FormatDataSet(mary.Data))
	}
	joeData := toSet(joe.Data)
	for _, hidden := range []string{"d409", "d410", "d411", "d412"} {
		if joeData[hidden] {
			t.Fatalf("Joe must not see %s", hidden)
		}
	}
	// Joe sees one execution of his alignment composite, Mary two of hers:
	// the loop is invisible to Joe.
	countComposite := func(res *Result, comp string) int {
		n := 0
		for _, ex := range res.Executions {
			if ex.Composite == comp {
				n++
			}
		}
		return n
	}
	if got := countComposite(joe, "M3"); got != 1 {
		t.Fatalf("Joe sees %d alignment executions, want 1", got)
	}
	if got := countComposite(mary, "M3"); got != 2 {
		t.Fatalf("Mary sees %d alignment executions, want 2 (S11, S12)", got)
	}
	// Mary additionally sees the M5 step S4.
	if got := countComposite(mary, "M5"); got != 1 {
		t.Fatalf("Mary sees %d M5 executions, want 1", got)
	}
	// Both see the shared upstream: S1's composite and the root data.
	if !toSet(joe.Data)["d413"] || !toSet(mary.Data)["d413"] {
		t.Fatal("root data missing")
	}
	// Deep provenance of d413 as seen by Mary includes S11 and its input
	// {d308..d408}.
	for _, d := range run.DataIDs(308, 408) {
		if !maryData[d] {
			t.Fatalf("Mary's deep provenance missing %s", d)
		}
	}
}

func TestDeepProvenanceD447AllViews(t *testing.T) {
	f := newFixture(t)
	admin := core.UAdmin(f.s)
	bb, err := core.UBlackBox(f.s)
	if err != nil {
		t.Fatal(err)
	}
	resAdmin, err := f.e.DeepProvenance("fig2", admin, "d447")
	if err != nil {
		t.Fatal(err)
	}
	resJoe, err := f.e.DeepProvenance("fig2", f.joe, "d447")
	if err != nil {
		t.Fatal(err)
	}
	resBB, err := f.e.DeepProvenance("fig2", bb, "d447")
	if err != nil {
		t.Fatal(err)
	}
	// UAdmin sees all 10 steps and all 246 data objects.
	if resAdmin.NumSteps() != 10 {
		t.Fatalf("UAdmin steps = %d", resAdmin.NumSteps())
	}
	r, _ := f.w.Run("fig2")
	if resAdmin.NumData() != r.NumData() {
		t.Fatalf("UAdmin data = %d, want %d", resAdmin.NumData(), r.NumData())
	}
	// The black box sees one execution, the external inputs and the root.
	if resBB.NumSteps() != 1 {
		t.Fatalf("UBlackBox steps = %d", resBB.NumSteps())
	}
	if resBB.NumData() != 131+1 {
		t.Fatalf("UBlackBox data = %d, want 132", resBB.NumData())
	}
	// Monotonicity: UAdmin >= Joe >= UBlackBox.
	if !(resAdmin.NumData() >= resJoe.NumData() && resJoe.NumData() >= resBB.NumData()) {
		t.Fatalf("sizes not monotone: %d %d %d", resAdmin.NumData(), resJoe.NumData(), resBB.NumData())
	}
	if !(resAdmin.NumSteps() >= resJoe.NumSteps() && resJoe.NumSteps() >= resBB.NumSteps()) {
		t.Fatalf("steps not monotone: %d %d %d", resAdmin.NumSteps(), resJoe.NumSteps(), resBB.NumSteps())
	}
	if resAdmin.Tuples() <= resBB.Tuples() {
		t.Fatal("tuple counts not ordered")
	}
}

func TestDeepProvenanceEdges(t *testing.T) {
	f := newFixture(t)
	res, err := f.e.DeepProvenance("fig2", f.mary, "d413")
	if err != nil {
		t.Fatal(err)
	}
	find := func(from, to string) *Edge {
		for i := range res.Edges {
			if res.Edges[i].From == from && res.Edges[i].To == to {
				return &res.Edges[i]
			}
		}
		return nil
	}
	if e := find("M3@1", "S4"); e == nil || !reflect.DeepEqual(e.Data, []string{"d410"}) {
		t.Fatalf("edge M3@1 -> S4: %+v", e)
	}
	if e := find("S4", "M3@2"); e == nil || !reflect.DeepEqual(e.Data, []string{"d411"}) {
		t.Fatalf("edge S4 -> M3@2: %+v", e)
	}
	if e := find(spec.Input, "S1"); e == nil || len(e.Data) != 100 {
		t.Fatalf("edge INPUT -> S1: %+v", e)
	}
	// No edge may reference an invisible execution.
	vis := make(map[string]bool)
	for _, ex := range res.Executions {
		vis[ex.ID] = true
	}
	for _, e := range res.Edges {
		if e.From != spec.Input && !vis[e.From] {
			t.Fatalf("edge from invisible execution %s", e.From)
		}
		if !vis[e.To] {
			t.Fatalf("edge to invisible execution %s", e.To)
		}
	}
}

func TestExternalRoot(t *testing.T) {
	f := newFixture(t)
	res, err := f.e.DeepProvenance("fig2", f.joe, "d1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.External {
		t.Fatal("d1 should be marked external")
	}
	if res.NumSteps() != 0 || res.NumData() != 1 {
		t.Fatalf("external root result: steps=%d data=%d", res.NumSteps(), res.NumData())
	}
	ex, err := f.e.ImmediateProvenance("fig2", f.joe, "d1")
	if err != nil || ex != nil {
		t.Fatalf("immediate provenance of external data: %v, %v", ex, err)
	}
}

func TestQueryErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := f.e.DeepProvenance("ghost", f.joe, "d1"); !errors.Is(err, warehouse.ErrUnknownRun) {
		t.Fatalf("unknown run: %v", err)
	}
	if _, err := f.e.DeepProvenance("fig2", f.joe, "nope"); !errors.Is(err, warehouse.ErrUnknownData) {
		t.Fatalf("unknown data: %v", err)
	}
	foreign := core.UAdmin(specOther())
	if _, err := f.e.DeepProvenance("fig2", foreign, "d447"); !errors.Is(err, ErrForeignView) {
		t.Fatalf("foreign view: %v", err)
	}
	if _, err := f.e.ImmediateProvenance("fig2", foreign, "d447"); !errors.Is(err, ErrForeignView) {
		t.Fatalf("foreign view (immediate): %v", err)
	}
	if _, err := f.e.ImmediateProvenance("fig2", f.joe, "nope"); !errors.Is(err, warehouse.ErrUnknownData) {
		t.Fatalf("unknown data (immediate): %v", err)
	}
	if _, err := f.e.DeepDerivation("fig2", foreign, "d447"); !errors.Is(err, ErrForeignView) {
		t.Fatalf("foreign view (derivation): %v", err)
	}
}

func TestDeepDerivation(t *testing.T) {
	f := newFixture(t)
	// Everything derived from d1 under Joe's view reaches the final tree.
	res, err := f.e.DeepDerivation("fig2", f.joe, "d1")
	if err != nil {
		t.Fatal(err)
	}
	got := toSet(res.Data)
	if !got["d447"] {
		t.Fatalf("derivation of d1 must include the final output: %v", run.FormatDataSet(res.Data))
	}
	if got["d411"] {
		t.Fatal("internal loop data visible in Joe's derivation result")
	}
	// Derivation from d414 (S8's output): only the tree step and output.
	res, err = f.e.DeepDerivation("fig2", f.mary, "d414")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumSteps() != 1 {
		t.Fatalf("derivation steps = %d, want 1 (tree composite)", res.NumSteps())
	}
}

func TestViewSwitchUsesCache(t *testing.T) {
	f := newFixture(t)
	if _, err := f.e.DeepProvenance("fig2", f.joe, "d447"); err != nil {
		t.Fatal(err)
	}
	h0, m0 := f.w.CacheStats()
	if h0 != 0 || m0 != 1 {
		t.Fatalf("first query: hits=%d misses=%d", h0, m0)
	}
	// Switching to Mary's view reuses the cached closure.
	if _, err := f.e.DeepProvenance("fig2", f.mary, "d447"); err != nil {
		t.Fatal(err)
	}
	h1, m1 := f.w.CacheStats()
	if h1 != 1 || m1 != 1 {
		t.Fatalf("view switch did not hit cache: hits=%d misses=%d", h1, m1)
	}
}

func TestDirectStrategyMatchesOnUAdmin(t *testing.T) {
	f := newFixture(t)
	admin := core.UAdmin(f.s)
	for _, d := range []string{"d447", "d413", "d410", "d206"} {
		a, err := f.e.DeepProvenance("fig2", admin, d)
		if err != nil {
			t.Fatal(err)
		}
		b, err := f.e.DeepProvenanceDirect("fig2", admin, d)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Data, b.Data) {
			t.Fatalf("data differ for %s:\n%v\n%v", d, a.Data, b.Data)
		}
		if a.NumSteps() != b.NumSteps() {
			t.Fatalf("steps differ for %s: %d vs %d", d, a.NumSteps(), b.NumSteps())
		}
	}
}

func TestDirectStrategySupersetInGeneral(t *testing.T) {
	// The direct strategy may include extra inputs of multi-step composite
	// executions, never fewer.
	f := newFixture(t)
	for _, v := range []*core.UserView{f.joe, f.mary} {
		for _, d := range []string{"d447", "d413"} {
			a, err := f.e.DeepProvenance("fig2", v, d)
			if err != nil {
				t.Fatal(err)
			}
			b, err := f.e.DeepProvenanceDirect("fig2", v, d)
			if err != nil {
				t.Fatal(err)
			}
			aSet, bSet := toSet(a.Data), toSet(b.Data)
			for x := range aSet {
				if !bSet[x] {
					t.Fatalf("direct strategy lost %s for view query (%s)", x, d)
				}
			}
		}
	}
}

func TestDirectStrategyErrors(t *testing.T) {
	f := newFixture(t)
	if _, err := f.e.DeepProvenanceDirect("ghost", f.joe, "d1"); !errors.Is(err, warehouse.ErrUnknownRun) {
		t.Fatalf("unknown run: %v", err)
	}
	if _, err := f.e.DeepProvenanceDirect("fig2", f.joe, "nope"); !errors.Is(err, warehouse.ErrUnknownData) {
		t.Fatalf("unknown data: %v", err)
	}
	foreign := core.UAdmin(specOther())
	if _, err := f.e.DeepProvenanceDirect("fig2", foreign, "d447"); !errors.Is(err, ErrForeignView) {
		t.Fatalf("foreign view: %v", err)
	}
}

func specOther() *spec.Spec {
	s := spec.New("other")
	s.MustAddModule(spec.Module{Name: "X"})
	s.MustAddEdge(spec.Input, "X")
	s.MustAddEdge("X", spec.Output)
	return s
}

func toSet(xs []string) map[string]bool {
	out := make(map[string]bool, len(xs))
	for _, x := range xs {
		out[x] = true
	}
	return out
}
