package provenance

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/warehouse"
)

func TestDataBetween(t *testing.T) {
	f := newFixture(t)
	// Mary: M3@1 (S11) feeds S4 with d410; S4 feeds M3@2 (S12) with d411.
	got, err := f.e.DataBetween("fig2", f.mary, "M3@1", "S4")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"d410"}) {
		t.Fatalf("DataBetween(M3@1, S4) = %v", got)
	}
	got, err = f.e.DataBetween("fig2", f.mary, "S4", "M3@2")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"d411"}) {
		t.Fatalf("DataBetween(S4, M3@2) = %v", got)
	}
	// No direct flow between S1's execution and the tree composite.
	got, err = f.e.DataBetween("fig2", f.mary, "S1", "M7@1")
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatalf("unexpected data: %v", got)
	}
	if _, err := f.e.DataBetween("fig2", f.mary, "ghost", "S4"); err == nil {
		t.Fatal("unknown from-execution accepted")
	}
	if _, err := f.e.DataBetween("fig2", f.mary, "S4", "ghost"); err == nil {
		t.Fatal("unknown to-execution accepted")
	}
}

func TestInProvenance(t *testing.T) {
	f := newFixture(t)
	cases := []struct {
		candidate, target string
		want              bool
	}{
		{"d1", "d447", true},
		{"d411", "d413", true},
		{"d446", "d413", false}, // annotation branch not upstream of d413
		{"d447", "d1", false},   // wrong direction
		{"d447", "d447", false}, // an object is not in its own provenance
	}
	for _, tc := range cases {
		got, err := f.e.InProvenance("fig2", tc.candidate, tc.target)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("InProvenance(%s, %s) = %v, want %v", tc.candidate, tc.target, got, tc.want)
		}
	}
	if _, err := f.e.InProvenance("fig2", "nope", "d447"); !errors.Is(err, warehouse.ErrUnknownData) {
		t.Fatalf("unknown candidate: %v", err)
	}
	if _, err := f.e.InProvenance("fig2", "d1", "nope"); !errors.Is(err, warehouse.ErrUnknownData) {
		t.Fatalf("unknown target: %v", err)
	}
}

func TestCommonProvenance(t *testing.T) {
	f := newFixture(t)
	// d413 (alignment) and d414 (formatted annotations) share the original
	// database entries d1..d100 via S1.
	got, err := f.e.CommonProvenance("fig2", f.joe, "d413", "d414")
	if err != nil {
		t.Fatal(err)
	}
	set := toSet(got)
	if !set["d1"] || !set["d100"] {
		t.Fatalf("common provenance missing the shared inputs: %v", got)
	}
	// The alignment-only inputs are NOT shared with d414.
	if set["d308"] {
		t.Fatal("d308 wrongly reported as common")
	}
	if set["d413"] || set["d414"] {
		t.Fatal("query endpoints must be excluded")
	}
}

func TestExecutionProvenance(t *testing.T) {
	f := newFixture(t)
	// The provenance of Mary's S12 (= M3@2) includes the loop prefix and
	// the original inputs, and S12 itself.
	res, err := f.e.ExecutionProvenance("fig2", f.mary, "M3@2")
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool)
	for _, ex := range res.Executions {
		ids[ex.ID] = true
	}
	for _, want := range []string{"S1", "M3@1", "S4", "M3@2"} {
		if !ids[want] {
			t.Fatalf("execution %s missing from result: %v", want, res.Executions)
		}
	}
	data := toSet(res.Data)
	if !data["d411"] || !data["d1"] {
		t.Fatalf("data missing: %v", res.Data)
	}
	if data["M3@2"] {
		t.Fatal("execution id leaked into the data set")
	}
	if _, err := f.e.ExecutionProvenance("fig2", f.mary, "ghost"); err == nil {
		t.Fatal("unknown execution accepted")
	}
}

func TestExecutionsListing(t *testing.T) {
	f := newFixture(t)
	execs, err := f.e.Executions("fig2", f.joe)
	if err != nil {
		t.Fatal(err)
	}
	// Joe's view induces exactly four executions on Figure 2:
	// S1 (NR1={M1}), S7 (M2), M3@1 = S13 = {S2..S6}, M7@1 = {S8, S9, S10}.
	if len(execs) != 4 {
		t.Fatalf("got %d executions: %v", len(execs), execs)
	}
	if execs[0].ID != "S1" {
		t.Fatalf("executions not in topological order: %v", execs[0])
	}
	if _, err := f.e.Executions("ghost", f.joe); !errors.Is(err, warehouse.ErrUnknownRun) {
		t.Fatalf("unknown run: %v", err)
	}
}

func TestInputMetadataSurfaces(t *testing.T) {
	f := newFixture(t)
	r, _ := f.w.Run("fig2")
	if err := r.AnnotateInput("d1", map[string]string{"who": "joe", "when": "2007-11-02"}); err != nil {
		t.Fatal(err)
	}
	res, err := f.e.DeepProvenance("fig2", f.joe, "d1")
	if err != nil {
		t.Fatal(err)
	}
	if !res.External || res.Metadata["who"] != "joe" {
		t.Fatalf("metadata not surfaced: %+v", res)
	}
	// Annotating produced data is rejected.
	if err := r.AnnotateInput("d413", map[string]string{"who": "x"}); err == nil {
		t.Fatal("annotating produced data accepted")
	}
}
