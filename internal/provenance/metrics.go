package provenance

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/warehouse"
)

// engineMetrics are the engine's instruments in an attached registry,
// resolved once at attach time. Query latency is recorded twice: total
// wall time split by cache outcome (totalNs[hit|miss|shared-wait] — the
// paper's warm-vs-cold distinction), and per stage (lookup, closure
// compute, projection) so a regression can be localized without re-running
// under a profiler.
type engineMetrics struct {
	totalNs   [3]*obs.Histogram // query.deep_total_ns.<outcome>
	lookupNs  *obs.Histogram    // query.lookup_ns (cache hit, compute, or wait)
	computeNs *obs.Histogram    // query.closure_compute_ns (misses only)
	projectNs *obs.Histogram    // query.project_ns (mapping build + projection)
	forwardNs *obs.Histogram    // query.derivation_ns (DeepDerivation, uncached)
	queries   *obs.Counter      // query.deep_total
	errors    *obs.Counter      // query.errors

	// Batch serving: sizes and pool widths per ServeConcurrently call. The
	// worker histogram records the clamped pool size actually spun up, so
	// batch.size vs. batch.workers is the utilization picture.
	batches      *obs.Counter   // batch.count
	batchSize    *obs.Histogram // batch.size
	batchWorkers *obs.Histogram // batch.workers
}

// queryError counts one failed query. Safe (and a no-op) on a nil receiver,
// so the query path can call it without branching on attachment.
func (m *engineMetrics) queryError() {
	if m != nil {
		m.errors.Inc()
	}
}

// AttachMetrics wires the engine to a metrics registry; nil detaches. The
// warehouse underneath keeps its own attachment (see
// Warehouse.AttachMetrics) — zoom.System attaches both from one registry.
func (e *Engine) AttachMetrics(reg *obs.Registry) {
	if reg == nil {
		e.obs.Store(nil)
		return
	}
	m := &engineMetrics{
		lookupNs:  reg.Histogram("query.lookup_ns"),
		computeNs: reg.Histogram("query.closure_compute_ns"),
		projectNs: reg.Histogram("query.project_ns"),
		forwardNs: reg.Histogram("query.derivation_ns"),
		queries:   reg.Counter("query.deep_total"),
		errors:    reg.Counter("query.errors"),

		batches:      reg.Counter("batch.count"),
		batchSize:    reg.Histogram("batch.size"),
		batchWorkers: reg.Histogram("batch.workers"),
	}
	for _, o := range []warehouse.Outcome{warehouse.OutcomeHit, warehouse.OutcomeMiss, warehouse.OutcomeSharedWait} {
		m.totalNs[o] = reg.Histogram("query.deep_total_ns." + o.String())
	}
	e.obs.Store(m)
}

// QueryTrace is the per-stage breakdown of one deep-provenance query — the
// legible analogue of the paper's strategy-timing table. All durations are
// wall-clock nanoseconds; LookupNs covers the whole closure-cache lookup
// (including ComputeNs on a miss, or the wait on another goroutine's
// computation), ProjectNs covers the view projection including building the
// memoized step→composite mapping on its first use.
type QueryTrace struct {
	RunID string `json:"run"`
	View  string `json:"view,omitempty"`
	Data  string `json:"data"`
	// Outcome is how the closure lookup was served: "hit", "miss", or
	// "shared-wait".
	Outcome string `json:"outcome"`
	// Strategy is the closure computation a miss actually ran ("labels",
	// "bfs", or "legacy"); empty for hits and shared waits, which reuse a
	// closure somebody else computed.
	Strategy  string `json:"strategy,omitempty"`
	LookupNs  int64  `json:"lookup_ns"`
	ComputeNs int64  `json:"compute_ns,omitempty"`
	ProjectNs int64  `json:"project_ns"`
	TotalNs   int64  `json:"total_ns"`
	// Result sizes (the paper's answer-size metric).
	Steps int `json:"steps"`
	Data_ int `json:"data_objects"`
	Edges int `json:"edges"`
}

// String renders the trace as the multi-line breakdown `zoom query -trace`
// prints.
func (tr *QueryTrace) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: run=%s data=%s outcome=%s", tr.RunID, tr.Data, tr.Outcome)
	if tr.Strategy != "" {
		fmt.Fprintf(&b, " strategy=%s", tr.Strategy)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  closure lookup  %12s", time.Duration(tr.LookupNs))
	if tr.Outcome == warehouse.OutcomeMiss.String() {
		fmt.Fprintf(&b, "  (compute %s)", time.Duration(tr.ComputeNs))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "  view projection %12s\n", time.Duration(tr.ProjectNs))
	fmt.Fprintf(&b, "  total           %12s\n", time.Duration(tr.TotalNs))
	fmt.Fprintf(&b, "  result: %d steps, %d data objects, %d edges", tr.Steps, tr.Data_, tr.Edges)
	return b.String()
}

// DeepProvenanceTraced is DeepProvenance plus a filled QueryTrace. Tracing
// forces timing on even when no registry is attached, so it is the one
// query path that always pays for clock reads.
func (e *Engine) DeepProvenanceTraced(runID string, v *core.UserView, d string) (*Result, *QueryTrace, error) {
	return e.DeepProvenanceTracedCtx(context.Background(), runID, v, d)
}

// DeepProvenanceTracedCtx is DeepProvenanceTraced with a context: the
// QueryTrace carries the flat per-stage numbers (outcome, lookup, compute,
// project), and a context holding a span tree (obs.StartSpan) additionally
// records the same stages as structured spans. The server uses both — the
// numbers go in the response body, the spans in ?trace=1 and the slow log.
func (e *Engine) DeepProvenanceTracedCtx(ctx context.Context, runID string, v *core.UserView, d string) (*Result, *QueryTrace, error) {
	return e.DeepProvenanceTracedStrategyCtx(ctx, runID, v, d, warehouse.StrategyAuto)
}

// DeepProvenanceTracedStrategyCtx is DeepProvenanceTracedCtx with an
// explicit closure strategy — the server's per-request `labels` override
// lands here. On a miss the trace's Strategy field reports which
// computation actually ran.
func (e *Engine) DeepProvenanceTracedStrategyCtx(ctx context.Context, runID string, v *core.UserView, d string, strat warehouse.ClosureStrategy) (*Result, *QueryTrace, error) {
	tr := &QueryTrace{RunID: runID, Data: d}
	res, err := e.deepProvenance(ctx, runID, v, d, tr, strat)
	if err != nil {
		return nil, nil, err
	}
	return res, tr, nil
}
