package provenance

import (
	"fmt"

	"repro/internal/composite"
	"repro/internal/core"
	"repro/internal/warehouse"
)

// Canned queries. The prototype section of the paper describes, besides the
// flagship deep-provenance query, an interactive repertoire: clicking an
// edge between two steps shows the data passed between them, and "forms to
// express various (canned) provenance queries such as: Return the data
// objects which have a given data object in their data provenance". This
// file implements that repertoire at the user-view level.

// DataBetween returns the data objects passed from one composite execution
// to another under the given view — the prototype's click-on-an-edge
// interaction. The result is nil (not an error) when no data flows between
// them.
func (e *Engine) DataBetween(runID string, v *core.UserView, fromExec, toExec string) ([]string, error) {
	m, err := e.mappingFor(runID, v)
	if err != nil {
		return nil, err
	}
	if _, ok := m.Execution(fromExec); !ok {
		return nil, fmt.Errorf("provenance: unknown execution %q in run %q", fromExec, runID)
	}
	if _, ok := m.Execution(toExec); !ok {
		return nil, fmt.Errorf("provenance: unknown execution %q in run %q", toExec, runID)
	}
	for _, edge := range m.Edges() {
		if edge.From == fromExec && edge.To == toExec {
			return edge.Data, nil
		}
	}
	return nil, nil
}

// InProvenance reports whether candidate is in the deep provenance of
// target (at the UAdmin level — visibility does not change the underlying
// derivation facts, only what is displayed).
func (e *Engine) InProvenance(runID, candidate, target string) (bool, error) {
	closure, err := e.w.DeepProvenance(runID, target)
	if err != nil {
		return false, err
	}
	r, err := e.w.Run(runID)
	if err != nil {
		return false, err
	}
	if !r.HasData(candidate) {
		return false, fmt.Errorf("%w: %q in run %q", warehouse.ErrUnknownData, candidate, runID)
	}
	return candidate != target && closure.HasData(candidate), nil
}

// CommonProvenance returns the data objects lying in the deep provenance
// of both d1 and d2 that are visible under the view — the shared upstream
// the two results depend on.
func (e *Engine) CommonProvenance(runID string, v *core.UserView, d1, d2 string) ([]string, error) {
	r1, err := e.DeepProvenance(runID, v, d1)
	if err != nil {
		return nil, err
	}
	r2, err := e.DeepProvenance(runID, v, d2)
	if err != nil {
		return nil, err
	}
	in2 := make(map[string]bool, len(r2.Data))
	for _, d := range r2.Data {
		in2[d] = true
	}
	var out []string
	for _, d := range r1.Data {
		if in2[d] && d != d1 && d != d2 {
			out = append(out, d)
		}
	}
	return out, nil
}

// ExecutionProvenance returns the deep provenance of a composite
// execution: everything transitively used to assemble its inputs, plus the
// execution itself. This answers "how did this box in my provenance graph
// come to be?" without the user having to pick one of its output data ids.
func (e *Engine) ExecutionProvenance(runID string, v *core.UserView, execID string) (*Result, error) {
	m, err := e.mappingFor(runID, v)
	if err != nil {
		return nil, err
	}
	ex, ok := m.Execution(execID)
	if !ok {
		return nil, fmt.Errorf("provenance: unknown execution %q in run %q", execID, runID)
	}
	// Union the closures of the execution's inputs; the per-(run, data)
	// cache makes the repeats cheap.
	mergedSteps := make(map[string]bool)
	mergedData := make(map[string]bool)
	for _, in := range ex.Inputs {
		c, err := e.w.DeepProvenance(runID, in)
		if err != nil {
			return nil, err
		}
		for s := range c.StepSet() {
			mergedSteps[s] = true
		}
		for d := range c.DataSet() {
			mergedData[d] = true
		}
	}
	for _, s := range ex.Steps {
		mergedSteps[s] = true
	}
	res := project(m, warehouse.NewClosure(execID, mergedSteps, mergedData))
	res.Root = execID
	res.External = false
	res.Metadata = nil
	// project seeds the data set with the closure root, which here is an
	// execution id, not a data id; drop it.
	filtered := res.Data[:0]
	for _, d := range res.Data {
		if d != execID {
			filtered = append(filtered, d)
		}
	}
	res.Data = filtered
	return res, nil
}

// Executions lists the composite executions of a run under a view in
// topological order — the run display the prototype draws.
func (e *Engine) Executions(runID string, v *core.UserView) ([]*composite.Execution, error) {
	m, err := e.mappingFor(runID, v)
	if err != nil {
		return nil, err
	}
	return m.Executions(), nil
}

// mappingFor resolves the run and validates the view before handing out
// the cached composite-execution mapping.
func (e *Engine) mappingFor(runID string, v *core.UserView) (*composite.Mapping, error) {
	r, err := e.w.Run(runID)
	if err != nil {
		return nil, err
	}
	if r.SpecName() != v.Spec().Name() {
		return nil, fmt.Errorf("%w: run %q executes %q, view is over %q",
			ErrForeignView, runID, r.SpecName(), v.Spec().Name())
	}
	return e.mapping(r, v)
}
