package provenance

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

// mmapTwinEngines returns two engines over identical contents: one on the
// original heap-resident warehouse, one on a v3 snapshot of it opened
// through the mmap path (runs materialize lazily as the queries touch
// them). Any divergence is the snapshot round-trip's fault.
func mmapTwinEngines(t *testing.T, build func(w *warehouse.Warehouse)) (heap, mapped *Engine, closeMapped func()) {
	t.Helper()
	wh := warehouse.New(0)
	build(wh)
	path := filepath.Join(t.TempDir(), "wh.v3")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := wh.SaveV3(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	wm, err := warehouse.OpenV3(path, 0, warehouse.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(wh), NewEngine(wm), func() {
		if err := wm.Close(); err != nil {
			t.Errorf("close mapped warehouse: %v", err)
		}
	}
}

// TestConcurrentMmapServeEquivalence pushes the same mixed query burst
// through ServeConcurrently on a heap engine and on its v3-mmap twin and
// compares every answer. The concurrent burst is the interesting part for
// the mapped side: many goroutines race to materialize the same runs while
// others are already mid-query. Runs under -race in CI (name matches the
// Concurrent pattern).
func TestConcurrentMmapServeEquivalence(t *testing.T) {
	s := spec.Phylogenomics()
	fig2 := run.Figure2()
	g := gen.NewGenerator(424242)
	gs := g.Workflow(gen.Classes()[0], "genwf")
	var genRuns []*run.Run
	for i := 0; i < 3; i++ {
		r, _, err := g.Run(gs, gen.RunClasses()[0], fmt.Sprintf("gen%d", i))
		if err != nil {
			t.Fatal(err)
		}
		genRuns = append(genRuns, r)
	}

	build := func(w *warehouse.Warehouse) {
		if err := w.RegisterSpec(s); err != nil {
			t.Fatal(err)
		}
		if err := w.RegisterSpec(gs); err != nil {
			t.Fatal(err)
		}
		if err := w.LoadRun(fig2); err != nil {
			t.Fatal(err)
		}
		for _, r := range genRuns {
			if err := w.LoadRun(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	eh, em, closeMapped := mmapTwinEngines(t, build)
	defer closeMapped()

	joe, err := core.BuildRelevant(s, spec.PhyloRelevantJoe())
	if err != nil {
		t.Fatal(err)
	}
	views := map[string]map[string]*core.UserView{
		fig2.ID(): {"admin": core.UAdmin(s), "joe": joe},
	}
	genViews := map[string]*core.UserView{"admin": core.UAdmin(gs)}
	if ubio, err := core.BuildRelevant(gs, gen.UBioRelevant(gs)); err == nil {
		genViews["ubio"] = ubio
	}
	for _, r := range genRuns {
		views[r.ID()] = genViews
	}

	rng := rand.New(rand.NewSource(424243))
	var queries []Query
	for _, r := range append([]*run.Run{fig2}, genRuns...) {
		data := sampleData(rng, r.AllData(), 12)
		if finals := r.FinalOutputs(); len(finals) > 0 {
			data = append(data, finals[len(finals)-1])
		}
		for _, v := range views[r.ID()] {
			for _, d := range data {
				queries = append(queries, Query{RunID: r.ID(), View: v, Data: d})
			}
		}
	}
	rng.Shuffle(len(queries), func(i, j int) { queries[i], queries[j] = queries[j], queries[i] })

	want := eh.ServeConcurrently(context.Background(), queries, 8)
	got := em.ServeConcurrently(context.Background(), queries, 8)
	if len(want) != len(got) {
		t.Fatalf("result counts differ: heap %d, mmap %d", len(want), len(got))
	}
	for i := range want {
		if (want[i].Err == nil) != (got[i].Err == nil) {
			t.Fatalf("query %d (%s/%s): heap err %v, mmap err %v",
				i, queries[i].RunID, queries[i].Data, want[i].Err, got[i].Err)
		}
		if want[i].Err != nil {
			continue
		}
		sameResult(t, fmt.Sprintf("mmap %s/%s", queries[i].RunID, queries[i].Data),
			want[i].Result, got[i].Result)
	}

	// Every run must have materialized on the mapped side by now.
	snap := em.Warehouse().Stats().Snapshot
	if snap.Version != 3 || snap.RunsMaterialized != snap.RunsTotal || snap.RunsTotal != 1+len(genRuns) {
		t.Fatalf("mapped snapshot stats after burst: %+v", snap)
	}
}
