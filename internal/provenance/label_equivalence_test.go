package provenance

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/run"
	"repro/internal/spec"
	"repro/internal/warehouse"
)

// The label differential suite: the reachability-label closure path
// (StrategyLabels over a warehouse with SetLabelIndex(true)) and the bitset
// BFS path (StrategyBFS) must produce element-for-element identical Results
// — same executions in the same order, same data, same edges — for every
// query kind (deep provenance, immediate provenance, deep derivation),
// every user view, on the paper's phylogenomics example and on generated
// runs from every workflow class and every Table II run class. Equality is
// checked at the Result level, which pins the serialized answers
// byte-for-byte (JSON encoding is a pure function of the Result).

// labelTwinEngines returns two engines over the same spec and run: one
// whose warehouse carries reachability labels, one confined to the BFS.
// Both warehouses are compact-indexed, so any divergence is the label
// path's fault, not the index's.
func labelTwinEngines(t *testing.T, s *spec.Spec, r *run.Run) (labeled, bfs *Engine) {
	t.Helper()
	wl := warehouse.New(0)
	wl.SetLabelIndex(true)
	if err := wl.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	if err := wl.LoadRun(r); err != nil {
		t.Fatal(err)
	}
	wb := warehouse.New(0)
	if err := wb.RegisterSpec(s); err != nil {
		t.Fatal(err)
	}
	if err := wb.LoadRun(r); err != nil {
		t.Fatal(err)
	}
	if wb.RunLabels(r.ID()) != nil {
		t.Fatal("BFS warehouse built labels")
	}
	return NewEngine(wl), NewEngine(wb)
}

// checkLabelEquivalence compares the two strategies for deep provenance,
// immediate provenance and deep derivation of the given data objects under
// the given views. The label engine is queried with StrategyLabels (so a
// missing label index counts a fallback rather than silently passing the
// test against itself) and the BFS engine with StrategyBFS.
func checkLabelEquivalence(t *testing.T, el, eb *Engine, r *run.Run, views map[string]*core.UserView, data []string) {
	t.Helper()
	for vname, v := range views {
		for _, d := range data {
			a, err := el.DeepProvenanceStrategy(r.ID(), v, d, warehouse.StrategyLabels)
			if err != nil {
				t.Fatalf("label prov(%s,%s): %v", vname, d, err)
			}
			b, err := eb.DeepProvenanceStrategy(r.ID(), v, d, warehouse.StrategyBFS)
			if err != nil {
				t.Fatalf("bfs prov(%s,%s): %v", vname, d, err)
			}
			sameResult(t, fmt.Sprintf("label-prov %s/%s/%s", r.ID(), vname, d), a, b)
			a, err = el.DeepDerivationStrategy(r.ID(), v, d, warehouse.StrategyLabels)
			if err != nil {
				t.Fatalf("label deriv(%s,%s): %v", vname, d, err)
			}
			b, err = eb.DeepDerivationStrategy(r.ID(), v, d, warehouse.StrategyBFS)
			if err != nil {
				t.Fatalf("bfs deriv(%s,%s): %v", vname, d, err)
			}
			sameResult(t, fmt.Sprintf("label-deriv %s/%s/%s", r.ID(), vname, d), a, b)
			exA, err := el.ImmediateProvenance(r.ID(), v, d)
			if err != nil {
				t.Fatalf("label immediate(%s,%s): %v", vname, d, err)
			}
			exB, err := eb.ImmediateProvenance(r.ID(), v, d)
			if err != nil {
				t.Fatalf("bfs immediate(%s,%s): %v", vname, d, err)
			}
			if !reflect.DeepEqual(exA, exB) {
				t.Fatalf("immediate %s/%s/%s differs: %+v vs %+v", r.ID(), vname, d, exA, exB)
			}
		}
	}
}

// TestLabelEquivalencePhylogenomics: every data object of the Figure 2 run,
// under UAdmin, Joe's view, Mary's view, and UBlackBox. The run must
// actually have labels — the suite is vacuous otherwise.
func TestLabelEquivalencePhylogenomics(t *testing.T) {
	s := spec.Phylogenomics()
	r := run.Figure2()
	el, eb := labelTwinEngines(t, s, r)
	if el.Warehouse().RunLabels(r.ID()) == nil {
		t.Fatal("label warehouse built no labels for Figure 2")
	}
	joe, err := core.BuildRelevant(s, spec.PhyloRelevantJoe())
	if err != nil {
		t.Fatal(err)
	}
	mary, err := core.BuildRelevant(s, spec.PhyloRelevantMary())
	if err != nil {
		t.Fatal(err)
	}
	bb, err := core.UBlackBox(s)
	if err != nil {
		t.Fatal(err)
	}
	views := map[string]*core.UserView{
		"admin": core.UAdmin(s), "joe": joe, "mary": mary, "blackbox": bb,
	}
	checkLabelEquivalence(t, el, eb, r, views, r.AllData())
	lc := el.Warehouse().LabelCounters()
	if lc.Hits == 0 {
		t.Fatal("label path never taken — suite compared BFS against BFS")
	}
	if lc.Fallbacks != 0 {
		t.Fatalf("unexpected label fallbacks: %d", lc.Fallbacks)
	}
}

// TestLabelEquivalenceGeneratedRuns: generated runs covering every workflow
// class and every Table II run class (mostly small for runtime, with
// periodic medium and large instances), compared under UAdmin, the UBio
// view, and a random builder view. 200 trials; -short trims to 24.
func TestLabelEquivalenceGeneratedRuns(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 24
	}
	g := gen.NewGenerator(20424)
	rng := rand.New(rand.NewSource(20425))
	classes := gen.Classes()
	sawRunClass := map[string]bool{}
	labeledRuns := 0
	for i := 0; i < trials; i++ {
		wc := classes[i%len(classes)]
		rc := gen.Small()
		switch {
		case i%50 == 20:
			rc = gen.Large()
		case i%10 == 5:
			rc = gen.Medium()
		}
		sawRunClass[rc.Name] = true
		s := g.Workflow(wc, fmt.Sprintf("leq-%d", i))
		r, _, err := g.Run(s, rc, fmt.Sprintf("leq-%d-r", i))
		if err != nil {
			t.Fatal(err)
		}
		el, eb := labelTwinEngines(t, s, r)
		if el.Warehouse().RunLabels(r.ID()) != nil {
			labeledRuns++
		}
		views := map[string]*core.UserView{"admin": core.UAdmin(s)}
		if ubio, err := core.BuildRelevant(s, gen.UBioRelevant(s)); err == nil {
			views["ubio"] = ubio
		}
		rel := randomModules(rng, s.ModuleNames())
		if v, err := core.BuildRelevant(s, rel); err == nil {
			views["random"] = v
		}
		data := sampleData(rng, r.AllData(), 8)
		finals := r.FinalOutputs()
		if len(finals) > 0 {
			data = append(data, finals[len(finals)-1])
		}
		checkLabelEquivalence(t, el, eb, r, views, data)
	}
	if labeledRuns == 0 {
		t.Fatal("no generated run ever got labels — suite compared BFS against BFS")
	}
	if !testing.Short() {
		for _, want := range []string{"small", "medium", "large"} {
			if !sawRunClass[want] {
				t.Fatalf("run class %s never exercised", want)
			}
		}
	}
}

// TestConcurrentLabelServe runs a query burst through ServeConcurrently
// against a label-indexed warehouse — concurrent first queries race to
// lead the singleflight, so label closure materialization, the shared
// frozen bitsets, and the label counters all run under -race — and
// cross-checks every answer against the BFS engine.
func TestConcurrentLabelServe(t *testing.T) {
	g := gen.NewGenerator(20426)
	s := g.Workflow(gen.Class3(), "conc-lbl")
	r, _, err := g.Run(s, gen.Medium(), "conc-lbl-r")
	if err != nil {
		t.Fatal(err)
	}
	el, eb := labelTwinEngines(t, s, r)
	if el.Warehouse().RunLabels(r.ID()) == nil {
		t.Fatal("label warehouse built no labels for the medium run")
	}
	admin := core.UAdmin(s)
	ubio, err := core.BuildRelevant(s, gen.UBioRelevant(s))
	if err != nil {
		t.Fatal(err)
	}
	data := sampleData(rand.New(rand.NewSource(17)), r.AllData(), 40)
	var queries []Query
	for rep := 0; rep < 4; rep++ { // repeats force cache-hit sharing
		for _, d := range data {
			queries = append(queries, Query{RunID: r.ID(), View: admin, Data: d})
			queries = append(queries, Query{RunID: r.ID(), View: ubio, Data: d})
		}
	}
	answered := el.ServeConcurrently(context.Background(), queries, 8)
	for _, qr := range answered {
		if qr.Err != nil {
			t.Fatalf("query %d (%s): %v", qr.Index, qr.Query.Data, qr.Err)
		}
		want, err := eb.DeepProvenanceStrategy(qr.Query.RunID, qr.Query.View, qr.Query.Data, warehouse.StrategyBFS)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("concurrent-label %s", qr.Query.Data), qr.Result, want)
	}
	lc := el.Warehouse().LabelCounters()
	if lc.Hits == 0 {
		t.Fatal("label path never taken under the burst")
	}
	if lc.Fallbacks != 0 {
		t.Fatalf("unexpected label fallbacks under the burst: %d", lc.Fallbacks)
	}
}
