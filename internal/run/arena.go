package run

import (
	"errors"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/spec"
)

// ErrBadArena reports inconsistent arena tables handed to ReconstructArena —
// a v3 snapshot whose checksum passed but whose integer tables violate the
// layout invariants (a crafted file, since random corruption fails the
// checksum first).
var ErrBadArena = errors.New("run: inconsistent arena tables")

// ArenaTables is a run in its zero-copy form: the exact slices the compact
// index (Index) holds internally, as decoded — or aliased — from a v3
// snapshot block. The int32 CSR slices and the finals bitset words may alias
// a read-only memory mapping; ReconstructArena adopts them without copying,
// which is what makes opening a v3 snapshot O(directory), not O(warehouse).
//
// Invariants (verified, since a corrupt-but-checksummed file could violate
// them and an aliased slice must never be indexed out of range):
//
//   - StepIDs/StepModules parallel, natural-order strictly increasing ids;
//     DataNames natural-order strictly increasing, non-empty.
//   - Producer[d] in [-1, len(StepIDs)); -1 marks external data.
//   - Each CSR offset slice has len(rows)+1 entries, starts at 0, is
//     non-decreasing, ends at len(values); every value is in range and every
//     row is strictly ascending (sorted, duplicate-free).
//   - Finals has exactly the words a len(DataNames) bitset needs and no bit
//     set at or above len(DataNames).
//   - Flows carry the same dataflow the CSR encodes: valid endpoints and
//     data indexes, no duplicate edges, and a producer assignment identical
//     to Producer.
type ArenaTables struct {
	StepIDs     []string
	StepModules []string
	DataNames   []string

	Producer []int32

	InOff, InData   []int32
	OutOff, OutData []int32
	ConOff, ConStep []int32

	Finals bitset.Set

	Flows []InternedFlow
	Meta  map[int32]map[string]string
}

// ReconstructArena builds a fully functional Run — string-world relations
// plus a pre-built compact index — from arena tables, adopting the int32
// slices without copying. It is the v3 snapshot loader's construction path:
// where ReconstructInterned re-derives the CSR adjacency from the flows,
// this trusts the stored adjacency after verifying the invariants above, so
// materializing a run costs the string table and relation maps only.
func ReconstructArena(id, specName string, t ArenaTables) (*Run, error) {
	nSteps, nData := len(t.StepIDs), len(t.DataNames)
	if len(t.StepModules) != nSteps {
		return nil, fmt.Errorf("%w: %d step ids but %d modules", ErrBadArena, nSteps, len(t.StepModules))
	}
	for i, sid := range t.StepIDs {
		if err := checkStep(Step{ID: sid, Module: t.StepModules[i]}); err != nil {
			return nil, err
		}
		if i > 0 && !lessNatural(t.StepIDs[i-1], sid) {
			return nil, fmt.Errorf("%w: step ids out of natural order at %d", ErrBadArena, i)
		}
	}
	for i, d := range t.DataNames {
		if d == "" {
			return nil, fmt.Errorf("%w: empty data id at %d", ErrBadArena, i)
		}
		if i > 0 && !lessNatural(t.DataNames[i-1], d) {
			return nil, fmt.Errorf("%w: data ids out of natural order at %d", ErrBadArena, i)
		}
	}
	if len(t.Producer) != nData {
		return nil, fmt.Errorf("%w: producer column has %d entries for %d data", ErrBadArena, len(t.Producer), nData)
	}
	for d, p := range t.Producer {
		if p < -1 || int(p) >= nSteps {
			return nil, fmt.Errorf("%w: producer %d of data %d out of range", ErrBadArena, p, d)
		}
	}
	if err := checkCSR("inputs", t.InOff, t.InData, nSteps, nData); err != nil {
		return nil, err
	}
	if err := checkCSR("outputs", t.OutOff, t.OutData, nSteps, nData); err != nil {
		return nil, err
	}
	if err := checkCSR("consumers", t.ConOff, t.ConStep, nData, nSteps); err != nil {
		return nil, err
	}
	if err := checkFinals(t.Finals, nData); err != nil {
		return nil, err
	}

	// Rebuild the string-world relations from the flows, enforcing the same
	// structural rules as AddFlow/ReconstructInterned, and cross-check the
	// producer assignment the flows imply against the stored column.
	r := NewRun(id, specName)
	r.steps = make(map[string]Step, nSteps)
	r.edgeData = make(map[[2]string][]string, len(t.Flows))
	r.producer = make(map[string]string, nData)
	r.consumers = make(map[string][]string, nData)
	names := make([]string, NodeStep0+nSteps)
	names[NodeInput] = spec.Input
	names[NodeOutput] = spec.Output
	for i, sid := range t.StepIDs {
		st := Step{ID: sid, Module: t.StepModules[i]}
		r.steps[sid] = st
		r.g.AddNode(sid)
		names[NodeStep0+i] = sid
	}
	prod := make([]int32, nData)
	for i := range prod {
		prod[i] = -1
	}
	type edgeKey struct{ f, t int32 }
	seenEdge := make(map[edgeKey]bool, len(t.Flows))
	for _, f := range t.Flows {
		if f.From < 0 || int(f.From) >= len(names) || f.To < 0 || int(f.To) >= len(names) {
			return nil, fmt.Errorf("%w: node code out of range on %d -> %d", ErrBadFlow, f.From, f.To)
		}
		from, to := names[f.From], names[f.To]
		if f.From == NodeOutput || f.To == NodeInput {
			return nil, fmt.Errorf("%w: direction %s -> %s", ErrBadFlow, from, to)
		}
		if f.From == f.To {
			return nil, fmt.Errorf("%w: self flow on %s", ErrBadFlow, from)
		}
		if len(f.Data) == 0 {
			return nil, fmt.Errorf("%w: edge %s -> %s carries no data", ErrBadFlow, from, to)
		}
		if seenEdge[edgeKey{f.From, f.To}] {
			return nil, fmt.Errorf("%w: duplicate edge %s -> %s", ErrBadArena, from, to)
		}
		seenEdge[edgeKey{f.From, f.To}] = true
		ds := make([]string, len(f.Data))
		for i, di := range f.Data {
			if di < 0 || int(di) >= nData {
				return nil, fmt.Errorf("%w: data index %d out of range on %s -> %s", ErrBadFlow, di, from, to)
			}
			if i > 0 && f.Data[i-1] >= di {
				return nil, fmt.Errorf("%w: flow data not ascending on %s -> %s", ErrBadArena, from, to)
			}
			if prev := prod[di]; prev >= 0 {
				if prev != f.From {
					return nil, fmt.Errorf("%w: %q produced by %q and %q", ErrTwoProducers,
						t.DataNames[di], producerName(names, prev), producerName(names, f.From))
				}
			} else {
				prod[di] = f.From
			}
			ds[i] = t.DataNames[di]
		}
		r.edgeData[[2]string{from, to}] = ds
		r.g.AddEdge(from, to)
	}
	for di, p := range prod {
		if p < 0 {
			return nil, fmt.Errorf("%w: data %q appears in no flow", ErrBadArena, t.DataNames[di])
		}
		want := t.Producer[di]
		got := p - NodeStep0
		if p == NodeInput {
			got = -1
		}
		if got != want {
			return nil, fmt.Errorf("%w: producer column disagrees with flows on %q", ErrBadArena, t.DataNames[di])
		}
		r.producer[t.DataNames[di]] = producerName(names, p)
	}

	// Assemble the index directly over the (possibly mapping-backed) slices.
	ix := &Index{
		r:        r,
		stepName: t.StepIDs,
		dataName: t.DataNames,
		producer: t.Producer,
		inOff:    t.InOff, inData: t.InData,
		outOff: t.OutOff, outData: t.OutData,
		conOff: t.ConOff, conStep: t.ConStep,
		finals: t.Finals,
	}
	ix.stepID = make(map[string]int32, nSteps)
	for i, s := range t.StepIDs {
		ix.stepID[s] = int32(i)
	}
	ix.dataID = make(map[string]int32, nData)
	for i, d := range t.DataNames {
		ix.dataID[d] = int32(i)
	}
	r.index = ix

	// Consumer lists (lexicographically sorted, the Consumers contract) come
	// from the validated CSR rows.
	for di := 0; di < nData; di++ {
		row := ix.ConsumersOf(int32(di))
		if len(row) == 0 {
			continue
		}
		var cs []string
		for _, s := range row {
			cs = insertString(cs, t.StepIDs[s])
		}
		r.consumers[t.DataNames[di]] = cs
	}

	for di, kv := range t.Meta {
		if di < 0 || int(di) >= nData {
			return nil, fmt.Errorf("%w: meta data index %d out of range", ErrBadFlow, di)
		}
		if err := r.AnnotateInput(t.DataNames[di], kv); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// checkCSR verifies one offset/value CSR pair: rows+1 offsets from 0 to
// len(vals), non-decreasing, values in [0, valRange), rows strictly
// ascending.
func checkCSR(what string, off, vals []int32, rows, valRange int) error {
	if len(off) != rows+1 {
		return fmt.Errorf("%w: %s CSR has %d offsets for %d rows", ErrBadArena, what, len(off), rows)
	}
	if rows >= 0 && (len(off) == 0 || off[0] != 0) {
		return fmt.Errorf("%w: %s CSR does not start at 0", ErrBadArena, what)
	}
	for i := 1; i < len(off); i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("%w: %s CSR offsets decrease at row %d", ErrBadArena, what, i-1)
		}
	}
	if int(off[len(off)-1]) != len(vals) {
		return fmt.Errorf("%w: %s CSR covers %d of %d values", ErrBadArena, what, off[len(off)-1], len(vals))
	}
	for i := 0; i < rows; i++ {
		row := vals[off[i]:off[i+1]]
		for j, v := range row {
			if v < 0 || int(v) >= valRange {
				return fmt.Errorf("%w: %s CSR value %d out of range in row %d", ErrBadArena, what, v, i)
			}
			if j > 0 && row[j-1] >= v {
				return fmt.Errorf("%w: %s CSR row %d not strictly ascending", ErrBadArena, what, i)
			}
		}
	}
	return nil
}

// checkFinals verifies the finals bitset holds exactly the words an n-bit
// set needs and sets no bit at or above n (an out-of-range bit would make
// Each hand an invalid id to DataName).
func checkFinals(finals bitset.Set, n int) error {
	words := (n + 63) / 64
	if len(finals) != words {
		return fmt.Errorf("%w: finals bitset has %d words for %d data", ErrBadArena, len(finals), n)
	}
	if words > 0 {
		if rem := uint(n % 64); rem != 0 {
			if finals[words-1]>>rem != 0 {
				return fmt.Errorf("%w: finals bitset sets bits beyond %d data", ErrBadArena, n)
			}
		}
	}
	return nil
}
