package run

import "fmt"

// The paper's provenance model for externally provided data: "If the data
// is a parameter or was input to the workflow execution by a user, its
// provenance is whatever metadata information is recorded, e.g. who input
// the data and the time at which the input occurred." Runs therefore carry
// an optional metadata map for their external inputs.

// ErrNotExternal reports an attempt to annotate produced (non-external)
// data with input metadata.
var ErrNotExternal = fmt.Errorf("run: data is not external input")

// AnnotateInput records metadata for an external data object. Repeated
// calls merge keys; later values win.
func (r *Run) AnnotateInput(d string, meta map[string]string) error {
	if !r.IsExternal(d) {
		return fmt.Errorf("%w: %q", ErrNotExternal, d)
	}
	if r.inputMeta == nil {
		r.inputMeta = make(map[string]map[string]string)
	}
	m := r.inputMeta[d]
	if m == nil {
		m = make(map[string]string, len(meta))
		r.inputMeta[d] = m
	}
	for k, v := range meta {
		m[k] = v
	}
	return nil
}

// InputMeta returns the recorded metadata of an external data object (a
// copy; nil when none was recorded).
func (r *Run) InputMeta(d string) map[string]string {
	m := r.inputMeta[d]
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// AnnotatedInputs returns the external data objects that carry metadata,
// naturally ordered.
func (r *Run) AnnotatedInputs() []string {
	out := make([]string, 0, len(r.inputMeta))
	for d := range r.inputMeta {
		out = append(out, d)
	}
	sortNaturalStrings(out)
	return out
}

func sortNaturalStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && lessNatural(xs[j], xs[j-1]); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
