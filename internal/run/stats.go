package run

import "repro/internal/spec"

// Stats summarizes a run's shape: the quantities Table II controls (size,
// data volume) plus the structural ones (depth, fan-out) that determine
// how hard the run is to display and traverse.
type Stats struct {
	Steps          int
	Edges          int
	Data           int
	ExternalInputs int
	FinalOutputs   int
	// Depth is the number of steps on the longest INPUT-to-OUTPUT path.
	Depth int
	// MaxFanOut is the largest out-degree over steps (parallel splits).
	MaxFanOut int
	// MaxFanIn is the largest in-degree over steps (synchronizations).
	MaxFanIn int
}

// Stats computes the run statistics. The run must be acyclic (guaranteed
// for validated runs); on a cyclic graph depth is reported as zero.
func (r *Run) Stats() Stats {
	st := Stats{
		Steps:          r.NumSteps(),
		Edges:          r.NumEdges(),
		Data:           r.NumData(),
		ExternalInputs: len(r.ExternalInputs()),
		FinalOutputs:   len(r.FinalOutputs()),
	}
	for id := range r.steps {
		if d := r.g.OutDegree(id); d > st.MaxFanOut {
			st.MaxFanOut = d
		}
		if d := r.g.InDegree(id); d > st.MaxFanIn {
			st.MaxFanIn = d
		}
	}
	order, err := r.g.TopoSort()
	if err != nil {
		return st
	}
	// Longest path in steps, via DP over the topological order.
	depth := make(map[string]int, len(order))
	for _, n := range order {
		base := depth[n]
		add := 0
		if _, isStep := r.steps[n]; isStep {
			add = 1
		}
		for _, succ := range r.g.Successors(n) {
			if base+add > depth[succ] {
				depth[succ] = base + add
			}
		}
	}
	st.Depth = depth[spec.Output]
	return st
}
