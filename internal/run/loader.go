package run

import (
	"fmt"
	"sort"

	"repro/internal/spec"
	"repro/internal/wflog"
)

// LogLoader incrementally reconstructs a run from a stream of workflow-log
// events. It is the streaming counterpart of FromLog: events are validated
// and folded into the run as they arrive, so a multi-gigabyte log never has
// to be materialized as an []Event slice. The reconstruction rules are
// FromLog's:
//
//   - every start event introduces a step;
//   - a read of a data object written by step p induces the flow p -> reader;
//   - a read of a data object nobody wrote is external input (INPUT -> reader);
//   - data written but never read is final output (writer -> OUTPUT).
//
// Flows can only be wired once the producer of every read object is known,
// so the dataflow edges are materialized by Finish, not per event.
type LogLoader struct {
	r         *Run
	writer    map[string]string   // data -> producing step
	readsOf   map[string][]string // step -> data read (in log order)
	writesOf  map[string][]string // step -> data written
	read      map[string]bool     // data ever read
	started   map[string]bool
	stepOrder []string
	lastSeq   int64
	n         int
	done      bool
}

// NewLogLoader returns an empty loader for the named run and specification.
func NewLogLoader(runID, specName string) *LogLoader {
	return &LogLoader{
		r:        NewRun(runID, specName),
		writer:   make(map[string]string),
		readsOf:  make(map[string][]string),
		writesOf: make(map[string][]string),
		read:     make(map[string]bool),
		started:  make(map[string]bool),
		lastSeq:  -1,
	}
}

// Add folds one event into the run under construction. It enforces the same
// per-event and sequence invariants as wflog.ValidateSequence — event
// validity, strictly increasing sequence numbers, start before read/write —
// incrementally, and reports errors with the same "event %d" indexes.
func (l *LogLoader) Add(e wflog.Event) error {
	if l.done {
		return fmt.Errorf("run: LogLoader used after Finish")
	}
	i := l.n
	if err := e.Validate(); err != nil {
		return fmt.Errorf("event %d: %w", i, err)
	}
	if e.Seq <= l.lastSeq {
		return fmt.Errorf("event %d: seq %d after %d: %w", i, e.Seq, l.lastSeq, wflog.ErrOutOfOrder)
	}
	l.lastSeq = e.Seq
	switch e.Kind {
	case wflog.KindStart:
		if l.started[e.Step] {
			return fmt.Errorf("event %d: duplicate start for step %q: %w", i, e.Step, wflog.ErrBadEvent)
		}
		l.started[e.Step] = true
		if err := l.r.AddStep(e.Step, e.Module); err != nil {
			return err
		}
		l.stepOrder = append(l.stepOrder, e.Step)
	case wflog.KindRead:
		if !l.started[e.Step] {
			return fmt.Errorf("event %d: %s before start of step %q: %w", i, e.Kind, e.Step, wflog.ErrOutOfOrder)
		}
		l.readsOf[e.Step] = append(l.readsOf[e.Step], e.Data)
		l.read[e.Data] = true
	case wflog.KindWrite:
		if !l.started[e.Step] {
			return fmt.Errorf("event %d: %s before start of step %q: %w", i, e.Kind, e.Step, wflog.ErrOutOfOrder)
		}
		if prev, dup := l.writer[e.Data]; dup {
			return fmt.Errorf("%w: %q written by %q and %q", ErrTwoProducers, e.Data, prev, e.Step)
		}
		l.writer[e.Data] = e.Step
		l.writesOf[e.Step] = append(l.writesOf[e.Step], e.Data)
	}
	l.n++
	return nil
}

// NumEvents returns the number of events folded in so far.
func (l *LogLoader) NumEvents() int { return l.n }

// Finish materializes the dataflow edges and returns the reconstructed run.
// The loader cannot be reused afterwards.
func (l *LogLoader) Finish() (*Run, error) {
	if l.done {
		return nil, fmt.Errorf("run: LogLoader used after Finish")
	}
	l.done = true
	// Group flows per (source, target) pair for compact edges.
	for _, step := range l.stepOrder {
		bySource := make(map[string][]string)
		for _, d := range l.readsOf[step] {
			src, ok := l.writer[d]
			if !ok {
				src = spec.Input
			}
			bySource[src] = append(bySource[src], d)
		}
		srcs := make([]string, 0, len(bySource))
		for src := range bySource {
			srcs = append(srcs, src)
		}
		sort.Strings(srcs)
		for _, src := range srcs {
			if err := l.r.AddFlow(src, step, bySource[src]); err != nil {
				return nil, err
			}
		}
	}
	// Unread writes become final outputs.
	for _, step := range l.stepOrder {
		var finals []string
		for _, d := range l.writesOf[step] {
			if !l.read[d] {
				finals = append(finals, d)
			}
		}
		if len(finals) > 0 {
			if err := l.r.AddFlow(step, spec.Output, finals); err != nil {
				return nil, err
			}
		}
	}
	return l.r, nil
}
