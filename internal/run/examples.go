package run

import (
	"fmt"

	"repro/internal/spec"
)

// Figure2 returns the workflow run of Figure 2 — the execution of the
// phylogenomics specification the whole paper reasons about. Every data id
// the text states explicitly is honored:
//
//   - one hundred sequences d1..d100 are the initial input to S1;
//   - S2 (first execution of M3) has input set {d308, ..., d408};
//   - the loop M3 -> M4 -> M5 executes twice: S2:M3, S3:M4, S4:M5,
//     S5:M3, S6:M4, with S3 -> S4 carrying d410, S4 -> S5 carrying d411,
//     S5 -> S6 carrying d412, and S6 producing d413;
//   - minor modifications to the annotations yield d202..d206 (S7:M2);
//   - thirty-odd lab annotations d415..d445 are user input to S9:M6;
//   - the final tree is d447, produced by S10:M7.
//
// The composite executions the paper derives are validated in the composite
// package's tests: S11 = {S2, S3} with input {d308..d408} and output
// {d410}; S12 = {S5, S6} with input {d411} and output {d413}; S13 =
// {S2..S6} with input {d308..d408} and output {d413}.
func Figure2() *Run {
	r := NewRun("fig2", "phylogenomics")
	steps := [][2]string{
		{"S1", "M1"}, {"S2", "M3"}, {"S3", "M4"}, {"S4", "M5"}, {"S5", "M3"},
		{"S6", "M4"}, {"S7", "M2"}, {"S8", "M8"}, {"S9", "M6"}, {"S10", "M7"},
	}
	for _, s := range steps {
		mustAdd(r.AddStep(s[0], s[1]))
	}
	mustAdd(r.AddFlow(spec.Input, "S1", DataIDs(1, 100)))
	mustAdd(r.AddFlow("S1", "S2", DataIDs(308, 408)))
	mustAdd(r.AddFlow("S1", "S7", []string{"d201"}))
	mustAdd(r.AddFlow("S7", "S8", DataIDs(202, 206)))
	mustAdd(r.AddFlow(spec.Input, "S9", DataIDs(415, 445)))
	mustAdd(r.AddFlow("S2", "S3", []string{"d409"}))
	mustAdd(r.AddFlow("S3", "S4", []string{"d410"}))
	mustAdd(r.AddFlow("S4", "S5", []string{"d411"}))
	mustAdd(r.AddFlow("S5", "S6", []string{"d412"}))
	mustAdd(r.AddFlow("S6", "S10", []string{"d413"}))
	mustAdd(r.AddFlow("S8", "S10", []string{"d414"}))
	mustAdd(r.AddFlow("S9", "S10", []string{"d446"}))
	mustAdd(r.AddFlow("S10", spec.Output, []string{"d447"}))
	if err := r.Validate(); err != nil {
		panic(fmt.Sprintf("run: Figure2 fixture invalid: %v", err))
	}
	return r
}

func mustAdd(err error) {
	if err != nil {
		panic(fmt.Sprintf("run: fixture construction failed: %v", err))
	}
}
