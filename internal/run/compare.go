package run

import (
	"fmt"
	"sort"
	"strings"
)

// Run comparison. The paper's motivation is reproducibility — "scientists
// must be able to determine what sequence of steps and input data were
// used" so results can be reproduced — and its related work points at
// comparative visualization of runs. Compare summarizes how two runs of
// the same specification differ structurally: which modules executed a
// different number of times (loops converging after different iteration
// counts are the paper's canonical source of run-to-run variation), and
// how the sizes diverge.

// ModuleDelta records a module whose execution count differs between runs.
type ModuleDelta struct {
	Module string
	CountA int
	CountB int
}

// Diff is the structural comparison of two runs.
type Diff struct {
	RunA, RunB string
	// SpecMismatch is set when the runs execute different specifications;
	// the remaining fields are still filled.
	SpecMismatch bool
	// ModuleDeltas lists modules with differing execution counts, sorted.
	ModuleDeltas []ModuleDelta
	StatsA       Stats
	StatsB       Stats
}

// Compare computes the structural diff of two runs.
func Compare(a, b *Run) Diff {
	d := Diff{
		RunA:         a.ID(),
		RunB:         b.ID(),
		SpecMismatch: a.SpecName() != b.SpecName(),
		StatsA:       a.Stats(),
		StatsB:       b.Stats(),
	}
	counts := make(map[string][2]int)
	for _, st := range a.steps {
		c := counts[st.Module]
		c[0]++
		counts[st.Module] = c
	}
	for _, st := range b.steps {
		c := counts[st.Module]
		c[1]++
		counts[st.Module] = c
	}
	for module, c := range counts {
		if c[0] != c[1] {
			d.ModuleDeltas = append(d.ModuleDeltas, ModuleDelta{Module: module, CountA: c[0], CountB: c[1]})
		}
	}
	sort.Slice(d.ModuleDeltas, func(i, j int) bool { return d.ModuleDeltas[i].Module < d.ModuleDeltas[j].Module })
	return d
}

// SameShape reports whether the two runs executed every module the same
// number of times over the same specification. Data ids naturally differ
// between runs, so shape equality is the meaningful reproducibility check.
func (d Diff) SameShape() bool {
	return !d.SpecMismatch && len(d.ModuleDeltas) == 0
}

// String renders a human-readable summary.
func (d Diff) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "compare %s vs %s:", d.RunA, d.RunB)
	if d.SpecMismatch {
		b.WriteString(" DIFFERENT SPECIFICATIONS;")
	}
	if d.SameShape() {
		b.WriteString(" same shape;")
	}
	fmt.Fprintf(&b, " steps %d/%d, data %d/%d, depth %d/%d",
		d.StatsA.Steps, d.StatsB.Steps, d.StatsA.Data, d.StatsB.Data,
		d.StatsA.Depth, d.StatsB.Depth)
	for _, md := range d.ModuleDeltas {
		fmt.Fprintf(&b, "\n  %s executed %dx vs %dx", md.Module, md.CountA, md.CountB)
	}
	return b.String()
}
