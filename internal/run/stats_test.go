package run

import (
	"testing"

	"repro/internal/spec"
)

func TestStatsFigure2(t *testing.T) {
	st := Figure2().Stats()
	if st.Steps != 10 || st.Edges != 13 || st.Data != 246 {
		t.Fatalf("basic counts wrong: %+v", st)
	}
	if st.ExternalInputs != 131 || st.FinalOutputs != 1 {
		t.Fatalf("boundary counts wrong: %+v", st)
	}
	// Longest path: S1 -> S2 -> S3 -> S4 -> S5 -> S6 -> S10 = 7 steps.
	if st.Depth != 7 {
		t.Fatalf("Depth = %d, want 7", st.Depth)
	}
	// S1 fans out to S2 and S7; S10 joins three inputs.
	if st.MaxFanOut != 2 {
		t.Fatalf("MaxFanOut = %d, want 2", st.MaxFanOut)
	}
	if st.MaxFanIn != 3 {
		t.Fatalf("MaxFanIn = %d, want 3", st.MaxFanIn)
	}
}

func TestStatsLinearRun(t *testing.T) {
	r := NewRun("lin", "s")
	mustT(t, r.AddStep("S1", "A"))
	mustT(t, r.AddStep("S2", "B"))
	mustT(t, r.AddFlow(spec.Input, "S1", []string{"d1"}))
	mustT(t, r.AddFlow("S1", "S2", []string{"d2"}))
	mustT(t, r.AddFlow("S2", spec.Output, []string{"d3"}))
	st := r.Stats()
	if st.Depth != 2 || st.MaxFanOut != 1 || st.MaxFanIn != 1 {
		t.Fatalf("linear stats wrong: %+v", st)
	}
}

func TestStatsScalesWithIterations(t *testing.T) {
	s := spec.Phylogenomics()
	small, _, err := Execute(s, Config{Seed: 1, LoopIter: [2]int{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	big, _, err := Execute(s, Config{Seed: 1, LoopIter: [2]int{8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	if small.Stats().Depth >= big.Stats().Depth {
		t.Fatalf("loop unrolling did not deepen the run: %d vs %d",
			small.Stats().Depth, big.Stats().Depth)
	}
}
