package run

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/spec"
	"repro/internal/wflog"
)

func TestFromLogBasic(t *testing.T) {
	b := wflog.NewBuilder()
	b.Start("S1", "M1")
	b.Reads("S1", "d1")
	b.Writes("S1", "d2")
	b.Start("S2", "M2")
	b.Reads("S2", "d2")
	b.Writes("S2", "d3")
	r, err := FromLog("r1", "s", b.Events())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if p, _ := r.Producer("d2"); p != "S1" {
		t.Fatalf("producer(d2) = %s", p)
	}
	if !r.IsExternal("d1") {
		t.Fatal("d1 should be external (read but never written)")
	}
	if got := r.FinalOutputs(); !reflect.DeepEqual(got, []string{"d3"}) {
		t.Fatalf("finals = %v (d3 written, never read)", got)
	}
	if !r.Graph().HasEdge("S1", "S2") {
		t.Fatal("flow S1 -> S2 not reconstructed")
	}
}

func TestFromLogRejectsTwoWriters(t *testing.T) {
	b := wflog.NewBuilder()
	b.Start("S1", "M1")
	b.Writes("S1", "d1")
	b.Start("S2", "M2")
	b.Writes("S2", "d1")
	if _, err := FromLog("r", "s", b.Events()); !errors.Is(err, ErrTwoProducers) {
		t.Fatalf("err = %v", err)
	}
}

func TestFromLogRejectsInvalidSequence(t *testing.T) {
	events := []wflog.Event{{Seq: 1, Kind: wflog.KindRead, Step: "S1", Data: "d1"}}
	if _, err := FromLog("r", "s", events); !errors.Is(err, wflog.ErrOutOfOrder) {
		t.Fatalf("err = %v", err)
	}
}

func TestToLogFromLogRoundTrip(t *testing.T) {
	orig := Figure2()
	events, err := orig.ToLog()
	if err != nil {
		t.Fatal(err)
	}
	if err := wflog.ValidateSequence(events); err != nil {
		t.Fatal(err)
	}
	back, err := FromLog(orig.ID(), orig.SpecName(), events)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsEquivalent(t, orig, back)
}

func TestLogSerializationRoundTrip(t *testing.T) {
	orig := Figure2()
	events, _ := orig.ToLog()
	var buf bytes.Buffer
	if err := wflog.Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	parsed, err := wflog.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromLog(orig.ID(), orig.SpecName(), parsed)
	if err != nil {
		t.Fatal(err)
	}
	assertRunsEquivalent(t, orig, back)
}

func TestFromLogMultiSourceReads(t *testing.T) {
	// One step reading from two producers plus external input yields three
	// incoming edges.
	b := wflog.NewBuilder()
	b.Start("S1", "M1")
	b.Writes("S1", "d1")
	b.Start("S2", "M2")
	b.Writes("S2", "d2")
	b.Start("S3", "M3")
	b.Reads("S3", "d1", "d2", "dX")
	b.Writes("S3", "d3")
	r, err := FromLog("r", "s", b.Events())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Graph().InDegree("S3"); got != 3 {
		t.Fatalf("InDegree(S3) = %d, want 3", got)
	}
	if got := r.DataOn(spec.Input, "S3"); !reflect.DeepEqual(got, []string{"dX"}) {
		t.Fatalf("external edge data = %v", got)
	}
}

func TestExecutedLogsReplayAcrossConfigs(t *testing.T) {
	s := spec.Phylogenomics()
	for seed := int64(0); seed < 5; seed++ {
		r, events, err := Execute(s, Config{RunID: "x", Seed: seed, LoopIter: [2]int{1, 5}, UserInput: [2]int{1, 4}, DataPerStep: [2]int{1, 4}})
		if err != nil {
			t.Fatal(err)
		}
		back, err := FromLog("x", s.Name(), events)
		if err != nil {
			t.Fatal(err)
		}
		assertRunsEquivalent(t, r, back)
	}
}
