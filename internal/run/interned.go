package run

import (
	"fmt"
	"sort"

	"repro/internal/bitset"
	"repro/internal/spec"
)

// Node codes used by interned flow tables (and the v2 binary snapshot):
// INPUT and OUTPUT get fixed small codes so step k can be code k+2.
const (
	NodeInput  = 0
	NodeOutput = 1
	NodeStep0  = 2
)

// InternedFlow is one dataflow edge in interned form: endpoints are node
// codes (NodeInput, NodeOutput, or NodeStep0+k for the k-th step in natural
// order) and Data are indexes into the run's natural-order data table.
type InternedFlow struct {
	From, To int32
	Data     []int32
}

// ReconstructInterned bulk-builds a run from interned tables — the binary
// snapshot loader's fast path. steps and data are expected in natural order
// (the compact index's interning order) and each flow's data indexes are
// expected strictly ascending; under those assumptions the run's relations
// AND its compact index are assembled from integer work alone, with no
// natural-order comparisons at all.
//
// The assumptions are verified, not trusted: an O(n) pass checks the
// orderings, and any table that fails it (a hand-crafted or corrupt frame)
// is routed through the string-world Reconstruct path, which normalizes.
// Structural invariants — unique steps, known endpoints, single producer
// per data object, non-empty data on every edge — are enforced here exactly
// as AddStep and AddFlow enforce them, with the same error values.
func ReconstructInterned(id, specName string, steps []Step, data []string, flows []InternedFlow, meta map[int32]map[string]string) (*Run, error) {
	if !internedTablesOrdered(steps, data, flows) {
		return reconstructFromInterned(id, specName, steps, data, flows, meta)
	}

	r := NewRun(id, specName)
	// Pre-size every relation: the table sizes are exact, so the maps never
	// rehash while the bulk inserts run.
	r.steps = make(map[string]Step, len(steps))
	r.edgeData = make(map[[2]string][]string, len(flows))
	r.producer = make(map[string]string, len(data))
	r.consumers = make(map[string][]string, len(data))
	names := make([]string, NodeStep0+len(steps))
	names[NodeInput] = spec.Input
	names[NodeOutput] = spec.Output
	for i, st := range steps {
		if err := checkStep(st); err != nil {
			return nil, err
		}
		r.steps[st.ID] = st
		r.g.AddNode(st.ID)
		names[NodeStep0+i] = st.ID
	}

	// prod[d] is the producing node code of data id d: NodeInput marks an
	// external object, -1 marks never-seen. A data table entry no flow uses
	// has no producer, which the string path resolves by dropping it — so
	// that case falls back too.
	prod := make([]int32, len(data))
	for i := range prod {
		prod[i] = -1
	}
	type edgeKey struct{ f, t int32 }
	seenEdge := make(map[edgeKey]bool, len(flows))
	for _, f := range flows {
		if int(f.From) >= len(names) || int(f.To) >= len(names) || f.From < 0 || f.To < 0 {
			return nil, fmt.Errorf("%w: node code out of range on %d -> %d", ErrBadFlow, f.From, f.To)
		}
		from, to := names[f.From], names[f.To]
		if f.From == NodeOutput || f.To == NodeInput {
			return nil, fmt.Errorf("%w: direction %s -> %s", ErrBadFlow, from, to)
		}
		if f.From == f.To {
			return nil, fmt.Errorf("%w: self flow on %s", ErrBadFlow, from)
		}
		if len(f.Data) == 0 {
			return nil, fmt.Errorf("%w: edge %s -> %s carries no data", ErrBadFlow, from, to)
		}
		if seenEdge[edgeKey{f.From, f.To}] {
			// Duplicate edges need the merge path; Save never writes them.
			return reconstructFromInterned(id, specName, steps, data, flows, meta)
		}
		seenEdge[edgeKey{f.From, f.To}] = true
		p := f.From
		for _, di := range f.Data {
			if int(di) >= len(data) || di < 0 {
				return nil, fmt.Errorf("%w: data index %d out of range on %s -> %s", ErrBadFlow, di, from, to)
			}
			if data[di] == "" {
				return nil, fmt.Errorf("%w: empty data id on %s -> %s", ErrBadFlow, from, to)
			}
			if prev := prod[di]; prev >= 0 {
				if prev != p {
					return nil, fmt.Errorf("%w: %q produced by %q and %q", ErrTwoProducers,
						data[di], producerName(names, prev), producerName(names, p))
				}
			} else {
				prod[di] = p
			}
		}
		ds := make([]string, len(f.Data))
		for i, di := range f.Data {
			ds[i] = data[di]
		}
		r.edgeData[[2]string{from, to}] = ds
		r.g.AddEdge(from, to)
	}
	for di, p := range prod {
		if p < 0 {
			// Unused data table entry: normalize through the string path.
			return reconstructFromInterned(id, specName, steps, data, flows, meta)
		}
		r.producer[data[di]] = producerName(names, p)
	}

	r.index = buildIndexInterned(r, names, data, prod, flows)
	// Consumer lists in the Run are lexicographically sorted (the Consumers
	// contract); derive them from the index's interned rows.
	for di := range data {
		row := r.index.ConsumersOf(int32(di))
		if len(row) == 0 {
			continue
		}
		cs := make([]string, len(row))
		for i, s := range row {
			cs[i] = steps[s].ID
		}
		sort.Strings(cs)
		r.consumers[data[di]] = cs
	}

	metaKeys := make([]int32, 0, len(meta))
	for di := range meta {
		metaKeys = append(metaKeys, di)
	}
	sort.Slice(metaKeys, func(i, j int) bool { return metaKeys[i] < metaKeys[j] })
	for _, di := range metaKeys {
		if err := r.AnnotateInput(data[di], meta[di]); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func producerName(names []string, code int32) string {
	if code == NodeInput {
		return "" // external
	}
	return names[code]
}

func checkStep(st Step) error {
	if st.ID == "" || st.Module == "" {
		return fmt.Errorf("%w: empty id or module", ErrBadStep)
	}
	if st.ID == spec.Input || st.ID == spec.Output {
		return fmt.Errorf("%w: step id %q is reserved", ErrBadStep, st.ID)
	}
	return nil
}

// internedTablesOrdered verifies the fast path's ordering assumptions:
// steps and data strictly increasing naturally (which also implies both are
// duplicate-free) and every flow's data indexes strictly ascending.
func internedTablesOrdered(steps []Step, data []string, flows []InternedFlow) bool {
	for i := 1; i < len(steps); i++ {
		if !lessNatural(steps[i-1].ID, steps[i].ID) {
			return false
		}
	}
	for i := 1; i < len(data); i++ {
		if !lessNatural(data[i-1], data[i]) {
			return false
		}
	}
	for _, f := range flows {
		for i := 1; i < len(f.Data); i++ {
			if f.Data[i-1] >= f.Data[i] {
				return false
			}
		}
	}
	return true
}

// reconstructFromInterned maps the interned tables back to strings and runs
// the normalizing Reconstruct path — the fallback when the fast path's
// ordering assumptions do not hold.
func reconstructFromInterned(id, specName string, steps []Step, data []string, flows []InternedFlow, meta map[int32]map[string]string) (*Run, error) {
	nodeName := func(code int32) (string, error) {
		switch {
		case code == NodeInput:
			return spec.Input, nil
		case code == NodeOutput:
			return spec.Output, nil
		case code >= NodeStep0 && int(code-NodeStep0) < len(steps):
			return steps[code-NodeStep0].ID, nil
		}
		return "", fmt.Errorf("%w: node code %d out of range", ErrBadFlow, code)
	}
	sf := make([]Flow, 0, len(flows))
	for _, f := range flows {
		from, err := nodeName(f.From)
		if err != nil {
			return nil, err
		}
		to, err := nodeName(f.To)
		if err != nil {
			return nil, err
		}
		ds := make([]string, 0, len(f.Data))
		for _, di := range f.Data {
			if int(di) >= len(data) || di < 0 {
				return nil, fmt.Errorf("%w: data index %d out of range on %s -> %s", ErrBadFlow, di, from, to)
			}
			ds = append(ds, data[di])
		}
		sf = append(sf, Flow{From: from, To: to, Data: ds})
	}
	var sm map[string]map[string]string
	if len(meta) > 0 {
		sm = make(map[string]map[string]string, len(meta))
		for di, kv := range meta {
			if int(di) >= len(data) || di < 0 {
				return nil, fmt.Errorf("%w: meta data index %d out of range", ErrBadFlow, di)
			}
			sm[data[di]] = kv
		}
	}
	return Reconstruct(id, specName, steps, sf, sm)
}

// buildIndexInterned assembles the compact index straight from the interned
// tables — the same structure buildIndex derives by sorting the string
// world, produced here by integer passes alone.
func buildIndexInterned(r *Run, names []string, data []string, prod []int32, flows []InternedFlow) *Index {
	nSteps := len(names) - NodeStep0
	ix := &Index{
		r:        r,
		stepName: names[NodeStep0:],
		dataName: data,
	}
	ix.stepID = make(map[string]int32, nSteps)
	for i, s := range ix.stepName {
		ix.stepID[s] = int32(i)
	}
	ix.dataID = make(map[string]int32, len(data))
	for i, d := range data {
		ix.dataID[d] = int32(i)
	}
	ix.producer = make([]int32, len(data))
	for i, p := range prod {
		if p == NodeInput {
			ix.producer[i] = -1
		} else {
			ix.producer[i] = p - NodeStep0
		}
	}

	in := make([][]int32, nSteps)
	out := make([][]int32, nSteps)
	cons := make([][]int32, len(data))
	ix.finals = bitset.New(len(data))
	for _, f := range flows {
		if f.To == NodeOutput {
			for _, di := range f.Data {
				ix.finals.Add(di)
			}
		} else {
			s := f.To - NodeStep0
			in[s] = append(in[s], f.Data...)
			for _, di := range f.Data {
				cons[di] = append(cons[di], s)
			}
		}
		if f.From != NodeInput {
			s := f.From - NodeStep0
			out[s] = append(out[s], f.Data...)
		}
	}
	ix.inOff, ix.inData = flattenSortedUnique(in)
	ix.outOff, ix.outData = flattenSortedUnique(out)
	ix.conOff, ix.conStep = flattenSortedUnique(cons)
	return ix
}

// flattenSortedUnique sorts each row ascending, deduplicates it, and
// flattens the rows into a CSR offset/value pair.
func flattenSortedUnique(rows [][]int32) (off, vals []int32) {
	off = make([]int32, len(rows)+1)
	total := 0
	for _, row := range rows {
		total += len(row)
	}
	vals = make([]int32, 0, total)
	for i, row := range rows {
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		for j, v := range row {
			if j == 0 || v != row[j-1] {
				vals = append(vals, v)
			}
		}
		off[i+1] = int32(len(vals))
	}
	return off, vals
}
